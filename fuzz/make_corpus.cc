// Seed-corpus generator for the fuzz/ harnesses.
//
//   glsc_make_corpus OUT_DIR
//
// writes OUT_DIR/archive/*.bin (container bytes in v3 and v2 wire formats,
// from the model-free test codecs, plus truncated/corrupted variants so even
// a coverage-blind replay run reaches the error paths) and
// OUT_DIR/range_coder/*.bin (structured inputs for the round-trip
// differential). Everything is deterministic: fixed seeds, fixed shapes.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "codec/range_coder.h"
#include "core/archive_reader.h"
#include "core/container.h"
#include "data/field_generators.h"

namespace {

using glsc::ByteWriter;
using glsc::Tensor;

void WriteBlob(const std::filesystem::path& path,
               const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("  %s (%zu bytes)\n", path.c_str(), bytes.size());
}

// A small archive: [1, 20, 16, 16] climate field through `codec_name`. With
// window 16 that is one full record plus a padded 4-frame tail.
glsc::core::DatasetArchive SmallArchive(const std::string& codec_name,
                                        std::uint64_t seed) {
  glsc::data::FieldSpec spec;
  spec.variables = 1;
  spec.frames = 20;
  spec.height = 16;
  spec.width = 16;
  spec.seed = seed;
  const Tensor field = glsc::data::GenerateClimate(spec);

  auto codec = glsc::api::Compressor::Create(codec_name);
  glsc::api::SessionOptions options;
  options.bound = {glsc::api::ErrorBoundMode::kRelative, 0.05};
  glsc::api::EncodeSession session(codec.get(), spec.variables, spec.height,
                                   spec.width, options);
  session.Push(field);
  return session.Finish();
}

// The v2 wire format (no index/footer), mirroring container.h's layout doc —
// seeds the scan-built index path in ArchiveReader.
std::vector<std::uint8_t> SerializeAsV2(
    const glsc::core::DatasetArchive& archive) {
  ByteWriter out;
  out.PutBytes("GLSC", 4);
  out.PutU8(2);
  out.PutString(archive.codec());
  for (const auto d : archive.dataset_shape()) {
    out.PutU64(static_cast<std::uint64_t>(d));
  }
  out.PutU64(static_cast<std::uint64_t>(archive.window()));
  for (std::int64_t v = 0; v < archive.dataset_shape()[0]; ++v) {
    for (std::int64_t t = 0; t < archive.dataset_shape()[1]; ++t) {
      out.PutF32(archive.norm(v, t).mean);
      out.PutF32(archive.norm(v, t).range);
    }
  }
  out.PutVarU64(archive.entries().size());
  for (const auto& entry : archive.entries()) {
    out.PutVarU64(static_cast<std::uint64_t>(entry.variable));
    out.PutVarU64(static_cast<std::uint64_t>(entry.t0));
    out.PutVarU64(static_cast<std::uint64_t>(entry.valid_frames));
    out.PutVarU64(entry.payload.size());
    out.PutBytes(entry.payload.data(), entry.payload.size());
  }
  return out.Release();
}

// A minimal synthetic v4 archive (no codec session, compressible payloads)
// so the forced-filter / corrupted seeds stay small on disk.
glsc::core::DatasetArchive TinyArchive() {
  std::vector<glsc::data::FrameNorm> norms(8);
  for (std::size_t i = 0; i < norms.size(); ++i) {
    norms[i].mean = 0.25f * static_cast<float>(i);
    norms[i].range = 1.0f;
  }
  glsc::core::DatasetArchive archive("sz", {1, 8, 8, 8}, 8, norms);
  std::vector<std::uint8_t> payload(512);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i / 5);
  }
  archive.Add(0, 0, 8, std::move(payload));
  return archive;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s OUT_DIR\n", argv[0]);
    return 2;
  }
  const std::filesystem::path out_dir(argv[1]);
  const auto archive_dir = out_dir / "archive";
  const auto coder_dir = out_dir / "range_coder";
  std::filesystem::create_directories(archive_dir);
  std::filesystem::create_directories(coder_dir);

  // --- Archive seeds: v3 from each model-free codec, plus the v2 format.
  // (cdc/gcd/vae_sr need trained artifacts; the fuzzers only care about
  // container structure, which is codec-independent.) ---
  for (const std::string codec : {"sz", "zfp"}) {
    const auto archive = SmallArchive(codec, 7 + codec.size());
    WriteBlob(archive_dir / ("v3_" + codec + ".bin"),
              archive.Serialize({.version = 3}));
  }
  {
    const auto archive = SmallArchive("sz", 23);
    const auto v3 = archive.Serialize({.version = 3});
    WriteBlob(archive_dir / "v2_sz.bin", SerializeAsV2(archive));

    // Damaged variants reach the rejection paths without coverage feedback:
    // a truncated stream, a severed footer, and a corrupted index byte.
    std::vector<std::uint8_t> truncated(v3.begin(),
                                        v3.begin() + v3.size() / 2);
    WriteBlob(archive_dir / "v3_truncated.bin", truncated);

    std::vector<std::uint8_t> no_footer(v3.begin(), v3.end() - 12);
    WriteBlob(archive_dir / "v3_no_footer.bin", no_footer);

    std::vector<std::uint8_t> bad_index = v3;
    bad_index[bad_index.size() - 20] ^= 0xFF;
    WriteBlob(archive_dir / "v3_bad_index.bin", bad_index);
  }

  // --- v4 seeds: the filtered/appendable layout. Selection-driven archives
  // from real codecs, every forced chain with the LZ backend on and off, and
  // damaged variants aimed at the new decode paths (a lying filter id in the
  // index, a stomped glz stream under an intact index, a severed 20-byte
  // footer). ---
  for (const std::string codec : {"sz", "zfp"}) {
    const auto archive = SmallArchive(codec, 7 + codec.size());
    WriteBlob(archive_dir / ("v4_" + codec + ".bin"), archive.Serialize());
  }
  {
    using glsc::core::FilterBackend;
    using glsc::core::FilterChain;
    using glsc::core::FilterSpec;
    const auto tiny = TinyArchive();
    const struct {
      const char* name;
      FilterSpec spec;
    } forced[] = {
        {"none_glz", {FilterChain::kNone, 1, FilterBackend::kGlz}},
        {"delta", {FilterChain::kDelta, 1, FilterBackend::kNone}},
        {"delta_glz", {FilterChain::kDelta, 1, FilterBackend::kGlz}},
        {"bitshuffle", {FilterChain::kBitshuffle, 4, FilterBackend::kNone}},
        {"bitshuffle_glz", {FilterChain::kBitshuffle, 4, FilterBackend::kGlz}},
        {"delta_bitshuffle_glz",
         {FilterChain::kDeltaBitshuffle, 2, FilterBackend::kGlz}},
    };
    for (const auto& f : forced) {
      WriteBlob(archive_dir / ("v4_forced_" + std::string(f.name) + ".bin"),
                tiny.Serialize({.version = 4, .forced_filter = f.spec}));
    }

    const auto clean = tiny.Serialize();
    // Lying filter id: reserved bits set on the index's first entry (count
    // and the leading varints are all single-byte here, so the filter byte
    // sits 4 bytes past the index offset).
    std::vector<std::uint8_t> lying = clean;
    std::uint64_t index_offset = 0;
    std::memcpy(&index_offset, lying.data() + lying.size() - 12, 8);
    lying[index_offset + 4] = 0xFF;
    WriteBlob(archive_dir / "v4_lying_filter_id.bin", lying);

    // Corrupt glz stream: record header and index intact, stored bytes
    // stomped with 0xFF extended-literal tokens.
    const auto reader = glsc::core::ArchiveReader::FromBytes(clean);
    std::vector<std::uint8_t> corrupt = clean;
    const auto& ref = reader.records().at(0);
    for (std::uint64_t i = 0; i < ref.length; ++i) {
      corrupt[ref.offset + i] = 0xFF;
    }
    WriteBlob(archive_dir / "v4_corrupt_glz.bin", corrupt);

    std::vector<std::uint8_t> no_footer(clean.begin(), clean.end() - 20);
    WriteBlob(archive_dir / "v4_no_footer.bin", no_footer);
  }

  // --- Range-coder seeds: [header | symbols] in the harness's input shape
  // (byte 0 picks the symbol count, bytes 1-3 shape the table, the rest is
  // the symbol stream). Spread over degenerate and wide tables.
  {
    const std::vector<std::vector<std::uint8_t>> shapes = {
        {0, 0, 0, 0},                      // 2 symbols, minimal freqs
        {62, 250, 1, 7},                   // 64 symbols, skewed
        {14, 100, 100, 100},               // 16 symbols, flat
    };
    int index = 0;
    for (const auto& header : shapes) {
      std::vector<std::uint8_t> blob = header;
      for (int i = 0; i < 96; ++i) {
        blob.push_back(static_cast<std::uint8_t>((i * 37 + index * 11) & 0xFF));
      }
      WriteBlob(coder_dir / ("seed_" + std::to_string(index++) + ".bin"),
                blob);
    }
  }
  std::printf("corpus written under %s\n", out_dir.c_str());
  return 0;
}
