// Fuzz target: range coder round-trip differential.
//
// The input deterministically selects a frequency table (always valid: every
// slot non-zero, total < kMaxTotal) and a symbol sequence. The harness then
// checks, aborting on any divergence:
//
//   1. Encode() per symbol and EncodeSpan() produce byte-identical streams
//      (EncodeSpan documents itself as a hoisted loop, not a new coder).
//   2. DecodeSlot()/Consume() recovers the original symbols.
//   3. DecodeSpan() recovers the original symbols.
//   4. The two decode APIs also agree when fed the RAW fuzz input as a
//      hostile bitstream (decoding garbage must stay in-bounds and
//      deterministic; NextByte() zero-fills past the end by contract).
//
// A mismatch means the SIMD-era bulk paths and the scalar reference have
// drifted — exactly the corruption class an archive gate cannot catch.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "codec/range_coder.h"
#include "fuzz_entry_points.h"

namespace {

using glsc::codec::RangeDecoder;
using glsc::codec::RangeEncoder;

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_range_coder divergence: %s\n", what);
    std::abort();
  }
}

}  // namespace

namespace glsc::fuzz {

int FuzzRangeCoder(const std::uint8_t* data, std::size_t size) {
  if (size < 4) return 0;

  // --- Derive a valid table from the prefix. ---
  const std::uint32_t nsyms = 2u + data[0] % 63u;  // 2..64 symbols
  std::vector<std::uint32_t> freq(nsyms), cum(nsyms + 1, 0);
  std::uint32_t total = 0;
  for (std::uint32_t s = 0; s < nsyms; ++s) {
    // 1..256 per slot: non-zero, and 64 * 256 stays far below kMaxTotal.
    freq[s] = 1u + data[1 + (s % 3)] % 251u + (s * 7u) % 5u;
    cum[s + 1] = cum[s] + freq[s];
    total += freq[s];
  }
  Require(total < RangeEncoder::kMaxTotal, "table total exceeds kMaxTotal");

  // --- Symbol stream from the rest of the input. ---
  std::vector<std::int32_t> syms;
  syms.reserve(size - 4);
  for (std::size_t i = 4; i < size; ++i) {
    syms.push_back(static_cast<std::int32_t>(data[i] % nsyms));
  }

  // --- 1: per-symbol vs bulk encode, byte for byte. ---
  RangeEncoder enc_scalar;
  for (const std::int32_t s : syms) {
    enc_scalar.Encode(cum[s], freq[s], total);
  }
  const std::vector<std::uint8_t> bytes_scalar = enc_scalar.Finish();

  RangeEncoder enc_bulk;
  enc_bulk.EncodeSpan(cum.data(), freq.data(), total, syms.data(), syms.size());
  const std::vector<std::uint8_t> bytes_bulk = enc_bulk.Finish();
  Require(bytes_scalar == bytes_bulk, "Encode vs EncodeSpan byte streams");

  // --- 2: slot/consume decode recovers the input. ---
  {
    RangeDecoder dec(bytes_scalar.data(), bytes_scalar.size());
    for (std::size_t i = 0; i < syms.size(); ++i) {
      const std::uint32_t slot = dec.DecodeSlot(total);
      std::int32_t sym = 0;
      while (cum[sym + 1] <= slot) ++sym;
      Require(sym == syms[i], "DecodeSlot round-trip symbol");
      dec.Consume(cum[sym], freq[sym], total);
    }
  }

  // --- 3: bulk decode recovers the input. ---
  {
    RangeDecoder dec(bytes_scalar.data(), bytes_scalar.size());
    std::vector<std::int32_t> out(syms.size());
    const std::size_t got =
        dec.DecodeSpan(cum.data(), freq.data(), nsyms, total,
                       /*stop_sym=*/-1, out.data(), out.size());
    Require(got == syms.size(), "DecodeSpan symbol count");
    Require(out == syms, "DecodeSpan round-trip symbols");
  }

  // --- 4: hostile bitstream — both decode APIs agree symbol-for-symbol. ---
  {
    const std::size_t probe = std::min<std::size_t>(size, 512);
    RangeDecoder dec_a(data, size);
    RangeDecoder dec_b(data, size);
    std::vector<std::int32_t> out_b(probe);
    const std::size_t got = dec_b.DecodeSpan(cum.data(), freq.data(), nsyms,
                                             total, /*stop_sym=*/-1,
                                             out_b.data(), probe);
    Require(got == probe, "hostile DecodeSpan count");
    for (std::size_t i = 0; i < probe; ++i) {
      const std::uint32_t slot = dec_a.DecodeSlot(total);
      std::int32_t sym = 0;
      while (cum[sym + 1] <= slot) ++sym;
      dec_a.Consume(cum[sym], freq[sym], total);
      Require(sym == out_b[i], "hostile decode API agreement");
    }
  }
  return 0;
}

}  // namespace glsc::fuzz

#ifndef GLSC_FUZZ_REGRESSION_TU
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return glsc::fuzz::FuzzRangeCoder(data, size);
}
#endif
