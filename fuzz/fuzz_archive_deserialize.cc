// Fuzz target: DatasetArchive::Deserialize over arbitrary bytes.
//
// The container format promises that every length/count field is validated
// against the remaining input before any allocation (container.h), so the
// only acceptable outcomes here are a parsed archive or a typed exception.
// Crashes, sanitizer reports, and OOM-sized allocations are findings.
#include <cstddef>
#include <cstdint>
#include <exception>
#include <vector>

#include "core/container.h"
#include "fuzz_entry_points.h"

namespace glsc::fuzz {

int FuzzArchiveDeserialize(const std::uint8_t* data, std::size_t size) {
  std::vector<std::uint8_t> bytes(data, data + size);
  try {
    const auto archive = glsc::core::DatasetArchive::Deserialize(bytes);
    // Walk the parsed state so lazily-touched fields are exercised too.
    std::size_t payload_bytes = 0;
    for (const auto& entry : archive.entries()) {
      payload_bytes += entry.payload.size();
    }
    (void)payload_bytes;
    if (!archive.entries().empty() && archive.dataset_shape().size() == 4 &&
        archive.dataset_shape()[0] > 0 && archive.dataset_shape()[1] > 0) {
      // norm() indexes the V*T table; a parse that accepted inconsistent
      // shape/norm counts would fault here rather than in a caller.
      (void)archive.norm(0, 0);
    }
  } catch (const std::exception&) {
    // Hostile input rejected with a typed error — the expected path.
  }
  return 0;
}

}  // namespace glsc::fuzz

#ifndef GLSC_FUZZ_REGRESSION_TU
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return glsc::fuzz::FuzzArchiveDeserialize(data, size);
}
#endif
