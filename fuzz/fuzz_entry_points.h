// Named entry points for the fuzz harnesses.
//
// Each fuzz/fuzz_*.cc implements its logic in one of these functions and
// wraps it in the conventional `extern "C" LLVMFuzzerTestOneInput` symbol —
// UNLESS the TU is compiled with GLSC_FUZZ_REGRESSION_TU, which suppresses
// the wrapper so all three harnesses can link into a single binary:
// tests/fuzz_regression_test.cc replays fuzz/corpus-regressions/* through
// every harness in the normal ctest run, no clang or libFuzzer required.
#pragma once

#include <cstddef>
#include <cstdint>

namespace glsc::fuzz {

int FuzzArchiveDeserialize(const std::uint8_t* data, std::size_t size);
int FuzzArchiveReader(const std::uint8_t* data, std::size_t size);
int FuzzRangeCoder(const std::uint8_t* data, std::size_t size);

}  // namespace glsc::fuzz
