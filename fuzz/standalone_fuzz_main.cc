// Standalone driver for the fuzz/ harnesses on toolchains without libFuzzer
// (gcc). Replays every corpus file through LLVMFuzzerTestOneInput, then runs
// a bounded, fully deterministic mutation sweep over each seed: byte flips,
// truncations, extensions, and chunk swaps driven by an xorshift PRNG seeded
// from the file contents. No coverage feedback — this is a smoke lane, not a
// replacement for a real libFuzzer run — but it keeps the harnesses honest
// and catches shallow parser regressions in CI.
//
//   fuzz_archive_reader CORPUS_DIR [CORPUS_DIR...]
//   GLSC_FUZZ_MUTATIONS=200   mutations per seed (default 200; 0 = replay only)
//   GLSC_FUZZ_MAX_SECONDS=30  wall-clock budget (default 30; 0 = unbounded)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t g_rng_state = 0;

std::uint64_t NextRand() {
  // xorshift64: deterministic, seeded per input file.
  g_rng_state ^= g_rng_state << 13;
  g_rng_state ^= g_rng_state >> 7;
  g_rng_state ^= g_rng_state << 17;
  return g_rng_state;
}

std::vector<std::uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void Mutate(std::vector<std::uint8_t>* bytes) {
  if (bytes->empty()) {
    bytes->push_back(static_cast<std::uint8_t>(NextRand()));
    return;
  }
  switch (NextRand() % 5) {
    case 0:  // flip one byte
      (*bytes)[NextRand() % bytes->size()] ^=
          static_cast<std::uint8_t>(1u << (NextRand() % 8));
      break;
    case 1:  // overwrite one byte
      (*bytes)[NextRand() % bytes->size()] =
          static_cast<std::uint8_t>(NextRand());
      break;
    case 2:  // truncate
      bytes->resize(NextRand() % bytes->size());
      break;
    case 3: {  // extend with junk
      const std::size_t extra = 1 + NextRand() % 16;
      for (std::size_t i = 0; i < extra; ++i) {
        bytes->push_back(static_cast<std::uint8_t>(NextRand()));
      }
      break;
    }
    case 4: {  // swap two chunks
      const std::size_t a = NextRand() % bytes->size();
      const std::size_t b = NextRand() % bytes->size();
      std::swap((*bytes)[a], (*bytes)[b]);
      break;
    }
  }
}

long EnvLong(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return (value != nullptr && *value != '\0') ? std::atol(value) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const long mutations = EnvLong("GLSC_FUZZ_MUTATIONS", 200);
  const long budget_s = EnvLong("GLSC_FUZZ_MAX_SECONDS", 30);
  const auto start = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (budget_s <= 0) return false;
    return std::chrono::steady_clock::now() - start >=
           std::chrono::seconds(budget_s);
  };

  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else if (std::filesystem::is_regular_file(p)) {
      files.push_back(p.string());
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s CORPUS_FILE_OR_DIR...\n", argv[0]);
    return 2;
  }

  std::size_t executions = 0;
  for (const auto& file : files) {
    const std::vector<std::uint8_t> seed = ReadFile(file);
    LLVMFuzzerTestOneInput(seed.data(), seed.size());
    ++executions;

    // Seed the PRNG from the contents (FNV-1a) so runs are reproducible and
    // independent of corpus file ordering or names.
    g_rng_state = 1469598103934665603ull;
    for (const std::uint8_t b : seed) {
      g_rng_state = (g_rng_state ^ b) * 1099511628211ull;
    }
    if (g_rng_state == 0) g_rng_state = 1;

    std::vector<std::uint8_t> current = seed;
    for (long m = 0; m < mutations && !out_of_time(); ++m) {
      Mutate(&current);
      LLVMFuzzerTestOneInput(current.data(), current.size());
      ++executions;
      // Restart from the seed periodically so mutations stay shallow enough
      // to keep exercising the deeper parser stages, not just magic checks.
      if (m % 16 == 15) current = seed;
    }
    if (out_of_time()) break;
  }
  std::printf("standalone fuzz: %zu executions over %zu seed(s), clean\n",
              executions, files.size());
  return 0;
}
