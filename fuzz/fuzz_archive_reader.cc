// Fuzz target: ArchiveReader::FromBytes + full record fetch over arbitrary
// bytes.
//
// Exercises the v3 footer/index path, the v1/v2 scan-built index path, and
// ReadPayload's offset/length arithmetic. The contract under fire: any input
// either opens (and then every indexed record is fetchable) or raises
// ArchiveError / std::exception — never a crash, hang, or wild read.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <vector>

#include "core/archive_reader.h"
#include "fuzz_entry_points.h"

namespace glsc::fuzz {

int FuzzArchiveReader(const std::uint8_t* data, std::size_t size) {
  std::vector<std::uint8_t> bytes(data, data + size);
  try {
    const auto reader = glsc::core::ArchiveReader::FromBytes(std::move(bytes));
    // Fetch every record the index claims to exist (bounded: a hostile index
    // cannot inflate the record count past what validation admitted, but cap
    // the walk anyway so the harness stays fast on large accepted inputs).
    const std::size_t n = std::min<std::size_t>(reader.records().size(), 256);
    for (std::size_t i = 0; i < n; ++i) {
      const auto payload = reader.ReadPayload(i);
      (void)payload;
    }
    // Range queries walk the per-variable index.
    const auto& shape = reader.dataset_shape();
    if (shape.size() == 4 && shape[0] > 0 && shape[1] > 0) {
      (void)reader.RecordsFor(0, 0, shape[1]);
      (void)reader.norm(0, 0);
    }
  } catch (const std::exception&) {
    // Hostile input rejected with a typed error — the expected path.
  }
  return 0;
}

}  // namespace glsc::fuzz

#ifndef GLSC_FUZZ_REGRESSION_TU
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return glsc::fuzz::FuzzArchiveReader(data, size);
}
#endif
