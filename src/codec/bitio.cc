#include "codec/bitio.h"

// Header-only; this translation unit exists so the target always has at least
// one object file and to catch ODR issues early.
