// Canonical Huffman coding of signed integer symbol streams. This is the
// entropy backend of the SZ-like rule-based baseline (quantization codes are
// heavily skewed toward zero, which Huffman exploits well at much higher
// speed than arithmetic coding).
//
// Stream layout: symbol table (count, then per-symbol value + code length),
// followed by the bit-packed payload. Symbols unseen at table-build time
// cannot occur (the table is built from the exact stream being coded).
#pragma once

#include <cstdint>
#include <vector>

namespace glsc::codec {

std::vector<std::uint8_t> HuffmanEncode(const std::vector<std::int32_t>& symbols);
std::vector<std::int32_t> HuffmanDecode(const std::vector<std::uint8_t>& bytes);

// Shannon entropy of the symbol stream in bits (lower bound for the payload).
double SymbolEntropyBits(const std::vector<std::int32_t>& symbols);

}  // namespace glsc::codec
