// Discretized Gaussian conditional entropy model (Ballé/Minnen hyperprior
// style, Eq. 1-2 of the paper): each quantized latent element y_i is an
// integer whose probability is N(mu_i, sigma_i^2) convolved with U(-1/2,1/2),
// i.e. pmf(k) = Phi((k+.5-mu)/sigma) - Phi((k-.5-mu)/sigma).
//
// Encoding codes d = y - round(mu) against a frequency table derived from the
// quantized (sigma, frac(mu)) pair; the decoder reconstructs the identical
// table from the same (mu, sigma) it obtained by decoding the hyperlatent, so
// the bitstream round-trips exactly. Symbols outside the table window are
// escape-coded with raw bits.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/range_coder.h"
#include "tensor/tensor.h"

namespace glsc::codec {

class GaussianConditionalModel {
 public:
  // Window of [-kHalfWindow, kHalfWindow-1] around round(mu), plus escape.
  static constexpr int kHalfWindow = 64;
  static constexpr int kSigmaBins = 64;
  static constexpr int kFracBins = 16;

  // Encode integer-valued tensor `y` (each element already rounded) with
  // per-element conditional parameters mu/sigma (same shape as y).
  std::vector<std::uint8_t> Encode(const Tensor& y, const Tensor& mu,
                                   const Tensor& sigma);

  // Inverse; `count` elements are decoded into a tensor of mu's shape.
  Tensor Decode(const std::vector<std::uint8_t>& bytes, const Tensor& mu,
                const Tensor& sigma);

  // Exact information content in bits of coding y against the model; used by
  // tests to verify coded size ~= entropy and by rate reporting.
  double TheoreticalBits(const Tensor& y, const Tensor& mu,
                         const Tensor& sigma) const;

 private:
  struct FreqTable {
    std::vector<std::uint32_t> freq;  // size 2*kHalfWindow + 1 (last = escape)
    std::vector<std::uint32_t> cum;   // prefix sums, size freq.size() + 1
    std::uint32_t total = 0;
  };

  // Tables are pure functions of the (sigma_bin, frac_bin) pair, so they are
  // memoized once per process in a lock-guarded static cache shared by every
  // model instance — repeated Encode/Decode windows (and fresh model objects)
  // never rebuild an already-known table. Deterministic: encoder and decoder
  // derive equal tables.
  static const FreqTable& CachedTable(int sigma_bin, int frac_bin);
  static FreqTable BuildTable(int sigma_bin, int frac_bin);
  static float SigmaForBin(int bin);
  static float FracForBin(int bin);
  static void QuantizeParams(float mu, float sigma, int* sigma_bin,
                             int* frac_bin);
};

}  // namespace glsc::codec
