#include "codec/gaussian_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace glsc::codec {
namespace {

constexpr float kSigmaMin = 0.05f;
constexpr float kSigmaMax = 64.0f;

double NormalCdf(double x) { return 0.5 * std::erfc(-x * (1.0 / std::sqrt(2.0))); }

// pmf of integer offset d for a Gaussian centered at `frac` with stddev
// `sigma`, after convolution with U(-1/2, 1/2).
double OffsetPmf(int d, double frac, double sigma) {
  const double hi = (static_cast<double>(d) + 0.5 - frac) / sigma;
  const double lo = (static_cast<double>(d) - 0.5 - frac) / sigma;
  return NormalCdf(hi) - NormalCdf(lo);
}

}  // namespace

float GaussianConditionalModel::SigmaForBin(int bin) {
  const float t = static_cast<float>(bin) / (kSigmaBins - 1);
  return kSigmaMin * std::pow(kSigmaMax / kSigmaMin, t);
}

float GaussianConditionalModel::FracForBin(int bin) {
  // Bin centers uniformly spread over [-0.5, 0.5).
  return -0.5f + (static_cast<float>(bin) + 0.5f) / kFracBins;
}

void GaussianConditionalModel::QuantizeParams(float mu, float sigma,
                                              int* sigma_bin, int* frac_bin) {
  const float s = std::clamp(sigma, kSigmaMin, kSigmaMax);
  const float t = std::log(s / kSigmaMin) / std::log(kSigmaMax / kSigmaMin);
  *sigma_bin = std::clamp(
      static_cast<int>(std::lround(t * (kSigmaBins - 1))), 0, kSigmaBins - 1);
  const float frac = mu - std::nearbyint(mu);  // in [-0.5, 0.5]
  *frac_bin = std::clamp(static_cast<int>((frac + 0.5f) * kFracBins), 0,
                         kFracBins - 1);
}

GaussianConditionalModel::FreqTable GaussianConditionalModel::BuildTable(
    int sigma_bin, int frac_bin) {
  const double sigma = SigmaForBin(sigma_bin);
  const double frac = FracForBin(frac_bin);
  const int window = 2 * kHalfWindow;  // offsets in [-kHalfWindow, kHalfWindow)

  FreqTable table;
  table.freq.resize(window + 1);  // + escape slot

  // Target a total well under the coder's 16-bit ceiling and keep every slot
  // non-zero so any offset remains codable.
  constexpr std::uint32_t kTargetTotal = 1u << 14;
  double mass_in_window = 0.0;
  std::vector<double> pmf(window);
  for (int i = 0; i < window; ++i) {
    pmf[i] = OffsetPmf(i - kHalfWindow, frac, sigma);
    mass_in_window += pmf[i];
  }
  const double escape_mass = std::max(1.0 - mass_in_window, 1e-9);

  std::uint32_t assigned = 0;
  for (int i = 0; i < window; ++i) {
    const auto f = static_cast<std::uint32_t>(
        std::max(1.0, std::floor(pmf[i] * kTargetTotal)));
    table.freq[i] = f;
    assigned += f;
  }
  table.freq[window] = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(escape_mass * kTargetTotal));
  assigned += table.freq[window];
  GLSC_CHECK(assigned < RangeEncoder::kMaxTotal);

  table.cum.resize(table.freq.size() + 1);
  table.cum[0] = 0;
  for (std::size_t i = 0; i < table.freq.size(); ++i) {
    table.cum[i + 1] = table.cum[i] + table.freq[i];
  }
  table.total = table.cum.back();
  return table;
}

const GaussianConditionalModel::FreqTable& GaussianConditionalModel::TableFor(
    float mu, float sigma, int* sigma_bin, int* frac_bin) {
  QuantizeParams(mu, sigma, sigma_bin, frac_bin);
  const std::uint32_t key =
      static_cast<std::uint32_t>(*sigma_bin) * kFracBins +
      static_cast<std::uint32_t>(*frac_bin);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, BuildTable(*sigma_bin, *frac_bin)).first;
  }
  return it->second;
}

std::vector<std::uint8_t> GaussianConditionalModel::Encode(
    const Tensor& y, const Tensor& mu, const Tensor& sigma) {
  GLSC_CHECK(y.shape() == mu.shape() && y.shape() == sigma.shape());
  RangeEncoder enc;
  const std::int64_t n = y.numel();
  const float* py = y.data();
  const float* pm = mu.data();
  const float* ps = sigma.data();
  const int window = 2 * kHalfWindow;

  for (std::int64_t i = 0; i < n; ++i) {
    int sbin, fbin;
    const FreqTable& table = TableFor(pm[i], ps[i], &sbin, &fbin);
    const auto yi = static_cast<std::int64_t>(std::nearbyint(py[i]));
    const auto mu_round = static_cast<std::int64_t>(std::nearbyint(pm[i]));
    const std::int64_t d = yi - mu_round;
    if (d >= -kHalfWindow && d < kHalfWindow) {
      const int slot = static_cast<int>(d) + kHalfWindow;
      enc.Encode(table.cum[slot], table.freq[slot], table.total);
    } else {
      // Escape: code the escape symbol then the value as a raw 32-bit zigzag
      // through two 16-bit uniform symbols.
      enc.Encode(table.cum[window], table.freq[window], table.total);
      const auto zz = static_cast<std::uint32_t>((d << 1) ^ (d >> 63));
      enc.Encode(static_cast<std::uint16_t>(zz & 0xFFFF), 1, 1u << 16);
      enc.Encode(static_cast<std::uint16_t>(zz >> 16), 1, 1u << 16);
    }
  }
  return enc.Finish();
}

Tensor GaussianConditionalModel::Decode(const std::vector<std::uint8_t>& bytes,
                                        const Tensor& mu,
                                        const Tensor& sigma) {
  GLSC_CHECK(mu.shape() == sigma.shape());
  RangeDecoder dec(bytes.data(), bytes.size());
  Tensor y(mu.shape());
  const std::int64_t n = y.numel();
  float* py = y.data();
  const float* pm = mu.data();
  const float* ps = sigma.data();
  const int window = 2 * kHalfWindow;

  for (std::int64_t i = 0; i < n; ++i) {
    int sbin, fbin;
    const FreqTable& table = TableFor(pm[i], ps[i], &sbin, &fbin);
    const std::uint32_t slot_pos = dec.DecodeSlot(table.total);
    // Binary search the cumulative table for the symbol owning this slot.
    const auto it =
        std::upper_bound(table.cum.begin(), table.cum.end(), slot_pos);
    const int sym = static_cast<int>(it - table.cum.begin()) - 1;
    dec.Consume(table.cum[sym], table.freq[sym], table.total);

    const auto mu_round = static_cast<std::int64_t>(std::nearbyint(pm[i]));
    std::int64_t d;
    if (sym < window) {
      d = sym - kHalfWindow;
    } else {
      const std::uint32_t lo = dec.DecodeSlot(1u << 16);
      dec.Consume(lo, 1, 1u << 16);
      const std::uint32_t hi = dec.DecodeSlot(1u << 16);
      dec.Consume(hi, 1, 1u << 16);
      const std::uint32_t zz = lo | (hi << 16);
      d = static_cast<std::int64_t>(zz >> 1) ^
          -static_cast<std::int64_t>(zz & 1);
    }
    py[i] = static_cast<float>(mu_round + d);
  }
  return y;
}

double GaussianConditionalModel::TheoreticalBits(const Tensor& y,
                                                 const Tensor& mu,
                                                 const Tensor& sigma) const {
  GLSC_CHECK(y.shape() == mu.shape() && y.shape() == sigma.shape());
  const std::int64_t n = y.numel();
  const float* py = y.data();
  const float* pm = mu.data();
  const float* ps = sigma.data();
  double bits = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double s = std::clamp(ps[i], kSigmaMin, kSigmaMax);
    const double p =
        std::max(OffsetPmf(0, pm[i] - std::nearbyint(py[i]), s), 1e-12);
    // Note the sign flip: P(y | mu) with y integer equals the pmf of offset
    // (y - mu) which is OffsetPmf evaluated at frac = mu - y.
    bits += -std::log2(p);
  }
  return bits;
}

}  // namespace glsc::codec
