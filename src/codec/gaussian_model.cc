#include "codec/gaussian_model.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <memory>

#include "util/check.h"
#include "util/mutex.h"

namespace glsc::codec {
namespace {

constexpr float kSigmaMin = 0.05f;
constexpr float kSigmaMax = 64.0f;

double NormalCdf(double x) { return 0.5 * std::erfc(-x * (1.0 / std::sqrt(2.0))); }

// pmf of integer offset d for a Gaussian centered at `frac` with stddev
// `sigma`, after convolution with U(-1/2, 1/2).
double OffsetPmf(int d, double frac, double sigma) {
  const double hi = (static_cast<double>(d) + 0.5 - frac) / sigma;
  const double lo = (static_cast<double>(d) - 0.5 - frac) / sigma;
  return NormalCdf(hi) - NormalCdf(lo);
}

}  // namespace

float GaussianConditionalModel::SigmaForBin(int bin) {
  const float t = static_cast<float>(bin) / (kSigmaBins - 1);
  return kSigmaMin * std::pow(kSigmaMax / kSigmaMin, t);
}

float GaussianConditionalModel::FracForBin(int bin) {
  // Bin centers uniformly spread over [-0.5, 0.5).
  return -0.5f + (static_cast<float>(bin) + 0.5f) / kFracBins;
}

void GaussianConditionalModel::QuantizeParams(float mu, float sigma,
                                              int* sigma_bin, int* frac_bin) {
  const float s = std::clamp(sigma, kSigmaMin, kSigmaMax);
  const float t = std::log(s / kSigmaMin) / std::log(kSigmaMax / kSigmaMin);
  *sigma_bin = std::clamp(
      static_cast<int>(std::lround(t * (kSigmaBins - 1))), 0, kSigmaBins - 1);
  const float frac = mu - std::nearbyint(mu);  // in [-0.5, 0.5]
  *frac_bin = std::clamp(static_cast<int>((frac + 0.5f) * kFracBins), 0,
                         kFracBins - 1);
}

GaussianConditionalModel::FreqTable GaussianConditionalModel::BuildTable(
    int sigma_bin, int frac_bin) {
  const double sigma = SigmaForBin(sigma_bin);
  const double frac = FracForBin(frac_bin);
  const int window = 2 * kHalfWindow;  // offsets in [-kHalfWindow, kHalfWindow)

  FreqTable table;
  table.freq.resize(window + 1);  // + escape slot

  // Target a total well under the coder's 16-bit ceiling and keep every slot
  // non-zero so any offset remains codable.
  constexpr std::uint32_t kTargetTotal = 1u << 14;
  double mass_in_window = 0.0;
  std::vector<double> pmf(window);
  for (int i = 0; i < window; ++i) {
    pmf[i] = OffsetPmf(i - kHalfWindow, frac, sigma);
    mass_in_window += pmf[i];
  }
  const double escape_mass = std::max(1.0 - mass_in_window, 1e-9);

  std::uint32_t assigned = 0;
  for (int i = 0; i < window; ++i) {
    const auto f = static_cast<std::uint32_t>(
        std::max(1.0, std::floor(pmf[i] * kTargetTotal)));
    table.freq[i] = f;
    assigned += f;
  }
  table.freq[window] = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(escape_mass * kTargetTotal));
  assigned += table.freq[window];
  GLSC_CHECK(assigned < RangeEncoder::kMaxTotal);

  table.cum.resize(table.freq.size() + 1);
  table.cum[0] = 0;
  for (std::size_t i = 0; i < table.freq.size(); ++i) {
    table.cum[i + 1] = table.cum[i] + table.freq[i];
  }
  table.total = table.cum.back();
  return table;
}

const GaussianConditionalModel::FreqTable&
GaussianConditionalModel::CachedTable(int sigma_bin, int frac_bin) {
  // Process-wide FreqTable cache: lock-free fast path over an atomic pointer
  // per (sigma_bin, frac_bin) slot; builds are serialized by build_mu. Built
  // tables are immutable and live for the process, so readers never see a
  // partially-built table. The slots are deliberately NOT GUARDED_BY(build_mu):
  // readers load them without the lock by design, and the acquire/release
  // pair on the pointer is the synchronization — the mutex only keeps two
  // writers from building (and leaking) the same table twice.
  struct FreqTableCache {
    Mutex build_mu{"GaussianConditionalModel.build_mu"};
    std::array<std::atomic<const FreqTable*>, kSigmaBins * kFracBins> slots{};
  };
  static FreqTableCache cache;
  auto& slot = cache.slots[static_cast<std::size_t>(sigma_bin) * kFracBins +
                           static_cast<std::size_t>(frac_bin)];
  const FreqTable* table = slot.load(std::memory_order_acquire);
  if (table == nullptr) {
    MutexLock lock(cache.build_mu);
    table = slot.load(std::memory_order_relaxed);
    if (table == nullptr) {
      table = new FreqTable(BuildTable(sigma_bin, frac_bin));
      slot.store(table, std::memory_order_release);
    }
  }
  return *table;
}

std::vector<std::uint8_t> GaussianConditionalModel::Encode(
    const Tensor& y, const Tensor& mu, const Tensor& sigma) {
  GLSC_CHECK(y.shape() == mu.shape() && y.shape() == sigma.shape());
  RangeEncoder enc;
  const std::int64_t n = y.numel();
  // Typical latents code to ~1 byte per element; a one-shot reserve keeps
  // the output vector from reallocating through the hot loop.
  enc.Reserve(static_cast<std::size_t>(n) + 64);
  const float* py = y.data();
  const float* pm = mu.data();
  const float* ps = sigma.data();
  const int window = 2 * kHalfWindow;

  std::vector<std::int32_t> slots;
  slots.reserve(static_cast<std::size_t>(std::min<std::int64_t>(n, 4096)));
  std::int64_t i = 0;
  while (i < n) {
    // Contiguous elements with bitwise-equal (mu, sigma) share one table and
    // one parameter quantization; constant-parameter tensors (the common
    // bench and keyframe case) collapse into a single run.
    const float mu_i = pm[i];
    const float sigma_i = ps[i];
    std::int64_t run_end = i + 1;
    while (run_end < n && pm[run_end] == mu_i && ps[run_end] == sigma_i) {
      ++run_end;
    }
    int sbin, fbin;
    QuantizeParams(mu_i, sigma_i, &sbin, &fbin);
    const FreqTable& table = CachedTable(sbin, fbin);
    const auto mu_round = static_cast<std::int64_t>(std::nearbyint(mu_i));

    slots.clear();
    for (std::int64_t j = i; j < run_end; ++j) {
      const auto yi = static_cast<std::int64_t>(std::nearbyint(py[j]));
      const std::int64_t d = yi - mu_round;
      if (d >= -kHalfWindow && d < kHalfWindow) {
        slots.push_back(static_cast<std::int32_t>(d) + kHalfWindow);
      } else {
        // Escape: flush the pending in-window symbols, then code the escape
        // symbol and the value as a raw 32-bit zigzag through two 16-bit
        // uniform symbols.
        enc.EncodeSpan(table.cum.data(), table.freq.data(), table.total,
                       slots.data(), slots.size());
        slots.clear();
        enc.Encode(table.cum[window], table.freq[window], table.total);
        const auto zz = static_cast<std::uint32_t>((d << 1) ^ (d >> 63));
        enc.Encode(static_cast<std::uint16_t>(zz & 0xFFFF), 1, 1u << 16);
        enc.Encode(static_cast<std::uint16_t>(zz >> 16), 1, 1u << 16);
      }
    }
    enc.EncodeSpan(table.cum.data(), table.freq.data(), table.total,
                   slots.data(), slots.size());
    i = run_end;
  }
  return enc.Finish();
}

Tensor GaussianConditionalModel::Decode(const std::vector<std::uint8_t>& bytes,
                                        const Tensor& mu,
                                        const Tensor& sigma) {
  GLSC_CHECK(mu.shape() == sigma.shape());
  RangeDecoder dec(bytes.data(), bytes.size());
  Tensor y(mu.shape());
  const std::int64_t n = y.numel();
  float* py = y.data();
  const float* pm = mu.data();
  const float* ps = sigma.data();
  const int window = 2 * kHalfWindow;

  std::vector<std::int32_t> syms(
      static_cast<std::size_t>(std::min<std::int64_t>(n, 4096)));
  std::int64_t i = 0;
  while (i < n) {
    // Mirror of Encode's run detection: identical (mu, sigma) runs decode
    // against one cached table via the bulk span API.
    const float mu_i = pm[i];
    const float sigma_i = ps[i];
    std::int64_t run_end = i + 1;
    while (run_end < n && pm[run_end] == mu_i && ps[run_end] == sigma_i) {
      ++run_end;
    }
    int sbin, fbin;
    QuantizeParams(mu_i, sigma_i, &sbin, &fbin);
    const FreqTable& table = CachedTable(sbin, fbin);
    const auto mu_round = static_cast<std::int64_t>(std::nearbyint(mu_i));

    std::int64_t j = i;
    while (j < run_end) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::int64_t>(run_end - j,
                                 static_cast<std::int64_t>(syms.size())));
      const std::size_t got = dec.DecodeSpan(
          table.cum.data(), table.freq.data(),
          static_cast<std::uint32_t>(window) + 1, table.total,
          /*stop_sym=*/window, syms.data(), want);
      for (std::size_t k = 0; k < got; ++k) {
        const std::int32_t sym = syms[k];
        std::int64_t d;
        if (sym < window) {
          d = sym - kHalfWindow;
        } else {
          // Escape payload: raw 32-bit zigzag via two 16-bit uniforms.
          const std::uint32_t lo = dec.DecodeSlot(1u << 16);
          dec.Consume(lo, 1, 1u << 16);
          const std::uint32_t hi = dec.DecodeSlot(1u << 16);
          dec.Consume(hi, 1, 1u << 16);
          const std::uint32_t zz = lo | (hi << 16);
          d = static_cast<std::int64_t>(zz >> 1) ^
              -static_cast<std::int64_t>(zz & 1);
        }
        py[j + static_cast<std::int64_t>(k)] =
            static_cast<float>(mu_round + d);
      }
      j += static_cast<std::int64_t>(got);
    }
    i = run_end;
  }
  return y;
}

double GaussianConditionalModel::TheoreticalBits(const Tensor& y,
                                                 const Tensor& mu,
                                                 const Tensor& sigma) const {
  GLSC_CHECK(y.shape() == mu.shape() && y.shape() == sigma.shape());
  const std::int64_t n = y.numel();
  const float* py = y.data();
  const float* pm = mu.data();
  const float* ps = sigma.data();
  double bits = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double s = std::clamp(ps[i], kSigmaMin, kSigmaMax);
    const double p =
        std::max(OffsetPmf(0, pm[i] - std::nearbyint(py[i]), s), 1e-12);
    // Note the sign flip: P(y | mu) with y integer equals the pmf of offset
    // (y - mu) which is OffsetPmf evaluated at frac = mu - y.
    bits += -std::log2(p);
  }
  return bits;
}

}  // namespace glsc::codec
