// Per-channel discretized logistic codec. This is the coding half of the
// "fully factorized" hyperlatent prior (Ballé et al. [4]): each channel c of
// the integer hyperlatent z is coded against
//   pmf(k) = sigmoid((k+1/2-mu_c)/s_c) - sigmoid((k-1/2-mu_c)/s_c).
// The learnable (mu_c, s_c) parameters live in compress::FactorizedPrior;
// this class only consumes their values, so encoder and decoder stay in sync
// by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace glsc::codec {

class LogisticChannelCodec {
 public:
  static constexpr int kHalfWindow = 128;

  // z: [B, C, ...] integer-valued; mu/s have C entries (s > 0).
  std::vector<std::uint8_t> Encode(const Tensor& z, const std::vector<float>& mu,
                                   const std::vector<float>& s);
  Tensor Decode(const std::vector<std::uint8_t>& bytes, const Shape& shape,
                const std::vector<float>& mu, const std::vector<float>& s);

  double TheoreticalBits(const Tensor& z, const std::vector<float>& mu,
                         const std::vector<float>& s) const;

 private:
  struct FreqTable {
    std::vector<std::uint32_t> freq;
    std::vector<std::uint32_t> cum;
    std::uint32_t total = 0;
    std::int64_t origin = 0;  // offset of slot 0 relative to round(mu)
  };

  static FreqTable BuildTable(float mu, float s);
};

}  // namespace glsc::codec
