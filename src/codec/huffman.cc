#include "codec/huffman.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "codec/bitio.h"
#include "util/bytes.h"
#include "util/check.h"

namespace glsc::codec {
namespace {

struct Node {
  std::uint64_t weight;
  int symbol_index;  // -1 for internal
  int left = -1, right = -1;
};

// Computes code lengths via a standard two-queue Huffman construction, then
// assigns canonical codes (sorted by length, then symbol order).
void BuildCodeLengths(const std::vector<std::uint64_t>& freqs,
                      std::vector<int>* lengths) {
  const int n = static_cast<int>(freqs.size());
  lengths->assign(n, 0);
  if (n == 1) {
    (*lengths)[0] = 1;
    return;
  }
  std::vector<Node> nodes;
  nodes.reserve(2 * n);
  using Entry = std::pair<std::uint64_t, int>;  // (weight, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int i = 0; i < n; ++i) {
    nodes.push_back({freqs[i], i});
    heap.push({freqs[i], i});
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, -1, a, b});
    heap.push({wa + wb, static_cast<int>(nodes.size()) - 1});
  }
  // DFS to assign depths.
  std::vector<std::pair<int, int>> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(idx)];
    if (node.symbol_index >= 0) {
      (*lengths)[node.symbol_index] = std::max(depth, 1);
    } else {
      stack.push_back({node.left, depth + 1});
      stack.push_back({node.right, depth + 1});
    }
  }
}

// Canonical code assignment from lengths; returns (code, length) pairs.
void AssignCanonicalCodes(const std::vector<int>& lengths,
                          std::vector<std::uint32_t>* codes) {
  const int n = static_cast<int>(lengths.size());
  codes->assign(n, 0);
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  std::uint32_t code = 0;
  int prev_len = 0;
  for (const int idx : order) {
    code <<= (lengths[idx] - prev_len);
    (*codes)[idx] = code;
    ++code;
    prev_len = lengths[idx];
  }
}

}  // namespace

std::vector<std::uint8_t> HuffmanEncode(
    const std::vector<std::int32_t>& symbols) {
  ByteWriter out;
  out.PutVarU64(symbols.size());
  if (symbols.empty()) return out.Release();

  // Dense symbol dictionary in first-seen order, sorted for determinism.
  std::map<std::int32_t, std::uint64_t> freq_map;
  for (const auto s : symbols) ++freq_map[s];
  std::vector<std::int32_t> alphabet;
  std::vector<std::uint64_t> freqs;
  alphabet.reserve(freq_map.size());
  for (const auto& [sym, f] : freq_map) {
    alphabet.push_back(sym);
    freqs.push_back(f);
  }

  std::vector<int> lengths;
  BuildCodeLengths(freqs, &lengths);
  std::vector<std::uint32_t> codes;
  AssignCanonicalCodes(lengths, &codes);

  out.PutVarU64(alphabet.size());
  for (std::size_t i = 0; i < alphabet.size(); ++i) {
    out.PutVarI64(alphabet[i]);
    out.PutU8(static_cast<std::uint8_t>(lengths[i]));
  }

  std::map<std::int32_t, std::size_t> index;
  for (std::size_t i = 0; i < alphabet.size(); ++i) index[alphabet[i]] = i;

  BitWriter bits;
  for (const auto s : symbols) {
    const std::size_t i = index[s];
    GLSC_CHECK_MSG(lengths[i] <= 32, "pathological Huffman depth");
    bits.PutBits(codes[i], lengths[i]);
  }
  const auto payload = bits.Finish();
  out.PutVarU64(payload.size());
  out.PutBytes(payload.data(), payload.size());
  return out.Release();
}

std::vector<std::int32_t> HuffmanDecode(const std::vector<std::uint8_t>& bytes) {
  ByteReader in(bytes);
  const std::uint64_t count = in.GetVarU64();
  std::vector<std::int32_t> symbols;
  symbols.reserve(count);
  if (count == 0) return symbols;

  const std::uint64_t alpha_size = in.GetVarU64();
  std::vector<std::int32_t> alphabet(alpha_size);
  std::vector<int> lengths(alpha_size);
  for (std::uint64_t i = 0; i < alpha_size; ++i) {
    alphabet[i] = static_cast<std::int32_t>(in.GetVarI64());
    lengths[i] = in.GetU8();
  }
  std::vector<std::uint32_t> codes;
  AssignCanonicalCodes(lengths, &codes);

  // Decode via canonical first-code table per length.
  const int max_len =
      *std::max_element(lengths.begin(), lengths.end());
  // For each length, the smallest code value and the index (into
  // length-sorted order) where codes of that length start.
  std::vector<int> order(alpha_size);
  for (std::size_t i = 0; i < alpha_size; ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  std::vector<std::uint32_t> first_code(max_len + 1, 0);
  std::vector<int> first_index(max_len + 1, 0);
  std::vector<int> count_at(max_len + 1, 0);
  for (std::size_t i = 0; i < alpha_size; ++i) ++count_at[lengths[i]];
  {
    std::uint32_t code = 0;
    int idx = 0;
    for (int len = 1; len <= max_len; ++len) {
      code <<= 1;
      first_code[len] = code;
      first_index[len] = idx;
      code += static_cast<std::uint32_t>(count_at[len]);
      idx += count_at[len];
    }
  }

  const std::uint64_t payload_size = in.GetVarU64();
  std::vector<std::uint8_t> payload(payload_size);
  in.GetBytes(payload.data(), payload_size);
  BitReader bits(payload.data(), payload.size());

  for (std::uint64_t k = 0; k < count; ++k) {
    std::uint32_t code = 0;
    int len = 0;
    while (true) {
      code = (code << 1) | static_cast<std::uint32_t>(bits.GetBit());
      ++len;
      GLSC_CHECK_MSG(len <= max_len, "corrupt Huffman stream");
      if (count_at[len] > 0 &&
          code - first_code[len] < static_cast<std::uint32_t>(count_at[len])) {
        const int sorted_pos =
            first_index[len] + static_cast<int>(code - first_code[len]);
        symbols.push_back(alphabet[static_cast<std::size_t>(order[sorted_pos])]);
        break;
      }
    }
  }
  return symbols;
}

double SymbolEntropyBits(const std::vector<std::int32_t>& symbols) {
  if (symbols.empty()) return 0.0;
  std::map<std::int32_t, std::uint64_t> freq;
  for (const auto s : symbols) ++freq[s];
  const double n = static_cast<double>(symbols.size());
  double bits = 0.0;
  for (const auto& [sym, f] : freq) {
    const double p = static_cast<double>(f) / n;
    bits += -static_cast<double>(f) * std::log2(p);
  }
  return bits;
}

}  // namespace glsc::codec
