// Carry-free 32-bit range coder (Subbotin variant). This is the arithmetic
// coding backend for every learned compressor in the repository: symbols are
// coded against cumulative-frequency models whose total must stay below
// kMaxTotal (16-bit headroom guarantees the renormalization invariant).
#pragma once

#include <cstdint>
#include <vector>

namespace glsc::codec {

class RangeEncoder {
 public:
  static constexpr std::uint32_t kMaxTotal = 1u << 16;

  // Encodes a symbol occupying [cum, cum+freq) out of [0, total).
  // Requires 0 < freq, cum + freq <= total, total < kMaxTotal.
  void Encode(std::uint32_t cum, std::uint32_t freq, std::uint32_t total);

  // Flushes the remaining state; the encoder must not be reused afterwards.
  std::vector<std::uint8_t> Finish();

  std::size_t ByteCount() const { return out_.size(); }

 private:
  void Normalize();

  std::uint32_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::vector<std::uint8_t> out_;
};

class RangeDecoder {
 public:
  RangeDecoder(const std::uint8_t* data, std::size_t size);

  // Returns the frequency slot of the next symbol, in [0, total).
  // Caller locates the symbol s with cum(s) <= slot < cum(s)+freq(s), then
  // must call Consume with that symbol's interval.
  std::uint32_t DecodeSlot(std::uint32_t total);
  void Consume(std::uint32_t cum, std::uint32_t freq, std::uint32_t total);

  std::size_t BytesRead() const { return pos_; }

 private:
  void Normalize();
  std::uint8_t NextByte();

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint32_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint32_t code_ = 0;
};

}  // namespace glsc::codec
