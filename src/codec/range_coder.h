// Carry-free 32-bit range coder (Subbotin variant). This is the arithmetic
// coding backend for every learned compressor in the repository: symbols are
// coded against cumulative-frequency models whose total must stay below
// kMaxTotal (16-bit headroom guarantees the renormalization invariant).
#pragma once

#include <cstdint>
#include <vector>

namespace glsc::codec {

class RangeEncoder {
 public:
  static constexpr std::uint32_t kMaxTotal = 1u << 16;

  // Encodes a symbol occupying [cum, cum+freq) out of [0, total).
  // Requires 0 < freq, cum + freq <= total, total < kMaxTotal.
  void Encode(std::uint32_t cum, std::uint32_t freq, std::uint32_t total);

  // Bulk path: encodes n symbols drawn from ONE frequency table, where
  // symbol s occupies [cum[s], cum[s] + freq[s]). Byte-identical to calling
  // Encode(cum[syms[i]], freq[syms[i]], total) in a loop; the point is to
  // hoist the per-symbol table indirection out of callers' hot loops.
  void EncodeSpan(const std::uint32_t* cum, const std::uint32_t* freq,
                  std::uint32_t total, const std::int32_t* syms,
                  std::size_t n);

  // Pre-sizes the output buffer from a caller-supplied byte estimate so
  // large tensors do not pay realloc churn while coding.
  void Reserve(std::size_t bytes) { out_.reserve(out_.size() + bytes); }

  // Flushes the remaining state; the encoder must not be reused afterwards.
  std::vector<std::uint8_t> Finish();

  std::size_t ByteCount() const { return out_.size(); }

 private:
  void Normalize();

  std::uint32_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::vector<std::uint8_t> out_;
};

class RangeDecoder {
 public:
  RangeDecoder(const std::uint8_t* data, std::size_t size);

  // Returns the frequency slot of the next symbol, in [0, total).
  // Caller locates the symbol s with cum(s) <= slot < cum(s)+freq(s), then
  // must call Consume with that symbol's interval.
  std::uint32_t DecodeSlot(std::uint32_t total);
  void Consume(std::uint32_t cum, std::uint32_t freq, std::uint32_t total);

  // Bulk path: decodes up to n symbols drawn from ONE table of nsyms
  // symbols with cumulative bounds cum[0..nsyms] (cum[nsyms] == total).
  // Symbols are resolved internally (binary search over cum) and written to
  // syms. When stop_sym >= 0, decoding halts right after emitting stop_sym
  // so the caller can consume out-of-band data (escape payloads) before
  // resuming. Returns the number of symbols written (including the stop
  // symbol when hit).
  std::size_t DecodeSpan(const std::uint32_t* cum, const std::uint32_t* freq,
                         std::uint32_t nsyms, std::uint32_t total,
                         std::int32_t stop_sym, std::int32_t* syms,
                         std::size_t n);

  std::size_t BytesRead() const { return pos_; }

 private:
  void Normalize();
  std::uint8_t NextByte();

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint32_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint32_t code_ = 0;
};

}  // namespace glsc::codec
