#include "codec/range_coder.h"

#include <algorithm>

#include "util/check.h"

namespace glsc::codec {
namespace {

constexpr std::uint32_t kTop = 1u << 24;
constexpr std::uint32_t kBot = 1u << 16;

}  // namespace

void RangeEncoder::Encode(std::uint32_t cum, std::uint32_t freq,
                          std::uint32_t total) {
  GLSC_DCHECK(freq > 0);
  GLSC_DCHECK(cum + freq <= total);
  GLSC_DCHECK(total < kMaxTotal);
  range_ /= total;
  low_ += cum * range_;
  range_ *= freq;
  Normalize();
}

void RangeEncoder::EncodeSpan(const std::uint32_t* cum,
                              const std::uint32_t* freq, std::uint32_t total,
                              const std::int32_t* syms, std::size_t n) {
  GLSC_DCHECK(total < kMaxTotal);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t s = syms[i];
    GLSC_DCHECK(s >= 0);
    GLSC_DCHECK(freq[s] > 0);
    GLSC_DCHECK(cum[s] + freq[s] <= total);
    range_ /= total;
    low_ += cum[s] * range_;
    range_ *= freq[s];
    Normalize();
  }
}

void RangeEncoder::Normalize() {
  // Emit the top byte while it is settled (no carry can change it), or force
  // range growth when it underflows below kBot (carry-free squeeze).
  while ((low_ ^ (low_ + range_)) < kTop ||
         (range_ < kBot && ((range_ = (0u - low_) & (kBot - 1)), true)) != false) {
    out_.push_back(static_cast<std::uint8_t>(low_ >> 24));
    low_ <<= 8;
    range_ <<= 8;
  }
}

std::vector<std::uint8_t> RangeEncoder::Finish() {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(low_ >> 24));
    low_ <<= 8;
  }
  return std::move(out_);
}

RangeDecoder::RangeDecoder(const std::uint8_t* data, std::size_t size)
    : data_(data), size_(size) {
  for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | NextByte();
}

std::uint8_t RangeDecoder::NextByte() {
  // Reads past the end return 0; the encoder's 4-byte flush guarantees all
  // meaningful state has been emitted.
  return pos_ < size_ ? data_[pos_++] : 0;
}

std::uint32_t RangeDecoder::DecodeSlot(std::uint32_t total) {
  GLSC_DCHECK(total < RangeEncoder::kMaxTotal);
  range_ /= total;
  const std::uint32_t slot = (code_ - low_) / range_;
  // Clamp: rounding at the interval boundary can land exactly on `total`.
  return slot < total ? slot : total - 1;
}

void RangeDecoder::Consume(std::uint32_t cum, std::uint32_t freq,
                           std::uint32_t /*total*/) {
  low_ += cum * range_;
  range_ *= freq;
  Normalize();
}

std::size_t RangeDecoder::DecodeSpan(const std::uint32_t* cum,
                                     const std::uint32_t* freq,
                                     std::uint32_t nsyms, std::uint32_t total,
                                     std::int32_t stop_sym, std::int32_t* syms,
                                     std::size_t n) {
  GLSC_DCHECK(total < RangeEncoder::kMaxTotal);
  GLSC_DCHECK(cum[nsyms] == total);
  for (std::size_t i = 0; i < n; ++i) {
    range_ /= total;
    std::uint32_t slot = (code_ - low_) / range_;
    // Clamp: rounding at the interval boundary can land exactly on `total`.
    if (slot >= total) slot = total - 1;
    const std::uint32_t* it = std::upper_bound(cum, cum + nsyms + 1, slot);
    const auto sym = static_cast<std::int32_t>(it - cum) - 1;
    low_ += cum[sym] * range_;
    range_ *= freq[sym];
    Normalize();
    syms[i] = sym;
    if (sym == stop_sym) return i + 1;
  }
  return n;
}

void RangeDecoder::Normalize() {
  while ((low_ ^ (low_ + range_)) < kTop ||
         (range_ < kBot && ((range_ = (0u - low_) & (kBot - 1)), true)) != false) {
    code_ = (code_ << 8) | NextByte();
    low_ <<= 8;
    range_ <<= 8;
  }
}

}  // namespace glsc::codec
