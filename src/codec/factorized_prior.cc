#include "codec/factorized_prior.h"

#include <algorithm>
#include <cmath>

#include "codec/range_coder.h"
#include "util/check.h"

namespace glsc::codec {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double LogisticPmf(double k, double mu, double s) {
  return Sigmoid((k + 0.5 - mu) / s) - Sigmoid((k - 0.5 - mu) / s);
}

}  // namespace

LogisticChannelCodec::FreqTable LogisticChannelCodec::BuildTable(float mu,
                                                                 float s) {
  FreqTable table;
  const int window = 2 * kHalfWindow;
  table.origin = static_cast<std::int64_t>(std::nearbyint(mu)) - kHalfWindow;
  table.freq.resize(window + 1);  // + escape

  constexpr std::uint32_t kTargetTotal = 1u << 14;
  const double sd = std::max(static_cast<double>(s), 1e-3);
  double mass = 0.0;
  std::vector<double> pmf(window);
  for (int i = 0; i < window; ++i) {
    pmf[i] = LogisticPmf(static_cast<double>(table.origin + i), mu, sd);
    mass += pmf[i];
  }
  const double escape_mass = std::max(1.0 - mass, 1e-9);
  std::uint32_t assigned = 0;
  for (int i = 0; i < window; ++i) {
    const auto f = static_cast<std::uint32_t>(
        std::max(1.0, std::floor(pmf[i] * kTargetTotal)));
    table.freq[i] = f;
    assigned += f;
  }
  table.freq[window] = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(escape_mass * kTargetTotal));
  assigned += table.freq[window];
  GLSC_CHECK(assigned < RangeEncoder::kMaxTotal);

  table.cum.resize(table.freq.size() + 1);
  table.cum[0] = 0;
  for (std::size_t i = 0; i < table.freq.size(); ++i) {
    table.cum[i + 1] = table.cum[i] + table.freq[i];
  }
  table.total = table.cum.back();
  return table;
}

std::vector<std::uint8_t> LogisticChannelCodec::Encode(
    const Tensor& z, const std::vector<float>& mu, const std::vector<float>& s) {
  GLSC_CHECK(z.rank() >= 2);
  const std::int64_t channels = z.dim(1);
  GLSC_CHECK(static_cast<std::int64_t>(mu.size()) == channels);
  GLSC_CHECK(static_cast<std::int64_t>(s.size()) == channels);

  std::vector<FreqTable> tables;
  tables.reserve(static_cast<std::size_t>(channels));
  for (std::int64_t c = 0; c < channels; ++c) {
    tables.push_back(BuildTable(mu[c], s[c]));
  }

  RangeEncoder enc;
  const std::int64_t batch = z.dim(0);
  const std::int64_t inner = z.numel() / (batch * channels);
  enc.Reserve(static_cast<std::size_t>(z.numel()) + 64);
  const float* pz = z.data();
  const int window = 2 * kHalfWindow;
  std::vector<std::int32_t> slots;
  slots.reserve(static_cast<std::size_t>(inner));
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      // Every element of a channel codes against one fixed table, so the
      // whole inner extent flows through the bulk span API; only escapes
      // force a flush.
      const FreqTable& table = tables[static_cast<std::size_t>(c)];
      slots.clear();
      for (std::int64_t i = 0; i < inner; ++i) {
        const auto k = static_cast<std::int64_t>(
            std::nearbyint(pz[(b * channels + c) * inner + i]));
        const std::int64_t slot = k - table.origin;
        if (slot >= 0 && slot < window) {
          slots.push_back(static_cast<std::int32_t>(slot));
        } else {
          enc.EncodeSpan(table.cum.data(), table.freq.data(), table.total,
                         slots.data(), slots.size());
          slots.clear();
          enc.Encode(table.cum[window], table.freq[window], table.total);
          const std::int64_t d = k - table.origin;
          const auto zz = static_cast<std::uint32_t>((d << 1) ^ (d >> 63));
          enc.Encode(static_cast<std::uint16_t>(zz & 0xFFFF), 1, 1u << 16);
          enc.Encode(static_cast<std::uint16_t>(zz >> 16), 1, 1u << 16);
        }
      }
      enc.EncodeSpan(table.cum.data(), table.freq.data(), table.total,
                     slots.data(), slots.size());
    }
  }
  return enc.Finish();
}

Tensor LogisticChannelCodec::Decode(const std::vector<std::uint8_t>& bytes,
                                    const Shape& shape,
                                    const std::vector<float>& mu,
                                    const std::vector<float>& s) {
  GLSC_CHECK(shape.size() >= 2);
  const std::int64_t channels = shape[1];
  std::vector<FreqTable> tables;
  tables.reserve(static_cast<std::size_t>(channels));
  for (std::int64_t c = 0; c < channels; ++c) {
    tables.push_back(BuildTable(mu[c], s[c]));
  }

  Tensor z(shape);
  RangeDecoder dec(bytes.data(), bytes.size());
  const std::int64_t batch = shape[0];
  const std::int64_t inner = z.numel() / (batch * channels);
  float* pz = z.data();
  const int window = 2 * kHalfWindow;
  std::vector<std::int32_t> syms(static_cast<std::size_t>(inner));
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const FreqTable& table = tables[static_cast<std::size_t>(c)];
      float* out = pz + (b * channels + c) * inner;
      std::int64_t i = 0;
      while (i < inner) {
        const std::size_t got = dec.DecodeSpan(
            table.cum.data(), table.freq.data(),
            static_cast<std::uint32_t>(window) + 1, table.total,
            /*stop_sym=*/window, syms.data(),
            static_cast<std::size_t>(inner - i));
        for (std::size_t j = 0; j < got; ++j) {
          const std::int32_t sym = syms[j];
          std::int64_t k;
          if (sym < window) {
            k = table.origin + sym;
          } else {
            const std::uint32_t lo = dec.DecodeSlot(1u << 16);
            dec.Consume(lo, 1, 1u << 16);
            const std::uint32_t hi = dec.DecodeSlot(1u << 16);
            dec.Consume(hi, 1, 1u << 16);
            const std::uint32_t zz = lo | (hi << 16);
            const std::int64_t d = static_cast<std::int64_t>(zz >> 1) ^
                                   -static_cast<std::int64_t>(zz & 1);
            k = table.origin + d;
          }
          out[i + static_cast<std::int64_t>(j)] = static_cast<float>(k);
        }
        i += static_cast<std::int64_t>(got);
      }
    }
  }
  return z;
}

double LogisticChannelCodec::TheoreticalBits(const Tensor& z,
                                             const std::vector<float>& mu,
                                             const std::vector<float>& s) const {
  const std::int64_t batch = z.dim(0);
  const std::int64_t channels = z.dim(1);
  const std::int64_t inner = z.numel() / (batch * channels);
  const float* pz = z.data();
  double bits = 0.0;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const double sd =
          std::max(static_cast<double>(s[static_cast<std::size_t>(c)]), 1e-3);
      for (std::int64_t i = 0; i < inner; ++i) {
        const double k = std::nearbyint(pz[(b * channels + c) * inner + i]);
        const double p = std::max(
            LogisticPmf(k, mu[static_cast<std::size_t>(c)], sd), 1e-12);
        bits += -std::log2(p);
      }
    }
  }
  return bits;
}

}  // namespace glsc::codec
