// MSB-first bit-level I/O used by the Huffman coder and the ZFP-like
// bit-plane codec.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace glsc::codec {

class BitWriter {
 public:
  void PutBit(bool bit) {
    acc_ = (acc_ << 1) | static_cast<std::uint8_t>(bit);
    if (++nbits_ == 8) {
      buf_.push_back(acc_);
      acc_ = 0;
      nbits_ = 0;
    }
  }

  // Writes the low `count` bits of `value`, most significant first.
  void PutBits(std::uint64_t value, int count) {
    GLSC_DCHECK(count >= 0 && count <= 64);
    for (int i = count - 1; i >= 0; --i) PutBit((value >> i) & 1);
  }

  // Pads the final partial byte with zeros and returns the stream.
  std::vector<std::uint8_t> Finish() {
    if (nbits_ > 0) {
      buf_.push_back(static_cast<std::uint8_t>(acc_ << (8 - nbits_)));
      acc_ = 0;
      nbits_ = 0;
    }
    return std::move(buf_);
  }

  std::size_t BitCount() const { return buf_.size() * 8 + nbits_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint8_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool GetBit() {
    const std::size_t byte = pos_ >> 3;
    // Reads past the end yield zero bits; writers pad with zeros so decoders
    // that know their symbol count never misparse.
    const bool bit =
        byte < size_ && ((data_[byte] >> (7 - (pos_ & 7))) & 1) != 0;
    ++pos_;
    return bit;
  }

  std::uint64_t GetBits(int count) {
    std::uint64_t v = 0;
    for (int i = 0; i < count; ++i) v = (v << 1) | GetBit();
    return v;
  }

  std::size_t BitsRead() const { return pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace glsc::codec
