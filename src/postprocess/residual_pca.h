// PCA-based error-bound guarantee module (§3.5, following Lee et al.).
//
// Offline, a PCA basis U is fit to reconstruction residuals of the training
// split (8x8 spatial blocks by default); U is part of the model artifact, not
// of any compressed payload. Online, the residual r = x - x_R of a frame is
// tiled into blocks, projected onto U, and the largest-magnitude coefficients
// are quantized and kept — greedily, accounting for quantization error —
// until ||x - x_G||_2 <= tau. The selected (index, value) pairs are entropy
// coded; their bytes are the "G" term of the effective compression ratio
// (Eq. 11).
//
// The guarantee is exact, not statistical: selection works on the true
// residual energy ||r||^2 - sum(kept c_i^2) + sum(quantization errors), and a
// final verification pass recomputes the corrected residual.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/bytes.h"

namespace glsc::postprocess {

struct PcaConfig {
  std::int64_t block = 8;  // spatial block edge; D = block^2 basis dimension
};

class ResidualPca {
 public:
  explicit ResidualPca(const PcaConfig& config = {});

  // Fits the basis from residual example frames [H, W] (H, W divisible by
  // block). Uses the dense covariance + cyclic Jacobi eigensolver.
  void Fit(const std::vector<Tensor>& residual_frames);

  bool fitted() const { return !basis_.empty(); }
  std::int64_t dimension() const { return config_.block * config_.block; }

  struct Correction {
    std::vector<std::uint8_t> payload;  // bytes counted as G in Eq. 11
    double l2_before = 0.0;
    double l2_after = 0.0;
    std::int64_t coefficients = 0;
  };

  // Corrects `reconstruction` in place toward `original` until the frame's
  // L2 error is <= tau. Both tensors are [H, W] with dims divisible by block.
  Correction Correct(const Tensor& original, Tensor* reconstruction,
                     double tau) const;

  // Decoder side: applies an encoded correction payload.
  void Apply(const std::vector<std::uint8_t>& payload,
             Tensor* reconstruction) const;

  // Basis (de)serialization for the model artifact cache.
  void Save(ByteWriter* out) const;
  void Load(ByteReader* in);

 private:
  // Projects block b of `field` onto the basis: c = U^T r_b.
  void ProjectBlock(const Tensor& field, std::int64_t by, std::int64_t bx,
                    std::vector<double>* coeffs) const;

  PcaConfig config_;
  // Row-major [D, D]; column j is the j-th principal direction.
  std::vector<double> basis_;
};

}  // namespace glsc::postprocess
