#include "postprocess/residual_pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "codec/huffman.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace glsc::postprocess {
namespace {

// Quantization resolution of kept coefficients: 1/2^12 of the per-correction
// coefficient scale. Fine enough that the quantization term rarely forces an
// extra coefficient, coarse enough to keep the payload small.
constexpr int kQuantBits = 12;

}  // namespace

ResidualPca::ResidualPca(const PcaConfig& config) : config_(config) {
  GLSC_CHECK(config_.block >= 2);
}

void ResidualPca::Fit(const std::vector<Tensor>& residual_frames) {
  const std::int64_t d = dimension();
  const std::int64_t block = config_.block;
  std::vector<double> cov(static_cast<std::size_t>(d * d), 0.0);
  std::int64_t samples = 0;

  std::vector<double> vec(static_cast<std::size_t>(d));
  for (const Tensor& frame : residual_frames) {
    GLSC_CHECK(frame.rank() == 2);
    GLSC_CHECK(frame.dim(0) % block == 0 && frame.dim(1) % block == 0);
    const std::int64_t w = frame.dim(1);
    for (std::int64_t by = 0; by < frame.dim(0); by += block) {
      for (std::int64_t bx = 0; bx < w; bx += block) {
        for (std::int64_t i = 0; i < block; ++i) {
          for (std::int64_t j = 0; j < block; ++j) {
            vec[i * block + j] = frame.data()[(by + i) * w + bx + j];
          }
        }
        for (std::int64_t r = 0; r < d; ++r) {
          for (std::int64_t c = r; c < d; ++c) {
            cov[r * d + c] += vec[r] * vec[c];
          }
        }
        ++samples;
      }
    }
  }
  GLSC_CHECK_MSG(samples > 0, "no residual blocks to fit");
  for (std::int64_t r = 0; r < d; ++r) {
    for (std::int64_t c = r; c < d; ++c) {
      cov[r * d + c] /= static_cast<double>(samples);
      cov[c * d + r] = cov[r * d + c];
    }
  }

  std::vector<double> eigvals;
  SymmetricEigen(cov, static_cast<int>(d), &eigvals, &basis_);
}

void ResidualPca::ProjectBlock(const Tensor& field, std::int64_t by,
                               std::int64_t bx,
                               std::vector<double>* coeffs) const {
  const std::int64_t d = dimension();
  const std::int64_t block = config_.block;
  const std::int64_t w = field.dim(1);
  coeffs->assign(static_cast<std::size_t>(d), 0.0);
  for (std::int64_t i = 0; i < block; ++i) {
    for (std::int64_t j = 0; j < block; ++j) {
      const double v = field.data()[(by + i) * w + bx + j];
      const std::int64_t row = i * block + j;
      for (std::int64_t k = 0; k < d; ++k) {
        (*coeffs)[k] += v * basis_[row * d + k];
      }
    }
  }
}

ResidualPca::Correction ResidualPca::Correct(const Tensor& original,
                                             Tensor* reconstruction,
                                             double tau) const {
  GLSC_CHECK(fitted());
  GLSC_CHECK(original.shape() == reconstruction->shape());
  GLSC_CHECK(original.rank() == 2);
  const std::int64_t block = config_.block;
  GLSC_CHECK(original.dim(0) % block == 0 && original.dim(1) % block == 0);
  const std::int64_t d = dimension();
  const std::int64_t blocks_y = original.dim(0) / block;
  const std::int64_t blocks_x = original.dim(1) / block;

  const Tensor residual = Sub(original, *reconstruction);

  Correction result;
  result.l2_before = std::sqrt(SumSquares(residual));

  // Project every block; collect (global coefficient id, value).
  struct Entry {
    std::int64_t id;  // block_index * D + coefficient_index
    double value;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(blocks_y * blocks_x * d));
  std::vector<double> coeffs;
  double total_energy = 0.0;
  for (std::int64_t by = 0; by < blocks_y; ++by) {
    for (std::int64_t bx = 0; bx < blocks_x; ++bx) {
      ProjectBlock(residual, by * block, bx * block, &coeffs);
      const std::int64_t base = (by * blocks_x + bx) * d;
      for (std::int64_t k = 0; k < d; ++k) {
        entries.push_back({base + k, coeffs[static_cast<std::size_t>(k)]});
        total_energy += coeffs[k] * coeffs[k];
      }
    }
  }
  // NOTE: with an orthonormal basis the projection is lossless in energy, so
  // total_energy == ||r||^2 up to round-off. The selection below works with
  // the projected energy; the final exact check uses the reconstruction.

  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return std::fabs(a.value) > std::fabs(b.value);
  });

  GLSC_CHECK_MSG(tau > 0.0, "error bound tau must be positive");
  const double tau2 = tau * tau;
  const double scale =
      entries.empty() ? 1.0 : std::max(std::fabs(entries[0].value), 1e-30);

  // Greedy selection at a given quantization step. If the step is too coarse
  // to reach tau (quantization error or zero-quantized tail dominates), the
  // outer loop halves it and retries — the bound is enforced, not attempted.
  std::vector<Entry> kept;
  std::vector<std::int32_t> qvalues;
  double step = scale / static_cast<double>(1 << kQuantBits);
  double trial_step = step;
  for (int attempt = 0; attempt < 40; ++attempt, trial_step *= 0.5) {
    kept.clear();
    qvalues.clear();
    step = trial_step;
    double remaining = total_energy;
    for (const Entry& e : entries) {
      if (remaining <= tau2) break;
      const auto q = static_cast<std::int32_t>(std::llround(e.value / step));
      if (q == 0) break;  // sorted by |value|: the rest also quantize to 0
      const double quant_err = e.value - q * step;
      remaining -= e.value * e.value;
      remaining += quant_err * quant_err;
      kept.push_back(e);
      qvalues.push_back(q);
    }
    if (remaining <= tau2) break;
  }
  result.coefficients = static_cast<std::int64_t>(kept.size());

  // Serialize: header (block geometry + step), delta-coded ids, values. Both
  // integer streams go through Huffman.
  ByteWriter payload;
  payload.PutVarU64(static_cast<std::uint64_t>(original.dim(0)));
  payload.PutVarU64(static_cast<std::uint64_t>(original.dim(1)));
  payload.PutF64(step);
  {
    // Ids ascend after sorting by id; delta-code for small symbols.
    std::vector<std::size_t> order(kept.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return kept[a].id < kept[b].id;
    });
    std::vector<std::int32_t> id_deltas;
    std::vector<std::int32_t> values;
    id_deltas.reserve(kept.size());
    values.reserve(kept.size());
    std::int64_t prev = 0;
    for (const std::size_t i : order) {
      id_deltas.push_back(static_cast<std::int32_t>(kept[i].id - prev));
      prev = kept[i].id;
      values.push_back(qvalues[i]);
    }
    const auto ids_bytes = codec::HuffmanEncode(id_deltas);
    const auto val_bytes = codec::HuffmanEncode(values);
    payload.PutVarU64(ids_bytes.size());
    payload.PutBytes(ids_bytes.data(), ids_bytes.size());
    payload.PutVarU64(val_bytes.size());
    payload.PutBytes(val_bytes.data(), val_bytes.size());
  }
  result.payload = payload.Release();

  // Apply the correction exactly as the decoder will.
  Apply(result.payload, reconstruction);
  result.l2_after = std::sqrt(
      SumSquares(Sub(original, *reconstruction)));
  // Exact post-hoc verification; fail loudly rather than ship a broken bound.
  // The 1e-4 relative slack covers float32 accumulation in Apply (selection
  // ran in double; the corrected field is float32).
  GLSC_CHECK_MSG(result.l2_after <= tau * (1.0 + 1e-4) + 1e-12,
                 "error-bound violated: " << result.l2_after << " > " << tau);
  return result;
}

void ResidualPca::Apply(const std::vector<std::uint8_t>& payload,
                        Tensor* reconstruction) const {
  GLSC_CHECK(fitted());
  ByteReader in(payload);
  const auto height = static_cast<std::int64_t>(in.GetVarU64());
  const auto width = static_cast<std::int64_t>(in.GetVarU64());
  GLSC_CHECK(reconstruction->dim(0) == height &&
             reconstruction->dim(1) == width);
  const double step = in.GetF64();

  const std::uint64_t ids_size = in.GetVarU64();
  std::vector<std::uint8_t> ids_bytes(ids_size);
  in.GetBytes(ids_bytes.data(), ids_size);
  const std::uint64_t val_size = in.GetVarU64();
  std::vector<std::uint8_t> val_bytes(val_size);
  in.GetBytes(val_bytes.data(), val_size);

  const auto id_deltas = codec::HuffmanDecode(ids_bytes);
  const auto values = codec::HuffmanDecode(val_bytes);
  GLSC_CHECK(id_deltas.size() == values.size());

  const std::int64_t block = config_.block;
  const std::int64_t d = dimension();
  const std::int64_t blocks_x = width / block;

  std::int64_t id = 0;
  for (std::size_t n = 0; n < id_deltas.size(); ++n) {
    id += id_deltas[n];
    const std::int64_t block_index = id / d;
    const std::int64_t k = id % d;
    const std::int64_t by = (block_index / blocks_x) * block;
    const std::int64_t bx = (block_index % blocks_x) * block;
    const double c = values[n] * step;
    // x_G += U_s c_q for this coefficient: add c * basis column k.
    for (std::int64_t i = 0; i < block; ++i) {
      for (std::int64_t j = 0; j < block; ++j) {
        const std::int64_t row = i * block + j;
        reconstruction->data()[(by + i) * width + bx + j] +=
            static_cast<float>(c * basis_[row * d + k]);
      }
    }
  }
}

void ResidualPca::Save(ByteWriter* out) const {
  out->PutVarU64(static_cast<std::uint64_t>(config_.block));
  out->PutVarU64(basis_.size());
  for (const double v : basis_) out->PutF64(v);
}

void ResidualPca::Load(ByteReader* in) {
  config_.block = static_cast<std::int64_t>(in->GetVarU64());
  basis_.resize(in->GetVarU64());
  for (double& v : basis_) v = in->GetF64();
}

}  // namespace glsc::postprocess
