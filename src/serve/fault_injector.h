// Test seam for serving-path robustness: injects decode failures without
// touching any codec. DecodeScheduler calls OnDecode(record) immediately
// before decoding a record's payload when ScheduleOptions::fault_injector is
// set; the injector may sleep (slow decode), throw a transient StatusError
// (retryable), or throw a kDataLoss StatusError (simulated corrupt payload,
// quarantine-worthy). Production builds pay one null-pointer test per record.
//
// Faults are "armed" with a count and an optional record filter; each decode
// that matches consumes one charge. Thread-safe — decode workers race on it
// by design.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"

namespace glsc::serve {

class FaultInjector {
 public:
  enum class Kind : std::uint8_t {
    kTransient = 0,  // throw StatusError(kUnavailable)
    kCorrupt = 1,    // throw StatusError(kDataLoss)
    kSlow = 2,       // sleep slow_ms, then decode normally
  };

  // Arms `count` charges of `kind`. `record` restricts the fault to one
  // record index (-1 = any record). Slow faults sleep `slow_ms` per charge.
  // Multiple armed faults coexist; the first matching armed fault (oldest
  // first) is consumed per decode, and a consumed kSlow charge does not
  // shield the record from a later-armed throwing fault on the NEXT decode.
  void Arm(Kind kind, int count, std::int64_t record = -1, int slow_ms = 0);

  // Drops every armed fault (counters are kept).
  void Disarm();

  // Called by the scheduler before each record decode. May sleep or throw as
  // described above; returns normally when no armed fault matches.
  void OnDecode(std::size_t record);

  // Total faults actually injected, by kind.
  std::int64_t injected_transient() const {
    return transient_.load(std::memory_order_relaxed);
  }
  std::int64_t injected_corrupt() const {
    return corrupt_.load(std::memory_order_relaxed);
  }
  std::int64_t injected_slow() const {
    return slow_.load(std::memory_order_relaxed);
  }
  // Every OnDecode call, injected or not — lets tests assert that a
  // quarantined shard fails fast without reaching the decoder.
  std::int64_t decode_calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  struct Armed {
    Kind kind;
    int remaining;
    std::int64_t record;  // -1 = any
    int slow_ms;
  };

  Mutex mu_{"FaultInjector.mu"};
  std::vector<Armed> armed_ GUARDED_BY(mu_);
  std::atomic<std::int64_t> transient_{0};
  std::atomic<std::int64_t> corrupt_{0};
  std::atomic<std::int64_t> slow_{0};
  std::atomic<std::int64_t> calls_{0};
};

}  // namespace glsc::serve
