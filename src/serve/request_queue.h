// Bounded MPMC request queue for the serving front end.
//
// The queue is the load-shedding point of the multi-tenant server: producers
// NEVER block. `TryPush` either admits the request or returns false
// immediately (reject-newest) so an overloaded server answers "queue full" in
// microseconds instead of stacking callers up behind a slow decode. Consumers
// block in `Pop` until work arrives or the queue is closed.
//
// The element type is a template parameter so the queue stays a dumb bounded
// buffer; admission policy (per-tenant limits, budgets, quarantine) lives in
// ShardManager, which decides what gets to call TryPush at all.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace glsc::serve {

template <typename T>
class RequestQueue {
 public:
  // `capacity` is the hard bound; 0 is clamped to 1 (a queue that can never
  // admit anything would make every request shed, which is a config error,
  // not a useful mode).
  explicit RequestQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  // Admits `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available (returns it) or the queue is closed
  // AND drained (returns nullopt — the consumer should exit).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // After Close: TryPush rejects, consumers drain the backlog then get
  // nullopt. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace glsc::serve
