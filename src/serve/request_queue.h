// Bounded MPMC request queue for the serving front end.
//
// The queue is the load-shedding point of the multi-tenant server: producers
// NEVER block. `TryPush` either admits the request or returns false
// immediately (reject-newest) so an overloaded server answers "queue full" in
// microseconds instead of stacking callers up behind a slow decode. Consumers
// block in `Pop` until work arrives or the queue is closed.
//
// The element type is a template parameter so the queue stays a dumb bounded
// buffer; admission policy (per-tenant limits, budgets, quarantine) lives in
// ShardManager, which decides what gets to call TryPush at all.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "util/mutex.h"

namespace glsc::serve {

template <typename T>
class RequestQueue {
 public:
  // `capacity` is the hard bound; 0 is clamped to 1 (a queue that can never
  // admit anything would make every request shed, which is a config error,
  // not a useful mode).
  explicit RequestQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  // Admits `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  // Blocks until an item is available (returns it) or the queue is closed
  // AND drained (returns nullopt — the consumer should exit).
  std::optional<T> Pop() {
    MutexLock lock(mu_);
    cv_.Wait(mu_, [this]() REQUIRES(mu_) { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // After Close: TryPush rejects, consumers drain the backlog then get
  // nullopt. Idempotent.
  void Close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_{"RequestQueue.mu"};
  CondVar cv_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace glsc::serve
