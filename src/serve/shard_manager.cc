#include "serve/shard_manager.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "util/check.h"

namespace glsc::serve {

namespace {

// Decoded output size of a request, the unit tenant byte budgets are charged
// in. Charged at admission (pessimistically, from the request geometry) so a
// tenant cannot blow through its budget with a burst of concurrent requests
// that are all "free" until they complete.
std::int64_t DecodedBytes(const core::ArchiveReader& reader,
                          const GetRequest& request) {
  const Shape& shape = reader.dataset_shape();
  const std::int64_t frames = std::max<std::int64_t>(
      0, request.t_end - request.t_begin);
  return frames * shape[2] * shape[3] *
         static_cast<std::int64_t>(sizeof(float));
}

}  // namespace

ShardManager::ShardManager(const std::vector<ShardSpec>& shards,
                           const ManagerOptions& options)
    : options_(options) {
  GLSC_CHECK_MSG(!shards.empty(), "ShardManager needs at least one shard");
  GLSC_CHECK_MSG(options_.worker_threads >= 1, "worker_threads must be >= 1");
  shards_.reserve(shards.size());
  for (const ShardSpec& spec : shards) {
    GLSC_CHECK(spec.reader != nullptr && spec.codec != nullptr);
    Shard shard;
    shard.reader = spec.reader;
    shard.scheduler = std::make_unique<DecodeScheduler>(
        spec.reader, spec.codec, spec.schedule);
    shards_.push_back(std::move(shard));
  }
  queue_ = std::make_unique<RequestQueue<std::shared_ptr<Job>>>(
      options_.queue_capacity);
  workers_.reserve(static_cast<std::size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ShardManager::~ShardManager() { Shutdown(); }

void ShardManager::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  // Workers drain the backlog (every already-admitted job still reaches a
  // terminal state) and exit when Pop returns nullopt.
  queue_->Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ShardManager::TenantState& ShardManager::TenantFor(const std::string& tenant) {
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second;
  TenantState state;
  state.limits = options_.default_limits;
  return tenants_.emplace(tenant, state).first->second;
}

void ShardManager::SetTenantLimits(const std::string& tenant,
                                   const TenantLimits& limits) {
  MutexLock lock(mu_);
  TenantFor(tenant).limits = limits;
}

bool ShardManager::quarantined(std::size_t shard) const {
  GLSC_CHECK(shard < shards_.size());
  MutexLock lock(mu_);
  return shards_[shard].quarantined;
}

void ShardManager::ReviveShard(std::size_t shard) {
  GLSC_CHECK(shard < shards_.size());
  MutexLock lock(mu_);
  shards_[shard].quarantined = false;
  shards_[shard].consecutive_failures = 0;
}

Tensor ShardManager::Get(const GetRequest& request) {
  // ---- Admission (caller's thread; cheap, never touches a decoder) -------
  // Check order: shutdown, validity, quarantine, tenant limits, then the
  // queue — so a request is only charged against its tenant once everything
  // it does not control has passed.
  const std::int64_t bytes =
      request.shard < shards_.size()
          ? DecodedBytes(*shards_[request.shard].reader, request)
          : 0;
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      throw ServeError(ErrorCode::kShutdown, "shard manager is shut down");
    }
    if (request.shard >= shards_.size()) {
      std::ostringstream os;
      os << "shard " << request.shard << " out of range (have "
         << shards_.size() << ")";
      throw ServeError(ErrorCode::kInvalidArgument, os.str());
    }
    const Shape& shape = shards_[request.shard].reader->dataset_shape();
    if (request.variable < 0 || request.variable >= shape[0] ||
        request.t_begin < 0 || request.t_end > shape[1] ||
        request.t_begin >= request.t_end) {
      std::ostringstream os;
      os << "bad request geometry: variable " << request.variable
         << ", frames [" << request.t_begin << ", " << request.t_end
         << ") against dataset [" << shape[0] << ", " << shape[1] << ", "
         << shape[2] << ", " << shape[3] << "]";
      throw ServeError(ErrorCode::kInvalidArgument, os.str());
    }
    if (shards_[request.shard].quarantined) {
      rejected_quarantine_.fetch_add(1, std::memory_order_relaxed);
      std::ostringstream os;
      os << "shard " << request.shard
         << " is quarantined after repeated decode failures";
      throw ServeError(ErrorCode::kQuarantined, os.str());
    }
    TenantState& tenant = TenantFor(request.tenant);
    if (tenant.limits.max_in_flight > 0 &&
        tenant.in_flight >= tenant.limits.max_in_flight) {
      rejected_tenant_limit_.fetch_add(1, std::memory_order_relaxed);
      std::ostringstream os;
      os << "tenant '" << request.tenant << "' at max in-flight ("
         << tenant.limits.max_in_flight << ")";
      throw ServeError(ErrorCode::kTenantLimit, os.str());
    }
    if (tenant.limits.decoded_byte_budget >= 0 &&
        tenant.decoded_bytes + bytes > tenant.limits.decoded_byte_budget) {
      rejected_budget_.fetch_add(1, std::memory_order_relaxed);
      std::ostringstream os;
      os << "tenant '" << request.tenant << "' decoded-byte budget exhausted ("
         << tenant.decoded_bytes << " + " << bytes << " > "
         << tenant.limits.decoded_byte_budget << ")";
      throw ServeError(ErrorCode::kBudgetExhausted, os.str());
    }
    tenant.in_flight += 1;
    tenant.decoded_bytes += bytes;
  }

  auto job = std::make_shared<Job>();
  job->request = request;
  // Count the admission BEFORE the job becomes visible to workers: once
  // pushed, a worker may pop, execute, and bump completed_ ahead of this
  // caller's next instruction, and a Stats() snapshot taken in that window
  // would see completed > admitted. The shed branch below compensates.
  admitted_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_->TryPush(job)) {
    admitted_.fetch_add(-1, std::memory_order_relaxed);
    // Reject-newest load shedding: un-charge the tenant and fail typed,
    // immediately. (A closed queue means a racing Shutdown — report that.)
    bool was_shutdown;
    {
      MutexLock lock(mu_);
      TenantState& tenant = TenantFor(request.tenant);
      tenant.in_flight -= 1;
      tenant.decoded_bytes -= bytes;
      was_shutdown = shutdown_;
    }
    if (was_shutdown) {
      throw ServeError(ErrorCode::kShutdown, "shard manager is shut down");
    }
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    std::ostringstream os;
    os << "request queue full (" << queue_->capacity() << "); shedding load";
    throw ServeError(ErrorCode::kQueueFull, os.str());
  }

  // ---- Rendezvous: block on THIS job only. Workers always drive every
  // admitted job to finished=true (Execute never throws and Shutdown drains
  // the backlog), so this wait cannot hang.
  MutexLock lock(job->mu);
  job->cv.Wait(job->mu,
               [&job]() REQUIRES(job->mu) { return job->finished; });
  if (job->error != nullptr) std::rethrow_exception(job->error);
  return std::move(job->result);
}

void ShardManager::WorkerLoop() {
  while (true) {
    std::optional<std::shared_ptr<Job>> job = queue_->Pop();
    if (!job.has_value()) return;  // closed + drained
    Execute(job->get());
  }
}

void ShardManager::Execute(Job* job) {
  const GetRequest& request = job->request;
  const RequestContext ctx{request.deadline, request.cancel};
  Shard& shard = shards_[request.shard];

  std::exception_ptr error;
  Tensor result;
  bool shard_fault = false;  // counts toward the circuit breaker
  try {
    // A request that sat in the queue past its deadline (or was cancelled
    // while waiting) fails here without ever touching the decoder.
    ctx.Check();
    // Quarantine may have tripped while this job was queued; honor it.
    {
      MutexLock lock(mu_);
      if (shard.quarantined) {
        rejected_quarantine_.fetch_add(1, std::memory_order_relaxed);
        throw ServeError(ErrorCode::kQuarantined,
                         "shard quarantined while request was queued");
      }
    }
    int attempt = 0;
    while (true) {
      try {
        result = shard.scheduler->Get(request.variable, request.t_begin,
                                      request.t_end, &ctx);
        break;
      } catch (const StatusError& e) {
        if (!e.transient() || attempt >= options_.max_retries) throw;
        // Exponential backoff, but never sleep past the deadline: the
        // retry is pointless if the request cannot finish in time.
        ctx.Check();
        const int backoff_ms = options_.retry_backoff_ms << attempt;
        if (backoff_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        }
        ctx.Check();
        ++attempt;
        retries_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } catch (const StatusError& e) {
    error = std::current_exception();
    switch (e.code()) {
      case ErrorCode::kDeadlineExceeded:
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ErrorCode::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ErrorCode::kQuarantined:
        break;  // fail-fast, not a new shard fault
      default:
        // kDataLoss / kInternal / kUnavailable-with-retries-exhausted:
        // the shard itself failed to serve.
        shard_fault = true;
        break;
    }
  } catch (const std::exception& e) {
    // Anything untyped that escaped the decode stack is a shard-side
    // internal failure; re-brand it so callers always see a typed error.
    error = std::make_exception_ptr(
        ServeError(ErrorCode::kInternal, e.what()));
    shard_fault = true;
  }

  // Circuit breaker: consecutive shard faults trip quarantine; any success
  // resets the streak.
  if (options_.quarantine_threshold > 0) {
    MutexLock lock(mu_);
    if (error == nullptr) {
      shard.consecutive_failures = 0;
    } else if (shard_fault) {
      shard.consecutive_failures += 1;
      if (shard.consecutive_failures >= options_.quarantine_threshold) {
        shard.quarantined = true;
      }
    }
  }

  FinishJob(*job, error == nullptr);

  {
    MutexLock lock(job->mu);
    job->result = std::move(result);
    job->error = error;
    job->finished = true;
  }
  job->cv.NotifyAll();
}

void ShardManager::FinishJob(const Job& job, bool ok) {
  {
    MutexLock lock(mu_);
    TenantState& tenant = TenantFor(job.request.tenant);
    tenant.in_flight -= 1;
    if (!ok) {
      // Failed requests delivered no bytes; refund the admission charge.
      tenant.decoded_bytes -=
          DecodedBytes(*shards_[job.request.shard].reader, job.request);
    }
  }
  // Release so that Stats()'s acquire-load of an outcome counter also
  // publishes this job's earlier admitted_ increment (see Stats() for the
  // snapshot-ordering argument).
  if (ok) {
    completed_.fetch_add(1, std::memory_order_release);
  } else {
    failed_.fetch_add(1, std::memory_order_release);
  }
}

ServeStats ShardManager::Stats() const {
  ServeStats stats;
  // Snapshot ordering: a job's admitted_ increment happens-before its
  // completed_/failed_ increment (admission is sequenced before the queue
  // push, and the queue's mutex orders the push before the worker's
  // execution). Reading the OUTCOME counters first with acquire therefore
  // guarantees the subsequent admitted_ read covers every job counted in
  // them, so the documented invariant admitted >= completed + failed holds
  // in every snapshot — not just at quiescence. (Reading admitted first
  // would leave a window where other threads admit AND finish jobs between
  // the two loads, inflating the outcome side; the stress test caught
  // exactly that skew.)
  stats.completed = completed_.load(std::memory_order_acquire);
  stats.failed = failed_.load(std::memory_order_acquire);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  stats.rejected_tenant_limit =
      rejected_tenant_limit_.load(std::memory_order_relaxed);
  stats.rejected_budget = rejected_budget_.load(std::memory_order_relaxed);
  stats.rejected_quarantine =
      rejected_quarantine_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    stats.decoded_records += shard.scheduler->decoded_records();
    stats.cache_hits += shard.scheduler->cache_hits();
    stats.decode_failures += shard.scheduler->decode_failures();
  }
  stats.queue_depth = queue_->size();
  stats.shard_quarantined.reserve(shards_.size());
  {
    MutexLock lock(mu_);
    for (const Shard& shard : shards_) {
      stats.shard_quarantined.push_back(shard.quarantined);
    }
  }
  return stats;
}

}  // namespace glsc::serve
