// Serving layer: parallel random-access decode over an archive.
//
// `DecodeScheduler` answers Get(variable, t_begin, t_end) queries against an
// opened ArchiveReader: the frame range maps onto the records that cover it,
// records missing from the cache decode fan-out over the global ThreadPool
// (one codec clone per worker — model instances are not thread-safe), and
// decoded windows land in a bounded LRU so overlapping queries do not re-run
// the diffusion decoder. Decode output is deterministic per payload, so
// results are byte-identical for any worker count, and GetAll() reproduces
// api::DecodeSession::DecodeAll exactly.
//
//   auto reader = core::ArchiveReader::FromFile("run.glsca");
//   serve::DecodeScheduler scheduler(&reader, codec.get(), {.workers = 4});
//   Tensor slice = scheduler.Get(0, 100, 140);   // [40, H, W], physical units
//
// Robustness contract (what ShardManager builds on):
//  - A record whose decode fails — corrupt payload, injected fault, geometry
//    mismatch — fails ONLY the queries that need that record, as a typed
//    exception from Get; concurrent queries over other records are untouched
//    and no worker-thread exception ever escapes the ThreadPool fan-out
//    unclassified.
//  - An optional RequestContext (deadline + cancel token) is checked
//    cooperatively between decode chunks; an expired/cancelled request
//    terminates with StatusError(kDeadlineExceeded/kCancelled) without
//    poisoning the single-flight table (waiters re-decode for themselves).
//  - ScheduleOptions::fault_injector is the test seam those guarantees are
//    proven through.
//
// This is the foundation the ROADMAP's sharding/batching layers build on:
// a shard is one (reader, scheduler) pair, and a batcher is a queue in front
// of Get.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "api/compressor.h"
#include "core/archive_reader.h"
#include "serve/fault_injector.h"
#include "util/deadline.h"
#include "util/lock_checker.h"
#include "util/mutex.h"

namespace glsc::serve {

struct ScheduleOptions {
  // Codec instances decoding concurrently; > 1 clones the primary codec and
  // distributes cache misses over the global ThreadPool.
  std::int64_t workers = 1;
  // Decoded records kept in the LRU cache (each is one normalized
  // [window, H, W] tensor). 0 disables caching. NOTE: cache_windows may be
  // smaller than a coalesced decode batch — records published by one batch
  // can evict each other inside a single Insert pass, but the Fetch results
  // themselves are unaffected because `out[]` holds its own (shared-storage)
  // copy of every decoded tensor; eviction only costs a future re-decode.
  std::size_t cache_windows = 32;
  // Cache-miss records owned by one worker are coalesced into batched
  // Compressor::DecompressWindows calls of at most this many payloads, so
  // model-based codecs (GLSC) run ONE diffusion/VAE pass over the stacked
  // windows instead of one per record. <= 1 restores the per-record
  // DecompressWindow dispatch. Results are byte-identical either way —
  // batching is a dispatch choice, never a quality choice.
  std::int64_t max_batch = 8;
  // Borrowed test seam, consulted before every record decode when non-null
  // (see fault_injector.h). Must outlive the scheduler.
  FaultInjector* fault_injector = nullptr;
};

class DecodeScheduler {
 public:
  // Both pointers are borrowed and must outlive the scheduler. `codec` must
  // match the archive's codec and be loaded with its model artifact.
  DecodeScheduler(const core::ArchiveReader* reader, api::Compressor* codec,
                  const ScheduleOptions& options = {});

  DecodeScheduler(const DecodeScheduler&) = delete;
  DecodeScheduler& operator=(const DecodeScheduler&) = delete;

  // One variable's frames [t_begin, t_end) in PHYSICAL units as
  // [t_end - t_begin, H, W]. Frames no record covers stay zero. Thread-safe.
  // A non-null `ctx` bounds the call: the deadline/cancel token is checked
  // between decode chunks and the call throws the matching typed StatusError
  // instead of finishing. Decode failures surface as typed exceptions
  // (ArchiveError / StatusError from injected faults) or whatever the codec
  // threw for a corrupt payload — never a hang, never a torn result.
  Tensor Get(std::int64_t variable, std::int64_t t_begin, std::int64_t t_end,
             const RequestContext* ctx = nullptr);

  // Every record, as the full [V, T, H, W] tensor — byte-identical to
  // api::DecodeSession::DecodeAll for any worker count.
  Tensor GetAll();

  // Records decoded so far (cache misses) / queries served from the cache.
  std::int64_t decoded_records() const {
    return decoded_.load(std::memory_order_relaxed);
  }
  std::int64_t cache_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  // Record decodes that terminated with an error (per record, not per query).
  std::int64_t decode_failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  // Single-flight slot for one record being decoded: the first query to miss
  // a record owns its decode; concurrent queries missing the same record wait
  // on the flight instead of decoding it again. Exactly one of three endings
  // is published: `done` (result valid), `aborted` with `error` set (the
  // decode itself failed — waiters rethrow the same typed error), or
  // `aborted` with no error (the owner stopped before decoding, e.g. its
  // deadline expired — waiters decode for themselves).
  //
  // Every field is written and read under the scheduler's mu_ (a nested
  // struct cannot name the enclosing class's mutex in a GUARDED_BY, so the
  // discipline is documented here and enforced by the mu_ annotations on the
  // maps that hold Flights).
  struct Flight {
    bool done = false;
    bool aborted = false;
    Tensor result;
    std::exception_ptr error;
  };

  // Decoded normalized windows for `indices` (records() positions), from the
  // cache where possible, decoding the rest in parallel — coalesced into
  // batches of up to options_.max_batch per worker, deduplicated against
  // concurrent queries via the in-flight table.
  std::vector<Tensor> Fetch(const std::vector<std::size_t>& indices,
                            const RequestContext* ctx);
  void Insert(std::size_t record, const Tensor& decoded) REQUIRES(mu_);

  // One record decode on worker slot `worker` (its mutex already held),
  // injector hook included. Throws on failure.
  Tensor DecodeRecord(std::size_t record, std::size_t worker,
                      tensor::Workspace* ws);

  const core::ArchiveReader* reader_;
  ScheduleOptions options_;
  std::vector<api::Compressor*> workers_;  // [codec, clones...]
  std::vector<std::unique_ptr<api::Compressor>> clones_;
  // One decode arena per worker slot (used under the matching worker_mu_, so
  // single-threaded access is guaranteed); model-based codecs reuse it across
  // every record the slot decodes.
  std::vector<std::unique_ptr<tensor::Workspace>> workspaces_;
  // One lock per worker slot: concurrent Get() calls both fan out over the
  // same workers_ array, and codec instances are not thread-safe. Held per
  // record decode, never across a pool wait, so queries interleave on worker
  // slots without deadlock. Lock order: worker_mu_[k] is taken BEFORE mu_
  // (decoders hold their slot while publishing); never take a worker lock
  // while holding mu_. The ranks below (checked at runtime under
  // GLSC_DEBUG_LOCKS) are the machine-readable form of that sentence.
  std::vector<std::unique_ptr<Mutex>> worker_mu_;

  Mutex mu_{"DecodeScheduler.mu", lockrank::kDecodeScheduler};
  // LRU over record indices: most recent at the front; cache_ maps a record
  // to its list node and decoded tensor.
  std::list<std::size_t> lru_ GUARDED_BY(mu_);
  std::unordered_map<std::size_t,
                     std::pair<std::list<std::size_t>::iterator, Tensor>>
      cache_ GUARDED_BY(mu_);
  // Records currently being decoded by some in-progress Fetch. Entries are
  // erased when their result is published; waiters keep the Flight alive
  // through their shared_ptr.
  std::unordered_map<std::size_t, std::shared_ptr<Flight>> inflight_
      GUARDED_BY(mu_);
  CondVar cv_;  // signaled on publish/abort, mu_ held
  std::atomic<std::int64_t> decoded_{0};
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> failures_{0};
};

}  // namespace glsc::serve
