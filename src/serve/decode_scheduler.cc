#include "serve/decode_scheduler.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace glsc::serve {

DecodeScheduler::DecodeScheduler(const core::ArchiveReader* reader,
                                 api::Compressor* codec,
                                 const ScheduleOptions& options)
    : reader_(reader), options_(options) {
  GLSC_CHECK(reader_ != nullptr && codec != nullptr);
  GLSC_CHECK_MSG(codec->name() == reader_->codec(),
                 "archive was written by codec '"
                     << reader_->codec() << "' but decode codec is '"
                     << codec->name() << "'");
  GLSC_CHECK_MSG(options_.workers >= 1, "workers must be >= 1");
  workers_.push_back(codec);
  while (static_cast<std::int64_t>(workers_.size()) < options_.workers) {
    clones_.push_back(codec->Clone());
    workers_.push_back(clones_.back().get());
  }
  worker_mu_.reserve(workers_.size());
  workspaces_.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    worker_mu_.push_back(std::make_unique<std::mutex>());
    workspaces_.push_back(std::make_unique<tensor::Workspace>());
  }
}

std::vector<Tensor> DecodeScheduler::Fetch(
    const std::vector<std::size_t>& indices) {
  std::vector<Tensor> out(indices.size());
  std::vector<std::size_t> misses;  // positions in `indices`
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const auto it = cache_.find(indices[i]);
      if (it != cache_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.first);
        out[i] = it->second.second;
        hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        misses.push_back(i);
      }
    }
  }
  if (misses.empty()) return out;

  const Shape& shape = reader_->dataset_shape();
  const auto decode_one = [&](std::size_t position, std::size_t worker) {
    // Per-worker lock: concurrent Get() calls fan out over the same worker
    // slots, and model instances are not thread-safe. Held only for the
    // decode itself (never across a pool wait), so this cannot deadlock.
    const std::size_t record = indices[position];
    const std::vector<std::uint8_t>* view = reader_->PayloadView(record);
    std::lock_guard<std::mutex> lock(*worker_mu_[worker]);
    tensor::Workspace* ws = workspaces_[worker].get();
    Tensor recon = view != nullptr
                       ? workers_[worker]->DecompressWindow(*view, ws)
                       : workers_[worker]->DecompressWindow(
                             reader_->ReadPayload(record), ws);
    GLSC_CHECK_MSG(recon.rank() == 3 && recon.dim(1) == shape[2] &&
                       recon.dim(2) == shape[3],
                   "decoded window geometry mismatch");
    GLSC_CHECK(reader_->records()[record].valid_frames <= recon.dim(0));
    out[position] = std::move(recon);
  };

  const std::size_t fan_out = std::min(workers_.size(), misses.size());
  if (fan_out <= 1) {
    for (const std::size_t position : misses) {
      decode_one(position, 0);
    }
  } else {
    // Static round-robin: worker k owns misses k, k+W, ... so within one
    // query each model instance is touched by exactly one thread. Runs
    // inline when already on a pool worker (ThreadPool::ParallelFor detects
    // re-entry), so serving layers stacked above may themselves fan out.
    GlobalThreadPool().ParallelFor(fan_out, [&](std::size_t k) {
      for (std::size_t j = k; j < misses.size(); j += fan_out) {
        decode_one(misses[j], k);
      }
    });
  }
  decoded_.fetch_add(static_cast<std::int64_t>(misses.size()),
                     std::memory_order_relaxed);

  if (options_.cache_windows > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::size_t position : misses) {
      Insert(indices[position], out[position]);
    }
  }
  return out;
}

void DecodeScheduler::Insert(std::size_t record, const Tensor& decoded) {
  const auto it = cache_.find(record);
  if (it != cache_.end()) {  // another query raced us to the same record
    lru_.splice(lru_.begin(), lru_, it->second.first);
    return;
  }
  lru_.push_front(record);
  cache_.emplace(record, std::make_pair(lru_.begin(), decoded));
  while (cache_.size() > options_.cache_windows) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

Tensor DecodeScheduler::Get(std::int64_t variable, std::int64_t t_begin,
                            std::int64_t t_end) {
  const Shape& shape = reader_->dataset_shape();
  const std::vector<std::size_t> indices =
      reader_->RecordsFor(variable, t_begin, t_end);  // validates the query
  const std::vector<Tensor> decoded = Fetch(indices);

  const std::int64_t hw = shape[2] * shape[3];
  Tensor out({t_end - t_begin, shape[2], shape[3]});  // zero-filled
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const core::RecordRef& ref = reader_->records()[indices[i]];
    const std::int64_t lo = std::max(ref.t0, t_begin);
    const std::int64_t hi = std::min(ref.t0 + ref.valid_frames, t_end);
    for (std::int64_t t = lo; t < hi; ++t) {
      const data::FrameNorm& fn = reader_->norm(variable, t);
      const float* src = decoded[i].data() + (t - ref.t0) * hw;
      float* dst = out.data() + (t - t_begin) * hw;
      for (std::int64_t k = 0; k < hw; ++k) {
        dst[k] = src[k] * fn.range + fn.mean;
      }
    }
  }
  return out;
}

Tensor DecodeScheduler::GetAll() {
  const Shape& shape = reader_->dataset_shape();
  std::vector<std::size_t> indices(reader_->records().size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  const std::vector<Tensor> decoded = Fetch(indices);

  const std::int64_t frames = shape[1];
  const std::int64_t hw = shape[2] * shape[3];
  Tensor out(shape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const core::RecordRef& ref = reader_->records()[i];
    GLSC_CHECK(ref.t0 + ref.valid_frames <= frames);
    for (std::int64_t f = 0; f < ref.valid_frames; ++f) {
      const std::int64_t t = ref.t0 + f;
      const data::FrameNorm& fn = reader_->norm(ref.variable, t);
      const float* src = decoded[i].data() + f * hw;
      float* dst = out.data() + (ref.variable * frames + t) * hw;
      for (std::int64_t k = 0; k < hw; ++k) {
        dst[k] = src[k] * fn.range + fn.mean;
      }
    }
  }
  return out;
}

}  // namespace glsc::serve
