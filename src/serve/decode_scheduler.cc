#include "serve/decode_scheduler.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace glsc::serve {

DecodeScheduler::DecodeScheduler(const core::ArchiveReader* reader,
                                 api::Compressor* codec,
                                 const ScheduleOptions& options)
    : reader_(reader), options_(options) {
  GLSC_CHECK(reader_ != nullptr && codec != nullptr);
  GLSC_CHECK_MSG(codec->name() == reader_->codec(),
                 "archive was written by codec '"
                     << reader_->codec() << "' but decode codec is '"
                     << codec->name() << "'");
  GLSC_CHECK_MSG(options_.workers >= 1, "workers must be >= 1");
  workers_.push_back(codec);
  while (static_cast<std::int64_t>(workers_.size()) < options_.workers) {
    clones_.push_back(codec->Clone());
    workers_.push_back(clones_.back().get());
  }
  worker_mu_.reserve(workers_.size());
  workspaces_.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    worker_mu_.push_back(std::make_unique<Mutex>(
        "DecodeScheduler.worker_mu", lockrank::kDecodeWorkerSlot));
    workspaces_.push_back(std::make_unique<tensor::Workspace>());
  }
}

Tensor DecodeScheduler::DecodeRecord(std::size_t record, std::size_t worker,
                                     tensor::Workspace* ws) {
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->OnDecode(record);
  }
  const std::vector<std::uint8_t>* view = reader_->PayloadView(record);
  return view != nullptr
             ? workers_[worker]->DecompressWindow(*view, ws)
             : workers_[worker]->DecompressWindow(
                   reader_->ReadPayload(record, ws), ws);
}

std::vector<Tensor> DecodeScheduler::Fetch(
    const std::vector<std::size_t>& indices, const RequestContext* ctx) {
  if (ctx != nullptr) ctx->Check();
  std::vector<Tensor> out(indices.size());
  std::vector<std::size_t> owned;  // positions in `indices` this call decodes
  std::vector<std::shared_ptr<Flight>> owned_flights;  // parallel to `owned`
  // Positions whose record a concurrent query is already decoding.
  std::vector<std::pair<std::size_t, std::shared_ptr<Flight>>> waits;
  {
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const auto it = cache_.find(indices[i]);
      if (it != cache_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.first);
        out[i] = it->second.second;
        hits_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Single-flight: the first query to miss a record owns its decode;
      // later queries (and duplicate indices within this one) wait on the
      // owner's Flight instead of running the decoder a second time.
      const auto fit = inflight_.find(indices[i]);
      if (fit != inflight_.end()) {
        waits.emplace_back(i, fit->second);
        continue;
      }
      auto flight = std::make_shared<Flight>();
      inflight_.emplace(indices[i], flight);
      owned.push_back(i);
      owned_flights.push_back(std::move(flight));
    }
  }

  const Shape& shape = reader_->dataset_shape();
  const auto check_geometry = [&](const Tensor& recon, std::size_t record) {
    GLSC_CHECK_MSG(recon.rank() == 3 && recon.dim(1) == shape[2] &&
                       recon.dim(2) == shape[3],
                   "decoded window geometry mismatch");
    GLSC_CHECK(reader_->records()[record].valid_frames <= recon.dim(0));
  };

  if (!owned.empty()) {
    // Per-owned-position outcome, written under mu_ inside the fan-out:
    //   0 = untouched (chunk skipped — deadline/cancel before it ran)
    //   1 = published success   2 = published failure (errors[j] set)
    std::vector<char> state(owned.size(), 0);
    std::vector<std::exception_ptr> errors(owned.size());

    // Publishes one decoded chunk: results land in `out`, the cache, and the
    // records' Flight slots in one critical section. Publication happens per
    // chunk INSIDE the decode loop — not after the whole fan-out drains — so
    // waiters unblock as soon as the batch holding their record finishes.
    const auto publish = [&](const std::size_t* positions_in_owned,
                             Tensor* recons, std::size_t n) {
      MutexLock lock(mu_);
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t oj = positions_in_owned[j];
        const std::size_t position = owned[oj];
        const std::size_t record = indices[position];
        out[position] = std::move(recons[j]);
        state[oj] = 1;
        const auto fit = inflight_.find(record);
        if (fit != inflight_.end()) {
          fit->second->done = true;
          fit->second->result = out[position];
          inflight_.erase(fit);
        }
        if (options_.cache_windows > 0) Insert(record, out[position]);
      }
      decoded_.fetch_add(static_cast<std::int64_t>(n),
                         std::memory_order_relaxed);
      cv_.NotifyAll();
    };

    // Publishes one record's decode FAILURE: the flight carries the typed
    // error so every waiter rethrows the same exception, and the in-flight
    // entry is dropped so later queries may retry the record fresh. Only the
    // queries needing this record see the failure.
    const auto publish_failure = [&](std::size_t oj, std::exception_ptr err) {
      MutexLock lock(mu_);
      errors[oj] = err;
      state[oj] = 2;
      const std::shared_ptr<Flight>& flight = owned_flights[oj];
      flight->aborted = true;
      flight->error = err;
      const auto fit = inflight_.find(indices[owned[oj]]);
      if (fit != inflight_.end() && fit->second == flight) {
        inflight_.erase(fit);
      }
      failures_.fetch_add(1, std::memory_order_relaxed);
      cv_.NotifyAll();
    };

    // Contiguous chunks of at most max_batch owned records; worker k decodes
    // chunks k, k+W, ... so within one query each model instance is touched
    // by exactly one thread.
    const std::size_t max_batch = static_cast<std::size_t>(
        std::max<std::int64_t>(1, options_.max_batch));
    std::vector<std::pair<std::size_t, std::size_t>> chunks;  // [begin, end)
    for (std::size_t begin = 0; begin < owned.size(); begin += max_batch) {
      chunks.emplace_back(begin, std::min(owned.size(), begin + max_batch));
    }

    // Decodes chunk c on worker slot `worker`. Every failure mode —
    // injected fault, corrupt payload throwing from the codec, geometry
    // mismatch — is captured PER RECORD and published as that record's typed
    // error; nothing escapes this function except a deliberate rethrow after
    // the fan-out drains, so one bad record can never tear down the decode of
    // its chunk-mates or of concurrent queries.
    const auto decode_chunk = [&](std::size_t c, std::size_t worker) {
      // Cooperative deadline/cancel check between chunks: skip the chunk
      // entirely (state stays 0) and let the post-fan-out pass abort the
      // flights so waiters re-decode for themselves.
      if (ShouldAbort(ctx)) return;
      const std::size_t begin = chunks[c].first;
      const std::size_t n = chunks[c].second - begin;
      // Per-worker lock: concurrent Get() calls fan out over the same worker
      // slots, and model instances are not thread-safe. Held only for the
      // decode itself (never across a pool or flight wait), so this cannot
      // deadlock.
      MutexLock lock(*worker_mu_[worker]);
      tensor::Workspace* ws = workspaces_[worker].get();

      if (options_.max_batch <= 1 || n == 1) {
        // Per-record dispatch: max_batch <= 1 (legacy behavior, the "serial"
        // arm of bench_e2e_decode) and single-record tails take the exact
        // code path this scheduler always had.
        for (std::size_t j = begin; j < begin + n; ++j) {
          try {
            Tensor recon = DecodeRecord(indices[owned[j]], worker, ws);
            check_geometry(recon, indices[owned[j]]);
            publish(&j, &recon, 1);
          } catch (...) {
            publish_failure(j, std::current_exception());
          }
        }
        return;
      }

      // Batched dispatch: ONE DecompressWindows call for the whole chunk.
      // The injector hook and payload fetch run per record first; records
      // failing there are published as failures and excluded from the batch.
      // Payloads the reader cannot expose as views are read into owned_bytes,
      // which is reserved up front because `payloads` keeps pointers into it.
      std::vector<std::size_t> live;  // owned[] positions still in the batch
      std::vector<std::vector<std::uint8_t>> owned_bytes;
      owned_bytes.reserve(n);
      std::vector<const std::vector<std::uint8_t>*> payloads;
      payloads.reserve(n);
      live.reserve(n);
      for (std::size_t j = begin; j < begin + n; ++j) {
        const std::size_t record = indices[owned[j]];
        try {
          if (options_.fault_injector != nullptr) {
            options_.fault_injector->OnDecode(record);
          }
          const std::vector<std::uint8_t>* view = reader_->PayloadView(record);
          if (view == nullptr) {
            owned_bytes.push_back(reader_->ReadPayload(record, ws));
            view = &owned_bytes.back();
          }
          payloads.push_back(view);
          live.push_back(j);
        } catch (...) {
          publish_failure(j, std::current_exception());
        }
      }
      if (live.empty()) return;

      std::vector<Tensor> recons;
      bool batch_ok = true;
      try {
        recons = workers_[worker]->DecompressWindows(payloads, ws);
        GLSC_CHECK(recons.size() == live.size());
      } catch (...) {
        batch_ok = false;
      }
      if (!batch_ok) {
        // The batched call cannot say WHICH payload sank it. Re-decode the
        // batch per record (injector already consumed its charges above, so
        // this pass sees the codec's real behavior) to attribute the failure
        // to exactly the bad record(s) and save the good ones.
        for (const std::size_t j : live) {
          const std::size_t record = indices[owned[j]];
          try {
            const std::vector<std::uint8_t>* view =
                reader_->PayloadView(record);
            Tensor recon =
                view != nullptr
                    ? workers_[worker]->DecompressWindow(*view, ws)
                    : workers_[worker]->DecompressWindow(
                          reader_->ReadPayload(record, ws), ws);
            check_geometry(recon, record);
            publish(&j, &recon, 1);
          } catch (...) {
            publish_failure(j, std::current_exception());
          }
        }
        return;
      }
      for (std::size_t k = 0; k < live.size(); ++k) {
        try {
          check_geometry(recons[k], indices[owned[live[k]]]);
          publish(&live[k], &recons[k], 1);
        } catch (...) {
          publish_failure(live[k], std::current_exception());
        }
      }
    };

    const std::size_t fan_out = std::min(workers_.size(), chunks.size());
    try {
      if (fan_out <= 1) {
        for (std::size_t c = 0; c < chunks.size(); ++c) decode_chunk(c, 0);
      } else {
        // Runs inline when already on a pool worker (ThreadPool::ParallelFor
        // detects re-entry), so serving layers stacked above may themselves
        // fan out. ParallelFor drains every helper before returning or
        // throwing, so `chunks`/`out`/`state` never outlive a running body.
        GlobalThreadPool().ParallelFor(fan_out, [&](std::size_t k) {
          for (std::size_t c = k; c < chunks.size(); c += fan_out) {
            decode_chunk(c, k);
          }
        });
      }
    } catch (...) {
      // Backstop for failures outside the per-record capture (bad_alloc in
      // the fan-out plumbing): abort every owned flight that was never
      // published so waiters on other threads re-decode for themselves
      // instead of blocking forever. The pointer comparison guards against
      // erasing a successor flight: once a record is published and then
      // evicted, a new query may have opened a fresh flight for it under the
      // same key.
      MutexLock lock(mu_);
      for (std::size_t j = 0; j < owned.size(); ++j) {
        const std::shared_ptr<Flight>& flight = owned_flights[j];
        if (flight->done || flight->aborted) continue;
        flight->aborted = true;
        const auto fit = inflight_.find(indices[owned[j]]);
        if (fit != inflight_.end() && fit->second == flight) {
          inflight_.erase(fit);
        }
      }
      cv_.NotifyAll();
      throw;
    }

    // Chunks skipped by the deadline/cancel check left their flights open:
    // abort them (no error — the records are fine, this REQUEST ran out of
    // time) so waiters decode for themselves, then fail this call typed.
    bool skipped = false;
    {
      MutexLock lock(mu_);
      for (std::size_t j = 0; j < owned.size(); ++j) {
        if (state[j] != 0) continue;
        skipped = true;
        const std::shared_ptr<Flight>& flight = owned_flights[j];
        flight->aborted = true;
        const auto fit = inflight_.find(indices[owned[j]]);
        if (fit != inflight_.end() && fit->second == flight) {
          inflight_.erase(fit);
        }
      }
      if (skipped) cv_.NotifyAll();
    }
    if (skipped && ctx != nullptr) ctx->Check();

    // This query needs every record it owns: the first failure fails the
    // call (typed). Other queries running concurrently over healthy records
    // were published normally above and never see this throw.
    for (std::size_t j = 0; j < owned.size(); ++j) {
      if (state[j] == 2) std::rethrow_exception(errors[j]);
    }
  }

  // Collect results concurrent queries decoded for us. Every owned record is
  // already published (or this call threw), so waiting here cannot deadlock:
  // the flights below belong to OTHER in-progress Fetch calls, which publish
  // or abort without needing anything from this one.
  for (const auto& wait : waits) {
    const std::size_t position = wait.first;
    const std::shared_ptr<Flight>& flight = wait.second;
    bool decode_self = false;
    {
      MutexLock lock(mu_);
      cv_.Wait(mu_, [&flight]() { return flight->done || flight->aborted; });
      if (flight->done) {
        // Served without running the decoder — counts as a cache hit.
        out[position] = flight->result;
        hits_.fetch_add(1, std::memory_order_relaxed);
      } else if (flight->error != nullptr) {
        // The owner's decode of this record failed; the record would fail
        // for us identically (decode is deterministic), so propagate the
        // owner's typed error. Retry policy lives in the shard manager.
        std::rethrow_exception(flight->error);
      } else {
        decode_self = true;
      }
    }
    if (!decode_self) continue;
    // The owner stopped before decoding (deadline/cancel/backstop); decode
    // the record ourselves — unless this request is itself out of time.
    // mu_ was dropped above before taking a worker lock (decoders take
    // worker_mu_ then mu_ to publish — the reverse order would deadlock).
    if (ctx != nullptr) ctx->Check();
    const std::size_t record = indices[position];
    Tensor recon;
    {
      MutexLock wlock(*worker_mu_[0]);
      recon = DecodeRecord(record, 0, workspaces_[0].get());
    }
    check_geometry(recon, record);
    decoded_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(mu_);
      out[position] = std::move(recon);
      if (options_.cache_windows > 0) Insert(record, out[position]);
    }
  }
  return out;
}

void DecodeScheduler::Insert(std::size_t record, const Tensor& decoded) {
  const auto it = cache_.find(record);
  if (it != cache_.end()) {  // another query raced us to the same record
    lru_.splice(lru_.begin(), lru_, it->second.first);
    return;
  }
  lru_.push_front(record);
  cache_.emplace(record, std::make_pair(lru_.begin(), decoded));
  while (cache_.size() > options_.cache_windows) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

Tensor DecodeScheduler::Get(std::int64_t variable, std::int64_t t_begin,
                            std::int64_t t_end, const RequestContext* ctx) {
  const Shape& shape = reader_->dataset_shape();
  const std::vector<std::size_t> indices =
      reader_->RecordsFor(variable, t_begin, t_end);  // validates the query
  const std::vector<Tensor> decoded = Fetch(indices, ctx);

  const std::int64_t hw = shape[2] * shape[3];
  Tensor out({t_end - t_begin, shape[2], shape[3]});  // zero-filled
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const core::RecordRef& ref = reader_->records()[indices[i]];
    const std::int64_t lo = std::max(ref.t0, t_begin);
    const std::int64_t hi = std::min(ref.t0 + ref.valid_frames, t_end);
    for (std::int64_t t = lo; t < hi; ++t) {
      const data::FrameNorm& fn = reader_->norm(variable, t);
      const float* src = decoded[i].data() + (t - ref.t0) * hw;
      float* dst = out.data() + (t - t_begin) * hw;
      for (std::int64_t k = 0; k < hw; ++k) {
        dst[k] = src[k] * fn.range + fn.mean;
      }
    }
  }
  return out;
}

Tensor DecodeScheduler::GetAll() {
  const Shape& shape = reader_->dataset_shape();
  std::vector<std::size_t> indices(reader_->records().size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  const std::vector<Tensor> decoded = Fetch(indices, nullptr);

  const std::int64_t frames = shape[1];
  const std::int64_t hw = shape[2] * shape[3];
  Tensor out(shape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const core::RecordRef& ref = reader_->records()[i];
    GLSC_CHECK(ref.t0 + ref.valid_frames <= frames);
    for (std::int64_t f = 0; f < ref.valid_frames; ++f) {
      const std::int64_t t = ref.t0 + f;
      const data::FrameNorm& fn = reader_->norm(ref.variable, t);
      const float* src = decoded[i].data() + f * hw;
      float* dst = out.data() + (ref.variable * frames + t) * hw;
      for (std::int64_t k = 0; k < hw; ++k) {
        dst[k] = src[k] * fn.range + fn.mean;
      }
    }
  }
  return out;
}

}  // namespace glsc::serve
