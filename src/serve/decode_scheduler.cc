#include "serve/decode_scheduler.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace glsc::serve {

DecodeScheduler::DecodeScheduler(const core::ArchiveReader* reader,
                                 api::Compressor* codec,
                                 const ScheduleOptions& options)
    : reader_(reader), options_(options) {
  GLSC_CHECK(reader_ != nullptr && codec != nullptr);
  GLSC_CHECK_MSG(codec->name() == reader_->codec(),
                 "archive was written by codec '"
                     << reader_->codec() << "' but decode codec is '"
                     << codec->name() << "'");
  GLSC_CHECK_MSG(options_.workers >= 1, "workers must be >= 1");
  workers_.push_back(codec);
  while (static_cast<std::int64_t>(workers_.size()) < options_.workers) {
    clones_.push_back(codec->Clone());
    workers_.push_back(clones_.back().get());
  }
  worker_mu_.reserve(workers_.size());
  workspaces_.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    worker_mu_.push_back(std::make_unique<std::mutex>());
    workspaces_.push_back(std::make_unique<tensor::Workspace>());
  }
}

std::vector<Tensor> DecodeScheduler::Fetch(
    const std::vector<std::size_t>& indices) {
  std::vector<Tensor> out(indices.size());
  std::vector<std::size_t> owned;  // positions in `indices` this call decodes
  std::vector<std::shared_ptr<Flight>> owned_flights;  // parallel to `owned`
  // Positions whose record a concurrent query is already decoding.
  std::vector<std::pair<std::size_t, std::shared_ptr<Flight>>> waits;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const auto it = cache_.find(indices[i]);
      if (it != cache_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.first);
        out[i] = it->second.second;
        hits_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Single-flight: the first query to miss a record owns its decode;
      // later queries (and duplicate indices within this one) wait on the
      // owner's Flight instead of running the decoder a second time.
      const auto fit = inflight_.find(indices[i]);
      if (fit != inflight_.end()) {
        waits.emplace_back(i, fit->second);
        continue;
      }
      auto flight = std::make_shared<Flight>();
      inflight_.emplace(indices[i], flight);
      owned.push_back(i);
      owned_flights.push_back(std::move(flight));
    }
  }

  const Shape& shape = reader_->dataset_shape();
  const auto check_geometry = [&](const Tensor& recon, std::size_t record) {
    GLSC_CHECK_MSG(recon.rank() == 3 && recon.dim(1) == shape[2] &&
                       recon.dim(2) == shape[3],
                   "decoded window geometry mismatch");
    GLSC_CHECK(reader_->records()[record].valid_frames <= recon.dim(0));
  };

  if (!owned.empty()) {
    // Publishes one decoded chunk: results land in `out`, the cache, and the
    // records' Flight slots in one critical section. Publication happens per
    // chunk INSIDE the decode loop — not after the whole fan-out drains — so
    // waiters unblock as soon as the batch holding their record finishes.
    const auto publish = [&](const std::size_t* positions, Tensor* recons,
                             std::size_t n) {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t position = positions[j];
        const std::size_t record = indices[position];
        out[position] = std::move(recons[j]);
        const auto fit = inflight_.find(record);
        if (fit != inflight_.end()) {
          fit->second->done = true;
          fit->second->result = out[position];
          inflight_.erase(fit);
        }
        if (options_.cache_windows > 0) Insert(record, out[position]);
      }
      decoded_.fetch_add(static_cast<std::int64_t>(n),
                         std::memory_order_relaxed);
      cv_.notify_all();
    };

    // Contiguous chunks of at most max_batch owned records; worker k decodes
    // chunks k, k+W, ... so within one query each model instance is touched
    // by exactly one thread.
    const std::size_t max_batch = static_cast<std::size_t>(
        std::max<std::int64_t>(1, options_.max_batch));
    std::vector<std::pair<std::size_t, std::size_t>> chunks;  // [begin, end)
    for (std::size_t begin = 0; begin < owned.size(); begin += max_batch) {
      chunks.emplace_back(begin, std::min(owned.size(), begin + max_batch));
    }

    const auto decode_chunk = [&](std::size_t c, std::size_t worker) {
      const std::size_t begin = chunks[c].first;
      const std::size_t n = chunks[c].second - begin;
      // Per-worker lock: concurrent Get() calls fan out over the same worker
      // slots, and model instances are not thread-safe. Held only for the
      // decode itself (never across a pool or flight wait), so this cannot
      // deadlock.
      std::lock_guard<std::mutex> lock(*worker_mu_[worker]);
      tensor::Workspace* ws = workspaces_[worker].get();
      std::vector<Tensor> recons;
      if (options_.max_batch <= 1 || n == 1) {
        // Per-record dispatch: max_batch <= 1 (legacy behavior, the "serial"
        // arm of bench_e2e_decode) and single-record tails take the exact
        // code path this scheduler always had.
        recons.reserve(n);
        for (std::size_t j = begin; j < begin + n; ++j) {
          const std::size_t record = indices[owned[j]];
          const std::vector<std::uint8_t>* view = reader_->PayloadView(record);
          recons.push_back(view != nullptr
                               ? workers_[worker]->DecompressWindow(*view, ws)
                               : workers_[worker]->DecompressWindow(
                                     reader_->ReadPayload(record), ws));
        }
      } else {
        // Batched dispatch: ONE DecompressWindows call for the whole chunk.
        // Payloads the reader cannot expose as views are read into
        // owned_bytes, which is reserved up front because `payloads` keeps
        // pointers into it.
        std::vector<std::vector<std::uint8_t>> owned_bytes;
        owned_bytes.reserve(n);
        std::vector<const std::vector<std::uint8_t>*> payloads;
        payloads.reserve(n);
        for (std::size_t j = begin; j < begin + n; ++j) {
          const std::size_t record = indices[owned[j]];
          const std::vector<std::uint8_t>* view = reader_->PayloadView(record);
          if (view == nullptr) {
            owned_bytes.push_back(reader_->ReadPayload(record));
            view = &owned_bytes.back();
          }
          payloads.push_back(view);
        }
        recons = workers_[worker]->DecompressWindows(payloads, ws);
        GLSC_CHECK(recons.size() == n);
      }
      for (std::size_t j = 0; j < n; ++j) {
        check_geometry(recons[j], indices[owned[begin + j]]);
      }
      publish(owned.data() + begin, recons.data(), n);
    };

    const std::size_t fan_out = std::min(workers_.size(), chunks.size());
    try {
      if (fan_out <= 1) {
        for (std::size_t c = 0; c < chunks.size(); ++c) decode_chunk(c, 0);
      } else {
        // Runs inline when already on a pool worker (ThreadPool::ParallelFor
        // detects re-entry), so serving layers stacked above may themselves
        // fan out.
        GlobalThreadPool().ParallelFor(fan_out, [&](std::size_t k) {
          for (std::size_t c = k; c < chunks.size(); c += fan_out) {
            decode_chunk(c, k);
          }
        });
      }
    } catch (...) {
      // Abort every owned flight that was never published so waiters on other
      // threads re-decode for themselves instead of blocking forever. The
      // pointer comparison guards against erasing a successor flight: once a
      // record is published and then evicted, a new query may have opened a
      // fresh flight for it under the same key.
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t j = 0; j < owned.size(); ++j) {
        const std::shared_ptr<Flight>& flight = owned_flights[j];
        if (flight->done) continue;
        flight->aborted = true;
        const auto fit = inflight_.find(indices[owned[j]]);
        if (fit != inflight_.end() && fit->second == flight) {
          inflight_.erase(fit);
        }
      }
      cv_.notify_all();
      throw;
    }
  }

  // Collect results concurrent queries decoded for us. Every owned record is
  // already published (or this call threw), so waiting here cannot deadlock:
  // the flights below belong to OTHER in-progress Fetch calls, which publish
  // or abort without needing anything from this one.
  if (!waits.empty()) {
    std::unique_lock<std::mutex> lock(mu_);
    for (const auto& wait : waits) {
      const std::size_t position = wait.first;
      const std::shared_ptr<Flight>& flight = wait.second;
      cv_.wait(lock, [&] { return flight->done || flight->aborted; });
      if (flight->done) {
        // Served without running the decoder — counts as a cache hit.
        out[position] = flight->result;
        hits_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // The owner failed before publishing; decode the record ourselves.
      // mu_ must be dropped before taking a worker lock (decoders take
      // worker_mu_ then mu_ to publish — the reverse order would deadlock).
      lock.unlock();
      const std::size_t record = indices[position];
      Tensor recon;
      {
        std::lock_guard<std::mutex> wlock(*worker_mu_[0]);
        const std::vector<std::uint8_t>* view = reader_->PayloadView(record);
        recon = view != nullptr
                    ? workers_[0]->DecompressWindow(*view, workspaces_[0].get())
                    : workers_[0]->DecompressWindow(
                          reader_->ReadPayload(record), workspaces_[0].get());
      }
      check_geometry(recon, record);
      decoded_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
      out[position] = std::move(recon);
      if (options_.cache_windows > 0) Insert(record, out[position]);
    }
  }
  return out;
}

void DecodeScheduler::Insert(std::size_t record, const Tensor& decoded) {
  const auto it = cache_.find(record);
  if (it != cache_.end()) {  // another query raced us to the same record
    lru_.splice(lru_.begin(), lru_, it->second.first);
    return;
  }
  lru_.push_front(record);
  cache_.emplace(record, std::make_pair(lru_.begin(), decoded));
  while (cache_.size() > options_.cache_windows) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

Tensor DecodeScheduler::Get(std::int64_t variable, std::int64_t t_begin,
                            std::int64_t t_end) {
  const Shape& shape = reader_->dataset_shape();
  const std::vector<std::size_t> indices =
      reader_->RecordsFor(variable, t_begin, t_end);  // validates the query
  const std::vector<Tensor> decoded = Fetch(indices);

  const std::int64_t hw = shape[2] * shape[3];
  Tensor out({t_end - t_begin, shape[2], shape[3]});  // zero-filled
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const core::RecordRef& ref = reader_->records()[indices[i]];
    const std::int64_t lo = std::max(ref.t0, t_begin);
    const std::int64_t hi = std::min(ref.t0 + ref.valid_frames, t_end);
    for (std::int64_t t = lo; t < hi; ++t) {
      const data::FrameNorm& fn = reader_->norm(variable, t);
      const float* src = decoded[i].data() + (t - ref.t0) * hw;
      float* dst = out.data() + (t - t_begin) * hw;
      for (std::int64_t k = 0; k < hw; ++k) {
        dst[k] = src[k] * fn.range + fn.mean;
      }
    }
  }
  return out;
}

Tensor DecodeScheduler::GetAll() {
  const Shape& shape = reader_->dataset_shape();
  std::vector<std::size_t> indices(reader_->records().size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  const std::vector<Tensor> decoded = Fetch(indices);

  const std::int64_t frames = shape[1];
  const std::int64_t hw = shape[2] * shape[3];
  Tensor out(shape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const core::RecordRef& ref = reader_->records()[i];
    GLSC_CHECK(ref.t0 + ref.valid_frames <= frames);
    for (std::int64_t f = 0; f < ref.valid_frames; ++f) {
      const std::int64_t t = ref.t0 + f;
      const data::FrameNorm& fn = reader_->norm(ref.variable, t);
      const float* src = decoded[i].data() + f * hw;
      float* dst = out.data() + (ref.variable * frames + t) * hw;
      for (std::int64_t k = 0; k < hw; ++k) {
        dst[k] = src[k] * fn.range + fn.mean;
      }
    }
  }
  return out;
}

}  // namespace glsc::serve
