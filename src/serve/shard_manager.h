// Multi-tenant serving front end over a fleet of decode shards.
//
// A shard is one (ArchiveReader, DecodeScheduler) pair with its own cache and
// worker budget — exactly the unit the ROADMAP's serving notes call for. The
// ShardManager puts a bounded request queue and an admission controller in
// front of the fleet so many tenants can share it without one of them (or one
// broken archive) taking the service down:
//
//   request --> admission control --> bounded queue --> worker threads
//               (tenant in-flight       (reject-newest    (retry transients,
//                limits, byte budgets,   when full:        quarantine shards
//                quarantine fail-fast)   kQueueFull)       that keep failing)
//
// Degradation ladder under stress, in order:
//  1. Load shedding — the queue is bounded and TryPush never blocks; when it
//     is full, new requests fail immediately with kQueueFull instead of
//     growing memory or latency without bound.
//  2. Deadlines — each request carries an optional Deadline + CancelToken,
//     checked when the request is dequeued and cooperatively between decode
//     chunks; expiry surfaces as kDeadlineExceeded, never a hang.
//  3. Retry with backoff — transient decode failures (kUnavailable) are
//     retried up to max_retries with exponential backoff, deadline
//     permitting.
//  4. Quarantine — quarantine_threshold CONSECUTIVE non-transient decode
//     failures trip a shard's circuit breaker: subsequent requests fail fast
//     with kQuarantined (no decode attempted) while other shards serve
//     normally. ReviveShard() closes the breaker after repair.
//
// Correctness bar: with no faults and unconstrained budgets, Get() is
// byte-identical to calling the shard's DecodeScheduler::Get directly. Under
// injected faults every request terminates with either correct bytes or a
// typed ServeError — no hang, no crash, no unbounded queue growth.
//
// Get() is synchronous and thread-safe: call it from as many tenant threads
// as you like; admission happens on the caller's thread, decode happens on
// the manager's dedicated workers, and the caller blocks only on its own
// request's completion.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/decode_scheduler.h"
#include "serve/request_queue.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/status.h"

namespace glsc::serve {

// Typed failure from the serving front end. code() says what happened:
// kQueueFull (shed), kTenantLimit / kBudgetExhausted (admission),
// kQuarantined (circuit breaker open), kDeadlineExceeded / kCancelled,
// kUnavailable (transient, retries exhausted), kDataLoss (corrupt data),
// kShutdown, kInvalidArgument, kInternal.
class ServeError : public StatusError {
 public:
  using StatusError::StatusError;
};

// One decode shard. All pointers are borrowed and must outlive the manager.
struct ShardSpec {
  const core::ArchiveReader* reader = nullptr;
  api::Compressor* codec = nullptr;  // must match reader->codec()
  // Per-shard budget: cache_windows and workers here ARE the shard's memory
  // and compute allotment. fault_injector is the per-shard test seam.
  ScheduleOptions schedule;
};

struct TenantLimits {
  // Admitted requests (queued + executing) a tenant may hold at once;
  // exceeding it fails admission with kTenantLimit. <= 0 means unlimited.
  std::int64_t max_in_flight = 8;
  // Cumulative decoded output bytes the tenant may consume; once spent,
  // admission fails with kBudgetExhausted until the limit is raised.
  // < 0 means unlimited.
  std::int64_t decoded_byte_budget = -1;
};

struct ManagerOptions {
  // Bounded queue depth shared by all shards; the load-shedding point.
  std::size_t queue_capacity = 64;
  // Dedicated consumer threads executing requests (independent of the global
  // ThreadPool so a saturated decode fan-out cannot starve the dispatcher).
  int worker_threads = 2;
  // Transient-failure (kUnavailable) retries per request, with exponential
  // backoff starting at retry_backoff_ms (0 retries = fail on first fault).
  int max_retries = 2;
  int retry_backoff_ms = 1;
  // Consecutive failed requests (non-transient decode faults, or transients
  // that exhausted their retries) that trip a shard's circuit breaker.
  // <= 0 disables quarantine.
  int quarantine_threshold = 3;
  // Applied to tenants without an explicit SetTenantLimits entry.
  TenantLimits default_limits;
};

struct GetRequest {
  std::size_t shard = 0;
  std::int64_t variable = 0;
  std::int64_t t_begin = 0;
  std::int64_t t_end = 0;
  std::string tenant = "default";
  Deadline deadline;  // default: none
  const CancelToken* cancel = nullptr;  // borrowed; optional
};

// Monotonic counters since construction plus point-in-time gauges.
// admitted == completed + failed + (currently in flight).
struct ServeStats {
  std::int64_t admitted = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;  // terminated with any typed error post-admission
  // Admission rejections by cause (these are NOT counted in `admitted`).
  std::int64_t shed_queue_full = 0;
  std::int64_t rejected_tenant_limit = 0;
  std::int64_t rejected_budget = 0;
  std::int64_t rejected_quarantine = 0;
  // Post-admission outcomes by cause (subsets of `failed`).
  std::int64_t deadline_exceeded = 0;
  std::int64_t cancelled = 0;
  // Transient-failure retries performed (a request may contribute several).
  std::int64_t retries = 0;
  // Summed over shards' schedulers.
  std::int64_t decoded_records = 0;
  std::int64_t cache_hits = 0;
  std::int64_t decode_failures = 0;
  // Gauges.
  std::size_t queue_depth = 0;
  std::vector<bool> shard_quarantined;
};

class ShardManager {
 public:
  // Builds one DecodeScheduler per spec and starts the worker threads.
  explicit ShardManager(const std::vector<ShardSpec>& shards,
                        const ManagerOptions& options = {});
  ~ShardManager();  // Shutdown() + join

  ShardManager(const ShardManager&) = delete;
  ShardManager& operator=(const ShardManager&) = delete;

  // Serves one request: admission -> queue -> decode (with retry) -> result.
  // Returns the [t_end - t_begin, H, W] physical-units tensor, byte-identical
  // to the shard scheduler's own Get. Throws ServeError / StatusError /
  // core::ArchiveError on any failure; every call terminates.
  Tensor Get(const GetRequest& request);

  // Replaces `tenant`'s limits (creating the tenant record if new). Takes
  // effect for subsequent admissions; in-flight requests are unaffected.
  void SetTenantLimits(const std::string& tenant, const TenantLimits& limits);

  bool quarantined(std::size_t shard) const;
  // Closes `shard`'s circuit breaker and zeroes its failure streak.
  void ReviveShard(std::size_t shard);

  ServeStats Stats() const;

  std::size_t num_shards() const { return shards_.size(); }
  const DecodeScheduler& scheduler(std::size_t shard) const {
    return *shards_.at(shard).scheduler;
  }

  // Stops admitting (kShutdown), drains queued requests (each still completes
  // or fails typed — never silently dropped), joins workers. Idempotent.
  void Shutdown();

 private:
  // The mutable Shard/TenantState fields are all protected by the manager's
  // mu_ (a nested struct cannot name the enclosing class's mutex in a
  // GUARDED_BY; the containers holding them are annotated instead).
  struct Shard {
    const core::ArchiveReader* reader;
    std::unique_ptr<DecodeScheduler> scheduler;
    int consecutive_failures = 0;  // under mu_
    bool quarantined = false;      // under mu_
  };
  struct TenantState {
    TenantLimits limits;             // under mu_
    std::int64_t in_flight = 0;      // under mu_
    std::int64_t decoded_bytes = 0;  // under mu_
  };
  // One admitted request's rendezvous between the caller (blocked in Get)
  // and the worker that executes it.
  struct Job {
    GetRequest request;
    Mutex mu{"ShardManager.Job.mu"};
    CondVar cv;
    bool finished GUARDED_BY(mu) = false;
    Tensor result GUARDED_BY(mu);
    std::exception_ptr error GUARDED_BY(mu);
  };

  void WorkerLoop();
  // Runs one dequeued job: deadline check, decode with transient retries,
  // quarantine bookkeeping. Fills job->result or job->error; never throws.
  void Execute(Job* job);
  // Post-admission bookkeeping when a job reaches a terminal state.
  void FinishJob(const Job& job, bool ok) EXCLUDES(mu_);
  TenantState& TenantFor(const std::string& tenant) REQUIRES(mu_);

  // shards_ itself (size, readers, scheduler pointers) is immutable after
  // construction; only the quarantine fields inside each Shard are under mu_.
  std::vector<Shard> shards_;
  ManagerOptions options_;
  std::unique_ptr<RequestQueue<std::shared_ptr<Job>>> queue_;
  std::vector<std::thread> workers_;

  mutable Mutex mu_{"ShardManager.mu"};  // tenants, quarantine, shutdown flag
  std::unordered_map<std::string, TenantState> tenants_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;

  std::atomic<std::int64_t> admitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> shed_queue_full_{0};
  std::atomic<std::int64_t> rejected_tenant_limit_{0};
  std::atomic<std::int64_t> rejected_budget_{0};
  std::atomic<std::int64_t> rejected_quarantine_{0};
  std::atomic<std::int64_t> deadline_exceeded_{0};
  std::atomic<std::int64_t> cancelled_{0};
  std::atomic<std::int64_t> retries_{0};
};

}  // namespace glsc::serve
