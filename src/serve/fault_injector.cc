#include "serve/fault_injector.h"

#include <chrono>
#include <thread>

namespace glsc::serve {

void FaultInjector::Arm(Kind kind, int count, std::int64_t record,
                        int slow_ms) {
  if (count <= 0) return;
  MutexLock lock(mu_);
  armed_.push_back({kind, count, record, slow_ms});
}

void FaultInjector::Disarm() {
  MutexLock lock(mu_);
  armed_.clear();
}

void FaultInjector::OnDecode(std::size_t record) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  Kind kind;
  int slow_ms = 0;
  {
    MutexLock lock(mu_);
    std::size_t hit = armed_.size();
    for (std::size_t i = 0; i < armed_.size(); ++i) {
      if (armed_[i].record < 0 ||
          armed_[i].record == static_cast<std::int64_t>(record)) {
        hit = i;
        break;
      }
    }
    if (hit == armed_.size()) return;
    kind = armed_[hit].kind;
    slow_ms = armed_[hit].slow_ms;
    if (--armed_[hit].remaining <= 0) {
      armed_.erase(armed_.begin() + static_cast<std::ptrdiff_t>(hit));
    }
  }
  // The throw/sleep happens OUTSIDE mu_ so a slow fault never serializes the
  // other decode workers through the injector.
  switch (kind) {
    case Kind::kTransient:
      transient_.fetch_add(1, std::memory_order_relaxed);
      throw StatusError(ErrorCode::kUnavailable,
                        "injected transient decode failure");
    case Kind::kCorrupt:
      corrupt_.fetch_add(1, std::memory_order_relaxed);
      throw StatusError(ErrorCode::kDataLoss, "injected corrupt payload");
    case Kind::kSlow:
      slow_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(slow_ms));
      return;
  }
}

}  // namespace glsc::serve
