// GlscCompressor — the paper's primary contribution assembled end to end:
//
//   compress(window):
//     1. keyframe latents y_C = Round(E(x_C)), entropy-coded with the
//        hyperprior (the ONLY per-frame latents that are stored);
//     2. a decoder-identical simulation reconstructs the window (diffusion
//        interpolation of the non-keyframe latents, VAE decode);
//     3. optional PCA post-processing appends per-frame corrections until the
//        L2 error of every frame is <= tau (the paper's error-bound
//        guarantee, §3.5).
//
//   decompress(bitstreams):
//     decode y_C -> min-max normalize (bounds derived from y_C, identical on
//     both sides) -> conditional latent diffusion generates y_G -> VAE
//     decodes all frames -> corrections applied.
//
// Determinism: sampling uses DDIM (eta = 0), so the only stochastic input is
// the initial Gaussian draw; its RNG seed is stored in the window header,
// making decompression bit-reproducible.
#pragma once

#include <memory>

#include "compress/vae.h"
#include "diffusion/conditioner.h"
#include "diffusion/noise_schedule.h"
#include "diffusion/sampler.h"
#include "diffusion/spacetime_unet.h"
#include "postprocess/residual_pca.h"

namespace glsc::core {

struct GlscConfig {
  compress::VaeConfig vae;
  diffusion::UNetConfig unet;
  std::int64_t schedule_steps = 200;
  diffusion::ScheduleKind schedule_kind = diffusion::ScheduleKind::kLinear;
  std::int64_t window = 16;  // N
  diffusion::KeyframeStrategy strategy =
      diffusion::KeyframeStrategy::kInterpolation;
  std::int64_t interval = 3;   // interpolation stride
  std::int64_t key_count = 6;  // for prediction / mixed strategies
  std::int64_t sample_steps = 32;
  postprocess::PcaConfig pca;

  GlscConfig() { unet.latent_channels = vae.latent_channels; }
};

// One compressed window with real byte accounting (Eq. 11 numerator parts).
struct CompressedWindow {
  compress::VaeBitstream keyframes;
  std::vector<std::vector<std::uint8_t>> corrections;  // per frame (maybe empty)
  Shape window_shape;  // [N, H, W]
  std::uint32_t sample_seed = 0;

  // latent bytes = Size(L); correction bytes = Size(G).
  std::size_t LatentBytes() const;
  std::size_t CorrectionBytes() const;
  // Header overhead: shapes/seed plus the per-frame normalization pair the
  // decoder needs to restore physical units (2 float32 per frame).
  std::size_t HeaderBytes() const;
  std::size_t TotalBytes() const {
    return LatentBytes() + CorrectionBytes() + HeaderBytes();
  }
};

class GlscCompressor {
 public:
  explicit GlscCompressor(const GlscConfig& config);

  const GlscConfig& config() const { return config_; }
  const std::vector<std::int64_t>& keyframe_indices() const { return key_idx_; }
  const std::vector<std::int64_t>& generated_indices() const { return gen_idx_; }

  compress::VaeHyperprior& vae() { return vae_; }
  diffusion::SpaceTimeUNet& unet() { return unet_; }
  const diffusion::NoiseSchedule& schedule() const { return schedule_; }
  postprocess::ResidualPca& pca() { return pca_; }

  // window: normalized frames [N, H, W]. tau <= 0 disables correction.
  // `sample_steps` <= 0 uses config().sample_steps. When `recon_out` is
  // non-null it receives the decoder-identical reconstruction computed during
  // compression (with corrections applied when tau > 0), saving callers a
  // redundant Decompress pass.
  //
  // A non-null `ws` routes the diffusion sampler + VAE decode through the
  // workspace arena (zero steady-state heap allocations; see
  // tensor/workspace.h). Results are byte-identical to the allocating path
  // and always OWNED — arena memory never escapes these calls.
  CompressedWindow Compress(const Tensor& window, double tau,
                            std::int64_t sample_steps = 0,
                            Tensor* recon_out = nullptr,
                            tensor::Workspace* ws = nullptr);
  Tensor Decompress(const CompressedWindow& compressed,
                    std::int64_t sample_steps = 0,
                    tensor::Workspace* ws = nullptr);

  // Batched decompression: decodes B windows through ONE diffusion-sampler
  // run and ONE VAE decode, with the windows' frames stacked along dim 0 so
  // the UNet and decoder GEMMs are B× wider. Entropy decode, normalization
  // bounds, the sampling RNG, and PCA corrections remain strictly per window,
  // so each returned tensor is byte-identical to Decompress on that window
  // alone (tests/batched_decode_test.cc holds this). All windows must share
  // window_shape. `sample_steps` <= 0 uses config().sample_steps; with a null
  // `ws` a local arena is used. Results are always owned.
  std::vector<Tensor> DecompressBatch(
      const std::vector<const CompressedWindow*>& windows,
      std::int64_t sample_steps = 0, tensor::Workspace* ws = nullptr);

  // Reconstruction WITHOUT entropy coding (keyframe latents passed through
  // quantization only) — used for PCA fitting and ablations; identical
  // output to the coded path because coding is lossless.
  Tensor Reconstruct(const Tensor& window, std::uint32_t seed,
                     std::int64_t sample_steps = 0);

  void Save(ByteWriter* out);
  void Load(ByteReader* in);

 private:
  Tensor DecodeWindowFromLatents(const Tensor& y_keys,
                                 std::uint32_t sample_seed,
                                 std::int64_t sample_steps,
                                 const Shape& window_shape,
                                 tensor::Workspace* ws);

  GlscConfig config_;
  compress::VaeHyperprior vae_;
  diffusion::NoiseSchedule schedule_;
  diffusion::SpaceTimeUNet unet_;
  postprocess::ResidualPca pca_;
  std::vector<std::int64_t> key_idx_;
  std::vector<std::int64_t> gen_idx_;
};

}  // namespace glsc::core
