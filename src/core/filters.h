// Lossless filter pipeline for container v4 records.
//
// Every v4 record (and the norms block) declares a FILTER CHAIN and a
// LOSSLESS BACKEND in its header; the stored bytes are
//
//   stored = backend(chain(raw))
//
// where the chain is a byte-reversible transform that rearranges entropy for
// the backend (c-blosc2's split: filters expose structure, the codec removes
// it) and the backend is "glz", an in-tree LZ4-flavored byte LZ tuned for
// decode speed — write-once/read-many asymmetry: the encoder spends time
// choosing, the decoder is a memcpy-class inverse.
//
// Chains (applied left to right on encode, inverted right to left on decode):
//   none             stored bytes are the filtered input
//   delta            byte delta with lag = elem (src[i] - src[i-elem])
//   bitshuffle       bit-plane transpose at element size elem
//   delta+bitshuffle delta first, then bitshuffle
//
// Bitshuffle layout at element size E over n input bytes: the largest prefix
// of 8*E-divisible length is processed (nelem_p = (n/E) & ~7 elements); the
// remaining tail is copied verbatim. The processed prefix is split into E
// byte planes, each bit-transposed into 8 bit planes:
//
//   dst[(k*8 + b) * nelem_p/8 + j]  holds bit b of byte k of elements
//                                   8j..8j+8, one element per output bit.
//
// All bit movement goes through the runtime-dispatched SIMD kernel table
// (tensor/simd/kernels.h) whose filter entries are bit-exact at every level,
// so archives are byte-identical regardless of the ISA that wrote them.
//
// The glz stream format (little-endian, LZ4-flavored):
//
//   sequence := token u8 | [ext literal len] | literals
//             | offset u16 | [ext match len]
//   token    := literal_len<<4 | (match_len - 4), nibble value 15 meaning
//               "extended": add following bytes, each 255 continuing.
//
// Offsets are 1..65535 into the already-decoded output; minimum match is 4.
// A stream may end after a literal run or after a match. The decoder is
// fully bounds-checked and throws typed core::ArchiveError on any
// malformation — no overread, no OOM (output size is declared up front and
// validated by the caller against ValidateFilteredSizes).
#pragma once

#include <cstdint>
#include <vector>

namespace glsc::tensor {
class Workspace;
}  // namespace glsc::tensor

namespace glsc::core {

enum class FilterChain : std::uint8_t {
  kNone = 0,
  kDelta = 1,
  kBitshuffle = 2,
  kDeltaBitshuffle = 3,
};

enum class FilterBackend : std::uint8_t {
  kNone = 0,
  kGlz = 1,
};

// A record's declared filtering. On the wire this is two header bytes:
//   filter  := chain (bits 0-1) | log2(elem) (bits 4-6), other bits zero
//   backend := FilterBackend
struct FilterSpec {
  FilterChain chain = FilterChain::kNone;
  std::int64_t elem = 1;  // element size the chain operates on (1/2/4/8)
  FilterBackend backend = FilterBackend::kNone;

  bool IsRaw() const {
    return chain == FilterChain::kNone && backend == FilterBackend::kNone;
  }
  bool operator==(const FilterSpec&) const = default;

  std::uint8_t WireFilter() const;
  std::uint8_t WireBackend() const { return static_cast<std::uint8_t>(backend); }
  // Parses the two wire bytes; throws ArchiveError(kCorruptRecord) on any
  // reserved bit, out-of-range element size, or unknown backend (the "lying
  // filter id" fuzz case).
  static FilterSpec FromWire(std::uint8_t filter, std::uint8_t backend);
};

// Hostile-size gate shared by the archive reader and Deserialize: validates a
// record's declared (stored, raw) byte sizes against the spec BEFORE any
// allocation. backend none cannot change the size; glz expands at most
// ~255x (one max-extended match per 3-byte sequence), so a lying raw_size
// cannot force an allocation unbounded by the archive's actual size.
// Throws ArchiveError(kCorruptRecord) on violation.
void ValidateFilteredSizes(const FilterSpec& spec, std::uint64_t stored_size,
                           std::uint64_t raw_size);

// ---- glz backend ----
// Compresses n bytes (n <= 2^31). The output NEVER shrinks below what the
// stream format can express but MAY exceed n for incompressible input —
// callers fall back to raw storage when it does.
std::vector<std::uint8_t> GlzCompress(const std::uint8_t* src, std::size_t n);
// Decompresses exactly dst_n bytes into dst; throws
// ArchiveError(kCorruptRecord) when the stream is malformed, points outside
// the produced output, or does not decode to exactly dst_n bytes.
void GlzDecompress(const std::uint8_t* src, std::size_t src_n,
                   std::uint8_t* dst, std::size_t dst_n);

// ---- whole-record encode / decode ----

struct FilteredBlock {
  FilterSpec spec;
  std::vector<std::uint8_t> stored;
};

// Applies `spec` to raw bytes and returns the stored form (encode side; heap
// scratch, cold path).
std::vector<std::uint8_t> EncodeFiltered(const std::uint8_t* src,
                                         std::size_t n,
                                         const FilterSpec& spec);

// Trial-based selection: candidate chains (at element size elem_hint) are
// applied to a sampled prefix and glz-compressed; the spec that actually
// shrinks the sample the most wins, then the FULL buffer is encoded with it.
// Falls back to raw storage (spec.IsRaw(), stored == input) when nothing
// shrinks the sample or the full encode fails to shrink. Deterministic in the
// input bytes alone, so append-time encodes match one-shot serialization.
// elem_hint is the element size of the underlying data: 1 for opaque codec
// payloads, 4 for the f32 norms block.
FilteredBlock EncodeWithSelection(const std::uint8_t* src, std::size_t n,
                                  std::int64_t elem_hint);

// Inverts `spec`: stored bytes -> exactly raw_n raw bytes into dst. Callers
// must have passed the sizes through ValidateFilteredSizes first. Scratch
// comes from `ws` when non-null (steady-state zero-heap decode; the caller
// owns the enclosing Workspace::Scope) and falls back to heap vectors
// otherwise. Throws ArchiveError(kCorruptRecord) on malformed stored bytes.
void DecodeFiltered(const std::uint8_t* stored, std::size_t stored_n,
                    const FilterSpec& spec, std::uint8_t* dst,
                    std::size_t raw_n, tensor::Workspace* ws);

}  // namespace glsc::core
