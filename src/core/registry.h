// Model artifact registry: training on one CPU core is the expensive part of
// every benchmark, so trained models are cached on disk keyed by a config
// tag. Benches and examples call GetOrTrainGlsc / the baseline equivalents;
// set GLSC_RETRAIN=1 to ignore caches.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "baselines/cdc.h"
#include "baselines/gcd.h"
#include "baselines/vae_sr.h"
#include "compress/vae_trainer.h"
#include "core/glsc_compressor.h"
#include "data/dataset.h"
#include "diffusion/trainer.h"

namespace glsc::core {

struct TrainBudget {
  compress::VaeTrainConfig vae;
  diffusion::DiffusionTrainConfig diffusion;
  // Additional fine-tuning pass at `finetune_steps` (0 = skip), §4.6.
  std::int64_t finetune_steps = 0;
  std::int64_t finetune_iterations = 0;
  // Windows used to fit the PCA correction basis.
  std::int64_t pca_fit_windows = 6;
};

// Returns a trained GLSC compressor, loading from `<artifacts_dir>/<tag>.glsc`
// when present. Training runs both stages + PCA fit and saves the artifact.
std::unique_ptr<GlscCompressor> GetOrTrainGlsc(
    const data::SequenceDataset& dataset, const GlscConfig& config,
    const TrainBudget& budget, const std::string& artifacts_dir,
    const std::string& tag);

// Generic cached-train helper for the learned baselines: `make` constructs
// the model, `train` trains it; Save/Load round-trips through the cache.
template <typename Model>
std::unique_ptr<Model> GetOrTrain(
    const std::string& artifacts_dir, const std::string& tag,
    const std::function<std::unique_ptr<Model>()>& make,
    const std::function<void(Model*)>& train);

bool RetrainRequested();
std::string ArtifactPath(const std::string& artifacts_dir,
                         const std::string& tag);
// Creates `artifacts_dir` (and parents) when missing; throws if the path
// cannot be created or is not a directory, so a bad cache location fails
// loudly instead of silently dropping the trained artifact.
void EnsureArtifactsDir(const std::string& artifacts_dir);

// Fits the PCA basis from pipeline residuals on training windows.
void FitPcaFromResiduals(GlscCompressor* compressor,
                         const data::SequenceDataset& dataset,
                         std::int64_t fit_windows, std::int64_t crop);

// ---- template implementation ----
template <typename Model>
std::unique_ptr<Model> GetOrTrain(
    const std::string& artifacts_dir, const std::string& tag,
    const std::function<std::unique_ptr<Model>()>& make,
    const std::function<void(Model*)>& train) {
  auto model = make();
  const std::string path = ArtifactPath(artifacts_dir, tag);
  if (!RetrainRequested() && FileExists(path)) {
    std::vector<std::uint8_t> bytes;
    GLSC_CHECK(ReadFileBytes(path, &bytes));
    ByteReader in(bytes);
    model->Load(&in);
    return model;
  }
  train(model.get());
  EnsureArtifactsDir(artifacts_dir);
  ByteWriter out;
  model->Save(&out);
  WriteFileBytes(path, out.bytes());
  return model;
}

}  // namespace glsc::core
