// On-disk container format for compressed data.
//
// A `CompressedWindow` serializes to a self-describing record; a
// `DatasetArchive` packs the records for a whole [V, T, H, W] dataset —
// per-frame normalization parameters included — so decompression needs only
// the archive file plus the model artifact. Layout (little-endian):
//
//   archive  := magic "GLSC" u8 version | u64 V,T,H,W | u64 window
//               | V*T x (f32 mean, f32 range) | varint count | count records
//   record   := varint variable | varint t0
//               | varint |y| y-bytes | varint |z| z-bytes
//               | y-shape z-shape (varint rank + dims)
//               | u32 sample_seed
//               | varint n_corrections | per frame (varint len + bytes)
//
// The per-record header bytes here are exactly what
// CompressedWindow::HeaderBytes() charges to the compression ratio, so the
// reported CRs match what lands on disk.
#pragma once

#include <string>
#include <vector>

#include "core/glsc_compressor.h"
#include "data/dataset.h"

namespace glsc::core {

void SerializeWindow(const CompressedWindow& window, ByteWriter* out);
CompressedWindow DeserializeWindow(ByteReader* in);

struct ArchiveEntry {
  std::int64_t variable = 0;
  std::int64_t t0 = 0;
  CompressedWindow window;
};

class DatasetArchive {
 public:
  DatasetArchive() = default;
  DatasetArchive(Shape dataset_shape, std::int64_t window,
                 std::vector<data::FrameNorm> norms)
      : dataset_shape_(std::move(dataset_shape)),
        window_(window),
        norms_(std::move(norms)) {}

  void Add(std::int64_t variable, std::int64_t t0, CompressedWindow window);

  const Shape& dataset_shape() const { return dataset_shape_; }
  std::int64_t window() const { return window_; }
  const std::vector<ArchiveEntry>& entries() const { return entries_; }
  const data::FrameNorm& norm(std::int64_t variable, std::int64_t t) const;

  std::vector<std::uint8_t> Serialize() const;
  static DatasetArchive Deserialize(const std::vector<std::uint8_t>& bytes);

  void WriteFile(const std::string& path) const;
  static DatasetArchive ReadFile(const std::string& path);

  // Decompresses every record back into a full [V, T, H, W] tensor in
  // physical units (frames the archive does not cover stay zero).
  Tensor DecompressAll(GlscCompressor* compressor) const;

 private:
  Shape dataset_shape_;  // [V, T, H, W]
  std::int64_t window_ = 0;
  std::vector<data::FrameNorm> norms_;  // V*T entries
  std::vector<ArchiveEntry> entries_;
};

// Convenience: compresses every evaluation window of `dataset` at bound tau.
DatasetArchive CompressDataset(GlscCompressor* compressor,
                               const data::SequenceDataset& dataset,
                               double tau);

// Shared-memory parallel variant. GlscCompressor instances are NOT
// thread-safe (explicit-backward layers cache activations), so the caller
// provides one instance per worker — typically clones loaded from the same
// artifact — and windows are distributed over them via the global thread
// pool. Output is identical to the serial version (window order is fixed,
// sampling seeds are content-derived).
DatasetArchive CompressDatasetParallel(
    const std::vector<GlscCompressor*>& workers,
    const data::SequenceDataset& dataset, double tau);

}  // namespace glsc::core
