// On-disk container format for compressed data.
//
// Version 3 is the codec-agnostic archive of v2 plus a random-access footer
// index: every record carries an opaque per-codec payload produced through
// the api::Compressor interface, the header names the codec (registry key)
// that wrote it, and a trailing index locates every record's payload bytes so
// a reader can fetch one record without parsing the others. A
// `DatasetArchive` packs the records for a whole [V, T, H, W] dataset —
// per-frame normalization parameters included — so decompression needs only
// the archive file plus the model artifact. Layout (little-endian):
//
//   archive  := magic "GLSC" u8 version=3 | string codec
//               | u64 V,T,H,W | u64 window
//               | V*T x (f32 mean, f32 range) | varint count | count records
//               | index | footer
//   record   := varint variable | varint t0 | varint valid_frames
//               | varint |payload| payload-bytes
//   index    := varint count | count x (varint variable | varint t0
//               | varint valid_frames | varint offset | varint |payload|)
//   footer   := u64 index-offset | magic "GIDX"
//
// The index mirrors each record's metadata and stores the ABSOLUTE byte
// offset of its payload, so core::ArchiveReader (archive_reader.h) serves a
// record by reading the header from the front, the fixed 12-byte footer from
// the back, the index block the footer points at, and then only the payload
// bytes a query actually touches — the c-blosc2 super-chunk trick applied to
// codec-opaque diffusion records.
//
// `valid_frames` <= window: streams whose T is not a multiple of the window
// pad the final record up to the window length; only the first valid_frames
// decoded frames are real (see api/session.h).
//
// Version-2 archives (no index/footer) and version-1 archives (GLSC-only
// records, no codec id, no valid_frames) still load: v1 record bodies are
// bit-identical to the "glsc" codec payload, so deserialization lifts them
// into v3 entries in place, and ArchiveReader rebuilds the missing index by
// scanning the record area once.
//
// All length/count fields are validated against the remaining input before
// any allocation, so a truncated or hostile archive raises std::runtime_error
// instead of OOMing or crashing.
#pragma once

#include <string>
#include <vector>

#include "core/glsc_compressor.h"
#include "data/dataset.h"

namespace glsc::api {
class Compressor;
}  // namespace glsc::api

namespace glsc::core {

// The "glsc" codec payload body (also the v1 archive record body).
void SerializeWindow(const CompressedWindow& window, ByteWriter* out);
CompressedWindow DeserializeWindow(ByteReader* in);

struct ArchiveEntry {
  std::int64_t variable = 0;
  std::int64_t t0 = 0;
  std::int64_t valid_frames = 0;       // true (un-padded) frames in the record
  std::vector<std::uint8_t> payload;   // codec-specific bytes
};

class DatasetArchive {
 public:
  DatasetArchive() = default;
  DatasetArchive(std::string codec, Shape dataset_shape, std::int64_t window,
                 std::vector<data::FrameNorm> norms)
      : codec_(std::move(codec)),
        dataset_shape_(std::move(dataset_shape)),
        window_(window),
        norms_(std::move(norms)) {}

  void Add(std::int64_t variable, std::int64_t t0, std::int64_t valid_frames,
           std::vector<std::uint8_t> payload);

  // Registry name of the codec whose payloads the records hold.
  const std::string& codec() const { return codec_; }
  const Shape& dataset_shape() const { return dataset_shape_; }
  std::int64_t window() const { return window_; }
  const std::vector<ArchiveEntry>& entries() const { return entries_; }
  const data::FrameNorm& norm(std::int64_t variable, std::int64_t t) const;

  std::vector<std::uint8_t> Serialize() const;
  static DatasetArchive Deserialize(const std::vector<std::uint8_t>& bytes);

  void WriteFile(const std::string& path) const;
  static DatasetArchive ReadFile(const std::string& path);

  // Decompresses every record back into a full [V, T, H, W] tensor in
  // physical units (frames the archive does not cover stay zero). `codec`
  // must match codec() — typically Compressor::Create(archive.codec(), ...)
  // loaded with the right artifact.
  Tensor DecompressAll(api::Compressor* codec) const;
  // Legacy convenience for callers holding a bare GLSC pipeline.
  Tensor DecompressAll(GlscCompressor* compressor) const;

 private:
  std::string codec_ = "glsc";
  Shape dataset_shape_;  // [V, T, H, W]
  std::int64_t window_ = 0;
  std::vector<data::FrameNorm> norms_;  // V*T entries
  std::vector<ArchiveEntry> entries_;
};

// Convenience: compresses every window of `dataset` at per-frame L2 bound tau
// through the GLSC pipeline (streams the dataset through an EncodeSession, so
// trailing frames that do not fill a window are covered via padded records —
// v1 behavior dropped them).
DatasetArchive CompressDataset(GlscCompressor* compressor,
                               const data::SequenceDataset& dataset,
                               double tau);

// Shared-memory parallel variant. GlscCompressor instances are NOT
// thread-safe (explicit-backward layers cache activations), so the caller
// provides one instance per worker — typically clones loaded from the same
// artifact — and windows are distributed over them via the global thread
// pool. Output is byte-identical to the serial version.
DatasetArchive CompressDatasetParallel(
    const std::vector<GlscCompressor*>& workers,
    const data::SequenceDataset& dataset, double tau);

}  // namespace glsc::core
