// On-disk container format for compressed data.
//
// Version 4 adds a lossless filter pipeline and in-place appendability to the
// v3 random-access archive: every record (and the norms block) declares a
// filter chain + lossless backend (core/filters.h) applied over its opaque
// per-codec payload at serialize time and inverted transparently on read. A
// `DatasetArchive` packs the records for a whole [V, T, H, W] dataset —
// per-frame normalization parameters included — so decompression needs only
// the archive file plus the model artifact. Layout (little-endian):
//
//   archive  := magic "GLSC" u8 version=4 | string codec
//               | u64 V,T,H,W | u64 window
//               | records | norms-block | index | footer
//   record   := varint variable | varint t0 | varint valid_frames
//               | u8 filter | u8 backend | varint raw-size
//               | varint stored-size | stored-bytes
//   norms    := u8 filter | u8 backend | varint raw-size
//               | varint stored-size | stored-bytes     (raw = V*T x
//               (f32 mean, f32 range))
//   index    := varint count | count x (varint variable | varint t0
//               | varint valid_frames | u8 filter | u8 backend
//               | varint raw-size | varint offset | varint stored-size)
//   footer   := u64 norms-offset | u64 index-offset | magic "GIDX"
//
// The index mirrors each record's metadata and stores the ABSOLUTE byte
// offset of its stored payload, so core::ArchiveReader (archive_reader.h)
// serves a record by reading the header from the front, the fixed 20-byte
// footer from the back, the index block the footer points at, and then only
// the stored bytes a query actually touches — the c-blosc2 super-chunk trick
// applied to codec-opaque diffusion records.
//
// v4 design notes:
//  - The record area carries no leading count and the norms moved out of the
//    header into the rewritten tail, so AppendToFile can extend an archive by
//    overwriting from norms-offset with the new records + rebuilt
//    norms/index/footer — old record bytes are never rewritten (cf.
//    blosc2_schunk_append_file). The header's fixed-width u64 T is updated
//    in place.
//  - Filter selection is per record by trial on a sampled prefix (see
//    core/filters.h); incompressible payloads honestly store raw
//    (filter = backend = none), so decode cost is only paid where bytes were
//    actually saved.
//  - In-memory ArchiveEntry payloads are ALWAYS raw: filtering exists only
//    on the serialized boundary, and codecs never see stored bytes.
//
// `valid_frames` <= window: streams whose T is not a multiple of the window
// pad the final record up to the window length; only the first valid_frames
// decoded frames are real (see api/session.h).
//
// Version 1-3 archives still load unchanged: v3 (inline norms, raw records,
// 12-byte footer) deserializes on the legacy path, v2 lacks the index/footer,
// and v1 record bodies are bit-identical to the "glsc" codec payload, so
// deserialization lifts them into current entries in place. Serialize can
// still WRITE the v3 layout (ArchiveWriteOptions::version = 3) for
// compatibility tests and raw-vs-filtered benchmarks.
//
// All length/count/size fields are validated against the remaining input
// before any allocation, so a truncated or hostile archive raises a typed
// core::ArchiveError (via filters) or std::runtime_error instead of OOMing
// or crashing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/filters.h"
#include "core/glsc_compressor.h"
#include "data/dataset.h"

namespace glsc::api {
class Compressor;
}  // namespace glsc::api

namespace glsc::core {

// The "glsc" codec payload body (also the v1 archive record body).
void SerializeWindow(const CompressedWindow& window, ByteWriter* out);
CompressedWindow DeserializeWindow(ByteReader* in);

struct ArchiveEntry {
  std::int64_t variable = 0;
  std::int64_t t0 = 0;
  std::int64_t valid_frames = 0;       // true (un-padded) frames in the record
  std::vector<std::uint8_t> payload;   // codec-specific bytes (always RAW)
};

struct ArchiveWriteOptions {
  // 4 = filtered, appendable (default); 3 = the raw pre-filter layout, kept
  // for compatibility tests and raw-vs-filtered benchmarks.
  int version = 4;
  // Test/fuzz hook (v4 only): bypass trial selection and force this spec on
  // every record and the norms block.
  std::optional<FilterSpec> forced_filter;
};

class DatasetArchive {
 public:
  DatasetArchive() = default;
  DatasetArchive(std::string codec, Shape dataset_shape, std::int64_t window,
                 std::vector<data::FrameNorm> norms)
      : codec_(std::move(codec)),
        dataset_shape_(std::move(dataset_shape)),
        window_(window),
        norms_(std::move(norms)) {}

  void Add(std::int64_t variable, std::int64_t t0, std::int64_t valid_frames,
           std::vector<std::uint8_t> payload);

  // Registry name of the codec whose payloads the records hold.
  const std::string& codec() const { return codec_; }
  const Shape& dataset_shape() const { return dataset_shape_; }
  std::int64_t window() const { return window_; }
  const std::vector<ArchiveEntry>& entries() const { return entries_; }
  const data::FrameNorm& norm(std::int64_t variable, std::int64_t t) const;

  std::vector<std::uint8_t> Serialize(
      const ArchiveWriteOptions& options = {}) const;
  static DatasetArchive Deserialize(const std::vector<std::uint8_t>& bytes);

  void WriteFile(const std::string& path) const;
  static DatasetArchive ReadFile(const std::string& path);

  // Extends the v4 archive at `path` with `more`'s records WITHOUT rewriting
  // the existing record bytes: overwrites from the old norms-offset with
  // more's (filtered) records, the merged norms block, the rebuilt index and
  // a fresh footer, then patches the header's u64 T in place. more's t0s are
  // shifted by the existing archive's frame count, so `more` is authored as
  // its own [V, T_more, H, W] archive. codec, V, H, W and window must match.
  // The result is byte-identical to one-shot serialization of the combined
  // record set (filter selection is deterministic in the payload bytes).
  // Creates the file when it does not exist. v1-v3 archives are rejected —
  // their layout cannot grow in place; rewrite them through Serialize.
  // Not crash-atomic: a failure mid-append leaves the tail unreadable (the
  // footer is written last), like any in-place container mutation.
  static void AppendToFile(const std::string& path, const DatasetArchive& more,
                           const ArchiveWriteOptions& options = {});

  // Decompresses every record back into a full [V, T, H, W] tensor in
  // physical units (frames the archive does not cover stay zero). `codec`
  // must match codec() — typically Compressor::Create(archive.codec(), ...)
  // loaded with the right artifact.
  Tensor DecompressAll(api::Compressor* codec) const;
  // Legacy convenience for callers holding a bare GLSC pipeline.
  Tensor DecompressAll(GlscCompressor* compressor) const;

 private:
  std::string codec_ = "glsc";
  Shape dataset_shape_;  // [V, T, H, W]
  std::int64_t window_ = 0;
  std::vector<data::FrameNorm> norms_;  // V*T entries
  std::vector<ArchiveEntry> entries_;
};

// Convenience: compresses every window of `dataset` at per-frame L2 bound tau
// through the GLSC pipeline (streams the dataset through an EncodeSession, so
// trailing frames that do not fill a window are covered via padded records —
// v1 behavior dropped them).
DatasetArchive CompressDataset(GlscCompressor* compressor,
                               const data::SequenceDataset& dataset,
                               double tau);

// Shared-memory parallel variant. GlscCompressor instances are NOT
// thread-safe (explicit-backward layers cache activations), so the caller
// provides one instance per worker — typically clones loaded from the same
// artifact — and windows are distributed over them via the global thread
// pool. Output is byte-identical to the serial version.
DatasetArchive CompressDatasetParallel(
    const std::vector<GlscCompressor*>& workers,
    const data::SequenceDataset& dataset, double tau);

}  // namespace glsc::core
