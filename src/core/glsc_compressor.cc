#include "core/glsc_compressor.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace glsc::core {

std::size_t CompressedWindow::LatentBytes() const {
  return keyframes.TotalBytes();
}

std::size_t CompressedWindow::CorrectionBytes() const {
  std::size_t n = 0;
  for (const auto& c : corrections) n += c.size();
  return n;
}

std::size_t CompressedWindow::HeaderBytes() const {
  const std::size_t frames =
      window_shape.empty() ? 0 : static_cast<std::size_t>(window_shape[0]);
  // seed (4) + window dims (3 x 4) + per-frame (mean, range) float32 pair.
  return 4 + 12 + frames * 2 * sizeof(float);
}

GlscCompressor::GlscCompressor(const GlscConfig& config)
    : config_(config),
      vae_(config.vae),
      schedule_(config.schedule_kind, config.schedule_steps),
      unet_(config.unet),
      pca_(config.pca) {
  GLSC_CHECK_MSG(config_.unet.EffectiveIn() == config_.vae.latent_channels,
                 "UNet latent width must match the VAE latent width");
  key_idx_ = diffusion::SelectKeyframes(config_.strategy, config_.window,
                                        config_.interval, config_.key_count);
  gen_idx_ = diffusion::GeneratedIndices(key_idx_, config_.window);
}

Tensor GlscCompressor::DecodeWindowFromLatents(const Tensor& y_keys,
                                               std::uint32_t sample_seed,
                                               std::int64_t sample_steps,
                                               const Shape& window_shape,
                                               tensor::Workspace* ws) {
  if (sample_steps <= 0) sample_steps = config_.sample_steps;
  // Both sides derive the min-max bounds from the keyframe latents (§3.3
  // normalization; see conditioner.h for why this stores nothing).
  const diffusion::LatentNorm norm = diffusion::LatentNorm::FromTensor(y_keys);

  Rng sample_rng(sample_seed);
  diffusion::SamplerConfig sampler_cfg;
  sampler_cfg.steps = sample_steps;

  if (ws != nullptr) {
    // Arena path: every intermediate below borrows from `ws` and rewinds when
    // this scope closes; only the owned reconstruction escapes. Byte-identical
    // to the allocating path (tests/workspace_test.cc holds this invariant).
    tensor::Workspace::Scope scope(ws);
    const Tensor keys_normed = norm.Normalize(y_keys, ws);
    const Tensor gen_normed = diffusion::SampleConditional(
        &unet_, schedule_, sampler_cfg, keys_normed, key_idx_, config_.window,
        sample_rng, ws);
    Tensor gen_latents = norm.Denormalize(gen_normed, ws);
    RoundInPlace(&gen_latents);
    const Tensor full_latents =
        diffusion::Compose(gen_latents, y_keys, gen_idx_, key_idx_, ws);
    const Tensor decoded = vae_.DecodeLatent(full_latents, ws);
    // Lift out of the arena before the scope rewinds.
    return decoded.Reshape({window_shape[0], window_shape[1], window_shape[2]})
        .Clone();
  }

  const Tensor keys_normed = norm.Normalize(y_keys);
  const Tensor gen_normed = diffusion::SampleConditional(
      &unet_, schedule_, sampler_cfg, keys_normed, key_idx_, config_.window,
      sample_rng);

  // Generated latents return to integer latent space (the VAE decoder was
  // trained on quantized latents).
  const Tensor gen_latents = Round(norm.Denormalize(gen_normed));
  const Tensor full_latents =
      diffusion::Compose(gen_latents, y_keys, gen_idx_, key_idx_);

  const Tensor decoded = vae_.DecodeLatent(full_latents);  // [N, 1, h*4, w*4]
  return decoded.Reshape(
      {window_shape[0], window_shape[1], window_shape[2]});
}

CompressedWindow GlscCompressor::Compress(const Tensor& window, double tau,
                                          std::int64_t sample_steps,
                                          Tensor* recon_out,
                                          tensor::Workspace* ws) {
  GLSC_CHECK(window.rank() == 3);
  GLSC_CHECK_MSG(window.dim(0) == config_.window,
                 "window has " << window.dim(0) << " frames, config expects "
                               << config_.window);
  CompressedWindow out;
  out.window_shape = window.shape();
  // Deterministic per-content seed: decompression must reproduce the exact
  // same sampling trajectory that the corrections were computed against.
  out.sample_seed = static_cast<std::uint32_t>(
      0x9E3779B9u * static_cast<std::uint32_t>(window.numel()) ^ 0xA5A5A5A5u);

  // 1. Keyframes through the VAE + hyperprior (the stored latents).
  const Tensor keys = diffusion::GatherFrames(window, key_idx_);
  const Tensor keys_batch =
      keys.Reshape({keys.dim(0), 1, keys.dim(1), keys.dim(2)});
  out.keyframes = vae_.Compress(keys_batch);

  // 2. Decoder-identical reconstruction.
  const Tensor y_keys = vae_.DecompressLatents(out.keyframes, ws);
  Tensor recon = DecodeWindowFromLatents(y_keys, out.sample_seed, sample_steps,
                                         out.window_shape, ws);

  // 3. Error-bound corrections per frame.
  if (tau > 0.0) {
    GLSC_CHECK_MSG(pca_.fitted(), "PCA basis not fitted; call Fit first");
    out.corrections.resize(static_cast<std::size_t>(window.dim(0)));
    const std::int64_t hw = window.dim(1) * window.dim(2);
    for (std::int64_t f = 0; f < window.dim(0); ++f) {
      Tensor orig({window.dim(1), window.dim(2)});
      Tensor rec({window.dim(1), window.dim(2)});
      std::copy_n(window.data() + f * hw, hw, orig.data());
      std::copy_n(recon.data() + f * hw, hw, rec.data());
      const auto correction = pca_.Correct(orig, &rec, tau);
      out.corrections[static_cast<std::size_t>(f)] = correction.payload;
      std::copy_n(rec.data(), hw, recon.data() + f * hw);
    }
  }
  if (recon_out != nullptr) *recon_out = recon;
  return out;
}

Tensor GlscCompressor::Decompress(const CompressedWindow& compressed,
                                  std::int64_t sample_steps,
                                  tensor::Workspace* ws) {
  const Tensor y_keys = vae_.DecompressLatents(compressed.keyframes, ws);
  Tensor recon =
      DecodeWindowFromLatents(y_keys, compressed.sample_seed, sample_steps,
                              compressed.window_shape, ws);
  if (!compressed.corrections.empty()) {
    const std::int64_t hw =
        compressed.window_shape[1] * compressed.window_shape[2];
    for (std::int64_t f = 0; f < compressed.window_shape[0]; ++f) {
      const auto& payload = compressed.corrections[static_cast<std::size_t>(f)];
      if (payload.empty()) continue;
      Tensor frame({compressed.window_shape[1], compressed.window_shape[2]});
      std::copy_n(recon.data() + f * hw, hw, frame.data());
      pca_.Apply(payload, &frame);
      std::copy_n(frame.data(), hw, recon.data() + f * hw);
    }
  }
  return recon;
}

std::vector<Tensor> GlscCompressor::DecompressBatch(
    const std::vector<const CompressedWindow*>& windows,
    std::int64_t sample_steps, tensor::Workspace* ws) {
  std::vector<Tensor> out;
  if (windows.empty()) return out;
  if (sample_steps <= 0) sample_steps = config_.sample_steps;
  const std::int64_t batch = static_cast<std::int64_t>(windows.size());

  tensor::Workspace local_ws;
  if (ws == nullptr) ws = &local_ws;

  // One UNet pass covers every window, so the batch must agree on geometry.
  const Shape& wshape = windows[0]->window_shape;
  for (const CompressedWindow* cw : windows) {
    GLSC_CHECK(cw != nullptr);
    GLSC_CHECK_MSG(cw->window_shape == wshape,
                   "batched decode needs uniform window geometry");
  }

  // Entropy + hyper decode and normalization bounds stay per window: the
  // bounds are derived from each window's own keyframe latents, exactly as
  // the serial decoder does (owned tensors, they outlive the scope below).
  std::vector<Tensor> y_keys;
  std::vector<diffusion::LatentNorm> norms;
  y_keys.reserve(static_cast<std::size_t>(batch));
  norms.reserve(static_cast<std::size_t>(batch));
  for (const CompressedWindow* cw : windows) {
    y_keys.push_back(vae_.DecompressLatents(cw->keyframes, ws));
    norms.push_back(diffusion::LatentNorm::FromTensor(y_keys.back()));
  }

  out.reserve(static_cast<std::size_t>(batch));
  {
    tensor::Workspace::Scope scope(ws);

    // Stack raw and normalized keyframe latents: [B*K, C, h, w].
    const std::int64_t key_elems = y_keys[0].numel();
    Shape stacked_shape = y_keys[0].shape();
    stacked_shape[0] *= batch;
    Tensor keys_stacked = ws->NewTensor(stacked_shape);
    Tensor keys_normed = ws->NewTensor(stacked_shape);
    for (std::int64_t w = 0; w < batch; ++w) {
      const Tensor& yk = y_keys[static_cast<std::size_t>(w)];
      GLSC_CHECK(yk.numel() == key_elems);
      std::copy_n(yk.data(), key_elems, keys_stacked.data() + w * key_elems);
      // Same formula as LatentNorm::Normalize, written into the slab.
      const diffusion::LatentNorm& nm = norms[static_cast<std::size_t>(w)];
      const float scale = 2.0f / (nm.hi - nm.lo);
      const float* src = yk.data();
      float* dst = keys_normed.data() + w * key_elems;
      for (std::int64_t i = 0; i < key_elems; ++i) {
        dst[i] = (src[i] - nm.lo) * scale - 1.0f;
      }
    }

    // Per-window generators, seeded exactly as the serial decoder seeds its
    // sampling RNG.
    std::vector<Rng> rng_storage;
    rng_storage.reserve(static_cast<std::size_t>(batch));
    for (const CompressedWindow* cw : windows) {
      rng_storage.emplace_back(cw->sample_seed);
    }
    std::vector<Rng*> rngs;
    rngs.reserve(static_cast<std::size_t>(batch));
    for (Rng& r : rng_storage) rngs.push_back(&r);

    diffusion::SamplerConfig sampler_cfg;
    sampler_cfg.steps = sample_steps;
    const Tensor gen_normed = diffusion::SampleConditionalBatch(
        &unet_, schedule_, sampler_cfg, keys_normed, key_idx_, config_.window,
        rngs, ws);  // [B*G, C, h, w]

    // Per-window denormalization (each window has its own bounds), then the
    // shared integer rounding.
    Tensor gen_latents = ws->NewTensor(gen_normed.shape());
    const std::int64_t gen_elems = gen_normed.numel() / batch;
    for (std::int64_t w = 0; w < batch; ++w) {
      const diffusion::LatentNorm& nm = norms[static_cast<std::size_t>(w)];
      const float scale = (nm.hi - nm.lo) / 2.0f;
      const float* src = gen_normed.data() + w * gen_elems;
      float* dst = gen_latents.data() + w * gen_elems;
      for (std::int64_t i = 0; i < gen_elems; ++i) {
        dst[i] = (src[i] + 1.0f) * scale + nm.lo;
      }
    }
    RoundInPlace(&gen_latents);

    const Tensor full_latents = diffusion::ComposeBatch(
        gen_latents, keys_stacked, gen_idx_, key_idx_, batch, ws);
    const Tensor decoded =
        vae_.DecodeLatentBatched(full_latents, ws);  // [B*N, 1, H, W]

    // Lift each window out of the arena; PCA corrections stay per frame.
    const std::int64_t frames = wshape[0];
    for (std::int64_t w = 0; w < batch; ++w) {
      Tensor recon = decoded.Slice0(w * frames, (w + 1) * frames)
                         .Reshape({wshape[0], wshape[1], wshape[2]})
                         .Clone();
      const CompressedWindow& cw = *windows[static_cast<std::size_t>(w)];
      if (!cw.corrections.empty()) {
        const std::int64_t hw = wshape[1] * wshape[2];
        for (std::int64_t f = 0; f < frames; ++f) {
          const auto& payload = cw.corrections[static_cast<std::size_t>(f)];
          if (payload.empty()) continue;
          Tensor frame({wshape[1], wshape[2]});
          std::copy_n(recon.data() + f * hw, hw, frame.data());
          pca_.Apply(payload, &frame);
          std::copy_n(frame.data(), hw, recon.data() + f * hw);
        }
      }
      out.push_back(std::move(recon));
    }
  }
  return out;
}

Tensor GlscCompressor::Reconstruct(const Tensor& window, std::uint32_t seed,
                                   std::int64_t sample_steps) {
  const Tensor keys = diffusion::GatherFrames(window, key_idx_);
  const Tensor keys_batch =
      keys.Reshape({keys.dim(0), 1, keys.dim(1), keys.dim(2)});
  const Tensor y_keys = Round(vae_.EncodeLatent(keys_batch));
  return DecodeWindowFromLatents(y_keys, seed, sample_steps, window.shape(),
                                 /*ws=*/nullptr);
}

void GlscCompressor::Save(ByteWriter* out) {
  vae_.Save(out);
  unet_.Save(out);
  out->PutU8(pca_.fitted() ? 1 : 0);
  if (pca_.fitted()) pca_.Save(out);
}

void GlscCompressor::Load(ByteReader* in) {
  vae_.Load(in);
  unet_.Load(in);
  if (in->GetU8() != 0) pca_.Load(in);
}

}  // namespace glsc::core
