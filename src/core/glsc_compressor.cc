#include "core/glsc_compressor.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace glsc::core {

std::size_t CompressedWindow::LatentBytes() const {
  return keyframes.TotalBytes();
}

std::size_t CompressedWindow::CorrectionBytes() const {
  std::size_t n = 0;
  for (const auto& c : corrections) n += c.size();
  return n;
}

std::size_t CompressedWindow::HeaderBytes() const {
  const std::size_t frames =
      window_shape.empty() ? 0 : static_cast<std::size_t>(window_shape[0]);
  // seed (4) + window dims (3 x 4) + per-frame (mean, range) float32 pair.
  return 4 + 12 + frames * 2 * sizeof(float);
}

GlscCompressor::GlscCompressor(const GlscConfig& config)
    : config_(config),
      vae_(config.vae),
      schedule_(config.schedule_kind, config.schedule_steps),
      unet_(config.unet),
      pca_(config.pca) {
  GLSC_CHECK_MSG(config_.unet.EffectiveIn() == config_.vae.latent_channels,
                 "UNet latent width must match the VAE latent width");
  key_idx_ = diffusion::SelectKeyframes(config_.strategy, config_.window,
                                        config_.interval, config_.key_count);
  gen_idx_ = diffusion::GeneratedIndices(key_idx_, config_.window);
}

Tensor GlscCompressor::DecodeWindowFromLatents(const Tensor& y_keys,
                                               std::uint32_t sample_seed,
                                               std::int64_t sample_steps,
                                               const Shape& window_shape,
                                               tensor::Workspace* ws) {
  if (sample_steps <= 0) sample_steps = config_.sample_steps;
  // Both sides derive the min-max bounds from the keyframe latents (§3.3
  // normalization; see conditioner.h for why this stores nothing).
  const diffusion::LatentNorm norm = diffusion::LatentNorm::FromTensor(y_keys);

  Rng sample_rng(sample_seed);
  diffusion::SamplerConfig sampler_cfg;
  sampler_cfg.steps = sample_steps;

  if (ws != nullptr) {
    // Arena path: every intermediate below borrows from `ws` and rewinds when
    // this scope closes; only the owned reconstruction escapes. Byte-identical
    // to the allocating path (tests/workspace_test.cc holds this invariant).
    tensor::Workspace::Scope scope(ws);
    const Tensor keys_normed = norm.Normalize(y_keys, ws);
    const Tensor gen_normed = diffusion::SampleConditional(
        &unet_, schedule_, sampler_cfg, keys_normed, key_idx_, config_.window,
        sample_rng, ws);
    Tensor gen_latents = norm.Denormalize(gen_normed, ws);
    RoundInPlace(&gen_latents);
    const Tensor full_latents =
        diffusion::Compose(gen_latents, y_keys, gen_idx_, key_idx_, ws);
    const Tensor decoded = vae_.DecodeLatent(full_latents, ws);
    // Lift out of the arena before the scope rewinds.
    return decoded.Reshape({window_shape[0], window_shape[1], window_shape[2]})
        .Clone();
  }

  const Tensor keys_normed = norm.Normalize(y_keys);
  const Tensor gen_normed = diffusion::SampleConditional(
      &unet_, schedule_, sampler_cfg, keys_normed, key_idx_, config_.window,
      sample_rng);

  // Generated latents return to integer latent space (the VAE decoder was
  // trained on quantized latents).
  const Tensor gen_latents = Round(norm.Denormalize(gen_normed));
  const Tensor full_latents =
      diffusion::Compose(gen_latents, y_keys, gen_idx_, key_idx_);

  const Tensor decoded = vae_.DecodeLatent(full_latents);  // [N, 1, h*4, w*4]
  return decoded.Reshape(
      {window_shape[0], window_shape[1], window_shape[2]});
}

CompressedWindow GlscCompressor::Compress(const Tensor& window, double tau,
                                          std::int64_t sample_steps,
                                          Tensor* recon_out,
                                          tensor::Workspace* ws) {
  GLSC_CHECK(window.rank() == 3);
  GLSC_CHECK_MSG(window.dim(0) == config_.window,
                 "window has " << window.dim(0) << " frames, config expects "
                               << config_.window);
  CompressedWindow out;
  out.window_shape = window.shape();
  // Deterministic per-content seed: decompression must reproduce the exact
  // same sampling trajectory that the corrections were computed against.
  out.sample_seed = static_cast<std::uint32_t>(
      0x9E3779B9u * static_cast<std::uint32_t>(window.numel()) ^ 0xA5A5A5A5u);

  // 1. Keyframes through the VAE + hyperprior (the stored latents).
  const Tensor keys = diffusion::GatherFrames(window, key_idx_);
  const Tensor keys_batch =
      keys.Reshape({keys.dim(0), 1, keys.dim(1), keys.dim(2)});
  out.keyframes = vae_.Compress(keys_batch);

  // 2. Decoder-identical reconstruction.
  const Tensor y_keys = vae_.DecompressLatents(out.keyframes, ws);
  Tensor recon = DecodeWindowFromLatents(y_keys, out.sample_seed, sample_steps,
                                         out.window_shape, ws);

  // 3. Error-bound corrections per frame.
  if (tau > 0.0) {
    GLSC_CHECK_MSG(pca_.fitted(), "PCA basis not fitted; call Fit first");
    out.corrections.resize(static_cast<std::size_t>(window.dim(0)));
    const std::int64_t hw = window.dim(1) * window.dim(2);
    for (std::int64_t f = 0; f < window.dim(0); ++f) {
      Tensor orig({window.dim(1), window.dim(2)});
      Tensor rec({window.dim(1), window.dim(2)});
      std::copy_n(window.data() + f * hw, hw, orig.data());
      std::copy_n(recon.data() + f * hw, hw, rec.data());
      const auto correction = pca_.Correct(orig, &rec, tau);
      out.corrections[static_cast<std::size_t>(f)] = correction.payload;
      std::copy_n(rec.data(), hw, recon.data() + f * hw);
    }
  }
  if (recon_out != nullptr) *recon_out = recon;
  return out;
}

Tensor GlscCompressor::Decompress(const CompressedWindow& compressed,
                                  std::int64_t sample_steps,
                                  tensor::Workspace* ws) {
  const Tensor y_keys = vae_.DecompressLatents(compressed.keyframes, ws);
  Tensor recon =
      DecodeWindowFromLatents(y_keys, compressed.sample_seed, sample_steps,
                              compressed.window_shape, ws);
  if (!compressed.corrections.empty()) {
    const std::int64_t hw =
        compressed.window_shape[1] * compressed.window_shape[2];
    for (std::int64_t f = 0; f < compressed.window_shape[0]; ++f) {
      const auto& payload = compressed.corrections[static_cast<std::size_t>(f)];
      if (payload.empty()) continue;
      Tensor frame({compressed.window_shape[1], compressed.window_shape[2]});
      std::copy_n(recon.data() + f * hw, hw, frame.data());
      pca_.Apply(payload, &frame);
      std::copy_n(frame.data(), hw, recon.data() + f * hw);
    }
  }
  return recon;
}

Tensor GlscCompressor::Reconstruct(const Tensor& window, std::uint32_t seed,
                                   std::int64_t sample_steps) {
  const Tensor keys = diffusion::GatherFrames(window, key_idx_);
  const Tensor keys_batch =
      keys.Reshape({keys.dim(0), 1, keys.dim(1), keys.dim(2)});
  const Tensor y_keys = Round(vae_.EncodeLatent(keys_batch));
  return DecodeWindowFromLatents(y_keys, seed, sample_steps, window.shape(),
                                 /*ws=*/nullptr);
}

void GlscCompressor::Save(ByteWriter* out) {
  vae_.Save(out);
  unet_.Save(out);
  out->PutU8(pca_.fitted() ? 1 : 0);
  if (pca_.fitted()) pca_.Save(out);
}

void GlscCompressor::Load(ByteReader* in) {
  vae_.Load(in);
  unet_.Load(in);
  if (in->GetU8() != 0) pca_.Load(in);
}

}  // namespace glsc::core
