#include "core/archive_reader.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "tensor/workspace.h"
#include "util/check.h"
#include "util/mutex.h"

// Typed variant of GLSC_CHECK_MSG for archive validation: a failed condition
// means hostile or damaged bytes, so it throws core::ArchiveError with the
// given fault instead of a bare runtime_error — the serving layers classify
// the failure (kDataLoss vs retryable kIo) from the type.
#define GLSC_ARCHIVE_CHECK(cond, fault, msg)                            \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream glsc_os_;                                      \
      glsc_os_ << msg;                                                  \
      throw ::glsc::core::ArchiveError((fault), glsc_os_.str());        \
    }                                                                   \
  } while (0)

namespace glsc::core {

// Positioned reads over the archive bytes. ReadAt validates the range against
// the stream size, so a hostile index cannot point a read out of bounds.
class ArchiveReader::Source {
 public:
  virtual ~Source() = default;
  virtual std::uint64_t size() const = 0;
  virtual void ReadAt(std::uint64_t offset, std::uint64_t length,
                      std::uint8_t* dst) = 0;

  std::vector<std::uint8_t> Read(std::uint64_t offset, std::uint64_t length) {
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(length));
    ReadAt(offset, length, buf.data());
    return buf;
  }

 protected:
  void CheckRange(std::uint64_t offset, std::uint64_t length) const {
    GLSC_ARCHIVE_CHECK(offset <= size() && length <= size() - offset,
                       ArchiveFault::kTruncated,
                       "archive read [" << offset << ", +" << length
                                        << ") out of range of " << size()
                                        << " bytes");
  }
};

namespace {

constexpr char kArchiveMagic[4] = {'G', 'L', 'S', 'C'};
constexpr char kIndexMagic[4] = {'G', 'I', 'D', 'X'};
constexpr std::uint64_t kFooterBytes = 12;    // u64 index-offset + "GIDX"
constexpr std::uint64_t kFooterBytesV4 = 20;  // u64 norms/index offs + "GIDX"

class MemorySource final : public ArchiveReader::Source {
 public:
  explicit MemorySource(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}
  std::uint64_t size() const override { return bytes_.size(); }
  void ReadAt(std::uint64_t offset, std::uint64_t length,
              std::uint8_t* dst) override {
    CheckRange(offset, length);
    // Zero-length reads of an empty backing hand memcpy null pointers, which
    // is UB even for n = 0 (fuzzer-found via UBSan).
    if (length == 0) return;
    std::memcpy(dst, bytes_.data() + offset, static_cast<std::size_t>(length));
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

#if defined(__unix__) || defined(__APPLE__)

// Read-only mapping of the whole archive: payload fetches become plain
// memcpys out of the page cache, with no syscall and no shared stream state —
// concurrent decode workers never contend. c-blosc2's mmap frame trick.
class MmapSource final : public ArchiveReader::Source {
 public:
  explicit MmapSource(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    GLSC_ARCHIVE_CHECK(fd >= 0, ArchiveFault::kIo,
                       "cannot open archive " << path);
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      GLSC_ARCHIVE_CHECK(false, ArchiveFault::kIo, "cannot stat " << path);
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
    if (size_ > 0) {
      void* map = ::mmap(nullptr, static_cast<std::size_t>(size_), PROT_READ,
                         MAP_PRIVATE, fd, 0);
      if (map == MAP_FAILED) {
        ::close(fd);
        GLSC_ARCHIVE_CHECK(false, ArchiveFault::kIo, "cannot mmap " << path);
      }
      data_ = static_cast<const std::uint8_t*>(map);
    }
    // The mapping keeps the bytes alive on its own.
    ::close(fd);
  }
  ~MmapSource() override {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data_),
               static_cast<std::size_t>(size_));
    }
  }
  std::uint64_t size() const override { return size_; }
  void ReadAt(std::uint64_t offset, std::uint64_t length,
              std::uint8_t* dst) override {
    CheckRange(offset, length);
    if (length == 0) return;
    std::memcpy(dst, data_ + offset, static_cast<std::size_t>(length));
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::uint64_t size_ = 0;
};

// Positioned pread per fetch: no mapping, no seek position to share, so reads
// are lock-free too. The fallback when mmap is unavailable (some filesystems,
// exotic mounts) and the pick for one-pass streaming reads that should not
// pollute the address space.
class PreadSource final : public ArchiveReader::Source {
 public:
  explicit PreadSource(const std::string& path)
      : fd_(::open(path.c_str(), O_RDONLY | O_CLOEXEC)) {
    GLSC_ARCHIVE_CHECK(fd_ >= 0, ArchiveFault::kIo,
                       "cannot open archive " << path);
    struct stat st = {};
    GLSC_ARCHIVE_CHECK(::fstat(fd_, &st) == 0, ArchiveFault::kIo,
                       "cannot stat " << path);
    size_ = static_cast<std::uint64_t>(st.st_size);
  }
  ~PreadSource() override {
    if (fd_ >= 0) ::close(fd_);
  }
  std::uint64_t size() const override { return size_; }
  void ReadAt(std::uint64_t offset, std::uint64_t length,
              std::uint8_t* dst) override {
    CheckRange(offset, length);
    std::uint64_t done = 0;
    while (done < length) {
      const ::ssize_t n =
          ::pread(fd_, dst + done, static_cast<std::size_t>(length - done),
                  static_cast<::off_t>(offset + done));
      if (n < 0 && errno == EINTR) continue;
      GLSC_ARCHIVE_CHECK(n > 0, ArchiveFault::kIo, "short read from archive");
      done += static_cast<std::uint64_t>(n);
    }
  }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

std::unique_ptr<ArchiveReader::Source> OpenFileSource(const std::string& path,
                                                      FileBacking backing) {
  if (backing == FileBacking::kPread) {
    return std::make_unique<PreadSource>(path);
  }
  if (backing == FileBacking::kMmap) {
    return std::make_unique<MmapSource>(path);
  }
  try {
    return std::make_unique<MmapSource>(path);
  } catch (const ArchiveError&) {
    return std::make_unique<PreadSource>(path);
  }
}

#else  // no POSIX mmap/pread: shared-stream fallback

class FileSource final : public ArchiveReader::Source {
 public:
  explicit FileSource(const std::string& path)
      : stream_(path, std::ios::binary) {
    GLSC_ARCHIVE_CHECK(stream_.good(), ArchiveFault::kIo,
                       "cannot open archive " << path);
    stream_.seekg(0, std::ios::end);
    size_ = static_cast<std::uint64_t>(stream_.tellg());
  }
  std::uint64_t size() const override { return size_; }
  void ReadAt(std::uint64_t offset, std::uint64_t length,
              std::uint8_t* dst) override {
    CheckRange(offset, length);
    // One shared stream: serialize seek+read so concurrent decode workers can
    // fetch payloads without interleaving positions.
    MutexLock lock(mu_);
    stream_.clear();
    stream_.seekg(static_cast<std::streamoff>(offset));
    stream_.read(reinterpret_cast<char*>(dst),
                 static_cast<std::streamsize>(length));
    GLSC_ARCHIVE_CHECK(static_cast<std::uint64_t>(stream_.gcount()) == length,
                       ArchiveFault::kIo, "short read from archive");
  }

 private:
  Mutex mu_{"ArchiveReader.FileSource.mu"};
  // The shared seek position makes the stream the contended state; size_ is
  // written once in the constructor and read-only afterwards.
  std::ifstream stream_ GUARDED_BY(mu_);
  std::uint64_t size_ = 0;
};

std::unique_ptr<ArchiveReader::Source> OpenFileSource(const std::string& path,
                                                      FileBacking backing) {
  GLSC_ARCHIVE_CHECK(backing != FileBacking::kMmap, ArchiveFault::kIo,
                     "mmap backing unavailable on this platform");
  return std::make_unique<FileSource>(path);
}

#endif

}  // namespace

ArchiveReader::ArchiveReader()
    : fetched_(std::make_unique<std::atomic<std::uint64_t>>(0)),
      decoded_(std::make_unique<std::atomic<std::uint64_t>>(0)) {}

ArchiveReader::~ArchiveReader() = default;
ArchiveReader::ArchiveReader(ArchiveReader&&) noexcept = default;
ArchiveReader& ArchiveReader::operator=(ArchiveReader&&) noexcept = default;

ArchiveReader ArchiveReader::FromFile(const std::string& path,
                                      FileBacking backing) {
  ArchiveReader reader;
  reader.source_ = OpenFileSource(path, backing);
  reader.ParseSource();
  return reader;
}

ArchiveReader ArchiveReader::FromBytes(std::vector<std::uint8_t> bytes) {
  ArchiveReader reader;
  reader.source_ = std::make_unique<MemorySource>(std::move(bytes));
  reader.ParseSource();
  return reader;
}

ArchiveReader ArchiveReader::FromArchive(const DatasetArchive& archive) {
  ArchiveReader reader;
  reader.archive_ = &archive;
  reader.codec_ = archive.codec();
  reader.shape_ = archive.dataset_shape();
  reader.window_ = archive.window();
  reader.records_.reserve(archive.entries().size());
  for (std::size_t i = 0; i < archive.entries().size(); ++i) {
    const ArchiveEntry& entry = archive.entries()[i];
    // offset doubles as the entry index; length is still the payload size.
    reader.records_.push_back({entry.variable, entry.t0, entry.valid_frames,
                               static_cast<std::uint64_t>(i),
                               entry.payload.size(), FilterSpec{},
                               entry.payload.size()});
  }
  reader.BuildVariableIndex();
  return reader;
}

void ArchiveReader::ParseSource() {
  // ByteReader underruns below throw untyped runtime_errors; re-brand them as
  // truncation so every hostile-archive failure leaving this function is a
  // typed ArchiveError the serving layers can classify.
  try {
    ParseSourceImpl();
  } catch (const ArchiveError&) {
    throw;
  } catch (const std::exception& e) {
    throw ArchiveError(ArchiveFault::kTruncated, e.what());
  }
}

void ArchiveReader::ParseSourceImpl() {
  const std::uint64_t size = source_->size();

  // Fixed-layout header prefix: magic, version, codec id (name <= 64 bytes),
  // four u64 dims, u64 window. 128 bytes always covers it.
  const std::vector<std::uint8_t> prefix =
      source_->Read(0, std::min<std::uint64_t>(size, 128));
  ByteReader in(prefix);
  char magic[4];
  in.GetBytes(magic, 4);
  GLSC_ARCHIVE_CHECK(std::equal(magic, magic + 4, kArchiveMagic),
                     ArchiveFault::kNotAnArchive, "not a GLSC archive");
  const std::uint8_t version = in.GetU8();
  GLSC_ARCHIVE_CHECK(version >= 1 && version <= 4,
                     ArchiveFault::kNotAnArchive,
                     "unsupported archive version "
                         << static_cast<int>(version));
  version_ = version;
  if (version >= 2) {
    const std::uint64_t codec_len = in.GetVarU64();
    GLSC_ARCHIVE_CHECK(codec_len <= 64, ArchiveFault::kCorruptRecord,
                       "corrupt archive: codec name length");
    codec_.resize(static_cast<std::size_t>(codec_len));
    in.GetBytes(codec_.data(), codec_len);
  }
  shape_.resize(4);
  for (auto& d : shape_) {
    const std::uint64_t raw = in.GetU64();
    // Same per-dimension cap as DatasetArchive::Deserialize: keeps V*T and
    // V*T*H*W products overflow-free below.
    GLSC_ARCHIVE_CHECK(raw <= (1ull << 31), ArchiveFault::kCorruptRecord,
                       "corrupt archive: dataset dimension " << raw);
    d = static_cast<std::int64_t>(raw);
  }
  window_ = static_cast<std::int64_t>(in.GetU64());
  GLSC_ARCHIVE_CHECK(window_ > 0, ArchiveFault::kCorruptRecord,
                     "corrupt archive: non-positive window");
  const std::uint64_t norm_count = static_cast<std::uint64_t>(shape_[0]) *
                                   static_cast<std::uint64_t>(shape_[1]);

  if (version == 4) {
    ParseV4Tail(in.pos(), norm_count);
    BuildVariableIndex();
    return;
  }

  const std::uint64_t norms_offset = in.pos();
  GLSC_ARCHIVE_CHECK(
      norm_count <= (size - norms_offset) / (2 * sizeof(float)),
      ArchiveFault::kTruncated,
      "corrupt archive: " << norm_count << " frame norms in "
                          << size - norms_offset << " remaining bytes");
  const std::vector<std::uint8_t> norm_bytes =
      source_->Read(norms_offset, norm_count * 2 * sizeof(float));
  ByteReader norms_in(norm_bytes);
  norms_.resize(static_cast<std::size_t>(norm_count));
  for (auto& n : norms_) {
    n.mean = norms_in.GetF32();
    n.range = norms_in.GetF32();
  }
  const std::uint64_t records_start =
      norms_offset + norm_count * 2 * sizeof(float);

  if (version == 3) {
    // Random access: footer -> index block -> done. The record area is never
    // read here; payloads are fetched lazily by ReadPayload.
    GLSC_ARCHIVE_CHECK(size >= records_start + kFooterBytes,
                       ArchiveFault::kTruncated,
                       "truncated archive: missing footer");
    const std::vector<std::uint8_t> footer =
        source_->Read(size - kFooterBytes, kFooterBytes);
    ByteReader footer_in(footer);
    const std::uint64_t index_offset = footer_in.GetU64();
    char index_magic[4];
    footer_in.GetBytes(index_magic, 4);
    GLSC_ARCHIVE_CHECK(std::equal(index_magic, index_magic + 4, kIndexMagic),
                       ArchiveFault::kCorruptIndex,
                       "truncated archive: bad index magic");
    GLSC_ARCHIVE_CHECK(
        index_offset >= records_start && index_offset <= size - kFooterBytes,
        ArchiveFault::kCorruptIndex,
        "corrupt archive: index offset " << index_offset);

    const std::vector<std::uint8_t> index_bytes =
        source_->Read(index_offset, size - kFooterBytes - index_offset);
    ByteReader index_in(index_bytes);
    const std::uint64_t count = index_in.GetVarU64();
    // Every index entry costs at least 5 varint bytes, so a hostile count
    // can claim at most remaining/5 entries — checked before the reserve.
    GLSC_ARCHIVE_CHECK(count <= index_in.remaining() / 5,
                       ArchiveFault::kCorruptIndex,
                       "corrupt archive index: " << count << " entries in "
                                                 << index_in.remaining()
                                                 << " bytes");
    records_.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      RecordRef ref;
      ref.variable = static_cast<std::int64_t>(index_in.GetVarU64());
      ref.t0 = static_cast<std::int64_t>(index_in.GetVarU64());
      ref.valid_frames = static_cast<std::int64_t>(index_in.GetVarU64());
      ref.offset = index_in.GetVarU64();
      ref.length = index_in.GetVarU64();
      ref.raw_size = ref.length;  // v3 records are stored raw
      GLSC_ARCHIVE_CHECK(
          ref.variable >= 0 && ref.variable < shape_[0] && ref.t0 >= 0 &&
              ref.t0 < shape_[1],
          ArchiveFault::kCorruptIndex,
          "corrupt archive index: record outside dataset bounds");
      GLSC_ARCHIVE_CHECK(ref.valid_frames > 0 && ref.valid_frames <= window_,
                         ArchiveFault::kCorruptIndex,
                         "corrupt archive index: valid_frames "
                             << ref.valid_frames);
      GLSC_ARCHIVE_CHECK(ref.offset >= records_start &&
                             ref.length <= index_offset - records_start &&
                             ref.offset <= index_offset - ref.length,
                         ArchiveFault::kCorruptIndex,
                         "corrupt archive index: payload span ["
                             << ref.offset << ", +" << ref.length << ")");
      records_.push_back(ref);
    }
    GLSC_ARCHIVE_CHECK(index_in.AtEnd(), ArchiveFault::kCorruptIndex,
                       "corrupt archive index: trailing bytes");
  } else {
    // v1/v2: no index on disk — scan the record area once to build one.
    const std::vector<std::uint8_t> tail =
        source_->Read(records_start, size - records_start);
    ByteReader tail_in(tail);
    const std::uint64_t count = tail_in.GetVarU64();
    GLSC_ARCHIVE_CHECK(count <= tail_in.remaining(),
                       ArchiveFault::kCorruptRecord,
                       "corrupt archive: " << count << " records in "
                                           << tail_in.remaining()
                                           << " remaining bytes");
    records_.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      RecordRef ref;
      ref.variable = static_cast<std::int64_t>(tail_in.GetVarU64());
      ref.t0 = static_cast<std::int64_t>(tail_in.GetVarU64());
      if (version == 2) {
        ref.valid_frames = static_cast<std::int64_t>(tail_in.GetVarU64());
        ref.length = tail_in.GetVarU64();
        GLSC_ARCHIVE_CHECK(ref.length <= tail_in.remaining(),
                           ArchiveFault::kCorruptRecord,
                           "corrupt record: payload length " << ref.length);
        ref.offset = records_start + tail_in.pos();
        tail_in.Skip(static_cast<std::size_t>(ref.length));
      } else {
        // v1: the record body IS the "glsc" payload, bit for bit. Parse it to
        // find its extent (and the true frame count from the window shape).
        const std::uint64_t body_start = tail_in.pos();
        const CompressedWindow window = DeserializeWindow(&tail_in);
        ref.valid_frames =
            window.window_shape.empty() ? window_ : window.window_shape[0];
        ref.offset = records_start + body_start;
        ref.length = tail_in.pos() - body_start;
      }
      ref.raw_size = ref.length;  // v1/v2 records are stored raw
      GLSC_ARCHIVE_CHECK(ref.variable >= 0 && ref.variable < shape_[0] &&
                             ref.t0 >= 0 && ref.t0 < shape_[1],
                         ArchiveFault::kCorruptRecord,
                         "corrupt archive: record outside dataset bounds");
      GLSC_ARCHIVE_CHECK(ref.valid_frames > 0 && ref.valid_frames <= window_,
                         ArchiveFault::kCorruptRecord,
                         "corrupt archive: record valid_frames "
                             << ref.valid_frames);
      records_.push_back(ref);
    }
  }
  BuildVariableIndex();
}

void ArchiveReader::ParseV4Tail(std::uint64_t header_end,
                                std::uint64_t norm_count) {
  const std::uint64_t size = source_->size();
  GLSC_ARCHIVE_CHECK(size >= header_end + kFooterBytesV4,
                     ArchiveFault::kTruncated,
                     "truncated archive: missing v4 footer");
  const std::vector<std::uint8_t> footer =
      source_->Read(size - kFooterBytesV4, kFooterBytesV4);
  ByteReader footer_in(footer);
  const std::uint64_t norms_offset = footer_in.GetU64();
  const std::uint64_t index_offset = footer_in.GetU64();
  char index_magic[4];
  footer_in.GetBytes(index_magic, 4);
  GLSC_ARCHIVE_CHECK(std::equal(index_magic, index_magic + 4, kIndexMagic),
                     ArchiveFault::kCorruptIndex,
                     "truncated archive: bad index magic");
  GLSC_ARCHIVE_CHECK(header_end <= norms_offset &&
                         norms_offset <= index_offset &&
                         index_offset <= size - kFooterBytesV4,
                     ArchiveFault::kCorruptIndex,
                     "corrupt archive: v4 footer offsets out of order");

  // Filtered norms block.
  const std::vector<std::uint8_t> norms_block =
      source_->Read(norms_offset, index_offset - norms_offset);
  ByteReader nb(norms_block);
  const std::uint8_t norms_filter_byte = nb.GetU8();
  const std::uint8_t norms_backend_byte = nb.GetU8();
  const FilterSpec norms_spec =
      FilterSpec::FromWire(norms_filter_byte, norms_backend_byte);
  const std::uint64_t norms_raw_size = nb.GetVarU64();
  const std::uint64_t norms_stored_size = nb.GetVarU64();
  GLSC_ARCHIVE_CHECK(norms_stored_size == nb.remaining(),
                     ArchiveFault::kCorruptIndex,
                     "corrupt archive: norms block stored size "
                         << norms_stored_size << " for " << nb.remaining()
                         << " bytes");
  GLSC_ARCHIVE_CHECK(norms_raw_size == norm_count * 2 * sizeof(float),
                     ArchiveFault::kCorruptIndex,
                     "corrupt archive: norms block raw size "
                         << norms_raw_size << " for " << norm_count
                         << " norms");
  ValidateFilteredSizes(norms_spec, norms_stored_size, norms_raw_size);
  std::vector<std::uint8_t> norms_raw(
      static_cast<std::size_t>(norms_raw_size));
  DecodeFiltered(norms_block.data() + nb.pos(), norms_stored_size, norms_spec,
                 norms_raw.data(), norms_raw.size(), nullptr);
  ByteReader norms_in(norms_raw);
  norms_.resize(static_cast<std::size_t>(norm_count));
  for (auto& n : norms_) {
    n.mean = norms_in.GetF32();
    n.range = norms_in.GetF32();
  }

  // Index over the (never read here) record area [header_end, norms_offset).
  const std::vector<std::uint8_t> index_bytes =
      source_->Read(index_offset, size - kFooterBytesV4 - index_offset);
  ByteReader index_in(index_bytes);
  const std::uint64_t count = index_in.GetVarU64();
  // Every v4 index entry costs at least 8 bytes (six varints + two u8s).
  GLSC_ARCHIVE_CHECK(count <= index_in.remaining() / 8,
                     ArchiveFault::kCorruptIndex,
                     "corrupt archive index: " << count << " entries in "
                                               << index_in.remaining()
                                               << " bytes");
  records_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    RecordRef ref;
    ref.variable = static_cast<std::int64_t>(index_in.GetVarU64());
    ref.t0 = static_cast<std::int64_t>(index_in.GetVarU64());
    ref.valid_frames = static_cast<std::int64_t>(index_in.GetVarU64());
    const std::uint8_t filter_byte = index_in.GetU8();
    const std::uint8_t backend_byte = index_in.GetU8();
    ref.filter = FilterSpec::FromWire(filter_byte, backend_byte);
    ref.raw_size = index_in.GetVarU64();
    ref.offset = index_in.GetVarU64();
    ref.length = index_in.GetVarU64();
    GLSC_ARCHIVE_CHECK(ref.variable >= 0 && ref.variable < shape_[0] &&
                           ref.t0 >= 0 && ref.t0 < shape_[1],
                       ArchiveFault::kCorruptIndex,
                       "corrupt archive index: record outside dataset bounds");
    GLSC_ARCHIVE_CHECK(ref.valid_frames > 0 && ref.valid_frames <= window_,
                       ArchiveFault::kCorruptIndex,
                       "corrupt archive index: valid_frames "
                           << ref.valid_frames);
    ValidateFilteredSizes(ref.filter, ref.length, ref.raw_size);
    GLSC_ARCHIVE_CHECK(ref.offset >= header_end &&
                           ref.length <= norms_offset - header_end &&
                           ref.offset <= norms_offset - ref.length,
                       ArchiveFault::kCorruptIndex,
                       "corrupt archive index: payload span ["
                           << ref.offset << ", +" << ref.length << ")");
    records_.push_back(ref);
  }
  GLSC_ARCHIVE_CHECK(index_in.AtEnd(), ArchiveFault::kCorruptIndex,
                     "corrupt archive index: trailing bytes");
}

void ArchiveReader::BuildVariableIndex() {
  by_variable_.assign(static_cast<std::size_t>(shape_[0]), {});
  for (std::size_t i = 0; i < records_.size(); ++i) {
    by_variable_[static_cast<std::size_t>(records_[i].variable)].push_back(i);
  }
  for (auto& indices : by_variable_) {
    std::stable_sort(indices.begin(), indices.end(),
                     [this](std::size_t a, std::size_t b) {
                       return records_[a].t0 < records_[b].t0;
                     });
  }
}

const data::FrameNorm& ArchiveReader::norm(std::int64_t variable,
                                           std::int64_t t) const {
  if (archive_ != nullptr) return archive_->norm(variable, t);
  GLSC_CHECK(variable >= 0 && variable < shape_[0] && t >= 0 && t < shape_[1]);
  return norms_[static_cast<std::size_t>(variable * shape_[1] + t)];
}

std::vector<std::uint8_t> ArchiveReader::ReadPayload(
    std::size_t record, tensor::Workspace* ws) const {
  std::vector<std::uint8_t> payload;
  ReadPayloadInto(record, &payload, ws);
  return payload;
}

void ArchiveReader::ReadPayloadInto(std::size_t record,
                                    std::vector<std::uint8_t>* out,
                                    tensor::Workspace* ws) const {
  GLSC_CHECK_MSG(record < records_.size(), "record index out of range");
  const RecordRef& ref = records_[record];
  if (archive_ != nullptr) {
    *out = archive_->entries()[static_cast<std::size_t>(ref.offset)].payload;
    return;
  }
  fetched_->fetch_add(ref.length, std::memory_order_relaxed);
  if (ref.filter.IsRaw()) {
    // v1-v3 and honestly-raw v4 records: the stored bytes ARE the payload.
    out->resize(static_cast<std::size_t>(ref.length));
    source_->ReadAt(ref.offset, ref.length, out->data());
    decoded_->fetch_add(ref.length, std::memory_order_relaxed);
    return;
  }
  // Filtered record: fetch the stored bytes into workspace scratch (heap when
  // no workspace is wired through) and invert the declared chain. The sizes
  // were validated against the spec at parse time.
  out->resize(static_cast<std::size_t>(ref.raw_size));
  if (ws != nullptr) {
    tensor::Workspace::Scope scope(ws);
    auto* stored = reinterpret_cast<std::uint8_t*>(
        ws->Allocate(static_cast<std::int64_t>((ref.length + 3) / 4)));
    source_->ReadAt(ref.offset, ref.length, stored);
    DecodeFiltered(stored, static_cast<std::size_t>(ref.length), ref.filter,
                   out->data(), out->size(), ws);
  } else {
    const std::vector<std::uint8_t> stored =
        source_->Read(ref.offset, ref.length);
    DecodeFiltered(stored.data(), stored.size(), ref.filter, out->data(),
                   out->size(), nullptr);
  }
  decoded_->fetch_add(ref.raw_size, std::memory_order_relaxed);
}

const std::vector<std::uint8_t>* ArchiveReader::PayloadView(
    std::size_t record) const {
  GLSC_CHECK_MSG(record < records_.size(), "record index out of range");
  if (archive_ == nullptr) return nullptr;
  const std::size_t entry = static_cast<std::size_t>(records_[record].offset);
  return &archive_->entries()[entry].payload;
}

std::vector<std::size_t> ArchiveReader::RecordsFor(std::int64_t variable,
                                                   std::int64_t t_begin,
                                                   std::int64_t t_end) const {
  GLSC_CHECK_MSG(variable >= 0 && variable < shape_[0],
                 "variable " << variable << " outside [0, " << shape_[0]
                             << ")");
  GLSC_CHECK_MSG(t_begin >= 0 && t_begin < t_end && t_end <= shape_[1],
                 "frame range [" << t_begin << ", " << t_end
                                 << ") outside [0, " << shape_[1] << ")");
  std::vector<std::size_t> out;
  for (const std::size_t i :
       by_variable_[static_cast<std::size_t>(variable)]) {
    const RecordRef& ref = records_[i];
    if (ref.t0 >= t_end) break;  // sorted by t0; nothing later can overlap
    if (ref.t0 + ref.valid_frames > t_begin) out.push_back(i);
  }
  return out;
}

std::uint64_t ArchiveReader::payload_bytes_fetched() const {
  return fetched_->load(std::memory_order_relaxed);
}

std::uint64_t ArchiveReader::decoded_payload_bytes() const {
  return decoded_->load(std::memory_order_relaxed);
}

std::uint64_t ArchiveReader::archive_bytes() const {
  return source_ ? source_->size() : 0;
}

}  // namespace glsc::core
