#include "core/container.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "api/adapters.h"
#include "api/session.h"
#include "util/check.h"

namespace glsc::core {
namespace {

constexpr char kMagic[4] = {'G', 'L', 'S', 'C'};
constexpr char kIndexMagic[4] = {'G', 'I', 'D', 'X'};
constexpr std::uint8_t kVersion = 4;          // filtered records, appendable
constexpr std::uint8_t kVersionIndexed = 3;   // v2 + random-access footer index
constexpr std::uint8_t kVersionNoIndex = 2;   // codec-agnostic, no index
constexpr std::uint8_t kLegacyVersion = 1;    // GLSC-only records
constexpr std::uint64_t kFooterV4 = 20;  // u64 norms-off | u64 index-off | magic

void PutShape(const Shape& shape, ByteWriter* out) { PutDims(shape, out); }
Shape GetShape(ByteReader* in) { return GetDimsChecked(in); }

// Reads a varint byte count that must fit in what is left of the stream —
// the guard that keeps truncated/hostile archives from OOMing via a huge
// resize before the actual read fails.
std::uint64_t GetCheckedLength(ByteReader* in, const char* what) {
  const std::uint64_t n = in->GetVarU64();
  GLSC_CHECK_MSG(n <= in->remaining(), "corrupt record: " << what << " length "
                                                          << n << " exceeds "
                                                          << in->remaining()
                                                          << " remaining bytes");
  return n;
}

// ---- v4 write path --------------------------------------------------------

std::vector<std::uint8_t> NormsRawBytes(
    const std::vector<data::FrameNorm>& norms) {
  ByteWriter w;
  for (const auto& n : norms) {
    w.PutF32(n.mean);
    w.PutF32(n.range);
  }
  return w.Release();
}

FilteredBlock EncodeBlock(const std::uint8_t* data, std::size_t n,
                          std::int64_t elem_hint,
                          const std::optional<FilterSpec>& forced) {
  if (forced.has_value()) {
    return {*forced, EncodeFiltered(data, n, *forced)};
  }
  return EncodeWithSelection(data, n, elem_hint);
}

// One record's index-entry view: the metadata mirrored between the record
// header and the footer index, plus the ABSOLUTE offset of its stored bytes.
struct V4Record {
  std::int64_t variable = 0;
  std::int64_t t0 = 0;
  std::int64_t valid_frames = 0;
  FilterSpec spec;
  std::uint64_t raw_size = 0;
  std::uint64_t offset = 0;
  std::uint64_t stored_size = 0;
};

// Filters one entry's payload and appends its on-disk record form. `base` is
// the absolute file offset at which `out`'s bytes will land (0 for one-shot
// serialization, the old norms-offset for AppendToFile); `t0_shift` relocates
// appended records onto the combined time axis.
V4Record PutV4Record(ByteWriter* out, std::uint64_t base,
                     const ArchiveEntry& entry,
                     const std::optional<FilterSpec>& forced,
                     std::int64_t t0_shift) {
  const FilteredBlock block =
      EncodeBlock(entry.payload.data(), entry.payload.size(), 1, forced);
  V4Record r;
  r.variable = entry.variable;
  r.t0 = entry.t0 + t0_shift;
  r.valid_frames = entry.valid_frames;
  r.spec = block.spec;
  r.raw_size = entry.payload.size();
  r.stored_size = block.stored.size();
  out->PutVarU64(static_cast<std::uint64_t>(r.variable));
  out->PutVarU64(static_cast<std::uint64_t>(r.t0));
  out->PutVarU64(static_cast<std::uint64_t>(r.valid_frames));
  out->PutU8(r.spec.WireFilter());
  out->PutU8(r.spec.WireBackend());
  out->PutVarU64(r.raw_size);
  out->PutVarU64(r.stored_size);
  r.offset = base + out->size();
  out->PutBytes(block.stored.data(), block.stored.size());
  return r;
}

// Writes the v4 tail shared by Serialize and AppendToFile: the filtered norms
// block, the index over `records`, and the fixed 20-byte footer.
void PutV4Tail(ByteWriter* out, std::uint64_t base,
               const std::vector<V4Record>& records,
               const std::vector<data::FrameNorm>& norms,
               const std::optional<FilterSpec>& forced) {
  const std::uint64_t norms_offset = base + out->size();
  const std::vector<std::uint8_t> norms_raw = NormsRawBytes(norms);
  const FilteredBlock norms_block = EncodeBlock(
      norms_raw.data(), norms_raw.size(), sizeof(float), forced);
  out->PutU8(norms_block.spec.WireFilter());
  out->PutU8(norms_block.spec.WireBackend());
  out->PutVarU64(norms_raw.size());
  out->PutVarU64(norms_block.stored.size());
  out->PutBytes(norms_block.stored.data(), norms_block.stored.size());

  const std::uint64_t index_offset = base + out->size();
  out->PutVarU64(records.size());
  for (const auto& r : records) {
    out->PutVarU64(static_cast<std::uint64_t>(r.variable));
    out->PutVarU64(static_cast<std::uint64_t>(r.t0));
    out->PutVarU64(static_cast<std::uint64_t>(r.valid_frames));
    out->PutU8(r.spec.WireFilter());
    out->PutU8(r.spec.WireBackend());
    out->PutVarU64(r.raw_size);
    out->PutVarU64(r.offset);
    out->PutVarU64(r.stored_size);
  }
  out->PutU64(norms_offset);
  out->PutU64(index_offset);
  out->PutBytes(kIndexMagic, sizeof kIndexMagic);
}

}  // namespace

void SerializeWindow(const CompressedWindow& window, ByteWriter* out) {
  out->PutVarU64(window.keyframes.y_stream.size());
  out->PutBytes(window.keyframes.y_stream.data(),
                window.keyframes.y_stream.size());
  out->PutVarU64(window.keyframes.z_stream.size());
  out->PutBytes(window.keyframes.z_stream.data(),
                window.keyframes.z_stream.size());
  PutShape(window.keyframes.y_shape, out);
  PutShape(window.keyframes.z_shape, out);
  PutShape(window.window_shape, out);
  out->PutU32(window.sample_seed);
  out->PutVarU64(window.corrections.size());
  for (const auto& c : window.corrections) {
    out->PutVarU64(c.size());
    out->PutBytes(c.data(), c.size());
  }
}

CompressedWindow DeserializeWindow(ByteReader* in) {
  CompressedWindow window;
  window.keyframes.y_stream.resize(GetCheckedLength(in, "y-stream"));
  in->GetBytes(window.keyframes.y_stream.data(),
               window.keyframes.y_stream.size());
  window.keyframes.z_stream.resize(GetCheckedLength(in, "z-stream"));
  in->GetBytes(window.keyframes.z_stream.data(),
               window.keyframes.z_stream.size());
  window.keyframes.y_shape = GetShape(in);
  window.keyframes.z_shape = GetShape(in);
  window.window_shape = GetShape(in);
  window.sample_seed = in->GetU32();
  // Every correction costs at least its own length varint, so the count can
  // never legitimately exceed the remaining byte count.
  const std::uint64_t corrections = in->GetVarU64();
  GLSC_CHECK_MSG(corrections <= in->remaining(),
                 "corrupt record: " << corrections << " corrections in "
                                    << in->remaining() << " remaining bytes");
  window.corrections.resize(corrections);
  for (auto& c : window.corrections) {
    c.resize(GetCheckedLength(in, "correction"));
    in->GetBytes(c.data(), c.size());
  }
  return window;
}

void DatasetArchive::Add(std::int64_t variable, std::int64_t t0,
                         std::int64_t valid_frames,
                         std::vector<std::uint8_t> payload) {
  GLSC_CHECK(variable >= 0 && t0 >= 0);
  GLSC_CHECK_MSG(valid_frames > 0 && valid_frames <= window_,
                 "valid_frames " << valid_frames << " outside (0, " << window_
                                 << "]");
  entries_.push_back({variable, t0, valid_frames, std::move(payload)});
}

const data::FrameNorm& DatasetArchive::norm(std::int64_t variable,
                                            std::int64_t t) const {
  const std::int64_t frames = dataset_shape_[1];
  GLSC_CHECK(variable >= 0 && variable < dataset_shape_[0] && t >= 0 &&
             t < frames);
  return norms_[static_cast<std::size_t>(variable * frames + t)];
}

std::vector<std::uint8_t> DatasetArchive::Serialize(
    const ArchiveWriteOptions& options) const {
  GLSC_CHECK_MSG(options.version == 3 || options.version == 4,
                 "unsupported archive write version " << options.version);
  ByteWriter out;
  out.PutBytes(kMagic, sizeof kMagic);
  out.PutU8(options.version == 3 ? kVersionIndexed : kVersion);
  out.PutString(codec_);
  GLSC_CHECK(dataset_shape_.size() == 4);
  for (const auto d : dataset_shape_) {
    out.PutU64(static_cast<std::uint64_t>(d));
  }
  out.PutU64(static_cast<std::uint64_t>(window_));
  GLSC_CHECK(static_cast<std::int64_t>(norms_.size()) ==
             dataset_shape_[0] * dataset_shape_[1]);

  if (options.version == 4) {
    std::vector<V4Record> records;
    records.reserve(entries_.size());
    for (const auto& entry : entries_) {
      records.push_back(
          PutV4Record(&out, 0, entry, options.forced_filter, 0));
    }
    PutV4Tail(&out, 0, records, norms_, options.forced_filter);
    return out.Release();
  }

  GLSC_CHECK_MSG(!options.forced_filter.has_value(),
                 "forced_filter requires the v4 layout");
  for (const auto& n : norms_) {
    out.PutF32(n.mean);
    out.PutF32(n.range);
  }
  out.PutVarU64(entries_.size());
  std::vector<std::uint64_t> payload_offsets(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& entry = entries_[i];
    out.PutVarU64(static_cast<std::uint64_t>(entry.variable));
    out.PutVarU64(static_cast<std::uint64_t>(entry.t0));
    out.PutVarU64(static_cast<std::uint64_t>(entry.valid_frames));
    out.PutVarU64(entry.payload.size());
    payload_offsets[i] = out.size();  // absolute offset of the payload bytes
    out.PutBytes(entry.payload.data(), entry.payload.size());
  }

  // Footer index: each record's metadata plus the absolute byte span of its
  // payload, then a fixed-size trailer pointing at the index block.
  const std::uint64_t index_offset = out.size();
  out.PutVarU64(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out.PutVarU64(static_cast<std::uint64_t>(entries_[i].variable));
    out.PutVarU64(static_cast<std::uint64_t>(entries_[i].t0));
    out.PutVarU64(static_cast<std::uint64_t>(entries_[i].valid_frames));
    out.PutVarU64(payload_offsets[i]);
    out.PutVarU64(entries_[i].payload.size());
  }
  out.PutU64(index_offset);
  out.PutBytes(kIndexMagic, sizeof kIndexMagic);
  return out.Release();
}

DatasetArchive DatasetArchive::Deserialize(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader in(bytes);
  char magic[4];
  in.GetBytes(magic, 4);
  GLSC_CHECK_MSG(std::equal(magic, magic + 4, kMagic), "not a GLSC archive");
  const std::uint8_t version = in.GetU8();
  GLSC_CHECK_MSG(version == kVersion || version == kVersionIndexed ||
                     version == kVersionNoIndex || version == kLegacyVersion,
                 "unsupported archive version " << static_cast<int>(version));

  DatasetArchive archive;
  if (version >= kVersionNoIndex) {
    const std::uint64_t codec_len = GetCheckedLength(&in, "codec name");
    GLSC_CHECK_MSG(codec_len <= 64, "corrupt archive: codec name length");
    archive.codec_.resize(codec_len);
    in.GetBytes(archive.codec_.data(), codec_len);
  } else {
    archive.codec_ = "glsc";
  }

  archive.dataset_shape_.resize(4);
  for (auto& d : archive.dataset_shape_) {
    const std::uint64_t raw = in.GetU64();
    // Per-dimension cap keeps every product below (V*T norms, V*T*H*W decode
    // allocation) overflow-free, so the byte-count guards cannot be wrapped
    // around by giant dimensions.
    GLSC_CHECK_MSG(raw <= (1ull << 31),
                   "corrupt archive: dataset dimension " << raw);
    d = static_cast<std::int64_t>(raw);
  }
  archive.window_ = static_cast<std::int64_t>(in.GetU64());
  GLSC_CHECK_MSG(archive.window_ > 0, "corrupt archive: non-positive window");

  // Dims are <= 2^31, so V*T cannot wrap; the decode-time [V, T, H, W]
  // element count must stay representable so DecompressAll's allocation
  // cannot overflow signed arithmetic.
  const std::uint64_t norm_count =
      static_cast<std::uint64_t>(archive.dataset_shape_[0]) *
      static_cast<std::uint64_t>(archive.dataset_shape_[1]);
  const std::uint64_t frame_elems =
      static_cast<std::uint64_t>(archive.dataset_shape_[2]) *
      static_cast<std::uint64_t>(archive.dataset_shape_[3]);
  GLSC_CHECK_MSG(frame_elems == 0 || norm_count <= (1ull << 62) / frame_elems,
                 "corrupt archive: dataset element count overflows");

  if (version == kVersion) {
    // v4: records | norms | index | footer. The index drives the parse and
    // the record area is cross-checked against it entry for entry, so a
    // tampered index (or tampered record headers) throws here rather than
    // silently desynchronizing random-access readers from Deserialize.
    const std::uint64_t size = bytes.size();
    const std::uint64_t header_end = in.pos();
    GLSC_CHECK_MSG(size >= header_end + kFooterV4,
                   "corrupt archive: truncated before v4 footer");
    ByteReader footer(bytes.data() + size - kFooterV4, kFooterV4);
    const std::uint64_t norms_offset = footer.GetU64();
    const std::uint64_t index_offset = footer.GetU64();
    char index_magic[4];
    footer.GetBytes(index_magic, 4);
    GLSC_CHECK_MSG(std::equal(index_magic, index_magic + 4, kIndexMagic),
                   "corrupt archive: bad index magic");
    GLSC_CHECK_MSG(header_end <= norms_offset && norms_offset <= index_offset &&
                       index_offset <= size - kFooterV4,
                   "corrupt archive: v4 footer offsets out of order");

    ByteReader nb(bytes.data() + norms_offset, index_offset - norms_offset);
    const std::uint8_t norms_filter_byte = nb.GetU8();
  const std::uint8_t norms_backend_byte = nb.GetU8();
  const FilterSpec norms_spec =
      FilterSpec::FromWire(norms_filter_byte, norms_backend_byte);
    const std::uint64_t norms_raw_size = nb.GetVarU64();
    const std::uint64_t norms_stored_size = GetCheckedLength(&nb, "norms block");
    GLSC_CHECK_MSG(norms_raw_size == norm_count * 2 * sizeof(float),
                   "corrupt archive: norms block raw size " << norms_raw_size
                                                            << " for "
                                                            << norm_count
                                                            << " norms");
    ValidateFilteredSizes(norms_spec, norms_stored_size, norms_raw_size);
    std::vector<std::uint8_t> norms_raw(norms_raw_size);
    DecodeFiltered(bytes.data() + norms_offset + nb.pos(), norms_stored_size,
                   norms_spec, norms_raw.data(), norms_raw_size, nullptr);
    nb.Skip(norms_stored_size);
    GLSC_CHECK_MSG(nb.AtEnd(),
                   "corrupt archive: trailing bytes after norms block");
    archive.norms_.resize(norm_count);
    ByteReader norms_in(norms_raw);
    for (auto& n : archive.norms_) {
      n.mean = norms_in.GetF32();
      n.range = norms_in.GetF32();
    }

    ByteReader ix(bytes.data() + index_offset, size - kFooterV4 - index_offset);
    const std::uint64_t count = ix.GetVarU64();
    // Every index entry costs at least 8 bytes (six varints + two u8s).
    GLSC_CHECK_MSG(count <= ix.remaining() / 8,
                   "corrupt archive: " << count << " index entries in "
                                       << ix.remaining()
                                       << " remaining bytes");
    ByteReader rec(bytes.data() + header_end, norms_offset - header_end);
    archive.entries_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      ArchiveEntry entry;
      entry.variable = static_cast<std::int64_t>(ix.GetVarU64());
      entry.t0 = static_cast<std::int64_t>(ix.GetVarU64());
      entry.valid_frames = static_cast<std::int64_t>(ix.GetVarU64());
      const std::uint8_t filter_byte = ix.GetU8();
      const std::uint8_t backend_byte = ix.GetU8();
      const FilterSpec spec = FilterSpec::FromWire(filter_byte, backend_byte);
      const std::uint64_t raw_size = ix.GetVarU64();
      const std::uint64_t offset = ix.GetVarU64();
      const std::uint64_t stored_size = ix.GetVarU64();
      GLSC_CHECK_MSG(entry.variable >= 0 &&
                         entry.variable < archive.dataset_shape_[0] &&
                         entry.t0 >= 0 && entry.t0 < archive.dataset_shape_[1],
                     "corrupt archive: record outside dataset bounds");
      GLSC_CHECK_MSG(
          entry.valid_frames > 0 && entry.valid_frames <= archive.window_,
          "corrupt archive: record valid_frames " << entry.valid_frames);
      ValidateFilteredSizes(spec, stored_size, raw_size);
      // The record header must mirror the index entry, and records must tile
      // the record area contiguously in index order.
      const bool meta_ok =
          rec.GetVarU64() == static_cast<std::uint64_t>(entry.variable) &&
          rec.GetVarU64() == static_cast<std::uint64_t>(entry.t0) &&
          rec.GetVarU64() == static_cast<std::uint64_t>(entry.valid_frames) &&
          rec.GetU8() == spec.WireFilter() &&
          rec.GetU8() == spec.WireBackend() && rec.GetVarU64() == raw_size &&
          rec.GetVarU64() == stored_size;
      GLSC_CHECK_MSG(meta_ok, "corrupt archive index: entry "
                                  << i << " disagrees with its record");
      GLSC_CHECK_MSG(offset == header_end + rec.pos(),
                     "corrupt archive index: entry " << i
                                                     << " payload offset");
      GLSC_CHECK_MSG(stored_size <= rec.remaining(),
                     "corrupt archive: record payload overruns record area");
      entry.payload.resize(raw_size);
      DecodeFiltered(bytes.data() + offset, stored_size, spec,
                     entry.payload.data(), raw_size, nullptr);
      rec.Skip(stored_size);
      archive.entries_.push_back(std::move(entry));
    }
    GLSC_CHECK_MSG(rec.AtEnd(),
                   "corrupt archive: record area not covered by index");
    GLSC_CHECK_MSG(ix.AtEnd(), "corrupt archive: trailing bytes after index");
    return archive;
  }

  // Each norm costs 8 bytes; reject dimension combinations the input cannot
  // possibly back before allocating.
  GLSC_CHECK_MSG(norm_count <= in.remaining() / (2 * sizeof(float)),
                 "corrupt archive: " << norm_count << " frame norms in "
                                     << in.remaining() << " remaining bytes");
  archive.norms_.resize(norm_count);
  for (auto& n : archive.norms_) {
    n.mean = in.GetF32();
    n.range = in.GetF32();
  }

  const std::uint64_t count = in.GetVarU64();
  GLSC_CHECK_MSG(count <= in.remaining(),
                 "corrupt archive: " << count << " records in "
                                     << in.remaining() << " remaining bytes");
  archive.entries_.reserve(count);
  std::vector<std::uint64_t> payload_offsets(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ArchiveEntry entry;
    entry.variable = static_cast<std::int64_t>(in.GetVarU64());
    entry.t0 = static_cast<std::int64_t>(in.GetVarU64());
    if (version >= kVersionNoIndex) {
      entry.valid_frames = static_cast<std::int64_t>(in.GetVarU64());
      entry.payload.resize(GetCheckedLength(&in, "payload"));
      payload_offsets[i] = in.pos();
      in.GetBytes(entry.payload.data(), entry.payload.size());
    } else {
      // v1 record bodies are bit-identical to the "glsc" codec payload:
      // re-serializing the parsed window lifts them into v2 entries.
      const CompressedWindow window = DeserializeWindow(&in);
      entry.valid_frames =
          window.window_shape.empty() ? archive.window_ : window.window_shape[0];
      ByteWriter payload;
      SerializeWindow(window, &payload);
      entry.payload = payload.Release();
    }
    GLSC_CHECK_MSG(entry.variable >= 0 &&
                       entry.variable < archive.dataset_shape_[0] &&
                       entry.t0 >= 0 && entry.t0 < archive.dataset_shape_[1],
                   "corrupt archive: record outside dataset bounds");
    GLSC_CHECK_MSG(
        entry.valid_frames > 0 && entry.valid_frames <= archive.window_,
        "corrupt archive: record valid_frames " << entry.valid_frames);
    archive.entries_.push_back(std::move(entry));
  }

  if (version == kVersionIndexed) {
    // The footer index is redundant with the records just parsed; verify it
    // agrees entry for entry so a truncated or tampered index throws here
    // rather than silently desynchronizing random-access readers.
    const std::uint64_t index_offset = in.pos();
    const std::uint64_t index_count = in.GetVarU64();
    GLSC_CHECK_MSG(index_count == count,
                   "corrupt archive index: " << index_count
                                             << " index entries for " << count
                                             << " records");
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto& entry = archive.entries_[i];
      const bool meta_ok =
          in.GetVarU64() == static_cast<std::uint64_t>(entry.variable) &&
          in.GetVarU64() == static_cast<std::uint64_t>(entry.t0) &&
          in.GetVarU64() == static_cast<std::uint64_t>(entry.valid_frames);
      const bool span_ok = in.GetVarU64() == payload_offsets[i] &&
                           in.GetVarU64() == entry.payload.size();
      GLSC_CHECK_MSG(meta_ok && span_ok,
                     "corrupt archive index: entry " << i
                                                     << " disagrees with its "
                                                        "record");
    }
    GLSC_CHECK_MSG(in.remaining() == 12, "corrupt archive: malformed footer");
    GLSC_CHECK_MSG(in.GetU64() == index_offset,
                   "corrupt archive: footer index offset mismatch");
    char index_magic[4];
    in.GetBytes(index_magic, 4);
    GLSC_CHECK_MSG(std::equal(index_magic, index_magic + 4, kIndexMagic),
                   "corrupt archive: bad index magic");
  }
  return archive;
}

void DatasetArchive::WriteFile(const std::string& path) const {
  WriteFileBytes(path, Serialize());
}

DatasetArchive DatasetArchive::ReadFile(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  GLSC_CHECK_MSG(ReadFileBytes(path, &bytes), "cannot read " << path);
  return Deserialize(bytes);
}

void DatasetArchive::AppendToFile(const std::string& path,
                                  const DatasetArchive& more,
                                  const ArchiveWriteOptions& options) {
  GLSC_CHECK_MSG(options.version == 4, "append requires the v4 layout");
  GLSC_CHECK(more.dataset_shape_.size() == 4);
  if (!FileExists(path)) {
    WriteFileBytes(path, more.Serialize(options));
    return;
  }
  std::vector<std::uint8_t> bytes;
  GLSC_CHECK_MSG(ReadFileBytes(path, &bytes), "cannot read " << path);

  // Minimal v4 parse: header, footer, index and norms. Old record bytes are
  // reused verbatim — never decoded, never rewritten.
  ByteReader in(bytes);
  char magic[4];
  in.GetBytes(magic, 4);
  GLSC_CHECK_MSG(std::equal(magic, magic + 4, kMagic), "not a GLSC archive");
  const std::uint8_t version = in.GetU8();
  GLSC_CHECK_MSG(version == kVersion,
                 "cannot append in place to a v"
                     << static_cast<int>(version)
                     << " archive; rewrite it through Serialize");
  const std::string codec = in.GetString();
  GLSC_CHECK_MSG(codec == more.codec_, "append codec mismatch: archive holds "
                                           << codec << ", appending "
                                           << more.codec_);
  Shape dims(4);
  std::uint64_t frames_field_pos = 0;  // byte offset of the header's u64 T
  for (int i = 0; i < 4; ++i) {
    if (i == 1) frames_field_pos = in.pos();
    dims[i] = static_cast<std::int64_t>(in.GetU64());
  }
  const auto window = static_cast<std::int64_t>(in.GetU64());
  GLSC_CHECK_MSG(dims[0] == more.dataset_shape_[0] &&
                     dims[2] == more.dataset_shape_[2] &&
                     dims[3] == more.dataset_shape_[3],
                 "append dataset shape mismatch");
  GLSC_CHECK_MSG(window == more.window_, "append window mismatch");
  const std::int64_t vars = dims[0];
  const std::int64_t base_t = dims[1];
  const std::int64_t more_t = more.dataset_shape_[1];
  GLSC_CHECK(base_t >= 0 && more_t >= 0 &&
             static_cast<std::int64_t>(more.norms_.size()) == vars * more_t);
  const std::uint64_t header_end = in.pos();

  GLSC_CHECK_MSG(bytes.size() >= header_end + kFooterV4,
                 "corrupt archive: truncated before v4 footer");
  ByteReader footer(bytes.data() + bytes.size() - kFooterV4, kFooterV4);
  const std::uint64_t norms_offset = footer.GetU64();
  const std::uint64_t index_offset = footer.GetU64();
  char index_magic[4];
  footer.GetBytes(index_magic, 4);
  GLSC_CHECK_MSG(std::equal(index_magic, index_magic + 4, kIndexMagic),
                 "corrupt archive: bad index magic");
  GLSC_CHECK_MSG(header_end <= norms_offset && norms_offset <= index_offset &&
                     index_offset <= bytes.size() - kFooterV4,
                 "corrupt archive: v4 footer offsets out of order");

  // Old norms, decoded; old index entries, carried over offsets unchanged.
  ByteReader nb(bytes.data() + norms_offset, index_offset - norms_offset);
  const std::uint8_t norms_filter_byte = nb.GetU8();
  const std::uint8_t norms_backend_byte = nb.GetU8();
  const FilterSpec norms_spec =
      FilterSpec::FromWire(norms_filter_byte, norms_backend_byte);
  const std::uint64_t norms_raw_size = nb.GetVarU64();
  const std::uint64_t norms_stored_size = GetCheckedLength(&nb, "norms block");
  GLSC_CHECK_MSG(norms_raw_size == static_cast<std::uint64_t>(vars * base_t) *
                                       2 * sizeof(float),
                 "corrupt archive: norms block raw size");
  ValidateFilteredSizes(norms_spec, norms_stored_size, norms_raw_size);
  std::vector<std::uint8_t> norms_raw(norms_raw_size);
  DecodeFiltered(bytes.data() + norms_offset + nb.pos(), norms_stored_size,
                 norms_spec, norms_raw.data(), norms_raw_size, nullptr);

  ByteReader ix(bytes.data() + index_offset,
                bytes.size() - kFooterV4 - index_offset);
  const std::uint64_t old_count = ix.GetVarU64();
  GLSC_CHECK_MSG(old_count <= ix.remaining() / 8,
                 "corrupt archive: " << old_count << " index entries in "
                                     << ix.remaining() << " remaining bytes");
  std::vector<V4Record> records;
  records.reserve(old_count + more.entries_.size());
  for (std::uint64_t i = 0; i < old_count; ++i) {
    V4Record r;
    r.variable = static_cast<std::int64_t>(ix.GetVarU64());
    r.t0 = static_cast<std::int64_t>(ix.GetVarU64());
    r.valid_frames = static_cast<std::int64_t>(ix.GetVarU64());
    const std::uint8_t filter_byte = ix.GetU8();
    const std::uint8_t backend_byte = ix.GetU8();
    r.spec = FilterSpec::FromWire(filter_byte, backend_byte);
    r.raw_size = ix.GetVarU64();
    r.offset = ix.GetVarU64();
    r.stored_size = ix.GetVarU64();
    records.push_back(r);
  }

  // New records land where the old norms block started.
  ByteWriter tail;
  for (const auto& entry : more.entries_) {
    records.push_back(
        PutV4Record(&tail, norms_offset, entry, options.forced_filter, base_t));
  }

  // Merged norms, V-major over the combined time axis — exactly the order a
  // one-shot serialization of the combined record set would encode.
  const std::int64_t new_t = base_t + more_t;
  std::vector<data::FrameNorm> norms(static_cast<std::size_t>(vars * new_t));
  ByteReader old_norms(norms_raw);
  for (std::int64_t v = 0; v < vars; ++v) {
    for (std::int64_t t = 0; t < base_t; ++t) {
      auto& n = norms[static_cast<std::size_t>(v * new_t + t)];
      n.mean = old_norms.GetF32();
      n.range = old_norms.GetF32();
    }
    for (std::int64_t t = 0; t < more_t; ++t) {
      norms[static_cast<std::size_t>(v * new_t + base_t + t)] =
          more.norms_[static_cast<std::size_t>(v * more_t + t)];
    }
  }
  PutV4Tail(&tail, norms_offset, records, norms, options.forced_filter);

  // Splice: overwrite from the old norms offset, patch the header's u64 T in
  // place, and truncate if the rewritten tail came out shorter (possible when
  // the merged norms block compresses better than the old one).
  const std::uint64_t new_size = norms_offset + tail.size();
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    GLSC_CHECK_MSG(f.good(), "cannot open " << path << " for append");
    f.seekp(static_cast<std::streamoff>(norms_offset));
    f.write(reinterpret_cast<const char*>(tail.bytes().data()),
            static_cast<std::streamsize>(tail.size()));
    std::uint8_t t_le[8];
    for (int i = 0; i < 8; ++i) {
      t_le[i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(new_t) >>
                                          (8 * i));
    }
    f.seekp(static_cast<std::streamoff>(frames_field_pos));
    f.write(reinterpret_cast<const char*>(t_le), sizeof t_le);
    f.flush();
    GLSC_CHECK_MSG(f.good(), "append write to " << path << " failed");
  }
  if (new_size < bytes.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path, new_size, ec);
    GLSC_CHECK_MSG(!ec, "cannot truncate " << path << " after append");
  }
}

Tensor DatasetArchive::DecompressAll(api::Compressor* codec) const {
  api::DecodeSession session(codec, *this);
  return session.DecodeAll();
}

Tensor DatasetArchive::DecompressAll(GlscCompressor* compressor) const {
  const auto codec = api::WrapGlsc(compressor);
  return DecompressAll(codec.get());
}

namespace {

api::SessionOptions GlscSessionOptions(double tau) {
  api::SessionOptions options;
  if (tau > 0.0) {
    options.bound = {api::ErrorBoundMode::kPointwiseL2, tau};
  }
  return options;
}

}  // namespace

DatasetArchive CompressDataset(GlscCompressor* compressor,
                               const data::SequenceDataset& dataset,
                               double tau) {
  const auto codec = api::WrapGlsc(compressor);
  api::EncodeSession session(codec.get(), dataset.variables(),
                             dataset.height(), dataset.width(),
                             GlscSessionOptions(tau));
  session.Push(dataset.raw());
  return session.Finish();
}

DatasetArchive CompressDatasetParallel(
    const std::vector<GlscCompressor*>& workers,
    const data::SequenceDataset& dataset, double tau) {
  GLSC_CHECK(!workers.empty());
  const auto primary = api::WrapGlsc(workers[0]);
  std::vector<std::unique_ptr<api::Compressor>> extras;
  api::SessionOptions options = GlscSessionOptions(tau);
  for (std::size_t i = 1; i < workers.size(); ++i) {
    extras.push_back(api::WrapGlsc(workers[i]));
    options.extra_workers.push_back(extras.back().get());
  }
  api::EncodeSession session(primary.get(), dataset.variables(),
                             dataset.height(), dataset.width(), options);
  session.Push(dataset.raw());
  return session.Finish();
}

}  // namespace glsc::core
