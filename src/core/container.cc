#include "core/container.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace glsc::core {
namespace {

constexpr char kMagic[4] = {'G', 'L', 'S', 'C'};
constexpr std::uint8_t kVersion = 1;

void PutShape(const Shape& shape, ByteWriter* out) {
  out->PutVarU64(shape.size());
  for (const auto d : shape) out->PutVarU64(static_cast<std::uint64_t>(d));
}

Shape GetShape(ByteReader* in) {
  Shape shape(in->GetVarU64());
  for (auto& d : shape) d = static_cast<std::int64_t>(in->GetVarU64());
  return shape;
}

}  // namespace

void SerializeWindow(const CompressedWindow& window, ByteWriter* out) {
  out->PutVarU64(window.keyframes.y_stream.size());
  out->PutBytes(window.keyframes.y_stream.data(),
                window.keyframes.y_stream.size());
  out->PutVarU64(window.keyframes.z_stream.size());
  out->PutBytes(window.keyframes.z_stream.data(),
                window.keyframes.z_stream.size());
  PutShape(window.keyframes.y_shape, out);
  PutShape(window.keyframes.z_shape, out);
  PutShape(window.window_shape, out);
  out->PutU32(window.sample_seed);
  out->PutVarU64(window.corrections.size());
  for (const auto& c : window.corrections) {
    out->PutVarU64(c.size());
    out->PutBytes(c.data(), c.size());
  }
}

CompressedWindow DeserializeWindow(ByteReader* in) {
  CompressedWindow window;
  window.keyframes.y_stream.resize(in->GetVarU64());
  in->GetBytes(window.keyframes.y_stream.data(),
               window.keyframes.y_stream.size());
  window.keyframes.z_stream.resize(in->GetVarU64());
  in->GetBytes(window.keyframes.z_stream.data(),
               window.keyframes.z_stream.size());
  window.keyframes.y_shape = GetShape(in);
  window.keyframes.z_shape = GetShape(in);
  window.window_shape = GetShape(in);
  window.sample_seed = in->GetU32();
  window.corrections.resize(in->GetVarU64());
  for (auto& c : window.corrections) {
    c.resize(in->GetVarU64());
    in->GetBytes(c.data(), c.size());
  }
  return window;
}

void DatasetArchive::Add(std::int64_t variable, std::int64_t t0,
                         CompressedWindow window) {
  entries_.push_back({variable, t0, std::move(window)});
}

const data::FrameNorm& DatasetArchive::norm(std::int64_t variable,
                                            std::int64_t t) const {
  const std::int64_t frames = dataset_shape_[1];
  return norms_[static_cast<std::size_t>(variable * frames + t)];
}

std::vector<std::uint8_t> DatasetArchive::Serialize() const {
  ByteWriter out;
  out.PutBytes(kMagic, sizeof kMagic);
  out.PutU8(kVersion);
  GLSC_CHECK(dataset_shape_.size() == 4);
  for (const auto d : dataset_shape_) {
    out.PutU64(static_cast<std::uint64_t>(d));
  }
  out.PutU64(static_cast<std::uint64_t>(window_));
  GLSC_CHECK(static_cast<std::int64_t>(norms_.size()) ==
             dataset_shape_[0] * dataset_shape_[1]);
  for (const auto& n : norms_) {
    out.PutF32(n.mean);
    out.PutF32(n.range);
  }
  out.PutVarU64(entries_.size());
  for (const auto& entry : entries_) {
    out.PutVarU64(static_cast<std::uint64_t>(entry.variable));
    out.PutVarU64(static_cast<std::uint64_t>(entry.t0));
    SerializeWindow(entry.window, &out);
  }
  return out.Release();
}

DatasetArchive DatasetArchive::Deserialize(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader in(bytes);
  char magic[4];
  in.GetBytes(magic, 4);
  GLSC_CHECK_MSG(std::equal(magic, magic + 4, kMagic), "not a GLSC archive");
  const std::uint8_t version = in.GetU8();
  GLSC_CHECK_MSG(version == kVersion, "unsupported archive version "
                                          << static_cast<int>(version));
  DatasetArchive archive;
  archive.dataset_shape_.resize(4);
  for (auto& d : archive.dataset_shape_) {
    d = static_cast<std::int64_t>(in.GetU64());
  }
  archive.window_ = static_cast<std::int64_t>(in.GetU64());
  archive.norms_.resize(static_cast<std::size_t>(archive.dataset_shape_[0] *
                                                 archive.dataset_shape_[1]));
  for (auto& n : archive.norms_) {
    n.mean = in.GetF32();
    n.range = in.GetF32();
  }
  const std::uint64_t count = in.GetVarU64();
  archive.entries_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ArchiveEntry entry;
    entry.variable = static_cast<std::int64_t>(in.GetVarU64());
    entry.t0 = static_cast<std::int64_t>(in.GetVarU64());
    entry.window = DeserializeWindow(&in);
    archive.entries_.push_back(std::move(entry));
  }
  return archive;
}

void DatasetArchive::WriteFile(const std::string& path) const {
  WriteFileBytes(path, Serialize());
}

DatasetArchive DatasetArchive::ReadFile(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  GLSC_CHECK_MSG(ReadFileBytes(path, &bytes), "cannot read " << path);
  return Deserialize(bytes);
}

Tensor DatasetArchive::DecompressAll(GlscCompressor* compressor) const {
  Tensor out(dataset_shape_);
  const std::int64_t frames = dataset_shape_[1];
  const std::int64_t hw = dataset_shape_[2] * dataset_shape_[3];
  for (const auto& entry : entries_) {
    const Tensor recon = compressor->Decompress(entry.window);
    const std::int64_t n = recon.dim(0);
    for (std::int64_t f = 0; f < n; ++f) {
      const data::FrameNorm& fn = norm(entry.variable, entry.t0 + f);
      float* dst =
          out.data() + ((entry.variable * frames) + entry.t0 + f) * hw;
      const float* src = recon.data() + f * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        dst[i] = src[i] * fn.range + fn.mean;
      }
    }
  }
  return out;
}

DatasetArchive CompressDatasetParallel(
    const std::vector<GlscCompressor*>& workers,
    const data::SequenceDataset& dataset, double tau) {
  GLSC_CHECK(!workers.empty());
  const std::int64_t window = workers[0]->config().window;
  std::vector<data::FrameNorm> norms;
  norms.reserve(
      static_cast<std::size_t>(dataset.variables() * dataset.frames()));
  for (std::int64_t v = 0; v < dataset.variables(); ++v) {
    for (std::int64_t t = 0; t < dataset.frames(); ++t) {
      norms.push_back(dataset.norm(v, t));
    }
  }
  DatasetArchive archive(dataset.raw().shape(), window, std::move(norms));

  const auto refs = dataset.EvaluationWindows(window);
  std::vector<CompressedWindow> results(refs.size());
  // Static round-robin assignment: worker k owns windows k, k+W, k+2W, ...
  // Each worker's internal state is touched by exactly one thread.
  ThreadPool& pool = GlobalThreadPool();
  pool.ParallelFor(workers.size(), [&](std::size_t worker_id) {
    for (std::size_t i = worker_id; i < refs.size(); i += workers.size()) {
      const Tensor frames =
          dataset.NormalizedWindow(refs[i].variable, refs[i].t0, window);
      results[i] = workers[worker_id]->Compress(frames, tau);
    }
  });
  for (std::size_t i = 0; i < refs.size(); ++i) {
    archive.Add(refs[i].variable, refs[i].t0, std::move(results[i]));
  }
  return archive;
}

DatasetArchive CompressDataset(GlscCompressor* compressor,
                               const data::SequenceDataset& dataset,
                               double tau) {
  std::vector<data::FrameNorm> norms;
  norms.reserve(static_cast<std::size_t>(dataset.variables() *
                                         dataset.frames()));
  for (std::int64_t v = 0; v < dataset.variables(); ++v) {
    for (std::int64_t t = 0; t < dataset.frames(); ++t) {
      norms.push_back(dataset.norm(v, t));
    }
  }
  DatasetArchive archive(dataset.raw().shape(),
                         compressor->config().window, std::move(norms));
  for (const auto& ref :
       dataset.EvaluationWindows(compressor->config().window)) {
    const Tensor window = dataset.NormalizedWindow(
        ref.variable, ref.t0, compressor->config().window);
    archive.Add(ref.variable, ref.t0, compressor->Compress(window, tau));
  }
  return archive;
}

}  // namespace glsc::core
