#include "core/container.h"

#include <algorithm>

#include "api/adapters.h"
#include "api/session.h"
#include "util/check.h"

namespace glsc::core {
namespace {

constexpr char kMagic[4] = {'G', 'L', 'S', 'C'};
constexpr char kIndexMagic[4] = {'G', 'I', 'D', 'X'};
constexpr std::uint8_t kVersion = 3;          // v2 + random-access footer index
constexpr std::uint8_t kVersionNoIndex = 2;   // codec-agnostic, no index
constexpr std::uint8_t kLegacyVersion = 1;    // GLSC-only records

void PutShape(const Shape& shape, ByteWriter* out) { PutDims(shape, out); }
Shape GetShape(ByteReader* in) { return GetDimsChecked(in); }

// Reads a varint byte count that must fit in what is left of the stream —
// the guard that keeps truncated/hostile archives from OOMing via a huge
// resize before the actual read fails.
std::uint64_t GetCheckedLength(ByteReader* in, const char* what) {
  const std::uint64_t n = in->GetVarU64();
  GLSC_CHECK_MSG(n <= in->remaining(), "corrupt record: " << what << " length "
                                                          << n << " exceeds "
                                                          << in->remaining()
                                                          << " remaining bytes");
  return n;
}

}  // namespace

void SerializeWindow(const CompressedWindow& window, ByteWriter* out) {
  out->PutVarU64(window.keyframes.y_stream.size());
  out->PutBytes(window.keyframes.y_stream.data(),
                window.keyframes.y_stream.size());
  out->PutVarU64(window.keyframes.z_stream.size());
  out->PutBytes(window.keyframes.z_stream.data(),
                window.keyframes.z_stream.size());
  PutShape(window.keyframes.y_shape, out);
  PutShape(window.keyframes.z_shape, out);
  PutShape(window.window_shape, out);
  out->PutU32(window.sample_seed);
  out->PutVarU64(window.corrections.size());
  for (const auto& c : window.corrections) {
    out->PutVarU64(c.size());
    out->PutBytes(c.data(), c.size());
  }
}

CompressedWindow DeserializeWindow(ByteReader* in) {
  CompressedWindow window;
  window.keyframes.y_stream.resize(GetCheckedLength(in, "y-stream"));
  in->GetBytes(window.keyframes.y_stream.data(),
               window.keyframes.y_stream.size());
  window.keyframes.z_stream.resize(GetCheckedLength(in, "z-stream"));
  in->GetBytes(window.keyframes.z_stream.data(),
               window.keyframes.z_stream.size());
  window.keyframes.y_shape = GetShape(in);
  window.keyframes.z_shape = GetShape(in);
  window.window_shape = GetShape(in);
  window.sample_seed = in->GetU32();
  // Every correction costs at least its own length varint, so the count can
  // never legitimately exceed the remaining byte count.
  const std::uint64_t corrections = in->GetVarU64();
  GLSC_CHECK_MSG(corrections <= in->remaining(),
                 "corrupt record: " << corrections << " corrections in "
                                    << in->remaining() << " remaining bytes");
  window.corrections.resize(corrections);
  for (auto& c : window.corrections) {
    c.resize(GetCheckedLength(in, "correction"));
    in->GetBytes(c.data(), c.size());
  }
  return window;
}

void DatasetArchive::Add(std::int64_t variable, std::int64_t t0,
                         std::int64_t valid_frames,
                         std::vector<std::uint8_t> payload) {
  GLSC_CHECK(variable >= 0 && t0 >= 0);
  GLSC_CHECK_MSG(valid_frames > 0 && valid_frames <= window_,
                 "valid_frames " << valid_frames << " outside (0, " << window_
                                 << "]");
  entries_.push_back({variable, t0, valid_frames, std::move(payload)});
}

const data::FrameNorm& DatasetArchive::norm(std::int64_t variable,
                                            std::int64_t t) const {
  const std::int64_t frames = dataset_shape_[1];
  GLSC_CHECK(variable >= 0 && variable < dataset_shape_[0] && t >= 0 &&
             t < frames);
  return norms_[static_cast<std::size_t>(variable * frames + t)];
}

std::vector<std::uint8_t> DatasetArchive::Serialize() const {
  ByteWriter out;
  out.PutBytes(kMagic, sizeof kMagic);
  out.PutU8(kVersion);
  out.PutString(codec_);
  GLSC_CHECK(dataset_shape_.size() == 4);
  for (const auto d : dataset_shape_) {
    out.PutU64(static_cast<std::uint64_t>(d));
  }
  out.PutU64(static_cast<std::uint64_t>(window_));
  GLSC_CHECK(static_cast<std::int64_t>(norms_.size()) ==
             dataset_shape_[0] * dataset_shape_[1]);
  for (const auto& n : norms_) {
    out.PutF32(n.mean);
    out.PutF32(n.range);
  }
  out.PutVarU64(entries_.size());
  std::vector<std::uint64_t> payload_offsets(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& entry = entries_[i];
    out.PutVarU64(static_cast<std::uint64_t>(entry.variable));
    out.PutVarU64(static_cast<std::uint64_t>(entry.t0));
    out.PutVarU64(static_cast<std::uint64_t>(entry.valid_frames));
    out.PutVarU64(entry.payload.size());
    payload_offsets[i] = out.size();  // absolute offset of the payload bytes
    out.PutBytes(entry.payload.data(), entry.payload.size());
  }

  // Footer index: each record's metadata plus the absolute byte span of its
  // payload, then a fixed-size trailer pointing at the index block.
  const std::uint64_t index_offset = out.size();
  out.PutVarU64(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out.PutVarU64(static_cast<std::uint64_t>(entries_[i].variable));
    out.PutVarU64(static_cast<std::uint64_t>(entries_[i].t0));
    out.PutVarU64(static_cast<std::uint64_t>(entries_[i].valid_frames));
    out.PutVarU64(payload_offsets[i]);
    out.PutVarU64(entries_[i].payload.size());
  }
  out.PutU64(index_offset);
  out.PutBytes(kIndexMagic, sizeof kIndexMagic);
  return out.Release();
}

DatasetArchive DatasetArchive::Deserialize(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader in(bytes);
  char magic[4];
  in.GetBytes(magic, 4);
  GLSC_CHECK_MSG(std::equal(magic, magic + 4, kMagic), "not a GLSC archive");
  const std::uint8_t version = in.GetU8();
  GLSC_CHECK_MSG(version == kVersion || version == kVersionNoIndex ||
                     version == kLegacyVersion,
                 "unsupported archive version " << static_cast<int>(version));

  DatasetArchive archive;
  if (version >= kVersionNoIndex) {
    const std::uint64_t codec_len = GetCheckedLength(&in, "codec name");
    GLSC_CHECK_MSG(codec_len <= 64, "corrupt archive: codec name length");
    archive.codec_.resize(codec_len);
    in.GetBytes(archive.codec_.data(), codec_len);
  } else {
    archive.codec_ = "glsc";
  }

  archive.dataset_shape_.resize(4);
  for (auto& d : archive.dataset_shape_) {
    const std::uint64_t raw = in.GetU64();
    // Per-dimension cap keeps every product below (V*T norms, V*T*H*W decode
    // allocation) overflow-free, so the byte-count guards cannot be wrapped
    // around by giant dimensions.
    GLSC_CHECK_MSG(raw <= (1ull << 31),
                   "corrupt archive: dataset dimension " << raw);
    d = static_cast<std::int64_t>(raw);
  }
  archive.window_ = static_cast<std::int64_t>(in.GetU64());
  GLSC_CHECK_MSG(archive.window_ > 0, "corrupt archive: non-positive window");

  // Each norm costs 8 bytes; reject dimension combinations the input cannot
  // possibly back before allocating. Dims are <= 2^31, so V*T cannot wrap.
  const std::uint64_t norm_count =
      static_cast<std::uint64_t>(archive.dataset_shape_[0]) *
      static_cast<std::uint64_t>(archive.dataset_shape_[1]);
  GLSC_CHECK_MSG(norm_count <= in.remaining() / (2 * sizeof(float)),
                 "corrupt archive: " << norm_count << " frame norms in "
                                     << in.remaining() << " remaining bytes");
  // The decode-time [V, T, H, W] element count must stay representable so
  // DecompressAll's allocation cannot overflow signed arithmetic.
  const std::uint64_t frame_elems =
      static_cast<std::uint64_t>(archive.dataset_shape_[2]) *
      static_cast<std::uint64_t>(archive.dataset_shape_[3]);
  GLSC_CHECK_MSG(frame_elems == 0 || norm_count <= (1ull << 62) / frame_elems,
                 "corrupt archive: dataset element count overflows");
  archive.norms_.resize(norm_count);
  for (auto& n : archive.norms_) {
    n.mean = in.GetF32();
    n.range = in.GetF32();
  }

  const std::uint64_t count = in.GetVarU64();
  GLSC_CHECK_MSG(count <= in.remaining(),
                 "corrupt archive: " << count << " records in "
                                     << in.remaining() << " remaining bytes");
  archive.entries_.reserve(count);
  std::vector<std::uint64_t> payload_offsets(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ArchiveEntry entry;
    entry.variable = static_cast<std::int64_t>(in.GetVarU64());
    entry.t0 = static_cast<std::int64_t>(in.GetVarU64());
    if (version >= kVersionNoIndex) {
      entry.valid_frames = static_cast<std::int64_t>(in.GetVarU64());
      entry.payload.resize(GetCheckedLength(&in, "payload"));
      payload_offsets[i] = in.pos();
      in.GetBytes(entry.payload.data(), entry.payload.size());
    } else {
      // v1 record bodies are bit-identical to the "glsc" codec payload:
      // re-serializing the parsed window lifts them into v2 entries.
      const CompressedWindow window = DeserializeWindow(&in);
      entry.valid_frames =
          window.window_shape.empty() ? archive.window_ : window.window_shape[0];
      ByteWriter payload;
      SerializeWindow(window, &payload);
      entry.payload = payload.Release();
    }
    GLSC_CHECK_MSG(entry.variable >= 0 &&
                       entry.variable < archive.dataset_shape_[0] &&
                       entry.t0 >= 0 && entry.t0 < archive.dataset_shape_[1],
                   "corrupt archive: record outside dataset bounds");
    GLSC_CHECK_MSG(
        entry.valid_frames > 0 && entry.valid_frames <= archive.window_,
        "corrupt archive: record valid_frames " << entry.valid_frames);
    archive.entries_.push_back(std::move(entry));
  }

  if (version == kVersion) {
    // The footer index is redundant with the records just parsed; verify it
    // agrees entry for entry so a truncated or tampered index throws here
    // rather than silently desynchronizing random-access readers.
    const std::uint64_t index_offset = in.pos();
    const std::uint64_t index_count = in.GetVarU64();
    GLSC_CHECK_MSG(index_count == count,
                   "corrupt archive index: " << index_count
                                             << " index entries for " << count
                                             << " records");
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto& entry = archive.entries_[i];
      const bool meta_ok =
          in.GetVarU64() == static_cast<std::uint64_t>(entry.variable) &&
          in.GetVarU64() == static_cast<std::uint64_t>(entry.t0) &&
          in.GetVarU64() == static_cast<std::uint64_t>(entry.valid_frames);
      const bool span_ok = in.GetVarU64() == payload_offsets[i] &&
                           in.GetVarU64() == entry.payload.size();
      GLSC_CHECK_MSG(meta_ok && span_ok,
                     "corrupt archive index: entry " << i
                                                     << " disagrees with its "
                                                        "record");
    }
    GLSC_CHECK_MSG(in.remaining() == 12, "corrupt archive: malformed footer");
    GLSC_CHECK_MSG(in.GetU64() == index_offset,
                   "corrupt archive: footer index offset mismatch");
    char index_magic[4];
    in.GetBytes(index_magic, 4);
    GLSC_CHECK_MSG(std::equal(index_magic, index_magic + 4, kIndexMagic),
                   "corrupt archive: bad index magic");
  }
  return archive;
}

void DatasetArchive::WriteFile(const std::string& path) const {
  WriteFileBytes(path, Serialize());
}

DatasetArchive DatasetArchive::ReadFile(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  GLSC_CHECK_MSG(ReadFileBytes(path, &bytes), "cannot read " << path);
  return Deserialize(bytes);
}

Tensor DatasetArchive::DecompressAll(api::Compressor* codec) const {
  api::DecodeSession session(codec, *this);
  return session.DecodeAll();
}

Tensor DatasetArchive::DecompressAll(GlscCompressor* compressor) const {
  const auto codec = api::WrapGlsc(compressor);
  return DecompressAll(codec.get());
}

namespace {

api::SessionOptions GlscSessionOptions(double tau) {
  api::SessionOptions options;
  if (tau > 0.0) {
    options.bound = {api::ErrorBoundMode::kPointwiseL2, tau};
  }
  return options;
}

}  // namespace

DatasetArchive CompressDataset(GlscCompressor* compressor,
                               const data::SequenceDataset& dataset,
                               double tau) {
  const auto codec = api::WrapGlsc(compressor);
  api::EncodeSession session(codec.get(), dataset.variables(),
                             dataset.height(), dataset.width(),
                             GlscSessionOptions(tau));
  session.Push(dataset.raw());
  return session.Finish();
}

DatasetArchive CompressDatasetParallel(
    const std::vector<GlscCompressor*>& workers,
    const data::SequenceDataset& dataset, double tau) {
  GLSC_CHECK(!workers.empty());
  const auto primary = api::WrapGlsc(workers[0]);
  std::vector<std::unique_ptr<api::Compressor>> extras;
  api::SessionOptions options = GlscSessionOptions(tau);
  for (std::size_t i = 1; i < workers.size(); ++i) {
    extras.push_back(api::WrapGlsc(workers[i]));
    options.extra_workers.push_back(extras.back().get());
  }
  api::EncodeSession session(primary.get(), dataset.variables(),
                             dataset.height(), dataset.width(), options);
  session.Push(dataset.raw());
  return session.Finish();
}

}  // namespace glsc::core
