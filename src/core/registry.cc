#include "core/registry.h"

#include <cstdlib>
#include <filesystem>

#include "tensor/ops.h"
#include "util/logging.h"
#include "util/timer.h"

namespace glsc::core {

bool RetrainRequested() {
  const char* env = std::getenv("GLSC_RETRAIN");
  return env != nullptr && env[0] == '1';
}

std::string ArtifactPath(const std::string& artifacts_dir,
                         const std::string& tag) {
  return artifacts_dir + "/" + tag + ".glsc";
}

void EnsureArtifactsDir(const std::string& artifacts_dir) {
  std::error_code ec;
  std::filesystem::create_directories(artifacts_dir, ec);
  GLSC_CHECK_MSG(!ec, "cannot create artifacts dir " << artifacts_dir << ": "
                                                     << ec.message());
  GLSC_CHECK_MSG(std::filesystem::is_directory(artifacts_dir),
                 artifacts_dir << " exists but is not a directory");
}

void FitPcaFromResiduals(GlscCompressor* compressor,
                         const data::SequenceDataset& dataset,
                         std::int64_t fit_windows, std::int64_t crop) {
  Rng rng(101);
  std::vector<Tensor> residual_frames;
  const std::int64_t n = compressor->config().window;
  for (std::int64_t i = 0; i < fit_windows; ++i) {
    const Tensor window = dataset.SampleTrainingWindow(n, crop, rng);
    const Tensor recon =
        compressor->Reconstruct(window, static_cast<std::uint32_t>(7 + i));
    const Tensor residual = Sub(window, recon);
    const std::int64_t hw = window.dim(1) * window.dim(2);
    for (std::int64_t f = 0; f < n; ++f) {
      Tensor frame({window.dim(1), window.dim(2)});
      std::copy_n(residual.data() + f * hw, hw, frame.data());
      residual_frames.push_back(std::move(frame));
    }
  }
  compressor->pca().Fit(residual_frames);
}

std::unique_ptr<GlscCompressor> GetOrTrainGlsc(
    const data::SequenceDataset& dataset, const GlscConfig& config,
    const TrainBudget& budget, const std::string& artifacts_dir,
    const std::string& tag) {
  auto compressor = std::make_unique<GlscCompressor>(config);
  const std::string path = ArtifactPath(artifacts_dir, tag);
  if (!RetrainRequested() && FileExists(path)) {
    std::vector<std::uint8_t> bytes;
    GLSC_CHECK(ReadFileBytes(path, &bytes));
    ByteReader in(bytes);
    compressor->Load(&in);
    LOG_INFO << "loaded cached model " << path;
    return compressor;
  }

  Timer timer;
  LOG_INFO << "training GLSC model '" << tag << "' (stage 1: VAE)";
  compress::TrainVae(&compressor->vae(), dataset, budget.vae);

  LOG_INFO << "stage 2: latent diffusion (" << budget.diffusion.iterations
           << " iters)";
  diffusion::DiffusionTrainConfig diff_cfg = budget.diffusion;
  diff_cfg.window = config.window;
  diff_cfg.strategy = config.strategy;
  diff_cfg.interval = config.interval;
  diff_cfg.key_count = config.key_count;
  TrainDiffusion(&compressor->unet(), compressor->schedule(),
                 &compressor->vae(), dataset, diff_cfg);

  if (budget.finetune_steps > 0 && budget.finetune_iterations > 0) {
    LOG_INFO << "stage 2b: fine-tune at " << budget.finetune_steps << " steps";
    diffusion::DiffusionTrainConfig ft_cfg = diff_cfg;
    ft_cfg.iterations = budget.finetune_iterations;
    ft_cfg.finetune_steps = budget.finetune_steps;
    ft_cfg.seed = diff_cfg.seed + 1;
    TrainDiffusion(&compressor->unet(), compressor->schedule(),
                   &compressor->vae(), dataset, ft_cfg);
  }

  LOG_INFO << "stage 3: PCA residual basis";
  FitPcaFromResiduals(compressor.get(), dataset, budget.pca_fit_windows,
                      budget.diffusion.crop);

  EnsureArtifactsDir(artifacts_dir);
  ByteWriter out;
  compressor->Save(&out);
  WriteFileBytes(path, out.bytes());
  LOG_INFO << "trained + cached '" << tag << "' in " << timer.Seconds() << "s ("
           << out.size() << " bytes)";
  return compressor;
}

}  // namespace glsc::core
