// Random-access archive reading.
//
// `DatasetArchive::Deserialize` materializes every record in memory; post-hoc
// analysis (the paper's visualization / region-of-interest workloads) instead
// reads small time slices of single variables far more often than whole
// datasets. `ArchiveReader` opens an archive from a file or a byte buffer and
// serves any record's payload without touching the others:
//
//   auto reader = core::ArchiveReader::FromFile("run.glsca");
//   for (std::size_t i : reader.RecordsFor(variable, t_begin, t_end)) {
//     codec->DecompressWindow(reader.ReadPayload(i));   // only these bytes
//   }
//
// For a v3/v4 archive (container.h) the reader fetches the header from the
// front, the fixed footer from the back, and the index block the footer
// points at — payload bytes are read lazily, one record at a time. v4 records
// may be filtered (core/filters.h); ReadPayload inverts the declared chain
// transparently, so callers always receive the raw codec payload. v1/v2
// archives carry no index, so the reader scans the record area once to build
// one; random access still works, it just costs a full read up front.
//
// File-backed readers default to a read-only mmap of the archive (page-cache
// backed random access, no syscall per record) and fall back to positioned
// pread when mapping is unavailable; both are byte-identical and lock-free,
// so ReadPayload is safe to call from multiple threads concurrently — what
// serve::DecodeScheduler's worker fan-out relies on. The mmap backing assumes
// the file is not truncated while open (standard mmap caveat).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/container.h"
#include "util/status.h"

namespace glsc::tensor {
class Workspace;
}  // namespace glsc::tensor

namespace glsc::core {

// What exactly went wrong with the archive bytes. Serving layers mostly care
// about the StatusError code this maps to (kDataLoss = quarantine-worthy,
// kUnavailable = retryable IO), but tests and logs want the precise fault.
enum class ArchiveFault : std::uint8_t {
  kNotAnArchive = 0,   // bad magic / unsupported version
  kTruncated = 1,      // stream ends before a declared structure
  kCorruptIndex = 2,   // footer/index fails validation
  kCorruptRecord = 3,  // record metadata lies about the stream
  kIo = 4,             // backing read failed (possibly transient)
};

// Typed failure for hostile or damaged archives. Derives StatusError (and
// therefore std::runtime_error), so existing catch sites keep working while
// the shard manager can classify: every fault is kDataLoss except kIo, which
// maps to kUnavailable and is eligible for retry.
class ArchiveError : public StatusError {
 public:
  ArchiveError(ArchiveFault fault, const std::string& message)
      : StatusError(fault == ArchiveFault::kIo ? ErrorCode::kUnavailable
                                               : ErrorCode::kDataLoss,
                    message),
        fault_(fault) {}

  ArchiveFault fault() const { return fault_; }

 private:
  ArchiveFault fault_;
};

// One record's metadata plus the byte span of its STORED payload inside the
// archive. For v1-v3 records (and raw v4 records) stored == raw, filter is
// the identity and raw_size == length.
struct RecordRef {
  std::int64_t variable = 0;
  std::int64_t t0 = 0;
  std::int64_t valid_frames = 0;
  std::uint64_t offset = 0;    // absolute stored-payload offset (see backing)
  std::uint64_t length = 0;    // stored (on-disk) byte count
  FilterSpec filter;           // how the stored bytes were filtered (v4)
  std::uint64_t raw_size = 0;  // unfiltered payload byte count
};

// How FromFile backs positioned reads.
enum class FileBacking : std::uint8_t {
  kAuto = 0,   // mmap, falling back to pread when mapping fails
  kMmap = 1,   // read-only mmap only; throws ArchiveError(kIo) if unavailable
  kPread = 2,  // positioned pread per record (no mapping)
};

class ArchiveReader {
 public:
  // Opens an archive file. v3/v4 archives are indexed without reading the
  // record area; v1/v2 archives are scanned once.
  static ArchiveReader FromFile(const std::string& path,
                                FileBacking backing = FileBacking::kAuto);
  // Same over an in-memory byte buffer (takes ownership of the copy).
  static ArchiveReader FromBytes(std::vector<std::uint8_t> bytes);
  // Wraps an already-deserialized archive without copying its payloads. The
  // archive must outlive the reader.
  static ArchiveReader FromArchive(const DatasetArchive& archive);

  // Move operations are defined out of line (with the destructor): Source is
  // incomplete here, and defaulting them in-class would force callers that
  // aggregate readers (vectors of shards) to instantiate its deleter.
  ArchiveReader(ArchiveReader&&) noexcept;
  ArchiveReader& operator=(ArchiveReader&&) noexcept;
  ArchiveReader(const ArchiveReader&) = delete;
  ArchiveReader& operator=(const ArchiveReader&) = delete;
  ~ArchiveReader();

  const std::string& codec() const { return codec_; }
  const Shape& dataset_shape() const { return shape_; }
  std::int64_t window() const { return window_; }
  // Container version of the backing bytes (0 for FromArchive readers).
  int version() const { return version_; }
  const data::FrameNorm& norm(std::int64_t variable, std::int64_t t) const;
  const std::vector<RecordRef>& records() const { return records_; }

  // Fetches one record's RAW payload, inverting any v4 filter chain.
  // File-backed readers read exactly that record's stored byte span;
  // thread-safe. Filter/LZ scratch comes from `ws` when non-null (the reader
  // opens its own Workspace::Scope), heap otherwise.
  std::vector<std::uint8_t> ReadPayload(std::size_t record,
                                        tensor::Workspace* ws = nullptr) const;
  // Same, reusing `out`'s capacity — with a warm Workspace this makes
  // steady-state filtered decode allocation-free.
  void ReadPayloadInto(std::size_t record, std::vector<std::uint8_t>* out,
                       tensor::Workspace* ws = nullptr) const;

  // Zero-copy alternative when the backing already holds the payload as its
  // own vector (FromArchive readers): returns a pointer into the archive, or
  // nullptr for file/bytes backings — fall back to ReadPayload then.
  const std::vector<std::uint8_t>* PayloadView(std::size_t record) const;

  // Indices (into records()) of `variable`'s records overlapping
  // [t_begin, t_end), sorted by t0.
  std::vector<std::size_t> RecordsFor(std::int64_t variable,
                                      std::int64_t t_begin,
                                      std::int64_t t_end) const;

  // STORED (on-disk, possibly compressed) payload bytes fetched through
  // ReadPayload so far — lets tests and benches verify that a window query
  // does not drag the whole archive through I/O, and that filtered archives
  // actually fetch fewer bytes than raw ones.
  std::uint64_t payload_bytes_fetched() const;
  // RAW payload bytes handed to callers after unfiltering. Equal to
  // payload_bytes_fetched() for unfiltered archives.
  std::uint64_t decoded_payload_bytes() const;
  // Total size of the backing stream (0 for FromArchive readers).
  std::uint64_t archive_bytes() const;

  class Source;  // internal byte source (file or memory)

 private:
  ArchiveReader();
  void ParseSource();      // typed-error wrapper around ParseSourceImpl
  void ParseSourceImpl();
  // v4: footer -> filtered norms block -> index (record area never read).
  void ParseV4Tail(std::uint64_t header_end, std::uint64_t norm_count);
  void BuildVariableIndex();

  std::string codec_ = "glsc";
  Shape shape_;
  int version_ = 0;
  std::int64_t window_ = 0;
  std::vector<data::FrameNorm> norms_;  // unused when archive_ is set
  std::vector<RecordRef> records_;
  // Per-variable record indices sorted by t0, for range queries.
  std::vector<std::vector<std::size_t>> by_variable_;

  std::unique_ptr<Source> source_;           // file/bytes backing
  const DatasetArchive* archive_ = nullptr;  // borrowed backing
  std::unique_ptr<std::atomic<std::uint64_t>> fetched_;
  std::unique_ptr<std::atomic<std::uint64_t>> decoded_;
};

}  // namespace glsc::core
