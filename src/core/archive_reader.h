// Random-access archive reading.
//
// `DatasetArchive::Deserialize` materializes every record in memory; post-hoc
// analysis (the paper's visualization / region-of-interest workloads) instead
// reads small time slices of single variables far more often than whole
// datasets. `ArchiveReader` opens an archive from a file or a byte buffer and
// serves any record's payload without touching the others:
//
//   auto reader = core::ArchiveReader::FromFile("run.glsca");
//   for (std::size_t i : reader.RecordsFor(variable, t_begin, t_end)) {
//     codec->DecompressWindow(reader.ReadPayload(i));   // only these bytes
//   }
//
// For a v3 archive (container.h) the reader fetches the header from the
// front, the 12-byte footer from the back, and the index block the footer
// points at — payload bytes are read lazily, one record at a time. v1/v2
// archives carry no index, so the reader scans the record area once to build
// one; random access still works, it just costs a full read up front.
//
// ReadPayload is safe to call from multiple threads concurrently (file reads
// are serialized internally), which is what serve::DecodeScheduler's worker
// fan-out relies on.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/container.h"
#include "util/status.h"

namespace glsc::core {

// What exactly went wrong with the archive bytes. Serving layers mostly care
// about the StatusError code this maps to (kDataLoss = quarantine-worthy,
// kUnavailable = retryable IO), but tests and logs want the precise fault.
enum class ArchiveFault : std::uint8_t {
  kNotAnArchive = 0,   // bad magic / unsupported version
  kTruncated = 1,      // stream ends before a declared structure
  kCorruptIndex = 2,   // footer/index fails validation
  kCorruptRecord = 3,  // record metadata lies about the stream
  kIo = 4,             // backing read failed (possibly transient)
};

// Typed failure for hostile or damaged archives. Derives StatusError (and
// therefore std::runtime_error), so existing catch sites keep working while
// the shard manager can classify: every fault is kDataLoss except kIo, which
// maps to kUnavailable and is eligible for retry.
class ArchiveError : public StatusError {
 public:
  ArchiveError(ArchiveFault fault, const std::string& message)
      : StatusError(fault == ArchiveFault::kIo ? ErrorCode::kUnavailable
                                               : ErrorCode::kDataLoss,
                    message),
        fault_(fault) {}

  ArchiveFault fault() const { return fault_; }

 private:
  ArchiveFault fault_;
};

// One record's metadata plus the byte span of its payload inside the archive.
struct RecordRef {
  std::int64_t variable = 0;
  std::int64_t t0 = 0;
  std::int64_t valid_frames = 0;
  std::uint64_t offset = 0;  // absolute payload offset (see backing notes)
  std::uint64_t length = 0;  // payload byte count
};

class ArchiveReader {
 public:
  // Opens an archive file. v3 archives are indexed without reading the record
  // area; v1/v2 archives are scanned once.
  static ArchiveReader FromFile(const std::string& path);
  // Same over an in-memory byte buffer (takes ownership of the copy).
  static ArchiveReader FromBytes(std::vector<std::uint8_t> bytes);
  // Wraps an already-deserialized archive without copying its payloads. The
  // archive must outlive the reader.
  static ArchiveReader FromArchive(const DatasetArchive& archive);

  // Move operations are defined out of line (with the destructor): Source is
  // incomplete here, and defaulting them in-class would force callers that
  // aggregate readers (vectors of shards) to instantiate its deleter.
  ArchiveReader(ArchiveReader&&) noexcept;
  ArchiveReader& operator=(ArchiveReader&&) noexcept;
  ArchiveReader(const ArchiveReader&) = delete;
  ArchiveReader& operator=(const ArchiveReader&) = delete;
  ~ArchiveReader();

  const std::string& codec() const { return codec_; }
  const Shape& dataset_shape() const { return shape_; }
  std::int64_t window() const { return window_; }
  const data::FrameNorm& norm(std::int64_t variable, std::int64_t t) const;
  const std::vector<RecordRef>& records() const { return records_; }

  // Fetches one record's payload. File-backed v3 readers read exactly that
  // record's byte span; thread-safe.
  std::vector<std::uint8_t> ReadPayload(std::size_t record) const;

  // Zero-copy alternative when the backing already holds the payload as its
  // own vector (FromArchive readers): returns a pointer into the archive, or
  // nullptr for file/bytes backings — fall back to ReadPayload then.
  const std::vector<std::uint8_t>* PayloadView(std::size_t record) const;

  // Indices (into records()) of `variable`'s records overlapping
  // [t_begin, t_end), sorted by t0.
  std::vector<std::size_t> RecordsFor(std::int64_t variable,
                                      std::int64_t t_begin,
                                      std::int64_t t_end) const;

  // Payload bytes fetched through ReadPayload so far — lets tests and benches
  // verify that a window query does not drag the whole archive through I/O.
  std::uint64_t payload_bytes_fetched() const;
  // Total size of the backing stream (0 for FromArchive readers).
  std::uint64_t archive_bytes() const;

  class Source;  // internal byte source (file or memory)

 private:
  ArchiveReader();
  void ParseSource();      // typed-error wrapper around ParseSourceImpl
  void ParseSourceImpl();
  void BuildVariableIndex();

  std::string codec_ = "glsc";
  Shape shape_;
  std::int64_t window_ = 0;
  std::vector<data::FrameNorm> norms_;  // unused when archive_ is set
  std::vector<RecordRef> records_;
  // Per-variable record indices sorted by t0, for range queries.
  std::vector<std::vector<std::size_t>> by_variable_;

  std::unique_ptr<Source> source_;           // file/bytes backing
  const DatasetArchive* archive_ = nullptr;  // borrowed backing
  std::unique_ptr<std::atomic<std::uint64_t>> fetched_;
};

}  // namespace glsc::core
