#include "core/filters.h"

#include <algorithm>
#include <cstring>

#include "core/archive_reader.h"  // ArchiveError
#include "tensor/simd/kernels.h"
#include "tensor/workspace.h"
#include "util/check.h"

namespace glsc::core {
namespace {

constexpr std::uint64_t kMaxGlzInput = 1ull << 31;
// One 3-byte sequence (token + u16 offset) can emit 15+4 match bytes without
// extension bytes, and every extension byte adds at most 255 — so the
// worst-case decode expansion per stored byte is bounded by 255.
constexpr std::uint64_t kGlzMaxExpansion = 255;

#define GLSC_FILTER_CHECK(cond, msg)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream glsc_os_;                                        \
      glsc_os_ << msg;                                                    \
      throw ::glsc::core::ArchiveError(ArchiveFault::kCorruptRecord,      \
                                       glsc_os_.str());                   \
    }                                                                     \
  } while (0)

int Log2Elem(std::int64_t elem) {
  switch (elem) {
    case 1:
      return 0;
    case 2:
      return 1;
    case 4:
      return 2;
    case 8:
      return 3;
    default:
      GLSC_CHECK_MSG(false, "filter element size " << elem);
      return 0;
  }
}

// Byte scratch that draws from the caller's Workspace when available (the
// serving path's steady-state zero-heap-allocation invariant) and from the
// heap otherwise. Workspace::Allocate hands out floats; bytes are rounded up.
class ByteScratch {
 public:
  explicit ByteScratch(tensor::Workspace* ws) : ws_(ws) {}

  std::uint8_t* Get(std::size_t n) {
    if (n == 0) return nullptr;
    if (ws_ != nullptr) {
      return reinterpret_cast<std::uint8_t*>(
          ws_->Allocate(static_cast<std::int64_t>((n + 3) / 4)));
    }
    heap_.emplace_back(n);
    return heap_.back().data();
  }

 private:
  tensor::Workspace* ws_;
  std::vector<std::vector<std::uint8_t>> heap_;
};

// ---- chain transforms ----

// Bitshuffle processes the largest 8*elem-divisible prefix; the tail is
// copied verbatim (see the layout comment in filters.h).
std::int64_t BitshuffledPrefix(std::size_t n, std::int64_t elem) {
  const std::int64_t nelem_p =
      (static_cast<std::int64_t>(n) / elem) & ~std::int64_t{7};
  return nelem_p * elem;
}

void BitshuffleForward(const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n, std::int64_t elem, ByteScratch* scratch) {
  const auto& k = simd::ActiveKernels();
  const std::int64_t prefix = BitshuffledPrefix(n, elem);
  const std::int64_t nelem_p = prefix / elem;
  if (elem == 1) {
    k.bit_transpose(src, dst, prefix);
  } else if (prefix > 0) {
    std::uint8_t* planes = scratch->Get(static_cast<std::size_t>(prefix));
    k.shuffle_bytes(src, planes, nelem_p, elem);
    for (std::int64_t p = 0; p < elem; ++p) {
      k.bit_transpose(planes + p * nelem_p, dst + p * nelem_p, nelem_p);
    }
  }
  if (static_cast<std::size_t>(prefix) < n) {
    std::memcpy(dst + prefix, src + prefix, n - prefix);
  }
}

void BitshuffleInverse(const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n, std::int64_t elem, ByteScratch* scratch) {
  const auto& k = simd::ActiveKernels();
  const std::int64_t prefix = BitshuffledPrefix(n, elem);
  const std::int64_t nelem_p = prefix / elem;
  if (elem == 1) {
    k.bit_untranspose(src, dst, prefix);
  } else if (prefix > 0) {
    std::uint8_t* planes = scratch->Get(static_cast<std::size_t>(prefix));
    for (std::int64_t p = 0; p < elem; ++p) {
      k.bit_untranspose(src + p * nelem_p, planes + p * nelem_p, nelem_p);
    }
    k.unshuffle_bytes(planes, dst, nelem_p, elem);
  }
  if (static_cast<std::size_t>(prefix) < n) {
    std::memcpy(dst + prefix, src + prefix, n - prefix);
  }
}

// ---- glz encoder ----

void PutExtLength(std::vector<std::uint8_t>* out, std::size_t v) {
  while (v >= 255) {
    out->push_back(255);
    v -= 255;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

void EmitLiterals(std::vector<std::uint8_t>* out, const std::uint8_t* src,
                  std::size_t begin, std::size_t end) {
  const std::size_t lit = end - begin;
  if (lit == 0) return;
  out->push_back(static_cast<std::uint8_t>(std::min<std::size_t>(lit, 15)
                                           << 4));
  if (lit >= 15) PutExtLength(out, lit - 15);
  out->insert(out->end(), src + begin, src + end);
}

void EmitSequence(std::vector<std::uint8_t>* out, const std::uint8_t* src,
                  std::size_t anchor, std::size_t ip, std::size_t offset,
                  std::size_t len) {
  const std::size_t lit = ip - anchor;
  const std::size_t ml = len - 4;
  out->push_back(static_cast<std::uint8_t>(
      (std::min<std::size_t>(lit, 15) << 4) | std::min<std::size_t>(ml, 15)));
  if (lit >= 15) PutExtLength(out, lit - 15);
  out->insert(out->end(), src + anchor, src + ip);
  out->push_back(static_cast<std::uint8_t>(offset & 0xFF));
  out->push_back(static_cast<std::uint8_t>(offset >> 8));
  if (ml >= 15) PutExtLength(out, ml - 15);
}

}  // namespace

std::uint8_t FilterSpec::WireFilter() const {
  return static_cast<std::uint8_t>(static_cast<int>(chain) |
                                   (Log2Elem(elem) << 4));
}

FilterSpec FilterSpec::FromWire(std::uint8_t filter, std::uint8_t backend) {
  GLSC_FILTER_CHECK((filter & ~0x73u) == 0,
                    "corrupt record: reserved filter bits 0x"
                        << std::hex << static_cast<int>(filter));
  FilterSpec spec;
  spec.chain = static_cast<FilterChain>(filter & 0x3);
  const int log2_elem = (filter >> 4) & 0x7;
  GLSC_FILTER_CHECK(log2_elem <= 3, "corrupt record: filter element size 2^"
                                        << log2_elem);
  spec.elem = std::int64_t{1} << log2_elem;
  GLSC_FILTER_CHECK(spec.chain != FilterChain::kNone || spec.elem == 1,
                    "corrupt record: element size on an empty filter chain");
  GLSC_FILTER_CHECK(backend <= 1, "corrupt record: unknown filter backend "
                                      << static_cast<int>(backend));
  spec.backend = static_cast<FilterBackend>(backend);
  return spec;
}

void ValidateFilteredSizes(const FilterSpec& spec, std::uint64_t stored_size,
                           std::uint64_t raw_size) {
  GLSC_FILTER_CHECK(raw_size <= kMaxGlzInput,
                    "corrupt record: raw payload size " << raw_size);
  if (spec.backend == FilterBackend::kNone) {
    GLSC_FILTER_CHECK(stored_size == raw_size,
                      "corrupt record: unbacked filter sizes disagree ("
                          << stored_size << " stored, " << raw_size
                          << " raw)");
  } else {
    GLSC_FILTER_CHECK(raw_size <= stored_size * kGlzMaxExpansion + 64,
                      "corrupt record: raw size " << raw_size
                                                  << " implausible for "
                                                  << stored_size
                                                  << " stored bytes");
  }
}

std::vector<std::uint8_t> GlzCompress(const std::uint8_t* src, std::size_t n) {
  GLSC_CHECK_MSG(n <= kMaxGlzInput, "glz input too large: " << n);
  std::vector<std::uint8_t> out;
  if (n == 0) return out;
  out.reserve(n / 2 + 16);

  int bits = 8;
  while (bits < 15 && (std::size_t{1} << bits) < n) ++bits;
  std::vector<std::uint32_t> table(std::size_t{1} << bits, 0);  // pos + 1
  const auto hash = [bits](std::uint32_t v) {
    return (v * 2654435761u) >> (32 - bits);
  };
  const auto load32 = [src](std::size_t i) {
    std::uint32_t v;
    std::memcpy(&v, src + i, sizeof v);
    return v;
  };

  std::size_t ip = 0, anchor = 0, miss = 0;
  // The margin keeps every 4-byte probe in bounds; the remainder is emitted
  // as literals. Greedy matching with LZ4-style skip acceleration: long
  // stretches without a match speed up instead of hammering the hash table.
  while (ip + 13 <= n) {
    const std::uint32_t v = load32(ip);
    const std::uint32_t h = hash(v);
    const std::size_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(ip + 1);
    if (cand != 0 && ip - (cand - 1) <= 0xFFFF && load32(cand - 1) == v) {
      const std::size_t match = cand - 1;
      const std::size_t max_len = n - ip;
      std::size_t len = 4;
      while (len < max_len && src[match + len] == src[ip + len]) ++len;
      EmitSequence(&out, src, anchor, ip, ip - match, len);
      // Seed the table inside the match so adjacent repeats are found.
      if (ip + len + 13 <= n) {
        const std::size_t mid = ip + (len >> 1);
        table[hash(load32(mid))] = static_cast<std::uint32_t>(mid + 1);
      }
      ip += len;
      anchor = ip;
      miss = 0;
    } else {
      ip += 1 + (miss >> 6);
      ++miss;
    }
  }
  EmitLiterals(&out, src, anchor, n);
  return out;
}

void GlzDecompress(const std::uint8_t* src, std::size_t src_n,
                   std::uint8_t* dst, std::size_t dst_n) {
  std::size_t ip = 0, op = 0;
  while (ip < src_n) {
    const std::uint8_t token = src[ip++];
    std::size_t lit = token >> 4;
    if (lit == 15) {
      std::uint8_t b;
      do {
        GLSC_FILTER_CHECK(ip < src_n, "corrupt glz: truncated literal length");
        b = src[ip++];
        lit += b;
        GLSC_FILTER_CHECK(lit <= dst_n, "corrupt glz: literal length " << lit);
      } while (b == 255);
    }
    GLSC_FILTER_CHECK(lit <= src_n - ip,
                      "corrupt glz: literal run past input");
    GLSC_FILTER_CHECK(lit <= dst_n - op,
                      "corrupt glz: literal run past output");
    if (lit != 0) {
      std::memcpy(dst + op, src + ip, lit);
      ip += lit;
      op += lit;
    }
    if (ip == src_n) break;  // stream may end after a literal run
    GLSC_FILTER_CHECK(src_n - ip >= 2, "corrupt glz: truncated match offset");
    const std::size_t offset =
        src[ip] | (static_cast<std::size_t>(src[ip + 1]) << 8);
    ip += 2;
    GLSC_FILTER_CHECK(offset != 0 && offset <= op,
                      "corrupt glz: match offset " << offset << " at " << op);
    std::size_t ml = token & 0xF;
    if (ml == 15) {
      std::uint8_t b;
      do {
        GLSC_FILTER_CHECK(ip < src_n, "corrupt glz: truncated match length");
        b = src[ip++];
        ml += b;
        GLSC_FILTER_CHECK(ml <= dst_n, "corrupt glz: match length " << ml);
      } while (b == 255);
    }
    ml += 4;
    GLSC_FILTER_CHECK(ml <= dst_n - op, "corrupt glz: match past output");
    const std::uint8_t* from = dst + op - offset;
    if (offset >= ml) {
      std::memcpy(dst + op, from, ml);
    } else {
      // Overlapping match: the copy IS the repetition, byte order matters.
      for (std::size_t i = 0; i < ml; ++i) dst[op + i] = from[i];
    }
    op += ml;
  }
  GLSC_FILTER_CHECK(op == dst_n, "corrupt glz: decoded " << op << " of "
                                                         << dst_n << " bytes");
}

std::vector<std::uint8_t> EncodeFiltered(const std::uint8_t* src,
                                         std::size_t n,
                                         const FilterSpec& spec) {
  ByteScratch scratch(nullptr);
  const std::uint8_t* filtered = src;
  std::uint8_t* work = nullptr;
  if (spec.chain == FilterChain::kDelta ||
      spec.chain == FilterChain::kDeltaBitshuffle) {
    work = scratch.Get(n);
    simd::ActiveKernels().delta_encode(filtered, work,
                                       static_cast<std::int64_t>(n),
                                       spec.elem);
    filtered = work;
  }
  if (spec.chain == FilterChain::kBitshuffle ||
      spec.chain == FilterChain::kDeltaBitshuffle) {
    std::uint8_t* shuffled = scratch.Get(n);
    BitshuffleForward(filtered, shuffled, n, spec.elem, &scratch);
    filtered = shuffled;
  }
  if (spec.backend == FilterBackend::kGlz) {
    return GlzCompress(filtered, n);
  }
  return std::vector<std::uint8_t>(filtered, filtered + n);
}

FilteredBlock EncodeWithSelection(const std::uint8_t* src, std::size_t n,
                                  std::int64_t elem_hint) {
  FilteredBlock raw;
  raw.stored.assign(src, src + n);
  // Too small to amortize even a trial; store raw.
  if (n < 128) return raw;

  const std::size_t sample_n = std::min<std::size_t>(n, 8192);
  const FilterSpec candidates[] = {
      {FilterChain::kNone, 1, FilterBackend::kGlz},
      {FilterChain::kDelta, elem_hint, FilterBackend::kGlz},
      {FilterChain::kBitshuffle, elem_hint, FilterBackend::kGlz},
      {FilterChain::kDeltaBitshuffle, elem_hint, FilterBackend::kGlz},
  };
  FilterSpec best;
  // A candidate must beat raw storage on the sample by a real margin (2%):
  // filtered records cost decode work, so a wash goes to raw.
  std::size_t best_size = sample_n - sample_n / 50;
  for (const FilterSpec& spec : candidates) {
    const std::size_t size = EncodeFiltered(src, sample_n, spec).size();
    if (size < best_size) {
      best_size = size;
      best = spec;
    }
  }
  if (best.IsRaw()) return raw;

  FilteredBlock chosen;
  chosen.spec = best;
  chosen.stored = EncodeFiltered(src, n, best);
  // The sample can lie about the remainder; never ship an expansion.
  if (chosen.stored.size() >= n) return raw;
  return chosen;
}

void DecodeFiltered(const std::uint8_t* stored, std::size_t stored_n,
                    const FilterSpec& spec, std::uint8_t* dst,
                    std::size_t raw_n, tensor::Workspace* ws) {
  ByteScratch scratch(ws);
  const bool bitshuffled = spec.chain == FilterChain::kBitshuffle ||
                           spec.chain == FilterChain::kDeltaBitshuffle;
  const bool deltad = spec.chain == FilterChain::kDelta ||
                      spec.chain == FilterChain::kDeltaBitshuffle;

  // Stage 1: backend -> chain-filtered bytes (raw_n of them).
  const std::uint8_t* filtered = stored;
  if (spec.backend == FilterBackend::kGlz) {
    // When no bitshuffle follows, decompress straight into dst and finish
    // the delta in place — the common path touches each byte once.
    std::uint8_t* target = bitshuffled ? scratch.Get(raw_n) : dst;
    GlzDecompress(stored, stored_n, target, raw_n);
    filtered = target;
  } else {
    GLSC_FILTER_CHECK(stored_n == raw_n,
                      "corrupt record: unbacked filter sizes disagree");
  }

  // Stage 2: invert the chain.
  if (bitshuffled) {
    BitshuffleInverse(filtered, dst, raw_n, spec.elem, &scratch);
  } else if (filtered != dst && raw_n != 0) {
    std::memcpy(dst, filtered, raw_n);
  }
  if (deltad) {
    simd::ActiveKernels().delta_decode(dst, static_cast<std::int64_t>(raw_n),
                                       spec.elem);
  }
}

}  // namespace glsc::core
