// Stage-1 training loop (§3.4, §4.3): randomly cropped patches, Adam, a
// stepped learning-rate decay, and a lambda (rate weight) that doubles at the
// schedule midpoint, mirroring the paper's 1e-5 -> doubled-at-250K recipe at
// reduced scale.
#pragma once

#include "compress/vae.h"
#include "data/dataset.h"

namespace glsc::compress {

struct VaeTrainConfig {
  std::int64_t iterations = 800;
  std::int64_t batch_size = 8;
  std::int64_t crop = 32;
  float learning_rate = 1e-3f;
  // LR halves every `lr_decay_every` iterations (paper: 0.5x every 100K).
  std::int64_t lr_decay_every = 400;
  // Paper: 1e-5 doubled at the halfway mark, with R summed over the batch
  // (Eq. 8). At reproduction scale the distortion floor is higher than the
  // paper's (short schedule, small nets), so the default lambda sits lower to
  // keep the rate term subdominant until reconstruction is good; the doubling
  // step is retained.
  double lambda_init = 1e-6;
  // Lambda doubles once at this iteration (paper: at the halfway mark).
  std::int64_t lambda_double_at = 400;
  double grad_clip = 5.0;
  std::int64_t log_every = 200;
  std::uint64_t seed = 23;
};

// Trains in place; returns the final-window average loss info.
VaeHyperprior::LossInfo TrainVae(VaeHyperprior* model,
                                 const data::SequenceDataset& dataset,
                                 const VaeTrainConfig& config);

}  // namespace glsc::compress
