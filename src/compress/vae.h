// VAE with scale-hyperprior transform coder (§3.1 of the paper, following
// Ballé/Minnen). Pipeline:
//
//   x --E--> y --round--> y_hat --D--> x_hat
//             \--Eh--> z --round--> z_hat --Dh--> (mu, sigma) for coding y_hat
//
// Training replaces rounding with additive U(-1/2,1/2) noise and minimizes
//   L = MSE(x, x_hat) + lambda * (bits(y) + bits(z))     (Eq. 8)
// with the Gaussian conditional rate for y and the factorized logistic prior
// for z. Inference performs real rounding and real range coding, so reported
// compressed sizes are actual bytes.
//
// Geometry: stride-4 total downsampling (two stride-2 convs); inputs must
// have H, W divisible by 4.
#pragma once

#include <memory>

#include "codec/gaussian_model.h"
#include "compress/factorized_prior.h"
#include "nn/activations.h"
#include "nn/conv.h"
#include "nn/layer.h"
#include "util/rng.h"

namespace glsc::compress {

struct VaeConfig {
  std::int64_t input_channels = 1;
  std::int64_t hidden_channels = 32;
  std::int64_t latent_channels = 16;  // paper: 64; scaled default
  std::int64_t hyper_channels = 8;
  // Fixed gain on the encoder output. Integer rounding is only informative
  // when latents span many quantization bins; long-schedule training learns
  // this spread, short-schedule training gets it as an inductive bias.
  float latent_scale = 8.0f;
  std::uint64_t seed = 17;
};

// One frame-batch compressed to real bitstreams.
struct VaeBitstream {
  std::vector<std::uint8_t> y_stream;
  std::vector<std::uint8_t> z_stream;
  Shape y_shape;
  Shape z_shape;

  std::size_t TotalBytes() const { return y_stream.size() + z_stream.size(); }
};

class VaeHyperprior {
 public:
  explicit VaeHyperprior(const VaeConfig& config);

  const VaeConfig& config() const { return config_; }

  struct LossInfo {
    double mse = 0.0;
    double bits_y = 0.0;
    double bits_z = 0.0;
    double loss = 0.0;
    std::int64_t pixels = 0;
    double bpp() const {
      return pixels > 0 ? (bits_y + bits_z) / static_cast<double>(pixels) : 0.0;
    }
  };

  // One full RD forward+backward over a batch x [B, C_in, H, W]; gradients
  // are accumulated into Params(). Caller owns optimizer step / zero-grad.
  LossInfo TrainingForwardBackward(const Tensor& x, double lambda, Rng& rng);

  // ---- inference-time pieces ----
  // Continuous encoder output y = E(x).
  Tensor EncodeLatent(const Tensor& x);
  // Decoder reconstruction from (quantized or generated) latents.
  Tensor DecodeLatent(const Tensor& y_hat);
  // Workspace variant: the reconstruction (and all decoder activations)
  // borrows arena memory valid until the caller's scope rewinds.
  Tensor DecodeLatent(const Tensor& y_hat, tensor::Workspace* ws);
  // Batched workspace variant: the decoder convolutions fuse all leading-dim
  // frames (stacked windows) into merged GEMMs. Byte-identical output.
  Tensor DecodeLatentBatched(const Tensor& y_hat, tensor::Workspace* ws);
  // Full entropy-coded compression of a frame batch.
  VaeBitstream Compress(const Tensor& x);
  // Compression of pre-computed latents (the GLSC pipeline quantizes
  // keyframe latents that were encoded separately).
  VaeBitstream CompressLatents(const Tensor& y_continuous);
  // Recovers quantized latents from the bitstream. The workspace variant
  // allocates the hyper-decoder activations and (mu, sigma) from `ws`; the
  // returned latents are owned either way (they outlive decode scopes).
  Tensor DecompressLatents(const VaeBitstream& bits);
  Tensor DecompressLatents(const VaeBitstream& bits, tensor::Workspace* ws);
  // Estimated rate (bits) of given integer latents under the hyperprior,
  // without producing a bitstream (used for fast RD sweeps).
  double EstimateLatentBits(const Tensor& y_hat);

  std::vector<nn::Param*> Params();
  void Save(ByteWriter* out);
  void Load(ByteReader* in);

 private:
  // Runs the hyper path on integer latents: z_hat plus (mu, sigma) for y.
  void HyperForwardInference(const Tensor& y, Tensor* z_hat, Tensor* mu,
                             Tensor* sigma);

  VaeConfig config_;
  nn::Sequential encoder_;
  nn::Sequential decoder_;
  nn::Sequential hyper_encoder_;
  nn::Sequential hyper_decoder_;  // outputs 2*latent_channels (mu, sigma_raw)
  FactorizedPrior prior_;
  codec::GaussianConditionalModel gaussian_codec_;
};

}  // namespace glsc::compress
