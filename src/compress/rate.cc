#include "compress/rate.h"

#include <cmath>

#include "util/check.h"

namespace glsc::compress {
namespace {

constexpr double kLn2 = 0.6931471805599453;
constexpr double kSigmaFloor = 0.05;  // matches the codec's minimum scale
constexpr double kPmfFloor = 1e-9;

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }
double NormalPdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * 3.14159265358979323846);
}

}  // namespace

double GaussianRateBits(const Tensor& y, const Tensor& mu, const Tensor& sigma,
                        Tensor* grad_y, Tensor* grad_mu, Tensor* grad_sigma) {
  GLSC_CHECK(y.shape() == mu.shape() && y.shape() == sigma.shape());
  const std::int64_t n = y.numel();
  const float* py = y.data();
  const float* pm = mu.data();
  const float* ps = sigma.data();
  float* gy = grad_y != nullptr ? grad_y->data() : nullptr;
  float* gm = grad_mu != nullptr ? grad_mu->data() : nullptr;
  float* gs = grad_sigma != nullptr ? grad_sigma->data() : nullptr;

  double total_bits = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const bool clamped = ps[i] < kSigmaFloor;
    const double s = clamped ? kSigmaFloor : static_cast<double>(ps[i]);
    const double a = (py[i] + 0.5 - pm[i]) / s;
    const double b = (py[i] - 0.5 - pm[i]) / s;
    const double p_raw = NormalCdf(a) - NormalCdf(b);
    const bool floored = p_raw < kPmfFloor;
    const double p = floored ? kPmfFloor : p_raw;
    total_bits += -std::log2(p);
    if (gy == nullptr) continue;

    if (floored) continue;  // zero gradient through the floor
    const double pdf_a = NormalPdf(a);
    const double pdf_b = NormalPdf(b);
    // dp/dy = (pdf(a) - pdf(b)) / s ; dp/dmu = -dp/dy ;
    // dp/ds = -(a*pdf(a) - b*pdf(b)) / s.
    const double dp_dy = (pdf_a - pdf_b) / s;
    const double dp_ds = -(a * pdf_a - b * pdf_b) / s;
    const double scale = -1.0 / (p * kLn2);  // d(-log2 p)/dp
    gy[i] += static_cast<float>(scale * dp_dy);
    gm[i] += static_cast<float>(-scale * dp_dy);
    if (!clamped) gs[i] += static_cast<float>(scale * dp_ds);
  }
  return total_bits;
}

double GaussianRateBits(const Tensor& y, const Tensor& mu,
                        const Tensor& sigma) {
  return GaussianRateBits(y, mu, sigma, nullptr, nullptr, nullptr);
}

}  // namespace glsc::compress
