// Learnable factorized prior over the hyperlatent z: each channel is modeled
// with a discretized logistic density with trainable location mu_c and scale
// s_c = exp(log_s_c). This stands in for the non-parametric factorized
// density of Ballé et al. [4] — it is differentiable for training and shares
// its (mu, s) values with codec::LogisticChannelCodec for actual coding, so
// estimated and coded rates agree.
#pragma once

#include <vector>

#include "codec/factorized_prior.h"
#include "nn/layer.h"

namespace glsc::compress {

class FactorizedPrior {
 public:
  explicit FactorizedPrior(std::int64_t channels,
                           const std::string& name = "prior");

  std::int64_t channels() const { return channels_; }

  // Differentiable rate of noisy z~ [B, C, ...]: returns total bits and
  // accumulates d(bits)/dz into grad_z (same shape) and parameter grads.
  double RateBits(const Tensor& z, Tensor* grad_z);
  // Rate without gradients.
  double RateBits(const Tensor& z) const;

  // Coding hooks (integer-valued z).
  std::vector<std::uint8_t> Encode(const Tensor& z) const;
  Tensor Decode(const std::vector<std::uint8_t>& bytes, const Shape& shape) const;

  std::vector<nn::Param*> Params() { return {&mu_, &log_s_}; }

 private:
  std::vector<float> MuValues() const;
  std::vector<float> ScaleValues() const;

  std::int64_t channels_;
  nn::Param mu_;     // [C]
  nn::Param log_s_;  // [C]
  mutable codec::LogisticChannelCodec codec_;
};

}  // namespace glsc::compress
