#include "compress/vae.h"

#include <cmath>

#include "compress/rate.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace glsc::compress {
namespace {

// sigma = softplus(raw) + floor keeps scales positive with smooth gradients.
constexpr float kSigmaFloor = 1e-2f;

float Softplus(float x) {
  // Numerically stable: log1p(exp(-|x|)) + max(x, 0).
  return std::log1p(std::exp(-std::fabs(x))) + std::max(x, 0.0f);
}

float SoftplusGrad(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Splits the hyper-decoder output [B, 2*lat, h, w] into mu and sigma_raw
// (both [B, lat, h, w], preallocated by the caller). Every consumer of the
// hyper path — training, inference, both DecompressLatents overloads — must
// agree on this layout and on sigma = Softplus(raw) + kSigmaFloor.
void SplitHyperParams(const Tensor& params, std::int64_t lat, Tensor* mu,
                      Tensor* sigma_raw) {
  const std::int64_t batch = params.dim(0);
  const std::int64_t hw = params.dim(2) * params.dim(3);
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* src = params.data() + b * 2 * lat * hw;
    std::copy_n(src, lat * hw, mu->data() + b * lat * hw);
    std::copy_n(src + lat * hw, lat * hw, sigma_raw->data() + b * lat * hw);
  }
}

}  // namespace

VaeHyperprior::VaeHyperprior(const VaeConfig& config)
    : config_(config), prior_(config.hyper_channels) {
  Rng rng(config.seed);
  const std::int64_t ch = config.hidden_channels;
  const std::int64_t lat = config.latent_channels;
  const std::int64_t hyp = config.hyper_channels;

  // Encoder: C_in -> ch (s2) -> ch (s2) -> lat.
  encoder_.Emplace<nn::Conv2d>(config.input_channels, ch, 5, 2, 2, rng,
                               "enc.conv1");
  encoder_.Emplace<nn::SiLU>();
  encoder_.Emplace<nn::Conv2d>(ch, ch, 5, 2, 2, rng, "enc.conv2");
  encoder_.Emplace<nn::SiLU>();
  encoder_.Emplace<nn::Conv2d>(ch, lat, 3, 1, 1, rng, "enc.conv3");
  encoder_.Emplace<nn::FixedScale>(config.latent_scale);

  // Decoder mirrors with nearest-up + conv.
  decoder_.Emplace<nn::Conv2d>(lat, ch, 3, 1, 1, rng, "dec.conv1");
  decoder_.Emplace<nn::SiLU>();
  decoder_.Emplace<nn::NearestUpsample2x>();
  decoder_.Emplace<nn::Conv2d>(ch, ch, 5, 1, 2, rng, "dec.conv2");
  decoder_.Emplace<nn::SiLU>();
  decoder_.Emplace<nn::NearestUpsample2x>();
  decoder_.Emplace<nn::Conv2d>(ch, ch, 5, 1, 2, rng, "dec.conv3");
  decoder_.Emplace<nn::SiLU>();
  decoder_.Emplace<nn::Conv2d>(ch, config.input_channels, 3, 1, 1, rng,
                               "dec.conv4");

  // Hyper path: lat -> hyp (s2) -> hyp (s2); decoder mirrors to 2*lat.
  hyper_encoder_.Emplace<nn::Conv2d>(lat, hyp, 3, 2, 1, rng, "henc.conv1");
  hyper_encoder_.Emplace<nn::SiLU>();
  hyper_encoder_.Emplace<nn::Conv2d>(hyp, hyp, 3, 2, 1, rng, "henc.conv2");

  hyper_decoder_.Emplace<nn::Conv2d>(hyp, hyp, 3, 1, 1, rng, "hdec.conv1");
  hyper_decoder_.Emplace<nn::SiLU>();
  hyper_decoder_.Emplace<nn::NearestUpsample2x>();
  hyper_decoder_.Emplace<nn::Conv2d>(hyp, hyp, 3, 1, 1, rng, "hdec.conv2");
  hyper_decoder_.Emplace<nn::SiLU>();
  hyper_decoder_.Emplace<nn::NearestUpsample2x>();
  hyper_decoder_.Emplace<nn::Conv2d>(hyp, 2 * lat, 3, 1, 1, rng, "hdec.conv3");
}

VaeHyperprior::LossInfo VaeHyperprior::TrainingForwardBackward(const Tensor& x,
                                                               double lambda,
                                                               Rng& rng) {
  GLSC_CHECK(x.rank() == 4 && x.dim(1) == config_.input_channels);
  GLSC_CHECK_MSG(x.dim(2) % 4 == 0 && x.dim(3) % 4 == 0,
                 "input H,W must be divisible by 4, got "
                     << x.dim(2) << "x" << x.dim(3));
  const std::int64_t lat = config_.latent_channels;

  // ---------- forward ----------
  Tensor y = encoder_.Forward(x, /*training=*/true);

  // Noise-proxy quantization of y (for decoder + rate) — identity gradient.
  Tensor y_noisy = Tensor::Empty(y.shape());
  {
    const float* py = y.data();
    float* pn = y_noisy.data();
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      pn[i] = py[i] + rng.UniformF(-0.5f, 0.5f);
    }
  }

  Tensor z = hyper_encoder_.Forward(y, /*training=*/true);
  Tensor z_noisy = Tensor::Empty(z.shape());
  {
    const float* pz = z.data();
    float* pn = z_noisy.data();
    for (std::int64_t i = 0; i < z.numel(); ++i) {
      pn[i] = pz[i] + rng.UniformF(-0.5f, 0.5f);
    }
  }

  Tensor params = hyper_decoder_.Forward(z_noisy, /*training=*/true);
  GLSC_CHECK(params.dim(1) == 2 * lat);
  const std::int64_t batch = params.dim(0);
  const std::int64_t hw = params.dim(2) * params.dim(3);

  Tensor mu = Tensor::Empty({batch, lat, params.dim(2), params.dim(3)});
  Tensor sigma_raw = Tensor::Empty(mu.shape());
  SplitHyperParams(params, lat, &mu, &sigma_raw);
  Tensor sigma = Map(sigma_raw,
                     [](float v) { return Softplus(v) + kSigmaFloor; });

  Tensor x_hat = decoder_.Forward(y_noisy, /*training=*/true);

  // ---------- losses ----------
  LossInfo info;
  info.pixels = x.numel();
  info.mse = MeanSquaredError(x, x_hat);

  Tensor g_y_rate(y.shape());
  Tensor g_mu(mu.shape());
  Tensor g_sigma(sigma.shape());
  info.bits_y = GaussianRateBits(y_noisy, mu, sigma, &g_y_rate, &g_mu,
                                 &g_sigma);

  Tensor g_z_rate(z.shape());
  info.bits_z = prior_.RateBits(z_noisy, &g_z_rate);
  // Rate gradients above are for unweighted bits; apply lambda now.
  MulScalarInPlace(&g_y_rate, static_cast<float>(lambda));
  MulScalarInPlace(&g_mu, static_cast<float>(lambda));
  MulScalarInPlace(&g_sigma, static_cast<float>(lambda));
  MulScalarInPlace(&g_z_rate, static_cast<float>(lambda));
  // The prior's parameter gradients were accumulated unweighted; rescale the
  // contribution by adjusting directly (prior params receive only rate grads).
  for (nn::Param* p : prior_.Params()) {
    MulScalarInPlace(&p->grad, static_cast<float>(lambda));
  }

  info.loss = info.mse + lambda * (info.bits_y + info.bits_z);

  // ---------- backward ----------
  // dMSE/dx_hat = 2 (x_hat - x) / numel.
  Tensor g_xhat = Sub(x_hat, x);
  MulScalarInPlace(&g_xhat, 2.0f / static_cast<float>(x.numel()));
  Tensor g_y_from_dec = decoder_.Backward(g_xhat);

  // Through sigma's softplus into the hyper-decoder output layout.
  Tensor g_params = Tensor::Empty(params.shape());
  for (std::int64_t b = 0; b < batch; ++b) {
    float* dst = g_params.data() + b * 2 * lat * hw;
    std::copy_n(g_mu.data() + b * lat * hw, lat * hw, dst);
    const float* graw = sigma_raw.data() + b * lat * hw;
    const float* gsig = g_sigma.data() + b * lat * hw;
    float* draw = dst + lat * hw;
    for (std::int64_t i = 0; i < lat * hw; ++i) {
      draw[i] = gsig[i] * SoftplusGrad(graw[i]);
    }
  }
  Tensor g_z = hyper_decoder_.Backward(g_params);
  Axpy(1.0f, g_z_rate, &g_z);  // prior rate grad w.r.t. z~ (identity noise)
  Tensor g_y_from_hyper = hyper_encoder_.Backward(g_z);

  // Combine all gradients flowing into y: decoder path and rate path pass
  // through the additive noise with identity Jacobian; hyper path is direct.
  Tensor g_y = g_y_from_dec;
  Axpy(1.0f, g_y_rate, &g_y);
  Axpy(1.0f, g_y_from_hyper, &g_y);
  encoder_.Backward(g_y);

  return info;
}

Tensor VaeHyperprior::EncodeLatent(const Tensor& x) {
  return encoder_.Forward(x, /*training=*/false);
}

Tensor VaeHyperprior::DecodeLatent(const Tensor& y_hat) {
  return decoder_.Forward(y_hat, /*training=*/false);
}

Tensor VaeHyperprior::DecodeLatent(const Tensor& y_hat, tensor::Workspace* ws) {
  return decoder_.Forward(y_hat, ws);
}

Tensor VaeHyperprior::DecodeLatentBatched(const Tensor& y_hat,
                                          tensor::Workspace* ws) {
  return decoder_.ForwardBatched(y_hat, ws);
}

void VaeHyperprior::HyperForwardInference(const Tensor& y, Tensor* z_hat,
                                          Tensor* mu, Tensor* sigma) {
  // The hyper path downsamples 4x and the hyper-decoder upsamples 4x; they
  // only invert each other when the latent grid is a multiple of 4 (i.e. the
  // input frame edge is a multiple of 16).
  GLSC_CHECK_MSG(y.dim(2) % 4 == 0 && y.dim(3) % 4 == 0,
                 "latent grid " << y.dim(2) << "x" << y.dim(3)
                                << " must be divisible by 4 (frame edge by 16)");
  Tensor z = hyper_encoder_.Forward(y, /*training=*/false);
  *z_hat = Round(z);
  Tensor params = hyper_decoder_.Forward(*z_hat, /*training=*/false);
  const std::int64_t lat = config_.latent_channels;
  const std::int64_t batch = params.dim(0);
  *mu = Tensor::Empty({batch, lat, params.dim(2), params.dim(3)});
  Tensor sigma_raw = Tensor::Empty(mu->shape());
  SplitHyperParams(params, lat, mu, &sigma_raw);
  *sigma = Map(sigma_raw, [](float v) { return Softplus(v) + kSigmaFloor; });
}

VaeBitstream VaeHyperprior::Compress(const Tensor& x) {
  return CompressLatents(EncodeLatent(x));
}

VaeBitstream VaeHyperprior::CompressLatents(const Tensor& y_continuous) {
  VaeBitstream out;
  Tensor z_hat, mu, sigma;
  HyperForwardInference(y_continuous, &z_hat, &mu, &sigma);
  const Tensor y_hat = Round(y_continuous);
  out.y_shape = y_hat.shape();
  out.z_shape = z_hat.shape();
  out.y_stream = gaussian_codec_.Encode(y_hat, mu, sigma);
  out.z_stream = prior_.Encode(z_hat);
  return out;
}

Tensor VaeHyperprior::DecompressLatents(const VaeBitstream& bits) {
  const Tensor z_hat = prior_.Decode(bits.z_stream, bits.z_shape);
  Tensor params = hyper_decoder_.Forward(z_hat, /*training=*/false);
  const std::int64_t lat = config_.latent_channels;
  const std::int64_t batch = params.dim(0);
  Tensor mu = Tensor::Empty({batch, lat, params.dim(2), params.dim(3)});
  Tensor sigma_raw = Tensor::Empty(mu.shape());
  SplitHyperParams(params, lat, &mu, &sigma_raw);
  Tensor sigma =
      Map(sigma_raw, [](float v) { return Softplus(v) + kSigmaFloor; });
  GLSC_CHECK(mu.shape() == bits.y_shape);
  return gaussian_codec_.Decode(bits.y_stream, mu, sigma);
}

Tensor VaeHyperprior::DecompressLatents(const VaeBitstream& bits,
                                        tensor::Workspace* ws) {
  if (ws == nullptr) return DecompressLatents(bits);
  // The (mu, sigma) tensors and all hyper-decoder activations rewind when
  // this scope closes; only the entropy-decoded latents (owned) survive.
  tensor::Workspace::Scope scope(ws);
  const Tensor z_hat = prior_.Decode(bits.z_stream, bits.z_shape);
  Tensor params = hyper_decoder_.Forward(z_hat, ws);
  const std::int64_t lat = config_.latent_channels;
  const std::int64_t batch = params.dim(0);
  Tensor mu = ws->NewTensor({batch, lat, params.dim(2), params.dim(3)});
  Tensor sigma = ws->NewTensor(mu.shape());
  SplitHyperParams(params, lat, &mu, &sigma);  // sigma holds raw values...
  float* psig = sigma.data();
  for (std::int64_t i = 0; i < sigma.numel(); ++i) {
    psig[i] = Softplus(psig[i]) + kSigmaFloor;  // ...activated in place
  }
  GLSC_CHECK(mu.shape() == bits.y_shape);
  return gaussian_codec_.Decode(bits.y_stream, mu, sigma);
}

double VaeHyperprior::EstimateLatentBits(const Tensor& y_hat) {
  Tensor z_hat, mu, sigma;
  HyperForwardInference(y_hat, &z_hat, &mu, &sigma);
  return gaussian_codec_.TheoreticalBits(y_hat, mu, sigma) +
         prior_.RateBits(z_hat);
}

std::vector<nn::Param*> VaeHyperprior::Params() {
  std::vector<nn::Param*> params;
  for (auto* module : {&encoder_, &decoder_, &hyper_encoder_, &hyper_decoder_}) {
    for (nn::Param* p : module->Params()) params.push_back(p);
  }
  for (nn::Param* p : prior_.Params()) params.push_back(p);
  return params;
}

void VaeHyperprior::Save(ByteWriter* out) { nn::SaveParams(Params(), out); }
void VaeHyperprior::Load(ByteReader* in) { nn::LoadParams(Params(), in); }

}  // namespace glsc::compress
