// Differentiable bit-rate estimates used as the R term of the RD training
// loss (Eq. 8). During training, quantization is replaced by additive
// U(-1/2,1/2) noise, and the expected code length of an element is
// -log2 of the noise-convolved density evaluated at the noisy sample.
//
// Two densities are needed:
//   * Gaussian (for y, conditioned on hyperprior-predicted mu/sigma) —
//     gradients flow to y~, mu and sigma;
//   * logistic (for z, the factorized prior) — gradients flow to z~ and the
//     per-channel (mu, log_s) prior parameters (see FactorizedPrior).
#pragma once

#include "tensor/tensor.h"

namespace glsc::compress {

// Total bits of y~ under N(mu, sigma^2) * U(-.5,.5). Accumulates d(bits)/dy,
// d(bits)/dmu, d(bits)/dsigma into the gradient tensors (must be
// zero-initialized or hold prior accumulations; same shape as y).
double GaussianRateBits(const Tensor& y, const Tensor& mu, const Tensor& sigma,
                        Tensor* grad_y, Tensor* grad_mu, Tensor* grad_sigma);

// Rate without gradients (for eval-time estimates).
double GaussianRateBits(const Tensor& y, const Tensor& mu, const Tensor& sigma);

}  // namespace glsc::compress
