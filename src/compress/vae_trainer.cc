#include "compress/vae_trainer.h"

#include "nn/optimizer.h"
#include "util/logging.h"
#include "util/timer.h"

namespace glsc::compress {

VaeHyperprior::LossInfo TrainVae(VaeHyperprior* model,
                                 const data::SequenceDataset& dataset,
                                 const VaeTrainConfig& config) {
  Rng rng(config.seed);
  nn::Adam opt(model->Params(), config.learning_rate);

  Timer timer;
  VaeHyperprior::LossInfo window_avg;
  std::int64_t window_count = 0;
  double lambda = config.lambda_init;

  for (std::int64_t iter = 1; iter <= config.iterations; ++iter) {
    if (iter == config.lambda_double_at) lambda *= 2.0;
    if (config.lr_decay_every > 0 && iter % config.lr_decay_every == 0) {
      opt.set_lr(opt.lr() * 0.5f);
    }

    // Assemble a batch of normalized patches [B, 1, crop, crop].
    std::vector<Tensor> patches;
    patches.reserve(static_cast<std::size_t>(config.batch_size));
    for (std::int64_t b = 0; b < config.batch_size; ++b) {
      Tensor p = dataset.SampleTrainingPatch(config.crop, rng);
      patches.push_back(p.Reshape({1, 1, p.dim(1), p.dim(2)}));
    }
    const Tensor batch = Concat0(patches);

    opt.ZeroGrad();
    const auto info = model->TrainingForwardBackward(batch, lambda, rng);
    opt.ClipGradNorm(config.grad_clip);
    opt.Step();

    window_avg.mse += info.mse;
    window_avg.bits_y += info.bits_y;
    window_avg.bits_z += info.bits_z;
    window_avg.loss += info.loss;
    window_avg.pixels += info.pixels;
    ++window_count;

    if (config.log_every > 0 && iter % config.log_every == 0) {
      LOG_INFO << "vae iter " << iter << "/" << config.iterations
               << " loss=" << window_avg.loss / window_count
               << " mse=" << window_avg.mse / window_count << " bpp="
               << (window_avg.bits_y + window_avg.bits_z) /
                      std::max<std::int64_t>(window_avg.pixels, 1)
               << " (" << timer.Seconds() << "s)";
      if (iter < config.iterations) {
        window_avg = {};
        window_count = 0;
      }
    }
  }
  if (window_count > 0) {
    window_avg.mse /= window_count;
    window_avg.bits_y /= window_count;
    window_avg.bits_z /= window_count;
    window_avg.loss /= window_count;
    window_avg.pixels /= window_count;
  }
  return window_avg;
}

}  // namespace glsc::compress
