#include "compress/factorized_prior.h"

#include <cmath>

#include "util/check.h"

namespace glsc::compress {
namespace {

constexpr double kLn2 = 0.6931471805599453;
constexpr double kPmfFloor = 1e-9;

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

FactorizedPrior::FactorizedPrior(std::int64_t channels, const std::string& name)
    : channels_(channels),
      mu_(name + ".mu", Tensor::Zeros({channels})),
      log_s_(name + ".log_s", Tensor::Full({channels}, 0.0f)) {}

std::vector<float> FactorizedPrior::MuValues() const {
  std::vector<float> v(static_cast<std::size_t>(channels_));
  for (std::int64_t c = 0; c < channels_; ++c) v[c] = mu_.value[c];
  return v;
}

std::vector<float> FactorizedPrior::ScaleValues() const {
  std::vector<float> v(static_cast<std::size_t>(channels_));
  for (std::int64_t c = 0; c < channels_; ++c) {
    v[c] = std::exp(log_s_.value[c]);
  }
  return v;
}

double FactorizedPrior::RateBits(const Tensor& z, Tensor* grad_z) {
  GLSC_CHECK(z.rank() >= 2 && z.dim(1) == channels_);
  const std::int64_t batch = z.dim(0);
  const std::int64_t inner = z.numel() / (batch * channels_);
  const float* pz = z.data();
  float* gz = grad_z != nullptr ? grad_z->data() : nullptr;

  double total_bits = 0.0;
  for (std::int64_t c = 0; c < channels_; ++c) {
    const double mu = mu_.value[c];
    const double s = std::exp(static_cast<double>(log_s_.value[c]));
    double g_mu = 0.0, g_logs = 0.0;
    for (std::int64_t b = 0; b < batch; ++b) {
      for (std::int64_t i = 0; i < inner; ++i) {
        const std::int64_t idx = (b * channels_ + c) * inner + i;
        const double a_arg = (pz[idx] + 0.5 - mu) / s;
        const double b_arg = (pz[idx] - 0.5 - mu) / s;
        const double sa = Sigmoid(a_arg);
        const double sb = Sigmoid(b_arg);
        const double p_raw = sa - sb;
        const bool floored = p_raw < kPmfFloor;
        const double p = floored ? kPmfFloor : p_raw;
        total_bits += -std::log2(p);
        if (gz == nullptr || floored) continue;

        const double da = sa * (1.0 - sa);  // logistic pdf * s
        const double db = sb * (1.0 - sb);
        const double dp_dz = (da - db) / s;
        const double dp_dmu = -dp_dz;
        // dp/ds = -(a_arg*da - b_arg*db)/s; chain to log_s multiplies by s.
        const double dp_dlogs = -(a_arg * da - b_arg * db);
        const double scale = -1.0 / (p * kLn2);
        gz[idx] += static_cast<float>(scale * dp_dz);
        g_mu += scale * dp_dmu;
        g_logs += scale * dp_dlogs;
      }
    }
    if (gz != nullptr) {
      mu_.grad[c] += static_cast<float>(g_mu);
      log_s_.grad[c] += static_cast<float>(g_logs);
    }
  }
  return total_bits;
}

double FactorizedPrior::RateBits(const Tensor& z) const {
  return const_cast<FactorizedPrior*>(this)->RateBits(z, nullptr);
}

std::vector<std::uint8_t> FactorizedPrior::Encode(const Tensor& z) const {
  return codec_.Encode(z, MuValues(), ScaleValues());
}

Tensor FactorizedPrior::Decode(const std::vector<std::uint8_t>& bytes,
                               const Shape& shape) const {
  return codec_.Decode(bytes, shape, MuValues(), ScaleValues());
}

}  // namespace glsc::compress
