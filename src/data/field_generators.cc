#include "data/field_generators.h"
#include <algorithm>

#include <cmath>
#include <numbers>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace glsc::data {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Bilinear sample of a periodic grid at fractional coordinates.
float SamplePeriodic(const std::vector<float>& grid, std::int64_t h,
                     std::int64_t w, double y, double x) {
  const double fy = y - std::floor(y / static_cast<double>(h)) * h;
  const double fx = x - std::floor(x / static_cast<double>(w)) * w;
  const auto y0 = static_cast<std::int64_t>(fy) % h;
  const auto x0 = static_cast<std::int64_t>(fx) % w;
  const std::int64_t y1 = (y0 + 1) % h;
  const std::int64_t x1 = (x0 + 1) % w;
  const float ty = static_cast<float>(fy - std::floor(fy));
  const float tx = static_cast<float>(fx - std::floor(fx));
  const float v00 = grid[y0 * w + x0];
  const float v01 = grid[y0 * w + x1];
  const float v10 = grid[y1 * w + x0];
  const float v11 = grid[y1 * w + x1];
  return (1 - ty) * ((1 - tx) * v00 + tx * v01) +
         ty * ((1 - tx) * v10 + tx * v11);
}

// 5-point periodic Laplacian into `out` (unit grid spacing).
void PeriodicLaplacian(const std::vector<float>& u, std::int64_t h,
                       std::int64_t w, std::vector<float>* out) {
  for (std::int64_t i = 0; i < h; ++i) {
    const std::int64_t up = (i + h - 1) % h;
    const std::int64_t dn = (i + 1) % h;
    for (std::int64_t j = 0; j < w; ++j) {
      const std::int64_t lf = (j + w - 1) % w;
      const std::int64_t rt = (j + 1) % w;
      (*out)[i * w + j] = u[up * w + j] + u[dn * w + j] + u[i * w + lf] +
                          u[i * w + rt] - 4.0f * u[i * w + j];
    }
  }
}

// Smooth random initial condition: superposition of low-wavenumber modes.
std::vector<float> SmoothRandomField(std::int64_t h, std::int64_t w, Rng& rng,
                                     int max_mode, float amplitude) {
  std::vector<float> field(static_cast<std::size_t>(h * w), 0.0f);
  const int modes = 8;
  for (int m = 0; m < modes; ++m) {
    const double ky = kTwoPi * rng.UniformInt(max_mode + 1) / h;
    const double kx = kTwoPi * rng.UniformInt(max_mode + 1) / w;
    const double phase = rng.Uniform(0.0, kTwoPi);
    const float amp = amplitude * rng.UniformF(0.4f, 1.0f);
    for (std::int64_t i = 0; i < h; ++i) {
      for (std::int64_t j = 0; j < w; ++j) {
        field[i * w + j] +=
            amp * static_cast<float>(std::sin(ky * i + kx * j + phase));
      }
    }
  }
  return field;
}

}  // namespace

const char* DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kClimate: return "climate-e3sm";
    case DatasetKind::kCombustion: return "combustion-s3d";
    case DatasetKind::kTurbulence: return "turbulence-jhtdb";
  }
  return "unknown";
}

Tensor GenerateClimate(const FieldSpec& spec) {
  const std::int64_t h = spec.height, w = spec.width;
  Tensor out({spec.variables, spec.frames, h, w});
  Rng rng(spec.seed);

  for (std::int64_t v = 0; v < spec.variables; ++v) {
    Rng var_rng = rng.Fork();
    // Prognostic scalar (temperature-like), advected and diffused.
    std::vector<float> u = SmoothRandomField(h, w, var_rng, 3, 4.0f);
    std::vector<float> lap(u.size());
    std::vector<float> next(u.size());

    // Velocity: zonal jet with latitude profile + two counter-rotating gyres.
    const double jet = var_rng.Uniform(0.5, 1.2);
    const double gyre = var_rng.Uniform(0.3, 0.8);
    const double diffusivity = var_rng.Uniform(0.02, 0.06);
    const double forcing_amp = var_rng.Uniform(0.15, 0.35);
    const double diurnal_period = 24.0;
    // Offset so different variables have different baselines/scales, mimicking
    // the heterogeneous value ranges of climate variables.
    const float baseline = static_cast<float>(var_rng.Uniform(-5.0, 5.0)) *
                           static_cast<float>(std::pow(10.0, v % 3));
    const float scale = static_cast<float>(std::pow(10.0, v % 3));

    const int substeps = 4;
    for (std::int64_t t = 0; t < spec.frames; ++t) {
      for (int s = 0; s < substeps; ++s) {
        const double time = static_cast<double>(t) + s / double(substeps);
        // Semi-Lagrangian advection: trace back along the velocity field.
        for (std::int64_t i = 0; i < h; ++i) {
          const double lat = kTwoPi * i / h;
          const double vx = jet * (0.6 + 0.4 * std::sin(lat));
          for (std::int64_t j = 0; j < w; ++j) {
            const double lon = kTwoPi * j / w;
            const double vy = gyre * std::sin(lon) * std::cos(lat);
            next[i * w + j] =
                SamplePeriodic(u, h, w, i - vy, j - vx);
          }
        }
        std::swap(u, next);
        // Diffusion + diurnal radiative forcing.
        PeriodicLaplacian(u, h, w, &lap);
        const double day_phase =
            std::sin(kTwoPi * time / diurnal_period);
        for (std::int64_t i = 0; i < h; ++i) {
          const double lat_weight = std::cos(kTwoPi * i / h);
          for (std::int64_t j = 0; j < w; ++j) {
            u[i * w + j] += static_cast<float>(
                diffusivity * lap[i * w + j] +
                forcing_amp / substeps * day_phase * lat_weight);
          }
        }
      }
      float* frame = out.data() + ((v * spec.frames) + t) * h * w;
      for (std::int64_t k = 0; k < h * w; ++k) {
        frame[k] = baseline + scale * u[static_cast<std::size_t>(k)];
      }
    }
  }
  return out;
}

Tensor GenerateCombustion(const FieldSpec& spec) {
  const std::int64_t h = spec.height, w = spec.width;
  Tensor out({spec.variables, spec.frames, h, w});
  Rng rng(spec.seed);

  // Gray–Scott prognostic fields u (reactant) and v (product).
  std::vector<float> u(static_cast<std::size_t>(h * w), 1.0f);
  std::vector<float> v(static_cast<std::size_t>(h * w), 0.0f);
  // Ignition kernels: a few hot spots seeded with product.
  const int kernels = 4 + static_cast<int>(rng.UniformInt(4));
  for (int k = 0; k < kernels; ++k) {
    const auto cy = static_cast<std::int64_t>(rng.UniformInt(h));
    const auto cx = static_cast<std::int64_t>(rng.UniformInt(w));
    const std::int64_t r = 2 + static_cast<std::int64_t>(rng.UniformInt(3));
    for (std::int64_t i = -r; i <= r; ++i) {
      for (std::int64_t j = -r; j <= r; ++j) {
        if (i * i + j * j > r * r) continue;
        const std::int64_t y = (cy + i + h) % h;
        const std::int64_t x = (cx + j + w) % w;
        u[y * w + x] = 0.5f;
        v[y * w + x] = 0.25f;
      }
    }
  }

  const double du = 0.16, dv = 0.08;
  const double feed = 0.035, kill = 0.060;
  std::vector<float> lap_u(u.size()), lap_v(v.size());

  // Per-"species" projection coefficients: each output channel is a smooth
  // nonlinear function of (u, v), giving the strongly-correlated multi-channel
  // structure of a reduced chemical mechanism.
  struct Species {
    float a, b, c, power, offset, scale;
  };
  std::vector<Species> species;
  species.reserve(static_cast<std::size_t>(spec.variables));
  for (std::int64_t s = 0; s < spec.variables; ++s) {
    species.push_back({rng.UniformF(-1.0f, 1.0f), rng.UniformF(-1.0f, 1.0f),
                       rng.UniformF(0.0f, 0.5f), rng.UniformF(1.0f, 2.0f),
                       rng.UniformF(-0.2f, 0.2f),
                       static_cast<float>(std::pow(10.0, s % 4))});
  }

  const int substeps = 8;
  for (std::int64_t t = 0; t < spec.frames; ++t) {
    for (int s = 0; s < substeps; ++s) {
      PeriodicLaplacian(u, h, w, &lap_u);
      PeriodicLaplacian(v, h, w, &lap_v);
      for (std::size_t k = 0; k < u.size(); ++k) {
        const float uv2 = u[k] * v[k] * v[k];
        u[k] += static_cast<float>(du * lap_u[k] - uv2 +
                                   feed * (1.0f - u[k]));
        v[k] += static_cast<float>(dv * lap_v[k] + uv2 -
                                   (feed + kill) * v[k]);
      }
    }
    for (std::int64_t sp = 0; sp < spec.variables; ++sp) {
      const Species& sc = species[static_cast<std::size_t>(sp)];
      float* frame = out.data() + ((sp * spec.frames) + t) * h * w;
      for (std::size_t k = 0; k < u.size(); ++k) {
        const float mix = sc.a * u[k] + sc.b * v[k] + sc.c * u[k] * v[k];
        frame[k] = sc.scale *
                   (sc.offset + std::copysign(
                                    std::pow(std::fabs(mix), sc.power), mix));
      }
    }
  }
  return out;
}

Tensor GenerateTurbulence(const FieldSpec& spec) {
  const std::int64_t h = spec.height, w = spec.width;
  Tensor out({spec.variables, spec.frames, h, w});
  Rng rng(spec.seed);

  // Divergence-free velocity from a streamfunction psi built of Fourier modes
  // with k^(-5/3)-like amplitudes: (vx, vy) = (d psi/dy, -d psi/dx).
  struct Mode {
    double ky, kx, amp;
    double re, im;      // complex OU state
    double decorr;      // OU relaxation rate (faster for high k)
  };
  const int kmax = 8;
  std::vector<Mode> modes;
  for (int my = -kmax; my <= kmax; ++my) {
    for (int mx = 1; mx <= kmax; ++mx) {  // half-plane (real field)
      const double kmag = std::sqrt(static_cast<double>(my * my + mx * mx));
      if (kmag < 1.0 || kmag > kmax) continue;
      Mode m;
      m.ky = kTwoPi * my / h;
      m.kx = kTwoPi * mx / w;
      // Energy spectrum E(k) ~ k^(-5/3)  =>  |psi_k| ~ k^(-17/6) up to the
      // curl; the exact exponent matters less than the broadband decay.
      m.amp = std::pow(kmag, -17.0 / 6.0);
      m.re = rng.Normal() * m.amp;
      m.im = rng.Normal() * m.amp;
      m.decorr = 0.05 + 0.03 * kmag;  // small scales decorrelate faster
      modes.push_back(m);
    }
  }

  std::vector<float> vx(static_cast<std::size_t>(h * w));
  std::vector<float> vy(static_cast<std::size_t>(h * w));

  for (std::int64_t t = 0; t < spec.frames; ++t) {
    // OU step for every mode amplitude.
    for (auto& m : modes) {
      const double theta = m.decorr;
      const double noise = m.amp * std::sqrt(2.0 * theta);
      m.re += -theta * m.re + noise * rng.Normal();
      m.im += -theta * m.im + noise * rng.Normal();
    }
    // Evaluate the velocity components on the grid.
    std::fill(vx.begin(), vx.end(), 0.0f);
    std::fill(vy.begin(), vy.end(), 0.0f);
    for (const auto& m : modes) {
      for (std::int64_t i = 0; i < h; ++i) {
        for (std::int64_t j = 0; j < w; ++j) {
          const double phase = m.ky * i + m.kx * j;
          const double c = std::cos(phase), s = std::sin(phase);
          // psi = re*cos + im*sin; vx = dpsi/dy, vy = -dpsi/dx.
          vx[i * w + j] += static_cast<float>(m.ky * (-m.re * s + m.im * c));
          vy[i * w + j] -= static_cast<float>(m.kx * (-m.re * s + m.im * c));
        }
      }
    }
    for (std::int64_t ch = 0; ch < spec.variables; ++ch) {
      const std::vector<float>& src = (ch % 2 == 0) ? vx : vy;
      // Additional channels beyond (vx, vy) are scaled copies at different
      // amplitudes — JHTDB stores velocity components per spatial region.
      const float scale = static_cast<float>(std::pow(2.0, ch / 2));
      float* frame = out.data() + ((ch * spec.frames) + t) * h * w;
      for (std::size_t k = 0; k < src.size(); ++k) frame[k] = scale * src[k];
    }
  }
  return out;
}

Tensor GenerateField(DatasetKind kind, const FieldSpec& spec) {
  GLSC_CHECK(spec.variables >= 1 && spec.frames >= 1);
  GLSC_CHECK(spec.height >= 8 && spec.width >= 8);
  switch (kind) {
    case DatasetKind::kClimate: return GenerateClimate(spec);
    case DatasetKind::kCombustion: return GenerateCombustion(spec);
    case DatasetKind::kTurbulence: return GenerateTurbulence(spec);
  }
  GLSC_CHECK_MSG(false, "unknown dataset kind");
  return Tensor();
}

}  // namespace glsc::data
