// Synthetic spatiotemporal field generators standing in for the paper's three
// evaluation datasets (see DESIGN.md §2 for the substitution argument):
//
//  - Climate (E3SM analogue): advection–diffusion of a smooth multi-modal
//    scalar by a zonal-jet + gyre velocity field with diurnal forcing,
//    integrated semi-Lagrangian on a periodic grid.
//  - Combustion (S3D analogue): Gray–Scott reaction–diffusion with ignition
//    kernels; additional "species" channels are nonlinear functions of the
//    two prognostic fields, mirroring the strong inter-species correlation of
//    a reduced chemical mechanism.
//  - Turbulence (JHTDB analogue): divergence-free random-Fourier velocity
//    field with a k^(-5/3)-like spectrum whose mode amplitudes evolve as
//    complex Ornstein–Uhlenbeck processes (short temporal correlation).
//
// All generators are deterministic in (spec.seed) and return a tensor of
// shape [variables, frames, height, width].
#pragma once

#include "tensor/tensor.h"

namespace glsc::data {

struct FieldSpec {
  std::int64_t variables = 1;
  std::int64_t frames = 64;
  std::int64_t height = 32;
  std::int64_t width = 32;
  std::uint64_t seed = 7;
};

enum class DatasetKind { kClimate, kCombustion, kTurbulence };

const char* DatasetName(DatasetKind kind);

Tensor GenerateClimate(const FieldSpec& spec);
Tensor GenerateCombustion(const FieldSpec& spec);
Tensor GenerateTurbulence(const FieldSpec& spec);

Tensor GenerateField(DatasetKind kind, const FieldSpec& spec);

}  // namespace glsc::data
