#include "data/pgm.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/check.h"

namespace glsc::data {

void WritePgm(const std::string& path, const Tensor& frame) {
  GLSC_CHECK(frame.rank() == 2);
  const std::int64_t h = frame.dim(0);
  const std::int64_t w = frame.dim(1);
  const float mn = frame.MinValue();
  const float mx = frame.MaxValue();
  const float scale = (mx > mn) ? 255.0f / (mx - mn) : 0.0f;

  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GLSC_CHECK_MSG(static_cast<bool>(out), "cannot open " << path);
  out << "P5\n" << w << " " << h << "\n255\n";
  const float* p = frame.data();
  for (std::int64_t k = 0; k < h * w; ++k) {
    const auto v = static_cast<unsigned char>(
        std::clamp((p[k] - mn) * scale, 0.0f, 255.0f));
    out.put(static_cast<char>(v));
  }
}

void WritePgmWithZoom(const std::string& base_path, const Tensor& frame,
                      std::int64_t cy, std::int64_t cx, std::int64_t size,
                      std::int64_t zoom_factor) {
  WritePgm(base_path + ".pgm", frame);
  const std::int64_t h = frame.dim(0);
  const std::int64_t w = frame.dim(1);
  const std::int64_t y0 = std::clamp<std::int64_t>(cy - size / 2, 0, h - size);
  const std::int64_t x0 = std::clamp<std::int64_t>(cx - size / 2, 0, w - size);
  Tensor zoom({size * zoom_factor, size * zoom_factor});
  for (std::int64_t y = 0; y < size * zoom_factor; ++y) {
    for (std::int64_t x = 0; x < size * zoom_factor; ++x) {
      zoom.At({y, x}) =
          frame.At({y0 + y / zoom_factor, x0 + x / zoom_factor});
    }
  }
  WritePgm(base_path + "_zoom.pgm", zoom);
}

}  // namespace glsc::data
