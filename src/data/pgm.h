// Grayscale PGM output for the Figure-6 style visual comparisons: each frame
// is range-normalized and written as an 8-bit image, optionally with a zoomed
// crop (the paper's red-rectangle inset).
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace glsc::data {

// Writes a [H, W] field as binary PGM, scaling [min, max] -> [0, 255].
void WritePgm(const std::string& path, const Tensor& frame);

// Writes frame plus a (cy, cx, size) zoom crop upscaled by `zoom_factor`.
void WritePgmWithZoom(const std::string& base_path, const Tensor& frame,
                      std::int64_t cy, std::int64_t cx, std::int64_t size,
                      std::int64_t zoom_factor);

}  // namespace glsc::data
