#include "data/dataset.h"

#include <algorithm>

#include "util/check.h"

namespace glsc::data {

FrameNorm ComputeFrameNorm(const float* frame, std::int64_t count) {
  double sum = 0.0;
  float mn = frame[0], mx = frame[0];
  for (std::int64_t k = 0; k < count; ++k) {
    sum += frame[k];
    mn = std::min(mn, frame[k]);
    mx = std::max(mx, frame[k]);
  }
  FrameNorm norm;
  norm.mean = static_cast<float>(sum / count);
  norm.range = std::max(mx - mn, 1e-12f);
  return norm;
}

SequenceDataset::SequenceDataset(Tensor field) : field_(std::move(field)) {
  GLSC_CHECK(field_.rank() == 4);
  const std::int64_t v = field_.dim(0);
  const std::int64_t t = field_.dim(1);
  const std::int64_t hw = field_.dim(2) * field_.dim(3);
  norms_.resize(static_cast<std::size_t>(v * t));
  for (std::int64_t vi = 0; vi < v; ++vi) {
    for (std::int64_t ti = 0; ti < t; ++ti) {
      norms_[static_cast<std::size_t>(vi * t + ti)] =
          ComputeFrameNorm(field_.data() + (vi * t + ti) * hw, hw);
    }
  }
}

const FrameNorm& SequenceDataset::norm(std::int64_t variable,
                                       std::int64_t t) const {
  return norms_[static_cast<std::size_t>(variable * frames() + t)];
}

Tensor SequenceDataset::NormalizedFrame(std::int64_t variable,
                                        std::int64_t t) const {
  const std::int64_t hw = height() * width();
  const FrameNorm& fn = norm(variable, t);
  Tensor out({height(), width()});
  const float* src = field_.data() + (variable * frames() + t) * hw;
  float* dst = out.data();
  for (std::int64_t k = 0; k < hw; ++k) dst[k] = (src[k] - fn.mean) / fn.range;
  return out;
}

Tensor SequenceDataset::NormalizedWindow(std::int64_t variable,
                                         std::int64_t t0,
                                         std::int64_t n) const {
  GLSC_CHECK(t0 >= 0 && t0 + n <= frames());
  Tensor out({n, height(), width()});
  const std::int64_t hw = height() * width();
  for (std::int64_t i = 0; i < n; ++i) {
    const Tensor frame = NormalizedFrame(variable, t0 + i);
    std::copy_n(frame.data(), hw, out.data() + i * hw);
  }
  return out;
}

Tensor SequenceDataset::Denormalize(const Tensor& window, std::int64_t variable,
                                    std::int64_t t0) const {
  GLSC_CHECK(window.rank() == 3);
  const std::int64_t n = window.dim(0);
  const std::int64_t hw = window.dim(1) * window.dim(2);
  Tensor out(window.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const FrameNorm& fn = norm(variable, t0 + i);
    const float* src = window.data() + i * hw;
    float* dst = out.data() + i * hw;
    for (std::int64_t k = 0; k < hw; ++k) dst[k] = src[k] * fn.range + fn.mean;
  }
  return out;
}

Tensor SequenceDataset::SampleTrainingWindow(std::int64_t n, std::int64_t crop,
                                             Rng& rng) const {
  GLSC_CHECK(n <= frames());
  const std::int64_t v =
      static_cast<std::int64_t>(rng.UniformInt(static_cast<std::uint64_t>(variables())));
  const std::int64_t t0 = static_cast<std::int64_t>(
      rng.UniformInt(static_cast<std::uint64_t>(frames() - n + 1)));
  const std::int64_t ch = std::min(crop, height());
  const std::int64_t cw = std::min(crop, width());
  const std::int64_t y0 = static_cast<std::int64_t>(
      rng.UniformInt(static_cast<std::uint64_t>(height() - ch + 1)));
  const std::int64_t x0 = static_cast<std::int64_t>(
      rng.UniformInt(static_cast<std::uint64_t>(width() - cw + 1)));

  Tensor out({n, ch, cw});
  for (std::int64_t i = 0; i < n; ++i) {
    const Tensor frame = NormalizedFrame(v, t0 + i);
    for (std::int64_t y = 0; y < ch; ++y) {
      std::copy_n(frame.data() + (y0 + y) * width() + x0, cw,
                  out.data() + (i * ch + y) * cw);
    }
  }
  return out;
}

Tensor SequenceDataset::SampleTrainingPatch(std::int64_t crop, Rng& rng) const {
  return SampleTrainingWindow(1, crop, rng);
}

std::vector<SequenceDataset::WindowRef> SequenceDataset::EvaluationWindows(
    std::int64_t n) const {
  std::vector<WindowRef> refs;
  for (std::int64_t v = 0; v < variables(); ++v) {
    for (std::int64_t t0 = 0; t0 + n <= frames(); t0 += n) {
      refs.push_back({v, t0});
    }
  }
  return refs;
}

}  // namespace glsc::data
