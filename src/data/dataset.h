// Dataset wrapper: turns a generated [V, T, H, W] field into the training and
// evaluation units the models consume —
//   * per-frame normalization to zero mean / unit range (§4.3 of the paper:
//     "We normalize each frame independently to have zero mean and unit
//     range"), invertible from two floats per frame;
//   * random (variable, window, crop) samples for training;
//   * deterministic enumeration of evaluation windows.
#pragma once

#include <vector>

#include "data/field_generators.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace glsc::data {

// Per-frame affine normalization parameters: x_norm = (x - mean) / range.
struct FrameNorm {
  float mean = 0.0f;
  float range = 1.0f;
};

// Computes one frame's normalization from `count` contiguous values. Shared
// by SequenceDataset and the streaming api::EncodeSession so both derive
// bit-identical parameters from the same frame.
FrameNorm ComputeFrameNorm(const float* frame, std::int64_t count);

class SequenceDataset {
 public:
  // Takes ownership of a [V, T, H, W] field tensor.
  explicit SequenceDataset(Tensor field);

  std::int64_t variables() const { return field_.dim(0); }
  std::int64_t frames() const { return field_.dim(1); }
  std::int64_t height() const { return field_.dim(2); }
  std::int64_t width() const { return field_.dim(3); }
  std::size_t OriginalBytes() const {
    return static_cast<std::size_t>(field_.numel()) * sizeof(float);
  }

  const Tensor& raw() const { return field_; }
  // Normalized copy of one frame: [H, W].
  Tensor NormalizedFrame(std::int64_t variable, std::int64_t t) const;
  // Normalized window of N consecutive frames: [N, H, W].
  Tensor NormalizedWindow(std::int64_t variable, std::int64_t t0,
                          std::int64_t n) const;
  // Un-normalizes a reconstructed window back to physical units.
  Tensor Denormalize(const Tensor& window, std::int64_t variable,
                     std::int64_t t0) const;
  const FrameNorm& norm(std::int64_t variable, std::int64_t t) const;

  // Random [n, crop, crop] training window (normalized). Falls back to the
  // full spatial extent when crop exceeds it.
  Tensor SampleTrainingWindow(std::int64_t n, std::int64_t crop,
                              Rng& rng) const;
  // Random single [1, crop, crop] frame patch (normalized) for VAE training.
  Tensor SampleTrainingPatch(std::int64_t crop, Rng& rng) const;

  // Deterministic evaluation coverage: all (variable, window-start) pairs for
  // non-overlapping windows of length n.
  struct WindowRef {
    std::int64_t variable;
    std::int64_t t0;
  };
  std::vector<WindowRef> EvaluationWindows(std::int64_t n) const;

 private:
  Tensor field_;                  // [V, T, H, W] raw physical values
  std::vector<FrameNorm> norms_;  // V * T entries
};

}  // namespace glsc::data
