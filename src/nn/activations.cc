#include "nn/activations.h"

#include <cmath>

#include "tensor/simd/kernels.h"

namespace glsc::nn {
namespace {

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Tensor SiLU::Forward(const Tensor& x, bool /*training*/) {
  cached_input_ = x;
  Tensor y = Tensor::Empty(x.shape());
  simd::ActiveKernels().silu_fwd(x.data(), y.data(), x.numel());
  return y;
}

Tensor SiLU::Forward(const Tensor& x, tensor::Workspace* ws) {
  Tensor y = ws->NewTensor(x.shape());
  simd::ActiveKernels().silu_fwd(x.data(), y.data(), x.numel());
  return y;
}

bool SiLU::ForwardInPlace(Tensor* x) {
  simd::ActiveKernels().silu_fwd(x->data(), x->data(), x->numel());
  return true;
}

Tensor SiLU::Backward(const Tensor& grad_out) {
  GLSC_CHECK(cached_input_.defined());
  Tensor grad_in = Tensor::Empty(grad_out.shape());
  // d/dx [x*s(x)] = s(x) * (1 + x * (1 - s(x)))
  simd::ActiveKernels().silu_bwd(cached_input_.data(), grad_out.data(),
                                 grad_in.data(), grad_out.numel());
  cached_input_ = Tensor();
  return grad_in;
}

Tensor ReLU::Forward(const Tensor& x, bool /*training*/) {
  cached_input_ = x;
  Tensor y = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) py[i] = px[i] > 0.0f ? px[i] : 0.0f;
  return y;
}

Tensor ReLU::Forward(const Tensor& x, tensor::Workspace* ws) {
  Tensor y = ws->NewTensor(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) py[i] = px[i] > 0.0f ? px[i] : 0.0f;
  return y;
}

bool ReLU::ForwardInPlace(Tensor* x) {
  float* p = x->data();
  const std::int64_t n = x->numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
  return true;
}

Tensor ReLU::Backward(const Tensor& grad_out) {
  GLSC_CHECK(cached_input_.defined());
  Tensor grad_in = Tensor::Empty(grad_out.shape());
  const float* px = cached_input_.data();
  const float* pg = grad_out.data();
  float* pi = grad_in.data();
  const std::int64_t n = grad_out.numel();
  for (std::int64_t i = 0; i < n; ++i) pi[i] = px[i] > 0.0f ? pg[i] : 0.0f;
  cached_input_ = Tensor();
  return grad_in;
}

Tensor LeakyReLU::Forward(const Tensor& x, bool /*training*/) {
  cached_input_ = x;
  Tensor y = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    py[i] = px[i] > 0.0f ? px[i] : slope_ * px[i];
  }
  return y;
}

Tensor LeakyReLU::Forward(const Tensor& x, tensor::Workspace* ws) {
  Tensor y = ws->NewTensor(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    py[i] = px[i] > 0.0f ? px[i] : slope_ * px[i];
  }
  return y;
}

bool LeakyReLU::ForwardInPlace(Tensor* x) {
  float* p = x->data();
  const std::int64_t n = x->numel();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = p[i] > 0.0f ? p[i] : slope_ * p[i];
  }
  return true;
}

Tensor LeakyReLU::Backward(const Tensor& grad_out) {
  GLSC_CHECK(cached_input_.defined());
  Tensor grad_in = Tensor::Empty(grad_out.shape());
  const float* px = cached_input_.data();
  const float* pg = grad_out.data();
  float* pi = grad_in.data();
  const std::int64_t n = grad_out.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    pi[i] = px[i] > 0.0f ? pg[i] : slope_ * pg[i];
  }
  cached_input_ = Tensor();
  return grad_in;
}

Tensor FixedScale::Forward(const Tensor& x, bool /*training*/) {
  Tensor y = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* py = y.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) py[i] = scale_ * px[i];
  return y;
}

Tensor FixedScale::Forward(const Tensor& x, tensor::Workspace* ws) {
  Tensor y = ws->NewTensor(x.shape());
  const float* px = x.data();
  float* py = y.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) py[i] = scale_ * px[i];
  return y;
}

bool FixedScale::ForwardInPlace(Tensor* x) {
  float* p = x->data();
  const std::int64_t n = x->numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = scale_ * p[i];
  return true;
}

Tensor FixedScale::Backward(const Tensor& grad_out) {
  Tensor g = Tensor::Empty(grad_out.shape());
  const float* pg = grad_out.data();
  float* po = g.data();
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) po[i] = scale_ * pg[i];
  return g;
}

Tensor Tanh::Forward(const Tensor& x, bool /*training*/) {
  Tensor y = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) py[i] = std::tanh(px[i]);
  cached_output_ = y;
  return y;
}

Tensor Tanh::Forward(const Tensor& x, tensor::Workspace* ws) {
  Tensor y = ws->NewTensor(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) py[i] = std::tanh(px[i]);
  return y;
}

bool Tanh::ForwardInPlace(Tensor* x) {
  float* p = x->data();
  const std::int64_t n = x->numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = std::tanh(p[i]);
  return true;
}

Tensor Tanh::Backward(const Tensor& grad_out) {
  GLSC_CHECK(cached_output_.defined());
  Tensor grad_in = Tensor::Empty(grad_out.shape());
  const float* py = cached_output_.data();
  const float* pg = grad_out.data();
  float* pi = grad_in.data();
  const std::int64_t n = grad_out.numel();
  for (std::int64_t i = 0; i < n; ++i) pi[i] = pg[i] * (1.0f - py[i] * py[i]);
  cached_output_ = Tensor();
  return grad_in;
}

}  // namespace glsc::nn
