// Sinusoidal timestep embeddings (Transformer-style), used to tell the
// denoising UNet which diffusion step it is operating at.
#pragma once

#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace glsc::nn {

// Returns a [dim] embedding for a single integer timestep:
// half sine, half cosine over log-spaced frequencies.
Tensor SinusoidalTimeEmbedding(std::int64_t timestep, std::int64_t dim);
// Workspace variant: the result borrows arena memory.
Tensor SinusoidalTimeEmbedding(std::int64_t timestep, std::int64_t dim,
                               tensor::Workspace* ws);

// Batched version: [count] timesteps -> [count, dim].
Tensor SinusoidalTimeEmbeddingBatch(const std::vector<std::int64_t>& timesteps,
                                    std::int64_t dim);

}  // namespace glsc::nn
