// Pointwise activation layers with exact analytic backward passes. All of
// them support workspace-backed and in-place inference (elementwise, so
// shapes always allow it).
#pragma once

#include "nn/layer.h"

namespace glsc::nn {

// x * sigmoid(x) — the activation used throughout the diffusion UNet.
class SiLU : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  bool ForwardInPlace(Tensor* x) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "SiLU"; }

 private:
  Tensor cached_input_;
};

class ReLU : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  bool ForwardInPlace(Tensor* x) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.01f) : slope_(slope) {}
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  bool ForwardInPlace(Tensor* x) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "LeakyReLU"; }

 private:
  float slope_;
  Tensor cached_input_;
};

// Multiplies by a fixed constant. Used at the end of the VAE encoder to set
// the latent magnitude relative to the unit quantization bin: large-scale
// encoders learn this spread over long schedules; at reproduction scale we
// build it in and let training adapt around it.
class FixedScale : public Layer {
 public:
  explicit FixedScale(float scale) : scale_(scale) {}
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  bool ForwardInPlace(Tensor* x) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "FixedScale"; }

 private:
  float scale_;
};

class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  bool ForwardInPlace(Tensor* x) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

}  // namespace glsc::nn
