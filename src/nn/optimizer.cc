#include "nn/optimizer.h"

#include <cmath>

namespace glsc::nn {

double Optimizer::ClipGradNorm(double max_norm) {
  double sumsq = 0.0;
  for (Param* p : params_) {
    const float* g = p->grad.data();
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      sumsq += static_cast<double>(g[i]) * g[i];
    }
  }
  const double norm = std::sqrt(sumsq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Param* p : params_) {
      float* g = p->grad.data();
      for (std::int64_t i = 0; i < p->grad.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (Param* p : params_) velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::Step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    float* w = p->value.data();
    const float* g = p->grad.data();
    const std::int64_t n = p->value.numel();
    if (momentum_ == 0.0f) {
      for (std::int64_t i = 0; i < n; ++i) w[i] -= lr_ * g[i];
    } else {
      float* v = velocity_[k].data();
      for (std::int64_t i = 0; i < n; ++i) {
        v[i] = momentum_ * v[i] + g[i];
        w[i] -= lr_ * v[i];
      }
    }
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float step = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    const std::int64_t n = p->value.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      w[i] -= step * m[i] / (std::sqrt(v[i]) + eps_);
    }
  }
}

}  // namespace glsc::nn
