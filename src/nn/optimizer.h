// First-order optimizers over flat parameter lists.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace glsc::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;

  void ZeroGrad() {
    for (Param* p : params_) p->ZeroGrad();
  }

  // Rescales all gradients so their global L2 norm is at most `max_norm`.
  // Returns the pre-clip norm. Diffusion training uses this to survive the
  // occasional high-noise sample.
  double ClipGradNorm(double max_norm);

 protected:
  std::vector<Param*> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.0f);
  void Step() override;

  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace glsc::nn
