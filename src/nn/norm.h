// Normalization layers. GroupNorm is used in the convolutional trunks (it is
// batch-size independent, which matters because training batches here are
// small); LayerNorm is used before attention.
#pragma once

#include "nn/layer.h"

namespace glsc::nn {

class GroupNorm : public Layer {
 public:
  GroupNorm(std::int64_t groups, std::int64_t channels,
            const std::string& name = "gn", float eps = 1e-5f);

  // x: [B, C, H, W]
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  bool ForwardInPlace(Tensor* x) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::string Name() const override { return "GroupNorm"; }

 private:
  std::int64_t groups_;
  std::int64_t channels_;
  float eps_;
  Param gamma_;  // [C]
  Param beta_;   // [C]
  Tensor cached_input_;
  std::vector<float> cached_mean_;     // per (b, g)
  std::vector<float> cached_inv_std_;  // per (b, g)
};

// Normalizes over the last dimension of [..., D].
class LayerNorm : public Layer {
 public:
  LayerNorm(std::int64_t dim, const std::string& name = "ln",
            float eps = 1e-5f);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  bool ForwardInPlace(Tensor* x) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::string Name() const override { return "LayerNorm"; }

 private:
  std::int64_t dim_;
  float eps_;
  Param gamma_;
  Param beta_;
  Tensor cached_input_;
  std::vector<float> cached_mean_;
  std::vector<float> cached_inv_std_;
};

}  // namespace glsc::nn
