#include "nn/norm.h"

#include <cmath>

#include "tensor/simd/kernels.h"

namespace glsc::nn {
namespace {

// Inference-only normalization kernels: no mean/inv_std caching (that exists
// for Backward), and in-place safe — each group/row's moments are fully
// reduced before its elements are overwritten.
void GroupNormApply(const float* px, float* py, std::int64_t batch,
                    std::int64_t channels, std::int64_t groups, std::int64_t hw,
                    float eps, const float* gamma, const float* beta) {
  const std::int64_t ch_per_g = channels / groups;
  const std::int64_t group_size = ch_per_g * hw;
  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t g = 0; g < groups; ++g) {
      const float* xs = px + (b * channels + g * ch_per_g) * hw;
      double sum = 0.0, sumsq = 0.0;
      kernels.moments(xs, group_size, &sum, &sumsq);
      const double mean = sum / group_size;
      const double var = sumsq / group_size - mean * mean;
      const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
      float* ys = py + (b * channels + g * ch_per_g) * hw;
      for (std::int64_t c = 0; c < ch_per_g; ++c) {
        kernels.norm_affine(xs + c * hw, static_cast<float>(mean), inv_std,
                            gamma[g * ch_per_g + c], beta[g * ch_per_g + c],
                            ys + c * hw, hw);
      }
    }
  }
}

void LayerNormApply(const float* px, float* py, std::int64_t rows,
                    std::int64_t dim, float eps, const float* gamma,
                    const float* beta) {
  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xs = px + r * dim;
    double sum = 0.0, sumsq = 0.0;
    kernels.moments(xs, dim, &sum, &sumsq);
    const double mean = sum / dim;
    const double var = sumsq / dim - mean * mean;
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
    kernels.norm_affine_vec(xs, static_cast<float>(mean), inv_std, gamma, beta,
                            py + r * dim, dim);
  }
}

}  // namespace

GroupNorm::GroupNorm(std::int64_t groups, std::int64_t channels,
                     const std::string& name, float eps)
    : groups_(groups), channels_(channels), eps_(eps) {
  GLSC_CHECK_MSG(channels % groups == 0,
                 "channels " << channels << " % groups " << groups << " != 0");
  gamma_ = Param(name + ".gamma", Tensor::Full({channels}, 1.0f));
  beta_ = Param(name + ".beta", Tensor::Zeros({channels}));
}

Tensor GroupNorm::Forward(const Tensor& x, bool /*training*/) {
  GLSC_CHECK(x.rank() == 4 && x.dim(1) == channels_);
  cached_input_ = x;
  const std::int64_t batch = x.dim(0);
  const std::int64_t ch_per_g = channels_ / groups_;
  const std::int64_t hw = x.dim(2) * x.dim(3);
  const std::int64_t group_size = ch_per_g * hw;

  cached_mean_.assign(static_cast<std::size_t>(batch * groups_), 0.0f);
  cached_inv_std_.assign(static_cast<std::size_t>(batch * groups_), 0.0f);

  Tensor y = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const float* pg = gamma_.value.data();
  const float* pb = beta_.value.data();

  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t g = 0; g < groups_; ++g) {
      const float* xs = px + (b * channels_ + g * ch_per_g) * hw;
      double sum = 0.0, sumsq = 0.0;
      kernels.moments(xs, group_size, &sum, &sumsq);
      const double mean = sum / group_size;
      const double var = sumsq / group_size - mean * mean;
      const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
      cached_mean_[b * groups_ + g] = static_cast<float>(mean);
      cached_inv_std_[b * groups_ + g] = inv_std;

      float* ys = py + (b * channels_ + g * ch_per_g) * hw;
      for (std::int64_t c = 0; c < ch_per_g; ++c) {
        kernels.norm_affine(xs + c * hw, static_cast<float>(mean), inv_std,
                            pg[g * ch_per_g + c], pb[g * ch_per_g + c],
                            ys + c * hw, hw);
      }
    }
  }
  return y;
}

Tensor GroupNorm::Forward(const Tensor& x, tensor::Workspace* ws) {
  GLSC_CHECK(x.rank() == 4 && x.dim(1) == channels_);
  Tensor y = ws->NewTensor(x.shape());
  GroupNormApply(x.data(), y.data(), x.dim(0), channels_, groups_,
                 x.dim(2) * x.dim(3), eps_, gamma_.value.data(),
                 beta_.value.data());
  return y;
}

bool GroupNorm::ForwardInPlace(Tensor* x) {
  GLSC_CHECK(x->rank() == 4 && x->dim(1) == channels_);
  GroupNormApply(x->data(), x->data(), x->dim(0), channels_, groups_,
                 x->dim(2) * x->dim(3), eps_, gamma_.value.data(),
                 beta_.value.data());
  return true;
}

Tensor GroupNorm::Backward(const Tensor& grad_out) {
  GLSC_CHECK(cached_input_.defined());
  const Tensor& x = cached_input_;
  const std::int64_t batch = x.dim(0);
  const std::int64_t ch_per_g = channels_ / groups_;
  const std::int64_t hw = x.dim(2) * x.dim(3);
  const std::int64_t m = ch_per_g * hw;  // normalization group size

  Tensor grad_in = Tensor::Empty(x.shape());
  const float* px = x.data();
  const float* pgo = grad_out.data();
  float* pgi = grad_in.data();
  const float* pg = gamma_.value.data();
  float* ggamma = gamma_.grad.data();
  float* gbeta = beta_.grad.data();

  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t g = 0; g < groups_; ++g) {
      const float mean = cached_mean_[b * groups_ + g];
      const float inv_std = cached_inv_std_[b * groups_ + g];
      const float* xs = px + (b * channels_ + g * ch_per_g) * hw;
      const float* gs = pgo + (b * channels_ + g * ch_per_g) * hw;
      float* is = pgi + (b * channels_ + g * ch_per_g) * hw;

      // First pass: accumulate the two reductions sum(dxhat) and
      // sum(dxhat * xhat) plus per-channel parameter gradients.
      double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
      for (std::int64_t c = 0; c < ch_per_g; ++c) {
        const float gc = pg[g * ch_per_g + c];
        double dg = 0.0, db = 0.0;
        for (std::int64_t i = 0; i < hw; ++i) {
          const float xhat = (xs[c * hw + i] - mean) * inv_std;
          const float go = gs[c * hw + i];
          const float dxhat = go * gc;
          sum_dxhat += dxhat;
          sum_dxhat_xhat += static_cast<double>(dxhat) * xhat;
          dg += static_cast<double>(go) * xhat;
          db += go;
        }
        ggamma[g * ch_per_g + c] += static_cast<float>(dg);
        gbeta[g * ch_per_g + c] += static_cast<float>(db);
      }

      // Second pass: dx = inv_std * (dxhat - mean(dxhat) - xhat*mean(dxhat*xhat))
      const float mean_dxhat = static_cast<float>(sum_dxhat / m);
      const float mean_dxhat_xhat = static_cast<float>(sum_dxhat_xhat / m);
      for (std::int64_t c = 0; c < ch_per_g; ++c) {
        const float gc = pg[g * ch_per_g + c];
        for (std::int64_t i = 0; i < hw; ++i) {
          const float xhat = (xs[c * hw + i] - mean) * inv_std;
          const float dxhat = gs[c * hw + i] * gc;
          is[c * hw + i] =
              inv_std * (dxhat - mean_dxhat - xhat * mean_dxhat_xhat);
        }
      }
    }
  }
  cached_input_ = Tensor();
  return grad_in;
}

std::vector<Param*> GroupNorm::Params() { return {&gamma_, &beta_}; }

LayerNorm::LayerNorm(std::int64_t dim, const std::string& name, float eps)
    : dim_(dim), eps_(eps) {
  gamma_ = Param(name + ".gamma", Tensor::Full({dim}, 1.0f));
  beta_ = Param(name + ".beta", Tensor::Zeros({dim}));
}

Tensor LayerNorm::Forward(const Tensor& x, bool /*training*/) {
  GLSC_CHECK(x.shape().back() == dim_);
  cached_input_ = x;
  const std::int64_t rows = x.numel() / dim_;
  cached_mean_.assign(static_cast<std::size_t>(rows), 0.0f);
  cached_inv_std_.assign(static_cast<std::size_t>(rows), 0.0f);

  Tensor y = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const float* pg = gamma_.value.data();
  const float* pb = beta_.value.data();
  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xs = px + r * dim_;
    double sum = 0.0, sumsq = 0.0;
    kernels.moments(xs, dim_, &sum, &sumsq);
    const double mean = sum / dim_;
    const double var = sumsq / dim_ - mean * mean;
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
    cached_mean_[r] = static_cast<float>(mean);
    cached_inv_std_[r] = inv_std;
    kernels.norm_affine_vec(xs, static_cast<float>(mean), inv_std, pg, pb,
                            py + r * dim_, dim_);
  }
  return y;
}

Tensor LayerNorm::Forward(const Tensor& x, tensor::Workspace* ws) {
  GLSC_CHECK(x.shape().back() == dim_);
  Tensor y = ws->NewTensor(x.shape());
  LayerNormApply(x.data(), y.data(), x.numel() / dim_, dim_, eps_,
                 gamma_.value.data(), beta_.value.data());
  return y;
}

bool LayerNorm::ForwardInPlace(Tensor* x) {
  GLSC_CHECK(x->shape().back() == dim_);
  LayerNormApply(x->data(), x->data(), x->numel() / dim_, dim_, eps_,
                 gamma_.value.data(), beta_.value.data());
  return true;
}

Tensor LayerNorm::Backward(const Tensor& grad_out) {
  GLSC_CHECK(cached_input_.defined());
  const Tensor& x = cached_input_;
  const std::int64_t rows = x.numel() / dim_;
  Tensor grad_in = Tensor::Empty(x.shape());
  const float* px = x.data();
  const float* pgo = grad_out.data();
  float* pgi = grad_in.data();
  const float* pg = gamma_.value.data();
  float* ggamma = gamma_.grad.data();
  float* gbeta = beta_.grad.data();

  for (std::int64_t r = 0; r < rows; ++r) {
    const float mean = cached_mean_[r];
    const float inv_std = cached_inv_std_[r];
    const float* xs = px + r * dim_;
    const float* gs = pgo + r * dim_;
    float* is = pgi + r * dim_;

    double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
    for (std::int64_t i = 0; i < dim_; ++i) {
      const float xhat = (xs[i] - mean) * inv_std;
      const float dxhat = gs[i] * pg[i];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += static_cast<double>(dxhat) * xhat;
      ggamma[i] += gs[i] * xhat;
      gbeta[i] += gs[i];
    }
    const float mean_dxhat = static_cast<float>(sum_dxhat / dim_);
    const float mean_dxhat_xhat = static_cast<float>(sum_dxhat_xhat / dim_);
    for (std::int64_t i = 0; i < dim_; ++i) {
      const float xhat = (xs[i] - mean) * inv_std;
      const float dxhat = gs[i] * pg[i];
      is[i] = inv_std * (dxhat - mean_dxhat - xhat * mean_dxhat_xhat);
    }
  }
  cached_input_ = Tensor();
  return grad_in;
}

std::vector<Param*> LayerNorm::Params() { return {&gamma_, &beta_}; }

}  // namespace glsc::nn
