// 2D convolution layers in NCHW layout, lowered to GEMM via im2col.
// Downsampling uses stride-2 convolutions; upsampling uses nearest-neighbour
// 2x upsample followed by a convolution (checkerboard-free and with a much
// simpler backward pass than transposed convolution).
#pragma once

#include "nn/layer.h"
#include "tensor/gemm.h"

namespace glsc::nn {

class Conv2d : public Layer {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad, Rng& rng,
         const std::string& name = "conv");

  // x: [B, C_in, H, W] -> [B, C_out, OH, OW]
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  // Merges frames along the GEMM N dimension: im2col for a chunk of frames
  // lands side by side in one wide column matrix, so the whole chunk is one
  // weight pass instead of one GEMM per frame. Byte-identical to Forward
  // (per-output-element accumulation order does not depend on the column
  // position). Works without a workspace (allocates the output then).
  Tensor ForwardBatched(const Tensor& x, tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::string Name() const override { return "Conv2d"; }

  std::int64_t in_channels() const { return in_c_; }
  std::int64_t out_channels() const { return out_c_; }

 private:
  // Shared forward kernel: [B, C_out, OH, OW] output shape for x, and the
  // im2col + fused-bias GEMM loop writing into the (Empty or arena) output.
  Shape OutputShape(const Tensor& x) const;
  void ForwardInto(const Tensor& x, Tensor* y);
  void ForwardBatchedInto(const Tensor& x, Tensor* y);

  // Grow-only im2col scratch shared by Forward (any overload) and Backward,
  // so repeated calls on same-shaped inputs never re-allocate. Layer
  // instances are confined to one thread (sessions clone per worker), so a
  // member scratch is safe.
  float* ColScratch(std::int64_t floats);
  float* GradColScratch(std::int64_t floats);
  float* BatchOutScratch(std::int64_t floats);

  std::int64_t in_c_, out_c_, kernel_, stride_, pad_;
  Param weight_;  // [out_c, in_c * k * k]
  Param bias_;    // [out_c]
  Tensor cached_input_;
  std::vector<float> col_scratch_;        // im2col columns
  std::vector<float> grad_col_scratch_;   // backward dcolumns
  std::vector<float> batch_out_scratch_;  // merged-GEMM output staging
  GemmScratch gemm_scratch_;              // pooled GEMM packing buffers
};

// Nearest-neighbour 2x spatial upsampling. Backward is a 2x2 sum-pool of the
// incoming gradient.
class NearestUpsample2x : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "NearestUpsample2x"; }

 private:
  Shape cached_in_shape_;
};

// 2x2 average pooling (stride 2); used by the VAE-SR baseline's
// low-resolution branch.
class AvgPool2x : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "AvgPool2x"; }

 private:
  Shape cached_in_shape_;
};

}  // namespace glsc::nn
