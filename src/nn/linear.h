// Fully-connected layer. Input of shape [..., in_features] is treated as a
// flat batch of rows; used by attention projections, time-embedding MLPs and
// the factorized-prior parameterization.
#pragma once

#include "nn/layer.h"

namespace glsc::nn {

class Dense : public Layer {
 public:
  Dense(std::int64_t in_features, std::int64_t out_features, Rng& rng,
        bool bias = true, const std::string& name = "dense");

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::string Name() const override { return "Dense"; }

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  bool has_bias_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor cached_input_;
};

}  // namespace glsc::nn
