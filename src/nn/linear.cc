#include "nn/linear.h"

#include <cmath>

#include "tensor/gemm.h"

namespace glsc::nn {

Dense::Dense(std::int64_t in_features, std::int64_t out_features, Rng& rng,
             bool bias, const std::string& name)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  // Kaiming-uniform fan-in initialization.
  const float bound = std::sqrt(1.0f / static_cast<float>(in_features));
  weight_ = Param(name + ".weight",
                  Tensor::Uniform({out_, in_}, rng, -bound, bound));
  if (has_bias_) {
    bias_ = Param(name + ".bias", Tensor::Uniform({out_}, rng, -bound, bound));
  }
}

Tensor Dense::Forward(const Tensor& x, bool /*training*/) {
  GLSC_CHECK(x.rank() >= 1 && x.shape().back() == in_);
  cached_input_ = x;
  const std::int64_t rows = x.numel() / in_;
  Shape out_shape = x.shape();
  out_shape.back() = out_;
  Tensor y = Tensor::Empty(out_shape);
  // y = x * W^T, with the feature bias fused into the final-panel write-back.
  GemmEx(false, true, rows, out_, in_, 1.0f, x.data(), in_,
         weight_.value.data(), in_, 0.0f, y.data(), out_,
         has_bias_ ? bias_.value.data() : nullptr,
         has_bias_ ? GemmEpilogue::kBiasCol : GemmEpilogue::kNone);
  return y;
}

Tensor Dense::Forward(const Tensor& x, tensor::Workspace* ws) {
  GLSC_CHECK(x.rank() >= 1 && x.shape().back() == in_);
  const std::int64_t rows = x.numel() / in_;
  Shape out_shape = x.shape();
  out_shape.back() = out_;
  Tensor y = ws->NewTensor(std::move(out_shape));
  GemmEx(false, true, rows, out_, in_, 1.0f, x.data(), in_,
         weight_.value.data(), in_, 0.0f, y.data(), out_,
         has_bias_ ? bias_.value.data() : nullptr,
         has_bias_ ? GemmEpilogue::kBiasCol : GemmEpilogue::kNone);
  return y;
}

Tensor Dense::Backward(const Tensor& grad_out) {
  GLSC_CHECK(cached_input_.defined());
  GLSC_CHECK(grad_out.shape().back() == out_);
  const Tensor& x = cached_input_;
  const std::int64_t rows = x.numel() / in_;

  // dW += g^T * x    ([out, rows] x [rows, in])
  Gemm(true, false, out_, in_, rows, 1.0f, grad_out.data(), out_, x.data(),
       in_, 1.0f, weight_.grad.data(), in_);
  if (has_bias_) {
    float* gb = bias_.grad.data();
    const float* g = grad_out.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < out_; ++c) gb[c] += g[r * out_ + c];
    }
  }
  // dx = g * W      ([rows, out] x [out, in])
  Tensor grad_in = Tensor::Empty(x.shape());
  Gemm(false, false, rows, in_, out_, 1.0f, grad_out.data(), out_,
       weight_.value.data(), in_, 0.0f, grad_in.data(), in_);
  cached_input_ = Tensor();
  return grad_in;
}

std::vector<Param*> Dense::Params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace glsc::nn
