#include "nn/layer.h"

namespace glsc::nn {

Tensor Layer::Forward(const Tensor& x, tensor::Workspace* ws) {
  (void)ws;
  return Forward(x, /*training=*/false);
}

Tensor Layer::ForwardBatched(const Tensor& x, tensor::Workspace* ws) {
  return Forward(x, ws);
}

bool Layer::ForwardInPlace(Tensor* x) {
  (void)x;
  return false;
}

Tensor Sequential::Forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->Forward(h, training);
  return h;
}

Tensor Sequential::Forward(const Tensor& x, tensor::Workspace* ws) {
  Tensor h = x;
  // Intermediates produced inside this chain are exclusively ours, so
  // elementwise layers and norms may overwrite them in place; the caller's
  // input (position 0) is never mutated.
  bool chain_owned = false;
  for (auto& layer : layers_) {
    if (chain_owned && layer->ForwardInPlace(&h)) continue;
    h = layer->Forward(h, ws);
    chain_owned = true;
  }
  return h;
}

Tensor Sequential::ForwardBatched(const Tensor& x, tensor::Workspace* ws) {
  Tensor h = x;
  // Same ownership reasoning as the workspace forward: intermediates are
  // chain-owned, so in-place layers may overwrite them. Non-in-place layers
  // get the batched forward so convs fuse across the whole leading dim.
  bool chain_owned = false;
  for (auto& layer : layers_) {
    if (chain_owned && layer->ForwardInPlace(&h)) continue;
    h = layer->ForwardBatched(h, ws);
    chain_owned = true;
  }
  return h;
}

Tensor Sequential::Backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::Params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->Params()) out.push_back(p);
  }
  return out;
}

void SaveParams(const std::vector<Param*>& params, ByteWriter* out) {
  out->PutVarU64(params.size());
  for (const Param* p : params) {
    out->PutString(p->name);
    out->PutVarU64(p->value.rank());
    for (const auto d : p->value.shape()) out->PutVarU64(static_cast<std::uint64_t>(d));
    out->PutBytes(p->value.data(),
                  static_cast<std::size_t>(p->value.numel()) * sizeof(float));
  }
}

void LoadParams(const std::vector<Param*>& params, ByteReader* in) {
  const std::uint64_t count = in->GetVarU64();
  GLSC_CHECK_MSG(count == params.size(),
                 "checkpoint has " << count << " params, model expects "
                                   << params.size());
  for (Param* p : params) {
    const std::string name = in->GetString();
    GLSC_CHECK_MSG(name == p->name,
                   "param order mismatch: got " << name << ", expected "
                                                << p->name);
    const std::uint64_t rank = in->GetVarU64();
    Shape shape(rank);
    for (auto& d : shape) d = static_cast<std::int64_t>(in->GetVarU64());
    GLSC_CHECK_MSG(shape == p->value.shape(),
                   "shape mismatch for " << name << ": checkpoint "
                                         << ShapeToString(shape) << " vs model "
                                         << ShapeToString(p->value.shape()));
    in->GetBytes(p->value.data(),
                 static_cast<std::size_t>(p->value.numel()) * sizeof(float));
  }
}

std::size_t TotalParamCount(const std::vector<Param*>& params) {
  std::size_t n = 0;
  for (const Param* p : params) n += static_cast<std::size_t>(p->value.numel());
  return n;
}

}  // namespace glsc::nn
