#include "nn/embedding.h"
#include <algorithm>

#include <cmath>

namespace glsc::nn {

namespace {

void FillSinusoidal(float* emb, std::int64_t timestep, std::int64_t dim) {
  const std::int64_t half = dim / 2;
  // Frequencies follow the standard 1e4^(-i/half) spacing.
  for (std::int64_t i = 0; i < half; ++i) {
    const double freq =
        std::exp(-std::log(10000.0) * static_cast<double>(i) / half);
    const double angle = static_cast<double>(timestep) * freq;
    emb[i] = static_cast<float>(std::sin(angle));
    emb[half + i] = static_cast<float>(std::cos(angle));
  }
}

}  // namespace

Tensor SinusoidalTimeEmbedding(std::int64_t timestep, std::int64_t dim) {
  GLSC_CHECK(dim % 2 == 0);
  Tensor emb = Tensor::Empty({dim});
  FillSinusoidal(emb.data(), timestep, dim);
  return emb;
}

Tensor SinusoidalTimeEmbedding(std::int64_t timestep, std::int64_t dim,
                               tensor::Workspace* ws) {
  GLSC_CHECK(dim % 2 == 0);
  Tensor emb = ws->NewTensor({dim});
  FillSinusoidal(emb.data(), timestep, dim);
  return emb;
}

Tensor SinusoidalTimeEmbeddingBatch(const std::vector<std::int64_t>& timesteps,
                                    std::int64_t dim) {
  Tensor out({static_cast<std::int64_t>(timesteps.size()), dim});
  for (std::size_t i = 0; i < timesteps.size(); ++i) {
    const Tensor e = SinusoidalTimeEmbedding(timesteps[i], dim);
    std::copy_n(e.data(), dim, out.data() + static_cast<std::int64_t>(i) * dim);
  }
  return out;
}

}  // namespace glsc::nn
