// Multi-head self-attention over sequences [B, L, D].
//
// The paper's UNet (§3.2, following Ho et al. video diffusion) uses
// *factorized space-time attention*: the same primitive applied twice with
// different reshapes of the [N, C, H, W] latent sequence —
//   spatial attention:  B = N frames,      L = H*W positions
//   temporal attention: B = H*W positions, L = N frames
// The reshape adapters live in diffusion/spacetime_unet.cc; this layer only
// implements the sequence attention with full analytic backward.
#pragma once

#include "nn/linear.h"
#include "tensor/gemm.h"

namespace glsc::nn {

class MultiHeadSelfAttention : public Layer {
 public:
  MultiHeadSelfAttention(std::int64_t dim, std::int64_t heads, Rng& rng,
                         const std::string& name = "attn");

  // x: [B, L, D] -> [B, L, D]
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  // Workspace forward with pooled GEMM packing scratch across the per-head
  // product loop (the products are tiny, so per-call pack allocation is the
  // dominant cost there). Byte-identical to Forward(x, ws).
  Tensor ForwardBatched(const Tensor& x, tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::string Name() const override { return "MultiHeadSelfAttention"; }

 private:
  std::int64_t dim_;
  std::int64_t heads_;
  std::int64_t head_dim_;
  Dense qkv_;   // D -> 3D
  Dense proj_;  // D -> D
  // Caches for backward.
  Tensor cached_q_, cached_k_, cached_v_;  // [B, heads, L, head_dim]
  Tensor cached_attn_;                     // [B, heads, L, L] (post-softmax)
  // Pooled GEMM packing buffers for ForwardBatched (thread-confined, like
  // Conv2d's column scratch).
  GemmScratch gemm_scratch_;
};

// Row-wise softmax over the last dimension; exposed for tests.
void SoftmaxLastDim(Tensor* t);

}  // namespace glsc::nn
