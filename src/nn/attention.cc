#include "nn/attention.h"

#include <algorithm>

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/simd/kernels.h"

namespace glsc::nn {

void SoftmaxLastDim(Tensor* t) {
  const std::int64_t d = t->shape().back();
  const std::int64_t rows = t->numel() / d;
  float* p = t->data();
  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (std::int64_t r = 0; r < rows; ++r) {
    kernels.softmax_row(p + r * d, d);
  }
}

MultiHeadSelfAttention::MultiHeadSelfAttention(std::int64_t dim,
                                               std::int64_t heads, Rng& rng,
                                               const std::string& name)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      qkv_(dim, 3 * dim, rng, /*bias=*/true, name + ".qkv"),
      proj_(dim, dim, rng, /*bias=*/true, name + ".proj") {
  GLSC_CHECK_MSG(dim % heads == 0, "dim " << dim << " % heads " << heads);
}

namespace {

// [B, L, 3D] rows -> per-head Q, K, V tensors [B, H, L, hd].
void SplitHeads(const float* src, float* pq, float* pk, float* pv,
                std::int64_t b, std::int64_t l, std::int64_t heads,
                std::int64_t head_dim, std::int64_t dim) {
  for (std::int64_t bi = 0; bi < b; ++bi) {
    for (std::int64_t li = 0; li < l; ++li) {
      const float* row = src + (bi * l + li) * 3 * dim;
      for (std::int64_t h = 0; h < heads; ++h) {
        float* dq = pq + ((bi * heads + h) * l + li) * head_dim;
        float* dk = pk + ((bi * heads + h) * l + li) * head_dim;
        float* dv = pv + ((bi * heads + h) * l + li) * head_dim;
        for (std::int64_t d = 0; d < head_dim; ++d) {
          dq[d] = row[h * head_dim + d];
          dk[d] = row[dim + h * head_dim + d];
          dv[d] = row[2 * dim + h * head_dim + d];
        }
      }
    }
  }
}

// scores = Q K^T / sqrt(hd); attn = softmax(scores); out = attn V.
// The per-(batch, head) products are tiny (L x hd with hd = dim/heads), so
// on batched paths a pooled GemmScratch keeps the GEMM packing buffers alive
// across the whole bh loop; values are byte-identical either way.
void AttentionCore(const float* pq, const float* pk, const float* pv,
                   float* pattn, float* pout, std::int64_t bh_count,
                   std::int64_t l, std::int64_t head_dim,
                   GemmScratch* scratch = nullptr) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  for (std::int64_t bh = 0; bh < bh_count; ++bh) {
    const float* q = pq + bh * l * head_dim;
    const float* k = pk + bh * l * head_dim;
    const float* v = pv + bh * l * head_dim;
    float* attn = pattn + bh * l * l;
    float* out = pout + bh * l * head_dim;
    Gemm(false, true, l, l, head_dim, scale, q, head_dim, k, head_dim, 0.0f,
         attn, l, scratch);
    const simd::KernelTable& kernels = simd::ActiveKernels();
    for (std::int64_t r = 0; r < l; ++r) kernels.softmax_row(attn + r * l, l);
    Gemm(false, false, l, head_dim, l, 1.0f, attn, l, v, head_dim, 0.0f, out,
         head_dim, scratch);
  }
}

// [B, H, L, hd] -> merged [B, L, D].
void MergeHeads(const float* src, float* dst, std::int64_t b, std::int64_t l,
                std::int64_t heads, std::int64_t head_dim, std::int64_t dim) {
  for (std::int64_t bi = 0; bi < b; ++bi) {
    for (std::int64_t h = 0; h < heads; ++h) {
      for (std::int64_t li = 0; li < l; ++li) {
        const float* s = src + ((bi * heads + h) * l + li) * head_dim;
        float* d = dst + (bi * l + li) * dim + h * head_dim;
        std::copy_n(s, head_dim, d);
      }
    }
  }
}

}  // namespace

Tensor MultiHeadSelfAttention::Forward(const Tensor& x, bool training) {
  GLSC_CHECK(x.rank() == 3 && x.dim(2) == dim_);
  const std::int64_t b = x.dim(0);
  const std::int64_t l = x.dim(1);

  Tensor qkv = qkv_.Forward(x, training);
  cached_q_ = Tensor::Empty({b, heads_, l, head_dim_});
  cached_k_ = Tensor::Empty({b, heads_, l, head_dim_});
  cached_v_ = Tensor::Empty({b, heads_, l, head_dim_});
  SplitHeads(qkv.data(), cached_q_.data(), cached_k_.data(), cached_v_.data(),
             b, l, heads_, head_dim_, dim_);

  cached_attn_ = Tensor::Empty({b, heads_, l, l});
  Tensor heads_out = Tensor::Empty({b, heads_, l, head_dim_});
  AttentionCore(cached_q_.data(), cached_k_.data(), cached_v_.data(),
                cached_attn_.data(), heads_out.data(), b * heads_, l,
                head_dim_);

  Tensor merged = Tensor::Empty({b, l, dim_});
  MergeHeads(heads_out.data(), merged.data(), b, l, heads_, head_dim_, dim_);
  return proj_.Forward(merged, training);
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x, tensor::Workspace* ws) {
  GLSC_CHECK(x.rank() == 3 && x.dim(2) == dim_);
  const std::int64_t b = x.dim(0);
  const std::int64_t l = x.dim(1);

  // All temporaries live in the arena; nothing is cached for backward.
  Tensor qkv = qkv_.Forward(x, ws);
  Tensor q = ws->NewTensor({b, heads_, l, head_dim_});
  Tensor k = ws->NewTensor({b, heads_, l, head_dim_});
  Tensor v = ws->NewTensor({b, heads_, l, head_dim_});
  SplitHeads(qkv.data(), q.data(), k.data(), v.data(), b, l, heads_, head_dim_,
             dim_);

  Tensor attn = ws->NewTensor({b, heads_, l, l});
  Tensor heads_out = ws->NewTensor({b, heads_, l, head_dim_});
  AttentionCore(q.data(), k.data(), v.data(), attn.data(), heads_out.data(),
                b * heads_, l, head_dim_);

  Tensor merged = ws->NewTensor({b, l, dim_});
  MergeHeads(heads_out.data(), merged.data(), b, l, heads_, head_dim_, dim_);
  return proj_.Forward(merged, ws);
}

Tensor MultiHeadSelfAttention::ForwardBatched(const Tensor& x,
                                              tensor::Workspace* ws) {
  if (ws == nullptr) return Forward(x, /*training=*/false);
  GLSC_CHECK(x.rank() == 3 && x.dim(2) == dim_);
  const std::int64_t b = x.dim(0);
  const std::int64_t l = x.dim(1);

  // Identical to the workspace forward except the attention core reuses the
  // member GemmScratch: batched decode runs thousands of tiny per-head
  // products, where per-call pack allocation would dominate the arithmetic.
  Tensor qkv = qkv_.Forward(x, ws);
  Tensor q = ws->NewTensor({b, heads_, l, head_dim_});
  Tensor k = ws->NewTensor({b, heads_, l, head_dim_});
  Tensor v = ws->NewTensor({b, heads_, l, head_dim_});
  SplitHeads(qkv.data(), q.data(), k.data(), v.data(), b, l, heads_, head_dim_,
             dim_);

  Tensor attn = ws->NewTensor({b, heads_, l, l});
  Tensor heads_out = ws->NewTensor({b, heads_, l, head_dim_});
  AttentionCore(q.data(), k.data(), v.data(), attn.data(), heads_out.data(),
                b * heads_, l, head_dim_, &gemm_scratch_);

  Tensor merged = ws->NewTensor({b, l, dim_});
  MergeHeads(heads_out.data(), merged.data(), b, l, heads_, head_dim_, dim_);
  return proj_.Forward(merged, ws);
}

Tensor MultiHeadSelfAttention::Backward(const Tensor& grad_out) {
  GLSC_CHECK(cached_attn_.defined());
  const std::int64_t b = grad_out.dim(0);
  const std::int64_t l = grad_out.dim(1);

  // Through the output projection.
  Tensor g_merged = proj_.Backward(grad_out);

  // Un-merge heads: [B, L, D] -> [B, H, L, hd].
  Tensor g_heads = Tensor::Empty({b, heads_, l, head_dim_});
  {
    const float* src = g_merged.data();
    float* dst = g_heads.data();
    for (std::int64_t bi = 0; bi < b; ++bi) {
      for (std::int64_t h = 0; h < heads_; ++h) {
        for (std::int64_t li = 0; li < l; ++li) {
          const float* s = src + (bi * l + li) * dim_ + h * head_dim_;
          float* d = dst + ((bi * heads_ + h) * l + li) * head_dim_;
          std::copy_n(s, head_dim_, d);
        }
      }
    }
  }

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Tensor g_q = Tensor::Empty({b, heads_, l, head_dim_});
  Tensor g_k = Tensor::Empty({b, heads_, l, head_dim_});
  Tensor g_v = Tensor::Empty({b, heads_, l, head_dim_});
  std::vector<float> g_attn(static_cast<std::size_t>(l * l));
  std::vector<float> g_scores(static_cast<std::size_t>(l * l));

  for (std::int64_t bh = 0; bh < b * heads_; ++bh) {
    const float* q = cached_q_.data() + bh * l * head_dim_;
    const float* k = cached_k_.data() + bh * l * head_dim_;
    const float* v = cached_v_.data() + bh * l * head_dim_;
    const float* attn = cached_attn_.data() + bh * l * l;
    const float* go = g_heads.data() + bh * l * head_dim_;

    // d_attn = go V^T ; d_v = attn^T go
    Gemm(false, true, l, l, head_dim_, 1.0f, go, head_dim_, v, head_dim_, 0.0f,
         g_attn.data(), l);
    Gemm(true, false, l, head_dim_, l, 1.0f, attn, l, go, head_dim_, 0.0f,
         g_v.data() + bh * l * head_dim_, head_dim_);

    // Softmax backward per row: ds = a * (da - sum(da * a)).
    for (std::int64_t r = 0; r < l; ++r) {
      const float* arow = attn + r * l;
      const float* darow = g_attn.data() + r * l;
      double dot = 0.0;
      for (std::int64_t i = 0; i < l; ++i) {
        dot += static_cast<double>(arow[i]) * darow[i];
      }
      float* dsrow = g_scores.data() + r * l;
      for (std::int64_t i = 0; i < l; ++i) {
        dsrow[i] = arow[i] * (darow[i] - static_cast<float>(dot));
      }
    }

    // d_q = scale * ds K ; d_k = scale * ds^T Q
    Gemm(false, false, l, head_dim_, l, scale, g_scores.data(), l, k, head_dim_,
         0.0f, g_q.data() + bh * l * head_dim_, head_dim_);
    Gemm(true, false, l, head_dim_, l, scale, g_scores.data(), l, q, head_dim_,
         0.0f, g_k.data() + bh * l * head_dim_, head_dim_);
  }

  // Reassemble d_qkv [B, L, 3D] and run through the qkv projection.
  Tensor g_qkv = Tensor::Empty({b, l, 3 * dim_});
  {
    float* dst = g_qkv.data();
    const float* pq = g_q.data();
    const float* pk = g_k.data();
    const float* pv = g_v.data();
    for (std::int64_t bi = 0; bi < b; ++bi) {
      for (std::int64_t li = 0; li < l; ++li) {
        float* row = dst + (bi * l + li) * 3 * dim_;
        for (std::int64_t h = 0; h < heads_; ++h) {
          const float* sq = pq + ((bi * heads_ + h) * l + li) * head_dim_;
          const float* sk = pk + ((bi * heads_ + h) * l + li) * head_dim_;
          const float* sv = pv + ((bi * heads_ + h) * l + li) * head_dim_;
          for (std::int64_t d = 0; d < head_dim_; ++d) {
            row[h * head_dim_ + d] = sq[d];
            row[dim_ + h * head_dim_ + d] = sk[d];
            row[2 * dim_ + h * head_dim_ + d] = sv[d];
          }
        }
      }
    }
  }
  cached_q_ = cached_k_ = cached_v_ = cached_attn_ = Tensor();
  return qkv_.Backward(g_qkv);
}

std::vector<Param*> MultiHeadSelfAttention::Params() {
  std::vector<Param*> out = qkv_.Params();
  for (Param* p : proj_.Params()) out.push_back(p);
  return out;
}

}  // namespace glsc::nn
