#include "nn/conv.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/im2col.h"

namespace glsc::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               Rng& rng, const std::string& name)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  const std::int64_t fan_in = in_channels * kernel * kernel;
  const float bound = std::sqrt(1.0f / static_cast<float>(fan_in));
  weight_ = Param(name + ".weight",
                  Tensor::Uniform({out_c_, fan_in}, rng, -bound, bound));
  bias_ = Param(name + ".bias", Tensor::Uniform({out_c_}, rng, -bound, bound));
}

float* Conv2d::ColScratch(std::int64_t floats) {
  if (static_cast<std::int64_t>(col_scratch_.size()) < floats) {
    col_scratch_.resize(static_cast<std::size_t>(floats));
  }
  return col_scratch_.data();
}

float* Conv2d::GradColScratch(std::int64_t floats) {
  if (static_cast<std::int64_t>(grad_col_scratch_.size()) < floats) {
    grad_col_scratch_.resize(static_cast<std::size_t>(floats));
  }
  return grad_col_scratch_.data();
}

float* Conv2d::BatchOutScratch(std::int64_t floats) {
  if (static_cast<std::int64_t>(batch_out_scratch_.size()) < floats) {
    batch_out_scratch_.resize(static_cast<std::size_t>(floats));
  }
  return batch_out_scratch_.data();
}

Shape Conv2d::OutputShape(const Tensor& x) const {
  GLSC_CHECK(x.rank() == 4 && x.dim(1) == in_c_);
  const std::int64_t oh = ConvOutDim(x.dim(2), kernel_, stride_, pad_);
  const std::int64_t ow = ConvOutDim(x.dim(3), kernel_, stride_, pad_);
  GLSC_CHECK_MSG(oh > 0 && ow > 0,
                 "conv output collapsed: in " << x.dim(2) << "x" << x.dim(3));
  return {x.dim(0), out_c_, oh, ow};
}

void Conv2d::ForwardInto(const Tensor& x, Tensor* y) {
  const std::int64_t batch = x.dim(0);
  const std::int64_t h = x.dim(2);
  const std::int64_t w = x.dim(3);
  const std::int64_t col_rows = in_c_ * kernel_ * kernel_;
  const std::int64_t col_cols = y->dim(2) * y->dim(3);

  // Im2Col writes every element (padding included), so the cached scratch
  // needs no clearing between calls.
  float* columns = ColScratch(col_rows * col_cols);
  for (std::int64_t b = 0; b < batch; ++b) {
    Im2Col(x.data() + b * in_c_ * h * w, in_c_, h, w, kernel_, kernel_,
           stride_, pad_, columns);
    // y_b = W [out_c, col_rows] * columns [col_rows, col_cols], with the
    // per-channel bias fused into the final-panel write-back.
    GemmEx(false, false, out_c_, col_cols, col_rows, 1.0f,
           weight_.value.data(), col_rows, columns, col_cols, 0.0f,
           y->data() + b * out_c_ * col_cols, col_cols, bias_.value.data(),
           GemmEpilogue::kBiasRow, &gemm_scratch_);
  }
}

void Conv2d::ForwardBatchedInto(const Tensor& x, Tensor* y) {
  const std::int64_t batch = x.dim(0);
  const std::int64_t h = x.dim(2);
  const std::int64_t w = x.dim(3);
  const std::int64_t col_rows = in_c_ * kernel_ * kernel_;
  const std::int64_t col_cols = y->dim(2) * y->dim(3);

  // Frames per merged GEMM, capped so the wide column matrix stays ~4 MiB
  // (L2-friendly; GEMM throughput is already saturated well before that).
  constexpr std::int64_t kMergeScratchFloats = std::int64_t{1} << 20;
  const std::int64_t chunk = std::max<std::int64_t>(
      1, std::min(batch, kMergeScratchFloats / (col_rows * col_cols)));
  if (chunk <= 1) {
    // One frame already fills the budget; merging would buy nothing.
    ForwardInto(x, y);
    return;
  }

  float* columns = ColScratch(col_rows * chunk * col_cols);
  float* staged = BatchOutScratch(out_c_ * chunk * col_cols);
  for (std::int64_t b0 = 0; b0 < batch; b0 += chunk) {
    const std::int64_t bc = std::min(chunk, batch - b0);
    const std::int64_t total_cols = bc * col_cols;
    // Frame f's patches occupy columns [f*col_cols, (f+1)*col_cols) of one
    // [col_rows, total_cols] matrix; every element gets written, so the
    // reused scratch needs no clearing.
    for (std::int64_t f = 0; f < bc; ++f) {
      Im2ColLd(x.data() + (b0 + f) * in_c_ * h * w, in_c_, h, w, kernel_,
               kernel_, stride_, pad_, columns + f * col_cols, total_cols);
    }
    GemmEx(false, false, out_c_, total_cols, col_rows, 1.0f,
           weight_.value.data(), col_rows, columns, total_cols, 0.0f, staged,
           total_cols, bias_.value.data(), GemmEpilogue::kBiasRow,
           &gemm_scratch_);
    // Un-interleave [out_c, bc * col_cols] back into per-frame NCHW planes.
    for (std::int64_t f = 0; f < bc; ++f) {
      float* dst = y->data() + (b0 + f) * out_c_ * col_cols;
      for (std::int64_t c = 0; c < out_c_; ++c) {
        std::memcpy(dst + c * col_cols, staged + c * total_cols + f * col_cols,
                    static_cast<std::size_t>(col_cols) * sizeof(float));
      }
    }
  }
}

Tensor Conv2d::ForwardBatched(const Tensor& x, tensor::Workspace* ws) {
  Tensor y =
      ws != nullptr ? ws->NewTensor(OutputShape(x)) : Tensor::Empty(OutputShape(x));
  ForwardBatchedInto(x, &y);
  return y;
}

Tensor Conv2d::Forward(const Tensor& x, bool /*training*/) {
  Tensor y = Tensor::Empty(OutputShape(x));
  cached_input_ = x;
  ForwardInto(x, &y);
  return y;
}

Tensor Conv2d::Forward(const Tensor& x, tensor::Workspace* ws) {
  Tensor y = ws->NewTensor(OutputShape(x));
  ForwardInto(x, &y);
  return y;
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  GLSC_CHECK(cached_input_.defined());
  const Tensor& x = cached_input_;
  const std::int64_t batch = x.dim(0);
  const std::int64_t h = x.dim(2);
  const std::int64_t w = x.dim(3);
  const std::int64_t oh = grad_out.dim(2);
  const std::int64_t ow = grad_out.dim(3);
  const std::int64_t col_rows = in_c_ * kernel_ * kernel_;
  const std::int64_t col_cols = oh * ow;

  Tensor grad_in = Tensor::Empty(x.shape());
  // Shares the Forward scratch (same shape for same input geometry) plus a
  // second buffer for dcolumns; neither re-allocates in steady state.
  float* columns = ColScratch(col_rows * col_cols);
  float* grad_cols = GradColScratch(col_rows * col_cols);

  for (std::int64_t b = 0; b < batch; ++b) {
    const float* g_b = grad_out.data() + b * out_c_ * col_cols;

    // dW += g_b [out_c, cols] * columns^T [cols, col_rows]
    Im2Col(x.data() + b * in_c_ * h * w, in_c_, h, w, kernel_, kernel_,
           stride_, pad_, columns);
    Gemm(false, true, out_c_, col_rows, col_cols, 1.0f, g_b, col_cols,
         columns, col_cols, 1.0f, weight_.grad.data(), col_rows);

    // db += sum over spatial of g_b
    float* gb = bias_.grad.data();
    for (std::int64_t c = 0; c < out_c_; ++c) {
      double s = 0.0;
      for (std::int64_t i = 0; i < col_cols; ++i) s += g_b[c * col_cols + i];
      gb[c] += static_cast<float>(s);
    }

    // dcolumns = W^T [col_rows, out_c] * g_b [out_c, cols]; scatter to input.
    Gemm(true, false, col_rows, col_cols, out_c_, 1.0f, weight_.value.data(),
         col_rows, g_b, col_cols, 0.0f, grad_cols, col_cols);
    std::memset(grad_in.data() + b * in_c_ * h * w, 0,
                static_cast<std::size_t>(in_c_ * h * w) * sizeof(float));
    Col2Im(grad_cols, in_c_, h, w, kernel_, kernel_, stride_, pad_,
           grad_in.data() + b * in_c_ * h * w);
  }
  cached_input_ = Tensor();
  return grad_in;
}

std::vector<Param*> Conv2d::Params() { return {&weight_, &bias_}; }

namespace {

void Upsample2xApply(const float* src, float* dst, std::int64_t bc,
                     std::int64_t h, std::int64_t w) {
  for (std::int64_t p = 0; p < bc; ++p) {
    const float* sp = src + p * h * w;
    float* dp = dst + p * 4 * h * w;
    for (std::int64_t i = 0; i < h; ++i) {
      for (std::int64_t j = 0; j < w; ++j) {
        const float v = sp[i * w + j];
        float* cell = dp + (2 * i) * (2 * w) + 2 * j;
        cell[0] = v;
        cell[1] = v;
        cell[2 * w] = v;
        cell[2 * w + 1] = v;
      }
    }
  }
}

void AvgPool2xApply(const float* src, float* dst, std::int64_t bc,
                    std::int64_t h, std::int64_t w) {
  for (std::int64_t p = 0; p < bc; ++p) {
    const float* sp = src + p * h * w;
    float* dp = dst + p * (h / 2) * (w / 2);
    for (std::int64_t i = 0; i < h / 2; ++i) {
      for (std::int64_t j = 0; j < w / 2; ++j) {
        const float* cell = sp + (2 * i) * w + 2 * j;
        dp[i * (w / 2) + j] =
            0.25f * (cell[0] + cell[1] + cell[w] + cell[w + 1]);
      }
    }
  }
}

}  // namespace

Tensor NearestUpsample2x::Forward(const Tensor& x, bool /*training*/) {
  GLSC_CHECK(x.rank() == 4);
  cached_in_shape_ = x.shape();
  Tensor y = Tensor::Empty({x.dim(0), x.dim(1), 2 * x.dim(2), 2 * x.dim(3)});
  Upsample2xApply(x.data(), y.data(), x.dim(0) * x.dim(1), x.dim(2), x.dim(3));
  return y;
}

Tensor NearestUpsample2x::Forward(const Tensor& x, tensor::Workspace* ws) {
  GLSC_CHECK(x.rank() == 4);
  Tensor y = ws->NewTensor({x.dim(0), x.dim(1), 2 * x.dim(2), 2 * x.dim(3)});
  Upsample2xApply(x.data(), y.data(), x.dim(0) * x.dim(1), x.dim(2), x.dim(3));
  return y;
}

Tensor NearestUpsample2x::Backward(const Tensor& grad_out) {
  GLSC_CHECK(!cached_in_shape_.empty());
  const std::int64_t bc = cached_in_shape_[0] * cached_in_shape_[1];
  const std::int64_t h = cached_in_shape_[2];
  const std::int64_t w = cached_in_shape_[3];
  Tensor grad_in = Tensor::Empty(cached_in_shape_);
  const float* g = grad_out.data();
  float* gi = grad_in.data();
  for (std::int64_t p = 0; p < bc; ++p) {
    const float* gp = g + p * 4 * h * w;
    float* ip = gi + p * h * w;
    for (std::int64_t i = 0; i < h; ++i) {
      for (std::int64_t j = 0; j < w; ++j) {
        const float* cell = gp + (2 * i) * (2 * w) + 2 * j;
        ip[i * w + j] = cell[0] + cell[1] + cell[2 * w] + cell[2 * w + 1];
      }
    }
  }
  cached_in_shape_.clear();
  return grad_in;
}

Tensor AvgPool2x::Forward(const Tensor& x, bool /*training*/) {
  GLSC_CHECK(x.rank() == 4);
  GLSC_CHECK(x.dim(2) % 2 == 0 && x.dim(3) % 2 == 0);
  cached_in_shape_ = x.shape();
  Tensor y = Tensor::Empty({x.dim(0), x.dim(1), x.dim(2) / 2, x.dim(3) / 2});
  AvgPool2xApply(x.data(), y.data(), x.dim(0) * x.dim(1), x.dim(2), x.dim(3));
  return y;
}

Tensor AvgPool2x::Forward(const Tensor& x, tensor::Workspace* ws) {
  GLSC_CHECK(x.rank() == 4);
  GLSC_CHECK(x.dim(2) % 2 == 0 && x.dim(3) % 2 == 0);
  Tensor y = ws->NewTensor({x.dim(0), x.dim(1), x.dim(2) / 2, x.dim(3) / 2});
  AvgPool2xApply(x.data(), y.data(), x.dim(0) * x.dim(1), x.dim(2), x.dim(3));
  return y;
}

Tensor AvgPool2x::Backward(const Tensor& grad_out) {
  GLSC_CHECK(!cached_in_shape_.empty());
  const std::int64_t bc = cached_in_shape_[0] * cached_in_shape_[1];
  const std::int64_t h = cached_in_shape_[2];
  const std::int64_t w = cached_in_shape_[3];
  Tensor grad_in = Tensor::Empty(cached_in_shape_);
  const float* g = grad_out.data();
  float* gi = grad_in.data();
  for (std::int64_t p = 0; p < bc; ++p) {
    const float* gp = g + p * (h / 2) * (w / 2);
    float* ip = gi + p * h * w;
    for (std::int64_t i = 0; i < h / 2; ++i) {
      for (std::int64_t j = 0; j < w / 2; ++j) {
        const float v = 0.25f * gp[i * (w / 2) + j];
        float* cell = ip + (2 * i) * w + 2 * j;
        cell[0] = v;
        cell[1] = v;
        cell[w] = v;
        cell[w + 1] = v;
      }
    }
  }
  cached_in_shape_.clear();
  return grad_in;
}

}  // namespace glsc::nn
