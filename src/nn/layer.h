// Layer abstraction with explicit forward/backward passes.
//
// Rationale: a taped autograd engine is overkill for the fixed architectures
// in this paper, and explicit backward passes are straightforward to verify
// with finite differences (tests/nn_gradcheck_test.cc does exactly that for
// every layer). Each layer caches whatever it needs from Forward; calling
// Backward consumes that cache. A layer instance must therefore see exactly
// one Forward per Backward — networks that apply the same transformation at
// several places hold separate instances (weight sharing is not needed here).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "tensor/workspace.h"
#include "util/bytes.h"

namespace glsc::nn {

// A trainable tensor with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void ZeroGrad() { grad.Zero(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  // `training` toggles noise-style behaviours (dropout would live here; the
  // hyperprior's additive-noise quantization proxy is handled by the model).
  virtual Tensor Forward(const Tensor& x, bool training) = 0;

  // Workspace-aware INFERENCE forward: the result (and any scratch) is
  // allocated from `ws` (non-null), so the returned tensor borrows arena
  // memory valid only until the caller's enclosing Workspace::Scope rewinds.
  // Overriding layers cache nothing — never follow with Backward.
  // Numerically identical to Forward(x, /*training=*/false). The default
  // falls back to the allocating inference forward, which MAY cache the
  // input for Backward — a layer fed arena-backed inputs on a workspace path
  // must override this (every built-in layer does) or it would retain a
  // dangling view past the scope rewind.
  virtual Tensor Forward(const Tensor& x, tensor::Workspace* ws);

  // Batched inference forward: like Forward(x, ws) but the layer may fuse
  // work across the full leading dimension (stacked windows x frames) — e.g.
  // Conv2d merges all frames into wide GEMMs instead of one GEMM per frame.
  // Output is byte-identical to Forward(x, ws); the default simply falls
  // back to it. Layers that never see batched decode need not override.
  virtual Tensor ForwardBatched(const Tensor& x, tensor::Workspace* ws);

  // In-place inference where shapes allow (elementwise layers, norms):
  // overwrites *x with the layer output and returns true; the default
  // returns false and the caller falls back to Forward. Only valid when the
  // caller exclusively owns x's storage.
  virtual bool ForwardInPlace(Tensor* x);

  // Receives dL/d(output), returns dL/d(input), accumulates into param grads.
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  // Non-owning views of trainable parameters.
  virtual std::vector<Param*> Params() { return {}; }

  virtual std::string Name() const = 0;
};

// Runs layers in order. Owns its children.
class Sequential : public Layer {
 public:
  Sequential() = default;

  template <typename L, typename... Args>
  L* Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void Append(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  Tensor ForwardBatched(const Tensor& x, tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::string Name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer* at(std::size_t i) { return layers_.at(i).get(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

// ---- parameter (de)serialization ----
// Format: count, then per-param (name, shape, float32 payload). Loading
// requires exact name/shape agreement so a checkpoint can never be silently
// applied to the wrong architecture.
void SaveParams(const std::vector<Param*>& params, ByteWriter* out);
void LoadParams(const std::vector<Param*>& params, ByteReader* in);

std::size_t TotalParamCount(const std::vector<Param*>& params);

}  // namespace glsc::nn
