// Layer abstraction with explicit forward/backward passes.
//
// Rationale: a taped autograd engine is overkill for the fixed architectures
// in this paper, and explicit backward passes are straightforward to verify
// with finite differences (tests/nn_gradcheck_test.cc does exactly that for
// every layer). Each layer caches whatever it needs from Forward; calling
// Backward consumes that cache. A layer instance must therefore see exactly
// one Forward per Backward — networks that apply the same transformation at
// several places hold separate instances (weight sharing is not needed here).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/bytes.h"

namespace glsc::nn {

// A trainable tensor with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void ZeroGrad() { grad.Zero(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  // `training` toggles noise-style behaviours (dropout would live here; the
  // hyperprior's additive-noise quantization proxy is handled by the model).
  virtual Tensor Forward(const Tensor& x, bool training) = 0;

  // Receives dL/d(output), returns dL/d(input), accumulates into param grads.
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  // Non-owning views of trainable parameters.
  virtual std::vector<Param*> Params() { return {}; }

  virtual std::string Name() const = 0;
};

// Runs layers in order. Owns its children.
class Sequential : public Layer {
 public:
  Sequential() = default;

  template <typename L, typename... Args>
  L* Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void Append(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::string Name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer* at(std::size_t i) { return layers_.at(i).get(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

// ---- parameter (de)serialization ----
// Format: count, then per-param (name, shape, float32 payload). Loading
// requires exact name/shape agreement so a checkpoint can never be silently
// applied to the wrong architecture.
void SaveParams(const std::vector<Param*>& params, ByteWriter* out);
void LoadParams(const std::vector<Param*>& params, ByteReader* in);

std::size_t TotalParamCount(const std::vector<Param*>& params);

}  // namespace glsc::nn
