// Adapter implementations of api::Compressor over the GLSC pipeline and the
// five baselines. Normally reached through Compressor::Create(name); the
// concrete types are exposed here for callers that already hold a trained
// model instance and want to lift it into the polymorphic API (WrapGlsc), or
// that need adapter-specific accessors.
#pragma once

#include <memory>

#include "api/compressor.h"
#include "baselines/cdc.h"
#include "baselines/gcd.h"
#include "baselines/sz_like.h"
#include "baselines/vae_sr.h"
#include "baselines/zfp_like.h"
#include "core/glsc_compressor.h"

namespace glsc::api {

// Registers the six built-in codecs. Called lazily by Compressor::Create;
// callers never need to invoke it directly.
void RegisterBuiltinCodecs();

// ---------------------------------------------------------------------------
// Rule-based codecs (model-free): the payload is the codec's own
// self-describing bitstream. Error bounds are converted from physical /
// relative units to the normalized frame representation using the per-frame
// norms, conservatively (min over frames) for the absolute mode.
// ---------------------------------------------------------------------------

class SzAdapter final : public Compressor {
 public:
  explicit SzAdapter(const CodecOptions& options) : options_(options) {}

  std::string name() const override { return "sz"; }
  Capabilities capabilities() const override;
  std::int64_t window() const override { return options_.window; }
  std::vector<std::uint8_t> CompressWindow(
      const Tensor& window, const ErrorBound& bound,
      const std::vector<data::FrameNorm>& norms) override;
  Tensor DecompressWindow(const std::vector<std::uint8_t>& payload) override;
  std::unique_ptr<Compressor> Clone() override {
    return std::make_unique<SzAdapter>(options_);
  }

 private:
  CodecOptions options_;
  baselines::SZLikeCompressor codec_;
};

class ZfpAdapter final : public Compressor {
 public:
  explicit ZfpAdapter(const CodecOptions& options) : options_(options) {}

  std::string name() const override { return "zfp"; }
  Capabilities capabilities() const override;
  std::int64_t window() const override { return options_.window; }
  std::vector<std::uint8_t> CompressWindow(
      const Tensor& window, const ErrorBound& bound,
      const std::vector<data::FrameNorm>& norms) override;
  Tensor DecompressWindow(const std::vector<std::uint8_t>& payload) override;
  std::unique_ptr<Compressor> Clone() override {
    return std::make_unique<ZfpAdapter>(options_);
  }

 private:
  CodecOptions options_;
  baselines::ZFPLikeCompressor codec_;
};

// ---------------------------------------------------------------------------
// GLSC: the paper's pipeline. Payload is the CompressedWindow record body
// (identical to a v1 archive record), so v1 archives migrate byte-for-byte.
// ---------------------------------------------------------------------------

class GlscAdapter final : public Compressor {
 public:
  explicit GlscAdapter(const CodecOptions& options);
  // Full-config construction for callers that need knobs CodecOptions does
  // not surface (keyframe strategy, PCA settings, ...).
  GlscAdapter(const core::GlscConfig& config, std::int64_t sample_steps);
  // Wraps an existing trained compressor WITHOUT taking ownership; the caller
  // keeps the instance alive for the adapter's lifetime. sample_steps <= 0
  // uses the wrapped config's default.
  GlscAdapter(core::GlscCompressor* borrowed, std::int64_t sample_steps);

  std::string name() const override { return "glsc"; }
  Capabilities capabilities() const override;
  std::int64_t window() const override { return glsc_->config().window; }
  std::vector<std::uint8_t> CompressWindow(
      const Tensor& window, const ErrorBound& bound,
      const std::vector<data::FrameNorm>& norms) override;
  Tensor DecompressWindow(const std::vector<std::uint8_t>& payload) override;
  // Workspace-aware hot paths: the diffusion sampler + VAE decode run out of
  // `ws` (byte-identical results, zero steady-state allocations).
  std::vector<std::uint8_t> CompressWindow(
      const Tensor& window, const ErrorBound& bound,
      const std::vector<data::FrameNorm>& norms,
      tensor::Workspace* ws) override;
  Tensor DecompressWindow(const std::vector<std::uint8_t>& payload,
                          tensor::Workspace* ws) override;
  // Batched decode through GlscCompressor::DecompressBatch: one diffusion
  // sampler + VAE pass over all payloads. Byte-identical per payload to
  // DecompressWindow.
  std::vector<Tensor> DecompressWindows(
      const std::vector<const std::vector<std::uint8_t>*>& payloads,
      tensor::Workspace* ws) override;
  void Train(const data::SequenceDataset& dataset,
             const TrainOptions& options) override;
  void SaveModel(ByteWriter* out) override { glsc_->Save(out); }
  void LoadModel(ByteReader* in) override { glsc_->Load(in); }
  std::unique_ptr<Compressor> Clone() override;

  core::GlscCompressor& compressor() { return *glsc_; }

 private:
  std::int64_t sample_steps_ = 0;
  std::unique_ptr<core::GlscCompressor> owned_;
  core::GlscCompressor* glsc_ = nullptr;  // owned_.get() unless borrowed
};

// Convenience: lifts a trained GlscCompressor into the polymorphic API
// (non-owning).
std::unique_ptr<Compressor> WrapGlsc(core::GlscCompressor* compressor,
                                     std::int64_t sample_steps = 0);

// ---------------------------------------------------------------------------
// Learned baselines (best effort, no declared bound).
// ---------------------------------------------------------------------------

class CdcAdapter final : public Compressor {
 public:
  explicit CdcAdapter(const CodecOptions& options);

  std::string name() const override { return "cdc"; }
  Capabilities capabilities() const override;
  std::int64_t window() const override { return options_.window; }
  std::vector<std::uint8_t> CompressWindow(
      const Tensor& window, const ErrorBound& bound,
      const std::vector<data::FrameNorm>& norms) override;
  Tensor DecompressWindow(const std::vector<std::uint8_t>& payload) override;
  void Train(const data::SequenceDataset& dataset,
             const TrainOptions& options) override;
  void SaveModel(ByteWriter* out) override { codec_->Save(out); }
  void LoadModel(ByteReader* in) override { codec_->Load(in); }
  std::unique_ptr<Compressor> Clone() override;

 private:
  CodecOptions options_;
  std::unique_ptr<baselines::CDCCompressor> codec_;
};

class GcdAdapter final : public Compressor {
 public:
  explicit GcdAdapter(const CodecOptions& options);

  std::string name() const override { return "gcd"; }
  Capabilities capabilities() const override;
  std::int64_t window() const override { return options_.window; }
  std::vector<std::uint8_t> CompressWindow(
      const Tensor& window, const ErrorBound& bound,
      const std::vector<data::FrameNorm>& norms) override;
  Tensor DecompressWindow(const std::vector<std::uint8_t>& payload) override;
  void Train(const data::SequenceDataset& dataset,
             const TrainOptions& options) override;
  void SaveModel(ByteWriter* out) override { codec_->Save(out); }
  void LoadModel(ByteReader* in) override { codec_->Load(in); }
  std::unique_ptr<Compressor> Clone() override;

 private:
  CodecOptions options_;
  std::unique_ptr<baselines::GCDCompressor> codec_;
};

class VaeSrAdapter final : public Compressor {
 public:
  explicit VaeSrAdapter(const CodecOptions& options);

  std::string name() const override { return "vae_sr"; }
  Capabilities capabilities() const override;
  std::int64_t window() const override { return options_.window; }
  std::vector<std::uint8_t> CompressWindow(
      const Tensor& window, const ErrorBound& bound,
      const std::vector<data::FrameNorm>& norms) override;
  Tensor DecompressWindow(const std::vector<std::uint8_t>& payload) override;
  void Train(const data::SequenceDataset& dataset,
             const TrainOptions& options) override;
  void SaveModel(ByteWriter* out) override { codec_->Save(out); }
  void LoadModel(ByteReader* in) override { codec_->Load(in); }
  std::unique_ptr<Compressor> Clone() override;

 private:
  CodecOptions options_;
  std::unique_ptr<baselines::VAESRCompressor> codec_;
};

}  // namespace glsc::api
