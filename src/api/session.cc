#include "api/session.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/thread_pool.h"

namespace glsc::api {

EncodeSession::EncodeSession(Compressor* codec, std::int64_t variables,
                             std::int64_t height, std::int64_t width,
                             const SessionOptions& options)
    : codec_(codec),
      variables_(variables),
      height_(height),
      width_(width),
      options_(options) {
  GLSC_CHECK(codec_ != nullptr);
  GLSC_CHECK(variables_ > 0 && height_ > 0 && width_ > 0);
  window_ = codec_->window();
  GLSC_CHECK_MSG(window_ > 0, "codec reports non-positive window");
  GLSC_CHECK_MSG(codec_->capabilities().streaming,
                 "codec '" << codec_->name()
                           << "' does not support streaming sessions");
  GLSC_CHECK_MSG(codec_->capabilities().Supports(options_.bound.mode),
                 "codec '" << codec_->name()
                           << "' does not support the requested bound mode");
  buffered_.resize(static_cast<std::size_t>(variables_));
  norms_.resize(static_cast<std::size_t>(variables_));

  workers_.push_back(codec_);
  for (auto* extra : options_.extra_workers) {
    GLSC_CHECK(extra != nullptr);
    workers_.push_back(extra);
  }
  while (static_cast<std::int64_t>(workers_.size()) < options_.parallelism) {
    clones_.push_back(codec_->Clone());
    workers_.push_back(clones_.back().get());
  }
  workspaces_.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workspaces_.push_back(std::make_unique<tensor::Workspace>());
  }
}

EncodeSession::~EncodeSession() = default;

void EncodeSession::Push(const Tensor& chunk) {
  GLSC_CHECK_MSG(!finished_, "Push after Finish");
  GLSC_CHECK_MSG(chunk.rank() == 4, "chunk must be [V, t, H, W]");
  GLSC_CHECK_MSG(chunk.dim(0) == variables_ && chunk.dim(2) == height_ &&
                     chunk.dim(3) == width_,
                 "chunk geometry " << ShapeToString(chunk.shape())
                                   << " does not match session [V, ., H, W] = ["
                                   << variables_ << ", ., " << height_ << ", "
                                   << width_ << "]");
  const std::int64_t t = chunk.dim(1);
  GLSC_CHECK(t >= 1);
  const std::int64_t hw = height_ * width_;
  for (std::int64_t v = 0; v < variables_; ++v) {
    auto& buffer = buffered_[static_cast<std::size_t>(v)];
    auto& norms = norms_[static_cast<std::size_t>(v)];
    for (std::int64_t i = 0; i < t; ++i) {
      const float* frame = chunk.data() + (v * t + i) * hw;
      const data::FrameNorm fn = data::ComputeFrameNorm(frame, hw);
      norms.push_back(fn);
      const std::size_t base = buffer.size();
      buffer.resize(base + static_cast<std::size_t>(hw));
      float* dst = buffer.data() + base;
      for (std::int64_t k = 0; k < hw; ++k) {
        dst[k] = (frame[k] - fn.mean) / fn.range;
      }
    }
  }
  buffered_frames_ += t;
  frames_pushed_ += t;
  CutCompletedWindows();
  // Single worker: emit records as windows complete (true streaming). With
  // multiple workers, buffer enough windows to keep them all busy per flush.
  if (workers_.size() == 1 ||
      pending_.size() >= 2 * workers_.size()) {
    FlushPending();
  }
}

void EncodeSession::CutCompletedWindows() {
  const std::int64_t count = buffered_frames_ / window_;
  if (count == 0) return;
  const std::int64_t hw = height_ * width_;
  // t0-major, variable-minor emission order; one bulk erase per variable so a
  // large Push stays linear in the frames moved.
  for (std::int64_t w = 0; w < count; ++w) {
    const std::int64_t t0 = next_t0_ + w * window_;
    for (std::int64_t v = 0; v < variables_; ++v) {
      const auto& buffer = buffered_[static_cast<std::size_t>(v)];
      const auto& norms = norms_[static_cast<std::size_t>(v)];
      PendingWindow pw;
      pw.variable = v;
      pw.t0 = t0;
      pw.valid_frames = window_;
      pw.window = Tensor({window_, height_, width_});
      std::copy_n(buffer.data() + w * window_ * hw, window_ * hw,
                  pw.window.data());
      pw.norms.assign(norms.begin() + static_cast<std::ptrdiff_t>(t0),
                      norms.begin() + static_cast<std::ptrdiff_t>(t0 + window_));
      pending_.push_back(std::move(pw));
    }
  }
  for (std::int64_t v = 0; v < variables_; ++v) {
    auto& buffer = buffered_[static_cast<std::size_t>(v)];
    buffer.erase(buffer.begin(), buffer.begin() + count * window_ * hw);
  }
  buffered_frames_ -= count * window_;
  next_t0_ += count * window_;
}

void EncodeSession::FlushPending() {
  if (pending_.empty()) return;
  const std::size_t n = pending_.size();
  std::vector<std::vector<std::uint8_t>> payloads(n);
  if (workers_.size() == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      payloads[i] = codec_->CompressWindow(pending_[i].window, options_.bound,
                                           pending_[i].norms,
                                           workspaces_[0].get());
    }
  } else {
    // Static round-robin: worker k owns windows k, k+W, k+2W, ... so each
    // model instance (and its workspace) is touched by exactly one thread,
    // and the batching of Push calls cannot change which worker (all
    // identical) compresses which window within a flush.
    ThreadPool& pool = GlobalThreadPool();
    pool.ParallelFor(workers_.size(), [&](std::size_t k) {
      for (std::size_t i = k; i < n; i += workers_.size()) {
        payloads[i] = workers_[k]->CompressWindow(
            pending_[i].window, options_.bound, pending_[i].norms,
            workspaces_[k].get());
      }
    });
  }
  for (std::size_t i = 0; i < n; ++i) {
    core::ArchiveEntry entry;
    entry.variable = pending_[i].variable;
    entry.t0 = pending_[i].t0;
    entry.valid_frames = pending_[i].valid_frames;
    entry.payload = std::move(payloads[i]);
    entries_.push_back(std::move(entry));
  }
  records_emitted_ += static_cast<std::int64_t>(n);
  pending_.clear();
}

core::DatasetArchive EncodeSession::Finish() {
  GLSC_CHECK_MSG(!finished_, "Finish called twice");
  finished_ = true;

  // Pad the partial tail window up to the codec window by replicating the
  // last real frame; the record remembers the true length.
  if (buffered_frames_ > 0) {
    const std::int64_t valid = buffered_frames_;
    const std::int64_t hw = height_ * width_;
    for (std::int64_t v = 0; v < variables_; ++v) {
      auto& buffer = buffered_[static_cast<std::size_t>(v)];
      const auto& norms = norms_[static_cast<std::size_t>(v)];
      PendingWindow pw;
      pw.variable = v;
      pw.t0 = next_t0_;
      pw.valid_frames = valid;
      pw.window = Tensor({window_, height_, width_});
      std::copy_n(buffer.data(), valid * hw, pw.window.data());
      const float* last = buffer.data() + (valid - 1) * hw;
      for (std::int64_t f = valid; f < window_; ++f) {
        std::copy_n(last, hw, pw.window.data() + f * hw);
      }
      pw.norms.assign(
          norms.begin() + static_cast<std::ptrdiff_t>(next_t0_),
          norms.begin() + static_cast<std::ptrdiff_t>(next_t0_ + valid));
      const data::FrameNorm last_norm = pw.norms.back();
      pw.norms.resize(static_cast<std::size_t>(window_), last_norm);
      buffer.clear();
      pending_.push_back(std::move(pw));
    }
    buffered_frames_ = 0;
  }
  FlushPending();

  std::vector<data::FrameNorm> flat;
  flat.reserve(static_cast<std::size_t>(variables_ * frames_pushed_));
  for (const auto& per_variable : norms_) {
    flat.insert(flat.end(), per_variable.begin(), per_variable.end());
  }
  core::DatasetArchive archive(
      codec_->name(), Shape{variables_, frames_pushed_, height_, width_},
      window_, std::move(flat));
  for (auto& entry : entries_) {
    archive.Add(entry.variable, entry.t0, entry.valid_frames,
                std::move(entry.payload));
  }
  entries_.clear();
  return archive;
}

// ---------------------------------------------------------------------------

DecodeSession::DecodeSession(Compressor* codec,
                             const core::DatasetArchive& archive)
    : codec_(codec), reader_(core::ArchiveReader::FromArchive(archive)) {
  GLSC_CHECK(codec_ != nullptr);
  GLSC_CHECK_MSG(codec_->name() == reader_.codec(),
                 "archive was written by codec '"
                     << reader_.codec() << "' but decode codec is '"
                     << codec_->name() << "'");
  std::map<std::int64_t, std::vector<std::size_t>> by_t0;
  for (std::size_t i = 0; i < reader_.records().size(); ++i) {
    by_t0[reader_.records()[i].t0].push_back(i);
  }
  slabs_.reserve(by_t0.size());
  for (auto& [t0, indices] : by_t0) {
    slabs_.emplace_back(t0, std::move(indices));
  }
}

bool DecodeSession::Next(Tensor* out, std::int64_t* t0_out) {
  GLSC_CHECK(out != nullptr);
  if (cursor_ >= slabs_.size()) return false;
  const auto& [t0, indices] = slabs_[cursor_++];

  const Shape& shape = reader_.dataset_shape();
  const std::int64_t variables = shape[0];
  const std::int64_t hw = shape[2] * shape[3];

  struct Decoded {
    std::int64_t variable;
    std::int64_t valid;
    Tensor recon;
  };
  std::vector<Decoded> decoded;
  decoded.reserve(indices.size());
  std::int64_t slab_frames = 0;
  for (const std::size_t index : indices) {
    const core::RecordRef& ref = reader_.records()[index];
    // Borrowed-archive readers expose the payload in place; decode without
    // the copy ReadPayload would make.
    const std::vector<std::uint8_t>* payload = reader_.PayloadView(index);
    Tensor recon =
        payload != nullptr
            ? codec_->DecompressWindow(*payload, &workspace_)
            : codec_->DecompressWindow(reader_.ReadPayload(index, &workspace_),
                                       &workspace_);
    GLSC_CHECK_MSG(recon.rank() == 3 && recon.dim(1) == shape[2] &&
                       recon.dim(2) == shape[3],
                   "decoded window geometry mismatch");
    GLSC_CHECK(ref.valid_frames <= recon.dim(0));
    // Every variable's record at one t0 describes the same time span, so
    // their true lengths must agree — a shorter record would otherwise leave
    // rows of the slab holding zeros that look like data.
    GLSC_CHECK_MSG(slab_frames == 0 || ref.valid_frames == slab_frames,
                   "records at t0 " << t0 << " disagree on valid_frames ("
                                    << ref.valid_frames << " vs "
                                    << slab_frames << ")");
    slab_frames = ref.valid_frames;
    decoded.push_back({ref.variable, ref.valid_frames, std::move(recon)});
  }

  // Zero-initialized (Tensor fills its storage): variables with no record in
  // this slab read as zero rather than garbage.
  Tensor slab({variables, slab_frames, shape[2], shape[3]});
  for (const auto& d : decoded) {
    for (std::int64_t f = 0; f < d.valid; ++f) {
      const data::FrameNorm& fn = reader_.norm(d.variable, t0 + f);
      const float* src = d.recon.data() + f * hw;
      float* dst = slab.data() + (d.variable * slab_frames + f) * hw;
      for (std::int64_t k = 0; k < hw; ++k) dst[k] = src[k] * fn.range + fn.mean;
    }
  }
  *out = std::move(slab);
  if (t0_out != nullptr) *t0_out = t0;
  return true;
}

Tensor DecodeSession::DecodeAll() {
  Tensor out(reader_.dataset_shape());
  const std::int64_t frames = out.dim(1);
  const std::int64_t hw = out.dim(2) * out.dim(3);
  Tensor slab;
  std::int64_t t0 = 0;
  while (Next(&slab, &t0)) {
    for (std::int64_t v = 0; v < slab.dim(0); ++v) {
      for (std::int64_t f = 0; f < slab.dim(1); ++f) {
        GLSC_CHECK(t0 + f < frames);
        std::copy_n(slab.data() + (v * slab.dim(1) + f) * hw, hw,
                    out.data() + (v * frames + t0 + f) * hw);
      }
    }
  }
  return out;
}

}  // namespace glsc::api
