#include "api/compressor.h"

#include <map>

#include "api/adapters.h"
#include "core/registry.h"
#include "util/mutex.h"
#include "util/check.h"
#include "util/logging.h"

namespace glsc::api {
namespace {

Mutex& RegistryMutex() {
  static Mutex mu{"api.RegistryMutex"};
  return mu;
}

std::map<std::string, CompressorFactory>& Registry() {
  static std::map<std::string, CompressorFactory> registry;
  return registry;
}

// Built-ins register on first use rather than via static initializers so the
// registry works regardless of link order and cannot be stripped from the
// static library. The thread_local guard lets RegisterBuiltinCodecs call
// RegisterCompressor (which also ensures built-ins) without deadlocking on
// the in-flight call_once.
void EnsureBuiltins() {
  static std::once_flag once;
  thread_local bool registering = false;
  if (registering) return;
  registering = true;
  std::call_once(once, [] { RegisterBuiltinCodecs(); });
  registering = false;
}

}  // namespace

void RegisterCompressor(const std::string& name, CompressorFactory factory) {
  // Built-ins first, so a user registration made before any Create call
  // really does replace the built-in binding instead of being clobbered by
  // the lazy built-in registration later.
  EnsureBuiltins();
  MutexLock lock(RegistryMutex());
  Registry()[name] = std::move(factory);
}

std::vector<std::string> RegisteredCompressors() {
  EnsureBuiltins();
  MutexLock lock(RegistryMutex());
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [name, factory] : Registry()) names.push_back(name);
  return names;
}

std::unique_ptr<Compressor> Compressor::Create(const std::string& name,
                                               const CodecOptions& options) {
  EnsureBuiltins();
  CompressorFactory factory;
  {
    MutexLock lock(RegistryMutex());
    const auto it = Registry().find(name);
    if (it != Registry().end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const auto& n : RegisteredCompressors()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    GLSC_CHECK_MSG(false, "unknown codec '" << name << "' (registered: "
                                            << known << ")");
  }
  auto codec = factory(options);
  GLSC_CHECK_MSG(codec != nullptr, "factory for '" << name << "' returned null");
  return codec;
}

std::unique_ptr<Compressor> GetOrTrainCodec(
    const std::string& name, const CodecOptions& options,
    const data::SequenceDataset& dataset, const TrainOptions& train,
    const std::string& artifacts_dir, const std::string& tag) {
  auto codec = Compressor::Create(name, options);
  if (codec->capabilities().model_free) return codec;

  // Process-wide artifact-cache lock: two concurrent calls with the same tag
  // would otherwise both miss the file check, train twice, and interleave
  // their WriteFileBytes. Training dominates the hold time, which is exactly
  // the point — the second caller waits and then loads the first one's model.
  static Mutex artifact_mu{"api.artifact_mu"};
  MutexLock lock(artifact_mu);
  const std::string path = core::ArtifactPath(artifacts_dir, tag);
  if (!core::RetrainRequested() && FileExists(path)) {
    std::vector<std::uint8_t> bytes;
    GLSC_CHECK(ReadFileBytes(path, &bytes));
    ByteReader in(bytes);
    codec->LoadModel(&in);
    LOG_INFO << "loaded cached " << name << " model " << path;
    return codec;
  }
  codec->Train(dataset, train);
  core::EnsureArtifactsDir(artifacts_dir);
  ByteWriter out;
  codec->SaveModel(&out);
  WriteFileBytes(path, out.bytes());
  LOG_INFO << "trained + cached " << name << " model " << path << " ("
           << out.size() << " bytes)";
  return codec;
}

}  // namespace glsc::api
