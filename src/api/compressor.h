// Unified codec API: one polymorphic interface over the paper's pipeline
// (GLSC) and all five baselines, so examples, benchmarks, tests, and the
// archive container can switch backends with a string instead of hand-wiring
// each codec's ad-hoc Compress/Decompress signature.
//
// The unit of work is one NORMALIZED window [N, H, W] (per-frame zero mean /
// unit range, the representation every model in this repository consumes);
// CompressWindow returns a self-contained payload that DecompressWindow can
// restore without side channels. Streaming over arbitrary-length [V, T, H, W]
// fields — chunking, tail padding, per-frame normalization, thread fan-out —
// lives one layer up in EncodeSession/DecodeSession (api/session.h), which
// every codec inherits for free.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"
#include "util/bytes.h"

namespace glsc::api {

// How ErrorBound::value is interpreted. Physical units refer to the raw field
// before per-frame normalization; a codec receives the per-frame norms along
// with each window so it can convert.
enum class ErrorBoundMode : std::uint8_t {
  kNone = 0,         // best effort, no guarantee
  kAbsolute = 1,     // pointwise |x - x'| <= value, physical units
  kRelative = 2,     // pointwise |x - x'| <= value * (per-frame range)
  kPointwiseL2 = 3,  // per-frame L2 error norm <= value, normalized units
};

constexpr std::uint32_t BoundModeBit(ErrorBoundMode mode) {
  return 1u << static_cast<std::uint32_t>(mode);
}

struct ErrorBound {
  ErrorBoundMode mode = ErrorBoundMode::kNone;
  double value = 0.0;
};

struct Capabilities {
  // Bitmask of BoundModeBit(mode) values the codec can honor.
  std::uint32_t bound_modes = BoundModeBit(ErrorBoundMode::kNone);
  // True for rule-based codecs that carry no trained model: usable straight
  // from Create() with no Train/LoadModel, and their (trivial) model
  // description is exact — nothing is lost by skipping the artifact.
  bool model_free = false;
  // Whether the codec supports chunked encode through EncodeSession. All
  // built-in codecs do; the flag exists for future adapters wrapping
  // whole-dataset-only tools.
  bool streaming = true;

  bool Supports(ErrorBoundMode mode) const {
    return (bound_modes & BoundModeBit(mode)) != 0;
  }
};

// Construction-time knobs shared across backends. Codecs read the subset that
// applies to them and ignore the rest, so one options struct can configure any
// registry entry.
struct CodecOptions {
  std::int64_t window = 16;        // frames per compressed record
  std::int64_t sample_steps = 32;  // reverse-diffusion steps on decode
  // Learned-codec geometry (laptop-scale defaults; see DESIGN.md §6).
  std::int64_t latent_channels = 8;
  std::int64_t hidden_channels = 16;
  std::int64_t hyper_channels = 4;
  std::int64_t model_channels = 16;
  std::int64_t heads = 4;
  std::int64_t schedule_steps = 200;
  std::int64_t interval = 3;      // GLSC keyframe stride
  std::int64_t sr_channels = 16;  // VAE-SR trunk width
  std::uint64_t seed = 17;
};

// Training budget for learned codecs (no-op for model-free ones). The two
// stage budgets map onto each codec's stages: VAE first, then the
// diffusion/SR refinement model where one exists.
struct TrainOptions {
  std::int64_t vae_iterations = 400;
  std::int64_t model_iterations = 400;
  std::int64_t batch_size = 8;
  std::int64_t crop = 32;
  std::int64_t pca_fit_windows = 4;  // GLSC error-bound basis
  bool verbose = false;
};

class Compressor {
 public:
  virtual ~Compressor() = default;

  // Registry name, e.g. "glsc", "sz".
  virtual std::string name() const = 0;
  virtual Capabilities capabilities() const = 0;
  // Frames per record. Sessions cut streams into windows of this length and
  // pad the final partial window up to it.
  virtual std::int64_t window() const = 0;

  // Compresses one normalized window [N, H, W] into a self-contained payload.
  // `norms` carries the per-frame normalization (one entry per frame) so
  // codecs honoring physical-unit bounds can convert; `bound.mode` must be
  // one of capabilities().bound_modes.
  virtual std::vector<std::uint8_t> CompressWindow(
      const Tensor& window, const ErrorBound& bound,
      const std::vector<data::FrameNorm>& norms) = 0;

  // Inverse of CompressWindow: normalized [N, H, W].
  virtual Tensor DecompressWindow(const std::vector<std::uint8_t>& payload) = 0;

  // Workspace-aware variants for serving hot paths: codecs with model-based
  // decode (GLSC) route their per-window tensor traffic through `ws` (one
  // Workspace per worker, owned by sessions/schedulers alongside the codec
  // clones) and are byte-identical to the plain calls; the default ignores
  // `ws`, so rule-based codecs work unchanged. Results are always owned —
  // arena memory never escapes.
  virtual std::vector<std::uint8_t> CompressWindow(
      const Tensor& window, const ErrorBound& bound,
      const std::vector<data::FrameNorm>& norms, tensor::Workspace* ws) {
    (void)ws;
    return CompressWindow(window, bound, norms);
  }
  virtual Tensor DecompressWindow(const std::vector<std::uint8_t>& payload,
                                  tensor::Workspace* ws) {
    (void)ws;
    return DecompressWindow(payload);
  }

  // Batched decode: decompresses several payloads in one call so model-based
  // codecs can run their networks once over the stacked windows (wider GEMMs,
  // one weight pass) instead of once per window. Entries are byte-identical
  // to per-payload DecompressWindow calls — batching is a dispatch choice,
  // never a quality choice. The default loops over DecompressWindow, so
  // codecs without a batched path (and wrappers that intercept per-window
  // decode, e.g. counting or caching shims) work unchanged.
  virtual std::vector<Tensor> DecompressWindows(
      const std::vector<const std::vector<std::uint8_t>*>& payloads,
      tensor::Workspace* ws) {
    std::vector<Tensor> out;
    out.reserve(payloads.size());
    for (const std::vector<std::uint8_t>* p : payloads) {
      out.push_back(DecompressWindow(*p, ws));
    }
    return out;
  }

  // Trains the underlying model(s) in place. Model-free codecs no-op.
  virtual void Train(const data::SequenceDataset& dataset,
                     const TrainOptions& options) {
    (void)dataset;
    (void)options;
  }

  // Model checkpoint (weights only; construction options are the caller's).
  // Model-free codecs write/read nothing.
  virtual void SaveModel(ByteWriter* out) { (void)out; }
  virtual void LoadModel(ByteReader* in) { (void)in; }

  // Deep copy, trained weights included. Sessions clone workers from the
  // primary codec because model instances are not thread-safe (explicit-
  // backward layers cache activations).
  virtual std::unique_ptr<Compressor> Clone() = 0;

  // Factory over the registry: "glsc" | "sz" | "zfp" | "cdc" | "gcd" |
  // "vae_sr" (plus anything registered at runtime). Throws on unknown names,
  // listing what is available.
  static std::unique_ptr<Compressor> Create(const std::string& name,
                                            const CodecOptions& options = {});
};

using CompressorFactory =
    std::function<std::unique_ptr<Compressor>(const CodecOptions&)>;

// Registers a factory under `name` (replacing any previous binding).
void RegisterCompressor(const std::string& name, CompressorFactory factory);

// Sorted names currently registered (built-ins included).
std::vector<std::string> RegisteredCompressors();

// Cached train-or-load for the polymorphic API, mirroring core::GetOrTrain:
// returns a ready-to-use codec, loading `<artifacts_dir>/<tag>.glsc` when
// present, otherwise training and writing it. Model-free codecs skip the
// artifact entirely. Set GLSC_RETRAIN=1 to ignore caches.
std::unique_ptr<Compressor> GetOrTrainCodec(
    const std::string& name, const CodecOptions& options,
    const data::SequenceDataset& dataset, const TrainOptions& train,
    const std::string& artifacts_dir, const std::string& tag);

}  // namespace glsc::api
