#include "api/adapters.h"

#include <algorithm>
#include <cstring>

#include "compress/vae_trainer.h"
#include "core/container.h"
#include "core/registry.h"
#include "diffusion/trainer.h"
#include "util/check.h"

namespace glsc::api {
namespace {

// ---- shared payload plumbing ----

void PutShape(const Shape& shape, ByteWriter* out) { PutDims(shape, out); }
Shape GetShape(ByteReader* in) { return GetDimsChecked(in); }

void PutBitstream(const compress::VaeBitstream& bits, ByteWriter* out) {
  out->PutVarU64(bits.y_stream.size());
  out->PutBytes(bits.y_stream.data(), bits.y_stream.size());
  out->PutVarU64(bits.z_stream.size());
  out->PutBytes(bits.z_stream.data(), bits.z_stream.size());
  PutShape(bits.y_shape, out);
  PutShape(bits.z_shape, out);
}

compress::VaeBitstream GetBitstream(ByteReader* in) {
  compress::VaeBitstream bits;
  std::uint64_t n = in->GetVarU64();
  GLSC_CHECK_MSG(n <= in->remaining(), "corrupt payload: y-stream length");
  bits.y_stream.resize(n);
  in->GetBytes(bits.y_stream.data(), n);
  n = in->GetVarU64();
  GLSC_CHECK_MSG(n <= in->remaining(), "corrupt payload: z-stream length");
  bits.z_stream.resize(n);
  in->GetBytes(bits.z_stream.data(), n);
  bits.y_shape = GetShape(in);
  bits.z_shape = GetShape(in);
  return bits;
}

void CheckBoundSupported(const Compressor& codec, const ErrorBound& bound) {
  GLSC_CHECK_MSG(codec.capabilities().Supports(bound.mode),
                 "codec '" << codec.name() << "' does not support bound mode "
                           << static_cast<int>(bound.mode));
}

// Converts a physical/relative pointwise bound to the normalized frame
// representation the codecs operate in. Relative bounds map 1:1 (normalized
// frames have unit range); absolute bounds divide by the LARGEST per-frame
// range so the guarantee holds on every frame after de-normalization.
double NormalizedPointwiseBound(const ErrorBound& bound,
                                const std::vector<data::FrameNorm>& norms) {
  GLSC_CHECK_MSG(bound.value > 0.0, "error bound must be positive");
  if (bound.mode == ErrorBoundMode::kRelative) return bound.value;
  GLSC_CHECK(bound.mode == ErrorBoundMode::kAbsolute);
  GLSC_CHECK_MSG(!norms.empty(),
                 "absolute bounds need per-frame norms to convert units");
  float max_range = 0.0f;
  for (const auto& n : norms) max_range = std::max(max_range, n.range);
  return bound.value / max_range;
}

// Deterministic per-content noise seed for the stochastic decoders (CDC/GCD
// draw their diffusion noise at decode time only): FNV-1a over the window
// contents, so distinct windows decode with distinct draws while repeated
// decodes of one record are bit-reproducible.
std::uint32_t DeriveSeed(const Tensor& window, std::uint32_t salt) {
  std::uint32_t h = 2166136261u ^ salt;
  const float* p = window.data();
  for (std::int64_t i = 0; i < window.numel(); ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, &p[i], sizeof bits);
    for (int b = 0; b < 4; ++b) {
      h = (h ^ ((bits >> (8 * b)) & 0xFFu)) * 16777619u;
    }
  }
  return h;
}

compress::VaeTrainConfig MakeVaeTrain(const TrainOptions& options) {
  compress::VaeTrainConfig cfg;
  cfg.iterations = options.vae_iterations;
  cfg.batch_size = options.batch_size;
  cfg.crop = options.crop;
  cfg.lambda_double_at = std::max<std::int64_t>(options.vae_iterations / 2, 1);
  cfg.log_every = options.verbose ? 200 : 0;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// SZ / ZFP
// ---------------------------------------------------------------------------

Capabilities SzAdapter::capabilities() const {
  Capabilities caps;
  caps.bound_modes = BoundModeBit(ErrorBoundMode::kAbsolute) |
                     BoundModeBit(ErrorBoundMode::kRelative);
  caps.model_free = true;
  return caps;
}

std::vector<std::uint8_t> SzAdapter::CompressWindow(
    const Tensor& window, const ErrorBound& bound,
    const std::vector<data::FrameNorm>& norms) {
  CheckBoundSupported(*this, bound);
  return codec_.Compress(window, NormalizedPointwiseBound(bound, norms));
}

Tensor SzAdapter::DecompressWindow(const std::vector<std::uint8_t>& payload) {
  return codec_.Decompress(payload);
}

Capabilities ZfpAdapter::capabilities() const {
  Capabilities caps;
  caps.bound_modes = BoundModeBit(ErrorBoundMode::kAbsolute) |
                     BoundModeBit(ErrorBoundMode::kRelative);
  caps.model_free = true;
  return caps;
}

std::vector<std::uint8_t> ZfpAdapter::CompressWindow(
    const Tensor& window, const ErrorBound& bound,
    const std::vector<data::FrameNorm>& norms) {
  CheckBoundSupported(*this, bound);
  return codec_.Compress(window, NormalizedPointwiseBound(bound, norms));
}

Tensor ZfpAdapter::DecompressWindow(const std::vector<std::uint8_t>& payload) {
  return codec_.Decompress(payload);
}

// ---------------------------------------------------------------------------
// GLSC
// ---------------------------------------------------------------------------

namespace {

core::GlscConfig MakeGlscConfig(const CodecOptions& options) {
  core::GlscConfig cfg;
  cfg.vae.latent_channels = options.latent_channels;
  cfg.vae.hidden_channels = options.hidden_channels;
  cfg.vae.hyper_channels = options.hyper_channels;
  cfg.vae.seed = options.seed;
  cfg.unet.latent_channels = options.latent_channels;
  cfg.unet.model_channels = options.model_channels;
  cfg.unet.heads = options.heads;
  cfg.schedule_steps = options.schedule_steps;
  cfg.window = options.window;
  cfg.interval = options.interval;
  cfg.sample_steps = options.sample_steps;
  return cfg;
}

}  // namespace

GlscAdapter::GlscAdapter(const CodecOptions& options)
    : GlscAdapter(MakeGlscConfig(options), options.sample_steps) {}

GlscAdapter::GlscAdapter(const core::GlscConfig& config,
                         std::int64_t sample_steps)
    : sample_steps_(sample_steps),
      owned_(std::make_unique<core::GlscCompressor>(config)),
      glsc_(owned_.get()) {}

GlscAdapter::GlscAdapter(core::GlscCompressor* borrowed,
                         std::int64_t sample_steps)
    : sample_steps_(sample_steps), glsc_(borrowed) {
  GLSC_CHECK(borrowed != nullptr);
}

Capabilities GlscAdapter::capabilities() const {
  Capabilities caps;
  caps.bound_modes = BoundModeBit(ErrorBoundMode::kNone) |
                     BoundModeBit(ErrorBoundMode::kPointwiseL2);
  return caps;
}

std::vector<std::uint8_t> GlscAdapter::CompressWindow(
    const Tensor& window, const ErrorBound& bound,
    const std::vector<data::FrameNorm>& norms) {
  return CompressWindow(window, bound, norms, /*ws=*/nullptr);
}

Tensor GlscAdapter::DecompressWindow(const std::vector<std::uint8_t>& payload) {
  return DecompressWindow(payload, /*ws=*/nullptr);
}

std::vector<std::uint8_t> GlscAdapter::CompressWindow(
    const Tensor& window, const ErrorBound& bound,
    const std::vector<data::FrameNorm>& norms, tensor::Workspace* ws) {
  (void)norms;  // the pointwise-L2 bound is already in normalized units
  CheckBoundSupported(*this, bound);
  const double tau =
      bound.mode == ErrorBoundMode::kPointwiseL2 ? bound.value : -1.0;
  const core::CompressedWindow cw =
      glsc_->Compress(window, tau, sample_steps_, /*recon_out=*/nullptr, ws);
  ByteWriter out;
  core::SerializeWindow(cw, &out);
  return out.Release();
}

Tensor GlscAdapter::DecompressWindow(const std::vector<std::uint8_t>& payload,
                                     tensor::Workspace* ws) {
  ByteReader in(payload);
  const core::CompressedWindow cw = core::DeserializeWindow(&in);
  return glsc_->Decompress(cw, sample_steps_, ws);
}

std::vector<Tensor> GlscAdapter::DecompressWindows(
    const std::vector<const std::vector<std::uint8_t>*>& payloads,
    tensor::Workspace* ws) {
  std::vector<core::CompressedWindow> windows;
  windows.reserve(payloads.size());
  for (const std::vector<std::uint8_t>* payload : payloads) {
    ByteReader in(*payload);
    windows.push_back(core::DeserializeWindow(&in));
  }
  std::vector<const core::CompressedWindow*> views;
  views.reserve(windows.size());
  for (const core::CompressedWindow& cw : windows) views.push_back(&cw);
  return glsc_->DecompressBatch(views, sample_steps_, ws);
}

void GlscAdapter::Train(const data::SequenceDataset& dataset,
                        const TrainOptions& options) {
  compress::TrainVae(&glsc_->vae(), dataset, MakeVaeTrain(options));
  diffusion::DiffusionTrainConfig diff_cfg;
  diff_cfg.iterations = options.model_iterations;
  diff_cfg.crop = options.crop;
  diff_cfg.window = glsc_->config().window;
  diff_cfg.strategy = glsc_->config().strategy;
  diff_cfg.interval = glsc_->config().interval;
  diff_cfg.key_count = glsc_->config().key_count;
  diff_cfg.log_every = options.verbose ? 200 : 0;
  TrainDiffusion(&glsc_->unet(), glsc_->schedule(), &glsc_->vae(), dataset,
                 diff_cfg);
  core::FitPcaFromResiduals(glsc_, dataset, options.pca_fit_windows,
                            options.crop);
}

std::unique_ptr<Compressor> GlscAdapter::Clone() {
  auto copy = std::make_unique<GlscAdapter>(glsc_->config(), sample_steps_);
  ByteWriter weights;
  glsc_->Save(&weights);
  ByteReader in(weights.bytes());
  copy->glsc_->Load(&in);
  return copy;
}

std::unique_ptr<Compressor> WrapGlsc(core::GlscCompressor* compressor,
                                     std::int64_t sample_steps) {
  return std::make_unique<GlscAdapter>(compressor, sample_steps);
}

// ---------------------------------------------------------------------------
// CDC
// ---------------------------------------------------------------------------

namespace {

baselines::CdcConfig MakeCdcConfig(const CodecOptions& options) {
  baselines::CdcConfig cfg;
  cfg.vae.latent_channels = options.latent_channels;
  cfg.vae.hidden_channels = options.hidden_channels;
  cfg.vae.hyper_channels = options.hyper_channels;
  cfg.vae.seed = options.seed;
  cfg.model_channels = options.model_channels;
  cfg.heads = options.heads;
  cfg.schedule_steps = options.schedule_steps;
  cfg.seed = options.seed + 1;
  return cfg;
}

}  // namespace

CdcAdapter::CdcAdapter(const CodecOptions& options)
    : options_(options),
      codec_(std::make_unique<baselines::CDCCompressor>(
          MakeCdcConfig(options))) {}

Capabilities CdcAdapter::capabilities() const { return Capabilities{}; }

std::vector<std::uint8_t> CdcAdapter::CompressWindow(
    const Tensor& window, const ErrorBound& bound,
    const std::vector<data::FrameNorm>& norms) {
  (void)norms;
  CheckBoundSupported(*this, bound);
  const auto compressed = codec_->Compress(window);
  ByteWriter out;
  PutShape(compressed.window_shape, &out);
  out.PutU32(DeriveSeed(window, 0xC5C5C5C5u));
  PutBitstream(compressed.frames, &out);
  return out.Release();
}

Tensor CdcAdapter::DecompressWindow(const std::vector<std::uint8_t>& payload) {
  ByteReader in(payload);
  baselines::CDCCompressor::Compressed compressed;
  compressed.window_shape = GetShape(&in);
  const std::uint32_t seed = in.GetU32();
  compressed.frames = GetBitstream(&in);
  Rng rng(seed);
  return codec_->Decompress(compressed, options_.sample_steps, rng);
}

void CdcAdapter::Train(const data::SequenceDataset& dataset,
                       const TrainOptions& options) {
  codec_->Train(dataset, MakeVaeTrain(options), options.model_iterations,
                options.crop);
}

std::unique_ptr<Compressor> CdcAdapter::Clone() {
  auto copy = std::make_unique<CdcAdapter>(options_);
  ByteWriter weights;
  codec_->Save(&weights);
  ByteReader in(weights.bytes());
  copy->codec_->Load(&in);
  return copy;
}

// ---------------------------------------------------------------------------
// GCD
// ---------------------------------------------------------------------------

namespace {

baselines::GcdConfig MakeGcdConfig(const CodecOptions& options) {
  baselines::GcdConfig cfg;
  cfg.vae.latent_channels = options.latent_channels;
  cfg.vae.hidden_channels = options.hidden_channels;
  cfg.vae.hyper_channels = options.hyper_channels;
  cfg.vae.seed = options.seed;
  cfg.model_channels = options.model_channels;
  cfg.heads = options.heads;
  cfg.schedule_steps = options.schedule_steps;
  cfg.window = options.window;
  cfg.seed = options.seed + 2;
  return cfg;
}

}  // namespace

GcdAdapter::GcdAdapter(const CodecOptions& options)
    : options_(options),
      codec_(std::make_unique<baselines::GCDCompressor>(
          MakeGcdConfig(options))) {}

Capabilities GcdAdapter::capabilities() const { return Capabilities{}; }

std::vector<std::uint8_t> GcdAdapter::CompressWindow(
    const Tensor& window, const ErrorBound& bound,
    const std::vector<data::FrameNorm>& norms) {
  (void)norms;
  CheckBoundSupported(*this, bound);
  const auto compressed = codec_->Compress(window);
  ByteWriter out;
  PutShape(compressed.window_shape, &out);
  out.PutU32(DeriveSeed(window, 0xD6D6D6D6u));
  PutBitstream(compressed.frames, &out);
  return out.Release();
}

Tensor GcdAdapter::DecompressWindow(const std::vector<std::uint8_t>& payload) {
  ByteReader in(payload);
  baselines::GCDCompressor::Compressed compressed;
  compressed.window_shape = GetShape(&in);
  const std::uint32_t seed = in.GetU32();
  compressed.frames = GetBitstream(&in);
  Rng rng(seed);
  return codec_->Decompress(compressed, options_.sample_steps, rng);
}

void GcdAdapter::Train(const data::SequenceDataset& dataset,
                       const TrainOptions& options) {
  codec_->Train(dataset, MakeVaeTrain(options), options.model_iterations,
                options.crop);
}

std::unique_ptr<Compressor> GcdAdapter::Clone() {
  auto copy = std::make_unique<GcdAdapter>(options_);
  ByteWriter weights;
  codec_->Save(&weights);
  ByteReader in(weights.bytes());
  copy->codec_->Load(&in);
  return copy;
}

// ---------------------------------------------------------------------------
// VAE-SR
// ---------------------------------------------------------------------------

namespace {

baselines::VaeSrConfig MakeVaeSrConfig(const CodecOptions& options) {
  baselines::VaeSrConfig cfg;
  cfg.vae.latent_channels = options.latent_channels;
  cfg.vae.hidden_channels = options.hidden_channels;
  cfg.vae.hyper_channels = options.hyper_channels;
  cfg.vae.seed = options.seed;
  cfg.sr_channels = options.sr_channels;
  cfg.seed = options.seed + 3;
  return cfg;
}

}  // namespace

VaeSrAdapter::VaeSrAdapter(const CodecOptions& options)
    : options_(options),
      codec_(std::make_unique<baselines::VAESRCompressor>(
          MakeVaeSrConfig(options))) {}

Capabilities VaeSrAdapter::capabilities() const { return Capabilities{}; }

std::vector<std::uint8_t> VaeSrAdapter::CompressWindow(
    const Tensor& window, const ErrorBound& bound,
    const std::vector<data::FrameNorm>& norms) {
  (void)norms;
  CheckBoundSupported(*this, bound);
  const auto compressed = codec_->Compress(window);
  ByteWriter out;
  PutShape(compressed.window_shape, &out);
  PutBitstream(compressed.frames, &out);
  return out.Release();
}

Tensor VaeSrAdapter::DecompressWindow(
    const std::vector<std::uint8_t>& payload) {
  ByteReader in(payload);
  baselines::VAESRCompressor::Compressed compressed;
  compressed.window_shape = GetShape(&in);
  compressed.frames = GetBitstream(&in);
  return codec_->Decompress(compressed);
}

void VaeSrAdapter::Train(const data::SequenceDataset& dataset,
                         const TrainOptions& options) {
  // The VAE trains on 2x-downsampled patches of `crop`; its hyperprior needs
  // a latent edge of at least 4 (crop/2/4), so anything below 32 breaks deep
  // inside training with a shape mismatch — reject it up front.
  GLSC_CHECK_MSG(options.crop >= 32,
                 "vae_sr needs crop >= 32 (2x downsampling + stride-4 VAE + "
                 "stride-4 hyperprior), got "
                     << options.crop);
  codec_->Train(dataset, MakeVaeTrain(options), options.model_iterations,
                options.crop);
}

std::unique_ptr<Compressor> VaeSrAdapter::Clone() {
  auto copy = std::make_unique<VaeSrAdapter>(options_);
  ByteWriter weights;
  codec_->Save(&weights);
  ByteReader in(weights.bytes());
  copy->codec_->Load(&in);
  return copy;
}

// ---------------------------------------------------------------------------

void RegisterBuiltinCodecs() {
  RegisterCompressor("glsc", [](const CodecOptions& o) {
    return std::make_unique<GlscAdapter>(o);
  });
  RegisterCompressor("sz", [](const CodecOptions& o) {
    return std::make_unique<SzAdapter>(o);
  });
  RegisterCompressor("zfp", [](const CodecOptions& o) {
    return std::make_unique<ZfpAdapter>(o);
  });
  RegisterCompressor("cdc", [](const CodecOptions& o) {
    return std::make_unique<CdcAdapter>(o);
  });
  RegisterCompressor("gcd", [](const CodecOptions& o) {
    return std::make_unique<GcdAdapter>(o);
  });
  RegisterCompressor("vae_sr", [](const CodecOptions& o) {
    return std::make_unique<VaeSrAdapter>(o);
  });
}

}  // namespace glsc::api
