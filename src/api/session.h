// Streaming compression sessions over the unified codec API.
//
// Facilities ingest continuous sensor-field streams far longer than one
// window (LZ-style detectors, climate model output, ...), so the session API
// accepts arbitrary-length [V, T, H, W] streams chunk by chunk:
//
//   EncodeSession session(codec, V, H, W, options);
//   while (producer.HasFrames()) session.Push(producer.NextChunk());
//   core::DatasetArchive archive = session.Finish();
//
// The session owns the bookkeeping every caller used to hand-roll: per-frame
// normalization (identical to data::SequenceDataset's), cutting the stream
// into codec-window-sized records, padding the final partial window (tail
// frames replicate the last real frame; the record stores the true length),
// and fanning independent windows out over the global ThreadPool when worker
// clones are available. Chunk boundaries never change the output: pushing a
// stream frame-by-frame or all at once yields byte-identical archives.
#pragma once

#include <vector>

#include "api/compressor.h"
#include "core/archive_reader.h"
#include "core/container.h"

namespace glsc::api {

struct SessionOptions {
  // Bound forwarded to every CompressWindow call; mode must be supported by
  // the codec (see Capabilities::bound_modes).
  ErrorBound bound;
  // Total workers compressing windows concurrently. Values > 1 make the
  // session Clone() the codec (model instances are not thread-safe); windows
  // are then buffered and flushed in deterministic batches.
  std::int64_t parallelism = 1;
  // Alternative to `parallelism` when the caller already holds clones (e.g.
  // loaded from one artifact): borrowed extra workers, used alongside the
  // primary codec. The caller keeps them alive until Finish().
  std::vector<Compressor*> extra_workers;
};

class EncodeSession {
 public:
  // Stream geometry is fixed at construction; T is open-ended. `codec` is
  // borrowed and must outlive the session.
  EncodeSession(Compressor* codec, std::int64_t variables, std::int64_t height,
                std::int64_t width, const SessionOptions& options = {});
  ~EncodeSession();

  EncodeSession(const EncodeSession&) = delete;
  EncodeSession& operator=(const EncodeSession&) = delete;

  // Appends `chunk` = [V, t, H, W] physical-unit frames (any t >= 1). Full
  // windows compress as soon as they complete.
  void Push(const Tensor& chunk);

  // Pads and compresses the partial tail window (if any) and returns the
  // finished archive. Call exactly once; Push is invalid afterwards.
  core::DatasetArchive Finish();

  std::int64_t frames_pushed() const { return frames_pushed_; }
  // Records compressed so far (monotonic; includes records already handed to
  // the archive by Finish).
  std::int64_t records_emitted() const { return records_emitted_; }

 private:
  struct PendingWindow {
    std::int64_t variable = 0;
    std::int64_t t0 = 0;
    std::int64_t valid_frames = 0;
    Tensor window;                       // normalized, padded to full length
    std::vector<data::FrameNorm> norms;  // one per frame (padding replicated)
  };

  void CutCompletedWindows();
  void FlushPending();

  Compressor* codec_;
  std::int64_t variables_, height_, width_;
  SessionOptions options_;
  std::int64_t window_;

  std::vector<Compressor*> workers_;               // [codec_, extras, clones]
  std::vector<std::unique_ptr<Compressor>> clones_;
  // One arena per worker slot: CompressWindow's decoder-identical simulation
  // reuses it across every window the slot compresses.
  std::vector<std::unique_ptr<tensor::Workspace>> workspaces_;

  // Normalized frames not yet assigned to a window, per variable (all
  // variables hold the same count because chunks span every variable).
  std::vector<std::vector<float>> buffered_;
  std::vector<std::vector<data::FrameNorm>> norms_;  // per variable, ALL frames
  std::int64_t buffered_frames_ = 0;
  std::int64_t frames_pushed_ = 0;
  std::int64_t next_t0_ = 0;

  std::vector<PendingWindow> pending_;
  std::vector<core::ArchiveEntry> entries_;
  std::int64_t records_emitted_ = 0;
  bool finished_ = false;
};

class DecodeSession {
 public:
  // Both arguments are borrowed. `codec` must be the archive's codec (same
  // registry name), loaded with the artifact the archive was written against.
  // For random access into a subset of an archive (or one opened straight
  // from disk), use core::ArchiveReader + serve::DecodeScheduler instead;
  // this session is the linear full-scan path over the same reader machinery.
  DecodeSession(Compressor* codec, const core::DatasetArchive& archive);

  // Emits the next time-slab [V, n, H, W] in PHYSICAL units, where n is the
  // slab's true (un-padded) frame count. Slabs arrive in increasing t0;
  // returns false when the archive is exhausted. `t0_out` (optional)
  // receives the slab's first frame index.
  bool Next(Tensor* out, std::int64_t* t0_out = nullptr);

  // Convenience: decodes the remaining slabs into a full [V, T, H, W] tensor
  // (frames the archive does not cover stay zero).
  Tensor DecodeAll();

 private:
  Compressor* codec_;
  core::ArchiveReader reader_;  // borrows the archive's entries
  // Decode arena, reused by every record this session decodes.
  tensor::Workspace workspace_;
  // (t0, indices into reader_.records()) sorted by t0, so decode is linear
  // in the record count.
  std::vector<std::pair<std::int64_t, std::vector<std::size_t>>> slabs_;
  std::size_t cursor_ = 0;
};

}  // namespace glsc::api
