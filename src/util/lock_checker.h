// Runtime lock-order checker behind util::Mutex (GLSC_DEBUG_LOCKS).
//
// The clang thread-safety annotations in util/thread_annotations.h enforce
// lock DISCIPLINE (which mutex guards which data) at compile time — but only
// under clang, and they say nothing about lock ORDER. The primary build
// container ships gcc only, so the documented ordering invariants (e.g.
// DecodeScheduler: worker_mu_[k] before mu_, never the reverse) were pure
// convention. This checker enforces them at runtime, under any compiler:
//
//  - Every live Mutex is a node in a global lock-order graph. Acquiring B
//    while holding A records the edge A -> B together with the acquisition
//    backtrace of the first time that edge was seen.
//  - Before an edge A -> B is added, the graph is searched for a path
//    B ~> A. Finding one means some thread interleaving can deadlock; the
//    checker prints BOTH acquisition stacks (the stored path edges and the
//    current backtrace) and aborts — turning a once-in-a-blue-moon hang into
//    a deterministic test failure.
//  - Mutexes may additionally register a RANK (see lockrank below). Ranked
//    mutexes must be acquired in strictly increasing rank order; a violation
//    aborts on the FIRST bad acquisition, without needing to observe both
//    orders at runtime the way the graph does.
//  - Re-acquiring a mutex the calling thread already holds (self-deadlock
//    with std::mutex) aborts immediately.
//
// The hooks are called by util::Mutex only when the library is compiled with
// GLSC_DEBUG_LOCKS=1 (CMake option GLSC_DEBUG_LOCKS, default ON in Debug,
// sanitizer, and TSan trees; OFF in Release so the default build keeps
// zero-overhead locking). TryLock pushes the held-list entry but records no
// graph edge: a try-acquisition cannot block, so it cannot close a deadlock
// cycle, and flagging it would outlaw legitimate try-lock back-off patterns.
#pragma once

namespace glsc::lockcheck {

// Mutex lifetime. `name` may be null (an anonymous lock — still checked
// through the graph); `rank` <= 0 means unranked.
void OnCreate(const void* mu, const char* name, int rank);
void OnDestroy(const void* mu);

// Blocking acquisition attempt: runs the self-deadlock, rank, and graph-cycle
// checks (aborting with both stacks on a violation), then records the edge
// and pushes the mutex onto the calling thread's held list. Call BEFORE
// blocking on the underlying lock so an inversion reports instead of hanging.
void OnAcquire(const void* mu);

// Successful TryLock: held-list bookkeeping only (no edges, no checks beyond
// self-deadlock — try_lock on a held std::mutex is still UB).
void OnTryAcquired(const void* mu);

void OnRelease(const void* mu);

// Locks currently held by the calling thread (tests).
int HeldCount();

}  // namespace glsc::lockcheck

namespace glsc::lockrank {

// Rank constants for the documented orderings. Lower ranks are acquired
// FIRST. Leave gaps so new layers can slot in without renumbering.
inline constexpr int kDecodeWorkerSlot = 10;  // DecodeScheduler::worker_mu_[k]
inline constexpr int kDecodeScheduler = 20;   // DecodeScheduler::mu_

}  // namespace glsc::lockrank
