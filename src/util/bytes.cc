#include "util/bytes.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace glsc {

bool ReadFileBytes(const std::string& path, std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  out->resize(size);
  in.read(reinterpret_cast<char*>(out->data()),
          static_cast<std::streamsize>(size));
  return static_cast<bool>(in);
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GLSC_CHECK_MSG(static_cast<bool>(out), "cannot open " << path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  GLSC_CHECK_MSG(static_cast<bool>(out), "short write to " << path);
}

bool FileExists(const std::string& path) {
  return std::filesystem::exists(path);
}

}  // namespace glsc
