#include "util/bytes.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace glsc {

void PutDims(const std::vector<std::int64_t>& dims, ByteWriter* out) {
  out->PutVarU64(dims.size());
  for (const auto d : dims) out->PutVarU64(static_cast<std::uint64_t>(d));
}

std::vector<std::int64_t> GetDimsChecked(ByteReader* in) {
  const std::uint64_t rank = in->GetVarU64();
  GLSC_CHECK_MSG(rank <= 4, "corrupt stream: shape rank " << rank);
  std::vector<std::int64_t> dims(rank);
  std::uint64_t numel = 1;
  for (auto& d : dims) {
    const std::uint64_t raw = in->GetVarU64();
    GLSC_CHECK_MSG(raw <= (1ull << 15), "corrupt stream: dimension " << raw);
    numel *= raw;  // <= 2^60, cannot wrap
    d = static_cast<std::int64_t>(raw);
  }
  GLSC_CHECK_MSG(numel <= (1ull << 28),
                 "corrupt stream: shape with " << numel << " elements");
  return dims;
}

bool ReadFileBytes(const std::string& path, std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  out->resize(size);
  in.read(reinterpret_cast<char*>(out->data()),
          static_cast<std::streamsize>(size));
  return static_cast<bool>(in);
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GLSC_CHECK_MSG(static_cast<bool>(out), "cannot open " << path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  GLSC_CHECK_MSG(static_cast<bool>(out), "short write to " << path);
}

bool FileExists(const std::string& path) {
  return std::filesystem::exists(path);
}

}  // namespace glsc
