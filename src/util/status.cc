#include "util/status.h"

namespace glsc {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kTenantLimit: return "tenant_limit";
    case ErrorCode::kBudgetExhausted: return "budget_exhausted";
    case ErrorCode::kQuarantined: return "quarantined";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kDataLoss: return "data_loss";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

StatusError::StatusError(ErrorCode code, const std::string& message)
    : std::runtime_error(std::string(ErrorCodeName(code)) + ": " + message),
      code_(code) {}

}  // namespace glsc
