// Typed error codes for the serving stack. GLSC_CHECK throws a bare
// std::runtime_error, which is fine for programming errors but useless to a
// layer that must DECIDE something about a failure: the shard manager retries
// transient faults, quarantines shards on data loss, and sheds load with an
// error the client can tell apart from a corrupt archive. StatusError carries
// that decision surface — an ErrorCode plus the human message — while still
// deriving from std::runtime_error so every existing catch site keeps working.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace glsc {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  // Request-lifecycle outcomes (serve front end).
  kCancelled = 1,         // caller's CancelToken fired
  kDeadlineExceeded = 2,  // request deadline passed before completion
  kQueueFull = 3,         // bounded queue rejected the newest request
  kTenantLimit = 4,       // per-tenant in-flight cap reached
  kBudgetExhausted = 5,   // per-tenant decoded-byte budget spent
  kQuarantined = 6,       // shard circuit-broken after repeated failures
  kShutdown = 7,          // manager is stopping; no new work accepted
  // Failure classification (decode/IO).
  kUnavailable = 8,       // transient — retrying may succeed
  kDataLoss = 9,          // corrupt/truncated bytes — retrying cannot help
  kInvalidArgument = 10,  // malformed request (bad shard/range)
  kInternal = 11,         // unexpected failure wrapped at the serve boundary
};

// Stable lowercase name, e.g. "deadline_exceeded" (for logs and bench JSON).
const char* ErrorCodeName(ErrorCode code);

// True for codes where a bounded retry is a sensible policy.
constexpr bool IsTransient(ErrorCode code) {
  return code == ErrorCode::kUnavailable;
}

class StatusError : public std::runtime_error {
 public:
  StatusError(ErrorCode code, const std::string& message);

  ErrorCode code() const { return code_; }
  bool transient() const { return IsTransient(code_); }

 private:
  ErrorCode code_;
};

}  // namespace glsc
