// Byte-level serialization primitives. Every compressed artifact in this
// repository (latent bitstreams, PCA corrections, model checkpoints) is built
// from these little-endian writers/readers so that compressed sizes reported
// by benchmarks are real byte counts, not estimates.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/check.h"

namespace glsc {

class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(v); }

  void PutU16(std::uint16_t v) { PutLE(v); }
  void PutU32(std::uint32_t v) { PutLE(v); }
  void PutU64(std::uint64_t v) { PutLE(v); }

  void PutI32(std::int32_t v) { PutLE(static_cast<std::uint32_t>(v)); }
  void PutI64(std::int64_t v) { PutLE(static_cast<std::uint64_t>(v)); }

  void PutF32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    PutLE(bits);
  }

  void PutF64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    PutLE(bits);
  }

  // LEB128 variable-length unsigned integer; compact for small counts.
  void PutVarU64(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  // Zig-zag signed varint.
  void PutVarI64(std::int64_t v) {
    PutVarU64((static_cast<std::uint64_t>(v) << 1) ^
              static_cast<std::uint64_t>(v >> 63));
  }

  void PutBytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  void PutString(const std::string& s) {
    PutVarU64(s.size());
    PutBytes(s.data(), s.size());
  }

  void PutF32Span(const float* data, std::size_t n) {
    PutVarU64(n);
    for (std::size_t i = 0; i < n; ++i) PutF32(data[i]);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> Release() { return std::move(buf_); }

 private:
  template <typename T>
  void PutLE(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t GetU8() {
    GLSC_CHECK_MSG(pos_ < size_, "bitstream underrun");
    return data_[pos_++];
  }

  std::uint16_t GetU16() { return GetLE<std::uint16_t>(); }
  std::uint32_t GetU32() { return GetLE<std::uint32_t>(); }
  std::uint64_t GetU64() { return GetLE<std::uint64_t>(); }
  std::int32_t GetI32() { return static_cast<std::int32_t>(GetU32()); }
  std::int64_t GetI64() { return static_cast<std::int64_t>(GetU64()); }

  float GetF32() {
    const std::uint32_t bits = GetU32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  double GetF64() {
    const std::uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::uint64_t GetVarU64() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const std::uint8_t b = GetU8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
      GLSC_CHECK_MSG(shift < 64, "varint overlong");
    }
    return v;
  }

  std::int64_t GetVarI64() {
    const std::uint64_t u = GetVarU64();
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  void GetBytes(void* out, std::size_t n) {
    GLSC_CHECK_MSG(pos_ + n <= size_, "bitstream underrun");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  // Advances past n bytes without copying them (index scans over payloads).
  void Skip(std::size_t n) {
    GLSC_CHECK_MSG(pos_ + n <= size_, "bitstream underrun");
    pos_ += n;
  }

  std::string GetString() {
    const std::size_t n = GetVarU64();
    std::string s(n, '\0');
    GetBytes(s.data(), n);
    return s;
  }

  std::vector<float> GetF32Span() {
    const std::size_t n = GetVarU64();
    std::vector<float> v(n);
    for (auto& x : v) x = GetF32();
    return v;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T>
  T GetLE() {
    GLSC_CHECK_MSG(pos_ + sizeof(T) <= size_, "bitstream underrun");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Serializes a tensor-shape dimension list (varint rank + dims). The reader
// is hardened for untrusted input: serialized shapes describe window/latent
// geometry, so rank is capped at 4, each dim at 2^15, and the total element
// count at 2^28 — a hostile stream can neither overflow ShapeNumel nor force
// an absurd allocation downstream, it throws std::runtime_error instead.
void PutDims(const std::vector<std::int64_t>& dims, ByteWriter* out);
std::vector<std::int64_t> GetDimsChecked(ByteReader* in);

// Whole-file helpers for the model artifact cache.
bool ReadFileBytes(const std::string& path, std::vector<std::uint8_t>* out);
void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes);
bool FileExists(const std::string& path);

}  // namespace glsc
