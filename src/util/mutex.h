// Capability-annotated mutex primitives for the thread-safety lint lane.
//
// std::mutex from libstdc++ carries no capability attributes, so clang's
// thread-safety analysis cannot see it being locked; every GUARDED_BY
// annotation would be a false positive. These thin wrappers add the
// attributes (util/thread_annotations.h) without changing behavior: Mutex IS
// a std::mutex, MutexLock IS a lock_guard, CondVar IS a condition_variable
// that borrows the already-held Mutex through the adopt_lock/release trick.
// In the default (release) build zero state is added and every method inlines
// to the std call, so the concurrent paths (ThreadPool, RequestQueue,
// DecodeScheduler, ShardManager) pay nothing for being machine-checkable.
//
// Compiled with GLSC_DEBUG_LOCKS=1 (Debug/sanitizer/TSan trees), every
// Lock/Unlock additionally reports to the runtime lock-order checker
// (util/lock_checker.h): lock-order inversions, rank violations, and
// self-deadlocks abort with both acquisition stacks instead of hanging. The
// clang annotations enforce lock discipline at compile time where clang
// exists; the checker enforces lock ORDER at runtime everywhere — including
// the gcc-only primary container.
//
// A Mutex may carry a name and a rank (see lockrank in util/lock_checker.h)
// for better reports and eager rank checking:
//
//   Mutex mu_{"DecodeScheduler.mu", lockrank::kDecodeScheduler};
//
// Both are ignored (and cost nothing) when the checker is compiled out.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

#if defined(GLSC_DEBUG_LOCKS) && GLSC_DEBUG_LOCKS
#include "util/lock_checker.h"
#define GLSC_LOCKCHECK(call) ::glsc::lockcheck::call
#else
#define GLSC_LOCKCHECK(call) ((void)0)
#endif

namespace glsc {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() : Mutex(nullptr, 0) {}
  explicit Mutex(const char* name, int rank = 0) {
    (void)name;
    (void)rank;
    GLSC_LOCKCHECK(OnCreate(this, name, rank));
  }
  ~Mutex() { GLSC_LOCKCHECK(OnDestroy(this)); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    // Checked BEFORE blocking so an inversion aborts with a report instead of
    // deadlocking the process.
    GLSC_LOCKCHECK(OnAcquire(this));
    mu_.lock();
  }
  void Unlock() RELEASE() {
    GLSC_LOCKCHECK(OnRelease(this));
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
    if (ok) GLSC_LOCKCHECK(OnTryAcquired(this));
    return ok;
  }

  // The underlying handle, for interop (CondVar). Callers must not lock it
  // directly — neither the clang analysis nor the lock-order checker can see
  // that.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock over Mutex — the annotated std::lock_guard. Declared
// SCOPED_CAPABILITY so the analysis knows construction acquires and
// destruction releases.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable usable with Mutex. Wait* take the Mutex the caller
// already holds (REQUIRES), adopt it into a std::unique_lock for the wait,
// and release the unique_lock before returning so ownership stays with the
// caller's scope — exactly std::condition_variable semantics, visible to the
// analysis. The lock-order checker keeps the Mutex on the waiter's held list
// through the wait: the thread re-holds it whenever the predicate runs and
// when Wait returns, which is the invariant the checker models.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();  // the caller still holds mu
  }

  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    const bool ok = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return ok;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace glsc
