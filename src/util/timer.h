// Wall-clock timing helpers used by the speed benchmarks (Table 2) and by
// training progress logs.
#pragma once

#include <chrono>

namespace glsc {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace glsc
