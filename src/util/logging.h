// Minimal leveled logger. Scientific-compression runs are long; the logger is
// intentionally line-buffered and timestamped so progress can be followed from
// a terminal or a batch-job log file.
#pragma once

#include <sstream>
#include <string>

namespace glsc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are discarded. Defaults to kInfo and can
// be overridden with the GLSC_LOG environment variable (debug|info|warn|error).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace glsc

#define GLSC_LOG(level)                                                  \
  if (::glsc::LogLevel::level < ::glsc::GetLogLevel()) {                 \
  } else                                                                 \
    ::glsc::internal::LogMessage(::glsc::LogLevel::level, __FILE__, __LINE__)

#define LOG_DEBUG GLSC_LOG(kDebug)
#define LOG_INFO GLSC_LOG(kInfo)
#define LOG_WARN GLSC_LOG(kWarn)
#define LOG_ERROR GLSC_LOG(kError)
