// Tiny command-line flag parser for the example and benchmark binaries.
// Accepts --name=value and --name value forms plus boolean --name.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace glsc {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace glsc
