#include "util/lock_checker.h"

#include <execinfo.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace glsc::lockcheck {
namespace {

constexpr int kMaxFrames = 24;

struct Stack {
  std::array<void*, kMaxFrames> pc{};
  int depth = 0;

  static Stack Capture() {
    Stack s;
    s.depth = backtrace(s.pc.data(), kMaxFrames);
    return s;
  }
};

void PrintStack(const Stack& stack) {
  if (stack.depth <= 0) {
    std::fprintf(stderr, "    <no frames captured>\n");
    return;
  }
  backtrace_symbols_fd(const_cast<void* const*>(stack.pc.data()), stack.depth,
                       2 /* stderr */);
}

struct Edge {
  // Backtrace of the acquisition that FIRST created this edge (i.e. the
  // acquisition of the destination mutex while the source was held).
  Stack first_seen;
};

struct Node {
  std::string name;   // empty = anonymous
  int rank = 0;       // <= 0 = unranked
  std::unordered_map<const void*, Edge> out;
};

const char* NodeLabel(const Node& node) {
  return node.name.empty() ? "<anonymous>" : node.name.c_str();
}

// All graph state lives behind one raw std::mutex. The checker cannot lock
// through util::Mutex (its own hooks would recurse), so this file is the one
// sanctioned raw-std::mutex site outside util/mutex.h — see
// tools/lint_allowlist.txt.
struct Graph {
  std::mutex mu;
  std::unordered_map<const void*, Node> nodes;
};

Graph& GetGraph() {
  static Graph* graph = new Graph();  // leaked: outlives static destructors
  return *graph;
}

// Per-thread held-lock list. A handful of entries at most; linear scans are
// fine and keep the structure trivially async-safe for the abort path.
thread_local std::vector<const void*> tls_held;

// Depth-first search for a path from `from` to `target` over recorded edges,
// collecting the edge chain. Caller holds the graph mutex.
bool FindPath(const Graph& graph, const void* from, const void* target,
              std::unordered_set<const void*>* visited,
              std::vector<std::pair<const void*, const void*>>* path) {
  if (from == target) return true;
  if (!visited->insert(from).second) return false;
  const auto it = graph.nodes.find(from);
  if (it == graph.nodes.end()) return false;
  for (const auto& [next, edge] : it->second.out) {
    path->emplace_back(from, next);
    if (FindPath(graph, next, target, visited, path)) return true;
    path->pop_back();
  }
  return false;
}

void DescribeMutex(const Graph& graph, const void* mu) {
  const auto it = graph.nodes.find(mu);
  if (it == graph.nodes.end()) {
    std::fprintf(stderr, "Mutex %p <unregistered>", mu);
    return;
  }
  std::fprintf(stderr, "Mutex %p \"%s\"", mu, NodeLabel(it->second));
  if (it->second.rank > 0) {
    std::fprintf(stderr, " (rank %d)", it->second.rank);
  }
}

[[noreturn]] void AbortWithReport(Graph& graph, const char* kind,
                                  const void* acquiring, const void* held,
                                  const std::vector<std::pair<const void*, const void*>>* path) {
  std::fprintf(stderr,
               "\n==== glsc lock-order checker: %s ====\n  acquiring: ", kind);
  DescribeMutex(graph, acquiring);
  if (held != nullptr) {
    std::fprintf(stderr, "\n  while holding: ");
    DescribeMutex(graph, held);
  }
  std::fprintf(stderr, "\n");
  if (path != nullptr) {
    std::fprintf(stderr,
                 "  conflicting prior acquisition order (stack recorded when "
                 "each edge was first seen):\n");
    for (const auto& [from, to] : *path) {
      std::fprintf(stderr, "  -- edge: ");
      DescribeMutex(graph, from);
      std::fprintf(stderr, " -> ");
      DescribeMutex(graph, to);
      std::fprintf(stderr, "\n");
      const auto from_it = graph.nodes.find(from);
      if (from_it != graph.nodes.end()) {
        const auto edge_it = from_it->second.out.find(to);
        if (edge_it != from_it->second.out.end()) {
          PrintStack(edge_it->second.first_seen);
        }
      }
    }
  }
  std::fprintf(stderr, "  current acquisition stack:\n");
  const Stack here = Stack::Capture();
  PrintStack(here);
  std::fprintf(stderr, "==== aborting ====\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnCreate(const void* mu, const char* name, int rank) {
  Graph& graph = GetGraph();
  const std::lock_guard<std::mutex> lock(graph.mu);
  Node& node = graph.nodes[mu];
  node.name = (name != nullptr) ? name : "";
  node.rank = rank;
  node.out.clear();  // address reuse: drop any stale edges from a prior life
}

void OnDestroy(const void* mu) {
  Graph& graph = GetGraph();
  const std::lock_guard<std::mutex> lock(graph.mu);
  graph.nodes.erase(mu);
  // Remove edges INTO the dead node too, so a future Mutex reusing the
  // address cannot inherit them.
  for (auto& [addr, node] : graph.nodes) {
    node.out.erase(mu);
  }
}

void OnAcquire(const void* mu) {
  Graph& graph = GetGraph();
  for (const void* held : tls_held) {
    if (held == mu) {
      const std::lock_guard<std::mutex> lock(graph.mu);
      AbortWithReport(graph, "SELF-DEADLOCK (mutex already held by this thread)",
                      mu, mu, nullptr);
    }
  }
  if (!tls_held.empty()) {
    const std::lock_guard<std::mutex> lock(graph.mu);
    const auto target_it = graph.nodes.find(mu);
    const int target_rank =
        (target_it != graph.nodes.end()) ? target_it->second.rank : 0;
    for (const void* held : tls_held) {
      // Rank discipline: ranked mutexes are acquired in strictly increasing
      // rank order. Checked against every held lock, not just the newest, so
      // an unranked lock in between cannot launder an inversion.
      if (target_rank > 0) {
        const auto held_it = graph.nodes.find(held);
        if (held_it != graph.nodes.end() && held_it->second.rank > 0 &&
            held_it->second.rank >= target_rank) {
          AbortWithReport(graph, "RANK-ORDER VIOLATION", mu, held, nullptr);
        }
      }
      // Graph cycle check: adding held -> mu must not close a cycle.
      Node& held_node = graph.nodes[held];
      if (held_node.out.find(mu) == held_node.out.end()) {
        std::unordered_set<const void*> visited;
        std::vector<std::pair<const void*, const void*>> path;
        if (FindPath(graph, mu, held, &visited, &path)) {
          AbortWithReport(graph, "POTENTIAL DEADLOCK (lock-order inversion)",
                          mu, held, &path);
        }
        held_node.out.emplace(mu, Edge{Stack::Capture()});
      }
    }
  }
  tls_held.push_back(mu);
}

void OnTryAcquired(const void* mu) {
  for (const void* held : tls_held) {
    if (held == mu) {
      Graph& graph = GetGraph();
      const std::lock_guard<std::mutex> lock(graph.mu);
      AbortWithReport(graph, "SELF-DEADLOCK (try_lock on a held mutex)", mu, mu,
                      nullptr);
    }
  }
  tls_held.push_back(mu);
}

void OnRelease(const void* mu) {
  // Usually LIFO, but Mutex::Unlock permits out-of-order release; scan from
  // the back.
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (*it == mu) {
      tls_held.erase(std::next(it).base());
      return;
    }
  }
  // Releasing a mutex this thread never acquired through the hooks: the only
  // legitimate path is a lock handed between threads, which util::Mutex does
  // not support. Flag it.
  Graph& graph = GetGraph();
  const std::lock_guard<std::mutex> lock(graph.mu);
  AbortWithReport(graph, "RELEASE OF A MUTEX NOT HELD BY THIS THREAD", mu,
                  nullptr, nullptr);
}

int HeldCount() { return static_cast<int>(tls_held.size()); }

}  // namespace glsc::lockcheck
