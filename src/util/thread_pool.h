// Shared-memory work pool used for coarse-grained parallelism (per-block
// compression, per-window evaluation). Fine-grained loops inside tensor
// kernels use OpenMP instead; the pool exists for irregular task graphs where
// a parallel-for pragma does not fit.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/deadline.h"
#include "util/mutex.h"

namespace glsc {

class ThreadPool {
 public:
  // threads == 0 selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue an arbitrary task; the future resolves when it completes.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return fut;
  }

  // Blocking parallel-for over [0, n): fn(i) is invoked at most once per
  // index, distributed over the pool plus the calling thread. Safe to call
  // from inside a task running on this pool: nested calls run inline on the
  // calling worker instead of submitting helper tasks, because blocking a
  // worker on futures whose tasks sit behind other blocked workers in the
  // queue deadlocks the pool.
  //
  // Exceptions: every dispatched fn(i) runs to completion before ParallelFor
  // returns or throws — a throwing body never leaves helper tasks running
  // against the caller's (about to unwind) stack frame. If one or more bodies
  // throw, the first exception observed is rethrown after all workers drain.
  //
  // Cancellation: a non-null `ctx` is checked before each index is
  // dispatched; once the deadline expires or the token fires, remaining
  // indices are SKIPPED (fn is not called for them) and ParallelFor returns
  // normally — the caller is expected to re-check its context and decide.
  // Indices already running are not interrupted.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                   const RequestContext* ctx = nullptr);

  // True when the calling thread is one of THIS pool's workers.
  bool InWorkerThread() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_{"ThreadPool.mu"};
  CondVar cv_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
};

// Process-wide pool (lazily constructed) for callers that do not want to
// manage lifetime themselves.
ThreadPool& GlobalThreadPool();

}  // namespace glsc
