// Clang thread-safety analysis attribute shim.
//
// These macros let lock-protected structures document their locking
// discipline in a form the compiler can CHECK: under clang, building with
// -Wthread-safety (scripts/lint.sh promotes it to -Werror=thread-safety)
// rejects any access to a GUARDED_BY member without its mutex held, any call
// to a REQUIRES function without the capability, and any mismatched
// ACQUIRE/RELEASE pairing — lock-discipline violations fail the build instead
// of racing in production. Under every other compiler the macros expand to
// nothing, so the annotations cost zero and the code stays portable.
//
// The annotations only bind to capability-annotated types: std::mutex carries
// none (libstdc++), so the codebase locks through util::Mutex / util::MutexLock
// / util::CondVar (util/mutex.h), which wrap std::mutex with the attributes
// the analysis needs. Annotate new code by (1) declaring the mutex as
// util::Mutex, (2) tagging each protected member `GUARDED_BY(mu_)`, and
// (3) tagging private helpers that expect the lock held `REQUIRES(mu_)`.
// See docs/HARDENING.md for the workflow and how to run the lint lane.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define GLSC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GLSC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Type attributes: a capability (mutex-like) type and an RAII lock whose
// lifetime acquires/releases one.
#define CAPABILITY(x) GLSC_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY GLSC_THREAD_ANNOTATION(scoped_lockable)

// Data members: protected by a mutex (the member itself / the pointee).
#define GUARDED_BY(x) GLSC_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) GLSC_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock ordering documentation (checked when both mutexes are annotated).
#define ACQUIRED_BEFORE(...) GLSC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) GLSC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function attributes: the caller must hold / must not hold the capability;
// the function acquires / releases it; try-lock semantics.
#define REQUIRES(...) GLSC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  GLSC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) GLSC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  GLSC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) GLSC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  GLSC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  GLSC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) GLSC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) GLSC_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) GLSC_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for functions whose locking is correct but inexpressible
// (per-element lock arrays, lock/unlock split across scopes). Use sparingly
// and leave a comment saying WHY the analysis cannot follow.
#define NO_THREAD_SAFETY_ANALYSIS \
  GLSC_THREAD_ANNOTATION(no_thread_safety_analysis)
