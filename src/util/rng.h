// Deterministic, fast pseudo-random number generation for data synthesis and
// model initialization. xoshiro256** is used instead of std::mt19937 because it
// is ~4x faster per draw and its state is trivially serializable, which keeps
// dataset generation reproducible across platforms.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace glsc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  // SplitMix64-expanded seeding: any seed (including 0) yields a well-mixed
  // full state.
  void Seed(std::uint64_t seed) {
    auto splitmix = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = splitmix();
    has_cached_normal_ = false;
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double Uniform() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  float UniformF() { return static_cast<float>(Uniform()); }
  float UniformF(float lo, float hi) {
    return lo + (hi - lo) * UniformF();
  }

  // Integer in [0, n). n must be > 0.
  std::uint64_t UniformInt(std::uint64_t n) {
    // Lemire's multiply-shift with rejection for unbiasedness.
    std::uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Standard normal via Box-Muller with caching of the second draw.
  double Normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = Uniform();
    // Guard the log: Uniform() can return exactly 0.
    while (u1 <= 0.0) u1 = Uniform();
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
  }

  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }
  float NormalF() { return static_cast<float>(Normal()); }

  // Derive an independent stream (for per-thread or per-field generators).
  Rng Fork() { return Rng(NextU64()); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace glsc
