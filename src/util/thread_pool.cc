#include "util/thread_pool.h"

#include <atomic>

namespace glsc {
namespace {

// Pool whose WorkerLoop owns the current thread (nullptr off-pool). Lets
// ParallelFor detect re-entry from its own workers.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc > 0 ? hc : 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::InWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_.Wait(mu_, [this]() REQUIRES(mu_) { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             const RequestContext* ctx) {
  if (n == 0) return;
  // Nested call from one of our own workers: helper tasks submitted here
  // could sit in the queue behind tasks whose workers are themselves blocked
  // in f.get() below — with every worker blocked nothing drains the queue.
  // Running inline keeps the worker making progress (and the outer
  // ParallelFor's other workers supply the parallelism).
  if (n == 1 || workers_.size() <= 1 || InWorkerThread()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (ShouldAbort(ctx)) return;
      fn(i);
    }
    return;
  }
  // Dynamic index dispenser: workers and the caller pull the next index until
  // exhausted. This balances irregular per-item cost (e.g. diffusion decode
  // of different window sizes) better than static chunking.
  auto counter = std::make_shared<std::atomic<std::size_t>>(0);
  auto body = [counter, n, &fn, ctx] {
    while (true) {
      if (ShouldAbort(ctx)) return;
      const std::size_t i = counter->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::future<void>> futs;
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  futs.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futs.push_back(Submit(body));
  // Drain EVERY helper before leaving this frame, even when a body throws:
  // helper tasks capture `fn` (and through it the caller's locals) by
  // reference, so unwinding while one still runs is a use-after-scope. The
  // first exception observed — inline body first, then helpers in order —
  // is rethrown once all of them have finished.
  std::exception_ptr first_error;
  try {
    body();
  } catch (...) {
    first_error = std::current_exception();
    // Stop helpers from starting new indices; in-flight ones finish.
    counter->store(n, std::memory_order_relaxed);
  }
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace glsc
