// Per-request deadline and cooperative cancellation, threaded from the serve
// front end down through DecodeScheduler and ThreadPool::ParallelFor. A
// decode cannot be preempted mid-GEMM; instead the layers check a
// RequestContext at natural yield points (between decode chunks, between
// ParallelFor indices) and terminate with a typed error. Header-only — these
// are a time_point, an atomic flag, and the check that turns them into
// StatusErrors.
#pragma once

#include <atomic>
#include <chrono>

#include "util/status.h"

namespace glsc {

// Absolute wall-clock budget for one request. Default-constructed deadlines
// never expire.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  static Deadline After(std::chrono::nanoseconds budget) {
    Deadline d;
    d.at_ = Clock::now() + budget;
    d.finite_ = true;
    return d;
  }
  static Deadline AfterMillis(std::int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }

  bool finite() const { return finite_; }
  bool expired() const { return finite_ && Clock::now() >= at_; }
  Clock::time_point at() const { return at_; }

 private:
  Clock::time_point at_{};
  bool finite_ = false;
};

// Set-once cancellation flag shared between a caller and the workers serving
// its request. Thread-safe; cancelling is advisory (workers observe it at
// their next check point).
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// What a request carries through the decode layers. Both members are
// optional: the default context never expires and cannot be cancelled, so
// passing nullptr and passing a default RequestContext are equivalent.
struct RequestContext {
  Deadline deadline;
  const CancelToken* cancel = nullptr;

  bool cancelled() const { return cancel != nullptr && cancel->cancelled(); }
  bool expired() const { return deadline.expired(); }

  // Throws the matching typed error when the request should stop. Cancel wins
  // over deadline so an explicit Cancel() is always reported as kCancelled.
  void Check() const {
    if (cancelled()) {
      throw StatusError(ErrorCode::kCancelled, "request cancelled");
    }
    if (expired()) {
      throw StatusError(ErrorCode::kDeadlineExceeded, "deadline exceeded");
    }
  }
};

// True when `ctx` (possibly null) says the request should stop.
inline bool ShouldAbort(const RequestContext* ctx) {
  return ctx != nullptr && (ctx->cancelled() || ctx->expired());
}

}  // namespace glsc
