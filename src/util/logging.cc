#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace glsc {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::once_flag g_env_once;

void InitFromEnv() {
  const char* env = std::getenv("GLSC_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) g_level = 0;
  else if (std::strcmp(env, "info") == 0) g_level = 1;
  else if (std::strcmp(env, "warn") == 0) g_level = 2;
  else if (std::strcmp(env, "error") == 0) g_level = 3;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;
  const auto now = std::chrono::system_clock::now();
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&tt, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%H:%M:%S", &tm_buf);
  stream_ << LevelTag(level_) << " " << stamp << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
}

}  // namespace internal
}  // namespace glsc
