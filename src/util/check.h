// Lightweight runtime-check macros. GLSC_CHECK is always on (it guards
// invariants whose violation would corrupt bitstreams or silently produce
// wrong science); GLSC_DCHECK compiles out in NDEBUG builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace glsc {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace glsc

#define GLSC_CHECK(cond)                                       \
  do {                                                         \
    if (!(cond)) ::glsc::CheckFailed(__FILE__, __LINE__, #cond, ""); \
  } while (0)

#define GLSC_CHECK_MSG(cond, msg)                              \
  do {                                                         \
    if (!(cond)) {                                             \
      std::ostringstream glsc_os_;                             \
      glsc_os_ << msg;                                         \
      ::glsc::CheckFailed(__FILE__, __LINE__, #cond, glsc_os_.str()); \
    }                                                          \
  } while (0)

#ifdef NDEBUG
#define GLSC_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define GLSC_DCHECK(cond) GLSC_CHECK(cond)
#endif
