#include "baselines/vae_sr.h"

#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace glsc::baselines {

VAESRCompressor::VAESRCompressor(const VaeSrConfig& config)
    : config_(config), vae_(config.vae) {
  Rng rng(config.seed);
  const std::int64_t c = config.sr_channels;
  sr_net_.Emplace<nn::Conv2d>(1, c, 3, 1, 1, rng, "sr.conv1");
  sr_net_.Emplace<nn::SiLU>();
  sr_net_.Emplace<nn::Conv2d>(c, c, 3, 1, 1, rng, "sr.conv2");
  sr_net_.Emplace<nn::SiLU>();
  sr_net_.Emplace<nn::NearestUpsample2x>();
  sr_net_.Emplace<nn::Conv2d>(c, 1, 3, 1, 1, rng, "sr.conv3");
}

Tensor VAESRCompressor::Downsample2x(const Tensor& frames_n1hw) {
  nn::AvgPool2x pool;
  return pool.Forward(frames_n1hw, /*training=*/false);
}

Tensor VAESRCompressor::SrForward(const Tensor& lr, bool training) {
  const Tensor residual = sr_net_.Forward(lr, training);
  const Tensor skip = sr_skip_.Forward(lr, training);
  return Add(skip, residual);
}

Tensor VAESRCompressor::SrBackward(const Tensor& grad_out) {
  Tensor g = sr_net_.Backward(grad_out);
  Axpy(1.0f, sr_skip_.Backward(grad_out), &g);
  return g;
}

std::vector<nn::Param*> VAESRCompressor::SrParams() { return sr_net_.Params(); }

void VAESRCompressor::Train(const data::SequenceDataset& dataset,
                            const compress::VaeTrainConfig& vae_cfg,
                            std::int64_t sr_iters, std::int64_t crop) {
  // Stage 1: the VAE is trained on DOWNSAMPLED patches. Build a low-res proxy
  // dataset by pooling the raw field once.
  Tensor raw = dataset.raw();
  const Tensor pooled4d =
      Downsample2x(raw.Reshape({raw.dim(0) * raw.dim(1), 1, raw.dim(2),
                                raw.dim(3)}))
          .Reshape({raw.dim(0), raw.dim(1), raw.dim(2) / 2, raw.dim(3) / 2});
  data::SequenceDataset lr_dataset(pooled4d);
  compress::VaeTrainConfig lr_cfg = vae_cfg;
  lr_cfg.crop = std::max<std::int64_t>(crop / 2, 8);
  compress::TrainVae(&vae_, lr_dataset, lr_cfg);

  // Stage 2: SR on (decoded low-res, original high-res) pairs.
  Rng rng(config_.seed + 3);
  nn::Adam opt(SrParams(), 1e-3f);
  double window_loss = 0.0;
  std::int64_t window_count = 0;
  for (std::int64_t iter = 1; iter <= sr_iters; ++iter) {
    Tensor hr_frame = dataset.SampleTrainingPatch(crop, rng);
    const Tensor hr =
        hr_frame.Reshape({1, 1, hr_frame.dim(1), hr_frame.dim(2)});
    const Tensor lr = Downsample2x(hr);
    const Tensor lr_decoded =
        vae_.DecodeLatent(Round(vae_.EncodeLatent(lr)));

    const Tensor sr = SrForward(lr_decoded, /*training=*/true);
    const double loss = MeanSquaredError(hr, sr);

    Tensor g = Sub(sr, hr);
    MulScalarInPlace(&g, 2.0f / static_cast<float>(g.numel()));
    opt.ZeroGrad();
    SrBackward(g);
    opt.ClipGradNorm(5.0);
    opt.Step();

    window_loss += loss;
    if (++window_count == 200 || iter == sr_iters) {
      LOG_INFO << "vae-sr iter " << iter << "/" << sr_iters
               << " mse=" << window_loss / window_count;
      window_loss = 0.0;
      window_count = 0;
    }
  }
}

VAESRCompressor::Compressed VAESRCompressor::Compress(const Tensor& window) {
  GLSC_CHECK(window.rank() == 3);
  GLSC_CHECK(window.dim(1) % 2 == 0 && window.dim(2) % 2 == 0);
  Compressed out;
  out.window_shape = window.shape();
  const Tensor lr = Downsample2x(
      window.Reshape({window.dim(0), 1, window.dim(1), window.dim(2)}));
  out.frames = vae_.Compress(lr);
  return out;
}

Tensor VAESRCompressor::Decompress(const Compressed& compressed) {
  const Tensor y = vae_.DecompressLatents(compressed.frames);
  const Tensor lr = vae_.DecodeLatent(y);
  return SrForward(lr, /*training=*/false).Reshape(compressed.window_shape);
}

void VAESRCompressor::Save(ByteWriter* out) {
  vae_.Save(out);
  nn::SaveParams(SrParams(), out);
}

void VAESRCompressor::Load(ByteReader* in) {
  vae_.Load(in);
  nn::LoadParams(SrParams(), in);
}

}  // namespace glsc::baselines
