#include "baselines/sz_like.h"

#include <algorithm>
#include <cmath>

#include "codec/huffman.h"
#include "util/bytes.h"
#include "util/check.h"

namespace glsc::baselines {
namespace {

struct Dims {
  std::int64_t t, h, w;
  std::int64_t Index(std::int64_t ti, std::int64_t yi, std::int64_t xi) const {
    return (ti * h + yi) * w + xi;
  }
};

// Visits every lattice point in the fixed multilevel traversal, invoking
// visit(point_index, neighbour_a, neighbour_b) where the neighbours are the
// already-reconstructed prediction sources (b == -1 for copy prediction, both
// -1 for the very first point). Shared by encoder and decoder so the
// traversal can never diverge.
template <typename Visit>
void Traverse(const Dims& d, Visit&& visit) {
  const std::int64_t max_dim = std::max({d.t, d.h, d.w});
  std::int64_t stride = 1;
  while (stride < max_dim) stride *= 2;

  // Coarsest lattice: delta-chain in scan order.
  std::int64_t prev = -1;
  for (std::int64_t ti = 0; ti < d.t; ti += stride) {
    for (std::int64_t yi = 0; yi < d.h; yi += stride) {
      for (std::int64_t xi = 0; xi < d.w; xi += stride) {
        const std::int64_t idx = d.Index(ti, yi, xi);
        visit(idx, prev, static_cast<std::int64_t>(-1));
        prev = idx;
      }
    }
  }

  for (std::int64_t s = stride; s >= 2; s /= 2) {
    const std::int64_t half = s / 2;
    // Phase t: interpolate along the time axis.
    for (std::int64_t ti = half; ti < d.t; ti += s) {
      for (std::int64_t yi = 0; yi < d.h; yi += s) {
        for (std::int64_t xi = 0; xi < d.w; xi += s) {
          const std::int64_t left = d.Index(ti - half, yi, xi);
          const std::int64_t right =
              (ti + half < d.t) ? d.Index(ti + half, yi, xi) : -1;
          visit(d.Index(ti, yi, xi), left, right);
        }
      }
    }
    // Phase y.
    for (std::int64_t ti = 0; ti < d.t; ti += half) {
      for (std::int64_t yi = half; yi < d.h; yi += s) {
        for (std::int64_t xi = 0; xi < d.w; xi += s) {
          const std::int64_t up = d.Index(ti, yi - half, xi);
          const std::int64_t dn =
              (yi + half < d.h) ? d.Index(ti, yi + half, xi) : -1;
          visit(d.Index(ti, yi, xi), up, dn);
        }
      }
    }
    // Phase x.
    for (std::int64_t ti = 0; ti < d.t; ti += half) {
      for (std::int64_t yi = 0; yi < d.h; yi += half) {
        for (std::int64_t xi = half; xi < d.w; xi += s) {
          const std::int64_t lf = d.Index(ti, yi, xi - half);
          const std::int64_t rt =
              (xi + half < d.w) ? d.Index(ti, yi, xi + half) : -1;
          visit(d.Index(ti, yi, xi), lf, rt);
        }
      }
    }
  }
}

double Predict(const std::vector<double>& recon, std::int64_t a,
               std::int64_t b) {
  if (a < 0 && b < 0) return 0.0;
  if (b < 0) return recon[static_cast<std::size_t>(a)];
  if (a < 0) return recon[static_cast<std::size_t>(b)];
  return 0.5 * (recon[static_cast<std::size_t>(a)] +
                recon[static_cast<std::size_t>(b)]);
}

}  // namespace

std::vector<std::uint8_t> SZLikeCompressor::Compress(const Tensor& field,
                                                     double abs_bound) {
  GLSC_CHECK(field.rank() == 3);
  GLSC_CHECK_MSG(abs_bound > 0.0, "error bound must be positive");
  const Dims d{field.dim(0), field.dim(1), field.dim(2)};
  // Prediction runs in double but the output is float32; shave the bound by
  // one float ulp at the data's magnitude so the cast cannot break the
  // pointwise guarantee. The effective bound travels in the header so the
  // decoder reconstructs identically.
  const double max_abs = std::max(std::fabs(static_cast<double>(field.MaxValue())),
                                  std::fabs(static_cast<double>(field.MinValue())));
  const double eb_eff = std::max(abs_bound - max_abs * 1.2e-7, abs_bound * 0.5);
  const double twice_eb = 2.0 * eb_eff;

  std::vector<double> recon(static_cast<std::size_t>(field.numel()), 0.0);
  std::vector<std::int32_t> codes;
  codes.reserve(recon.size());
  const float* src = field.data();

  Traverse(d, [&](std::int64_t idx, std::int64_t a, std::int64_t b) {
    const double pred = Predict(recon, a, b);
    const double diff = static_cast<double>(src[idx]) - pred;
    const auto k = static_cast<std::int64_t>(std::llround(diff / twice_eb));
    GLSC_CHECK_MSG(k >= INT32_MIN && k <= INT32_MAX, "code overflow");
    codes.push_back(static_cast<std::int32_t>(k));
    recon[static_cast<std::size_t>(idx)] = pred + twice_eb * k;
  });

  ByteWriter out;
  out.PutVarU64(static_cast<std::uint64_t>(d.t));
  out.PutVarU64(static_cast<std::uint64_t>(d.h));
  out.PutVarU64(static_cast<std::uint64_t>(d.w));
  out.PutF64(eb_eff);
  const auto huff = codec::HuffmanEncode(codes);
  out.PutVarU64(huff.size());
  out.PutBytes(huff.data(), huff.size());
  return out.Release();
}

Tensor SZLikeCompressor::Decompress(const std::vector<std::uint8_t>& bytes) {
  ByteReader in(bytes);
  const Dims d{static_cast<std::int64_t>(in.GetVarU64()),
               static_cast<std::int64_t>(in.GetVarU64()),
               static_cast<std::int64_t>(in.GetVarU64())};
  const double abs_bound = in.GetF64();
  const double twice_eb = 2.0 * abs_bound;
  const std::uint64_t huff_size = in.GetVarU64();
  std::vector<std::uint8_t> huff(huff_size);
  in.GetBytes(huff.data(), huff_size);
  const auto codes = codec::HuffmanDecode(huff);

  std::vector<double> recon(static_cast<std::size_t>(d.t * d.h * d.w), 0.0);
  std::size_t cursor = 0;
  Traverse(d, [&](std::int64_t idx, std::int64_t a, std::int64_t b) {
    GLSC_CHECK(cursor < codes.size());
    const double pred = Predict(recon, a, b);
    recon[static_cast<std::size_t>(idx)] = pred + twice_eb * codes[cursor++];
  });
  GLSC_CHECK(cursor == codes.size());

  Tensor out({d.t, d.h, d.w});
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] = static_cast<float>(recon[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace glsc::baselines
