// ZFP-style transform-based error-bounded compressor.
//
// ZFP partitions a d-dimensional field into 4^d blocks, applies a separable
// near-orthogonal decorrelating transform, and codes the coefficients to a
// precision derived from the error tolerance. This class follows the same
// architecture for 3D (t, y, x) data:
//
//   * 4x4x4 blocks, edge-replicated at boundaries;
//   * a separable two-level Haar transform per axis (each output value is a
//     ±1 combination of at most 3 coefficients per axis, 27 in total);
//   * uniform scalar quantization of coefficients with step 2*eb/27, which
//     bounds the per-point reconstruction error by eb deterministically;
//   * Huffman coding of the quantization integers (near-zero high-frequency
//     coefficients dominate, which the entropy stage exploits).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace glsc::baselines {

class ZFPLikeCompressor {
 public:
  std::vector<std::uint8_t> Compress(const Tensor& field, double abs_bound);
  Tensor Decompress(const std::vector<std::uint8_t>& bytes);
};

}  // namespace glsc::baselines
