// GCD-style 3D block conditional diffusion codec (Lee et al. [20]): extends
// CDC from 2D frames to spatiotemporal blocks. A VAE+hyperprior still stores
// a latent for EVERY frame of the block; the diffusion model then denoises
// the whole [N, H, W] block jointly in PIXEL space with temporal attention,
// conditioned on the per-frame VAE reconstructions. Joint 3D pixel-space
// denoising makes GCD the slowest decoder in Table 2.
#pragma once

#include "compress/vae.h"
#include "compress/vae_trainer.h"
#include "data/dataset.h"
#include "diffusion/noise_schedule.h"
#include "diffusion/spacetime_unet.h"

namespace glsc::baselines {

struct GcdConfig {
  compress::VaeConfig vae;
  std::int64_t model_channels = 24;
  std::int64_t heads = 4;
  std::int64_t schedule_steps = 200;
  std::int64_t window = 8;  // N frames per 3D block
  std::uint64_t seed = 61;
};

class GCDCompressor {
 public:
  explicit GCDCompressor(const GcdConfig& config);

  void Train(const data::SequenceDataset& dataset,
             const compress::VaeTrainConfig& vae_cfg,
             std::int64_t diffusion_iters, std::int64_t crop);

  struct Compressed {
    compress::VaeBitstream frames;
    Shape window_shape;
  };

  Compressed Compress(const Tensor& window);
  Tensor Decompress(const Compressed& compressed, std::int64_t steps,
                    Rng& rng);

  std::int64_t window() const { return config_.window; }

  void Save(ByteWriter* out);
  void Load(ByteReader* in);

 private:
  GcdConfig config_;
  compress::VaeHyperprior vae_;
  diffusion::NoiseSchedule schedule_;
  diffusion::SpaceTimeUNet unet_;
};

}  // namespace glsc::baselines
