#include "baselines/cdc.h"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace glsc::baselines {
namespace {

diffusion::UNetConfig MakeUnetConfig(const CdcConfig& config) {
  diffusion::UNetConfig unet;
  unet.latent_channels = 1;
  unet.in_channels = 2;  // [noisy | VAE-decoded condition]
  unet.out_channels = 1;
  unet.model_channels = config.model_channels;
  unet.heads = config.heads;
  unet.stage1_attention = false;  // pixel space: attend at coarse scale only
  unet.seed = config.seed + 1;
  return unet;
}

// Stacks per-frame [N,1,H,W] noisy input with condition into [N,2,H,W].
Tensor StackChannels(const Tensor& a, const Tensor& b) {
  GLSC_CHECK(a.shape() == b.shape() && a.rank() == 4 && a.dim(1) == 1);
  const std::int64_t n = a.dim(0), h = a.dim(2), w = a.dim(3);
  Tensor out({n, 2, h, w});
  for (std::int64_t i = 0; i < n; ++i) {
    std::copy_n(a.data() + i * h * w, h * w, out.data() + i * 2 * h * w);
    std::copy_n(b.data() + i * h * w, h * w,
                out.data() + (i * 2 + 1) * h * w);
  }
  return out;
}

// Splits the gradient of a stacked tensor back to its first channel.
[[maybe_unused]] Tensor FirstChannelGrad(const Tensor& stacked_grad) {
  const std::int64_t n = stacked_grad.dim(0), h = stacked_grad.dim(2),
                     w = stacked_grad.dim(3);
  Tensor out({n, 1, h, w});
  for (std::int64_t i = 0; i < n; ++i) {
    std::copy_n(stacked_grad.data() + i * 2 * h * w, h * w,
                out.data() + i * h * w);
  }
  return out;
}

}  // namespace

CDCCompressor::CDCCompressor(const CdcConfig& config)
    : config_(config),
      vae_(config.vae),
      schedule_(diffusion::ScheduleKind::kLinear, config.schedule_steps),
      unet_(MakeUnetConfig(config)) {}

void CDCCompressor::Train(const data::SequenceDataset& dataset,
                          const compress::VaeTrainConfig& vae_cfg,
                          std::int64_t diffusion_iters, std::int64_t crop) {
  compress::TrainVae(&vae_, dataset, vae_cfg);

  Rng rng(config_.seed + 2);
  nn::Adam opt(unet_.Params(), 3e-4f);
  double window_loss = 0.0;
  std::int64_t window_count = 0;
  for (std::int64_t iter = 1; iter <= diffusion_iters; ++iter) {
    Tensor frame = dataset.SampleTrainingPatch(crop, rng);
    const Tensor x =
        frame.Reshape({1, 1, frame.dim(1), frame.dim(2)});
    // Frozen-VAE conditioning signal: decode of the quantized latent.
    const Tensor cond = vae_.DecodeLatent(Round(vae_.EncodeLatent(x)));

    const std::int64_t t = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(schedule_.steps())));
    const double ab = schedule_.alpha_bar(t);
    const float sig = static_cast<float>(std::sqrt(ab));
    const float noi = static_cast<float>(std::sqrt(1.0 - ab));

    Tensor eps = Tensor::Randn(x.shape(), rng);
    Tensor x_t(x.shape());
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      x_t[i] = sig * x[i] + noi * eps[i];
    }

    const Tensor input = StackChannels(x_t, cond);
    const Tensor pred = unet_.Forward(input, t);
    const Tensor& target = config_.target == PredictTarget::kX0 ? x : eps;
    const double loss = MeanSquaredError(target, pred);

    Tensor g = Sub(pred, target);
    MulScalarInPlace(&g, 2.0f / static_cast<float>(g.numel()));
    opt.ZeroGrad();
    unet_.Backward(g);
    opt.ClipGradNorm(1.0);
    opt.Step();

    window_loss += loss;
    if (++window_count == 200 || iter == diffusion_iters) {
      LOG_INFO << "cdc(" << (config_.target == PredictTarget::kX0 ? "X" : "eps")
               << ") iter " << iter << "/" << diffusion_iters
               << " mse=" << window_loss / window_count;
      window_loss = 0.0;
      window_count = 0;
    }
  }
}

CDCCompressor::Compressed CDCCompressor::Compress(const Tensor& window) {
  GLSC_CHECK(window.rank() == 3);
  Compressed out;
  out.window_shape = window.shape();
  const Tensor as_batch =
      window.Reshape({window.dim(0), 1, window.dim(1), window.dim(2)});
  out.frames = vae_.Compress(as_batch);  // every frame's latent is stored
  return out;
}

Tensor CDCCompressor::DecompressVaeOnly(const Compressed& compressed) {
  const Tensor y = vae_.DecompressLatents(compressed.frames);
  return vae_.DecodeLatent(y).Reshape(compressed.window_shape);
}

Tensor CDCCompressor::Decompress(const Compressed& compressed,
                                 std::int64_t steps, Rng& rng) {
  const Tensor y = vae_.DecompressLatents(compressed.frames);
  const Tensor cond_batch = vae_.DecodeLatent(y);  // [N,1,H,W]
  const std::int64_t n = cond_batch.dim(0);
  const std::int64_t h = cond_batch.dim(2);
  const std::int64_t w = cond_batch.dim(3);

  std::vector<std::int64_t> ladder = schedule_.Respace(steps);
  std::reverse(ladder.begin(), ladder.end());

  // Frames decode independently (per the 2D design); batch them together.
  Tensor x = Tensor::Randn({n, 1, h, w}, rng);
  for (std::size_t s = 0; s < ladder.size(); ++s) {
    const std::int64_t t = ladder[s];
    const bool last = s + 1 == ladder.size();
    const double ab = schedule_.alpha_bar(t);
    const double ab_prev = last ? 1.0 : schedule_.alpha_bar(ladder[s + 1]);

    const Tensor input = StackChannels(x, cond_batch);
    const Tensor pred = unet_.Forward(input, t);

    // Recover (x0, eps) regardless of parameterization.
    Tensor x0(x.shape()), eps(x.shape());
    const float sqrt_ab = static_cast<float>(std::sqrt(ab));
    const float sqrt_1ab = static_cast<float>(std::sqrt(1.0 - ab));
    if (config_.target == PredictTarget::kX0) {
      x0 = Clamp(pred, -2.0f, 2.0f);
      for (std::int64_t i = 0; i < x.numel(); ++i) {
        eps[i] = (x[i] - sqrt_ab * x0[i]) / sqrt_1ab;
      }
    } else {
      eps = pred;
      for (std::int64_t i = 0; i < x.numel(); ++i) {
        x0[i] = (x[i] - sqrt_1ab * eps[i]) / sqrt_ab;
      }
      x0 = Clamp(x0, -2.0f, 2.0f);
    }
    if (last) {
      x = x0;
      break;
    }
    const float c0 = static_cast<float>(std::sqrt(ab_prev));
    const float c1 = static_cast<float>(std::sqrt(1.0 - ab_prev));
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      x[i] = c0 * x0[i] + c1 * eps[i];  // deterministic DDIM (eta = 0)
    }
  }
  return x.Reshape(compressed.window_shape);
}

void CDCCompressor::Save(ByteWriter* out) {
  vae_.Save(out);
  unet_.Save(out);
}

void CDCCompressor::Load(ByteReader* in) {
  vae_.Load(in);
  unet_.Load(in);
}

}  // namespace glsc::baselines
