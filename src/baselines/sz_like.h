// SZ3-style prediction-based error-bounded compressor.
//
// SZ3's default pipeline predicts values by multilevel interpolation along
// one axis at a time, quantizes the prediction residual into 2*eb bins (so
// every point's reconstruction error is <= eb by construction, regardless of
// predictor quality), and entropy-codes the quantization codes. This class
// implements that design for 3D (t, y, x) fields:
//
//   level L..1:  stride s = 2^level, half = s/2
//     phase t: points (t ≡ half mod s, y ≡ 0 mod s, x ≡ 0 mod s)
//     phase y: points (t ≡ 0 mod half, y ≡ half mod s, x ≡ 0 mod s)
//     phase x: points (t ≡ 0 mod half, y ≡ 0 mod half, x ≡ half mod s)
//   each predicted as the mean of the two already-reconstructed neighbours
//   along the phase axis (single-neighbour copy at boundaries).
//
// Prediction always reads RECONSTRUCTED values, so encoder and decoder stay
// bit-identical and the per-point bound holds end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace glsc::baselines {

class SZLikeCompressor {
 public:
  // field: [T, H, W] physical values; abs_bound: pointwise absolute bound.
  std::vector<std::uint8_t> Compress(const Tensor& field, double abs_bound);
  Tensor Decompress(const std::vector<std::uint8_t>& bytes);
};

}  // namespace glsc::baselines
