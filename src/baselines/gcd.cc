#include "baselines/gcd.h"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace glsc::baselines {
namespace {

diffusion::UNetConfig MakeUnetConfig(const GcdConfig& config) {
  diffusion::UNetConfig unet;
  unet.latent_channels = 1;
  unet.in_channels = 2;
  unet.out_channels = 1;
  unet.model_channels = config.model_channels;
  unet.heads = config.heads;
  unet.stage1_attention = false;
  unet.seed = config.seed + 1;
  return unet;
}

Tensor StackChannels(const Tensor& a, const Tensor& b) {
  GLSC_CHECK(a.shape() == b.shape() && a.rank() == 4 && a.dim(1) == 1);
  const std::int64_t n = a.dim(0), h = a.dim(2), w = a.dim(3);
  Tensor out({n, 2, h, w});
  for (std::int64_t i = 0; i < n; ++i) {
    std::copy_n(a.data() + i * h * w, h * w, out.data() + i * 2 * h * w);
    std::copy_n(b.data() + i * h * w, h * w, out.data() + (i * 2 + 1) * h * w);
  }
  return out;
}

}  // namespace

GCDCompressor::GCDCompressor(const GcdConfig& config)
    : config_(config),
      vae_(config.vae),
      schedule_(diffusion::ScheduleKind::kLinear, config.schedule_steps),
      unet_(MakeUnetConfig(config)) {}

void GCDCompressor::Train(const data::SequenceDataset& dataset,
                          const compress::VaeTrainConfig& vae_cfg,
                          std::int64_t diffusion_iters, std::int64_t crop) {
  compress::TrainVae(&vae_, dataset, vae_cfg);

  Rng rng(config_.seed + 2);
  nn::Adam opt(unet_.Params(), 3e-4f);
  double window_loss = 0.0;
  std::int64_t window_count = 0;
  for (std::int64_t iter = 1; iter <= diffusion_iters; ++iter) {
    const Tensor frames =
        dataset.SampleTrainingWindow(config_.window, crop, rng);
    const Tensor x = frames.Reshape(
        {frames.dim(0), 1, frames.dim(1), frames.dim(2)});
    const Tensor cond = vae_.DecodeLatent(Round(vae_.EncodeLatent(x)));

    const std::int64_t t = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(schedule_.steps())));
    const double ab = schedule_.alpha_bar(t);
    const float sig = static_cast<float>(std::sqrt(ab));
    const float noi = static_cast<float>(std::sqrt(1.0 - ab));

    Tensor eps = Tensor::Randn(x.shape(), rng);
    Tensor x_t(x.shape());
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      x_t[i] = sig * x[i] + noi * eps[i];
    }

    const Tensor pred = unet_.Forward(StackChannels(x_t, cond), t);
    const double loss = MeanSquaredError(eps, pred);

    Tensor g = Sub(pred, eps);
    MulScalarInPlace(&g, 2.0f / static_cast<float>(g.numel()));
    opt.ZeroGrad();
    unet_.Backward(g);
    opt.ClipGradNorm(1.0);
    opt.Step();

    window_loss += loss;
    if (++window_count == 200 || iter == diffusion_iters) {
      LOG_INFO << "gcd iter " << iter << "/" << diffusion_iters
               << " mse=" << window_loss / window_count;
      window_loss = 0.0;
      window_count = 0;
    }
  }
}

GCDCompressor::Compressed GCDCompressor::Compress(const Tensor& window) {
  GLSC_CHECK(window.rank() == 3);
  Compressed out;
  out.window_shape = window.shape();
  const Tensor as_batch =
      window.Reshape({window.dim(0), 1, window.dim(1), window.dim(2)});
  out.frames = vae_.Compress(as_batch);
  return out;
}

Tensor GCDCompressor::Decompress(const Compressed& compressed,
                                 std::int64_t steps, Rng& rng) {
  const Tensor y = vae_.DecompressLatents(compressed.frames);
  const Tensor cond = vae_.DecodeLatent(y);

  std::vector<std::int64_t> ladder = schedule_.Respace(steps);
  std::reverse(ladder.begin(), ladder.end());

  Tensor x = Tensor::Randn(cond.shape(), rng);
  for (std::size_t s = 0; s < ladder.size(); ++s) {
    const std::int64_t t = ladder[s];
    const bool last = s + 1 == ladder.size();
    const double ab = schedule_.alpha_bar(t);
    const double ab_prev = last ? 1.0 : schedule_.alpha_bar(ladder[s + 1]);
    const float sqrt_ab = static_cast<float>(std::sqrt(ab));
    const float sqrt_1ab = static_cast<float>(std::sqrt(1.0 - ab));

    const Tensor eps = unet_.Forward(StackChannels(x, cond), t);
    Tensor x0(x.shape());
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      x0[i] = (x[i] - sqrt_1ab * eps[i]) / sqrt_ab;
    }
    x0 = Clamp(x0, -2.0f, 2.0f);
    if (last) {
      x = x0;
      break;
    }
    const float c0 = static_cast<float>(std::sqrt(ab_prev));
    const float c1 = static_cast<float>(std::sqrt(1.0 - ab_prev));
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      x[i] = c0 * x0[i] + c1 * eps[i];
    }
  }
  return x.Reshape(compressed.window_shape);
}

void GCDCompressor::Save(ByteWriter* out) {
  vae_.Save(out);
  unet_.Save(out);
}

void GCDCompressor::Load(ByteReader* in) {
  vae_.Load(in);
  unet_.Load(in);
}

}  // namespace glsc::baselines
