// CDC-style conditional diffusion codec (Yang & Mandt [38]), the 2D learned
// baseline of Figure 3 in both its parameterizations:
//   CDC-X   — the network predicts the clean signal x0 directly;
//   CDC-eps — the network predicts the injected noise.
//
// Design mirrored from the paper: a VAE+hyperprior encodes EVERY frame to a
// quantized latent (this is the storage cost our method undercuts); the
// decoded VAE reconstruction conditions a PIXEL-SPACE diffusion model that
// refines it. Decoding therefore runs the reverse process at full spatial
// resolution — the source of CDC's slow decode in Table 2.
#pragma once

#include "compress/vae.h"
#include "compress/vae_trainer.h"
#include "data/dataset.h"
#include "diffusion/noise_schedule.h"
#include "diffusion/spacetime_unet.h"

namespace glsc::baselines {

enum class PredictTarget { kX0, kEpsilon };

struct CdcConfig {
  compress::VaeConfig vae;
  std::int64_t model_channels = 24;
  std::int64_t heads = 4;
  std::int64_t schedule_steps = 200;
  PredictTarget target = PredictTarget::kEpsilon;
  std::uint64_t seed = 57;
};

class CDCCompressor {
 public:
  explicit CDCCompressor(const CdcConfig& config);

  // Stage 1 (VAE) + stage 2 (conditional pixel diffusion).
  void Train(const data::SequenceDataset& dataset,
             const compress::VaeTrainConfig& vae_cfg,
             std::int64_t diffusion_iters, std::int64_t crop);

  struct Compressed {
    compress::VaeBitstream frames;  // latents for EVERY frame
    Shape window_shape;
  };

  // window: normalized frames [N, H, W].
  Compressed Compress(const Tensor& window);
  Tensor Decompress(const Compressed& compressed, std::int64_t steps,
                    Rng& rng);
  // VAE-only reconstruction (conditioning signal), for ablation.
  Tensor DecompressVaeOnly(const Compressed& compressed);

  compress::VaeHyperprior& vae() { return vae_; }
  diffusion::SpaceTimeUNet& unet() { return unet_; }
  const diffusion::NoiseSchedule& schedule() const { return schedule_; }

  void Save(ByteWriter* out);
  void Load(ByteReader* in);

 private:
  CdcConfig config_;
  compress::VaeHyperprior vae_;
  diffusion::NoiseSchedule schedule_;
  diffusion::SpaceTimeUNet unet_;
};

}  // namespace glsc::baselines
