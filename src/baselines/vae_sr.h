// VAE-SR baseline (Li et al. [25]): a VAE+hyperprior codes a 2x-downsampled
// version of every frame; a super-resolution network restores the full
// resolution on decode. Storing low-resolution latents for every frame is
// cheaper than full-resolution latents, which is what makes this the
// strongest learned baseline in the paper — but it still pays per frame,
// which the keyframe+diffusion approach avoids.
#pragma once

#include "compress/vae.h"
#include "compress/vae_trainer.h"
#include "data/dataset.h"
#include "nn/activations.h"
#include "nn/conv.h"

namespace glsc::baselines {

struct VaeSrConfig {
  compress::VaeConfig vae;  // operates on the low-resolution frames
  std::int64_t sr_channels = 24;
  std::uint64_t seed = 67;
};

class VAESRCompressor {
 public:
  explicit VAESRCompressor(const VaeSrConfig& config);

  void Train(const data::SequenceDataset& dataset,
             const compress::VaeTrainConfig& vae_cfg, std::int64_t sr_iters,
             std::int64_t crop);

  struct Compressed {
    compress::VaeBitstream frames;  // low-res latents, every frame
    Shape window_shape;             // full-resolution [N, H, W]
  };

  Compressed Compress(const Tensor& window);
  Tensor Decompress(const Compressed& compressed);

  void Save(ByteWriter* out);
  void Load(ByteReader* in);

 private:
  // SR forward: nearest-upsampled input + learned residual.
  Tensor SrForward(const Tensor& lr, bool training);
  Tensor SrBackward(const Tensor& grad_out);
  std::vector<nn::Param*> SrParams();
  static Tensor Downsample2x(const Tensor& frames_n1hw);

  VaeSrConfig config_;
  compress::VaeHyperprior vae_;
  // SR trunk: conv → SiLU → conv → SiLU → up2x → conv (residual to skip).
  nn::Sequential sr_net_;
  nn::NearestUpsample2x sr_skip_;
};

}  // namespace glsc::baselines
