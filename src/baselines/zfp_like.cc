#include "baselines/zfp_like.h"

#include <algorithm>
#include <cmath>

#include "codec/huffman.h"
#include "util/bytes.h"
#include "util/check.h"

namespace glsc::baselines {
namespace {

constexpr std::int64_t kBlock = 4;
constexpr std::int64_t kBlockVolume = kBlock * kBlock * kBlock;
// Each reconstructed value combines at most 3 coefficients per axis with
// unit weights -> 27 total; quantizing each with error <= step/2 bounds the
// pointwise error by 27 * step / 2.
constexpr double kErrorGain = 27.0;

// Forward two-level Haar on 4 values: (x0..x3) -> (ss, ds, d0, d1).
void HaarForward4(double* v) {
  const double s0 = 0.5 * (v[0] + v[1]);
  const double d0 = 0.5 * (v[0] - v[1]);
  const double s1 = 0.5 * (v[2] + v[3]);
  const double d1 = 0.5 * (v[2] - v[3]);
  v[0] = 0.5 * (s0 + s1);
  v[1] = 0.5 * (s0 - s1);
  v[2] = d0;
  v[3] = d1;
}

// Exact inverse.
void HaarInverse4(double* v) {
  const double s0 = v[0] + v[1];
  const double s1 = v[0] - v[1];
  const double d0 = v[2];
  const double d1 = v[3];
  v[0] = s0 + d0;
  v[1] = s0 - d0;
  v[2] = s1 + d1;
  v[3] = s1 - d1;
}

template <typename Fn>
void ApplyAlongAxes(double block[kBlockVolume], Fn&& fn) {
  double line[kBlock];
  // axis x
  for (std::int64_t t = 0; t < kBlock; ++t) {
    for (std::int64_t y = 0; y < kBlock; ++y) {
      for (std::int64_t x = 0; x < kBlock; ++x) {
        line[x] = block[(t * kBlock + y) * kBlock + x];
      }
      fn(line);
      for (std::int64_t x = 0; x < kBlock; ++x) {
        block[(t * kBlock + y) * kBlock + x] = line[x];
      }
    }
  }
  // axis y
  for (std::int64_t t = 0; t < kBlock; ++t) {
    for (std::int64_t x = 0; x < kBlock; ++x) {
      for (std::int64_t y = 0; y < kBlock; ++y) {
        line[y] = block[(t * kBlock + y) * kBlock + x];
      }
      fn(line);
      for (std::int64_t y = 0; y < kBlock; ++y) {
        block[(t * kBlock + y) * kBlock + x] = line[y];
      }
    }
  }
  // axis t
  for (std::int64_t y = 0; y < kBlock; ++y) {
    for (std::int64_t x = 0; x < kBlock; ++x) {
      for (std::int64_t t = 0; t < kBlock; ++t) {
        line[t] = block[(t * kBlock + y) * kBlock + x];
      }
      fn(line);
      for (std::int64_t t = 0; t < kBlock; ++t) {
        block[(t * kBlock + y) * kBlock + x] = line[t];
      }
    }
  }
}

}  // namespace

std::vector<std::uint8_t> ZFPLikeCompressor::Compress(const Tensor& field,
                                                      double abs_bound) {
  GLSC_CHECK(field.rank() == 3);
  GLSC_CHECK_MSG(abs_bound > 0.0, "error bound must be positive");
  const std::int64_t t_dim = field.dim(0);
  const std::int64_t h = field.dim(1);
  const std::int64_t w = field.dim(2);
  // Same float32-cast margin as the SZ-like codec (see sz_like.cc).
  const double max_abs = std::max(std::fabs(static_cast<double>(field.MaxValue())),
                                  std::fabs(static_cast<double>(field.MinValue())));
  const double eb_eff = std::max(abs_bound - max_abs * 1.2e-7, abs_bound * 0.5);
  const double step = 2.0 * eb_eff / kErrorGain;

  std::vector<std::int32_t> codes;
  const float* src = field.data();
  double block[kBlockVolume];

  for (std::int64_t t0 = 0; t0 < t_dim; t0 += kBlock) {
    for (std::int64_t y0 = 0; y0 < h; y0 += kBlock) {
      for (std::int64_t x0 = 0; x0 < w; x0 += kBlock) {
        // Gather with edge replication.
        for (std::int64_t t = 0; t < kBlock; ++t) {
          const std::int64_t ti = std::min(t0 + t, t_dim - 1);
          for (std::int64_t y = 0; y < kBlock; ++y) {
            const std::int64_t yi = std::min(y0 + y, h - 1);
            for (std::int64_t x = 0; x < kBlock; ++x) {
              const std::int64_t xi = std::min(x0 + x, w - 1);
              block[(t * kBlock + y) * kBlock + x] =
                  src[(ti * h + yi) * w + xi];
            }
          }
        }
        ApplyAlongAxes(block, HaarForward4);
        for (std::int64_t i = 0; i < kBlockVolume; ++i) {
          const auto k =
              static_cast<std::int64_t>(std::llround(block[i] / step));
          GLSC_CHECK_MSG(k >= INT32_MIN && k <= INT32_MAX, "code overflow");
          codes.push_back(static_cast<std::int32_t>(k));
        }
      }
    }
  }

  ByteWriter out;
  out.PutVarU64(static_cast<std::uint64_t>(t_dim));
  out.PutVarU64(static_cast<std::uint64_t>(h));
  out.PutVarU64(static_cast<std::uint64_t>(w));
  out.PutF64(eb_eff);
  const auto huff = codec::HuffmanEncode(codes);
  out.PutVarU64(huff.size());
  out.PutBytes(huff.data(), huff.size());
  return out.Release();
}

Tensor ZFPLikeCompressor::Decompress(const std::vector<std::uint8_t>& bytes) {
  ByteReader in(bytes);
  const auto t_dim = static_cast<std::int64_t>(in.GetVarU64());
  const auto h = static_cast<std::int64_t>(in.GetVarU64());
  const auto w = static_cast<std::int64_t>(in.GetVarU64());
  const double abs_bound = in.GetF64();
  const double step = 2.0 * abs_bound / kErrorGain;
  const std::uint64_t huff_size = in.GetVarU64();
  std::vector<std::uint8_t> huff(huff_size);
  in.GetBytes(huff.data(), huff_size);
  const auto codes = codec::HuffmanDecode(huff);

  Tensor out({t_dim, h, w});
  double block[kBlockVolume];
  std::size_t cursor = 0;
  for (std::int64_t t0 = 0; t0 < t_dim; t0 += kBlock) {
    for (std::int64_t y0 = 0; y0 < h; y0 += kBlock) {
      for (std::int64_t x0 = 0; x0 < w; x0 += kBlock) {
        for (std::int64_t i = 0; i < kBlockVolume; ++i) {
          GLSC_CHECK(cursor < codes.size());
          block[i] = codes[cursor++] * step;
        }
        ApplyAlongAxes(block, HaarInverse4);
        for (std::int64_t t = 0; t < kBlock && t0 + t < t_dim; ++t) {
          for (std::int64_t y = 0; y < kBlock && y0 + y < h; ++y) {
            for (std::int64_t x = 0; x < kBlock && x0 + x < w; ++x) {
              out.data()[((t0 + t) * h + y0 + y) * w + x0 + x] =
                  static_cast<float>(block[(t * kBlock + y) * kBlock + x]);
            }
          }
        }
      }
    }
  }
  GLSC_CHECK(cursor == codes.size());
  return out;
}

}  // namespace glsc::baselines
