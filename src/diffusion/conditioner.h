// Keyframe conditioning (§3.3): partition a window of N frames into
// conditioning set C (keyframes, stored) and generated set G (reconstructed
// by the diffusion model), the ⊕ composition operator, the masked loss
// helpers, and the min-max latent normalization the paper applies before
// diffusion.
//
// Normalization detail: the paper normalizes the latent window to [-1, 1].
// At decompression time only the keyframe latents exist, so the bounds are
// computed FROM THE KEYFRAME LATENTS ONLY — both sides of the codec derive
// identical bounds from data they share, and nothing extra is stored.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace glsc::diffusion {

enum class KeyframeStrategy {
  kInterpolation,  // uniformly spread keyframes, e.g. {0,3,6,9,12,15}
  kPrediction,     // leading block, e.g. {0,1,2,3,4,5}
  kMixed,          // leading block plus final frame, e.g. {0,1,2,3,4,15}
};

const char* StrategyName(KeyframeStrategy strategy);

// Keyframe indices for a window of `frames` frames.
//  - interpolation: every `interval`-th frame starting at 0 (plus last frame
//    if it would otherwise be unanchored); `count` is ignored.
//  - prediction: the first `count` frames.
//  - mixed: the first `count`-1 frames plus the last frame.
std::vector<std::int64_t> SelectKeyframes(KeyframeStrategy strategy,
                                          std::int64_t frames,
                                          std::int64_t interval,
                                          std::int64_t count);

// Complement of `keyframes` in [0, frames).
std::vector<std::int64_t> GeneratedIndices(
    const std::vector<std::int64_t>& keyframes, std::int64_t frames);

// The ⊕ operator: out[i] = generated[g++] if i in G else conditioning[c++].
// `generated` holds only G-frames (in index order), `conditioning` only
// C-frames; result is the full window [N, C, H, W].
Tensor Compose(const Tensor& generated, const Tensor& conditioning,
               const std::vector<std::int64_t>& gen_idx,
               const std::vector<std::int64_t>& key_idx);
Tensor Compose(const Tensor& generated, const Tensor& conditioning,
               const std::vector<std::int64_t>& gen_idx,
               const std::vector<std::int64_t>& key_idx,
               tensor::Workspace* ws);

// Batched ⊕ over `batch` stacked windows: `generated` is [B*G, C, H, W]
// (window 0's G-frames first), `conditioning` is [B*K, C, H, W]; returns
// [B*N, C, H, W] with each window composed independently. Values are
// identical to per-window Compose.
Tensor ComposeBatch(const Tensor& generated, const Tensor& conditioning,
                    const std::vector<std::int64_t>& gen_idx,
                    const std::vector<std::int64_t>& key_idx,
                    std::int64_t batch, tensor::Workspace* ws);

// Gathers the listed frames of a [N, C, H, W] window into a packed tensor.
Tensor GatherFrames(const Tensor& window, const std::vector<std::int64_t>& idx);
Tensor GatherFrames(const Tensor& window, const std::vector<std::int64_t>& idx,
                    tensor::Workspace* ws);

// Batched gather over `batch` stacked windows: `window` is [B*N, C, H, W];
// returns [B*|idx|, C, H, W], window-major.
Tensor GatherFramesBatch(const Tensor& window,
                         const std::vector<std::int64_t>& idx,
                         std::int64_t batch, tensor::Workspace* ws);

// Writes packed frames back into `window` at the listed positions.
void ScatterFrames(const Tensor& packed, const std::vector<std::int64_t>& idx,
                   Tensor* window);

// Min-max normalization to [-1, 1] with bounds from the given tensor.
struct LatentNorm {
  float lo = -1.0f;
  float hi = 1.0f;

  static LatentNorm FromTensor(const Tensor& t);
  Tensor Normalize(const Tensor& t) const;
  Tensor Normalize(const Tensor& t, tensor::Workspace* ws) const;
  Tensor Denormalize(const Tensor& t) const;
  Tensor Denormalize(const Tensor& t, tensor::Workspace* ws) const;
};

}  // namespace glsc::diffusion
