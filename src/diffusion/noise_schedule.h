// Forward-process noise schedule (Eq. 3-4): beta_t, alpha_t = 1 - beta_t and
// the cumulative alpha_bar_t, plus "respacing" — selecting a stride-uniform
// subset of timesteps so a model trained at T steps can be fine-tuned and
// sampled at far fewer steps (§4.6 / Figure 5).
#pragma once

#include <cstdint>
#include <vector>

namespace glsc::diffusion {

enum class ScheduleKind { kLinear, kCosine };

class NoiseSchedule {
 public:
  NoiseSchedule(ScheduleKind kind, std::int64_t steps);

  std::int64_t steps() const { return static_cast<std::int64_t>(betas_.size()); }
  double beta(std::int64_t t) const { return betas_[static_cast<std::size_t>(t)]; }
  double alpha(std::int64_t t) const { return 1.0 - beta(t); }
  double alpha_bar(std::int64_t t) const {
    return alpha_bars_[static_cast<std::size_t>(t)];
  }
  // alpha_bar_{t-1} with the t==0 convention of 1.
  double alpha_bar_prev(std::int64_t t) const {
    return t > 0 ? alpha_bar(t - 1) : 1.0;
  }

  // Uniform-stride subset of `count` timesteps (ascending, always including
  // the final step). Used both for few-step fine-tuning and DDIM sampling.
  std::vector<std::int64_t> Respace(std::int64_t count) const;

 private:
  std::vector<double> betas_;
  std::vector<double> alpha_bars_;
};

}  // namespace glsc::diffusion
