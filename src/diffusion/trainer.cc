#include "diffusion/trainer.h"

#include <cmath>

#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/timer.h"

namespace glsc::diffusion {

Tensor QuantizedLatentWindow(compress::VaeHyperprior* vae,
                             const Tensor& frames_nhw) {
  GLSC_CHECK(frames_nhw.rank() == 3);
  const std::int64_t n = frames_nhw.dim(0);
  const Tensor as_batch = frames_nhw.Reshape(
      {n, 1, frames_nhw.dim(1), frames_nhw.dim(2)});
  return Round(vae->EncodeLatent(as_batch));
}

double TrainDiffusion(SpaceTimeUNet* model, const NoiseSchedule& schedule,
                      compress::VaeHyperprior* frozen_vae,
                      const data::SequenceDataset& dataset,
                      const DiffusionTrainConfig& config) {
  Rng rng(config.seed);
  nn::Adam opt(model->Params(), config.learning_rate);

  const std::vector<std::int64_t> key_idx = SelectKeyframes(
      config.strategy, config.window, config.interval, config.key_count);
  const std::vector<std::int64_t> gen_idx =
      GeneratedIndices(key_idx, config.window);
  GLSC_CHECK_MSG(!gen_idx.empty(), "no frames left to generate");

  // Timesteps: full schedule or the respaced fine-tuning subset.
  std::vector<std::int64_t> t_pool;
  if (config.finetune_steps > 0) {
    t_pool = schedule.Respace(config.finetune_steps);
  } else {
    t_pool.resize(static_cast<std::size_t>(schedule.steps()));
    for (std::int64_t t = 0; t < schedule.steps(); ++t) t_pool[t] = t;
  }

  Timer timer;
  double window_loss = 0.0;
  std::int64_t window_count = 0;
  double last_avg = 0.0;

  for (std::int64_t iter = 1; iter <= config.iterations; ++iter) {
    // ---- Algorithm 1, lines 3-6: latent window, normalize, partition ----
    const Tensor frames =
        dataset.SampleTrainingWindow(config.window, config.crop, rng);
    const Tensor y = QuantizedLatentWindow(frozen_vae, frames);

    const Tensor keys_raw = GatherFrames(y, key_idx);
    const LatentNorm norm = LatentNorm::FromTensor(keys_raw);
    const Tensor y0 = norm.Normalize(y);
    const Tensor y0_keys = GatherFrames(y0, key_idx);
    const Tensor y0_gen = GatherFrames(y0, gen_idx);

    // ---- lines 7-10: noise the G-frames at a random timestep ----
    const std::int64_t t =
        t_pool[rng.UniformInt(static_cast<std::uint64_t>(t_pool.size()))];
    const double ab = schedule.alpha_bar(t);
    const float signal = static_cast<float>(std::sqrt(ab));
    const float noise_scale = static_cast<float>(std::sqrt(1.0 - ab));

    Tensor eps = Tensor::Randn(y0_gen.shape(), rng);
    Tensor y_t_gen(y0_gen.shape());
    {
      const float* p0 = y0_gen.data();
      const float* pe = eps.data();
      float* pt = y_t_gen.data();
      for (std::int64_t i = 0; i < y_t_gen.numel(); ++i) {
        pt[i] = signal * p0[i] + noise_scale * pe[i];
      }
    }
    const Tensor window = Compose(y_t_gen, y0_keys, gen_idx, key_idx);

    // ---- lines 11-13: predict, masked loss, update ----
    const Tensor eps_hat_full = model->Forward(window, t);
    const Tensor eps_hat = GatherFrames(eps_hat_full, gen_idx);

    const double loss = MeanSquaredError(eps, eps_hat);

    // d loss / d eps_hat on G-frames; zero on keyframes.
    Tensor g_gen = Sub(eps_hat, eps);
    MulScalarInPlace(&g_gen, 2.0f / static_cast<float>(eps.numel()));
    Tensor g_full(eps_hat_full.shape());
    ScatterFrames(g_gen, gen_idx, &g_full);

    opt.ZeroGrad();
    model->Backward(g_full);
    opt.ClipGradNorm(config.grad_clip);
    opt.Step();

    window_loss += loss;
    ++window_count;
    if (config.log_every > 0 && iter % config.log_every == 0) {
      last_avg = window_loss / window_count;
      LOG_INFO << "diffusion iter " << iter << "/" << config.iterations
               << " masked-mse=" << last_avg
               << (config.finetune_steps > 0
                       ? " (finetune@" + std::to_string(config.finetune_steps) +
                             " steps)"
                       : "")
               << " (" << timer.Seconds() << "s)";
      window_loss = 0.0;
      window_count = 0;
    }
  }
  if (window_count > 0) last_avg = window_loss / window_count;
  return last_avg;
}

}  // namespace glsc::diffusion
