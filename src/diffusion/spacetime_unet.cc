#include "diffusion/spacetime_unet.h"

#include <algorithm>

#include "nn/embedding.h"
#include "tensor/ops.h"

namespace glsc::diffusion {
namespace {

// GroupNorm group count: at most 8, and always a divisor of the channel count.
std::int64_t GroupsFor(std::int64_t channels) {
  for (std::int64_t g = std::min<std::int64_t>(8, channels); g > 1; --g) {
    if (channels % g == 0) return g;
  }
  return 1;
}

}  // namespace

ResBlock::ResBlock(std::int64_t channels, std::int64_t temb_dim, Rng& rng,
                   const std::string& name)
    : channels_(channels),
      gn1_(GroupsFor(channels), channels, name + ".gn1"),
      gn2_(GroupsFor(channels), channels, name + ".gn2"),
      conv1_(channels, channels, 3, 1, 1, rng, name + ".conv1"),
      conv2_(channels, channels, 3, 1, 1, rng, name + ".conv2"),
      temb_proj_(temb_dim, channels, rng, /*bias=*/true, name + ".temb_proj") {}

Tensor ResBlock::Forward(const Tensor& x, const Tensor& temb) {
  cached_x_shape_ = x.shape();
  Tensor h = conv1_.Forward(act1_.Forward(gn1_.Forward(x, true), true), true);
  // Per-channel time-embedding shift, broadcast over frames and pixels.
  const Tensor p =
      temb_proj_.Forward(act_temb_.Forward(temb, true), true);  // [1, C]
  const std::int64_t frames = h.dim(0);
  const std::int64_t hw = h.dim(2) * h.dim(3);
  float* ph = h.data();
  const float* pp = p.data();
  for (std::int64_t n = 0; n < frames; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float shift = pp[c];
      float* row = ph + (n * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) row[i] += shift;
    }
  }
  Tensor k = conv2_.Forward(act2_.Forward(gn2_.Forward(h, true), true), true);
  return Add(x, k);
}

Tensor ResBlock::Forward(const Tensor& x, const Tensor& temb,
                         tensor::Workspace* ws) {
  Tensor h = gn1_.Forward(x, ws);
  act1_.ForwardInPlace(&h);
  h = conv1_.Forward(h, ws);
  const Tensor p =
      temb_proj_.Forward(act_temb_.Forward(temb, ws), ws);  // [1, C]
  const std::int64_t frames = h.dim(0);
  const std::int64_t hw = h.dim(2) * h.dim(3);
  float* ph = h.data();
  const float* pp = p.data();
  for (std::int64_t n = 0; n < frames; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float shift = pp[c];
      float* row = ph + (n * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) row[i] += shift;
    }
  }
  Tensor k = gn2_.Forward(h, ws);
  act2_.ForwardInPlace(&k);
  k = conv2_.Forward(k, ws);
  Axpy(1.0f, x, &k);  // residual: same values as Add(x, k)
  return k;
}

Tensor ResBlock::ForwardBatched(const Tensor& x, const Tensor& temb,
                                tensor::Workspace* ws) {
  Tensor h = gn1_.Forward(x, ws);
  act1_.ForwardInPlace(&h);
  h = conv1_.ForwardBatched(h, ws);
  const Tensor p =
      temb_proj_.Forward(act_temb_.Forward(temb, ws), ws);  // [1, C]
  const std::int64_t frames = h.dim(0);
  const std::int64_t hw = h.dim(2) * h.dim(3);
  float* ph = h.data();
  const float* pp = p.data();
  for (std::int64_t n = 0; n < frames; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float shift = pp[c];
      float* row = ph + (n * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) row[i] += shift;
    }
  }
  Tensor k = gn2_.Forward(h, ws);
  act2_.ForwardInPlace(&k);
  k = conv2_.ForwardBatched(k, ws);
  Axpy(1.0f, x, &k);  // residual
  return k;
}

Tensor ResBlock::Backward(const Tensor& grad_out, Tensor* grad_temb) {
  Tensor gh2 = gn2_.Backward(act2_.Backward(conv2_.Backward(grad_out)));

  // Gradient of the broadcast temb shift: sum over frames and pixels.
  Tensor gp = Tensor::Empty({1, channels_});  // fully written below
  {
    const std::int64_t frames = gh2.dim(0);
    const std::int64_t hw = gh2.dim(2) * gh2.dim(3);
    const float* pg = gh2.data();
    float* out = gp.data();
    for (std::int64_t c = 0; c < channels_; ++c) {
      double s = 0.0;
      for (std::int64_t n = 0; n < frames; ++n) {
        const float* row = pg + (n * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) s += row[i];
      }
      out[c] = static_cast<float>(s);
    }
  }
  const Tensor ge = act_temb_.Backward(temb_proj_.Backward(gp));
  Axpy(1.0f, ge, grad_temb);

  Tensor gx = gn1_.Backward(act1_.Backward(conv1_.Backward(gh2)));
  Axpy(1.0f, grad_out, &gx);  // residual path
  return gx;
}

std::vector<nn::Param*> ResBlock::Params() {
  std::vector<nn::Param*> out;
  for (auto* layer : std::initializer_list<nn::Layer*>{
           &gn1_, &conv1_, &temb_proj_, &gn2_, &conv2_}) {
    for (nn::Param* p : layer->Params()) out.push_back(p);
  }
  return out;
}

SpatialAttentionBlock::SpatialAttentionBlock(std::int64_t channels,
                                             std::int64_t heads, Rng& rng,
                                             const std::string& name)
    : norm_(channels, name + ".ln"), attn_(channels, heads, rng, name) {}

Tensor SpatialAttentionBlock::Forward(const Tensor& x, bool training) {
  GLSC_CHECK(x.rank() == 4);
  cached_shape_ = x.shape();
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  // [N, C, H, W] -> [N, H*W, C]
  Tensor seq = x.Permute({0, 2, 3, 1}).Reshape({n, h * w, c});
  Tensor out = attn_.Forward(norm_.Forward(seq, training), training);
  Tensor back = out.Reshape({n, h, w, c}).Permute({0, 3, 1, 2});
  return Add(x, back);
}

Tensor SpatialAttentionBlock::Forward(const Tensor& x, tensor::Workspace* ws) {
  GLSC_CHECK(x.rank() == 4);
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor seq = x.Permute({0, 2, 3, 1}, ws).Reshape({n, h * w, c});
  norm_.ForwardInPlace(&seq);  // seq is ours; LayerNorm is in-place safe
  Tensor out = attn_.Forward(seq, ws);
  Tensor back = out.Reshape({n, h, w, c}).Permute({0, 3, 1, 2}, ws);
  Axpy(1.0f, x, &back);  // residual
  return back;
}

Tensor SpatialAttentionBlock::ForwardBatched(const Tensor& x,
                                             tensor::Workspace* ws) {
  GLSC_CHECK(x.rank() == 4);
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor seq = x.Permute({0, 2, 3, 1}, ws).Reshape({n, h * w, c});
  norm_.ForwardInPlace(&seq);
  Tensor out = attn_.ForwardBatched(seq, ws);
  Tensor back = out.Reshape({n, h, w, c}).Permute({0, 3, 1, 2}, ws);
  Axpy(1.0f, x, &back);  // residual
  return back;
}

Tensor SpatialAttentionBlock::Backward(const Tensor& grad_out) {
  const std::int64_t n = cached_shape_[0], c = cached_shape_[1],
                     h = cached_shape_[2], w = cached_shape_[3];
  Tensor g_seq =
      grad_out.Permute({0, 2, 3, 1}).Reshape({n, h * w, c});
  Tensor g_in_seq = norm_.Backward(attn_.Backward(g_seq));
  Tensor g = g_in_seq.Reshape({n, h, w, c}).Permute({0, 3, 1, 2});
  Axpy(1.0f, grad_out, &g);  // residual path
  return g;
}

std::vector<nn::Param*> SpatialAttentionBlock::Params() {
  std::vector<nn::Param*> out = norm_.Params();
  for (nn::Param* p : attn_.Params()) out.push_back(p);
  return out;
}

TemporalAttentionBlock::TemporalAttentionBlock(std::int64_t channels,
                                               std::int64_t heads, Rng& rng,
                                               const std::string& name)
    : norm_(channels, name + ".ln"), attn_(channels, heads, rng, name) {}

Tensor TemporalAttentionBlock::Forward(const Tensor& x, bool training) {
  GLSC_CHECK(x.rank() == 4);
  cached_shape_ = x.shape();
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  // [N, C, H, W] -> [H, W, N, C] -> [H*W, N, C]: attention along frames.
  Tensor seq = x.Permute({2, 3, 0, 1}).Reshape({h * w, n, c});
  Tensor out = attn_.Forward(norm_.Forward(seq, training), training);
  Tensor back = out.Reshape({h, w, n, c}).Permute({2, 3, 0, 1});
  return Add(x, back);
}

Tensor TemporalAttentionBlock::Forward(const Tensor& x,
                                       tensor::Workspace* ws) {
  GLSC_CHECK(x.rank() == 4);
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor seq = x.Permute({2, 3, 0, 1}, ws).Reshape({h * w, n, c});
  norm_.ForwardInPlace(&seq);
  Tensor out = attn_.Forward(seq, ws);
  Tensor back = out.Reshape({h, w, n, c}).Permute({2, 3, 0, 1}, ws);
  Axpy(1.0f, x, &back);
  return back;
}

Tensor TemporalAttentionBlock::ForwardBatchedWindows(const Tensor& x,
                                                     std::int64_t windows,
                                                     tensor::Workspace* ws) {
  GLSC_CHECK(x.rank() == 4);
  const std::int64_t bn = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  GLSC_CHECK_MSG(windows >= 1 && bn % windows == 0,
                 "dim0 " << bn << " not a multiple of windows " << windows);
  const std::int64_t n = bn / windows;
  // [B*N, C, H, W] -> [B, H, W, N, C] -> [B*H*W, N, C]: each window's frames
  // form their own length-N sequence, so attention never crosses windows.
  // The permutation {0,3,4,1,2} is self-inverse, and for B == 1 it moves
  // memory exactly like the rank-4 {2,3,0,1} of the serial path.
  Tensor seq = x.Reshape({windows, n, c, h, w})
                   .Permute({0, 3, 4, 1, 2}, ws)
                   .Reshape({windows * h * w, n, c});
  norm_.ForwardInPlace(&seq);
  Tensor out = attn_.ForwardBatched(seq, ws);
  Tensor back = out.Reshape({windows, h, w, n, c})
                    .Permute({0, 3, 4, 1, 2}, ws)
                    .Reshape({bn, c, h, w});
  Axpy(1.0f, x, &back);
  return back;
}

Tensor TemporalAttentionBlock::Backward(const Tensor& grad_out) {
  const std::int64_t n = cached_shape_[0], c = cached_shape_[1],
                     h = cached_shape_[2], w = cached_shape_[3];
  Tensor g_seq = grad_out.Permute({2, 3, 0, 1}).Reshape({h * w, n, c});
  Tensor g_in_seq = norm_.Backward(attn_.Backward(g_seq));
  Tensor g = g_in_seq.Reshape({h, w, n, c}).Permute({2, 3, 0, 1});
  Axpy(1.0f, grad_out, &g);
  return g;
}

std::vector<nn::Param*> TemporalAttentionBlock::Params() {
  std::vector<nn::Param*> out = norm_.Params();
  for (nn::Param* p : attn_.Params()) out.push_back(p);
  return out;
}

SpaceTimeUNet::SpaceTimeUNet(const UNetConfig& config)
    : config_(config),
      rng_storage_(std::make_unique<Rng>(config.seed)),
      temb_fc1_(config.model_channels, config.model_channels, *rng_storage_,
                true, "unet.temb.fc1"),
      temb_fc2_(config.model_channels, config.model_channels, *rng_storage_,
                true, "unet.temb.fc2"),
      conv_in_(config.EffectiveIn(), config.model_channels, 3, 1, 1,
               *rng_storage_, "unet.conv_in"),
      res1_(config.model_channels, config.model_channels, *rng_storage_,
            "unet.res1"),
      sattn1_(config.model_channels, config.heads, *rng_storage_,
              "unet.sattn1"),
      tattn1_(config.model_channels, config.heads, *rng_storage_,
              "unet.tattn1"),
      down_(config.model_channels, config.model_channels, 3, 2, 1,
            *rng_storage_, "unet.down"),
      res2_(config.model_channels, config.model_channels, *rng_storage_,
            "unet.res2"),
      sattn2_(config.model_channels, config.heads, *rng_storage_,
              "unet.sattn2"),
      tattn2_(config.model_channels, config.heads, *rng_storage_,
              "unet.tattn2"),
      up_conv_(config.model_channels, config.model_channels, 3, 1, 1,
               *rng_storage_, "unet.up_conv"),
      res3_(config.model_channels, config.model_channels, *rng_storage_,
            "unet.res3"),
      gn_out_(GroupsFor(config.model_channels), config.model_channels,
              "unet.gn_out"),
      conv_out_(config.model_channels, config.EffectiveOut(), 3, 1, 1,
                *rng_storage_, "unet.conv_out") {
  // Zero-init the final convolution: the network starts as an identity-noise
  // predictor near zero, which stabilizes early diffusion training.
  for (nn::Param* p : conv_out_.Params()) p->value.Zero();
}

Tensor SpaceTimeUNet::Forward(const Tensor& y_t, std::int64_t t) {
  GLSC_CHECK(y_t.rank() == 4 && y_t.dim(1) == config_.EffectiveIn());
  GLSC_CHECK_MSG(y_t.dim(2) % 2 == 0 && y_t.dim(3) % 2 == 0,
                 "latent H,W must be even for the down/up pair");

  // Time embedding shared by all ResBlocks: [1, Cm].
  Tensor sin_emb = nn::SinusoidalTimeEmbedding(t, config_.model_channels)
                       .Reshape({1, config_.model_channels});
  temb_ = temb_fc2_.Forward(
      temb_act_.Forward(temb_fc1_.Forward(sin_emb, true), true), true);

  Tensor h0 = conv_in_.Forward(y_t, true);
  Tensor h1 = res1_.Forward(h0, temb_);
  if (config_.stage1_attention) {
    h1 = tattn1_.Forward(sattn1_.Forward(h1, true), true);
  }
  Tensor h2 = down_.Forward(h1, true);
  h2 = res2_.Forward(h2, temb_);
  h2 = tattn2_.Forward(sattn2_.Forward(h2, true), true);
  Tensor u = up_conv_.Forward(up_.Forward(h2, true), true);
  Tensor s = Add(u, h1);  // skip connection
  Tensor h3 = res3_.Forward(s, temb_);
  return conv_out_.Forward(
      act_out_.Forward(gn_out_.Forward(h3, true), true), true);
}

Tensor SpaceTimeUNet::Forward(const Tensor& y_t, std::int64_t t,
                              tensor::Workspace* ws) {
  GLSC_CHECK(y_t.rank() == 4 && y_t.dim(1) == config_.EffectiveIn());
  GLSC_CHECK_MSG(y_t.dim(2) % 2 == 0 && y_t.dim(3) % 2 == 0,
                 "latent H,W must be even for the down/up pair");

  // Time embedding local to this call (the member cache serves Backward).
  Tensor temb =
      nn::SinusoidalTimeEmbedding(t, config_.model_channels, ws)
          .Reshape({1, config_.model_channels});
  temb = temb_fc1_.Forward(temb, ws);
  temb_act_.ForwardInPlace(&temb);
  temb = temb_fc2_.Forward(temb, ws);

  Tensor h0 = conv_in_.Forward(y_t, ws);
  Tensor h1 = res1_.Forward(h0, temb, ws);
  if (config_.stage1_attention) {
    h1 = tattn1_.Forward(sattn1_.Forward(h1, ws), ws);
  }
  Tensor h2 = down_.Forward(h1, ws);
  h2 = res2_.Forward(h2, temb, ws);
  h2 = tattn2_.Forward(sattn2_.Forward(h2, ws), ws);
  Tensor u = up_conv_.Forward(up_.Forward(h2, ws), ws);
  Axpy(1.0f, h1, &u);  // skip connection, same values as Add(u, h1)
  Tensor h3 = res3_.Forward(u, temb, ws);
  Tensor g = gn_out_.Forward(h3, ws);
  act_out_.ForwardInPlace(&g);
  return conv_out_.Forward(g, ws);
}

Tensor SpaceTimeUNet::Forward(const Tensor& y_t, std::int64_t t,
                              tensor::Workspace* ws, std::int64_t windows) {
  GLSC_CHECK(y_t.rank() == 4 && y_t.dim(1) == config_.EffectiveIn());
  GLSC_CHECK_MSG(y_t.dim(2) % 2 == 0 && y_t.dim(3) % 2 == 0,
                 "latent H,W must be even for the down/up pair");
  GLSC_CHECK_MSG(windows >= 1 && y_t.dim(0) % windows == 0,
                 "dim0 " << y_t.dim(0) << " not a multiple of windows "
                         << windows);

  // One time embedding serves every window: all windows share the same
  // config-determined DDIM ladder, hence the same t.
  Tensor temb =
      nn::SinusoidalTimeEmbedding(t, config_.model_channels, ws)
          .Reshape({1, config_.model_channels});
  temb = temb_fc1_.Forward(temb, ws);
  temb_act_.ForwardInPlace(&temb);
  temb = temb_fc2_.Forward(temb, ws);

  Tensor h0 = conv_in_.ForwardBatched(y_t, ws);
  Tensor h1 = res1_.ForwardBatched(h0, temb, ws);
  if (config_.stage1_attention) {
    h1 = tattn1_.ForwardBatchedWindows(sattn1_.ForwardBatched(h1, ws), windows,
                                       ws);
  }
  Tensor h2 = down_.ForwardBatched(h1, ws);
  h2 = res2_.ForwardBatched(h2, temb, ws);
  h2 = tattn2_.ForwardBatchedWindows(sattn2_.ForwardBatched(h2, ws), windows,
                                     ws);
  Tensor u = up_conv_.ForwardBatched(up_.Forward(h2, ws), ws);
  Axpy(1.0f, h1, &u);  // skip connection
  Tensor h3 = res3_.ForwardBatched(u, temb, ws);
  Tensor g = gn_out_.Forward(h3, ws);
  act_out_.ForwardInPlace(&g);
  return conv_out_.ForwardBatched(g, ws);
}

Tensor SpaceTimeUNet::Backward(const Tensor& grad_out) {
  Tensor g_temb({1, config_.model_channels});

  Tensor g_h3 = gn_out_.Backward(act_out_.Backward(conv_out_.Backward(grad_out)));
  Tensor g_s = res3_.Backward(g_h3, &g_temb);
  // Skip: gradient flows to both the upsampled branch and h1.
  Tensor g_u = g_s;
  Tensor g_h2 = up_.Backward(up_conv_.Backward(g_u));
  g_h2 = sattn2_.Backward(tattn2_.Backward(g_h2));
  g_h2 = res2_.Backward(g_h2, &g_temb);
  Tensor g_h1 = down_.Backward(g_h2);
  Axpy(1.0f, g_s, &g_h1);  // skip contribution
  if (config_.stage1_attention) {
    g_h1 = sattn1_.Backward(tattn1_.Backward(g_h1));
  }
  Tensor g_h0 = res1_.Backward(g_h1, &g_temb);
  Tensor g_in = conv_in_.Backward(g_h0);

  // Time-embedding MLP backward (sin embedding itself has no params).
  temb_fc1_.Backward(temb_act_.Backward(temb_fc2_.Backward(g_temb)));
  return g_in;
}

std::vector<nn::Param*> SpaceTimeUNet::Params() {
  std::vector<nn::Param*> out;
  auto append = [&out](std::vector<nn::Param*> ps) {
    out.insert(out.end(), ps.begin(), ps.end());
  };
  append(temb_fc1_.Params());
  append(temb_fc2_.Params());
  append(conv_in_.Params());
  append(res1_.Params());
  if (config_.stage1_attention) {
    append(sattn1_.Params());
    append(tattn1_.Params());
  }
  append(down_.Params());
  append(res2_.Params());
  append(sattn2_.Params());
  append(tattn2_.Params());
  append(up_conv_.Params());
  append(res3_.Params());
  append(gn_out_.Params());
  append(conv_out_.Params());
  return out;
}

void SpaceTimeUNet::Save(ByteWriter* out) { nn::SaveParams(Params(), out); }
void SpaceTimeUNet::Load(ByteReader* in) { nn::LoadParams(Params(), in); }

}  // namespace glsc::diffusion
