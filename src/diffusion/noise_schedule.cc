#include "diffusion/noise_schedule.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace glsc::diffusion {

NoiseSchedule::NoiseSchedule(ScheduleKind kind, std::int64_t steps) {
  GLSC_CHECK(steps >= 1);
  betas_.resize(static_cast<std::size_t>(steps));
  if (kind == ScheduleKind::kLinear) {
    // Scaled-linear schedule: endpoints chosen as in DDPM (1e-4 .. 2e-2 at
    // T=1000), rescaled with T so shorter schedules reach comparable
    // terminal noise levels.
    const double scale = 1000.0 / static_cast<double>(steps);
    const double beta_start = 1e-4 * scale;
    const double beta_end = std::min(2e-2 * scale, 0.999);
    for (std::int64_t t = 0; t < steps; ++t) {
      const double frac =
          steps > 1 ? static_cast<double>(t) / (steps - 1) : 0.0;
      betas_[t] = beta_start + frac * (beta_end - beta_start);
    }
  } else {
    // Nichol–Dhariwal cosine schedule.
    const double s = 0.008;
    auto f = [s](double u) {
      const double v = std::cos((u + s) / (1.0 + s) * std::numbers::pi / 2.0);
      return v * v;
    };
    for (std::int64_t t = 0; t < steps; ++t) {
      const double t0 = static_cast<double>(t) / steps;
      const double t1 = static_cast<double>(t + 1) / steps;
      betas_[t] = std::clamp(1.0 - f(t1) / f(t0), 0.0, 0.999);
    }
  }
  alpha_bars_.resize(betas_.size());
  double prod = 1.0;
  for (std::size_t t = 0; t < betas_.size(); ++t) {
    prod *= 1.0 - betas_[t];
    alpha_bars_[t] = prod;
  }
}

std::vector<std::int64_t> NoiseSchedule::Respace(std::int64_t count) const {
  const std::int64_t t_max = steps();
  GLSC_CHECK(count >= 1 && count <= t_max);
  std::vector<std::int64_t> timesteps;
  timesteps.reserve(static_cast<std::size_t>(count));
  // Evenly spaced in [0, T-1], ending exactly at T-1 so sampling starts from
  // the fully-noised distribution.
  for (std::int64_t i = 0; i < count; ++i) {
    const auto t = static_cast<std::int64_t>(std::llround(
        static_cast<double>(i) * (t_max - 1) / std::max<std::int64_t>(count - 1, 1)));
    timesteps.push_back(t);
  }
  timesteps.back() = t_max - 1;
  // Deduplicate (possible when count ~ T).
  timesteps.erase(std::unique(timesteps.begin(), timesteps.end()),
                  timesteps.end());
  return timesteps;
}

}  // namespace glsc::diffusion
