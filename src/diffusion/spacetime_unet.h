// Denoising UNet with factorized space-time attention (§3.2). The network
// operates on a full latent window [N, C_lat, H, W]: spatial layers treat the
// N frames as a batch; attention is applied twice per stage —
//   spatial:  sequences of length H*W within each frame,
//   temporal: sequences of length N at each spatial position —
// exactly the factorization of Ho et al.'s video diffusion UNet, adapted to
// latent space by setting the I/O channel count to the VAE's latent width
// (the paper changes 3 -> 64; we use the configured latent_channels).
//
// Explicit-backward composition: Forward caches activations, Backward must
// follow each Forward exactly once.
#pragma once

#include <memory>

#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/norm.h"

namespace glsc::diffusion {

struct UNetConfig {
  std::int64_t latent_channels = 16;
  std::int64_t model_channels = 32;
  std::int64_t heads = 4;
  // I/O channel overrides (0 = use latent_channels). The GLSC latent model
  // uses equal I/O; pixel-space baselines (CDC/GCD) take [noisy | condition]
  // stacks in and predict a single channel out.
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  // Full-resolution attention is the dominant cost in pixel space; real UNets
  // attend only at coarse scales. Stage-1 (full-res) attention can be
  // disabled; stage-2 (downsampled) attention is always on.
  bool stage1_attention = true;
  std::uint64_t seed = 41;

  std::int64_t EffectiveIn() const {
    return in_channels > 0 ? in_channels : latent_channels;
  }
  std::int64_t EffectiveOut() const {
    return out_channels > 0 ? out_channels : latent_channels;
  }
};

// Residual block with timestep-embedding injection:
//   h = conv1(SiLU(GN(x))); h += proj(SiLU(temb)) per channel;
//   h = conv2(SiLU(GN(h))); return x + h.
class ResBlock {
 public:
  ResBlock(std::int64_t channels, std::int64_t temb_dim, Rng& rng,
           const std::string& name);

  Tensor Forward(const Tensor& x, const Tensor& temb);
  // Workspace inference forward: result and temporaries borrow arena memory;
  // no activations are cached (never follow with Backward).
  Tensor Forward(const Tensor& x, const Tensor& temb, tensor::Workspace* ws);
  // As the workspace forward, but the convolutions fuse all leading-dim
  // frames into merged GEMMs. Byte-identical output; the temb shift
  // broadcast is per (frame, channel) either way.
  Tensor ForwardBatched(const Tensor& x, const Tensor& temb,
                        tensor::Workspace* ws);
  // Returns dx; accumulates d(temb) into grad_temb (shape [1, temb_dim]).
  Tensor Backward(const Tensor& grad_out, Tensor* grad_temb);
  std::vector<nn::Param*> Params();

 private:
  std::int64_t channels_;
  nn::GroupNorm gn1_, gn2_;
  nn::SiLU act1_, act2_, act_temb_;
  nn::Conv2d conv1_, conv2_;
  nn::Dense temb_proj_;
  Shape cached_x_shape_;
};

// x + MHSA(LN(x)) over intra-frame positions (L = H*W, batch = N).
class SpatialAttentionBlock : public nn::Layer {
 public:
  SpatialAttentionBlock(std::int64_t channels, std::int64_t heads, Rng& rng,
                        const std::string& name);
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  // Frames attend only within themselves, so stacked windows batch for free
  // along dim 0; uses the pooled-scratch attention core. Byte-identical.
  Tensor ForwardBatched(const Tensor& x, tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<nn::Param*> Params() override;
  std::string Name() const override { return "SpatialAttentionBlock"; }

 private:
  nn::LayerNorm norm_;
  nn::MultiHeadSelfAttention attn_;
  Shape cached_shape_;
};

// x + MHSA(LN(x)) across frames (L = N, batch = H*W).
class TemporalAttentionBlock : public nn::Layer {
 public:
  TemporalAttentionBlock(std::int64_t channels, std::int64_t heads, Rng& rng,
                         const std::string& name);
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Forward(const Tensor& x, tensor::Workspace* ws) override;
  // Batched temporal attention over `windows` stacked windows: x is
  // [B*N, C, H, W] and frames attend only within their own window (sequence
  // length stays N — windows never mix). Byte-identical per window to the
  // rank-4 path; windows == 1 reproduces it exactly.
  Tensor ForwardBatchedWindows(const Tensor& x, std::int64_t windows,
                               tensor::Workspace* ws);
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<nn::Param*> Params() override;
  std::string Name() const override { return "TemporalAttentionBlock"; }

 private:
  nn::LayerNorm norm_;
  nn::MultiHeadSelfAttention attn_;
  Shape cached_shape_;
};

class SpaceTimeUNet {
 public:
  explicit SpaceTimeUNet(const UNetConfig& config);

  const UNetConfig& config() const { return config_; }

  // y_t: composed noisy window [N, C_lat, H, W]; t: timestep index in the
  // ORIGINAL (pre-respacing) schedule, so fine-tuned few-step models keep a
  // consistent embedding. Returns estimated noise, same shape as input.
  Tensor Forward(const Tensor& y_t, std::int64_t t);
  // Workspace inference forward: numerically identical to Forward, but every
  // activation (result included) borrows arena memory and nothing is cached,
  // so steady-state sampler loops perform zero heap allocations. Never
  // follow with Backward.
  Tensor Forward(const Tensor& y_t, std::int64_t t, tensor::Workspace* ws);
  // Batched workspace forward over `windows` stacked windows: y_t is
  // [B*N, C_lat, H, W] with the B windows' frames concatenated along dim 0.
  // One pass denoises all B windows — convolutions and attention fuse into
  // B×-wider GEMMs, and temporal attention keeps each window's frames in
  // their own length-N sequence. Every window's slice of the output is
  // byte-identical to running the rank-4 workspace Forward on that window
  // alone; windows == 1 reproduces it exactly. All windows share the
  // timestep t (the DDIM ladder is config-determined, not data-dependent).
  Tensor Forward(const Tensor& y_t, std::int64_t t, tensor::Workspace* ws,
                 std::int64_t windows);
  Tensor Backward(const Tensor& grad_out);

  std::vector<nn::Param*> Params();
  void Save(ByteWriter* out);
  void Load(ByteReader* in);

 private:
  UNetConfig config_;
  // Owned here (declared before the layers) so the member-initializer list
  // can thread one RNG through every layer's weight init.
  std::unique_ptr<Rng> rng_storage_;
  // Cached time embedding of the current Forward (shared by all ResBlocks).
  Tensor temb_;

  // Time-embedding MLP.
  nn::Dense temb_fc1_;
  nn::SiLU temb_act_;
  nn::Dense temb_fc2_;

  nn::Conv2d conv_in_;
  ResBlock res1_;
  SpatialAttentionBlock sattn1_;
  TemporalAttentionBlock tattn1_;
  nn::Conv2d down_;
  ResBlock res2_;
  SpatialAttentionBlock sattn2_;
  TemporalAttentionBlock tattn2_;
  nn::NearestUpsample2x up_;
  nn::Conv2d up_conv_;
  ResBlock res3_;
  nn::GroupNorm gn_out_;
  nn::SiLU act_out_;
  nn::Conv2d conv_out_;
};

}  // namespace glsc::diffusion
