// Conditional reverse-process sampling. Only G-frames carry noise; after each
// denoising step the keyframes are re-composed into the window unchanged
// (they are clean conditioning, exactly as in training). Supports the full
// ancestral DDPM chain and respaced deterministic (DDIM, eta = 0) sampling
// for the few-step fine-tuned models of §4.6.
#pragma once

#include "diffusion/conditioner.h"
#include "diffusion/noise_schedule.h"
#include "diffusion/spacetime_unet.h"
#include "util/rng.h"

namespace glsc::diffusion {

struct SamplerConfig {
  // Number of denoising steps actually executed; the timesteps are a
  // uniform respacing of the model's training schedule.
  std::int64_t steps = 32;
  // eta = 0: deterministic DDIM update; eta = 1: ancestral DDPM variance.
  double eta = 0.0;
};

// Generates the G-frame latents of a window given clean keyframe latents.
// `keyframes`: packed [K, C, H, W] (normalized to [-1,1]);
// returns packed generated frames [N-K, C, H, W] (normalized domain).
//
// With a non-null `ws` the loop runs allocation-free in steady state: the
// trajectory tensor x lives in the arena at the call's scope, and each
// denoising step opens a Workspace::Scope around the UNet forward so all
// per-step activations rewind before the next step. The result then BORROWS
// arena memory — callers must consume or Clone() it before their enclosing
// scope rewinds. Output is byte-identical to the allocating path.
Tensor SampleConditional(SpaceTimeUNet* model, const NoiseSchedule& schedule,
                         const SamplerConfig& config, const Tensor& keyframes,
                         const std::vector<std::int64_t>& key_idx,
                         std::int64_t frames, Rng& rng,
                         tensor::Workspace* ws = nullptr);

// Batched sampling over B windows stacked along dim 0. `keyframes` is
// [B*K, C, H, W] (window 0's keyframes first) and `rngs` holds one generator
// per window, positioned exactly where the per-window SampleConditional call
// would start drawing. Every denoising step runs the UNet once over all B
// windows; each window's slice of the returned [B*G, C, H, W] tensor is
// byte-identical to the serial workspace call for that window (all draws —
// the initial noise and any eta > 0 stochasticity — happen per window in the
// serial order). Requires a workspace; the result borrows arena memory.
Tensor SampleConditionalBatch(SpaceTimeUNet* model,
                              const NoiseSchedule& schedule,
                              const SamplerConfig& config,
                              const Tensor& keyframes,
                              const std::vector<std::int64_t>& key_idx,
                              std::int64_t frames,
                              const std::vector<Rng*>& rngs,
                              tensor::Workspace* ws);

}  // namespace glsc::diffusion
