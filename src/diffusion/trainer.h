// Stage-2 training (Algorithm 1): sample a window of N consecutive frames,
// project each frame through the FROZEN VAE encoder, round-quantize,
// min-max normalize, partition into (C, G), noise only the G-frames at a
// random timestep, and regress the injected noise with the loss masked to G.
//
// Few-step fine-tuning (§4.6): the same loop with timesteps restricted to a
// respaced subset of the original schedule, run after full-schedule training.
#pragma once

#include "compress/vae.h"
#include "data/dataset.h"
#include "diffusion/conditioner.h"
#include "diffusion/noise_schedule.h"
#include "diffusion/spacetime_unet.h"

namespace glsc::diffusion {

struct DiffusionTrainConfig {
  std::int64_t iterations = 600;
  std::int64_t window = 16;  // N
  std::int64_t crop = 32;    // data-space patch edge (latent edge = crop/4)
  float learning_rate = 3e-4f;
  double grad_clip = 1.0;
  KeyframeStrategy strategy = KeyframeStrategy::kInterpolation;
  std::int64_t interval = 3;   // interpolation stride
  std::int64_t key_count = 6;  // prediction/mixed keyframe count
  // 0 = train on the full schedule; > 0 = fine-tune on a respaced subset.
  std::int64_t finetune_steps = 0;
  std::int64_t log_every = 200;
  std::uint64_t seed = 29;
};

// Trains in place; returns the mean masked-noise MSE over the final logging
// window (the headline training metric).
double TrainDiffusion(SpaceTimeUNet* model, const NoiseSchedule& schedule,
                      compress::VaeHyperprior* frozen_vae,
                      const data::SequenceDataset& dataset,
                      const DiffusionTrainConfig& config);

// Shared helper: frozen-VAE latent window for N frames [N, C_lat, h, w],
// round-quantized (inference-identical path, no noise proxy).
Tensor QuantizedLatentWindow(compress::VaeHyperprior* vae,
                             const Tensor& frames_nhw);

}  // namespace glsc::diffusion
