#include "diffusion/sampler.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace glsc::diffusion {
namespace {

// The allocating reference path: every step allocates its temporaries.
// Kept verbatim so the workspace path below can be byte-identity-tested
// against it (tests/workspace_test.cc).
Tensor SampleAllocating(SpaceTimeUNet* model, const NoiseSchedule& schedule,
                        const SamplerConfig& config, const Tensor& keyframes,
                        const std::vector<std::int64_t>& key_idx,
                        const std::vector<std::int64_t>& gen_idx,
                        Rng& rng) {
  Shape gen_shape = keyframes.shape();
  gen_shape[0] = static_cast<std::int64_t>(gen_idx.size());

  // Respaced timestep ladder, descending.
  std::vector<std::int64_t> ladder = schedule.Respace(config.steps);
  std::reverse(ladder.begin(), ladder.end());

  // x_T ~ N(0, I) on the G-frames only.
  Tensor x = Tensor::Randn(gen_shape, rng);

  for (std::size_t step = 0; step < ladder.size(); ++step) {
    const std::int64_t t = ladder[step];
    const bool last = step + 1 == ladder.size();
    const std::int64_t t_prev = last ? -1 : ladder[step + 1];

    // Compose the full window and predict noise for the G-frames.
    const Tensor window = Compose(x, keyframes, gen_idx, key_idx);
    const Tensor eps_full = model->Forward(window, t);
    const Tensor eps = GatherFrames(eps_full, gen_idx);

    const double ab_t = schedule.alpha_bar(t);
    const double ab_prev = last ? 1.0 : schedule.alpha_bar(t_prev);

    // Predicted clean sample: x0 = (x - sqrt(1-ab) eps) / sqrt(ab).
    const float inv_sqrt_ab = static_cast<float>(1.0 / std::sqrt(ab_t));
    const float noise_coeff = static_cast<float>(std::sqrt(1.0 - ab_t));
    Tensor x0 = Tensor::Empty(gen_shape);
    {
      const float* px = x.data();
      const float* pe = eps.data();
      float* p0 = x0.data();
      for (std::int64_t i = 0; i < x0.numel(); ++i) {
        p0[i] = (px[i] - noise_coeff * pe[i]) * inv_sqrt_ab;
      }
    }
    // Keep the trajectory in the normalized latent range; latents live in
    // [-1,1] and clamping prevents early-step blowups at tiny step counts.
    ClampInPlace(&x0, -1.5f, 1.5f);

    if (last) {
      x = x0;
      break;
    }

    // DDIM update with eta-scaled stochasticity:
    // sigma^2 = eta^2 * (1-ab_prev)/(1-ab_t) * (1 - ab_t/ab_prev)
    const double sigma2 =
        config.eta * config.eta * (1.0 - ab_prev) / (1.0 - ab_t) *
        (1.0 - ab_t / ab_prev);
    const double dir_coeff =
        std::sqrt(std::max(1.0 - ab_prev - sigma2, 0.0));
    const float c0 = static_cast<float>(std::sqrt(ab_prev));
    const float c1 = static_cast<float>(dir_coeff);
    const float cs = static_cast<float>(std::sqrt(std::max(sigma2, 0.0)));
    {
      const float* p0 = x0.data();
      const float* pe = eps.data();
      float* px = x.data();
      for (std::int64_t i = 0; i < x.numel(); ++i) {
        const float noise = cs > 0.0f ? cs * rng.NormalF() : 0.0f;
        px[i] = c0 * p0[i] + c1 * pe[i] + noise;
      }
    }
  }
  return x;
}

// Arena path: x persists at the caller's arena level; every step's
// activations (window, UNet, eps, x0) live inside a per-step Scope and are
// rewound before the next step, so after step 1 grows the arena to its
// high-water mark the loop performs zero heap allocations.
Tensor SampleWithWorkspace(SpaceTimeUNet* model, const NoiseSchedule& schedule,
                           const SamplerConfig& config, const Tensor& keyframes,
                           const std::vector<std::int64_t>& key_idx,
                           const std::vector<std::int64_t>& gen_idx,
                           Rng& rng, tensor::Workspace* ws) {
  Shape gen_shape = keyframes.shape();
  gen_shape[0] = static_cast<std::int64_t>(gen_idx.size());

  std::vector<std::int64_t> ladder = schedule.Respace(config.steps);
  std::reverse(ladder.begin(), ladder.end());

  // Same draw order as Tensor::Randn.
  Tensor x = ws->NewTensor(gen_shape);
  {
    float* p = x.data();
    for (std::int64_t i = 0; i < x.numel(); ++i) p[i] = rng.NormalF();
  }

  for (std::size_t step = 0; step < ladder.size(); ++step) {
    const std::int64_t t = ladder[step];
    const bool last = step + 1 == ladder.size();
    const std::int64_t t_prev = last ? -1 : ladder[step + 1];

    tensor::Workspace::Scope step_scope(ws);
    const Tensor window = Compose(x, keyframes, gen_idx, key_idx, ws);
    const Tensor eps_full = model->Forward(window, t, ws);
    const Tensor eps = GatherFrames(eps_full, gen_idx, ws);

    const double ab_t = schedule.alpha_bar(t);
    const double ab_prev = last ? 1.0 : schedule.alpha_bar(t_prev);

    const float inv_sqrt_ab = static_cast<float>(1.0 / std::sqrt(ab_t));
    const float noise_coeff = static_cast<float>(std::sqrt(1.0 - ab_t));
    Tensor x0 = ws->NewTensor(gen_shape);
    {
      const float* px = x.data();
      const float* pe = eps.data();
      float* p0 = x0.data();
      for (std::int64_t i = 0; i < x0.numel(); ++i) {
        p0[i] = (px[i] - noise_coeff * pe[i]) * inv_sqrt_ab;
      }
    }
    ClampInPlace(&x0, -1.5f, 1.5f);

    if (last) {
      // x0 lives inside the step scope; persist it into x before rewinding.
      std::copy_n(x0.data(), x0.numel(), x.data());
      break;
    }

    const double sigma2 =
        config.eta * config.eta * (1.0 - ab_prev) / (1.0 - ab_t) *
        (1.0 - ab_t / ab_prev);
    const double dir_coeff =
        std::sqrt(std::max(1.0 - ab_prev - sigma2, 0.0));
    const float c0 = static_cast<float>(std::sqrt(ab_prev));
    const float c1 = static_cast<float>(dir_coeff);
    const float cs = static_cast<float>(std::sqrt(std::max(sigma2, 0.0)));
    {
      const float* p0 = x0.data();
      const float* pe = eps.data();
      float* px = x.data();
      for (std::int64_t i = 0; i < x.numel(); ++i) {
        const float noise = cs > 0.0f ? cs * rng.NormalF() : 0.0f;
        px[i] = c0 * p0[i] + c1 * pe[i] + noise;
      }
    }
  }
  return x;
}

}  // namespace

Tensor SampleConditionalBatch(SpaceTimeUNet* model,
                              const NoiseSchedule& schedule,
                              const SamplerConfig& config,
                              const Tensor& keyframes,
                              const std::vector<std::int64_t>& key_idx,
                              std::int64_t frames,
                              const std::vector<Rng*>& rngs,
                              tensor::Workspace* ws) {
  GLSC_CHECK(ws != nullptr);
  const std::int64_t batch = static_cast<std::int64_t>(rngs.size());
  GLSC_CHECK(batch >= 1);
  GLSC_CHECK(keyframes.rank() == 4);
  GLSC_CHECK(keyframes.dim(0) ==
             batch * static_cast<std::int64_t>(key_idx.size()));
  const std::vector<std::int64_t> gen_idx = GeneratedIndices(key_idx, frames);
  GLSC_CHECK(!gen_idx.empty());

  Shape gen_shape = keyframes.shape();
  gen_shape[0] = batch * static_cast<std::int64_t>(gen_idx.size());
  const std::int64_t per_window =
      static_cast<std::int64_t>(gen_idx.size()) * keyframes.dim(1) *
      keyframes.dim(2) * keyframes.dim(3);

  std::vector<std::int64_t> ladder = schedule.Respace(config.steps);
  std::reverse(ladder.begin(), ladder.end());

  // x_T per window, preserving each window's serial draw order.
  Tensor x = ws->NewTensor(gen_shape);
  for (std::int64_t w = 0; w < batch; ++w) {
    float* p = x.data() + w * per_window;
    for (std::int64_t i = 0; i < per_window; ++i) p[i] = rngs[w]->NormalF();
  }

  for (std::size_t step = 0; step < ladder.size(); ++step) {
    const std::int64_t t = ladder[step];
    const bool last = step + 1 == ladder.size();
    const std::int64_t t_prev = last ? -1 : ladder[step + 1];

    tensor::Workspace::Scope step_scope(ws);
    const Tensor window =
        ComposeBatch(x, keyframes, gen_idx, key_idx, batch, ws);
    const Tensor eps_full = model->Forward(window, t, ws, batch);
    const Tensor eps = GatherFramesBatch(eps_full, gen_idx, batch, ws);

    const double ab_t = schedule.alpha_bar(t);
    const double ab_prev = last ? 1.0 : schedule.alpha_bar(t_prev);

    const float inv_sqrt_ab = static_cast<float>(1.0 / std::sqrt(ab_t));
    const float noise_coeff = static_cast<float>(std::sqrt(1.0 - ab_t));
    Tensor x0 = ws->NewTensor(gen_shape);
    {
      // Elementwise, so running over all windows at once matches the
      // per-window loops bit for bit.
      const float* px = x.data();
      const float* pe = eps.data();
      float* p0 = x0.data();
      for (std::int64_t i = 0; i < x0.numel(); ++i) {
        p0[i] = (px[i] - noise_coeff * pe[i]) * inv_sqrt_ab;
      }
    }
    ClampInPlace(&x0, -1.5f, 1.5f);

    if (last) {
      std::copy_n(x0.data(), x0.numel(), x.data());
      break;
    }

    const double sigma2 =
        config.eta * config.eta * (1.0 - ab_prev) / (1.0 - ab_t) *
        (1.0 - ab_t / ab_prev);
    const double dir_coeff =
        std::sqrt(std::max(1.0 - ab_prev - sigma2, 0.0));
    const float c0 = static_cast<float>(std::sqrt(ab_prev));
    const float c1 = static_cast<float>(dir_coeff);
    const float cs = static_cast<float>(std::sqrt(std::max(sigma2, 0.0)));
    // Noise must come from each window's own generator in serial order, so
    // the update walks window slices rather than the flat tensor.
    for (std::int64_t w = 0; w < batch; ++w) {
      const float* p0 = x0.data() + w * per_window;
      const float* pe = eps.data() + w * per_window;
      float* px = x.data() + w * per_window;
      Rng* rng = rngs[static_cast<std::size_t>(w)];
      for (std::int64_t i = 0; i < per_window; ++i) {
        const float noise = cs > 0.0f ? cs * rng->NormalF() : 0.0f;
        px[i] = c0 * p0[i] + c1 * pe[i] + noise;
      }
    }
  }
  return x;
}

Tensor SampleConditional(SpaceTimeUNet* model, const NoiseSchedule& schedule,
                         const SamplerConfig& config, const Tensor& keyframes,
                         const std::vector<std::int64_t>& key_idx,
                         std::int64_t frames, Rng& rng,
                         tensor::Workspace* ws) {
  GLSC_CHECK(keyframes.rank() == 4);
  GLSC_CHECK(keyframes.dim(0) == static_cast<std::int64_t>(key_idx.size()));
  const std::vector<std::int64_t> gen_idx = GeneratedIndices(key_idx, frames);
  GLSC_CHECK(!gen_idx.empty());
  if (ws != nullptr) {
    return SampleWithWorkspace(model, schedule, config, keyframes, key_idx,
                               gen_idx, rng, ws);
  }
  return SampleAllocating(model, schedule, config, keyframes, key_idx, gen_idx,
                          rng);
}

}  // namespace glsc::diffusion
