#include "diffusion/conditioner.h"

#include <algorithm>

#include "util/check.h"

namespace glsc::diffusion {

const char* StrategyName(KeyframeStrategy strategy) {
  switch (strategy) {
    case KeyframeStrategy::kInterpolation: return "interpolation";
    case KeyframeStrategy::kPrediction: return "prediction";
    case KeyframeStrategy::kMixed: return "mixed";
  }
  return "unknown";
}

std::vector<std::int64_t> SelectKeyframes(KeyframeStrategy strategy,
                                          std::int64_t frames,
                                          std::int64_t interval,
                                          std::int64_t count) {
  GLSC_CHECK(frames >= 2);
  std::vector<std::int64_t> keys;
  switch (strategy) {
    case KeyframeStrategy::kInterpolation: {
      GLSC_CHECK(interval >= 1);
      for (std::int64_t i = 0; i < frames; i += interval) keys.push_back(i);
      // Anchor the tail so interpolation never extrapolates past the last key.
      if (keys.back() != frames - 1) keys.push_back(frames - 1);
      break;
    }
    case KeyframeStrategy::kPrediction: {
      GLSC_CHECK(count >= 1 && count < frames);
      for (std::int64_t i = 0; i < count; ++i) keys.push_back(i);
      break;
    }
    case KeyframeStrategy::kMixed: {
      GLSC_CHECK(count >= 2 && count < frames);
      for (std::int64_t i = 0; i < count - 1; ++i) keys.push_back(i);
      keys.push_back(frames - 1);
      break;
    }
  }
  return keys;
}

std::vector<std::int64_t> GeneratedIndices(
    const std::vector<std::int64_t>& keyframes, std::int64_t frames) {
  std::vector<bool> is_key(static_cast<std::size_t>(frames), false);
  for (const auto k : keyframes) {
    GLSC_CHECK(k >= 0 && k < frames);
    is_key[static_cast<std::size_t>(k)] = true;
  }
  std::vector<std::int64_t> gen;
  for (std::int64_t i = 0; i < frames; ++i) {
    if (!is_key[static_cast<std::size_t>(i)]) gen.push_back(i);
  }
  return gen;
}

namespace {

void GatherFramesInto(const Tensor& window,
                      const std::vector<std::int64_t>& idx, Tensor* out) {
  const std::int64_t row = window.numel() / window.dim(0);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    GLSC_CHECK(idx[i] >= 0 && idx[i] < window.dim(0));
    std::copy_n(window.data() + idx[i] * row, row,
                out->data() + static_cast<std::int64_t>(i) * row);
  }
}

Shape GatheredShape(const Tensor& window, const std::vector<std::int64_t>& idx) {
  GLSC_CHECK(window.rank() >= 2);
  Shape out_shape = window.shape();
  out_shape[0] = static_cast<std::int64_t>(idx.size());
  return out_shape;
}

}  // namespace

Tensor GatherFrames(const Tensor& window,
                    const std::vector<std::int64_t>& idx) {
  Tensor out = Tensor::Empty(GatheredShape(window, idx));
  GatherFramesInto(window, idx, &out);
  return out;
}

Tensor GatherFrames(const Tensor& window, const std::vector<std::int64_t>& idx,
                    tensor::Workspace* ws) {
  Tensor out = ws->NewTensor(GatheredShape(window, idx));
  GatherFramesInto(window, idx, &out);
  return out;
}

void ScatterFrames(const Tensor& packed, const std::vector<std::int64_t>& idx,
                   Tensor* window) {
  GLSC_CHECK(packed.dim(0) == static_cast<std::int64_t>(idx.size()));
  const std::int64_t row = window->numel() / window->dim(0);
  GLSC_CHECK(packed.numel() / packed.dim(0) == row);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    std::copy_n(packed.data() + static_cast<std::int64_t>(i) * row, row,
                window->data() + idx[i] * row);
  }
}

namespace {

Shape ComposedShape(const Tensor& generated, const Tensor& conditioning,
                    const std::vector<std::int64_t>& gen_idx,
                    const std::vector<std::int64_t>& key_idx) {
  const std::int64_t frames =
      static_cast<std::int64_t>(gen_idx.size() + key_idx.size());
  GLSC_CHECK(generated.dim(0) == static_cast<std::int64_t>(gen_idx.size()));
  GLSC_CHECK(conditioning.dim(0) == static_cast<std::int64_t>(key_idx.size()));
  Shape out_shape = generated.rank() > 0 ? generated.shape()
                                         : conditioning.shape();
  out_shape[0] = frames;
  return out_shape;
}

}  // namespace

Tensor Compose(const Tensor& generated, const Tensor& conditioning,
               const std::vector<std::int64_t>& gen_idx,
               const std::vector<std::int64_t>& key_idx) {
  // The two scatters cover every frame index, so no zero-fill is needed.
  Tensor out =
      Tensor::Empty(ComposedShape(generated, conditioning, gen_idx, key_idx));
  ScatterFrames(generated, gen_idx, &out);
  ScatterFrames(conditioning, key_idx, &out);
  return out;
}

Tensor Compose(const Tensor& generated, const Tensor& conditioning,
               const std::vector<std::int64_t>& gen_idx,
               const std::vector<std::int64_t>& key_idx,
               tensor::Workspace* ws) {
  Tensor out =
      ws->NewTensor(ComposedShape(generated, conditioning, gen_idx, key_idx));
  ScatterFrames(generated, gen_idx, &out);
  ScatterFrames(conditioning, key_idx, &out);
  return out;
}

Tensor ComposeBatch(const Tensor& generated, const Tensor& conditioning,
                    const std::vector<std::int64_t>& gen_idx,
                    const std::vector<std::int64_t>& key_idx,
                    std::int64_t batch, tensor::Workspace* ws) {
  const std::int64_t g = static_cast<std::int64_t>(gen_idx.size());
  const std::int64_t k = static_cast<std::int64_t>(key_idx.size());
  const std::int64_t n = g + k;
  GLSC_CHECK(batch >= 1);
  GLSC_CHECK(generated.dim(0) == batch * g);
  GLSC_CHECK(conditioning.dim(0) == batch * k);
  const std::int64_t row = generated.numel() / generated.dim(0);
  GLSC_CHECK(conditioning.numel() / conditioning.dim(0) == row);

  Shape out_shape = generated.shape();
  out_shape[0] = batch * n;
  Tensor out =
      ws != nullptr ? ws->NewTensor(out_shape) : Tensor::Empty(out_shape);
  // Each window is the same two scatters as Compose; together they cover
  // every frame, so no zero-fill is needed.
  for (std::int64_t w = 0; w < batch; ++w) {
    const float* pg = generated.data() + w * g * row;
    const float* pk = conditioning.data() + w * k * row;
    float* po = out.data() + w * n * row;
    for (std::int64_t i = 0; i < g; ++i) {
      std::copy_n(pg + i * row, row, po + gen_idx[static_cast<std::size_t>(i)] * row);
    }
    for (std::int64_t i = 0; i < k; ++i) {
      std::copy_n(pk + i * row, row, po + key_idx[static_cast<std::size_t>(i)] * row);
    }
  }
  return out;
}

Tensor GatherFramesBatch(const Tensor& window,
                         const std::vector<std::int64_t>& idx,
                         std::int64_t batch, tensor::Workspace* ws) {
  GLSC_CHECK(batch >= 1 && window.dim(0) % batch == 0);
  const std::int64_t n = window.dim(0) / batch;
  const std::int64_t g = static_cast<std::int64_t>(idx.size());
  const std::int64_t row = window.numel() / window.dim(0);
  Shape out_shape = window.shape();
  out_shape[0] = batch * g;
  Tensor out =
      ws != nullptr ? ws->NewTensor(out_shape) : Tensor::Empty(out_shape);
  for (std::int64_t w = 0; w < batch; ++w) {
    const float* src = window.data() + w * n * row;
    float* dst = out.data() + w * g * row;
    for (std::int64_t i = 0; i < g; ++i) {
      const std::int64_t f = idx[static_cast<std::size_t>(i)];
      GLSC_CHECK(f >= 0 && f < n);
      std::copy_n(src + f * row, row, dst + i * row);
    }
  }
  return out;
}

LatentNorm LatentNorm::FromTensor(const Tensor& t) {
  LatentNorm norm;
  norm.lo = t.MinValue();
  norm.hi = t.MaxValue();
  if (norm.hi - norm.lo < 1e-6f) norm.hi = norm.lo + 1e-6f;
  return norm;
}

namespace {

void NormalizeInto(const Tensor& t, float lo, float hi, Tensor* out) {
  const float scale = 2.0f / (hi - lo);
  const float* src = t.data();
  float* dst = out->data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    dst[i] = (src[i] - lo) * scale - 1.0f;
  }
}

void DenormalizeInto(const Tensor& t, float lo, float hi, Tensor* out) {
  const float scale = (hi - lo) / 2.0f;
  const float* src = t.data();
  float* dst = out->data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    dst[i] = (src[i] + 1.0f) * scale + lo;
  }
}

}  // namespace

Tensor LatentNorm::Normalize(const Tensor& t) const {
  Tensor out = Tensor::Empty(t.shape());
  NormalizeInto(t, lo, hi, &out);
  return out;
}

Tensor LatentNorm::Normalize(const Tensor& t, tensor::Workspace* ws) const {
  Tensor out = ws->NewTensor(t.shape());
  NormalizeInto(t, lo, hi, &out);
  return out;
}

Tensor LatentNorm::Denormalize(const Tensor& t) const {
  Tensor out = Tensor::Empty(t.shape());
  DenormalizeInto(t, lo, hi, &out);
  return out;
}

Tensor LatentNorm::Denormalize(const Tensor& t, tensor::Workspace* ws) const {
  Tensor out = ws->NewTensor(t.shape());
  DenormalizeInto(t, lo, hi, &out);
  return out;
}

}  // namespace glsc::diffusion
