// Elementwise and reduction operations on Tensor. These cover exactly what
// the explicit-backward layers need; each op allocates its result so callers
// never worry about aliasing.
#pragma once

#include <functional>

#include "tensor/tensor.h"

namespace glsc {

// ---- elementwise binary (shapes must match exactly) ----
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// In-place AXPY: y += alpha * x.
void Axpy(float alpha, const Tensor& x, Tensor* y);

// ---- elementwise scalar ----
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
void MulScalarInPlace(Tensor* a, float s);

// ---- elementwise unary ----
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);
Tensor Exp(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Clamp(const Tensor& a, float lo, float hi);
Tensor Round(const Tensor& a);

// In-place unary variants for allocation-free hot paths.
void ClampInPlace(Tensor* a, float lo, float hi);
void RoundInPlace(Tensor* a);

// ---- reductions ----
// Sum of squared elements.
double SumSquares(const Tensor& a);
// Mean squared difference; the distortion term of the RD loss.
double MeanSquaredError(const Tensor& a, const Tensor& b);
double DotProduct(const Tensor& a, const Tensor& b);

// ---- linear algebra on small dense matrices (row-major `a` is n x n) ----
// Cyclic Jacobi eigensolver for symmetric matrices. Eigenvalues are returned
// descending with matching columns in `eigvecs` (n x n, row-major).
void SymmetricEigen(const std::vector<double>& a, int n,
                    std::vector<double>* eigvals,
                    std::vector<double>* eigvecs);

}  // namespace glsc
