#include "tensor/simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "tensor/simd/kernels.h"
#include "util/check.h"

namespace glsc::simd {
namespace {

IsaLevel DetectIsa() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) {
    return IsaLevel::kAVX512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return IsaLevel::kAVX2;
  }
  if (__builtin_cpu_supports("sse2")) {
    return IsaLevel::kSSE2;
  }
#endif
  return IsaLevel::kScalar;
}

// Environment caps are read once; the dispatch level never changes after the
// first kernel call except through ScopedIsaOverride.
IsaLevel EnvCappedIsa() {
  IsaLevel level = DetectIsa();
  const char* force_scalar = std::getenv("GLSC_FORCE_SCALAR");
  if (force_scalar != nullptr && std::strcmp(force_scalar, "0") != 0 &&
      std::strcmp(force_scalar, "") != 0) {
    return IsaLevel::kScalar;
  }
  if (const char* isa = std::getenv("GLSC_ISA")) {
    if (std::strcmp(isa, "scalar") == 0) return IsaLevel::kScalar;
    if (std::strcmp(isa, "sse2") == 0 && level >= IsaLevel::kSSE2) {
      return IsaLevel::kSSE2;
    }
    if (std::strcmp(isa, "avx2") == 0 && level >= IsaLevel::kAVX2) {
      return IsaLevel::kAVX2;
    }
    if (std::strcmp(isa, "avx512") == 0 && level >= IsaLevel::kAVX512) {
      return IsaLevel::kAVX512;
    }
    // Unknown or unsupported request: keep the detected level.
  }
  return level;
}

// Merges a partially-populated table with the scalar fallbacks. mr/nr travel
// with gemm_micro: a table either ships its own micro-kernel (and tile dims)
// or inherits all three.
KernelTable Merge(const KernelTable* specialized, const KernelTable& scalar) {
  if (specialized == nullptr) return scalar;
  KernelTable t = *specialized;
  if (t.gemm_micro == nullptr) {
    t.gemm_micro = scalar.gemm_micro;
    t.mr = scalar.mr;
    t.nr = scalar.nr;
  }
  if (t.silu_fwd == nullptr) t.silu_fwd = scalar.silu_fwd;
  if (t.silu_bwd == nullptr) t.silu_bwd = scalar.silu_bwd;
  if (t.softmax_row == nullptr) t.softmax_row = scalar.softmax_row;
  if (t.moments == nullptr) t.moments = scalar.moments;
  if (t.norm_affine == nullptr) t.norm_affine = scalar.norm_affine;
  if (t.norm_affine_vec == nullptr) t.norm_affine_vec = scalar.norm_affine_vec;
  if (t.bias_act_row == nullptr) t.bias_act_row = scalar.bias_act_row;
  if (t.shuffle_bytes == nullptr) t.shuffle_bytes = scalar.shuffle_bytes;
  if (t.unshuffle_bytes == nullptr) t.unshuffle_bytes = scalar.unshuffle_bytes;
  if (t.bit_transpose == nullptr) t.bit_transpose = scalar.bit_transpose;
  if (t.bit_untranspose == nullptr) {
    t.bit_untranspose = scalar.bit_untranspose;
  }
  if (t.delta_encode == nullptr) t.delta_encode = scalar.delta_encode;
  if (t.delta_decode == nullptr) t.delta_decode = scalar.delta_decode;
  return t;
}

struct Registry {
  KernelTable scalar;
  KernelTable sse2;
  KernelTable avx2;
  KernelTable avx512;
  IsaLevel detected;
  IsaLevel env_capped;
};

const Registry& GetRegistry() {
  static const Registry registry = [] {
    Registry r;
    const KernelTable* scalar = GetScalarTable();
    GLSC_CHECK(scalar != nullptr && scalar->gemm_micro != nullptr);
    r.scalar = *scalar;
    // Each level inherits the entries the next one down resolved.
    r.sse2 = Merge(GetSse2Table(), r.scalar);
    r.avx2 = Merge(GetAvx2Table(), r.sse2);
    r.avx512 = Merge(GetAvx512Table(), r.avx2);
    r.detected = DetectIsa();
    r.env_capped = EnvCappedIsa();
    return r;
  }();
  return registry;
}

const KernelTable& TableAt(IsaLevel level) {
  const Registry& r = GetRegistry();
  switch (level) {
    case IsaLevel::kAVX512:
      return r.avx512;
    case IsaLevel::kAVX2:
      return r.avx2;
    case IsaLevel::kSSE2:
      return r.sse2;
    case IsaLevel::kScalar:
    default:
      return r.scalar;
  }
}

// Active table pointer; null until first resolution. Overrides swap it.
std::atomic<const KernelTable*> g_active{nullptr};

// Override bookkeeping (single-threaded by contract).
bool g_override_active = false;
IsaLevel g_override_level = IsaLevel::kScalar;

const KernelTable* ResolveActive() {
  const Registry& r = GetRegistry();
  const IsaLevel level = g_override_active
                             ? (g_override_level <= r.detected
                                    ? g_override_level
                                    : r.detected)
                             : r.env_capped;
  const KernelTable* table = &TableAt(level);
  g_active.store(table, std::memory_order_release);
  return table;
}

}  // namespace

IsaLevel DetectedIsa() { return GetRegistry().detected; }

IsaLevel ActiveIsa() { return ActiveKernels().level; }

const char* IsaName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kAVX512:
      return "avx512";
    case IsaLevel::kAVX2:
      return "avx2";
    case IsaLevel::kSSE2:
      return "sse2";
    case IsaLevel::kScalar:
    default:
      return "scalar";
  }
}

const KernelTable& ActiveKernels() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) table = ResolveActive();
  return *table;
}

const KernelTable& KernelsFor(IsaLevel level) {
  const IsaLevel clamped =
      level <= GetRegistry().detected ? level : GetRegistry().detected;
  return TableAt(clamped);
}

ScopedIsaOverride::ScopedIsaOverride(IsaLevel level)
    : had_previous_(g_override_active), previous_(g_override_level) {
  g_override_active = true;
  g_override_level = level;
  ResolveActive();
}

ScopedIsaOverride::~ScopedIsaOverride() {
  g_override_active = had_previous_;
  g_override_level = previous_;
  ResolveActive();
}

}  // namespace glsc::simd
