// SSE2 GEMM micro-kernel. SSE2 is the x86-64 baseline, so this file needs no
// special compile flags; it exists as the middle dispatch rung for CPUs
// without AVX2 and as an extra comparison point for the kernel tests.
// Elementwise kernels at this level inherit the scalar implementations (the
// transcendental-heavy ops only pay off with 8-wide FMA).
#include "tensor/simd/kernels.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace glsc::simd {

#if defined(__SSE2__)

namespace {

constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 8;

void GemmMicroSse2(std::int64_t kb, const float* a_panel, const float* b_panel,
                   float alpha, float* c, std::int64_t ldc, std::int64_t ib,
                   std::int64_t jb) {
  // 4x8 tile: two 4-lane accumulators per row of C.
  __m128 acc[kMr][2];
  for (std::int64_t i = 0; i < kMr; ++i) {
    acc[i][0] = _mm_setzero_ps();
    acc[i][1] = _mm_setzero_ps();
  }
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* arow = a_panel + p * kMr;
    const __m128 b0 = _mm_loadu_ps(b_panel + p * kNr);
    const __m128 b1 = _mm_loadu_ps(b_panel + p * kNr + 4);
    for (std::int64_t i = 0; i < kMr; ++i) {
      const __m128 av = _mm_set1_ps(arow[i]);
      acc[i][0] = _mm_add_ps(acc[i][0], _mm_mul_ps(av, b0));
      acc[i][1] = _mm_add_ps(acc[i][1], _mm_mul_ps(av, b1));
    }
  }
  const __m128 valpha = _mm_set1_ps(alpha);
  if (ib == kMr && jb == kNr) {
    for (std::int64_t i = 0; i < kMr; ++i) {
      float* crow = c + i * ldc;
      _mm_storeu_ps(crow, _mm_add_ps(_mm_loadu_ps(crow),
                                     _mm_mul_ps(valpha, acc[i][0])));
      _mm_storeu_ps(crow + 4, _mm_add_ps(_mm_loadu_ps(crow + 4),
                                         _mm_mul_ps(valpha, acc[i][1])));
    }
    return;
  }
  alignas(16) float buf[kMr][kNr];
  for (std::int64_t i = 0; i < kMr; ++i) {
    _mm_store_ps(buf[i], acc[i][0]);
    _mm_store_ps(buf[i] + 4, acc[i][1]);
  }
  for (std::int64_t i = 0; i < ib; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < jb; ++j) crow[j] += alpha * buf[i][j];
  }
}

const KernelTable kSse2Table = {
    IsaLevel::kSSE2,
    kMr,
    kNr,
    GemmMicroSse2,
    nullptr,  // silu_fwd
    nullptr,  // silu_bwd
    nullptr,  // softmax_row
    nullptr,  // moments
    nullptr,  // norm_affine
    nullptr,  // norm_affine_vec
    nullptr,  // bias_act_row
};

}  // namespace

const KernelTable* GetSse2Table() { return &kSse2Table; }

#else  // !defined(__SSE2__)

const KernelTable* GetSse2Table() { return nullptr; }

#endif

}  // namespace glsc::simd
