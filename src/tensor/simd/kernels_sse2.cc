// SSE2 GEMM micro-kernel. SSE2 is the x86-64 baseline, so this file needs no
// special compile flags; it exists as the middle dispatch rung for CPUs
// without AVX2 and as an extra comparison point for the kernel tests.
// Elementwise kernels at this level inherit the scalar implementations (the
// transcendental-heavy ops only pay off with 8-wide FMA).
#include "tensor/simd/kernels.h"

#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace glsc::simd {

#if defined(__SSE2__)

namespace {

constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 8;

void GemmMicroSse2(std::int64_t kb, const float* a_panel, const float* b_panel,
                   float alpha, float* c, std::int64_t ldc, std::int64_t ib,
                   std::int64_t jb) {
  // 4x8 tile: two 4-lane accumulators per row of C.
  __m128 acc[kMr][2];
  for (std::int64_t i = 0; i < kMr; ++i) {
    acc[i][0] = _mm_setzero_ps();
    acc[i][1] = _mm_setzero_ps();
  }
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* arow = a_panel + p * kMr;
    const __m128 b0 = _mm_loadu_ps(b_panel + p * kNr);
    const __m128 b1 = _mm_loadu_ps(b_panel + p * kNr + 4);
    for (std::int64_t i = 0; i < kMr; ++i) {
      const __m128 av = _mm_set1_ps(arow[i]);
      acc[i][0] = _mm_add_ps(acc[i][0], _mm_mul_ps(av, b0));
      acc[i][1] = _mm_add_ps(acc[i][1], _mm_mul_ps(av, b1));
    }
  }
  const __m128 valpha = _mm_set1_ps(alpha);
  if (ib == kMr && jb == kNr) {
    for (std::int64_t i = 0; i < kMr; ++i) {
      float* crow = c + i * ldc;
      _mm_storeu_ps(crow, _mm_add_ps(_mm_loadu_ps(crow),
                                     _mm_mul_ps(valpha, acc[i][0])));
      _mm_storeu_ps(crow + 4, _mm_add_ps(_mm_loadu_ps(crow + 4),
                                         _mm_mul_ps(valpha, acc[i][1])));
    }
    return;
  }
  alignas(16) float buf[kMr][kNr];
  for (std::int64_t i = 0; i < kMr; ++i) {
    _mm_store_ps(buf[i], acc[i][0]);
    _mm_store_ps(buf[i] + 4, acc[i][1]);
  }
  for (std::int64_t i = 0; i < ib; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < jb; ++j) crow[j] += alpha * buf[i][j];
  }
}

// ---- container byte filters ----
// The movemask trick: _mm_movemask_epi8 extracts the MSB of each byte, and
// _mm_add_epi8(x, x) shifts every byte left by one WITHOUT crossing byte
// boundaries, so eight movemask+add rounds walk bit 7 down to bit 0. One
// 16-byte load covers two 8-byte groups; the mask's low/high byte land in
// adjacent bit-plane positions j and j+1. Byte-identical to the scalar
// reference by construction (pure bit movement).

void BitTransposeSse2(const std::uint8_t* src, std::uint8_t* dst,
                      std::int64_t n) {
  const std::int64_t stride = n / 8;
  std::int64_t j = 0;
  for (; j + 2 <= stride; j += 2) {
    __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 8 * j));
    for (int b = 7; b >= 0; --b) {
      const std::uint16_t mask =
          static_cast<std::uint16_t>(_mm_movemask_epi8(x));
      std::memcpy(dst + b * stride + j, &mask, sizeof mask);
      x = _mm_add_epi8(x, x);
    }
  }
  for (; j < stride; ++j) {
    for (int b = 0; b < 8; ++b) {
      std::uint8_t out = 0;
      for (int t = 0; t < 8; ++t) {
        out |= static_cast<std::uint8_t>(((src[8 * j + t] >> b) & 1) << t);
      }
      dst[b * stride + j] = out;
    }
  }
}

void BitUntransposeSse2(const std::uint8_t* src, std::uint8_t* dst,
                        std::int64_t n) {
  const std::int64_t stride = n / 8;
  std::int64_t j = 0;
  // 16 groups per iteration: load 16 bytes from each of the 8 bit planes,
  // byte-transpose them with a 3-stage unpack tree into registers holding
  // [plane0..plane7 at j+2c, plane0..plane7 at j+2c+1], then run the same
  // movemask core as the forward transform on each.
  for (; j + 16 <= stride; j += 16) {
    __m128i x[8];
    for (int b = 0; b < 8; ++b) {
      x[b] = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(src + b * stride + j));
    }
    __m128i u[8];
    for (int b = 0; b < 4; ++b) {
      u[2 * b] = _mm_unpacklo_epi8(x[2 * b], x[2 * b + 1]);
      u[2 * b + 1] = _mm_unpackhi_epi8(x[2 * b], x[2 * b + 1]);
    }
    __m128i w[8];
    for (int h = 0; h < 2; ++h) {
      w[4 * h] = _mm_unpacklo_epi16(u[h], u[2 + h]);
      w[4 * h + 1] = _mm_unpackhi_epi16(u[h], u[2 + h]);
      w[4 * h + 2] = _mm_unpacklo_epi16(u[4 + h], u[6 + h]);
      w[4 * h + 3] = _mm_unpackhi_epi16(u[4 + h], u[6 + h]);
    }
    // After the epi16 stage w[4h+c] holds planes 0-3 (c in {0,1}) or 4-7
    // (c in {2,3}) of column quads; the epi32 stage below completes the byte
    // transpose so each r register is two full 8-byte columns.
    __m128i r[8];
    for (int h = 0; h < 2; ++h) {
      r[4 * h] = _mm_unpacklo_epi32(w[4 * h], w[4 * h + 2]);
      r[4 * h + 1] = _mm_unpackhi_epi32(w[4 * h], w[4 * h + 2]);
      r[4 * h + 2] = _mm_unpacklo_epi32(w[4 * h + 1], w[4 * h + 3]);
      r[4 * h + 3] = _mm_unpackhi_epi32(w[4 * h + 1], w[4 * h + 3]);
    }
    // r[h*4 + c] holds columns (groups) g0 = j + 8h + 2c and g0 + 1:
    // bytes [p0[g0], .., p7[g0], p0[g0+1], .., p7[g0+1]].
    for (int h = 0; h < 2; ++h) {
      for (int c = 0; c < 4; ++c) {
        __m128i v = r[4 * h + c];
        const std::int64_t g0 = j + 8 * h + 2 * c;
        for (int s = 0; s < 8; ++s) {
          const int mask = _mm_movemask_epi8(v);
          dst[8 * g0 + 7 - s] = static_cast<std::uint8_t>(mask & 0xFF);
          dst[8 * (g0 + 1) + 7 - s] = static_cast<std::uint8_t>(mask >> 8);
          v = _mm_add_epi8(v, v);
        }
      }
    }
  }
  for (; j < stride; ++j) {
    for (int t = 0; t < 8; ++t) {
      std::uint8_t out = 0;
      for (int b = 0; b < 8; ++b) {
        out |= static_cast<std::uint8_t>(((src[b * stride + j] >> t) & 1)
                                         << b);
      }
      dst[8 * j + t] = out;
    }
  }
}

void DeltaEncodeSse2(const std::uint8_t* src, std::uint8_t* dst,
                     std::int64_t n, std::int64_t lag) {
  const std::int64_t head = lag < n ? lag : n;
  std::memcpy(dst, src, static_cast<std::size_t>(head));
  std::int64_t i = head;
  for (; i + 16 <= n; i += 16) {
    const __m128i cur =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i prev =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i - lag));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_sub_epi8(cur, prev));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(src[i] - src[i - lag]);
}

// Lagged in-place prefix sum. The power-of-two lags the container format
// emits (element sizes 1/2/4/8) vectorize with an in-register doubling scan
// plus a carry broadcast of the previous block's final `lag` bytes; lags of
// 16+ use non-overlapping vector adds; anything else falls back to scalar.
void DeltaDecodeSse2(std::uint8_t* buf, std::int64_t n, std::int64_t lag) {
  if (lag >= 16) {
    std::int64_t i = lag;
    for (; i + 16 <= n; i += 16) {
      const __m128i cur =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + i));
      const __m128i prev =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + i - lag));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(buf + i),
                       _mm_add_epi8(cur, prev));
    }
    for (; i < n; ++i) {
      buf[i] = static_cast<std::uint8_t>(buf[i] + buf[i - lag]);
    }
    return;
  }
  if (n < 32 || (lag != 1 && lag != 2 && lag != 4 && lag != 8)) {
    for (std::int64_t i = lag; i < n; ++i) {
      buf[i] = static_cast<std::uint8_t>(buf[i] + buf[i - lag]);
    }
    return;
  }
  // Scalar warm-up to a 16-byte boundary keeps the vector loop aligned with
  // whole blocks; `carry` then tiles the last `lag` decoded bytes across a
  // vector for the cross-block contribution.
  std::int64_t i = lag;
  const std::int64_t vec_start = 16;
  for (; i < vec_start && i < n; ++i) {
    buf[i] = static_cast<std::uint8_t>(buf[i] + buf[i - lag]);
  }
  if (i >= n) return;
  __m128i carry;
  {
    // Tile the final `lag` bytes of the decoded prefix.
    if (lag == 1) {
      carry = _mm_set1_epi8(static_cast<char>(buf[vec_start - 1]));
    } else if (lag == 2) {
      std::uint16_t c;
      std::memcpy(&c, buf + vec_start - 2, sizeof c);
      carry = _mm_set1_epi16(static_cast<short>(c));
    } else if (lag == 4) {
      std::uint32_t c;
      std::memcpy(&c, buf + vec_start - 4, sizeof c);
      carry = _mm_set1_epi32(static_cast<int>(c));
    } else {
      std::uint64_t c;
      std::memcpy(&c, buf + vec_start - 8, sizeof c);
      carry = _mm_set1_epi64x(static_cast<long long>(c));
    }
  }
  for (; i + 16 <= n; i += 16) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + i));
    // In-register lagged scan: doubling shifts accumulate every in-block
    // predecessor, then the carry adds the cross-block prefix.
    if (lag == 1) {
      x = _mm_add_epi8(x, _mm_slli_si128(x, 1));
      x = _mm_add_epi8(x, _mm_slli_si128(x, 2));
      x = _mm_add_epi8(x, _mm_slli_si128(x, 4));
      x = _mm_add_epi8(x, _mm_slli_si128(x, 8));
    } else if (lag == 2) {
      x = _mm_add_epi8(x, _mm_slli_si128(x, 2));
      x = _mm_add_epi8(x, _mm_slli_si128(x, 4));
      x = _mm_add_epi8(x, _mm_slli_si128(x, 8));
    } else if (lag == 4) {
      x = _mm_add_epi8(x, _mm_slli_si128(x, 4));
      x = _mm_add_epi8(x, _mm_slli_si128(x, 8));
    } else {
      x = _mm_add_epi8(x, _mm_slli_si128(x, 8));
    }
    x = _mm_add_epi8(x, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(buf + i), x);
    // Next block's carry = this block's final `lag` bytes, tiled.
    if (lag == 1) {
      carry = _mm_set1_epi8(
          static_cast<char>(_mm_extract_epi16(x, 7) >> 8));
    } else if (lag == 2) {
      carry = _mm_set1_epi16(static_cast<short>(_mm_extract_epi16(x, 7)));
    } else if (lag == 4) {
      carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
    } else {
      carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 2, 3, 2));
    }
  }
  for (; i < n; ++i) {
    buf[i] = static_cast<std::uint8_t>(buf[i] + buf[i - lag]);
  }
}

const KernelTable kSse2Table = {
    IsaLevel::kSSE2,
    kMr,
    kNr,
    GemmMicroSse2,
    nullptr,  // silu_fwd
    nullptr,  // silu_bwd
    nullptr,  // softmax_row
    nullptr,  // moments
    nullptr,  // norm_affine
    nullptr,  // norm_affine_vec
    nullptr,  // bias_act_row
    nullptr,  // shuffle_bytes   (inherited from scalar)
    nullptr,  // unshuffle_bytes (inherited from scalar)
    BitTransposeSse2,
    BitUntransposeSse2,
    DeltaEncodeSse2,
    DeltaDecodeSse2,
};

}  // namespace

const KernelTable* GetSse2Table() { return &kSse2Table; }

#else  // !defined(__SSE2__)

const KernelTable* GetSse2Table() { return nullptr; }

#endif

}  // namespace glsc::simd
