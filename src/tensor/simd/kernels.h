// Kernel registry for the SIMD compute backend. One KernelTable per dispatch
// level; callers grab ActiveKernels() once per operation and call through
// plain function pointers, so a kernel invocation costs one indirect call on
// top of the work itself.
//
// Numerics contract: variants of the same kernel may differ in rounding
// (vector exp is a polynomial, reductions re-associate), so outputs are only
// approximately equal across levels. Anything that must be bit-exact across
// levels (the entropy coders) stays in integer code outside this table.
#pragma once

#include <cstdint>

#include "tensor/simd/dispatch.h"

namespace glsc::simd {

// Activation selector for the fused GEMM epilogue.
enum : int { kActNone = 0, kActSiLU = 1 };

struct KernelTable {
  IsaLevel level;

  // ---- GEMM register-tile micro-kernel ----
  // Panels are packed in strips of `mr` rows of A / `nr` columns of B,
  // K-major within a strip (see PackA/PackB in tensor/gemm.cc).
  // Computes C[0..ib)x[0..jb) += alpha * A_panel^T B_panel over kb terms.
  std::int64_t mr;
  std::int64_t nr;
  void (*gemm_micro)(std::int64_t kb, const float* a_panel,
                     const float* b_panel, float alpha, float* c,
                     std::int64_t ldc, std::int64_t ib, std::int64_t jb);

  // ---- elementwise / rowwise ----
  // y[i] = x[i] * sigmoid(x[i])
  void (*silu_fwd)(const float* x, float* y, std::int64_t n);
  // out[i] = g[i] * s * (1 + x[i] * (1 - s)), s = sigmoid(x[i])
  void (*silu_bwd)(const float* x, const float* g, float* out, std::int64_t n);
  // In-place numerically-stable softmax of one row.
  void (*softmax_row)(float* row, std::int64_t n);
  // sum(x) and sum(x^2) accumulated in double precision.
  void (*moments)(const float* x, std::int64_t n, double* sum, double* sumsq);
  // y[i] = gamma * (x[i] - mean) * inv_std + beta
  void (*norm_affine)(const float* x, float mean, float inv_std, float gamma,
                      float beta, float* y, std::int64_t n);
  // y[i] = gamma[i] * (x[i] - mean) * inv_std + beta[i]
  void (*norm_affine_vec)(const float* x, float mean, float inv_std,
                          const float* gamma, const float* beta, float* y,
                          std::int64_t n);
  // GEMM epilogue on a finished row segment of C: adds col_bias[j] when
  // col_bias != nullptr (per-column bias), otherwise the broadcast row_bias;
  // then applies the selected activation in place.
  void (*bias_act_row)(float* row, std::int64_t n, float row_bias,
                       const float* col_bias, int act);
};

// Table for the current dispatch level (env overrides + ScopedIsaOverride
// applied); one relaxed atomic load per call.
const KernelTable& ActiveKernels();

// Table for a specific level, clamped to DetectedIsa(). Levels that only
// implement a subset of kernels (SSE2) inherit the scalar entries.
const KernelTable& KernelsFor(IsaLevel level);

// Raw per-level tables, defined in kernels_{scalar,sse2,avx2,avx512}.cc.
// The SIMD getters return nullptr when the target ISA was not compiled in;
// unimplemented entries within a table are nullptr and are backfilled from
// the next level down by KernelsFor() (scalar -> sse2 -> avx2 -> avx512).
const KernelTable* GetScalarTable();
const KernelTable* GetSse2Table();
const KernelTable* GetAvx2Table();
const KernelTable* GetAvx512Table();

}  // namespace glsc::simd
