// Kernel registry for the SIMD compute backend. One KernelTable per dispatch
// level; callers grab ActiveKernels() once per operation and call through
// plain function pointers, so a kernel invocation costs one indirect call on
// top of the work itself.
//
// Numerics contract: variants of the same kernel may differ in rounding
// (vector exp is a polynomial, reductions re-associate), so outputs are only
// approximately equal across levels. Anything that must be bit-exact across
// levels (the entropy coders) stays in integer code outside this table —
// with one deliberate exception: the container byte-filter kernels at the
// bottom of KernelTable move bits only (no arithmetic on values), so every
// level is REQUIRED to be byte-identical to the scalar reference. The
// filters_test suite enforces that identity at each dispatch level.
#pragma once

#include <cstdint>

#include "tensor/simd/dispatch.h"

namespace glsc::simd {

// Activation selector for the fused GEMM epilogue.
enum : int { kActNone = 0, kActSiLU = 1 };

struct KernelTable {
  IsaLevel level;

  // ---- GEMM register-tile micro-kernel ----
  // Panels are packed in strips of `mr` rows of A / `nr` columns of B,
  // K-major within a strip (see PackA/PackB in tensor/gemm.cc).
  // Computes C[0..ib)x[0..jb) += alpha * A_panel^T B_panel over kb terms.
  std::int64_t mr;
  std::int64_t nr;
  void (*gemm_micro)(std::int64_t kb, const float* a_panel,
                     const float* b_panel, float alpha, float* c,
                     std::int64_t ldc, std::int64_t ib, std::int64_t jb);

  // ---- elementwise / rowwise ----
  // y[i] = x[i] * sigmoid(x[i])
  void (*silu_fwd)(const float* x, float* y, std::int64_t n);
  // out[i] = g[i] * s * (1 + x[i] * (1 - s)), s = sigmoid(x[i])
  void (*silu_bwd)(const float* x, const float* g, float* out, std::int64_t n);
  // In-place numerically-stable softmax of one row.
  void (*softmax_row)(float* row, std::int64_t n);
  // sum(x) and sum(x^2) accumulated in double precision.
  void (*moments)(const float* x, std::int64_t n, double* sum, double* sumsq);
  // y[i] = gamma * (x[i] - mean) * inv_std + beta
  void (*norm_affine)(const float* x, float mean, float inv_std, float gamma,
                      float beta, float* y, std::int64_t n);
  // y[i] = gamma[i] * (x[i] - mean) * inv_std + beta[i]
  void (*norm_affine_vec)(const float* x, float mean, float inv_std,
                          const float* gamma, const float* beta, float* y,
                          std::int64_t n);
  // GEMM epilogue on a finished row segment of C: adds col_bias[j] when
  // col_bias != nullptr (per-column bias), otherwise the broadcast row_bias;
  // then applies the selected activation in place.
  void (*bias_act_row)(float* row, std::int64_t n, float row_bias,
                       const float* col_bias, int act);

  // ---- container byte filters (bit-exact at every level) ----
  // Splits `nelem` elements of `elem` bytes each into contiguous byte planes:
  //   dst[k * nelem + i] = src[i * elem + k].
  // unshuffle_bytes is the exact inverse. src and dst must not alias.
  void (*shuffle_bytes)(const std::uint8_t* src, std::uint8_t* dst,
                        std::int64_t nelem, std::int64_t elem);
  void (*unshuffle_bytes)(const std::uint8_t* src, std::uint8_t* dst,
                          std::int64_t nelem, std::int64_t elem);
  // Transposes one byte plane of n bytes (n % 8 == 0) into 8 bit planes of
  // n/8 bytes each:
  //   bit t of dst[b * n/8 + j] = bit b of src[8*j + t].
  // bit_untranspose is the exact inverse. src and dst must not alias.
  void (*bit_transpose)(const std::uint8_t* src, std::uint8_t* dst,
                        std::int64_t n);
  void (*bit_untranspose)(const std::uint8_t* src, std::uint8_t* dst,
                          std::int64_t n);
  // Byte delta with lag `lag` >= 1:
  //   dst[i] = src[i] - src[i - lag]  (mod 256; identity for i < lag).
  // src and dst must not alias.
  void (*delta_encode)(const std::uint8_t* src, std::uint8_t* dst,
                       std::int64_t n, std::int64_t lag);
  // In-place inverse (lagged prefix sum): buf[i] += buf[i - lag].
  void (*delta_decode)(std::uint8_t* buf, std::int64_t n, std::int64_t lag);
};

// Table for the current dispatch level (env overrides + ScopedIsaOverride
// applied); one relaxed atomic load per call.
const KernelTable& ActiveKernels();

// Table for a specific level, clamped to DetectedIsa(). Levels that only
// implement a subset of kernels (SSE2) inherit the scalar entries.
const KernelTable& KernelsFor(IsaLevel level);

// Raw per-level tables, defined in kernels_{scalar,sse2,avx2,avx512}.cc.
// The SIMD getters return nullptr when the target ISA was not compiled in;
// unimplemented entries within a table are nullptr and are backfilled from
// the next level down by KernelsFor() (scalar -> sse2 -> avx2 -> avx512).
const KernelTable* GetScalarTable();
const KernelTable* GetSse2Table();
const KernelTable* GetAvx2Table();
const KernelTable* GetAvx512Table();

}  // namespace glsc::simd
