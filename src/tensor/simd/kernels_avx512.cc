// AVX-512 GEMM micro-kernel. Compiled with -mavx512f (see CMakeLists.txt)
// and only invoked after runtime dispatch confirms avx512f support. The
// 12x32 register tile uses 24 of the 32 zmm registers as accumulators; with
// two FMA pipes that is 12 cycles of FMA work per k-step against 14 load
// micro-ops, keeping the kernel FMA-bound. Elementwise kernels at this level
// inherit the AVX2 implementations via the dispatch cascade.
#include "tensor/simd/kernels.h"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace glsc::simd {

#if defined(__AVX512F__)

namespace {

constexpr std::int64_t kMr = 12;
constexpr std::int64_t kNr = 32;

void GemmMicroAvx512(std::int64_t kb, const float* a_panel,
                     const float* b_panel, float alpha, float* c,
                     std::int64_t ldc, std::int64_t ib, std::int64_t jb) {
  __m512 acc[kMr][2];
  for (std::int64_t i = 0; i < kMr; ++i) {
    acc[i][0] = _mm512_setzero_ps();
    acc[i][1] = _mm512_setzero_ps();
  }
  // Warm the C tile while the k-loop runs; the write-back below touches it.
  for (std::int64_t i = 0; i < ib; ++i) {
    _mm_prefetch(reinterpret_cast<const char*>(c + i * ldc), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(c + i * ldc + 16), _MM_HINT_T0);
  }
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* arow = a_panel + p * kMr;
    const float* brow = b_panel + p * kNr;
    _mm_prefetch(reinterpret_cast<const char*>(brow + 8 * kNr), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(brow + 8 * kNr + 16),
                 _MM_HINT_T0);
    const __m512 b0 = _mm512_load_ps(brow);
    const __m512 b1 = _mm512_load_ps(brow + 16);
    for (std::int64_t i = 0; i < kMr; ++i) {
      const __m512 av = _mm512_set1_ps(arow[i]);
      acc[i][0] = _mm512_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm512_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  const __m512 valpha = _mm512_set1_ps(alpha);
  if (ib == kMr && jb == kNr) {
    for (std::int64_t i = 0; i < kMr; ++i) {
      float* crow = c + i * ldc;
      _mm512_storeu_ps(
          crow, _mm512_fmadd_ps(valpha, acc[i][0], _mm512_loadu_ps(crow)));
      _mm512_storeu_ps(crow + 16, _mm512_fmadd_ps(valpha, acc[i][1],
                                                  _mm512_loadu_ps(crow + 16)));
    }
    return;
  }
  // Ragged edges: masked stores cover partial tile widths.
  const __mmask16 mask0 =
      jb >= 16 ? static_cast<__mmask16>(0xFFFF)
               : static_cast<__mmask16>((1u << jb) - 1);
  const __mmask16 mask1 =
      jb >= kNr ? static_cast<__mmask16>(0xFFFF)
                : (jb > 16 ? static_cast<__mmask16>((1u << (jb - 16)) - 1)
                           : static_cast<__mmask16>(0));
  for (std::int64_t i = 0; i < ib; ++i) {
    float* crow = c + i * ldc;
    const __m512 c0 = _mm512_maskz_loadu_ps(mask0, crow);
    _mm512_mask_storeu_ps(crow, mask0,
                          _mm512_fmadd_ps(valpha, acc[i][0], c0));
    if (mask1 != 0) {
      const __m512 c1 = _mm512_maskz_loadu_ps(mask1, crow + 16);
      _mm512_mask_storeu_ps(crow + 16, mask1,
                            _mm512_fmadd_ps(valpha, acc[i][1], c1));
    }
  }
}

const KernelTable kAvx512Table = {
    IsaLevel::kAVX512,
    kMr,
    kNr,
    GemmMicroAvx512,
    nullptr,  // silu_fwd      (inherited from AVX2)
    nullptr,  // silu_bwd
    nullptr,  // softmax_row
    nullptr,  // moments
    nullptr,  // norm_affine
    nullptr,  // norm_affine_vec
    nullptr,  // bias_act_row
};

}  // namespace

const KernelTable* GetAvx512Table() { return &kAvx512Table; }

#else  // !defined(__AVX512F__)

const KernelTable* GetAvx512Table() { return nullptr; }

#endif

}  // namespace glsc::simd
