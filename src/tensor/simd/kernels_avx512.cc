// AVX-512 GEMM micro-kernel. Compiled with -mavx512f (see CMakeLists.txt)
// and only invoked after runtime dispatch confirms avx512f support. The
// 12x32 register tile uses 24 of the 32 zmm registers as accumulators; with
// two FMA pipes that is 12 cycles of FMA work per k-step against 14 load
// micro-ops, keeping the kernel FMA-bound. Elementwise kernels at this level
// inherit the AVX2 implementations via the dispatch cascade.
#include "tensor/simd/kernels.h"

#if defined(__AVX512F__)
#include <immintrin.h>

#include <cstring>
#endif

namespace glsc::simd {

#if defined(__AVX512F__)

namespace {

constexpr std::int64_t kMr = 12;
constexpr std::int64_t kNr = 32;

void GemmMicroAvx512(std::int64_t kb, const float* a_panel,
                     const float* b_panel, float alpha, float* c,
                     std::int64_t ldc, std::int64_t ib, std::int64_t jb) {
  __m512 acc[kMr][2];
  for (std::int64_t i = 0; i < kMr; ++i) {
    acc[i][0] = _mm512_setzero_ps();
    acc[i][1] = _mm512_setzero_ps();
  }
  // Warm the C tile while the k-loop runs; the write-back below touches it.
  for (std::int64_t i = 0; i < ib; ++i) {
    _mm_prefetch(reinterpret_cast<const char*>(c + i * ldc), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(c + i * ldc + 16), _MM_HINT_T0);
  }
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* arow = a_panel + p * kMr;
    const float* brow = b_panel + p * kNr;
    _mm_prefetch(reinterpret_cast<const char*>(brow + 8 * kNr), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(brow + 8 * kNr + 16),
                 _MM_HINT_T0);
    const __m512 b0 = _mm512_load_ps(brow);
    const __m512 b1 = _mm512_load_ps(brow + 16);
    for (std::int64_t i = 0; i < kMr; ++i) {
      const __m512 av = _mm512_set1_ps(arow[i]);
      acc[i][0] = _mm512_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm512_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  const __m512 valpha = _mm512_set1_ps(alpha);
  if (ib == kMr && jb == kNr) {
    for (std::int64_t i = 0; i < kMr; ++i) {
      float* crow = c + i * ldc;
      _mm512_storeu_ps(
          crow, _mm512_fmadd_ps(valpha, acc[i][0], _mm512_loadu_ps(crow)));
      _mm512_storeu_ps(crow + 16, _mm512_fmadd_ps(valpha, acc[i][1],
                                                  _mm512_loadu_ps(crow + 16)));
    }
    return;
  }
  // Ragged edges: masked stores cover partial tile widths.
  const __mmask16 mask0 =
      jb >= 16 ? static_cast<__mmask16>(0xFFFF)
               : static_cast<__mmask16>((1u << jb) - 1);
  const __mmask16 mask1 =
      jb >= kNr ? static_cast<__mmask16>(0xFFFF)
                : (jb > 16 ? static_cast<__mmask16>((1u << (jb - 16)) - 1)
                           : static_cast<__mmask16>(0));
  for (std::int64_t i = 0; i < ib; ++i) {
    float* crow = c + i * ldc;
    const __m512 c0 = _mm512_maskz_loadu_ps(mask0, crow);
    _mm512_mask_storeu_ps(crow, mask0,
                          _mm512_fmadd_ps(valpha, acc[i][0], c0));
    if (mask1 != 0) {
      const __m512 c1 = _mm512_maskz_loadu_ps(mask1, crow + 16);
      _mm512_mask_storeu_ps(crow + 16, mask1,
                            _mm512_fmadd_ps(valpha, acc[i][1], c1));
    }
  }
}

#if defined(__AVX512BW__)

// ---- container byte filters ----
// AVX-512 movemask construction: _mm512_movepi8_mask extracts the MSB of all
// 64 bytes (eight 8-byte groups) in one instruction. These use AVX512BW
// byte ops, which DetectIsa() does NOT probe (it gates kAVX512 on avx512f
// alone for the float kernels), so GetAvx512Table() below only installs them
// after an explicit runtime avx512bw check. Byte-identical to scalar.

void BitTransposeAvx512(const std::uint8_t* src, std::uint8_t* dst,
                        std::int64_t n) {
  const std::int64_t stride = n / 8;
  std::int64_t j = 0;
  for (; j + 8 <= stride; j += 8) {
    __m512i x =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + 8 * j));
    for (int b = 7; b >= 0; --b) {
      const std::uint64_t mask = _cvtmask64_u64(_mm512_movepi8_mask(x));
      std::memcpy(dst + b * stride + j, &mask, sizeof mask);
      x = _mm512_add_epi8(x, x);
    }
  }
  for (; j < stride; ++j) {
    for (int b = 0; b < 8; ++b) {
      std::uint8_t out = 0;
      for (int t = 0; t < 8; ++t) {
        out |= static_cast<std::uint8_t>(((src[8 * j + t] >> b) & 1) << t);
      }
      dst[b * stride + j] = out;
    }
  }
}

void DeltaEncodeAvx512(const std::uint8_t* src, std::uint8_t* dst,
                       std::int64_t n, std::int64_t lag) {
  const std::int64_t head = lag < n ? lag : n;
  std::memcpy(dst, src, static_cast<std::size_t>(head));
  std::int64_t i = head;
  for (; i + 64 <= n; i += 64) {
    const __m512i cur =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + i));
    const __m512i prev =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + i - lag));
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                        _mm512_sub_epi8(cur, prev));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(src[i] - src[i - lag]);
}

#endif  // defined(__AVX512BW__)

const KernelTable kAvx512Table = {
    IsaLevel::kAVX512,
    kMr,
    kNr,
    GemmMicroAvx512,
    nullptr,  // silu_fwd      (inherited from AVX2)
    nullptr,  // silu_bwd
    nullptr,  // softmax_row
    nullptr,  // moments
    nullptr,  // norm_affine
    nullptr,  // norm_affine_vec
    nullptr,  // bias_act_row
    nullptr,  // shuffle_bytes
    nullptr,  // unshuffle_bytes
    nullptr,  // bit_transpose   (installed at runtime when avx512bw exists)
    nullptr,  // bit_untranspose (inherited from AVX2)
    nullptr,  // delta_encode    (installed at runtime when avx512bw exists)
    nullptr,  // delta_decode    (inherited from SSE2)
};

}  // namespace

const KernelTable* GetAvx512Table() {
  // avx512f guarantees the GEMM kernel only; the byte filters need avx512bw
  // (movepi8_mask / add_epi8 on zmm), present on every server part since
  // Skylake-SP but absent on Knights-family avx512f-only CPUs.
  static const KernelTable table = [] {
    KernelTable t = kAvx512Table;
#if defined(__AVX512BW__)
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512bw")) {
      t.bit_transpose = BitTransposeAvx512;
      t.delta_encode = DeltaEncodeAvx512;
    }
#endif
    return t;
  }();
  return &table;
}

#else  // !defined(__AVX512F__)

const KernelTable* GetAvx512Table() { return nullptr; }

#endif

}  // namespace glsc::simd
