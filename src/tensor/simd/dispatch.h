// Runtime CPU-feature dispatch for the SIMD compute backend.
//
// Every hot kernel (GEMM micro-kernel, activations, softmax, normalization
// moments, GEMM epilogues, …) exists in up to four variants — portable
// scalar, SSE2, AVX2+FMA and AVX-512 — collected in a KernelTable
// (kernels.h). The variant is chosen once, at first use, from CPUID plus two
// environment overrides:
//
//   GLSC_FORCE_SCALAR=1      force the scalar reference kernels
//   GLSC_ISA=scalar|sse2|avx2|avx512  cap the dispatch level explicitly
//
// An override can only lower the level below what the CPU supports; asking
// for AVX2 on a non-AVX2 host silently falls back to the best available.
// Tests use ScopedIsaOverride to exercise every level in-process.
#pragma once

namespace glsc::simd {

enum class IsaLevel { kScalar = 0, kSSE2 = 1, kAVX2 = 2, kAVX512 = 3 };

// Highest level this CPU supports (ignores environment overrides).
IsaLevel DetectedIsa();

// Level the dispatcher resolves to: min(DetectedIsa, env caps), unless an
// override is active, in which case the override wins.
IsaLevel ActiveIsa();

const char* IsaName(IsaLevel level);

// RAII pin of the dispatch level, for tests and benchmarks that compare
// levels within one process. Requested levels above DetectedIsa() are
// clamped. Not thread-safe: establish overrides from a single thread only.
class ScopedIsaOverride {
 public:
  explicit ScopedIsaOverride(IsaLevel level);
  ~ScopedIsaOverride();
  ScopedIsaOverride(const ScopedIsaOverride&) = delete;
  ScopedIsaOverride& operator=(const ScopedIsaOverride&) = delete;

 private:
  bool had_previous_;
  IsaLevel previous_;
};

}  // namespace glsc::simd
