// Portable scalar reference kernels. These define the semantics every SIMD
// variant approximates; they are also the GLSC_FORCE_SCALAR fallback and the
// baseline the micro-benchmarks compare against.
#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/simd/kernels.h"

namespace glsc::simd {
namespace {

constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 8;

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

void GemmMicroScalar(std::int64_t kb, const float* a_panel,
                     const float* b_panel, float alpha, float* c,
                     std::int64_t ldc, std::int64_t ib, std::int64_t jb) {
  float acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* arow = a_panel + p * kMr;
    const float* brow = b_panel + p * kNr;
    for (std::int64_t i = 0; i < kMr; ++i) {
      const float av = arow[i];
      for (std::int64_t j = 0; j < kNr; ++j) {
        acc[i][j] += av * brow[j];
      }
    }
  }
  for (std::int64_t i = 0; i < ib; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < jb; ++j) {
      crow[j] += alpha * acc[i][j];
    }
  }
}

void SiluFwdScalar(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] * Sigmoid(x[i]);
}

void SiluBwdScalar(const float* x, const float* g, float* out,
                   std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float s = Sigmoid(x[i]);
    out[i] = g[i] * s * (1.0f + x[i] * (1.0f - s));
  }
}

void SoftmaxRowScalar(float* row, std::int64_t n) {
  float mx = row[0];
  for (std::int64_t i = 1; i < n; ++i) mx = std::max(mx, row[i]);
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    row[i] = std::exp(row[i] - mx);
    sum += row[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::int64_t i = 0; i < n; ++i) row[i] *= inv;
}

void MomentsScalar(const float* x, std::int64_t n, double* sum,
                   double* sumsq) {
  double s = 0.0, sq = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    s += x[i];
    sq += static_cast<double>(x[i]) * x[i];
  }
  *sum = s;
  *sumsq = sq;
}

void NormAffineScalar(const float* x, float mean, float inv_std, float gamma,
                      float beta, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = gamma * ((x[i] - mean) * inv_std) + beta;
  }
}

void NormAffineVecScalar(const float* x, float mean, float inv_std,
                         const float* gamma, const float* beta, float* y,
                         std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = gamma[i] * ((x[i] - mean) * inv_std) + beta[i];
  }
}

// ---- container byte filters ----
// These define the bit-exact semantics every SIMD level must reproduce
// byte for byte (see the contract note in kernels.h).

void ShuffleBytesScalar(const std::uint8_t* src, std::uint8_t* dst,
                        std::int64_t nelem, std::int64_t elem) {
  for (std::int64_t k = 0; k < elem; ++k) {
    std::uint8_t* plane = dst + k * nelem;
    const std::uint8_t* from = src + k;
    for (std::int64_t i = 0; i < nelem; ++i) plane[i] = from[i * elem];
  }
}

void UnshuffleBytesScalar(const std::uint8_t* src, std::uint8_t* dst,
                          std::int64_t nelem, std::int64_t elem) {
  for (std::int64_t k = 0; k < elem; ++k) {
    const std::uint8_t* plane = src + k * nelem;
    std::uint8_t* to = dst + k;
    for (std::int64_t i = 0; i < nelem; ++i) to[i * elem] = plane[i];
  }
}

// 8x8 bit-matrix transpose (Hacker's Delight 7-2): byte i bit j <-> byte j
// bit i of the little-endian packed word.
inline std::uint64_t Transpose8x8(std::uint64_t x) {
  std::uint64_t t;
  t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x = x ^ t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x = x ^ t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x = x ^ t ^ (t << 28);
  return x;
}

void BitTransposeScalar(const std::uint8_t* src, std::uint8_t* dst,
                        std::int64_t n) {
  const std::int64_t stride = n / 8;
  for (std::int64_t j = 0; j < stride; ++j) {
    std::uint64_t x;
    std::memcpy(&x, src + 8 * j, sizeof x);
    x = Transpose8x8(x);
    for (int b = 0; b < 8; ++b) {
      dst[b * stride + j] = static_cast<std::uint8_t>(x >> (8 * b));
    }
  }
}

void BitUntransposeScalar(const std::uint8_t* src, std::uint8_t* dst,
                          std::int64_t n) {
  const std::int64_t stride = n / 8;
  for (std::int64_t j = 0; j < stride; ++j) {
    std::uint64_t x = 0;
    for (int b = 0; b < 8; ++b) {
      x |= static_cast<std::uint64_t>(src[b * stride + j]) << (8 * b);
    }
    x = Transpose8x8(x);
    std::memcpy(dst + 8 * j, &x, sizeof x);
  }
}

void DeltaEncodeScalar(const std::uint8_t* src, std::uint8_t* dst,
                       std::int64_t n, std::int64_t lag) {
  const std::int64_t head = std::min(lag, n);
  for (std::int64_t i = 0; i < head; ++i) dst[i] = src[i];
  for (std::int64_t i = head; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(src[i] - src[i - lag]);
  }
}

void DeltaDecodeScalar(std::uint8_t* buf, std::int64_t n, std::int64_t lag) {
  for (std::int64_t i = lag; i < n; ++i) {
    buf[i] = static_cast<std::uint8_t>(buf[i] + buf[i - lag]);
  }
}

void BiasActRowScalar(float* row, std::int64_t n, float row_bias,
                      const float* col_bias, int act) {
  if (col_bias != nullptr) {
    for (std::int64_t j = 0; j < n; ++j) row[j] += col_bias[j];
  } else {
    for (std::int64_t j = 0; j < n; ++j) row[j] += row_bias;
  }
  if (act == kActSiLU) {
    for (std::int64_t j = 0; j < n; ++j) row[j] *= Sigmoid(row[j]);
  }
}

const KernelTable kScalarTable = {
    IsaLevel::kScalar,
    kMr,
    kNr,
    GemmMicroScalar,
    SiluFwdScalar,
    SiluBwdScalar,
    SoftmaxRowScalar,
    MomentsScalar,
    NormAffineScalar,
    NormAffineVecScalar,
    BiasActRowScalar,
    ShuffleBytesScalar,
    UnshuffleBytesScalar,
    BitTransposeScalar,
    BitUntransposeScalar,
    DeltaEncodeScalar,
    DeltaDecodeScalar,
};

}  // namespace

const KernelTable* GetScalarTable() { return &kScalarTable; }

}  // namespace glsc::simd
