// Portable scalar reference kernels. These define the semantics every SIMD
// variant approximates; they are also the GLSC_FORCE_SCALAR fallback and the
// baseline the micro-benchmarks compare against.
#include <algorithm>
#include <cmath>

#include "tensor/simd/kernels.h"

namespace glsc::simd {
namespace {

constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 8;

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

void GemmMicroScalar(std::int64_t kb, const float* a_panel,
                     const float* b_panel, float alpha, float* c,
                     std::int64_t ldc, std::int64_t ib, std::int64_t jb) {
  float acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* arow = a_panel + p * kMr;
    const float* brow = b_panel + p * kNr;
    for (std::int64_t i = 0; i < kMr; ++i) {
      const float av = arow[i];
      for (std::int64_t j = 0; j < kNr; ++j) {
        acc[i][j] += av * brow[j];
      }
    }
  }
  for (std::int64_t i = 0; i < ib; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < jb; ++j) {
      crow[j] += alpha * acc[i][j];
    }
  }
}

void SiluFwdScalar(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] * Sigmoid(x[i]);
}

void SiluBwdScalar(const float* x, const float* g, float* out,
                   std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float s = Sigmoid(x[i]);
    out[i] = g[i] * s * (1.0f + x[i] * (1.0f - s));
  }
}

void SoftmaxRowScalar(float* row, std::int64_t n) {
  float mx = row[0];
  for (std::int64_t i = 1; i < n; ++i) mx = std::max(mx, row[i]);
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    row[i] = std::exp(row[i] - mx);
    sum += row[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::int64_t i = 0; i < n; ++i) row[i] *= inv;
}

void MomentsScalar(const float* x, std::int64_t n, double* sum,
                   double* sumsq) {
  double s = 0.0, sq = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    s += x[i];
    sq += static_cast<double>(x[i]) * x[i];
  }
  *sum = s;
  *sumsq = sq;
}

void NormAffineScalar(const float* x, float mean, float inv_std, float gamma,
                      float beta, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = gamma * ((x[i] - mean) * inv_std) + beta;
  }
}

void NormAffineVecScalar(const float* x, float mean, float inv_std,
                         const float* gamma, const float* beta, float* y,
                         std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = gamma[i] * ((x[i] - mean) * inv_std) + beta[i];
  }
}

void BiasActRowScalar(float* row, std::int64_t n, float row_bias,
                      const float* col_bias, int act) {
  if (col_bias != nullptr) {
    for (std::int64_t j = 0; j < n; ++j) row[j] += col_bias[j];
  } else {
    for (std::int64_t j = 0; j < n; ++j) row[j] += row_bias;
  }
  if (act == kActSiLU) {
    for (std::int64_t j = 0; j < n; ++j) row[j] *= Sigmoid(row[j]);
  }
}

const KernelTable kScalarTable = {
    IsaLevel::kScalar,
    kMr,
    kNr,
    GemmMicroScalar,
    SiluFwdScalar,
    SiluBwdScalar,
    SoftmaxRowScalar,
    MomentsScalar,
    NormAffineScalar,
    NormAffineVecScalar,
    BiasActRowScalar,
};

}  // namespace

const KernelTable* GetScalarTable() { return &kScalarTable; }

}  // namespace glsc::simd
