// AVX2+FMA kernels. This translation unit is compiled with -mavx2 -mfma (see
// CMakeLists.txt); nothing here may be called unless runtime dispatch
// established AVX2 support, so keeping the flags file-local is safe — the
// pattern follows c-blosc2's per-ISA shuffle units.
#include "tensor/simd/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#endif

namespace glsc::simd {

#if defined(__AVX2__) && defined(__FMA__)

namespace {

constexpr std::int64_t kMr = 6;
constexpr std::int64_t kNr = 16;

// 8-lane expf, Cephes polynomial (as popularized by avx_mathfun): relative
// error ~2e-7 over the clamped range, which is well inside every consumer's
// tolerance (softmax renormalizes; SiLU feeds gradcheck at eps 1e-2).
inline __m256 Exp256(__m256 x) {
  const __m256 hi = _mm256_set1_ps(88.3762626647949f);
  const __m256 lo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(_mm256_max_ps(x, lo), hi);
  __m256 fx = _mm256_fmadd_ps(x, log2e, _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  // x -= fx * ln2, split into a high and a low part for extra precision.
  x = _mm256_fnmadd_ps(fx, c1, x);
  x = _mm256_fnmadd_ps(fx, c2, x);

  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, one);

  // 2^fx via exponent-field construction.
  __m256i n = _mm256_cvttps_epi32(fx);
  n = _mm256_add_epi32(n, _mm256_set1_epi32(0x7f));
  n = _mm256_slli_epi32(n, 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

// sigmoid(x) = 1 / (1 + exp(-x))
inline __m256 Sigmoid256(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = Exp256(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

inline float SigmoidScalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }

inline float HSum256(__m256 v) {
  const __m128 s =
      _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  const __m128 t = _mm_add_ps(s, _mm_movehl_ps(s, s));
  const __m128 u = _mm_add_ss(t, _mm_shuffle_ps(t, t, 1));
  return _mm_cvtss_f32(u);
}

inline double HSum256d(__m256d v) {
  const __m128d s =
      _mm_add_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd(v, 1));
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

// 6x16 register tile: 12 accumulator ymm registers, two B loads and one A
// broadcast live per k step — 15 of the 16 architectural registers.
void GemmMicroAvx2(std::int64_t kb, const float* a_panel, const float* b_panel,
                   float alpha, float* c, std::int64_t ldc, std::int64_t ib,
                   std::int64_t jb) {
  __m256 acc[kMr][2];
  for (std::int64_t i = 0; i < kMr; ++i) {
    acc[i][0] = _mm256_setzero_ps();
    acc[i][1] = _mm256_setzero_ps();
  }
  // Warm the C tile while the k-loop runs; the write-back below touches it.
  for (std::int64_t i = 0; i < ib; ++i) {
    _mm_prefetch(reinterpret_cast<const char*>(c + i * ldc), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(c + i * ldc + 15), _MM_HINT_T0);
  }
  // Two k-steps per iteration: halves the loop-carried overhead and lets the
  // scheduler interleave the two independent FMA waves.
  std::int64_t p = 0;
  for (; p + 2 <= kb; p += 2) {
    const float* arow = a_panel + p * kMr;
    const float* brow = b_panel + p * kNr;
    _mm_prefetch(reinterpret_cast<const char*>(brow + 8 * kNr), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(brow + 8 * kNr + 16),
                 _MM_HINT_T0);
    const __m256 b0 = _mm256_load_ps(brow);
    const __m256 b1 = _mm256_load_ps(brow + 8);
    for (std::int64_t i = 0; i < kMr; ++i) {
      const __m256 av = _mm256_broadcast_ss(arow + i);
      acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
    }
    const __m256 b2 = _mm256_load_ps(brow + kNr);
    const __m256 b3 = _mm256_load_ps(brow + kNr + 8);
    for (std::int64_t i = 0; i < kMr; ++i) {
      const __m256 av = _mm256_broadcast_ss(arow + kMr + i);
      acc[i][0] = _mm256_fmadd_ps(av, b2, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b3, acc[i][1]);
    }
  }
  if (p < kb) {
    const float* arow = a_panel + p * kMr;
    const __m256 b0 = _mm256_load_ps(b_panel + p * kNr);
    const __m256 b1 = _mm256_load_ps(b_panel + p * kNr + 8);
    for (std::int64_t i = 0; i < kMr; ++i) {
      const __m256 av = _mm256_broadcast_ss(arow + i);
      acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  const __m256 valpha = _mm256_set1_ps(alpha);
  if (ib == kMr && jb == kNr) {
    for (std::int64_t i = 0; i < kMr; ++i) {
      float* crow = c + i * ldc;
      _mm256_storeu_ps(
          crow, _mm256_fmadd_ps(valpha, acc[i][0], _mm256_loadu_ps(crow)));
      _mm256_storeu_ps(crow + 8, _mm256_fmadd_ps(valpha, acc[i][1],
                                                 _mm256_loadu_ps(crow + 8)));
    }
    return;
  }
  alignas(32) float buf[kMr][kNr];
  for (std::int64_t i = 0; i < kMr; ++i) {
    _mm256_store_ps(buf[i], acc[i][0]);
    _mm256_store_ps(buf[i] + 8, acc[i][1]);
  }
  for (std::int64_t i = 0; i < ib; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < jb; ++j) crow[j] += alpha * buf[i][j];
  }
}

void SiluFwdAvx2(const float* x, float* y, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(y + i, _mm256_mul_ps(v, Sigmoid256(v)));
  }
  for (; i < n; ++i) y[i] = x[i] * SigmoidScalar(x[i]);
}

void SiluBwdAvx2(const float* x, const float* g, float* out, std::int64_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 s = Sigmoid256(v);
    // g * s * (1 + x * (1 - s))
    const __m256 t = _mm256_fmadd_ps(v, _mm256_sub_ps(one, s), one);
    _mm256_storeu_ps(out + i,
                     _mm256_mul_ps(_mm256_loadu_ps(g + i), _mm256_mul_ps(s, t)));
  }
  for (; i < n; ++i) {
    const float s = SigmoidScalar(x[i]);
    out[i] = g[i] * s * (1.0f + x[i] * (1.0f - s));
  }
}

void SoftmaxRowAvx2(float* row, std::int64_t n) {
  std::int64_t i = 0;
  float mx;
  if (n >= 8) {
    __m256 vmax = _mm256_loadu_ps(row);
    for (i = 8; i + 8 <= n; i += 8) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row + i));
    }
    const __m128 m4 = _mm_max_ps(_mm256_castps256_ps128(vmax),
                                 _mm256_extractf128_ps(vmax, 1));
    const __m128 m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    mx = _mm_cvtss_f32(_mm_max_ss(m2, _mm_shuffle_ps(m2, m2, 1)));
  } else {
    mx = row[0];
    i = 1;
  }
  for (; i < n; ++i) mx = std::max(mx, row[i]);

  const __m256 vmx = _mm256_set1_ps(mx);
  __m256 vsum = _mm256_setzero_ps();
  double sum = 0.0;
  for (i = 0; i + 8 <= n; i += 8) {
    const __m256 e = Exp256(_mm256_sub_ps(_mm256_loadu_ps(row + i), vmx));
    _mm256_storeu_ps(row + i, e);
    vsum = _mm256_add_ps(vsum, e);
  }
  sum += static_cast<double>(HSum256(vsum));
  for (; i < n; ++i) {
    row[i] = std::exp(row[i] - mx);
    sum += row[i];
  }
  const __m256 vinv = _mm256_set1_ps(static_cast<float>(1.0 / sum));
  for (i = 0; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(row + i, _mm256_mul_ps(_mm256_loadu_ps(row + i), vinv));
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (; i < n; ++i) row[i] *= inv;
}

void MomentsAvx2(const float* x, std::int64_t n, double* sum, double* sumsq) {
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  __m256d q0 = _mm256_setzero_pd(), q1 = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    s0 = _mm256_add_pd(s0, lo);
    s1 = _mm256_add_pd(s1, hi);
    q0 = _mm256_fmadd_pd(lo, lo, q0);
    q1 = _mm256_fmadd_pd(hi, hi, q1);
  }
  double s = HSum256d(_mm256_add_pd(s0, s1));
  double q = HSum256d(_mm256_add_pd(q0, q1));
  for (; i < n; ++i) {
    s += x[i];
    q += static_cast<double>(x[i]) * x[i];
  }
  *sum = s;
  *sumsq = q;
}

void NormAffineAvx2(const float* x, float mean, float inv_std, float gamma,
                    float beta, float* y, std::int64_t n) {
  const __m256 vmean = _mm256_set1_ps(mean);
  const __m256 vinv = _mm256_set1_ps(inv_std);
  const __m256 vgamma = _mm256_set1_ps(gamma);
  const __m256 vbeta = _mm256_set1_ps(beta);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xhat = _mm256_mul_ps(
        _mm256_sub_ps(_mm256_loadu_ps(x + i), vmean), vinv);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(vgamma, xhat, vbeta));
  }
  for (; i < n; ++i) y[i] = gamma * ((x[i] - mean) * inv_std) + beta;
}

void NormAffineVecAvx2(const float* x, float mean, float inv_std,
                       const float* gamma, const float* beta, float* y,
                       std::int64_t n) {
  const __m256 vmean = _mm256_set1_ps(mean);
  const __m256 vinv = _mm256_set1_ps(inv_std);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xhat = _mm256_mul_ps(
        _mm256_sub_ps(_mm256_loadu_ps(x + i), vmean), vinv);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(_mm256_loadu_ps(gamma + i), xhat,
                                            _mm256_loadu_ps(beta + i)));
  }
  for (; i < n; ++i) y[i] = gamma[i] * ((x[i] - mean) * inv_std) + beta[i];
}

void BiasActRowAvx2(float* row, std::int64_t n, float row_bias,
                    const float* col_bias, int act) {
  std::int64_t i = 0;
  if (col_bias != nullptr) {
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(row + i, _mm256_add_ps(_mm256_loadu_ps(row + i),
                                              _mm256_loadu_ps(col_bias + i)));
    }
    for (; i < n; ++i) row[i] += col_bias[i];
  } else {
    const __m256 vb = _mm256_set1_ps(row_bias);
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(row + i, _mm256_add_ps(_mm256_loadu_ps(row + i), vb));
    }
    for (; i < n; ++i) row[i] += row_bias;
  }
  if (act == kActSiLU) {
    for (i = 0; i + 8 <= n; i += 8) {
      const __m256 v = _mm256_loadu_ps(row + i);
      _mm256_storeu_ps(row + i, _mm256_mul_ps(v, Sigmoid256(v)));
    }
    for (; i < n; ++i) row[i] *= SigmoidScalar(row[i]);
  }
}

// ---- container byte filters ----
// Same movemask construction as the SSE2 unit, twice as wide: a 32-byte load
// covers four 8-byte groups, _mm256_movemask_epi8 extracts one bit plane for
// all four at once, and _mm256_add_epi8(x, x) is the byte-local left shift.
// Byte-identical to the scalar reference (pure bit movement).

void BitTransposeAvx2(const std::uint8_t* src, std::uint8_t* dst,
                      std::int64_t n) {
  const std::int64_t stride = n / 8;
  std::int64_t j = 0;
  for (; j + 4 <= stride; j += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 8 * j));
    for (int b = 7; b >= 0; --b) {
      const std::uint32_t mask =
          static_cast<std::uint32_t>(_mm256_movemask_epi8(x));
      std::memcpy(dst + b * stride + j, &mask, sizeof mask);
      x = _mm256_add_epi8(x, x);
    }
  }
  for (; j < stride; ++j) {
    for (int b = 0; b < 8; ++b) {
      std::uint8_t out = 0;
      for (int t = 0; t < 8; ++t) {
        out |= static_cast<std::uint8_t>(((src[8 * j + t] >> b) & 1) << t);
      }
      dst[b * stride + j] = out;
    }
  }
}

void BitUntransposeAvx2(const std::uint8_t* src, std::uint8_t* dst,
                        std::int64_t n) {
  const std::int64_t stride = n / 8;
  std::int64_t j = 0;
  // 32 groups per iteration. AVX2 unpacks operate per 128-bit lane, so the
  // 3-stage byte-transpose tree from the SSE2 unit lands columns j..j+16 in
  // lane 0 and columns j+16..j+32 in lane 1 of each register; the movemask
  // core then emits four output groups per mask (two per lane).
  for (; j + 32 <= stride; j += 32) {
    __m256i x[8];
    for (int b = 0; b < 8; ++b) {
      x[b] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + b * stride + j));
    }
    __m256i u[8];
    for (int b = 0; b < 4; ++b) {
      u[2 * b] = _mm256_unpacklo_epi8(x[2 * b], x[2 * b + 1]);
      u[2 * b + 1] = _mm256_unpackhi_epi8(x[2 * b], x[2 * b + 1]);
    }
    __m256i w[8];
    for (int h = 0; h < 2; ++h) {
      w[4 * h] = _mm256_unpacklo_epi16(u[h], u[2 + h]);
      w[4 * h + 1] = _mm256_unpackhi_epi16(u[h], u[2 + h]);
      w[4 * h + 2] = _mm256_unpacklo_epi16(u[4 + h], u[6 + h]);
      w[4 * h + 3] = _mm256_unpackhi_epi16(u[4 + h], u[6 + h]);
    }
    __m256i r[8];
    for (int h = 0; h < 2; ++h) {
      r[4 * h] = _mm256_unpacklo_epi32(w[4 * h], w[4 * h + 2]);
      r[4 * h + 1] = _mm256_unpackhi_epi32(w[4 * h], w[4 * h + 2]);
      r[4 * h + 2] = _mm256_unpacklo_epi32(w[4 * h + 1], w[4 * h + 3]);
      r[4 * h + 3] = _mm256_unpackhi_epi32(w[4 * h + 1], w[4 * h + 3]);
    }
    for (int h = 0; h < 2; ++h) {
      for (int c = 0; c < 4; ++c) {
        __m256i v = r[4 * h + c];
        // Lane 0 = columns g0, g0+1; lane 1 = columns g0+16, g0+17.
        const std::int64_t g0 = j + 8 * h + 2 * c;
        for (int s = 0; s < 8; ++s) {
          const std::uint32_t mask =
              static_cast<std::uint32_t>(_mm256_movemask_epi8(v));
          dst[8 * g0 + 7 - s] = static_cast<std::uint8_t>(mask & 0xFF);
          dst[8 * (g0 + 1) + 7 - s] =
              static_cast<std::uint8_t>((mask >> 8) & 0xFF);
          dst[8 * (g0 + 16) + 7 - s] =
              static_cast<std::uint8_t>((mask >> 16) & 0xFF);
          dst[8 * (g0 + 17) + 7 - s] =
              static_cast<std::uint8_t>(mask >> 24);
          v = _mm256_add_epi8(v, v);
        }
      }
    }
  }
  for (; j < stride; ++j) {
    for (int t = 0; t < 8; ++t) {
      std::uint8_t out = 0;
      for (int b = 0; b < 8; ++b) {
        out |= static_cast<std::uint8_t>(((src[b * stride + j] >> t) & 1)
                                         << b);
      }
      dst[8 * j + t] = out;
    }
  }
}

void DeltaEncodeAvx2(const std::uint8_t* src, std::uint8_t* dst,
                     std::int64_t n, std::int64_t lag) {
  const std::int64_t head = lag < n ? lag : n;
  std::memcpy(dst, src, static_cast<std::size_t>(head));
  std::int64_t i = head;
  for (; i + 32 <= n; i += 32) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i - lag));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_sub_epi8(cur, prev));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(src[i] - src[i - lag]);
}

const KernelTable kAvx2Table = {
    IsaLevel::kAVX2,
    kMr,
    kNr,
    GemmMicroAvx2,
    SiluFwdAvx2,
    SiluBwdAvx2,
    SoftmaxRowAvx2,
    MomentsAvx2,
    NormAffineAvx2,
    NormAffineVecAvx2,
    BiasActRowAvx2,
    nullptr,  // shuffle_bytes   (inherited from scalar)
    nullptr,  // unshuffle_bytes (inherited from scalar)
    BitTransposeAvx2,
    BitUntransposeAvx2,
    DeltaEncodeAvx2,
    nullptr,  // delta_decode    (inherited from SSE2 — the scan is shuffle-
              // bound in 128-bit steps either way)
};

}  // namespace

const KernelTable* GetAvx2Table() { return &kAvx2Table; }

#else  // !(__AVX2__ && __FMA__)

const KernelTable* GetAvx2Table() { return nullptr; }

#endif

}  // namespace glsc::simd
