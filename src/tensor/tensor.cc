#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <numeric>
#include <sstream>

#include "tensor/workspace.h"

namespace glsc {
namespace {

// Owned storage is 64-byte aligned so every tensor (not just arena views)
// satisfies the widest SIMD alignment the AVX-512 kernels could use.
constexpr std::size_t kTensorAlignment = 64;

struct AlignedDeleter {
  void operator()(float* p) const {
    ::operator delete[](p, std::align_val_t{kTensorAlignment});
  }
};

}  // namespace

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ",";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

std::int64_t ShapeNumel(const Shape& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    GLSC_CHECK_MSG(d >= 0, "negative dim in " << ShapeToString(shape));
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape) {
  *this = Empty(std::move(shape));
  std::fill_n(ptr_, numel(), 0.0f);
}

Tensor::Tensor(Shape shape, std::vector<float> values) {
  GLSC_CHECK_MSG(static_cast<std::int64_t>(values.size()) == ShapeNumel(shape),
                 "value count " << values.size() << " != numel of "
                                << ShapeToString(shape));
  shape_ = std::move(shape);
  auto vec = std::make_shared<std::vector<float>>(std::move(values));
  ptr_ = vec->data();
  storage_ = std::move(vec);
  defined_ = true;
}

Tensor Tensor::Empty(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  const std::size_t n = static_cast<std::size_t>(ShapeNumel(t.shape_));
  float* raw = static_cast<float*>(::operator new[](
      n * sizeof(float), std::align_val_t{kTensorAlignment}));
  t.storage_ = std::shared_ptr<float>(raw, AlignedDeleter{});
  t.ptr_ = raw;
  t.defined_ = true;
  return t;
}

Tensor Tensor::Borrowed(float* data, Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.ptr_ = data;
  t.defined_ = true;
  return t;
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t = Empty(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev) {
  Tensor t = Empty(std::move(shape));
  float* p = t.data();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = stddev * rng.NormalF();
  return t;
}

Tensor Tensor::Uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = Empty(std::move(shape));
  float* p = t.data();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = rng.UniformF(lo, hi);
  return t;
}

Tensor Tensor::Arange(std::int64_t n) {
  Tensor t = Empty({n});
  for (std::int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

float& Tensor::At(std::initializer_list<std::int64_t> idx) {
  CheckArenaBorrow();
  GLSC_DCHECK(idx.size() == shape_.size());
  std::int64_t flat = 0;
  std::size_t axis = 0;
  for (const auto i : idx) {
    GLSC_DCHECK(i >= 0 && i < shape_[axis]);
    flat = flat * shape_[axis] + i;
    ++axis;
  }
  return ptr_[flat];
}

float Tensor::At(std::initializer_list<std::int64_t> idx) const {
  return const_cast<Tensor*>(this)->At(idx);
}

Tensor Tensor::Clone() const {
  GLSC_CHECK(defined());
  CheckArenaBorrow();
  Tensor t = Empty(shape_);
  if (numel() > 0) std::copy_n(ptr_, numel(), t.ptr_);
  return t;
}

Tensor Tensor::Reshape(Shape shape) const {
  GLSC_CHECK_MSG(ShapeNumel(shape) == numel(),
                 "reshape " << ShapeToString(shape_) << " -> "
                            << ShapeToString(shape) << " changes numel");
  Tensor t;
  t.shape_ = std::move(shape);
  t.storage_ = storage_;
  t.ptr_ = ptr_;
  t.defined_ = defined_;
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  // A reshaped view of an arena borrow is the same borrow.
  t.arena_ = arena_;
  t.arena_serial_ = arena_serial_;
#endif
  return t;
}

void Tensor::PermuteInto(const std::vector<int>& perm, Tensor* out) const {
  const std::size_t r = rank();
  const Shape& out_shape = out->shape();

  // Compute input strides, then iterate output positions in order.
  std::vector<std::int64_t> in_strides(r, 1);
  for (std::size_t i = r - 1; i > 0; --i) {
    in_strides[i - 1] = in_strides[i] * shape_[i];
  }
  std::vector<std::int64_t> out_to_in_stride(r);
  for (std::size_t i = 0; i < r; ++i) out_to_in_stride[i] = in_strides[perm[i]];

  const float* src = data();
  float* dst = out->data();
  std::vector<std::int64_t> idx(r, 0);
  const std::int64_t n = numel();
  std::int64_t in_off = 0;
  for (std::int64_t flat = 0; flat < n; ++flat) {
    dst[flat] = src[in_off];
    // Increment the mixed-radix output index, tracking the input offset.
    for (std::size_t axis = r; axis-- > 0;) {
      idx[axis]++;
      in_off += out_to_in_stride[axis];
      if (idx[axis] < out_shape[axis]) break;
      in_off -= out_to_in_stride[axis] * out_shape[axis];
      idx[axis] = 0;
    }
  }
}

Tensor Tensor::Permute(const std::vector<int>& perm) const {
  GLSC_CHECK(perm.size() == shape_.size());
  const std::size_t r = rank();
  GLSC_CHECK_MSG(r <= 5, "Permute supports rank<=5");
  Shape out_shape(r);
  for (std::size_t i = 0; i < r; ++i) out_shape[i] = shape_[perm[i]];
  Tensor out = Empty(std::move(out_shape));
  PermuteInto(perm, &out);
  return out;
}

Tensor Tensor::Permute(const std::vector<int>& perm,
                       tensor::Workspace* ws) const {
  GLSC_CHECK(perm.size() == shape_.size());
  const std::size_t r = rank();
  GLSC_CHECK_MSG(r <= 5, "Permute supports rank<=5");
  Shape out_shape(r);
  for (std::size_t i = 0; i < r; ++i) out_shape[i] = shape_[perm[i]];
  Tensor out = ws->NewTensor(std::move(out_shape));
  PermuteInto(perm, &out);
  return out;
}

Tensor Tensor::Slice0(std::int64_t begin, std::int64_t end) const {
  GLSC_CHECK(rank() >= 1);
  GLSC_CHECK(begin >= 0 && begin <= end && end <= shape_[0]);
  Shape out_shape = shape_;
  out_shape[0] = end - begin;
  const std::int64_t row = numel() / std::max<std::int64_t>(shape_[0], 1);
  Tensor out = Empty(out_shape);
  std::copy_n(data() + begin * row, (end - begin) * row, out.data());
  return out;
}

void Tensor::Fill(float value) {
  CheckArenaBorrow();
  std::fill_n(ptr_, numel(), value);
}

float Tensor::MinValue() const {
  GLSC_CHECK(numel() > 0);
  CheckArenaBorrow();
  return *std::min_element(ptr_, ptr_ + numel());
}

float Tensor::MaxValue() const {
  GLSC_CHECK(numel() > 0);
  CheckArenaBorrow();
  return *std::max_element(ptr_, ptr_ + numel());
}

double Tensor::Sum() const {
  CheckArenaBorrow();
  return std::accumulate(ptr_, ptr_ + numel(), 0.0);
}

double Tensor::Mean() const {
  GLSC_CHECK(numel() > 0);
  return Sum() / static_cast<double>(numel());
}

bool Tensor::AllFinite() const {
  CheckArenaBorrow();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(ptr_[i])) return false;
  }
  return true;
}

Tensor Concat0(const std::vector<Tensor>& parts) {
  GLSC_CHECK(!parts.empty());
  Shape out_shape = parts[0].shape();
  std::int64_t total = 0;
  for (const auto& p : parts) {
    GLSC_CHECK(p.rank() == out_shape.size());
    for (std::size_t i = 1; i < out_shape.size(); ++i) {
      GLSC_CHECK(p.shape()[i] == out_shape[i]);
    }
    total += p.dim(0);
  }
  out_shape[0] = total;
  Tensor out = Tensor::Empty(out_shape);
  float* dst = out.data();
  for (const auto& p : parts) {
    std::copy_n(p.data(), p.numel(), dst);
    dst += p.numel();
  }
  return out;
}

}  // namespace glsc
