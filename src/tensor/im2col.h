// im2col / col2im lowering for 2D convolutions (NCHW layout). Convolution
// forward becomes one GEMM per batch element; the backward data pass uses
// col2im to scatter-add gradients back to input positions.
#pragma once

#include <cstdint>

namespace glsc {

// Expands input[C, H, W] into columns[C*KH*KW, OH*OW] for a convolution with
// the given stride and symmetric zero padding.
void Im2Col(const float* input, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* columns);

// As Im2Col, but writes each of the C*KH*KW rows with leading dimension
// `col_ld` (in floats) instead of the packed OH*OW. Lets several frames share
// one wide column matrix: point `columns` at frame f's first column inside a
// [C*KH*KW, col_ld] buffer and the frames' patches land side by side, ready
// for a single merged GEMM.
void Im2ColLd(const float* input, std::int64_t channels, std::int64_t height,
              std::int64_t width, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad, float* columns,
              std::int64_t col_ld);

// Inverse scatter-add of Im2Col: accumulates columns back into input layout.
// `input` must be zero-initialized by the caller.
void Col2Im(const float* columns, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* input);

inline std::int64_t ConvOutDim(std::int64_t in, std::int64_t kernel,
                               std::int64_t stride, std::int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace glsc
