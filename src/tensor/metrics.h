// Reconstruction-quality metrics used throughout the evaluation. NRMSE is the
// paper's primary criterion (Eq. 12): RMSE normalized by the data range of the
// ORIGINAL field.
#pragma once

#include "tensor/tensor.h"

namespace glsc {

// Eq. (12): sqrt(||a-b||^2 / N) / (max(a) - min(a)).
double Nrmse(const Tensor& original, const Tensor& reconstructed);

// Peak signal-to-noise ratio in dB against the original's range.
double Psnr(const Tensor& original, const Tensor& reconstructed);

double MaxAbsError(const Tensor& a, const Tensor& b);

// Effective compression ratio per Eq. (11).
inline double CompressionRatio(std::size_t original_bytes,
                               std::size_t latent_bytes,
                               std::size_t guarantee_bytes) {
  const std::size_t denom = latent_bytes + guarantee_bytes;
  return denom == 0 ? 0.0
                    : static_cast<double>(original_bytes) /
                          static_cast<double>(denom);
}

}  // namespace glsc
