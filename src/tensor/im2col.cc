#include "tensor/im2col.h"

namespace glsc {

void Im2Col(const float* input, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* columns) {
  const std::int64_t oh = ConvOutDim(height, kh, stride, pad);
  const std::int64_t ow = ConvOutDim(width, kw, stride, pad);
  Im2ColLd(input, channels, height, width, kh, kw, stride, pad, columns,
           oh * ow);
}

void Im2ColLd(const float* input, std::int64_t channels, std::int64_t height,
              std::int64_t width, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad, float* columns,
              std::int64_t col_ld) {
  const std::int64_t oh = ConvOutDim(height, kh, stride, pad);
  const std::int64_t ow = ConvOutDim(width, kw, stride, pad);
  // Row index of `columns` is (c, ki, kj); column index is (oy, ox).
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* in_c = input + c * height * width;
    for (std::int64_t ki = 0; ki < kh; ++ki) {
      for (std::int64_t kj = 0; kj < kw; ++kj) {
        float* out_row = columns + ((c * kh + ki) * kw + kj) * col_ld;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride - pad + ki;
          if (iy < 0 || iy >= height) {
            for (std::int64_t ox = 0; ox < ow; ++ox) out_row[oy * ow + ox] = 0.0f;
            continue;
          }
          const float* in_row = in_c + iy * width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * stride - pad + kj;
            out_row[oy * ow + ox] =
                (ix >= 0 && ix < width) ? in_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const float* columns, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* input) {
  const std::int64_t oh = ConvOutDim(height, kh, stride, pad);
  const std::int64_t ow = ConvOutDim(width, kw, stride, pad);
  for (std::int64_t c = 0; c < channels; ++c) {
    float* in_c = input + c * height * width;
    for (std::int64_t ki = 0; ki < kh; ++ki) {
      for (std::int64_t kj = 0; kj < kw; ++kj) {
        const float* col_row = columns + ((c * kh + ki) * kw + kj) * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride - pad + ki;
          if (iy < 0 || iy >= height) continue;
          float* in_row = in_c + iy * width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * stride - pad + kj;
            if (ix >= 0 && ix < width) in_row[ix] += col_row[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace glsc
