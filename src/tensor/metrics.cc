#include "tensor/metrics.h"

#include <cmath>

#include "tensor/ops.h"

namespace glsc {

double Nrmse(const Tensor& original, const Tensor& reconstructed) {
  GLSC_CHECK(original.shape() == reconstructed.shape());
  const double mse = MeanSquaredError(original, reconstructed);
  const double range =
      static_cast<double>(original.MaxValue()) - original.MinValue();
  if (range <= 0.0) return std::sqrt(mse);  // constant field: report RMSE
  return std::sqrt(mse) / range;
}

double Psnr(const Tensor& original, const Tensor& reconstructed) {
  const double mse = MeanSquaredError(original, reconstructed);
  double range =
      static_cast<double>(original.MaxValue()) - original.MinValue();
  // Degenerate inputs must still produce a finite value (bench harnesses emit
  // PSNR into JSON, where inf/nan is unparseable): a constant field has no
  // range, so report against the normalized unit range instead, and clamp the
  // MSE so identical inputs land exactly on the 200 dB cap rather than +inf.
  constexpr double kCapDb = 200.0;
  if (range <= 0.0) range = 1.0;
  const double floor = range * range * 1e-20;  // MSE at the cap
  return std::min(kCapDb, 20.0 * std::log10(range) -
                              10.0 * std::log10(std::max(mse, floor)));
}

double MaxAbsError(const Tensor& a, const Tensor& b) {
  GLSC_CHECK(a.shape() == b.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(static_cast<double>(pa[i]) - pb[i]));
  }
  return m;
}

}  // namespace glsc
