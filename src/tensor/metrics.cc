#include "tensor/metrics.h"

#include <cmath>

#include "tensor/ops.h"

namespace glsc {

double Nrmse(const Tensor& original, const Tensor& reconstructed) {
  GLSC_CHECK(original.shape() == reconstructed.shape());
  const double mse = MeanSquaredError(original, reconstructed);
  const double range =
      static_cast<double>(original.MaxValue()) - original.MinValue();
  if (range <= 0.0) return std::sqrt(mse);  // constant field: report RMSE
  return std::sqrt(mse) / range;
}

double Psnr(const Tensor& original, const Tensor& reconstructed) {
  const double mse = MeanSquaredError(original, reconstructed);
  const double range =
      static_cast<double>(original.MaxValue()) - original.MinValue();
  if (mse <= 0.0) return 200.0;  // identical: clamp at a large finite value
  return 20.0 * std::log10(range) - 10.0 * std::log10(mse);
}

double MaxAbsError(const Tensor& a, const Tensor& b) {
  GLSC_CHECK(a.shape() == b.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(static_cast<double>(pa[i]) - pb[i]));
  }
  return m;
}

}  // namespace glsc
