#include "tensor/workspace.h"

#include <algorithm>
#include <new>

namespace glsc::tensor {
namespace {

constexpr std::size_t kAlignment = 64;
// First slab floor: big enough that toy models never grow past slab 0, small
// enough that idle per-worker workspaces stay cheap.
constexpr std::size_t kMinSlabBytes = std::size_t{1} << 20;  // 1 MiB

constexpr std::size_t RoundUp(std::size_t bytes) {
  return (bytes + kAlignment - 1) & ~(kAlignment - 1);
}

}  // namespace

Workspace::Workspace(std::size_t initial_bytes) {
  if (initial_bytes > 0) AddSlab(RoundUp(initial_bytes));
}

Workspace::~Workspace() {
  for (Slab& slab : slabs_) {
    ::operator delete(slab.data, std::align_val_t{kAlignment});
  }
}

void Workspace::AddSlab(std::size_t min_bytes) {
  // Geometric growth: each new slab is at least as large as everything cached
  // so far, so the slab count stays logarithmic in the high-water mark.
  const std::size_t capacity =
      std::max({min_bytes, kMinSlabBytes,
                static_cast<std::size_t>(stats_.slab_bytes)});
  Slab slab;
  slab.data = static_cast<std::byte*>(
      ::operator new(capacity, std::align_val_t{kAlignment}));
  slab.capacity = capacity;
  slab.offset = 0;
  slabs_.push_back(slab);
  current_ = slabs_.size() - 1;
  stats_.slab_allocations += 1;
  stats_.slab_bytes += static_cast<std::int64_t>(capacity);
}

float* Workspace::Allocate(std::int64_t count) {
  GLSC_CHECK(count >= 0);
  const std::size_t bytes = RoundUp(static_cast<std::size_t>(count) *
                                    sizeof(float));
  stats_.borrows += 1;
  if (bytes == 0) return nullptr;
  while (true) {
    if (!slabs_.empty()) {
      Slab& slab = slabs_[current_];
      if (slab.offset + bytes <= slab.capacity) {
        float* out = reinterpret_cast<float*>(slab.data + slab.offset);
        slab.offset += bytes;
        used_ += static_cast<std::int64_t>(bytes);
        stats_.peak_bytes = std::max(stats_.peak_bytes, used_);
        return out;
      }
      if (current_ + 1 < slabs_.size()) {
        // Fall through to the next cached slab (rewinds reset its offset).
        ++current_;
        slabs_[current_].offset = 0;
        continue;
      }
    }
    AddSlab(bytes);
  }
}

Tensor Workspace::NewTensor(Shape shape) {
  const std::int64_t n = ShapeNumel(shape);
  return Tensor::Borrowed(Allocate(n), std::move(shape));
}

Tensor Workspace::NewZeroed(Shape shape) {
  Tensor t = NewTensor(std::move(shape));
  std::fill_n(t.data(), t.numel(), 0.0f);
  return t;
}

Workspace::Checkpoint Workspace::Mark() const {
  Checkpoint checkpoint;
  checkpoint.slab = current_;
  checkpoint.offset = slabs_.empty() ? 0 : slabs_[current_].offset;
  checkpoint.used = used_;
  return checkpoint;
}

void Workspace::Rewind(const Checkpoint& checkpoint) {
  if (slabs_.empty()) return;
  GLSC_DCHECK(checkpoint.slab <= current_);
  for (std::size_t i = checkpoint.slab + 1; i <= current_; ++i) {
    slabs_[i].offset = 0;
  }
  slabs_[checkpoint.slab].offset = checkpoint.offset;
  current_ = checkpoint.slab;
  used_ = checkpoint.used;
}

void Workspace::Reset() {
  for (Slab& slab : slabs_) slab.offset = 0;
  current_ = 0;
  used_ = 0;
}

}  // namespace glsc::tensor
