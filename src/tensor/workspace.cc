#include "tensor/workspace.h"

#include <algorithm>
#include <new>

#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
#include <cstdio>
#include <cstdlib>
#include <cstring>
#endif

namespace glsc::tensor {
namespace {

constexpr std::size_t kAlignment = 64;
// First slab floor: big enough that toy models never grow past slab 0, small
// enough that idle per-worker workspaces stay cheap.
constexpr std::size_t kMinSlabBytes = std::size_t{1} << 20;  // 1 MiB

constexpr std::size_t RoundUp(std::size_t bytes) {
  return (bytes + kAlignment - 1) & ~(kAlignment - 1);
}

}  // namespace

Workspace::Workspace(std::size_t initial_bytes) {
  if (initial_bytes > 0) AddSlab(RoundUp(initial_bytes));
}

Workspace::~Workspace() {
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  // Views must not outlive the arena either; ValidateBorrow reads this field
  // to turn a dangling-workspace access into a diagnostic (and, under ASan,
  // the read of the freed Workspace object itself reports first).
  live_magic_ = kDeadMagic;
#endif
  for (Slab& slab : slabs_) {
    ::operator delete(slab.data, std::align_val_t{kAlignment});
  }
}

void Workspace::AddSlab(std::size_t min_bytes) {
  // Geometric growth: each new slab is at least as large as everything cached
  // so far, so the slab count stays logarithmic in the high-water mark.
  const std::size_t capacity =
      std::max({min_bytes, kMinSlabBytes,
                static_cast<std::size_t>(stats_.slab_bytes)});
  Slab slab;
  slab.data = static_cast<std::byte*>(
      ::operator new(capacity, std::align_val_t{kAlignment}));
  slab.capacity = capacity;
  slab.offset = 0;
  slabs_.push_back(slab);
  current_ = slabs_.size() - 1;
  stats_.slab_allocations += 1;
  stats_.slab_bytes += static_cast<std::int64_t>(capacity);
}

float* Workspace::Allocate(std::int64_t count) {
  GLSC_CHECK(count >= 0);
  const std::size_t bytes = RoundUp(static_cast<std::size_t>(count) *
                                    sizeof(float));
  stats_.borrows += 1;
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  ++alloc_serial_;
#endif
  if (bytes == 0) return nullptr;
  while (true) {
    if (!slabs_.empty()) {
      Slab& slab = slabs_[current_];
      if (slab.offset + bytes <= slab.capacity) {
        float* out = reinterpret_cast<float*>(slab.data + slab.offset);
        slab.offset += bytes;
        used_ += static_cast<std::int64_t>(bytes);
        stats_.peak_bytes = std::max(stats_.peak_bytes, used_);
        return out;
      }
      if (current_ + 1 < slabs_.size()) {
        // Fall through to the next cached slab (rewinds reset its offset).
        ++current_;
        slabs_[current_].offset = 0;
        continue;
      }
    }
    AddSlab(bytes);
  }
}

Tensor Workspace::NewTensor(Shape shape) {
  const std::int64_t n = ShapeNumel(shape);
  Tensor t = Tensor::Borrowed(Allocate(n), std::move(shape));
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  t.arena_ = this;
  t.arena_serial_ = alloc_serial_;
#endif
  return t;
}

Tensor Workspace::NewZeroed(Shape shape) {
  Tensor t = NewTensor(std::move(shape));
  std::fill_n(t.data(), t.numel(), 0.0f);
  return t;
}

Workspace::Checkpoint Workspace::Mark() const {
  Checkpoint checkpoint;
  checkpoint.slab = current_;
  checkpoint.offset = slabs_.empty() ? 0 : slabs_[current_].offset;
  checkpoint.used = used_;
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  checkpoint.serial = alloc_serial_;
#endif
  return checkpoint;
}

void Workspace::Rewind(const Checkpoint& checkpoint) {
  if (slabs_.empty()) {
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
    PoisonAndInvalidate(checkpoint);
#endif
    return;
  }
  GLSC_DCHECK(checkpoint.slab <= current_);
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  PoisonAndInvalidate(checkpoint);
#endif
  for (std::size_t i = checkpoint.slab + 1; i <= current_; ++i) {
    slabs_[i].offset = 0;
  }
  slabs_[checkpoint.slab].offset = checkpoint.offset;
  current_ = checkpoint.slab;
  used_ = checkpoint.used;
}

void Workspace::Reset() {
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  Checkpoint zero;  // slab 0, offset 0, serial 0: everything is reclaimed
  PoisonAndInvalidate(zero);
#endif
  for (Slab& slab : slabs_) slab.offset = 0;
  current_ = 0;
  used_ = 0;
}

#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA

void Workspace::PoisonAndInvalidate(const Checkpoint& checkpoint) {
  constexpr unsigned char kPoison = 0xDB;
  if (!slabs_.empty() && checkpoint.slab <= current_) {
    Slab& first = slabs_[checkpoint.slab];
    if (first.offset > checkpoint.offset) {
      std::memset(first.data + checkpoint.offset, kPoison,
                  first.offset - checkpoint.offset);
    }
    for (std::size_t i = checkpoint.slab + 1; i <= current_; ++i) {
      if (slabs_[i].offset > 0) {
        std::memset(slabs_[i].data, kPoison, slabs_[i].offset);
      }
    }
  }
  if (alloc_serial_ <= checkpoint.serial) return;  // nothing allocated since
  const std::uint64_t begin = checkpoint.serial;  // interval is (begin, end]
  const std::uint64_t end = alloc_serial_;
  // Intervals whose begin lies at/after the new begin are subsumed (their end
  // is <= alloc_serial_ by monotonicity); pop them, then merge with a
  // contiguous predecessor so back-to-back scopes collapse into one entry.
  while (!invalid_.empty() && invalid_.back().first >= begin) {
    invalid_.pop_back();
  }
  if (!invalid_.empty() && invalid_.back().second == begin) {
    invalid_.back().second = end;
  } else {
    invalid_.emplace_back(begin, end);
  }
}

bool Workspace::ValidateBorrow(std::uint64_t serial) const {
  if (live_magic_ != kLiveMagic) return false;
  if (serial == 0 || serial > alloc_serial_) return false;  // never handed out
  // First interval with end >= serial; the borrow is dead iff it starts
  // before `serial` (intervals are (begin, end]).
  const auto it = std::lower_bound(
      invalid_.begin(), invalid_.end(), serial,
      [](const std::pair<std::uint64_t, std::uint64_t>& interval,
         std::uint64_t s) { return interval.second < s; });
  return it == invalid_.end() || it->first >= serial;
}

void AssertBorrowValid(const Workspace* ws, std::uint64_t serial) {
  if (ws != nullptr && ws->ValidateBorrow(serial)) return;
  std::fprintf(stderr,
               "\n==== glsc arena borrow checker: use-after-rewind ====\n"
               "  borrowed tensor (arena %p, allocation serial %llu) accessed "
               "after its Workspace scope rewound or the Workspace died.\n"
               "  The backing bytes were poisoned with 0xDB at rewind; any "
               "value read through this view is garbage.\n"
               "==== aborting ====\n",
               static_cast<const void*>(ws),
               static_cast<unsigned long long>(serial));
  std::fflush(stderr);
  std::abort();
}

#endif  // GLSC_DEBUG_ARENA

}  // namespace glsc::tensor
