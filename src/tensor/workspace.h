// Workspace — a bump-allocator arena for the inference hot path.
//
// The GLSC decode path runs the denoising UNet `sample_steps` (~32) times per
// window, and every layer of every step needs identically-shaped activation
// buffers. Allocating them from the heap each time dominates serving cost
// once the kernels themselves are vectorized (PR 2) and windows decode in
// parallel (PR 4). A Workspace replaces that traffic with pointer bumps over
// cached slabs:
//
//   tensor::Workspace ws;                 // one per worker, reused forever
//   for (each window) {
//     tensor::Workspace::Scope scope(&ws);
//     Tensor y = decoder.Forward(x, &ws); // arena-backed activations
//     ...copy results out before `scope` unwinds...
//   }
//
// Properties:
//  - Allocations are 64-byte aligned (AVX-512 friendly) and O(1): bump a
//    pointer within the current slab, falling through to the next cached slab
//    or (cold path) a geometrically-grown heap slab.
//  - Scope is a stack checkpoint: destruction rewinds the bump state to where
//    the Scope was opened, retaining every slab. After the arena has grown to
//    its high-water mark (the first window / first sampler step), steady
//    state performs ZERO heap allocations — stats() proves it.
//  - Tensors handed out by NewTensor are BORROWED views (Tensor::Borrowed):
//    they must not outlive the enclosing Scope. Clone() lifts one to owned
//    storage when it must escape.
//  - Not thread-safe: sessions and the decode scheduler own one Workspace per
//    worker slot, next to the per-worker codec clones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace glsc::tensor {

class Workspace {
 public:
  struct Stats {
    std::int64_t slab_allocations = 0;  // heap slabs ever allocated
    std::int64_t slab_bytes = 0;        // total bytes held in cached slabs
    std::int64_t borrows = 0;           // arena allocations served
    std::int64_t peak_bytes = 0;        // high-water concurrent usage
  };

  // A bump-state checkpoint; obtained from Mark(), restored by Rewind().
  struct Checkpoint {
    std::size_t slab = 0;
    std::size_t offset = 0;
    std::int64_t used = 0;
  };

  // RAII checkpoint: rewinds the arena to the construction point when
  // destroyed. A null workspace makes the scope a no-op so call sites can be
  // written unconditionally.
  class Scope {
   public:
    explicit Scope(Workspace* ws) : ws_(ws) {
      if (ws_ != nullptr) checkpoint_ = ws_->Mark();
    }
    ~Scope() {
      if (ws_ != nullptr) ws_->Rewind(checkpoint_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace* ws_;
    Checkpoint checkpoint_;
  };

  // `initial_bytes` pre-reserves the first slab (0 defers until first use).
  explicit Workspace(std::size_t initial_bytes = 0);
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // `count` floats, 64-byte aligned, valid until the enclosing checkpoint is
  // rewound. O(1) except when the arena must grow past its high-water mark.
  float* Allocate(std::int64_t count);

  // Borrowed uninitialized tensor over Allocate(numel).
  Tensor NewTensor(Shape shape);
  // Borrowed zero-filled tensor (pays the memset; prefer NewTensor when every
  // element is overwritten anyway).
  Tensor NewZeroed(Shape shape);

  Checkpoint Mark() const;
  void Rewind(const Checkpoint& checkpoint);
  // Rewind everything; cached slabs are retained for reuse.
  void Reset();

  const Stats& stats() const { return stats_; }
  std::int64_t bytes_in_use() const { return used_; }

 private:
  struct Slab {
    std::byte* data = nullptr;
    std::size_t capacity = 0;
    std::size_t offset = 0;
  };

  void AddSlab(std::size_t min_bytes);

  std::vector<Slab> slabs_;
  std::size_t current_ = 0;  // index into slabs_ (meaningful when non-empty)
  std::int64_t used_ = 0;    // bytes currently handed out across all slabs
  Stats stats_;
};

}  // namespace glsc::tensor
