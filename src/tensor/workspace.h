// Workspace — a bump-allocator arena for the inference hot path.
//
// The GLSC decode path runs the denoising UNet `sample_steps` (~32) times per
// window, and every layer of every step needs identically-shaped activation
// buffers. Allocating them from the heap each time dominates serving cost
// once the kernels themselves are vectorized (PR 2) and windows decode in
// parallel (PR 4). A Workspace replaces that traffic with pointer bumps over
// cached slabs:
//
//   tensor::Workspace ws;                 // one per worker, reused forever
//   for (each window) {
//     tensor::Workspace::Scope scope(&ws);
//     Tensor y = decoder.Forward(x, &ws); // arena-backed activations
//     ...copy results out before `scope` unwinds...
//   }
//
// Properties:
//  - Allocations are 64-byte aligned (AVX-512 friendly) and O(1): bump a
//    pointer within the current slab, falling through to the next cached slab
//    or (cold path) a geometrically-grown heap slab.
//  - Scope is a stack checkpoint: destruction rewinds the bump state to where
//    the Scope was opened, retaining every slab. After the arena has grown to
//    its high-water mark (the first window / first sampler step), steady
//    state performs ZERO heap allocations — stats() proves it.
//  - Tensors handed out by NewTensor are BORROWED views (Tensor::Borrowed):
//    they must not outlive the enclosing Scope. Clone() lifts one to owned
//    storage when it must escape.
//  - Not thread-safe: sessions and the decode scheduler own one Workspace per
//    worker slot, next to the per-worker codec clones.
//
// Borrow validation (GLSC_DEBUG_ARENA, default ON in Debug/sanitizer trees):
// using a borrowed view after its scope rewound is the arena design's biggest
// footgun — the memory is still mapped, so release builds silently read
// whatever the next window wrote there. With the checker compiled in:
//  - every Allocate gets a monotonically increasing serial, stamped into the
//    Tensor views NewTensor hands out;
//  - Rewind/Reset POISON the reclaimed region with 0xDB and record the serial
//    range they invalidated (an inner-scope rewind never invalidates
//    outer-scope borrows — the interval set is exact, not a global epoch);
//  - debug tensor accessors call ValidateBorrow through the stamped
//    provenance and abort with a diagnostic on any use-after-rewind.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace glsc::tensor {

class Workspace {
 public:
  struct Stats {
    std::int64_t slab_allocations = 0;  // heap slabs ever allocated
    std::int64_t slab_bytes = 0;        // total bytes held in cached slabs
    std::int64_t borrows = 0;           // arena allocations served
    std::int64_t peak_bytes = 0;        // high-water concurrent usage
  };

  // A bump-state checkpoint; obtained from Mark(), restored by Rewind().
  struct Checkpoint {
    std::size_t slab = 0;
    std::size_t offset = 0;
    std::int64_t used = 0;
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
    std::uint64_t serial = 0;  // alloc_serial_ at Mark() time
#endif
  };

  // RAII checkpoint: rewinds the arena to the construction point when
  // destroyed. A null workspace makes the scope a no-op so call sites can be
  // written unconditionally.
  class Scope {
   public:
    explicit Scope(Workspace* ws) : ws_(ws) {
      if (ws_ != nullptr) checkpoint_ = ws_->Mark();
    }
    ~Scope() {
      if (ws_ != nullptr) ws_->Rewind(checkpoint_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace* ws_;
    Checkpoint checkpoint_;
  };

  // `initial_bytes` pre-reserves the first slab (0 defers until first use).
  explicit Workspace(std::size_t initial_bytes = 0);
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // `count` floats, 64-byte aligned, valid until the enclosing checkpoint is
  // rewound. O(1) except when the arena must grow past its high-water mark.
  float* Allocate(std::int64_t count);

  // Borrowed uninitialized tensor over Allocate(numel).
  Tensor NewTensor(Shape shape);
  // Borrowed zero-filled tensor (pays the memset; prefer NewTensor when every
  // element is overwritten anyway).
  Tensor NewZeroed(Shape shape);

  Checkpoint Mark() const;
  void Rewind(const Checkpoint& checkpoint);
  // Rewind everything; cached slabs are retained for reuse.
  void Reset();

  const Stats& stats() const { return stats_; }
  std::int64_t bytes_in_use() const { return used_; }

#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  // True when the allocation identified by `serial` is still live: the
  // workspace has not been destroyed, and no Rewind/Reset has reclaimed the
  // region that allocation came from. Debug tensor accessors assert this
  // through the provenance NewTensor stamps into its views (see
  // tensor::AssertBorrowValid); tests may call it directly.
  bool ValidateBorrow(std::uint64_t serial) const;
  // Serial of the most recent Allocate (tests).
  std::uint64_t debug_alloc_serial() const { return alloc_serial_; }
#endif

 private:
  struct Slab {
    std::byte* data = nullptr;
    std::size_t capacity = 0;
    std::size_t offset = 0;
  };

  void AddSlab(std::size_t min_bytes);

#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  // 0xDB-fill every byte the arena held out between `checkpoint` and the
  // current bump state, then record the serial interval those allocations
  // occupied as invalid.
  void PoisonAndInvalidate(const Checkpoint& checkpoint);
#endif

  std::vector<Slab> slabs_;
  std::size_t current_ = 0;  // index into slabs_ (meaningful when non-empty)
  std::int64_t used_ = 0;    // bytes currently handed out across all slabs
  Stats stats_;

#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  static constexpr std::uint64_t kLiveMagic = 0x676c73634c495645ull;  // glscLIVE
  static constexpr std::uint64_t kDeadMagic = 0x676c736344454144ull;  // glscDEAD
  std::uint64_t live_magic_ = kLiveMagic;
  std::uint64_t alloc_serial_ = 0;  // bumped on every Allocate
  // Disjoint, sorted (begin, end] serial intervals reclaimed by rewinds.
  // Contiguous rewinds merge, so steady-state decode (one scope per window)
  // keeps this at O(live scope depth), not O(total rewinds).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> invalid_;
#endif
};

}  // namespace glsc::tensor
