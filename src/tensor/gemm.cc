#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/simd/kernels.h"
#include "util/check.h"

namespace glsc {
namespace {

// Cache-blocking parameters. The micro-kernel works on mr x nr tiles of C
// (tile dims come from the dispatched kernel table) with the K loop innermost
// over packed panels; sizes are chosen so an MC x KC panel of A (~128 KiB)
// stays L2-resident.
constexpr std::int64_t kMC = 132;  // multiple of both 4 and 6 (tile heights)
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 512;

// Packs a row-major (possibly transposed) block of A into column-panel order:
// consecutive mr-row strips, each strip laid out K-major. Full strips take
// branch-free contiguous-copy paths; only the ragged edge pays per-element
// bounds checks and zero padding.
void PackA(bool trans, const float* a, std::int64_t lda, std::int64_t row0,
           std::int64_t m, std::int64_t k0, std::int64_t k, std::int64_t mr,
           float* packed) {
  for (std::int64_t i = 0; i < m; i += mr) {
    const std::int64_t ib = std::min(mr, m - i);
    if (ib == mr) {
      if (trans) {
        // Source rows are K-major already: one contiguous mr-copy per p.
        const float* src = a + k0 * lda + row0 + i;
        for (std::int64_t p = 0; p < k; ++p) {
          std::memcpy(packed, src, static_cast<std::size_t>(mr) * sizeof(float));
          packed += mr;
          src += lda;
        }
      } else {
        // Contiguous reads along each row, strided writes into the strip.
        for (std::int64_t ii = 0; ii < mr; ++ii) {
          const float* src = a + (row0 + i + ii) * lda + k0;
          float* dst = packed + ii;
          for (std::int64_t p = 0; p < k; ++p) dst[p * mr] = src[p];
        }
        packed += k * mr;
      }
      continue;
    }
    for (std::int64_t p = 0; p < k; ++p) {
      for (std::int64_t ii = 0; ii < mr; ++ii) {
        float v = 0.0f;
        if (ii < ib) {
          const std::int64_t r = row0 + i + ii;
          const std::int64_t c = k0 + p;
          v = trans ? a[c * lda + r] : a[r * lda + c];
        }
        *packed++ = v;
      }
    }
  }
}

// Packs a block of B into row-panel order: consecutive nr-column strips.
void PackB(bool trans, const float* b, std::int64_t ldb, std::int64_t k0,
           std::int64_t k, std::int64_t col0, std::int64_t n, std::int64_t nr,
           float* packed) {
  for (std::int64_t j = 0; j < n; j += nr) {
    const std::int64_t jb = std::min(nr, n - j);
    if (jb == nr) {
      if (!trans) {
        // One contiguous nr-copy per p.
        const float* src = b + k0 * ldb + col0 + j;
        for (std::int64_t p = 0; p < k; ++p) {
          std::memcpy(packed, src, static_cast<std::size_t>(nr) * sizeof(float));
          packed += nr;
          src += ldb;
        }
      } else {
        // Contiguous reads along each source row, strided strip writes.
        for (std::int64_t jj = 0; jj < nr; ++jj) {
          const float* src = b + (col0 + j + jj) * ldb + k0;
          float* dst = packed + jj;
          for (std::int64_t p = 0; p < k; ++p) dst[p * nr] = src[p];
        }
        packed += k * nr;
      }
      continue;
    }
    for (std::int64_t p = 0; p < k; ++p) {
      for (std::int64_t jj = 0; jj < nr; ++jj) {
        float v = 0.0f;
        if (jj < jb) {
          const std::int64_t r = k0 + p;
          const std::int64_t c = col0 + j + jj;
          v = trans ? b[c * ldb + r] : b[r * ldb + c];
        }
        *packed++ = v;
      }
    }
  }
}

// Applies the fused epilogue to rows [row0, row0+nrows) x cols
// [col0, col0+ncols) of C.
void ApplyEpilogue(const simd::KernelTable& kernels, float* c, std::int64_t ldc,
                   std::int64_t row0, std::int64_t nrows, std::int64_t col0,
                   std::int64_t ncols, const float* bias,
                   GemmEpilogue epilogue) {
  const bool per_col = epilogue == GemmEpilogue::kBiasCol ||
                       epilogue == GemmEpilogue::kBiasColSiLU;
  const int act = (epilogue == GemmEpilogue::kBiasRowSiLU ||
                   epilogue == GemmEpilogue::kBiasColSiLU)
                      ? simd::kActSiLU
                      : simd::kActNone;
  const float* col_bias = per_col ? bias + col0 : nullptr;
  for (std::int64_t r = 0; r < nrows; ++r) {
    kernels.bias_act_row(c + (row0 + r) * ldc + col0, ncols,
                         per_col ? 0.0f : bias[row0 + r], col_bias, act);
  }
}

}  // namespace

void GemmEx(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
            std::int64_t k, float alpha, const float* a, std::int64_t lda,
            const float* b, std::int64_t ldb, float beta, float* c,
            std::int64_t ldc, const float* bias, GemmEpilogue epilogue) {
  GemmEx(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, bias,
         epilogue, nullptr);
}

void GemmEx(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
            std::int64_t k, float alpha, const float* a, std::int64_t lda,
            const float* b, std::int64_t ldb, float beta, float* c,
            std::int64_t ldc, const float* bias, GemmEpilogue epilogue,
            GemmScratch* scratch) {
  GLSC_CHECK(m >= 0 && n >= 0 && k >= 0);
  GLSC_CHECK(epilogue == GemmEpilogue::kNone || bias != nullptr);
  if (m == 0 || n == 0) return;

  const simd::KernelTable& kernels = simd::ActiveKernels();
  const std::int64_t mr = kernels.mr;
  const std::int64_t nr = kernels.nr;

  // Scale C by beta once, up front.
  if (beta == 0.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      std::memset(c + i * ldc, 0, static_cast<std::size_t>(n) * sizeof(float));
    }
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0f) {
    // The product contributes nothing, but the epilogue still applies.
    if (epilogue != GemmEpilogue::kNone) {
      ApplyEpilogue(kernels, c, ldc, 0, m, 0, n, bias, epilogue);
    }
    return;
  }

  // Packing buffers, padded to full micro-tiles and 64-byte aligned so the
  // micro-kernel's 32-byte panel loads never split cache lines. BLIS loop
  // order (NC -> KC -> MC) packs each B block exactly once and reuses it
  // across every M panel; A panels are repacked per NC block, which only
  // costs when n > kNC.
  const std::size_t a_elems =
      static_cast<std::size_t>(((kMC + mr - 1) / mr) * mr * kKC);
  const std::size_t b_elems =
      static_cast<std::size_t>(((kNC + nr - 1) / nr) * nr * kKC);
  // With a caller-provided scratch the buffer persists across calls (packed
  // panels are fully written before the micro-kernel reads them, so stale
  // contents cannot leak into the product); otherwise allocate per call.
  std::vector<float> local_storage;
  float* storage;
  if (scratch != nullptr) {
    storage = scratch->Ensure(a_elems + b_elems + 32);
  } else {
    local_storage.resize(a_elems + b_elems + 32);
    storage = local_storage.data();
  }
  auto align64 = [](float* p) {
    return reinterpret_cast<float*>(
        (reinterpret_cast<std::uintptr_t>(p) + 63) & ~std::uintptr_t{63});
  };
  float* const packed_a = align64(storage);
  float* const packed_b = align64(packed_a + a_elems);

  for (std::int64_t j0 = 0; j0 < n; j0 += kNC) {
    const std::int64_t nb = std::min(kNC, n - j0);
    for (std::int64_t p0 = 0; p0 < k; p0 += kKC) {
      const std::int64_t kb = std::min(kKC, k - p0);
      // Once the last K panel has been accumulated, a micro-tile of C is
      // final and the epilogue can run on it while it is still cache-hot.
      const bool final_panel = p0 + kb == k;
      PackB(trans_b, b, ldb, p0, kb, j0, nb, nr, packed_b);
      for (std::int64_t i0 = 0; i0 < m; i0 += kMC) {
        const std::int64_t mb = std::min(kMC, m - i0);
        PackA(trans_a, a, lda, i0, mb, p0, kb, mr, packed_a);

        for (std::int64_t i = 0; i < mb; i += mr) {
          const std::int64_t ib = std::min(mr, mb - i);
          const float* a_panel = packed_a + (i / mr) * kb * mr;
          for (std::int64_t j = 0; j < nb; j += nr) {
            const std::int64_t jb = std::min(nr, nb - j);
            const float* b_panel = packed_b + (j / nr) * kb * nr;
            float* c_tile = c + (i0 + i) * ldc + j0 + j;
            kernels.gemm_micro(kb, a_panel, b_panel, alpha, c_tile, ldc, ib,
                               jb);
            if (final_panel && epilogue != GemmEpilogue::kNone) {
              ApplyEpilogue(kernels, c, ldc, i0 + i, ib, j0 + j, jb, bias,
                            epilogue);
            }
          }
        }
      }
    }
  }
}

void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc) {
  GemmEx(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
         nullptr, GemmEpilogue::kNone);
}

void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc, GemmScratch* scratch) {
  GemmEx(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
         nullptr, GemmEpilogue::kNone, scratch);
}

void MatMul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t n, std::int64_t k) {
  Gemm(false, false, m, n, k, 1.0f, a, k, b, n, 0.0f, c, n);
}

}  // namespace glsc
