#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/check.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace glsc {
namespace {

// Cache-blocking parameters. The micro-kernel works on MR x NR tiles of C with
// the K loop innermost over packed panels; sizes are chosen so an MC x KC
// panel of A (~128 KiB) stays L2-resident.
constexpr std::int64_t kMC = 128;
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 512;
constexpr std::int64_t kMR = 4;
constexpr std::int64_t kNR = 8;

// Packs a row-major (possibly transposed) block of A into column-panel order:
// consecutive kMR-row strips, each strip laid out K-major.
void PackA(bool trans, const float* a, std::int64_t lda, std::int64_t row0,
           std::int64_t m, std::int64_t k0, std::int64_t k, float* packed) {
  for (std::int64_t i = 0; i < m; i += kMR) {
    const std::int64_t ib = std::min(kMR, m - i);
    for (std::int64_t p = 0; p < k; ++p) {
      for (std::int64_t ii = 0; ii < kMR; ++ii) {
        float v = 0.0f;
        if (ii < ib) {
          const std::int64_t r = row0 + i + ii;
          const std::int64_t c = k0 + p;
          v = trans ? a[c * lda + r] : a[r * lda + c];
        }
        *packed++ = v;
      }
    }
  }
}

// Packs a block of B into row-panel order: consecutive kNR-column strips.
void PackB(bool trans, const float* b, std::int64_t ldb, std::int64_t k0,
           std::int64_t k, std::int64_t col0, std::int64_t n, float* packed) {
  for (std::int64_t j = 0; j < n; j += kNR) {
    const std::int64_t jb = std::min(kNR, n - j);
    for (std::int64_t p = 0; p < k; ++p) {
      for (std::int64_t jj = 0; jj < kNR; ++jj) {
        float v = 0.0f;
        if (jj < jb) {
          const std::int64_t r = k0 + p;
          const std::int64_t c = col0 + j + jj;
          v = trans ? b[c * ldb + r] : b[r * ldb + c];
        }
        *packed++ = v;
      }
    }
  }
}

// kMR x kNR register-tile micro-kernel over a length-k inner product.
inline void MicroKernel(std::int64_t k, const float* a_panel,
                        const float* b_panel, float acc[kMR][kNR]) {
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a_panel + p * kMR;
    const float* brow = b_panel + p * kNR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float av = arow[i];
      for (std::int64_t j = 0; j < kNR; ++j) {
        acc[i][j] += av * brow[j];
      }
    }
  }
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc) {
  GLSC_CHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;

  // Scale C by beta once, up front.
  if (beta == 0.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      std::memset(c + i * ldc, 0, static_cast<std::size_t>(n) * sizeof(float));
    }
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0f) return;

  const std::int64_t mc_panels = (m + kMC - 1) / kMC;

#ifdef _OPENMP
#pragma omp parallel
#endif
  {
    // Per-thread packing buffers; padded to full micro-tiles.
    std::vector<float> packed_a(static_cast<std::size_t>(
        ((kMC + kMR - 1) / kMR) * kMR * kKC));
    std::vector<float> packed_b(static_cast<std::size_t>(
        ((kNC + kNR - 1) / kNR) * kNR * kKC));

#ifdef _OPENMP
#pragma omp for schedule(dynamic, 1)
#endif
    for (std::int64_t mp = 0; mp < mc_panels; ++mp) {
      const std::int64_t i0 = mp * kMC;
      const std::int64_t mb = std::min(kMC, m - i0);
      for (std::int64_t p0 = 0; p0 < k; p0 += kKC) {
        const std::int64_t kb = std::min(kKC, k - p0);
        PackA(trans_a, a, lda, i0, mb, p0, kb, packed_a.data());
        for (std::int64_t j0 = 0; j0 < n; j0 += kNC) {
          const std::int64_t nb = std::min(kNC, n - j0);
          PackB(trans_b, b, ldb, p0, kb, j0, nb, packed_b.data());

          for (std::int64_t i = 0; i < mb; i += kMR) {
            const std::int64_t ib = std::min(kMR, mb - i);
            const float* a_panel = packed_a.data() + (i / kMR) * kb * kMR;
            for (std::int64_t j = 0; j < nb; j += kNR) {
              const std::int64_t jb = std::min(kNR, nb - j);
              const float* b_panel = packed_b.data() + (j / kNR) * kb * kNR;
              float acc[kMR][kNR] = {};
              MicroKernel(kb, a_panel, b_panel, acc);
              for (std::int64_t ii = 0; ii < ib; ++ii) {
                float* crow = c + (i0 + i + ii) * ldc + j0 + j;
                for (std::int64_t jj = 0; jj < jb; ++jj) {
                  crow[jj] += alpha * acc[ii][jj];
                }
              }
            }
          }
        }
      }
    }
  }
}

void MatMul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t n, std::int64_t k) {
  Gemm(false, false, m, n, k, 1.0f, a, k, b, n, 0.0f, c, n);
}

}  // namespace glsc
