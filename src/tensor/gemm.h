// Single-precision general matrix multiply. Every convolution and attention
// layer in the network lowers to this kernel (via im2col or reshapes), so it
// is the performance backbone of both training and the Table-2 speed bench.
#pragma once

#include <cstdint>

namespace glsc {

// C = alpha * op(A) * op(B) + beta * C, row-major.
// op(A) is MxK, op(B) is KxN, C is MxN with leading dimensions lda/ldb/ldc.
void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc);

// Convenience: C(MxN) = A(MxK) * B(KxN), contiguous row-major, overwrite C.
void MatMul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t n, std::int64_t k);

}  // namespace glsc
