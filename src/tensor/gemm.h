// Single-precision general matrix multiply. Every convolution and attention
// layer in the network lowers to this kernel (via im2col or reshapes), so it
// is the performance backbone of both training and the Table-2 speed bench.
//
// The inner register-tile micro-kernel is runtime-dispatched (scalar / SSE2 /
// AVX2+FMA, see tensor/simd/dispatch.h); the pack/block structure is shared
// by all levels. GemmEx additionally fuses a bias (+ optional SiLU) epilogue
// into the final-panel write-back so callers like Conv2d and Dense do not
// re-walk their output tensors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace glsc {

// Reusable packing buffer for GEMM-heavy inner loops (attention cores, the
// batched conv path). GemmEx sizes its packing scratch by the fixed cache
// blocking rather than the problem, so for tiny products the per-call
// allocation dominates the arithmetic; threading one GemmScratch through a
// loop of calls hoists that cost out of the loop. Results are byte-identical
// with or without a scratch. Not thread-safe: confine each instance to one
// thread (mirror of Conv2d's column scratch discipline).
class GemmScratch {
 public:
  // Returns a buffer with room for at least `elems` floats, growing if
  // needed. Contents are unspecified; GEMM packing fully overwrites the
  // region it reads.
  float* Ensure(std::size_t elems) {
    if (buf_.size() < elems) buf_.resize(elems);
    return buf_.data();
  }

 private:
  std::vector<float> buf_;
};

// Fused epilogue applied to C after the product is fully accumulated.
//  kBiasRow:  C[i][j] += bias[i]   (bias has m entries; conv channel bias)
//  kBiasCol:  C[i][j] += bias[j]   (bias has n entries; dense feature bias)
//  *SiLU:     additionally C[i][j] = silu(C[i][j]) after the bias add.
enum class GemmEpilogue { kNone, kBiasRow, kBiasCol, kBiasRowSiLU, kBiasColSiLU };

// C = alpha * op(A) * op(B) + beta * C, row-major.
// op(A) is MxK, op(B) is KxN, C is MxN with leading dimensions lda/ldb/ldc.
void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc);

// Gemm plus a fused epilogue. `bias` must be non-null (m or n entries
// depending on the epilogue) unless epilogue == kNone.
void GemmEx(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
            std::int64_t k, float alpha, const float* a, std::int64_t lda,
            const float* b, std::int64_t ldb, float beta, float* c,
            std::int64_t ldc, const float* bias, GemmEpilogue epilogue);

// As above, but packs through `scratch` when non-null instead of allocating
// per call. Passing nullptr is identical to the plain overload.
void GemmEx(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
            std::int64_t k, float alpha, const float* a, std::int64_t lda,
            const float* b, std::int64_t ldb, float beta, float* c,
            std::int64_t ldc, const float* bias, GemmEpilogue epilogue,
            GemmScratch* scratch);

// Gemm with pooled packing scratch; see GemmScratch.
void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc, GemmScratch* scratch);

// Convenience: C(MxN) = A(MxK) * B(KxN), contiguous row-major, overwrite C.
void MatMul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t n, std::int64_t k);

}  // namespace glsc
