#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace glsc {
namespace {

template <typename F>
Tensor Binary(const Tensor& a, const Tensor& b, F&& fn) {
  GLSC_CHECK_MSG(a.shape() == b.shape(),
                 "shape mismatch " << ShapeToString(a.shape()) << " vs "
                                   << ShapeToString(b.shape()));
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x / y; });
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  GLSC_CHECK(x.shape() == y->shape());
  const float* px = x.data();
  float* py = y->data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

Tensor AddScalar(const Tensor& a, float s) {
  return Map(a, [s](float x) { return x + s; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return Map(a, [s](float x) { return x * s; });
}

void MulScalarInPlace(Tensor* a, float s) {
  float* p = a->data();
  const std::int64_t n = a->numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] *= s;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = fn(pa[i]);
  return out;
}

Tensor Exp(const Tensor& a) {
  return Map(a, [](float x) { return std::exp(x); });
}
Tensor Sqrt(const Tensor& a) {
  return Map(a, [](float x) { return std::sqrt(x); });
}
Tensor Abs(const Tensor& a) {
  return Map(a, [](float x) { return std::fabs(x); });
}
Tensor Clamp(const Tensor& a, float lo, float hi) {
  return Map(a, [lo, hi](float x) { return std::clamp(x, lo, hi); });
}
Tensor Round(const Tensor& a) {
  return Map(a, [](float x) { return std::nearbyint(x); });
}

void ClampInPlace(Tensor* a, float lo, float hi) {
  float* p = a->data();
  const std::int64_t n = a->numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = std::clamp(p[i], lo, hi);
}

void RoundInPlace(Tensor* a) {
  float* p = a->data();
  const std::int64_t n = a->numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = std::nearbyint(p[i]);
}

double SumSquares(const Tensor& a) {
  const float* p = a.data();
  const std::int64_t n = a.numel();
  double s = 0.0;
  for (std::int64_t i = 0; i < n; ++i) s += static_cast<double>(p[i]) * p[i];
  return s;
}

double MeanSquaredError(const Tensor& a, const Tensor& b) {
  GLSC_CHECK(a.shape() == b.shape());
  GLSC_CHECK(a.numel() > 0);
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  double s = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pa[i]) - pb[i];
    s += d * d;
  }
  return s / static_cast<double>(n);
}

double DotProduct(const Tensor& a, const Tensor& b) {
  GLSC_CHECK(a.shape() == b.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  double s = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    s += static_cast<double>(pa[i]) * pb[i];
  }
  return s;
}

void SymmetricEigen(const std::vector<double>& a, int n,
                    std::vector<double>* eigvals,
                    std::vector<double>* eigvecs) {
  GLSC_CHECK(static_cast<int>(a.size()) == n * n);
  std::vector<double> m = a;          // working copy, becomes diagonal
  std::vector<double>& v = *eigvecs;  // accumulated rotations
  v.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) v[i * n + i] = 1.0;

  // Cyclic Jacobi sweeps: rotate away the largest off-diagonal entries until
  // convergence. O(n^3) per sweep; residual PCA uses n <= a few hundred.
  const int max_sweeps = 64;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) off += m[i * n + j] * m[i * n + j];
    }
    if (off < 1e-24) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = m[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m[p * n + p];
        const double aqq = m[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < n; ++k) {
          const double mkp = m[k * n + p];
          const double mkq = m[k * n + q];
          m[k * n + p] = c * mkp - s * mkq;
          m[k * n + q] = s * mkp + c * mkq;
        }
        for (int k = 0; k < n; ++k) {
          const double mpk = m[p * n + k];
          const double mqk = m[q * n + k];
          m[p * n + k] = c * mpk - s * mqk;
          m[q * n + k] = s * mpk + c * mqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  eigvals->resize(n);
  for (int i = 0; i < n; ++i) (*eigvals)[i] = m[i * n + i];

  // Sort descending by eigenvalue, permuting eigenvector columns to match.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return (*eigvals)[x] > (*eigvals)[y];
  });
  std::vector<double> sorted_vals(n);
  std::vector<double> sorted_vecs(static_cast<std::size_t>(n) * n);
  for (int col = 0; col < n; ++col) {
    sorted_vals[col] = (*eigvals)[order[col]];
    for (int row = 0; row < n; ++row) {
      sorted_vecs[row * n + col] = v[row * n + order[col]];
    }
  }
  *eigvals = std::move(sorted_vals);
  *eigvecs = std::move(sorted_vecs);
}

}  // namespace glsc
