// Dense row-major float32 ND tensor. This is the numeric substrate for the
// whole repository: the VAE, the diffusion UNet, the baselines and the PCA
// post-processor all operate on `Tensor`.
//
// Design notes
//  - Always contiguous. Storage is either OWNED (shared, 64-byte aligned) or
//    BORROWED (a view into a tensor::Workspace arena — see
//    tensor/workspace.h). Layers cache activations by value; an
//    explicit-backward engine does not need strides, and contiguity keeps
//    every kernel a flat loop the compiler can vectorize.
//  - Copy is cheap-ish (shared storage handle) but WRITES are not
//    copy-on-write: use Clone() before mutating a tensor that may be aliased.
//    All library code follows the convention that functions returning Tensor
//    return freshly-allocated storage, EXCEPT the workspace-aware inference
//    overloads, which return arena-backed views valid until the enclosing
//    Workspace::Scope resets.
//  - `Tensor(shape)` / `Zeros` zero-fill; `Empty` skips the memset for hot
//    paths that overwrite every element before reading any.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace glsc {

namespace tensor {
class Workspace;
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
// Aborts with a use-after-rewind diagnostic unless the allocation identified
// by (`ws`, `serial`) is still live (workspace.cc). Debug accessors call this
// through the provenance Workspace::NewTensor stamps into borrowed views.
void AssertBorrowValid(const Workspace* ws, std::uint64_t serial);
#endif
}  // namespace tensor

using Shape = std::vector<std::int64_t>;

std::string ShapeToString(const Shape& shape);
std::int64_t ShapeNumel(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  // Moves must reset the source: ptr_ is raw, so default-moving would leave
  // the source "defined" with a pointer whose storage keep-alive was taken —
  // a use-after-free the shared_ptr-only layout could not express. A
  // moved-from Tensor is indistinguishable from a default-constructed one.
  Tensor(Tensor&& other) noexcept { *this = std::move(other); }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      shape_ = std::move(other.shape_);
      storage_ = std::move(other.storage_);
      ptr_ = other.ptr_;
      defined_ = other.defined_;
      other.shape_.clear();
      other.ptr_ = nullptr;
      other.defined_ = false;
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
      arena_ = other.arena_;
      arena_serial_ = other.arena_serial_;
      other.arena_ = nullptr;
      other.arena_serial_ = 0;
#endif
    }
    return *this;
  }

  // Owned, zero-filled.
  explicit Tensor(Shape shape);

  // Owned, adopting `values` (no copy).
  Tensor(Shape shape, std::vector<float> values);

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  // Owned, UNINITIALIZED storage: every element must be written before it is
  // read. Use at call sites that fully overwrite the buffer (GEMM outputs
  // with beta = 0, elementwise op results, im2col targets); keep Zeros where
  // partial writes rely on zero-fill.
  static Tensor Empty(Shape shape);
  // Non-owning view over caller-managed memory (typically a Workspace arena).
  // The caller must keep `data` alive and must not let the view escape the
  // arena scope that produced it. Clone() lifts a view into owned storage.
  static Tensor Borrowed(float* data, Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f);
  static Tensor Uniform(Shape shape, Rng& rng, float lo, float hi);
  // 1D ramp [0, n), useful in tests.
  static Tensor Arange(std::int64_t n);

  bool defined() const { return defined_; }
  // True for arena/borrowed views (storage not owned by this tensor).
  bool borrowed() const { return defined_ && storage_ == nullptr; }
  const Shape& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const {
    GLSC_DCHECK(i < shape_.size());
    return shape_[i];
  }
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return ShapeNumel(shape_); }

  float* data() {
    CheckArenaBorrow();
    return ptr_;
  }
  const float* data() const {
    CheckArenaBorrow();
    return ptr_;
  }

  float& operator[](std::int64_t i) {
    CheckArenaBorrow();
    return ptr_[i];
  }
  float operator[](std::int64_t i) const {
    CheckArenaBorrow();
    return ptr_[i];
  }

  // Multi-index access (rank-checked in debug builds); for tests and
  // non-hot-path code.
  float& At(std::initializer_list<std::int64_t> idx);
  float At(std::initializer_list<std::int64_t> idx) const;

  // Deep copy into owned storage (also lifts borrowed views).
  Tensor Clone() const;

  // Same storage, new shape (numel must match).
  Tensor Reshape(Shape shape) const;

  // Structural helpers (all allocate fresh storage; the Workspace overloads
  // borrow the result from the arena instead).
  // Permute for rank<=5 tensors; perm is a permutation of axis indices.
  Tensor Permute(const std::vector<int>& perm) const;
  Tensor Permute(const std::vector<int>& perm, tensor::Workspace* ws) const;
  // Slice along axis 0: rows [begin, end).
  Tensor Slice0(std::int64_t begin, std::int64_t end) const;

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  // Scalar statistics (full reduction).
  float MinValue() const;
  float MaxValue() const;
  double Sum() const;
  double Mean() const;
  bool AllFinite() const;

 private:
  void PermuteInto(const std::vector<int>& perm, Tensor* out) const;

  // Use-after-rewind guard for arena-backed views; compiles to nothing (and
  // the provenance fields below to zero bytes) unless GLSC_DEBUG_ARENA is on.
  void CheckArenaBorrow() const {
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
    if (arena_ != nullptr) tensor::AssertBorrowValid(arena_, arena_serial_);
#endif
  }

  Shape shape_;
  // Keep-alive handle for owned storage; null for borrowed views and
  // default-constructed tensors. All element access goes through ptr_.
  std::shared_ptr<void> storage_;
  float* ptr_ = nullptr;
  bool defined_ = false;

#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  // Which arena allocation this view borrows from (null for owned storage or
  // non-arena borrows). Stamped by Workspace::NewTensor, propagated by
  // copy/move/Reshape, cleared by Clone (which lifts to owned storage).
  friend class tensor::Workspace;
  const tensor::Workspace* arena_ = nullptr;
  std::uint64_t arena_serial_ = 0;
#endif
};

// Concatenate along axis 0. All inputs must agree on trailing dims.
Tensor Concat0(const std::vector<Tensor>& parts);

}  // namespace glsc
