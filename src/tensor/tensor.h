// Dense row-major float32 ND tensor. This is the numeric substrate for the
// whole repository: the VAE, the diffusion UNet, the baselines and the PCA
// post-processor all operate on `Tensor`.
//
// Design notes
//  - Always contiguous and owning. Layers cache activations by value; an
//    explicit-backward engine does not need views or strides, and contiguity
//    keeps every kernel a flat loop the compiler can vectorize.
//  - Copy is cheap-ish (shared_ptr to storage) but WRITES are not
//    copy-on-write: use Clone() before mutating a tensor that may be aliased.
//    All library code follows the convention that functions returning Tensor
//    return freshly-allocated storage.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace glsc {

using Shape = std::vector<std::int64_t>;

std::string ShapeToString(const Shape& shape);
std::int64_t ShapeNumel(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(std::make_shared<std::vector<float>>(
            static_cast<std::size_t>(ShapeNumel(shape_)), 0.0f)) {}

  Tensor(Shape shape, std::vector<float> values)
      : shape_(std::move(shape)),
        data_(std::make_shared<std::vector<float>>(std::move(values))) {
    GLSC_CHECK_MSG(static_cast<std::int64_t>(data_->size()) ==
                       ShapeNumel(shape_),
                   "value count " << data_->size() << " != numel of "
                                  << ShapeToString(shape_));
  }

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value);
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f);
  static Tensor Uniform(Shape shape, Rng& rng, float lo, float hi);
  // 1D ramp [0, n), useful in tests.
  static Tensor Arange(std::int64_t n);

  bool defined() const { return data_ != nullptr; }
  const Shape& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const {
    GLSC_DCHECK(i < shape_.size());
    return shape_[i];
  }
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return ShapeNumel(shape_); }

  float* data() { return data_->data(); }
  const float* data() const { return data_->data(); }

  float& operator[](std::int64_t i) { return (*data_)[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return (*data_)[static_cast<std::size_t>(i)];
  }

  // Multi-index access (rank-checked in debug builds); for tests and
  // non-hot-path code.
  float& At(std::initializer_list<std::int64_t> idx);
  float At(std::initializer_list<std::int64_t> idx) const;

  // Deep copy.
  Tensor Clone() const;

  // Same storage, new shape (numel must match).
  Tensor Reshape(Shape shape) const;

  // Structural helpers (all allocate fresh storage).
  // Permute for rank<=5 tensors; perm is a permutation of axis indices.
  Tensor Permute(const std::vector<int>& perm) const;
  // Slice along axis 0: rows [begin, end).
  Tensor Slice0(std::int64_t begin, std::int64_t end) const;

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  // Scalar statistics (full reduction).
  float MinValue() const;
  float MaxValue() const;
  double Sum() const;
  double Mean() const;
  bool AllFinite() const;

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> data_;
};

// Concatenate along axis 0. All inputs must agree on trailing dims.
Tensor Concat0(const std::vector<Tensor>& parts);

}  // namespace glsc
