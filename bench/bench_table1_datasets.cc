// Table 1: dataset inventory. Prints the paper's original datasets next to
// the scaled synthetic analogues this reproduction generates, with real
// in-memory sizes of the generated fields.
#include <cstdio>

#include "data/dataset.h"
#include "data/field_generators.h"
#include "harness.h"

int main() {
  using namespace glsc;
  bench::PrintHeader("Table 1 — Datasets (paper original vs scaled analogue)");

  struct PaperRow {
    const char* app;
    const char* domain;
    const char* dims;
    const char* size;
  };
  const PaperRow paper_rows[] = {
      {"E3SM", "Climate", "5 x 8640 x 240 x 1440", "59.7 GB"},
      {"S3D", "Combustion", "58 x 200 x 512 x 512", "24.3 GB"},
      {"JHTDB", "Turbulence", "64 x 256 x 512 x 512", "34.3 GB"},
  };
  const data::DatasetKind kinds[] = {data::DatasetKind::kClimate,
                                     data::DatasetKind::kCombustion,
                                     data::DatasetKind::kTurbulence};

  std::printf("%-10s %-12s %-26s %-9s | %-22s %-10s %s\n", "App", "Domain",
              "Paper dims", "Paper", "Analogue dims", "Size", "Generator");
  for (int i = 0; i < 3; ++i) {
    const bench::Preset preset = bench::MakePreset(kinds[i]);
    const Tensor field = data::GenerateField(kinds[i], preset.spec);
    data::SequenceDataset dataset(field);
    char dims[64];
    std::snprintf(dims, sizeof dims, "%lld x %lld x %lld x %lld",
                  static_cast<long long>(field.dim(0)),
                  static_cast<long long>(field.dim(1)),
                  static_cast<long long>(field.dim(2)),
                  static_cast<long long>(field.dim(3)));
    char size[32];
    std::snprintf(size, sizeof size, "%.2f MB",
                  static_cast<double>(dataset.OriginalBytes()) / (1 << 20));
    std::printf("%-10s %-12s %-26s %-9s | %-22s %-10s %s\n",
                paper_rows[i].app, paper_rows[i].domain, paper_rows[i].dims,
                paper_rows[i].size, dims, size, data::DatasetName(kinds[i]));
    std::printf("  range [%g, %g], finite=%d\n", field.MinValue(),
                field.MaxValue(), field.AllFinite());
  }
  return 0;
}
