#include "harness.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tensor/metrics.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace glsc::bench {

std::string ArtifactsDir() {
  const char* env = std::getenv("GLSC_ARTIFACTS");
  return env != nullptr ? env : "artifacts";
}

Preset MakePreset(data::DatasetKind kind) {
  Preset preset;
  preset.kind = kind;
  preset.spec.frames = 48;
  preset.spec.height = 32;
  preset.spec.width = 32;
  switch (kind) {
    case data::DatasetKind::kClimate:
      preset.spec.variables = 2;  // paper: 5 climate variables
      preset.spec.seed = 42;
      break;
    case data::DatasetKind::kCombustion:
      preset.spec.variables = 3;  // paper: 58 species
      preset.spec.seed = 43;
      break;
    case data::DatasetKind::kTurbulence:
      preset.spec.variables = 2;  // paper: velocity components
      preset.spec.seed = 44;
      break;
  }

  core::GlscConfig& g = preset.glsc;
  g.vae.latent_channels = 8;
  g.vae.hidden_channels = 24;
  g.vae.hyper_channels = 4;
  g.vae.seed = 17 + static_cast<std::uint64_t>(kind);
  g.unet.latent_channels = 8;
  g.unet.model_channels = 16;
  g.unet.heads = 4;
  g.unet.seed = 41 + static_cast<std::uint64_t>(kind);
  g.schedule_steps = 200;
  g.window = 16;
  g.interval = 3;
  g.sample_steps = 32;

  core::TrainBudget& b = preset.budget;
  b.vae.iterations = 1200;
  b.vae.batch_size = 4;
  b.vae.crop = 32;
  b.vae.lambda_double_at = 600;
  b.vae.lr_decay_every = 600;
  b.vae.log_every = 600;
  b.diffusion.iterations = 600;
  b.diffusion.crop = 32;
  b.diffusion.log_every = 300;
  // Match the paper's recipe: long-schedule training then a short 32-step
  // fine-tune so the default 32-step sampler is in-distribution.
  b.finetune_steps = 32;
  b.finetune_iterations = 120;
  b.pca_fit_windows = 4;
  return preset;
}

Preset MakeAblationPreset(data::DatasetKind kind) {
  Preset preset = MakePreset(kind);
  preset.spec.frames = 48;
  preset.spec.variables = 1;
  preset.glsc.vae.latent_channels = 8;
  preset.glsc.unet.latent_channels = 8;
  preset.glsc.unet.model_channels = 12;
  preset.budget.vae.iterations = 800;
  preset.budget.diffusion.iterations = 300;
  preset.budget.finetune_iterations = 80;
  return preset;
}

std::vector<WindowRecon> ReconstructAll(const data::SequenceDataset& dataset,
                                        std::int64_t window,
                                        const ReconFn& fn) {
  std::vector<WindowRecon> out;
  for (const auto& ref : dataset.EvaluationWindows(window)) {
    const Tensor frames = dataset.NormalizedWindow(ref.variable, ref.t0, window);
    WindowRecon recon = fn(frames, ref.variable, ref.t0);
    recon.variable = ref.variable;
    recon.t0 = ref.t0;
    out.push_back(std::move(recon));
  }
  return out;
}

std::vector<RdPoint> SweepBounds(const data::SequenceDataset& dataset,
                                 const std::vector<WindowRecon>& recons,
                                 const postprocess::ResidualPca& pca,
                                 const std::vector<double>& taus) {
  const double global_range =
      static_cast<double>(dataset.raw().MaxValue()) -
      dataset.raw().MinValue();
  const auto total_points = static_cast<double>(dataset.raw().numel());
  // Reconstructed-at-bench-scale: eval windows may not tile the temporal axis
  // exactly; count only covered points.
  double covered_points = 0.0;
  for (const auto& r : recons) covered_points += static_cast<double>(r.window.numel());
  (void)total_points;

  std::vector<RdPoint> points;
  for (const double tau : taus) {
    double sq_err = 0.0;
    std::size_t bytes = 0;
    for (const auto& r : recons) {
      bytes += r.base_bytes;
      const std::int64_t n = r.window.dim(0);
      const std::int64_t hw = r.window.dim(1) * r.window.dim(2);
      for (std::int64_t f = 0; f < n; ++f) {
        Tensor orig({r.window.dim(1), r.window.dim(2)});
        Tensor rec({r.window.dim(1), r.window.dim(2)});
        std::copy_n(r.window.data() + f * hw, hw, orig.data());
        std::copy_n(r.recon.data() + f * hw, hw, rec.data());
        if (tau > 0.0) {
          const auto correction = pca.Correct(orig, &rec, tau);
          bytes += correction.payload.size();
        }
        // Physical-units error for this frame (Eq. 12 numerator): the frame
        // normalization is affine, so err_phys = err_norm * range_f.
        const auto& norm = dataset.norm(r.variable, r.t0 + f);
        double frame_sq = 0.0;
        for (std::int64_t i = 0; i < hw; ++i) {
          const double d = static_cast<double>(orig[i]) - rec[i];
          frame_sq += d * d;
        }
        sq_err += frame_sq * static_cast<double>(norm.range) * norm.range;
      }
    }
    RdPoint point;
    point.tau = tau;
    point.bytes = bytes;
    point.nrmse = std::sqrt(sq_err / covered_points) / global_range;
    const double original_bytes = covered_points * sizeof(float);
    point.cr = original_bytes / static_cast<double>(bytes);
    points.push_back(point);
  }
  return points;
}

std::vector<RdPoint> RuleCurve(const data::SequenceDataset& dataset,
                               const RuleFn& compress,
                               const RuleDecodeFn& decompress,
                               const std::vector<double>& rel_bounds) {
  const Tensor& raw = dataset.raw();
  const double global_range =
      static_cast<double>(raw.MaxValue()) - raw.MinValue();
  std::vector<RdPoint> points;
  for (const double rel : rel_bounds) {
    double sq_err = 0.0;
    std::size_t bytes = 0;
    double covered = 0.0;
    for (std::int64_t v = 0; v < dataset.variables(); ++v) {
      // Rule-based compressors run per variable on the raw 3D field with a
      // bound scaled to that variable's own range (standard practice for
      // multi-variable datasets).
      Tensor field({dataset.frames(), dataset.height(), dataset.width()});
      std::copy_n(raw.data() + v * field.numel(), field.numel(), field.data());
      const double vrange =
          static_cast<double>(field.MaxValue()) - field.MinValue();
      const double bound = std::max(rel * vrange, 1e-30);
      const auto stream = compress(field, bound);
      const Tensor recon = decompress(stream);
      bytes += stream.size();
      covered += static_cast<double>(field.numel());
      const float* pa = field.data();
      const float* pb = recon.data();
      for (std::int64_t i = 0; i < field.numel(); ++i) {
        const double d = static_cast<double>(pa[i]) - pb[i];
        sq_err += d * d;
      }
    }
    RdPoint point;
    point.tau = rel;
    point.bytes = bytes;
    point.nrmse = std::sqrt(sq_err / covered) / global_range;
    point.cr = covered * sizeof(float) / static_cast<double>(bytes);
    points.push_back(point);
  }
  return points;
}

postprocess::ResidualPca FitPcaFor(const data::SequenceDataset& dataset,
                                   std::int64_t window, const ReconFn& fn,
                                   std::int64_t fit_windows,
                                   const postprocess::PcaConfig& config) {
  postprocess::ResidualPca pca(config);
  Rng rng(7);
  std::vector<Tensor> residual_frames;
  for (std::int64_t k = 0; k < fit_windows; ++k) {
    const std::int64_t v = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(dataset.variables())));
    const std::int64_t t0 = static_cast<std::int64_t>(rng.UniformInt(
        static_cast<std::uint64_t>(dataset.frames() - window + 1)));
    const Tensor frames = dataset.NormalizedWindow(v, t0, window);
    const WindowRecon recon = fn(frames, v, t0);
    const Tensor residual = Sub(frames, recon.recon);
    const std::int64_t hw = frames.dim(1) * frames.dim(2);
    for (std::int64_t f = 0; f < window; ++f) {
      Tensor frame({frames.dim(1), frames.dim(2)});
      std::copy_n(residual.data() + f * hw, hw, frame.data());
      residual_frames.push_back(std::move(frame));
    }
  }
  pca.Fit(residual_frames);
  return pca;
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void PrintCurve(const std::string& method,
                const std::vector<RdPoint>& points) {
  for (const auto& p : points) {
    std::printf("%-14s bound=%-10.3g CR=%-10.2f NRMSE=%-12.4e bytes=%zu\n",
                method.c_str(), p.tau, p.cr, p.nrmse, p.bytes);
  }
  std::fflush(stdout);
}

void PrintNote(const std::string& note) {
  std::printf("  # %s\n", note.c_str());
  std::fflush(stdout);
}

std::vector<double> DefaultTaus() {
  // Normalized per-frame L2 bounds; frames are 32x32 with unit range, so
  // tau = 0.32 corresponds to ~1e-2 per-point RMS.
  return {1.2, 0.6, 0.3, 0.15, 0.08, 0.04};
}

std::vector<double> DefaultRelBounds() {
  return {3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4};
}

}  // namespace glsc::bench
