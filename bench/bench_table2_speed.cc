// Table 2: encode / decode throughput (MB/s) for the generation-based
// codecs. Paper shape (CPU analogue of the A100/RTX rows): encoding is a
// single lightweight VAE pass for every method; decoding runs the reverse
// diffusion — in PIXEL space for CDC/GCD, in LATENT space for ours — so our
// decode is 1-2 orders of magnitude faster at matched steps and scales
// inversely with step count.
#include <cstdio>

#include "harness.h"
#include "util/timer.h"

namespace {

using namespace glsc;

struct SpeedRow {
  std::string method;
  double encode_mbps;
  double decode_mbps;
};

void Print(const SpeedRow& row) {
  std::printf("%-16s encode %8.2f MB/s    decode %8.4f MB/s\n",
              row.method.c_str(), row.encode_mbps, row.decode_mbps);
  std::fflush(stdout);
}

}  // namespace

int main() {
  const bench::Preset preset = bench::MakePreset(data::DatasetKind::kClimate);
  data::SequenceDataset dataset(
      data::GenerateField(data::DatasetKind::kClimate, preset.spec));
  const std::int64_t n = preset.glsc.window;
  const std::string tag = data::DatasetName(preset.kind);

  bench::PrintHeader(
      "Table 2 — Inference speed on this host "
      "(paper: ours > CDC > GCD, decode scales ~1/steps)");

  // Fixed corpus: all evaluation windows of variable 0.
  std::vector<Tensor> corpus;
  for (const auto& ref : dataset.EvaluationWindows(n)) {
    if (ref.variable != 0) continue;
    corpus.push_back(dataset.NormalizedWindow(ref.variable, ref.t0, n));
  }
  double corpus_mb = 0.0;
  for (const auto& w : corpus) {
    corpus_mb += static_cast<double>(w.numel()) * sizeof(float) / (1 << 20);
  }
  std::printf("corpus: %zu windows, %.2f MB\n", corpus.size(), corpus_mb);

  // ---- CDC (both parameterizations) ----
  for (const bool is_eps : {false, true}) {
    baselines::CdcConfig config;
    config.vae = preset.glsc.vae;
    config.vae.seed += is_eps ? 200 : 300;
    config.model_channels = 16;
    config.schedule_steps = preset.glsc.schedule_steps;
    config.target = is_eps ? baselines::PredictTarget::kEpsilon
                           : baselines::PredictTarget::kX0;
    auto cdc = core::GetOrTrain<baselines::CDCCompressor>(
        bench::ArtifactsDir(), (is_eps ? "cdc_eps_" : "cdc_x_") + tag,
        [&] { return std::make_unique<baselines::CDCCompressor>(config); },
        [&](baselines::CDCCompressor* m) {
          m->Train(dataset, preset.budget.vae,
                   preset.budget.diffusion.iterations, 32);
        });

    std::vector<baselines::CDCCompressor::Compressed> streams;
    Timer enc;
    for (const auto& w : corpus) streams.push_back(cdc->Compress(w));
    const double t_enc = enc.Seconds();
    Rng rng(5);
    Timer dec;
    for (const auto& s : streams) cdc->Decompress(s, 32, rng);
    const double t_dec = dec.Seconds();
    Print({is_eps ? "CDC-eps" : "CDC-X", corpus_mb / t_enc,
           corpus_mb / t_dec});
  }

  // ---- GCD ----
  {
    baselines::GcdConfig config;
    config.vae = preset.glsc.vae;
    config.vae.seed += 400;
    config.model_channels = 16;
    config.schedule_steps = preset.glsc.schedule_steps;
    config.window = 8;
    auto gcd = core::GetOrTrain<baselines::GCDCompressor>(
        bench::ArtifactsDir(), "gcd_" + tag,
        [&] { return std::make_unique<baselines::GCDCompressor>(config); },
        [&](baselines::GCDCompressor* m) {
          m->Train(dataset, preset.budget.vae,
                   preset.budget.diffusion.iterations, 32);
        });
    std::vector<baselines::GCDCompressor::Compressed> streams;
    Timer enc;
    for (const auto& w : corpus) {
      for (std::int64_t f0 = 0; f0 + 8 <= n; f0 += 8) {
        streams.push_back(gcd->Compress(w.Slice0(f0, f0 + 8)));
      }
    }
    const double t_enc = enc.Seconds();
    Rng rng(7);
    Timer dec;
    for (const auto& s : streams) gcd->Decompress(s, 32, rng);
    const double t_dec = dec.Seconds();
    Print({"GCD", corpus_mb / t_enc, corpus_mb / t_dec});
  }

  // ---- Ours at {64, 32, 8} steps ----
  {
    auto ours = core::GetOrTrainGlsc(dataset, preset.glsc, preset.budget,
                                     bench::ArtifactsDir(), "glsc_" + tag);
    // Encoding does not depend on the step count: keyframes through the VAE
    // and entropy coder.
    std::vector<core::CompressedWindow> streams;
    Timer enc;
    for (const auto& w : corpus) {
      const Tensor keys = diffusion::GatherFrames(w, ours->keyframe_indices());
      auto bits = ours->vae().Compress(
          keys.Reshape({keys.dim(0), 1, keys.dim(1), keys.dim(2)}));
      core::CompressedWindow cw;
      cw.keyframes = std::move(bits);
      cw.window_shape = w.shape();
      streams.push_back(std::move(cw));
    }
    const double t_enc = enc.Seconds();

    for (const std::int64_t steps : {64, 32, 8}) {
      Timer dec;
      for (const auto& s : streams) ours->Decompress(s, steps);
      const double t_dec = dec.Seconds();
      Print({"Ours-" + std::to_string(steps) + "-steps", corpus_mb / t_enc,
             corpus_mb / t_dec});
    }
  }

  bench::PrintNote(
      "paper claims at 32 steps: >2x CDC encode, >15x CDC decode, >3x/200x "
      "GCD — check the ratios above");
  return 0;
}
