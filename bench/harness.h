// Shared plumbing for the per-table / per-figure benchmark harnesses.
//
// Every experiment follows the same shape: build the scaled dataset analogue,
// train (or load cached) models, reconstruct all evaluation windows once, and
// sweep the error-bound postprocessing to trace a rate-distortion curve with
// REAL byte counts. This header centralizes the presets and sweep logic so
// each bench_*.cc file reads like the experiment description in the paper.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "baselines/cdc.h"
#include "baselines/gcd.h"
#include "baselines/sz_like.h"
#include "baselines/vae_sr.h"
#include "baselines/zfp_like.h"
#include "core/glsc_compressor.h"
#include "core/registry.h"
#include "data/dataset.h"
#include "postprocess/residual_pca.h"

namespace glsc::bench {

// Where trained models are cached between bench runs.
std::string ArtifactsDir();

struct Preset {
  data::DatasetKind kind;
  data::FieldSpec spec;
  core::GlscConfig glsc;
  core::TrainBudget budget;
};

// Bench-scale preset for one dataset analogue (see DESIGN.md §6).
Preset MakePreset(data::DatasetKind kind);

// Smaller/faster preset used by ablation benches that train several model
// variants (Figures 2, 4, 5).
Preset MakeAblationPreset(data::DatasetKind kind);

struct RdPoint {
  double tau = 0.0;
  double cr = 0.0;
  double nrmse = 0.0;
  std::size_t bytes = 0;
};

// A method's uncorrected reconstruction of one normalized window plus the
// base (latent + header) bytes it stored to produce it.
struct WindowRecon {
  Tensor window;  // original normalized frames [N, H, W]
  Tensor recon;   // uncorrected reconstruction, same shape
  std::size_t base_bytes = 0;
  std::int64_t variable = 0;
  std::int64_t t0 = 0;
};

using ReconFn =
    std::function<WindowRecon(const Tensor& window, std::int64_t variable,
                              std::int64_t t0)>;

// Reconstructs every evaluation window once.
std::vector<WindowRecon> ReconstructAll(const data::SequenceDataset& dataset,
                                        std::int64_t window,
                                        const ReconFn& fn);

// Sweeps the PCA error bound over pre-computed reconstructions: for each tau,
// corrections are (re)computed per frame, byte totals accumulated, and NRMSE
// measured on the PHYSICAL (de-normalized) data per Eq. 12.
std::vector<RdPoint> SweepBounds(const data::SequenceDataset& dataset,
                                 const std::vector<WindowRecon>& recons,
                                 const postprocess::ResidualPca& pca,
                                 const std::vector<double>& taus);

// Rule-based curve: sweeps pointwise absolute bounds (relative to the global
// range) through a compressor callback returning (bytes, reconstruction).
using RuleFn = std::function<std::vector<std::uint8_t>(const Tensor& field,
                                                       double abs_bound)>;
using RuleDecodeFn = std::function<Tensor(const std::vector<std::uint8_t>&)>;
std::vector<RdPoint> RuleCurve(const data::SequenceDataset& dataset,
                               const RuleFn& compress,
                               const RuleDecodeFn& decompress,
                               const std::vector<double>& rel_bounds);

// Fits a PCA correction basis from a method's residuals on training windows.
postprocess::ResidualPca FitPcaFor(const data::SequenceDataset& dataset,
                                   std::int64_t window, const ReconFn& fn,
                                   std::int64_t fit_windows,
                                   const postprocess::PcaConfig& config = {});

// Pretty-printing helpers: every bench prints machine-greppable rows.
void PrintHeader(const std::string& title);
void PrintCurve(const std::string& method, const std::vector<RdPoint>& points);
void PrintNote(const std::string& note);

// Default tau ladder for learned-method sweeps (normalized units).
std::vector<double> DefaultTaus();
// Default relative-bound ladder for rule-based sweeps.
std::vector<double> DefaultRelBounds();

}  // namespace glsc::bench
