// Figure 3a: CR vs NRMSE on the E3SM climate analogue.
// Methods: ZFP-like, SZ3-like (rule-based); CDC-X, CDC-eps, GCD, VAE-SR,
// Ours (learned). Paper shape: learned methods dominate rule-based by 4-10x
// CR at equal NRMSE; Ours leads VAE-SR by up to 63%.
#include "fig3_common.h"

int main() {
  glsc::bench::Fig3Options options;
  options.include_gcd = true;  // GCD appears in Fig. 3a only
  glsc::bench::RunFig3(glsc::data::DatasetKind::kClimate, "Figure 3a", options);
  return 0;
}
