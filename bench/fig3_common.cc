#include "fig3_common.h"

#include <algorithm>
#include <cstdio>

#include "harness.h"
#include "util/logging.h"
#include "util/timer.h"

namespace glsc::bench {
namespace {

// Header bytes a per-frame learned codec must store alongside its latents:
// per-frame normalization pair + window geometry.
std::size_t FrameHeaderBytes(std::int64_t frames) {
  return 12 + static_cast<std::size_t>(frames) * 2 * sizeof(float);
}

compress::VaeTrainConfig BaselineVaeTrain(const core::TrainBudget& budget) {
  compress::VaeTrainConfig cfg = budget.vae;
  return cfg;
}

// Finds, for a set of reference NRMSE levels, the CR each method achieves by
// interpolating its curve; used for the headline "ours vs X" ratios.
double CrAtNrmse(const std::vector<RdPoint>& curve, double target) {
  // Curves are swept from loose to tight; find the two points bracketing the
  // target and interpolate CR in log space.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double hi = curve[i - 1].nrmse;
    const double lo = curve[i].nrmse;
    if (target <= hi && target >= lo) {
      const double t = (std::log(target) - std::log(lo)) /
                       std::max(std::log(hi) - std::log(lo), 1e-12);
      return std::exp(std::log(curve[i].cr) +
                      t * (std::log(curve[i - 1].cr) - std::log(curve[i].cr)));
    }
  }
  return 0.0;  // target outside the measured range
}

}  // namespace

void RunFig3(data::DatasetKind kind, const std::string& figure_name,
             const Fig3Options& options) {
  const Preset preset = MakePreset(kind);
  data::SequenceDataset dataset(data::GenerateField(kind, preset.spec));
  const std::string dataset_tag = data::DatasetName(kind);
  const std::int64_t window = preset.glsc.window;

  PrintHeader(figure_name + " — CR vs NRMSE on " + dataset_tag +
              " (paper: learned >> rule-based; Ours > VAE-SR > CDC)");

  // ---------------- rule-based baselines ----------------
  {
    baselines::SZLikeCompressor sz;
    const auto curve = RuleCurve(
        dataset,
        [&sz](const Tensor& f, double b) { return sz.Compress(f, b); },
        [&sz](const std::vector<std::uint8_t>& s) { return sz.Decompress(s); },
        DefaultRelBounds());
    PrintCurve("SZ3-like", curve);
  }
  {
    baselines::ZFPLikeCompressor zfp;
    const auto curve = RuleCurve(
        dataset,
        [&zfp](const Tensor& f, double b) { return zfp.Compress(f, b); },
        [&zfp](const std::vector<std::uint8_t>& s) { return zfp.Decompress(s); },
        DefaultRelBounds());
    PrintCurve("ZFP-like", curve);
  }

  // ---------------- ours ----------------
  Timer timer;
  auto ours = core::GetOrTrainGlsc(dataset, preset.glsc, preset.budget,
                                   ArtifactsDir(),
                                   std::string("glsc_") + dataset_tag);
  ReconFn ours_fn = [&](const Tensor& w, std::int64_t, std::int64_t) {
    Tensor recon;
    const auto compressed = ours->Compress(w, -1.0, options.decode_steps, &recon);
    return WindowRecon{w, recon,
                       compressed.LatentBytes() + compressed.HeaderBytes()};
  };
  const auto ours_recons = ReconstructAll(dataset, window, ours_fn);
  const auto ours_curve =
      SweepBounds(dataset, ours_recons, ours->pca(), DefaultTaus());
  PrintCurve("Ours", ours_curve);
  auto base_bytes = [](const std::vector<WindowRecon>& recons) {
    std::size_t total = 0;
    for (const auto& r : recons) total += r.base_bytes;
    return total / std::max<std::size_t>(recons.size(), 1);
  };
  const std::size_t ours_base = base_bytes(ours_recons);
  PrintNote("Ours stores " + std::to_string(ours_base) +
            " base bytes/window (keyframe latents only)");

  // ---------------- VAE-SR ----------------
  std::vector<RdPoint> vaesr_curve;
  {
    baselines::VaeSrConfig config;
    config.vae = preset.glsc.vae;
    config.vae.seed += 100;
    config.sr_channels = 16;
    auto vaesr = core::GetOrTrain<baselines::VAESRCompressor>(
        ArtifactsDir(), std::string("vaesr_") + dataset_tag,
        [&] { return std::make_unique<baselines::VAESRCompressor>(config); },
        [&](baselines::VAESRCompressor* m) {
          m->Train(dataset, BaselineVaeTrain(preset.budget),
                   /*sr_iters=*/preset.budget.vae.iterations, /*crop=*/32);
        });
    ReconFn fn = [&](const Tensor& w, std::int64_t, std::int64_t) {
      const auto compressed = vaesr->Compress(w);
      return WindowRecon{w, vaesr->Decompress(compressed),
                         compressed.frames.TotalBytes() +
                             FrameHeaderBytes(w.dim(0))};
    };
    const auto pca = FitPcaFor(dataset, window, fn, 3);
    const auto recons = ReconstructAll(dataset, window, fn);
    vaesr_curve = SweepBounds(dataset, recons, pca, DefaultTaus());
    PrintCurve("VAE-SR", vaesr_curve);
    std::size_t total = 0;
    for (const auto& r : recons) total += r.base_bytes;
    PrintNote("VAE-SR stores " + std::to_string(total / recons.size()) +
              " base bytes/window (low-res latents for EVERY frame)");
  }

  // ---------------- CDC (both parameterizations) ----------------
  for (const auto target : {baselines::PredictTarget::kEpsilon,
                            baselines::PredictTarget::kX0}) {
    const bool is_eps = target == baselines::PredictTarget::kEpsilon;
    baselines::CdcConfig config;
    config.vae = preset.glsc.vae;
    config.vae.seed += is_eps ? 200 : 300;
    config.model_channels = 16;
    config.schedule_steps = preset.glsc.schedule_steps;
    config.target = target;
    const std::string tag =
        std::string(is_eps ? "cdc_eps_" : "cdc_x_") + dataset_tag;
    auto cdc = core::GetOrTrain<baselines::CDCCompressor>(
        ArtifactsDir(), tag,
        [&] { return std::make_unique<baselines::CDCCompressor>(config); },
        [&](baselines::CDCCompressor* m) {
          m->Train(dataset, BaselineVaeTrain(preset.budget),
                   /*diffusion_iters=*/400, /*crop=*/32);
        });
    ReconFn fn = [&](const Tensor& w, std::int64_t v, std::int64_t t0) {
      const auto compressed = cdc->Compress(w);
      Rng rng(static_cast<std::uint64_t>(v * 1000 + t0));
      return WindowRecon{w, cdc->Decompress(compressed, options.decode_steps, rng),
                         compressed.frames.TotalBytes() +
                             FrameHeaderBytes(w.dim(0))};
    };
    const auto pca = FitPcaFor(dataset, window, fn, 3);
    const auto curve = SweepBounds(dataset, ReconstructAll(dataset, window, fn),
                                   pca, DefaultTaus());
    PrintCurve(is_eps ? "CDC-eps" : "CDC-X", curve);
  }

  // ---------------- GCD (Fig. 3a only) ----------------
  if (options.include_gcd) {
    baselines::GcdConfig config;
    config.vae = preset.glsc.vae;
    config.vae.seed += 400;
    config.model_channels = 16;
    config.schedule_steps = preset.glsc.schedule_steps;
    config.window = 8;
    auto gcd = core::GetOrTrain<baselines::GCDCompressor>(
        ArtifactsDir(), std::string("gcd_") + dataset_tag,
        [&] { return std::make_unique<baselines::GCDCompressor>(config); },
        [&](baselines::GCDCompressor* m) {
          m->Train(dataset, BaselineVaeTrain(preset.budget),
                   /*diffusion_iters=*/250, /*crop=*/32);
        });
    ReconFn fn = [&](const Tensor& w, std::int64_t v, std::int64_t t0) {
      // GCD blocks are 8 frames; tile the 16-frame eval window.
      WindowRecon out{w, Tensor(w.shape()), 0};
      Rng rng(static_cast<std::uint64_t>(v * 1000 + t0) + 5);
      const std::int64_t block = gcd->window();
      for (std::int64_t f0 = 0; f0 < w.dim(0); f0 += block) {
        const Tensor chunk = w.Slice0(f0, f0 + block);
        const auto compressed = gcd->Compress(chunk);
        const Tensor rec = gcd->Decompress(compressed, options.decode_steps, rng);
        std::copy_n(rec.data(), rec.numel(),
                    out.recon.data() + f0 * w.dim(1) * w.dim(2));
        out.base_bytes += compressed.frames.TotalBytes();
      }
      out.base_bytes += FrameHeaderBytes(w.dim(0));
      return out;
    };
    const auto pca = FitPcaFor(dataset, window, fn, 2);
    const auto curve = SweepBounds(dataset, ReconstructAll(dataset, window, fn),
                                   pca, DefaultTaus());
    PrintCurve("GCD", curve);
  }

  // ---------------- paper-shape summary ----------------
  PrintNote("elapsed " + std::to_string(timer.Seconds()) + "s");
  const double ref = ours_curve[ours_curve.size() / 2].nrmse;
  const double ours_cr = CrAtNrmse(ours_curve, ref);
  const double vaesr_cr = CrAtNrmse(vaesr_curve, ref);
  if (ours_cr > 0.0 && vaesr_cr > 0.0) {
    std::printf(
        "  summary: at NRMSE=%.3e  CR(ours)=%.1f  CR(VAE-SR)=%.1f  "
        "ours/VAE-SR=%.2fx (paper: 1.2-1.63x)\n",
        ref, ours_cr, vaesr_cr, ours_cr / vaesr_cr);
  }
}

}  // namespace glsc::bench
