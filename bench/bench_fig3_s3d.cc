// Figure 3b: CR vs NRMSE on the S3D combustion analogue.
// Paper shape: up to 10x over SZ3 and 62% over VAE-SR at equal NRMSE.
#include "fig3_common.h"

int main() {
  glsc::bench::Fig3Options options;
  options.include_gcd = false;
  glsc::bench::RunFig3(glsc::data::DatasetKind::kCombustion, "Figure 3b",
                       options);
  return 0;
}
