// Filter-pipeline micro-bench: what the v4 container's lossless stage costs
// and buys. Three measurement groups, one JSON blob (BENCH_filters.json):
//
//   kernels  — bitshuffle / delta / glz encode+decode GB/s at every ISA
//              level this host can dispatch (scalar..AVX-512), on a
//              structured f32-shaped buffer
//   archives — per codec: v4 (filtered) vs v3 (raw) archive size on the
//              trajectory config, the ratio check.sh tracks across PRs
//   fetch    — per codec: file-backed ReadPayload MB/s (decoded bytes per
//              second) over the whole archive, v3 vs v4 — the acceptance
//              bar is that filtered fetch is no worse than raw
//
// scripts/check.sh runs this with --codecs=sz (model-free, fast) and greps
// the JSON for required fields and non-finite values; bench_smoke.sh runs
// the full --codecs=glsc,sz trajectory (glsc trains or reuses the cached
// e2e artifact).
//
//   ./bench_filters [--codecs=sz] [--frames=128] [--hw=32] [--variables=2]
//                   [--mb=8] [--reps=5] [--json=BENCH_filters.json]
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "core/archive_reader.h"
#include "core/container.h"
#include "core/filters.h"
#include "data/field_generators.h"
#include "harness.h"
#include "tensor/simd/dispatch.h"
#include "tensor/workspace.h"
#include "util/flags.h"
#include "util/timer.h"

namespace {

using namespace glsc;

std::vector<std::string> SplitCodecs(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// Structured buffer with the byte statistics the filters target: smooth f32
// series (norms-like) interleaved with quantized ramps (residual-like).
std::vector<std::uint8_t> StructuredBuffer(std::size_t bytes) {
  std::vector<std::uint8_t> buf(bytes);
  const std::size_t floats = bytes / sizeof(float);
  for (std::size_t i = 0; i < floats; ++i) {
    const float f = 1.0f + 0.0005f * static_cast<float>(i % 4093);
    std::memcpy(buf.data() + i * sizeof(float), &f, sizeof f);
  }
  for (std::size_t i = floats * sizeof(float); i < bytes; ++i) {
    buf[i] = static_cast<std::uint8_t>(i / 11);
  }
  return buf;
}

double Gbps(std::size_t bytes, int reps, double seconds) {
  return static_cast<double>(bytes) * reps / seconds / 1e9;
}

struct LevelResult {
  std::string level;
  double bitshuffle_enc_gbps = 0.0;
  double bitshuffle_dec_gbps = 0.0;
  double delta_enc_gbps = 0.0;
  double delta_dec_gbps = 0.0;
};

struct CodecResult {
  std::string codec;
  std::size_t v3_bytes = 0;
  std::size_t v4_bytes = 0;
  double v4_over_v3_ratio = 0.0;
  double v3_read_mb_s = 0.0;          // raw payload bytes out of the file
  double v4_read_mb_s = 0.0;
  double v3_window_fetch_mb_s = 0.0;  // decoded field bytes through the codec
  double v4_window_fetch_mb_s = 0.0;
};

// Decoded payload MB/s of a full file-backed sweep over every record,
// repeated `reps` times (first sweep warms the page cache for both arms).
double FetchMbPerS(const std::string& path, int reps) {
  const auto reader = core::ArchiveReader::FromFile(path);
  tensor::Workspace ws;
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i < reader.records().size(); ++i) {
    reader.ReadPayloadInto(i, &out, &ws);
  }
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < reader.records().size(); ++i) {
      reader.ReadPayloadInto(i, &out, &ws);
    }
  }
  const double seconds = timer.Seconds();
  const double decoded =
      static_cast<double>(reader.decoded_payload_bytes()) * reps /
      (reps + 1.0);  // warm-up sweep included in the counter, not the timer
  return decoded / seconds / double(1 << 20);
}

// The serving-path measurement: every record read AND decompressed through
// the codec, MB/s in decoded field bytes — what a window fetch actually
// costs. The filter stage must not make this worse than the raw layout.
double WindowFetchMbPerS(const std::string& path, api::Compressor* codec,
                         int reps) {
  const auto reader = core::ArchiveReader::FromFile(path);
  tensor::Workspace ws;
  double decoded_bytes = 0.0;
  // Warm-up sweep: page cache, workspace slabs, codec scratch.
  for (std::size_t i = 0; i < reader.records().size(); ++i) {
    const Tensor w = codec->DecompressWindow(reader.ReadPayload(i, &ws), &ws);
    decoded_bytes += static_cast<double>(w.numel()) * sizeof(float);
  }
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < reader.records().size(); ++i) {
      (void)codec->DecompressWindow(reader.ReadPayload(i, &ws), &ws);
    }
  }
  return decoded_bytes * reps / timer.Seconds() / double(1 << 20);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string json_path = flags.GetString("json", "BENCH_filters.json");
  const auto codecs = SplitCodecs(flags.GetString("codecs", "sz"));
  const std::size_t mb = static_cast<std::size_t>(
      std::max<std::int64_t>(flags.GetInt("mb", 8), 1));
  const int reps =
      static_cast<int>(std::max<std::int64_t>(flags.GetInt("reps", 5), 1));

  // --- Group 1: kernel GB/s per dispatch level. ---
  const std::size_t n = mb << 20;
  const std::vector<std::uint8_t> src = StructuredBuffer(n);
  std::vector<std::uint8_t> dst(n);
  std::vector<simd::IsaLevel> levels{simd::IsaLevel::kScalar};
  if (simd::DetectedIsa() >= simd::IsaLevel::kSSE2)
    levels.push_back(simd::IsaLevel::kSSE2);
  if (simd::DetectedIsa() >= simd::IsaLevel::kAVX2)
    levels.push_back(simd::IsaLevel::kAVX2);
  if (simd::DetectedIsa() >= simd::IsaLevel::kAVX512)
    levels.push_back(simd::IsaLevel::kAVX512);

  std::vector<LevelResult> kernel_results;
  for (const simd::IsaLevel level : levels) {
    simd::ScopedIsaOverride override_level(level);
    LevelResult r;
    r.level = simd::IsaName(level);
    const core::FilterSpec shuffle{core::FilterChain::kBitshuffle, 4,
                                   core::FilterBackend::kNone};
    const core::FilterSpec delta{core::FilterChain::kDelta, 4,
                                 core::FilterBackend::kNone};
    for (const auto* spec : {&shuffle, &delta}) {
      std::vector<std::uint8_t> stored;
      Timer enc;
      for (int i = 0; i < reps; ++i) {
        stored = core::EncodeFiltered(src.data(), n, *spec);
      }
      const double enc_gbps = Gbps(n, reps, enc.Seconds());
      Timer dec;
      for (int i = 0; i < reps; ++i) {
        core::DecodeFiltered(stored.data(), stored.size(), *spec, dst.data(),
                             n, nullptr);
      }
      const double dec_gbps = Gbps(n, reps, dec.Seconds());
      if (spec == &shuffle) {
        r.bitshuffle_enc_gbps = enc_gbps;
        r.bitshuffle_dec_gbps = dec_gbps;
      } else {
        r.delta_enc_gbps = enc_gbps;
        r.delta_dec_gbps = dec_gbps;
      }
    }
    kernel_results.push_back(r);
    std::printf(
        "%-7s bitshuffle %6.2f / %6.2f GB/s   delta %6.2f / %6.2f GB/s "
        "(enc/dec)\n",
        r.level.c_str(), r.bitshuffle_enc_gbps, r.bitshuffle_dec_gbps,
        r.delta_enc_gbps, r.delta_dec_gbps);
  }

  // glz is dispatch-independent (byte LZ, no SIMD kernels): measure once.
  const std::vector<std::uint8_t> glz_stream =
      core::GlzCompress(src.data(), n);
  double glz_comp_gbps;
  {
    Timer t;
    for (int i = 0; i < reps; ++i) (void)core::GlzCompress(src.data(), n);
    glz_comp_gbps = Gbps(n, reps, t.Seconds());
  }
  double glz_decomp_gbps;
  {
    Timer t;
    for (int i = 0; i < reps; ++i) {
      core::GlzDecompress(glz_stream.data(), glz_stream.size(), dst.data(), n);
    }
    glz_decomp_gbps = Gbps(n, reps, t.Seconds());
  }
  std::printf("glz     comp %6.2f GB/s  decomp %6.2f GB/s  (ratio %.3f)\n",
              glz_comp_gbps, glz_decomp_gbps,
              static_cast<double>(glz_stream.size()) / n);

  // --- Groups 2+3: archive ratio and fetch MB/s per codec on the trajectory
  // config (same generator/seed as bench_e2e_decode). ---
  data::FieldSpec spec;
  spec.variables = flags.GetInt("variables", 2);
  spec.frames = flags.GetInt("frames", 128);
  spec.height = flags.GetInt("hw", 32);
  spec.width = spec.height;
  spec.seed = 2026;
  data::SequenceDataset dataset(data::GenerateClimate(spec));

  std::vector<CodecResult> codec_results;
  for (const std::string& codec_name : codecs) {
    api::CodecOptions options;
    options.window = 16;
    options.sample_steps = 6;
    api::TrainOptions train;
    train.vae_iterations = 200;
    train.model_iterations = 200;
    train.crop = 32;
    auto codec = api::GetOrTrainCodec(codec_name, options, dataset, train,
                                      bench::ArtifactsDir(),
                                      "e2e_" + codec_name);
    api::SessionOptions session_options;
    if (codec->capabilities().Supports(api::ErrorBoundMode::kRelative)) {
      session_options.bound = {api::ErrorBoundMode::kRelative, 0.01};
    }
    api::EncodeSession encode(codec.get(), spec.variables, spec.height,
                              spec.width, session_options);
    encode.Push(dataset.raw());
    const core::DatasetArchive archive = encode.Finish();

    CodecResult r;
    r.codec = codec_name;
    const auto v3 = archive.Serialize({.version = 3});
    const auto v4 = archive.Serialize();
    r.v3_bytes = v3.size();
    r.v4_bytes = v4.size();
    r.v4_over_v3_ratio =
        static_cast<double>(v4.size()) / static_cast<double>(v3.size());

    const std::string v3_path = "/tmp/glsc_bench_filters_v3.glsca";
    const std::string v4_path = "/tmp/glsc_bench_filters_v4.glsca";
    WriteFileBytes(v3_path, v3);
    WriteFileBytes(v4_path, v4);
    r.v3_read_mb_s = FetchMbPerS(v3_path, reps);
    r.v4_read_mb_s = FetchMbPerS(v4_path, reps);
    r.v3_window_fetch_mb_s = WindowFetchMbPerS(v3_path, codec.get(), reps);
    r.v4_window_fetch_mb_s = WindowFetchMbPerS(v4_path, codec.get(), reps);
    std::filesystem::remove(v3_path);
    std::filesystem::remove(v4_path);
    codec_results.push_back(r);
    std::printf(
        "%-5s v4/v3 size %zu/%zu = %.4f   payload read v3 %8.1f v4 %8.1f "
        "MB/s   window fetch v3 %8.1f v4 %8.1f MB/s\n",
        r.codec.c_str(), r.v4_bytes, r.v3_bytes, r.v4_over_v3_ratio,
        r.v3_read_mb_s, r.v4_read_mb_s, r.v3_window_fetch_mb_s,
        r.v4_window_fetch_mb_s);
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"filters\",\n"
                 "  \"buffer_mb\": %zu,\n"
                 "  \"glz_comp_gbps\": %.6g,\n"
                 "  \"glz_decomp_gbps\": %.6g,\n"
                 "  \"levels\": [\n",
                 mb, glz_comp_gbps, glz_decomp_gbps);
    for (std::size_t i = 0; i < kernel_results.size(); ++i) {
      const auto& r = kernel_results[i];
      std::fprintf(out,
                   "    {\"level\": \"%s\", \"bitshuffle_enc_gbps\": %.6g, "
                   "\"bitshuffle_dec_gbps\": %.6g, \"delta_enc_gbps\": %.6g, "
                   "\"delta_dec_gbps\": %.6g}%s\n",
                   r.level.c_str(), r.bitshuffle_enc_gbps,
                   r.bitshuffle_dec_gbps, r.delta_enc_gbps, r.delta_dec_gbps,
                   i + 1 < kernel_results.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"codecs\": [\n");
    for (std::size_t i = 0; i < codec_results.size(); ++i) {
      const auto& r = codec_results[i];
      std::fprintf(
          out,
          "    {\"codec\": \"%s\", \"v3_bytes\": %zu, \"v4_bytes\": %zu, "
          "\"v4_over_v3_ratio\": %.6g, \"v3_read_mb_s\": %.6g, "
          "\"v4_read_mb_s\": %.6g, \"v3_window_fetch_mb_s\": %.6g, "
          "\"v4_window_fetch_mb_s\": %.6g}%s\n",
          r.codec.c_str(), r.v3_bytes, r.v4_bytes, r.v4_over_v3_ratio,
          r.v3_read_mb_s, r.v4_read_mb_s, r.v3_window_fetch_mb_s,
          r.v4_window_fetch_mb_s, i + 1 < codec_results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
