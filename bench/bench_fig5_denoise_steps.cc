// Figure 5: denoising-step ablation on the S3D analogue. The model is
// trained on the full schedule, then fine-tuned at each reduced step count
// ({64,32,8,2,1} here; the paper fine-tunes a 1000-step model at
// {128,32,8,2,1}) and evaluated with that many sampling steps.
// Paper shape: >= 32 steps matches full-schedule quality; 1-2 steps degrade.
#include <cstdio>

#include "diffusion/trainer.h"
#include "harness.h"

int main() {
  using namespace glsc;
  const bench::Preset preset =
      bench::MakeAblationPreset(data::DatasetKind::kCombustion);
  data::SequenceDataset dataset(
      data::GenerateField(data::DatasetKind::kCombustion, preset.spec));
  const std::int64_t n = preset.glsc.window;

  bench::PrintHeader(
      "Figure 5 — Denoising-step ablation on combustion-s3d "
      "(paper: >=32 steps ~ full schedule; 1-2 steps much worse)");

  // Base model trained on the full schedule, no fine-tuning.
  core::TrainBudget base_budget = preset.budget;
  base_budget.finetune_steps = 0;
  base_budget.finetune_iterations = 0;
  auto base = core::GetOrTrainGlsc(dataset, preset.glsc, base_budget,
                                   bench::ArtifactsDir(), "fig5_base");

  auto evaluate = [&](core::GlscCompressor* model, std::int64_t steps,
                      const std::string& label) {
    bench::ReconFn fn = [&](const Tensor& w, std::int64_t, std::int64_t) {
      Tensor recon;
      const auto compressed = model->Compress(w, -1.0, steps, &recon);
      return bench::WindowRecon{
          w, recon, compressed.LatentBytes() + compressed.HeaderBytes()};
    };
    const auto recons = bench::ReconstructAll(dataset, n, fn);
    const auto curve =
        bench::SweepBounds(dataset, recons, model->pca(), bench::DefaultTaus());
    bench::PrintCurve(label, curve);
    return curve;
  };

  // Full-schedule sampling = the paper's "1000 Steps" reference line.
  const auto full_curve =
      evaluate(base.get(), preset.glsc.schedule_steps, "full-steps");

  // With error-bound postprocessing the NRMSE at a given tau is pinned by
  // construction; sampling quality shows up as the CR achieved at that tau
  // (worse samples -> more correction bytes). Compare mid-sweep CR.
  std::vector<double> mid_cr{full_curve[full_curve.size() / 2].cr};
  for (const std::int64_t steps : {32, 8, 1}) {
    const std::string tag = "fig5_ft" + std::to_string(steps);
    auto model = core::GetOrTrain<core::GlscCompressor>(
        bench::ArtifactsDir(), tag,
        [&] {
          // Start each fine-tune from the trained base weights.
          auto m = std::make_unique<core::GlscCompressor>(preset.glsc);
          ByteWriter buffer;
          base->Save(&buffer);
          ByteReader in(buffer.bytes());
          m->Load(&in);
          return m;
        },
        [&](core::GlscCompressor* m) {
          diffusion::DiffusionTrainConfig ft = preset.budget.diffusion;
          ft.window = preset.glsc.window;
          ft.interval = preset.glsc.interval;
          ft.iterations = 120;
          ft.finetune_steps = steps;
          ft.seed = 77 + static_cast<std::uint64_t>(steps);
          TrainDiffusion(&m->unet(), m->schedule(), &m->vae(), dataset, ft);
        });
    const auto curve =
        evaluate(model.get(), steps, std::to_string(steps) + "-steps");
    mid_cr.push_back(curve[curve.size() / 2].cr);
  }

  std::printf("\nmid-sweep CR at equal (bounded) error: full=%.2f  32=%.2f  "
              "8=%.2f  1=%.2f\n",
              mid_cr[0], mid_cr[1], mid_cr[2], mid_cr[3]);
  std::printf("paper shape: 32-step within 25%% of full schedule (%s); "
              "1-step worst (%s)\n",
              mid_cr[1] > 0.75 * mid_cr[0] ? "REPRODUCED" : "NOT reproduced",
              mid_cr[3] <= mid_cr[1] ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
