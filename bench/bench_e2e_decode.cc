// End-to-end decode throughput for the serving hot path — the workload the
// workspace arena (tensor/workspace.h) exists for. One file-backed archive,
// four measurements:
//
//   full     — DecodeSession::DecodeAll over every record (linear scan path)
//   fetch    — DecodeScheduler::Get over every window with the cache disabled
//              (every fetch pays a real decode), measured twice over identical
//              spanning queries: once with max_batch=1 (one DecompressWindow
//              per record — the serial dispatch) and once with
//              max_batch=--batch (misses coalesced into DecompressWindows).
//              The two arms differ ONLY in dispatch, and their outputs are
//              asserted byte-identical before any number is reported.
//   alloc    — raw DecompressWindow per record WITHOUT a workspace (the
//              pre-arena allocating path, kept as the byte-identity reference)
//   arena    — raw DecompressWindow per record WITH a reused workspace
//
// Emits BENCH_e2e.json with windows/s + MB/s for the session/scheduler paths,
// the serial-vs-batched fetch comparison, and the alloc-vs-arena speedup;
// scripts/check.sh gates on the file existing with the fetch_batched_* fields
// present and finite, so every number here must be finite.
//
//   ./bench_e2e_decode [--codec=glsc] [--frames=48] [--hw=32] [--variables=1]
//                      [--steps=6] [--workers=2] [--batch=8] [--repeat=1]
//                      [--json=PATH]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "api/session.h"
#include "core/archive_reader.h"
#include "core/container.h"
#include "data/field_generators.h"
#include "harness.h"
#include "serve/decode_scheduler.h"
#include "tensor/metrics.h"
#include "tensor/workspace.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace glsc;
  Flags flags(argc, argv);
  const std::string codec_name = flags.GetString("codec", "glsc");
  const std::string json_path = flags.GetString("json", "BENCH_e2e.json");
  const std::int64_t repeat = std::max<std::int64_t>(flags.GetInt("repeat", 1), 1);

  data::FieldSpec spec;
  spec.variables = flags.GetInt("variables", 1);
  spec.frames = flags.GetInt("frames", 48);
  spec.height = flags.GetInt("hw", 32);
  spec.width = spec.height;
  spec.seed = 2026;
  data::SequenceDataset dataset(data::GenerateClimate(spec));
  const Tensor& field = dataset.raw();
  const double decoded_mb = dataset.OriginalBytes() / double(1 << 20);

  api::CodecOptions options;
  options.window = 16;
  options.sample_steps = flags.GetInt("steps", 6);
  api::TrainOptions train;
  train.vae_iterations = 200;
  train.model_iterations = 200;
  train.crop = 32;
  auto codec = api::GetOrTrainCodec(codec_name, options, dataset, train,
                                    bench::ArtifactsDir(),
                                    "e2e_" + codec_name);

  api::SessionOptions session_options;
  if (codec->capabilities().Supports(api::ErrorBoundMode::kRelative)) {
    session_options.bound = {api::ErrorBoundMode::kRelative,
                             flags.GetDouble("bound", 0.01)};
  }
  api::EncodeSession encode(codec.get(), field.dim(0), field.dim(2),
                            field.dim(3), session_options);
  encode.Push(field);
  const core::DatasetArchive archive = encode.Finish();
  const std::string path = "/tmp/glsc_bench_e2e.glsca";
  archive.WriteFile(path);
  const std::size_t records = archive.entries().size();
  const std::int64_t window = codec->window();

  bench::PrintHeader("e2e decode throughput — " + codec_name);
  std::printf("archive: %zu records of %lld frames (%lldx%lld), %.2f MB "
              "decoded per pass\n",
              records, (long long)window, (long long)spec.height,
              (long long)spec.width, decoded_mb);

  // -- full archive decode through the streaming session -------------------
  Timer full_timer;
  Tensor full;
  for (std::int64_t r = 0; r < repeat; ++r) {
    api::DecodeSession session(codec.get(), archive);
    full = session.DecodeAll();
  }
  const double t_full = full_timer.Seconds() / double(repeat);
  const double nrmse = Nrmse(field, full);
  const double psnr = Psnr(field, full);

  // -- window fetches through the scheduler (cache off => real decodes) -----
  // Two schedulers over the same archive and the same spanning queries,
  // differing ONLY in dispatch: max_batch=1 runs one DecompressWindow per
  // record, max_batch=--batch coalesces each query's misses into
  // DecompressWindows calls so model-based codecs run one network pass over
  // the stacked windows.
  const std::int64_t batch =
      std::max<std::int64_t>(flags.GetInt("batch", 8), 1);
  auto reader = core::ArchiveReader::FromFile(path);
  serve::ScheduleOptions serial_options;
  serial_options.workers = flags.GetInt("workers", 2);
  serial_options.cache_windows = 0;
  serial_options.max_batch = 1;
  serve::ScheduleOptions batched_options = serial_options;
  batched_options.max_batch = batch;
  serve::DecodeScheduler serial_scheduler(&reader, codec.get(),
                                          serial_options);
  serve::DecodeScheduler batched_scheduler(&reader, codec.get(),
                                           batched_options);

  const std::int64_t fetch_windows = field.dim(1) / window;
  std::vector<Tensor> serial_out;
  std::vector<Tensor> batched_out;
  Timer fetch_timer;
  for (std::int64_t r = 0; r < repeat; ++r) {
    serial_out.clear();
    for (std::int64_t w = 0; w < fetch_windows; w += batch) {
      const std::int64_t hi = std::min((w + batch) * window, field.dim(1));
      serial_out.push_back(serial_scheduler.Get(0, w * window, hi));
    }
  }
  const double t_fetch = fetch_timer.Seconds() / double(repeat);
  Timer batched_timer;
  for (std::int64_t r = 0; r < repeat; ++r) {
    batched_out.clear();
    for (std::int64_t w = 0; w < fetch_windows; w += batch) {
      const std::int64_t hi = std::min((w + batch) * window, field.dim(1));
      batched_out.push_back(batched_scheduler.Get(0, w * window, hi));
    }
  }
  const double t_batched = batched_timer.Seconds() / double(repeat);
  for (std::size_t i = 0; i < serial_out.size(); ++i) {
    if (serial_out[i].numel() != batched_out[i].numel() ||
        std::memcmp(serial_out[i].data(), batched_out[i].data(),
                    std::size_t(serial_out[i].numel()) * sizeof(float)) != 0) {
      std::fprintf(stderr,
                   "error: batched fetch differs from serial fetch "
                   "(query %zu) — batching must be byte-identical\n",
                   i);
      return 1;
    }
  }
  const double fetch_mb = double(fetch_windows * window * spec.height *
                                 spec.width * sizeof(float)) / double(1 << 20);

  // -- alloc vs arena on the raw per-record decode -------------------------
  Timer alloc_timer;
  for (std::int64_t r = 0; r < repeat; ++r) {
    for (std::size_t i = 0; i < records; ++i) {
      (void)codec->DecompressWindow(archive.entries()[i].payload);
    }
  }
  const double t_alloc = alloc_timer.Seconds() / double(repeat);

  tensor::Workspace ws;
  (void)codec->DecompressWindow(archive.entries()[0].payload, &ws);  // warm up
  Timer arena_timer;
  for (std::int64_t r = 0; r < repeat; ++r) {
    for (std::size_t i = 0; i < records; ++i) {
      (void)codec->DecompressWindow(archive.entries()[i].payload, &ws);
    }
  }
  const double t_arena = arena_timer.Seconds() / double(repeat);

  const double eps = 1e-9;
  const double full_wps = double(records) / std::max(t_full, eps);
  const double full_mbps = decoded_mb / std::max(t_full, eps);
  const double fetch_wps = double(fetch_windows) / std::max(t_fetch, eps);
  const double fetch_mbps = fetch_mb / std::max(t_fetch, eps);
  const double batched_wps = double(fetch_windows) / std::max(t_batched, eps);
  const double batched_speedup = t_fetch / std::max(t_batched, eps);
  const double alloc_wps = double(records) / std::max(t_alloc, eps);
  const double arena_wps = double(records) / std::max(t_arena, eps);
  const double speedup = t_alloc / std::max(t_arena, eps);

  std::printf(
      "full decode      %9.4f s   %7.2f windows/s   %7.2f MB/s\n"
      "fetch serial     %9.4f s   %7.2f windows/s   %7.2f MB/s   "
      "(max_batch=1)\n"
      "fetch batched    %9.4f s   %7.2f windows/s   (%.2fx vs serial, "
      "max_batch=%lld, byte-identical)\n"
      "alloc decode     %9.4f s   %7.2f windows/s\n"
      "arena decode     %9.4f s   %7.2f windows/s   (%.2fx vs alloc, "
      "%lld arena slabs, %.1f MB high-water)\n"
      "fidelity: NRMSE %.4e, PSNR %.1f dB\n",
      t_full, full_wps, full_mbps, t_fetch, fetch_wps, fetch_mbps, t_batched,
      batched_wps, batched_speedup, (long long)batch, t_alloc, alloc_wps,
      t_arena, arena_wps, speedup, (long long)ws.stats().slab_allocations,
      double(ws.stats().peak_bytes) / double(1 << 20), nrmse, psnr);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"e2e_decode\",\n"
                 "  \"codec\": \"%s\",\n"
                 "  \"records\": %zu,\n"
                 "  \"decoded_mb\": %.6g,\n"
                 "  \"full_decode_s\": %.6g,\n"
                 "  \"full_windows_per_s\": %.6g,\n"
                 "  \"full_mb_per_s\": %.6g,\n"
                 "  \"fetch_s\": %.6g,\n"
                 "  \"fetch_windows_per_s\": %.6g,\n"
                 "  \"fetch_mb_per_s\": %.6g,\n"
                 "  \"fetch_serial_windows_per_s\": %.6g,\n"
                 "  \"fetch_batched_windows_per_s\": %.6g,\n"
                 "  \"fetch_batched_speedup\": %.6g,\n"
                 "  \"fetch_batch_size\": %lld,\n"
                 "  \"alloc_windows_per_s\": %.6g,\n"
                 "  \"arena_windows_per_s\": %.6g,\n"
                 "  \"arena_speedup\": %.6g,\n"
                 "  \"arena_slab_allocations\": %lld,\n"
                 "  \"arena_peak_mb\": %.6g,\n"
                 "  \"nrmse\": %.6g,\n"
                 "  \"psnr_db\": %.6g\n"
                 "}\n",
                 codec_name.c_str(), records, decoded_mb, t_full, full_wps,
                 full_mbps, t_fetch, fetch_wps, fetch_mbps, fetch_wps,
                 batched_wps, batched_speedup, (long long)batch, alloc_wps,
                 arena_wps, speedup, (long long)ws.stats().slab_allocations,
                 double(ws.stats().peak_bytes) / double(1 << 20), nrmse, psnr);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::filesystem::remove(path);
  return 0;
}
