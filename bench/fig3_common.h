// Shared driver for the three Figure-3 benches (E3SM / S3D / JHTDB): trains
// or loads every method on the dataset analogue, traces all rate-distortion
// curves with real coded bytes, and prints the comparison rows plus the
// paper-shape checks.
#pragma once

#include <string>

#include "data/field_generators.h"

namespace glsc::bench {

struct Fig3Options {
  bool include_gcd = false;      // GCD appears only in Fig. 3a (E3SM)
  std::int64_t decode_steps = 32;
};

void RunFig3(data::DatasetKind kind, const std::string& figure_name,
             const Fig3Options& options);

}  // namespace glsc::bench
