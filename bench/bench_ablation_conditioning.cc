// Ablation (DESIGN.md §5): does the ⊕ keyframe conditioning actually carry
// the information, or would the diffusion prior alone produce similar
// frames? Reconstructs the same windows twice with the SAME trained model —
// once with the true keyframe latents composed in, once with zeroed
// (uninformative) keyframes — and compares per-frame error. If conditioning
// works, the gap is large on generated frames.
//
// Reuses the cached Figure-3a climate model; trains it if missing.
#include <cstdio>

#include "harness.h"
#include "tensor/metrics.h"
#include "tensor/ops.h"

int main() {
  using namespace glsc;
  const bench::Preset preset = bench::MakePreset(data::DatasetKind::kClimate);
  data::SequenceDataset dataset(
      data::GenerateField(data::DatasetKind::kClimate, preset.spec));
  const std::int64_t n = preset.glsc.window;

  bench::PrintHeader(
      "Ablation — keyframe conditioning vs zeroed conditioning "
      "(expected: conditioned reconstruction far better)");

  auto model = core::GetOrTrainGlsc(
      dataset, preset.glsc, preset.budget, bench::ArtifactsDir(),
      std::string("glsc_") + data::DatasetName(preset.kind));
  const auto& key_idx = model->keyframe_indices();
  const auto& gen_idx = model->generated_indices();

  double cond_sq = 0.0, blind_sq = 0.0;
  std::int64_t count = 0;
  const std::int64_t hw = preset.spec.height * preset.spec.width;
  for (const auto& ref : dataset.EvaluationWindows(n)) {
    const Tensor window = dataset.NormalizedWindow(ref.variable, ref.t0, n);

    // Conditioned reconstruction (normal path).
    Tensor cond_recon;
    model->Compress(window, -1.0, 0, &cond_recon);

    // Blind reconstruction: replace the keyframes with zeros before
    // encoding, so the conditioning latents carry no information about this
    // window. The diffusion model still "generates", but blindly.
    Tensor blind_window = window.Clone();
    for (const auto k : key_idx) {
      std::fill_n(blind_window.data() + k * hw, hw, 0.0f);
    }
    Tensor blind_recon;
    model->Compress(blind_window, -1.0, 0, &blind_recon);

    // Compare only on the GENERATED frames (keyframes trivially differ).
    for (const auto g : gen_idx) {
      for (std::int64_t i = 0; i < hw; ++i) {
        const double dc = window[g * hw + i] - cond_recon[g * hw + i];
        const double db = window[g * hw + i] - blind_recon[g * hw + i];
        cond_sq += dc * dc;
        blind_sq += db * db;
      }
      ++count;
    }
  }
  const double cond_rmse = std::sqrt(cond_sq / (count * hw));
  const double blind_rmse = std::sqrt(blind_sq / (count * hw));
  std::printf("generated-frame RMSE: conditioned=%.4e  zeroed=%.4e  "
              "(ratio %.2fx)\n",
              cond_rmse, blind_rmse, blind_rmse / cond_rmse);
  std::printf("conditioning carries the signal: %s\n",
              blind_rmse > 1.3 * cond_rmse ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
