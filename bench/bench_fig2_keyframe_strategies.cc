// Figure 2: keyframe selection strategies — interpolation {0,3,6,9,12,15},
// prediction {0..5}, mixed {0..4,15} — compared by per-frame NRMSE over the
// climate analogue. Paper shape: interpolation wins; error dips at keyframes
// and grows with distance from the nearest keyframe; prediction degrades
// monotonically after the conditioning block.
#include <cstdio>
#include <map>

#include "harness.h"
#include "tensor/metrics.h"

int main() {
  using namespace glsc;
  const bench::Preset preset =
      bench::MakeAblationPreset(data::DatasetKind::kClimate);
  data::SequenceDataset dataset(
      data::GenerateField(data::DatasetKind::kClimate, preset.spec));

  bench::PrintHeader(
      "Figure 2 — Keyframe strategy ablation on climate-e3sm "
      "(paper: interpolation < mixed < prediction error)");

  struct StrategyRun {
    diffusion::KeyframeStrategy strategy;
    const char* name;
  };
  const StrategyRun runs[] = {
      {diffusion::KeyframeStrategy::kInterpolation, "interpolation"},
      {diffusion::KeyframeStrategy::kPrediction, "prediction"},
      {diffusion::KeyframeStrategy::kMixed, "mixed"},
  };

  const std::int64_t n = preset.glsc.window;
  const std::int64_t hw = preset.spec.height * preset.spec.width;
  std::map<std::string, std::vector<double>> per_frame;
  std::map<std::string, std::vector<std::int64_t>> key_sets;
  std::map<std::string, double> overall;

  for (const auto& run : runs) {
    core::GlscConfig config = preset.glsc;
    config.strategy = run.strategy;
    config.interval = 3;   // interpolation: {0,3,...,15}
    config.key_count = 6;  // prediction/mixed: 6 keyframes, matching paper
    auto model = core::GetOrTrainGlsc(
        dataset, config, preset.budget, bench::ArtifactsDir(),
        std::string("fig2_") + run.name);
    key_sets[run.name] = model->keyframe_indices();

    std::vector<double> frame_sq(static_cast<std::size_t>(n), 0.0);
    std::vector<double> frame_range(static_cast<std::size_t>(n), 0.0);
    std::int64_t windows = 0;
    for (const auto& ref : dataset.EvaluationWindows(n)) {
      const Tensor window = dataset.NormalizedWindow(ref.variable, ref.t0, n);
      Tensor recon;
      model->Compress(window, -1.0, 0, &recon);
      for (std::int64_t f = 0; f < n; ++f) {
        double sq = 0.0;
        for (std::int64_t i = 0; i < hw; ++i) {
          const double d = window[f * hw + i] - recon[f * hw + i];
          sq += d * d;
        }
        frame_sq[static_cast<std::size_t>(f)] += sq / hw;
        frame_range[static_cast<std::size_t>(f)] += 1.0;  // normalized range=1
      }
      ++windows;
    }
    std::vector<double> nrmse(static_cast<std::size_t>(n));
    double total = 0.0;
    for (std::int64_t f = 0; f < n; ++f) {
      nrmse[f] = std::sqrt(frame_sq[f] / windows);
      total += frame_sq[f] / windows;
    }
    per_frame[run.name] = nrmse;
    overall[run.name] = std::sqrt(total / n);
  }

  std::printf("%-7s %-16s %-16s %-16s\n", "frame", "interpolation",
              "prediction", "mixed");
  for (std::int64_t f = 0; f < n; ++f) {
    auto mark = [&](const char* name) {
      const auto& keys = key_sets[name];
      return std::find(keys.begin(), keys.end(), f) != keys.end() ? '*' : ' ';
    };
    std::printf("%-7lld %1.4e %c     %1.4e %c     %1.4e %c\n",
                static_cast<long long>(f), per_frame["interpolation"][f],
                mark("interpolation"), per_frame["prediction"][f],
                mark("prediction"), per_frame["mixed"][f], mark("mixed"));
  }
  bench::PrintNote("* marks a stored keyframe (conditioning frame)");
  std::printf(
      "overall NRMSE: interpolation=%.4e  prediction=%.4e  mixed=%.4e\n",
      overall["interpolation"], overall["prediction"], overall["mixed"]);
  std::printf("paper shape: interpolation lowest (%s)\n",
              overall["interpolation"] <= overall["prediction"] &&
                      overall["interpolation"] <= overall["mixed"]
                  ? "REPRODUCED"
                  : "NOT reproduced at this training budget");
  return 0;
}
