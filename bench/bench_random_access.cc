// Random-access serving bench: what the footer index + decode scheduler buy
// over parsing and decoding the whole archive. Three measurements on one
// file-backed archive:
//
//   full      — open + DecodeSession::DecodeAll (every record decoded)
//   window    — ArchiveReader::FromFile + one cold DecodeScheduler::Get of a
//               single window (one record decoded, one payload read)
//   cached    — the same Get again (served from the LRU, no decode)
//
// Emits a small JSON blob (--json=PATH) with the timings and reconstruction
// metrics; scripts/check.sh greps it for inf/nan, so every value here must be
// finite.
//
//   ./bench_random_access [--codec=sz] [--frames=128] [--hw=32]
//                         [--variables=2] [--workers=2] [--bound=0.01]
//                         [--json=PATH]
#include <cstdio>
#include <filesystem>
#include <string>

#include "api/session.h"
#include "core/archive_reader.h"
#include "core/container.h"
#include "data/field_generators.h"
#include "serve/decode_scheduler.h"
#include "tensor/metrics.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace glsc;
  Flags flags(argc, argv);
  const std::string codec_name = flags.GetString("codec", "sz");
  const std::string json_path = flags.GetString("json", "");

  data::FieldSpec spec;
  spec.variables = flags.GetInt("variables", 2);
  spec.frames = flags.GetInt("frames", 128);
  spec.height = flags.GetInt("hw", 32);
  spec.width = spec.height;
  spec.seed = 4242;
  const Tensor field = data::GenerateClimate(spec);

  auto codec = api::Compressor::Create(codec_name);
  api::SessionOptions session_options;
  if (codec->capabilities().Supports(api::ErrorBoundMode::kRelative)) {
    session_options.bound = {api::ErrorBoundMode::kRelative,
                             flags.GetDouble("bound", 0.01)};
  }
  api::EncodeSession encode(codec.get(), field.dim(0), field.dim(2),
                            field.dim(3), session_options);
  encode.Push(field);
  const core::DatasetArchive archive = encode.Finish();
  const std::string path = "/tmp/glsc_bench_random_access.glsca";
  archive.WriteFile(path);
  const double archive_mb =
      static_cast<double>(archive.Serialize().size()) / double(1 << 20);

  std::printf("random access — %s archive: %zu records, %.2f MB on disk\n",
              archive.codec().c_str(), archive.entries().size(), archive_mb);

  // Full decode: the pre-index workflow — every record parsed and decoded.
  Timer full_timer;
  const core::DatasetArchive loaded = core::DatasetArchive::ReadFile(path);
  api::DecodeSession session(codec.get(), loaded);
  const Tensor full = session.DecodeAll();
  const double t_full = full_timer.Seconds();
  const double nrmse = Nrmse(field, full);
  const double psnr = Psnr(field, full);

  // Single-window fetch through the footer index: one record decoded.
  serve::ScheduleOptions serve_options;
  serve_options.workers = flags.GetInt("workers", 2);
  auto reader = core::ArchiveReader::FromFile(path);
  serve::DecodeScheduler scheduler(&reader, codec.get(), serve_options);
  const std::int64_t window = codec->window();
  const std::int64_t t0 = (field.dim(1) / window / 2) * window;

  Timer window_timer;
  const Tensor slice = scheduler.Get(0, t0, t0 + window);
  const double t_window = window_timer.Seconds();

  Timer cached_timer;
  (void)scheduler.Get(0, t0, t0 + window);
  const double t_cached = cached_timer.Seconds();

  std::printf(
      "full decode      %9.4f s   (%zu records)\n"
      "window fetch     %9.4f s   (%lld records decoded, %llu of %llu "
      "archive bytes read)\n"
      "cached re-fetch  %9.4f s   (%lld cache hits)\n"
      "speedup: window %.1fx, cached %.1fx vs full decode\n"
      "fidelity: NRMSE %.4e, PSNR %.1f dB\n",
      t_full, archive.entries().size(), t_window,
      static_cast<long long>(scheduler.decoded_records()),
      static_cast<unsigned long long>(reader.payload_bytes_fetched()),
      static_cast<unsigned long long>(reader.archive_bytes()), t_cached,
      static_cast<long long>(scheduler.cache_hits()),
      t_full / std::max(t_window, 1e-9), t_full / std::max(t_cached, 1e-9),
      nrmse, psnr);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"random_access\",\n"
                 "  \"codec\": \"%s\",\n"
                 "  \"records\": %zu,\n"
                 "  \"archive_mb\": %.6g,\n"
                 "  \"full_decode_s\": %.6g,\n"
                 "  \"window_fetch_s\": %.6g,\n"
                 "  \"cached_fetch_s\": %.6g,\n"
                 "  \"payload_bytes_read\": %llu,\n"
                 "  \"nrmse\": %.6g,\n"
                 "  \"psnr_db\": %.6g\n"
                 "}\n",
                 archive.codec().c_str(), archive.entries().size(), archive_mb,
                 t_full, t_window, t_cached,
                 static_cast<unsigned long long>(
                     reader.payload_bytes_fetched()),
                 nrmse, psnr);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::filesystem::remove(path);
  return 0;
}
