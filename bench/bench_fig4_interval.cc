// Figure 4: keyframe-interval ablation (intervals 2..6) on the climate
// analogue. Left plot: per-frame NRMSE for one window; right plot: CR-NRMSE
// trade-off via the postprocessing sweep. Paper shape: interval 2 has the
// lowest error but the worst storage; interval 3 is the best balance.
#include <cstdio>

#include "harness.h"
#include "tensor/metrics.h"

int main() {
  using namespace glsc;
  const bench::Preset preset =
      bench::MakeAblationPreset(data::DatasetKind::kClimate);
  data::SequenceDataset dataset(
      data::GenerateField(data::DatasetKind::kClimate, preset.spec));
  const std::int64_t n = preset.glsc.window;
  const std::int64_t hw = preset.spec.height * preset.spec.width;

  bench::PrintHeader(
      "Figure 4 — Interpolation interval ablation on climate-e3sm "
      "(paper: interval 2 lowest error, interval 3 best CR trade-off)");

  struct IntervalResult {
    std::int64_t interval;
    std::vector<double> per_frame;
    std::vector<bench::RdPoint> curve;
  };
  std::vector<IntervalResult> results;

  for (const std::int64_t interval : {2, 3, 4, 6}) {
    core::GlscConfig config = preset.glsc;
    config.interval = interval;
    auto model = core::GetOrTrainGlsc(
        dataset, config, preset.budget, bench::ArtifactsDir(),
        "fig4_interval" + std::to_string(interval));

    bench::ReconFn fn = [&](const Tensor& w, std::int64_t, std::int64_t) {
      Tensor recon;
      const auto compressed = model->Compress(w, -1.0, 0, &recon);
      return bench::WindowRecon{
          w, recon, compressed.LatentBytes() + compressed.HeaderBytes()};
    };
    const auto recons = bench::ReconstructAll(dataset, n, fn);

    IntervalResult result;
    result.interval = interval;
    // Per-frame NRMSE of the first window (the paper's left plot shows the
    // repeating pattern over a few frames).
    result.per_frame.resize(static_cast<std::size_t>(n));
    const auto& first = recons.front();
    for (std::int64_t f = 0; f < n; ++f) {
      double sq = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) {
        const double d = first.window[f * hw + i] - first.recon[f * hw + i];
        sq += d * d;
      }
      result.per_frame[static_cast<std::size_t>(f)] = std::sqrt(sq / hw);
    }
    result.curve =
        bench::SweepBounds(dataset, recons, model->pca(), bench::DefaultTaus());
    results.push_back(std::move(result));
  }

  std::printf("\nper-frame NRMSE (first window, frames 0..6 as in the paper):\n");
  std::printf("%-10s", "interval");
  for (int f = 0; f <= 6; ++f) std::printf("  f%-9d", f);
  std::printf("\n");
  for (const auto& r : results) {
    std::printf("%-10lld", static_cast<long long>(r.interval));
    for (int f = 0; f <= 6; ++f) std::printf("  %1.3e", r.per_frame[f]);
    std::printf("\n");
  }

  std::printf("\nCR vs NRMSE per interval:\n");
  for (const auto& r : results) {
    bench::PrintCurve("interval-" + std::to_string(r.interval), r.curve);
  }

  // Paper-shape checks: uncorrected error ordering and the interval-3 balance.
  auto mean_err = [&](const IntervalResult& r) {
    double s = 0.0;
    for (const double v : r.per_frame) s += v * v;
    return std::sqrt(s / static_cast<double>(r.per_frame.size()));
  };
  std::printf("\nuncorrected per-frame mean NRMSE by interval: ");
  for (const auto& r : results) {
    std::printf("%lld:%.3e ", static_cast<long long>(r.interval), mean_err(r));
  }
  std::printf("\npaper shape: smaller interval -> lower error (%s)\n",
              mean_err(results.front()) <= mean_err(results.back())
                  ? "REPRODUCED"
                  : "NOT reproduced at this training budget");
  return 0;
}
