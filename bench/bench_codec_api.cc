// Codec-agnostic throughput smoke over the unified API: streams a synthetic
// [V, T, H, W] field through EncodeSession/DecodeSession for the chosen
// backend and reports encode/decode MB/s plus the achieved ratio. One
// --codec= flag switches among all registered backends; learned codecs train
// once (tiny budget) and cache the artifact like every other bench.
//
//   ./bench_codec_api --codec=sz [--frames=96] [--hw=32] [--variables=2]
//                     [--bound=0.01] [--workers=1] [--list]
#include <cstdio>

#include "api/session.h"
#include "core/container.h"
#include "data/field_generators.h"
#include "harness.h"
#include "tensor/metrics.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace glsc;
  Flags flags(argc, argv);
  if (flags.Has("list")) {
    std::printf("registered codecs:");
    for (const auto& name : api::RegisteredCompressors()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }
  const std::string codec_name = flags.GetString("codec", "sz");
  const double bound = flags.GetDouble("bound", 0.01);

  data::FieldSpec spec;
  spec.variables = flags.GetInt("variables", 2);
  spec.frames = flags.GetInt("frames", 96);
  spec.height = flags.GetInt("hw", 32);
  spec.width = spec.height;
  spec.seed = 1234;
  data::SequenceDataset dataset(data::GenerateClimate(spec));
  const double mb = dataset.OriginalBytes() / double(1 << 20);

  api::CodecOptions options;
  options.window = 16;
  options.sample_steps = flags.GetInt("steps", 8);
  api::TrainOptions train;
  train.vae_iterations = 200;
  train.model_iterations = 200;
  train.crop = 32;
  auto codec = api::GetOrTrainCodec(codec_name, options, dataset, train,
                                    bench::ArtifactsDir(),
                                    "codec_api_" + codec_name);

  api::SessionOptions session_options;
  if (codec->capabilities().Supports(api::ErrorBoundMode::kPointwiseL2)) {
    session_options.bound = {api::ErrorBoundMode::kPointwiseL2, bound * 10.0};
  } else if (codec->capabilities().Supports(api::ErrorBoundMode::kRelative)) {
    session_options.bound = {api::ErrorBoundMode::kRelative, bound};
  }
  session_options.parallelism = flags.GetInt("workers", 1);

  bench::PrintHeader("codec API throughput — " + codec_name);
  std::printf("stream: %lld x %lld frames of %lldx%lld (%.2f MB), window %lld, "
              "%lld worker(s)\n",
              (long long)spec.variables, (long long)spec.frames,
              (long long)spec.height, (long long)spec.width, mb,
              (long long)codec->window(),
              (long long)session_options.parallelism);

  Timer enc;
  api::EncodeSession session(codec.get(), dataset.variables(),
                             dataset.height(), dataset.width(),
                             session_options);
  session.Push(dataset.raw());
  const core::DatasetArchive archive = session.Finish();
  const double t_enc = enc.Seconds();
  const std::size_t compressed = archive.Serialize().size();

  Timer dec;
  const Tensor restored = archive.DecompressAll(codec.get());
  const double t_dec = dec.Seconds();

  std::printf("encode %8.2f MB/s   decode %8.3f MB/s   CR %.1fx   NRMSE %.3e\n",
              mb / t_enc, mb / t_dec,
              dataset.OriginalBytes() / double(compressed),
              Nrmse(dataset.raw(), restored));
  return 0;
}
