// Figure 6: visual comparison at CR ~= 100. Writes PGM images (full frame +
// zoomed crop, the paper's red-rectangle inset) for the ground truth and for
// each method's reconstruction at a compression ratio near 100, and prints
// the achieved (CR, NRMSE) per method.
#include <cstdio>

#include "baselines/sz_like.h"
#include "baselines/vae_sr.h"
#include "baselines/zfp_like.h"
#include "data/pgm.h"
#include "harness.h"
#include "tensor/metrics.h"

namespace {

using namespace glsc;

// Picks the rule-based bound whose CR lands closest to the target.
template <typename Codec>
std::pair<double, double> RuleAtCr(Codec& codec, const Tensor& field,
                                   double target_cr, Tensor* recon_out) {
  const double range = field.MaxValue() - field.MinValue();
  double best_gap = 1e300;
  std::pair<double, double> best{0.0, 0.0};
  for (double rel = 1e-4; rel <= 0.3; rel *= 1.6) {
    const auto bytes = codec.Compress(field, rel * range);
    const double cr = static_cast<double>(field.numel() * sizeof(float)) /
                      static_cast<double>(bytes.size());
    if (std::fabs(cr - target_cr) < best_gap) {
      best_gap = std::fabs(cr - target_cr);
      *recon_out = codec.Decompress(bytes);
      best = {cr, Nrmse(field, *recon_out)};
    }
  }
  return best;
}

void Dump(const std::string& name, const Tensor& window, std::int64_t frame,
          std::int64_t hw_edge) {
  Tensor img({hw_edge, hw_edge});
  std::copy_n(window.data() + frame * hw_edge * hw_edge, hw_edge * hw_edge,
              img.data());
  data::WritePgmWithZoom("fig6_out/" + name, img, hw_edge / 2, hw_edge / 2,
                         hw_edge / 4, 4);
}

}  // namespace

int main() {
  const bench::Preset preset = bench::MakePreset(data::DatasetKind::kClimate);
  data::SequenceDataset dataset(
      data::GenerateField(data::DatasetKind::kClimate, preset.spec));
  const std::int64_t n = preset.glsc.window;
  const std::int64_t edge = preset.spec.height;
  const std::int64_t show_frame = 7;  // a generated (non-key) frame

  bench::PrintHeader(
      "Figure 6 — Visual comparison near CR=100 on climate-e3sm "
      "(PGM files written to fig6_out/)");

  const Tensor window = dataset.NormalizedWindow(0, 0, n);
  Dump("ground_truth", window, show_frame, edge);

  // ---- Ours: binary-search tau for CR ~ 100 ----
  {
    auto ours = core::GetOrTrainGlsc(dataset, preset.glsc, preset.budget,
                                     bench::ArtifactsDir(),
                                     std::string("glsc_") +
                                         data::DatasetName(preset.kind));
    double best_gap = 1e300;
    // tau = -1 disables corrections (keyframe latents only — the highest CR
    // this model reaches); positive taus add corrections.
    for (const double tau : {-1.0, 2.0, 1.0, 0.5, 0.25, 0.12}) {
      Tensor recon;
      const auto compressed = ours->Compress(window, tau, 0, &recon);
      const double cr =
          static_cast<double>(window.numel() * sizeof(float)) /
          static_cast<double>(compressed.TotalBytes());
      if (std::fabs(cr - 100.0) < best_gap) {
        best_gap = std::fabs(cr - 100.0);
        Dump("ours", recon, show_frame, edge);
        std::printf("%-10s CR=%-8.1f NRMSE=%.4e (tau=%.3g)\n", "Ours", cr,
                    Nrmse(window, recon), tau);
      }
    }
  }

  // ---- VAE-SR ----
  {
    baselines::VaeSrConfig config;
    config.vae = preset.glsc.vae;
    config.vae.seed += 100;
    config.sr_channels = 16;
    auto vaesr = core::GetOrTrain<baselines::VAESRCompressor>(
        bench::ArtifactsDir(),
        std::string("vaesr_") + data::DatasetName(preset.kind),
        [&] { return std::make_unique<baselines::VAESRCompressor>(config); },
        [&](baselines::VAESRCompressor* m) {
          m->Train(dataset, preset.budget.vae, preset.budget.vae.iterations,
                   32);
        });
    const auto compressed = vaesr->Compress(window);
    const Tensor recon = vaesr->Decompress(compressed);
    const double cr = static_cast<double>(window.numel() * sizeof(float)) /
                      static_cast<double>(compressed.frames.TotalBytes());
    Dump("vae_sr", recon, show_frame, edge);
    std::printf("%-10s CR=%-8.1f NRMSE=%.4e\n", "VAE-SR", cr,
                Nrmse(window, recon));
  }

  // ---- CDC (eps) ----
  {
    baselines::CdcConfig config;
    config.vae = preset.glsc.vae;
    config.vae.seed += 200;
    config.model_channels = 16;
    config.schedule_steps = preset.glsc.schedule_steps;
    auto cdc = core::GetOrTrain<baselines::CDCCompressor>(
        bench::ArtifactsDir(),
        std::string("cdc_eps_") + data::DatasetName(preset.kind),
        [&] { return std::make_unique<baselines::CDCCompressor>(config); },
        [&](baselines::CDCCompressor* m) {
          m->Train(dataset, preset.budget.vae,
                   preset.budget.diffusion.iterations, 32);
        });
    const auto compressed = cdc->Compress(window);
    Rng rng(3);
    const Tensor recon = cdc->Decompress(compressed, 32, rng);
    const double cr = static_cast<double>(window.numel() * sizeof(float)) /
                      static_cast<double>(compressed.frames.TotalBytes());
    Dump("cdc", recon, show_frame, edge);
    std::printf("%-10s CR=%-8.1f NRMSE=%.4e\n", "CDC", cr,
                Nrmse(window, recon));
  }

  // ---- SZ3-like & ZFP-like at CR ~ 100 ----
  {
    Tensor field({n, edge, edge});
    std::copy_n(window.data(), field.numel(), field.data());
    baselines::SZLikeCompressor sz;
    Tensor recon;
    const auto [cr, nrmse] = RuleAtCr(sz, field, 100.0, &recon);
    Dump("sz3", recon, show_frame, edge);
    std::printf("%-10s CR=%-8.1f NRMSE=%.4e\n", "SZ3-like", cr, nrmse);

    baselines::ZFPLikeCompressor zfp;
    Tensor zrecon;
    const auto [zcr, znrmse] = RuleAtCr(zfp, field, 100.0, &zrecon);
    Dump("zfp", zrecon, show_frame, edge);
    std::printf("%-10s CR=%-8.1f NRMSE=%.4e\n", "ZFP-like", zcr, znrmse);
  }

  bench::PrintNote(
      "compare fig6_out/*_zoom.pgm: learned methods keep structure at CR~100 "
      "where rule-based methods blur or block");
  return 0;
}
