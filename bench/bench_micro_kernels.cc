// Micro-benchmarks (google-benchmark) for the kernels that dominate encode
// and decode time — the quantitative backing for Table 2's cost breakdown.
#include <benchmark/benchmark.h>

#include "codec/gaussian_model.h"
#include "codec/huffman.h"
#include "codec/range_coder.h"
#include "data/field_generators.h"
#include "diffusion/spacetime_unet.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "postprocess/residual_pca.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/simd/dispatch.h"
#include "tensor/simd/kernels.h"

namespace {

using namespace glsc;

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    MatMul(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(simd::IsaName(simd::ActiveIsa()));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Pinned-level variants: the dispatch-speedup story in one run. Levels the
// host lacks clamp to the best available (the label records what ran).
void BM_GemmAtLevel(benchmark::State& state, simd::IsaLevel level) {
  simd::ScopedIsaOverride override_level(level);
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    MatMul(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(simd::IsaName(simd::ActiveIsa()));
}
void BM_GemmScalar(benchmark::State& state) {
  BM_GemmAtLevel(state, simd::IsaLevel::kScalar);
}
void BM_GemmSse2(benchmark::State& state) {
  BM_GemmAtLevel(state, simd::IsaLevel::kSSE2);
}
void BM_GemmAvx2(benchmark::State& state) {
  BM_GemmAtLevel(state, simd::IsaLevel::kAVX2);
}
BENCHMARK(BM_GemmScalar)->Arg(256);
BENCHMARK(BM_GemmSse2)->Arg(256);
BENCHMARK(BM_GemmAvx2)->Arg(256);

void BM_SiluForward(benchmark::State& state) {
  Rng rng(20);
  const std::int64_t n = 1 << 16;
  Tensor x = Tensor::Randn({n}, rng, 3.0f);
  Tensor y({n});
  const bool scalar = state.range(0) != 0;
  const simd::KernelTable& kernels =
      scalar ? simd::KernelsFor(simd::IsaLevel::kScalar)
             : simd::ActiveKernels();
  for (auto _ : state) {
    kernels.silu_fwd(x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(simd::IsaName(kernels.level));
}
BENCHMARK(BM_SiluForward)->Arg(0)->Arg(1);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(21);
  const std::int64_t rows = 256, d = 256;
  Tensor x = Tensor::Randn({rows, d}, rng, 4.0f);
  Tensor work({rows, d});
  const bool scalar = state.range(0) != 0;
  const simd::KernelTable& kernels =
      scalar ? simd::KernelsFor(simd::IsaLevel::kScalar)
             : simd::ActiveKernels();
  for (auto _ : state) {
    std::copy_n(x.data(), rows * d, work.data());
    for (std::int64_t r = 0; r < rows; ++r) {
      kernels.softmax_row(work.data() + r * d, d);
    }
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * d);
  state.SetLabel(simd::IsaName(kernels.level));
}
BENCHMARK(BM_SoftmaxRows)->Arg(0)->Arg(1);

void BM_Conv2dForward(benchmark::State& state) {
  const auto edge = state.range(0);
  Rng rng(2);
  nn::Conv2d conv(16, 16, 3, 1, 1, rng);
  Tensor x = Tensor::Randn({4, 16, edge, edge}, rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_ConvForwardBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(16, 16, 3, 1, 1, rng);
  Tensor x = Tensor::Randn({4, 16, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, true);
    Tensor g = conv.Backward(y);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_ConvForwardBackward);

void BM_AttentionForward(benchmark::State& state) {
  const auto len = state.range(0);
  Rng rng(4);
  nn::MultiHeadSelfAttention attn(32, 4, rng);
  Tensor x = Tensor::Randn({4, len, 32}, rng);
  for (auto _ : state) {
    Tensor y = attn.Forward(x, false);
    // Consume the cache so the next Forward starts clean.
    attn.Backward(Tensor::Zeros(y.shape()));
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(64)->Arg(256);

void BM_UNetForwardLatent(benchmark::State& state) {
  diffusion::UNetConfig config;
  config.latent_channels = 8;
  config.model_channels = 16;
  config.heads = 4;
  diffusion::SpaceTimeUNet unet(config);
  Rng rng(5);
  Tensor x = Tensor::Randn({16, 8, 8, 8}, rng);
  for (auto _ : state) {
    Tensor y = unet.Forward(x, 100);
    unet.Backward(Tensor::Zeros(y.shape()));
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_UNetForwardLatent);

void BM_UNetForwardPixel(benchmark::State& state) {
  diffusion::UNetConfig config;
  config.latent_channels = 1;
  config.in_channels = 2;
  config.out_channels = 1;
  config.model_channels = 16;
  config.heads = 4;
  config.stage1_attention = false;
  diffusion::SpaceTimeUNet unet(config);
  Rng rng(6);
  Tensor x = Tensor::Randn({16, 2, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = unet.Forward(x, 100);
    unet.Backward(Tensor::Zeros(y.shape()));
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_UNetForwardPixel);

void BM_RangeCoderEncode(benchmark::State& state) {
  Rng rng(7);
  std::vector<int> symbols(1 << 14);
  for (auto& s : symbols) s = static_cast<int>(rng.UniformInt(16));
  for (auto _ : state) {
    codec::RangeEncoder enc;
    for (const int s : symbols) {
      enc.Encode(static_cast<std::uint32_t>(s) * 4, 4, 64);
    }
    auto bytes = enc.Finish();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(symbols.size()));
}
BENCHMARK(BM_RangeCoderEncode);

void BM_GaussianModelEncode(benchmark::State& state) {
  Rng rng(8);
  const Shape shape{6, 8, 8, 8};
  Tensor mu = Tensor::Zeros(shape);
  Tensor sigma = Tensor::Full(shape, 2.0f);
  Tensor y(shape);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    y[i] = std::nearbyint(2.0f * rng.NormalF());
  }
  codec::GaussianConditionalModel model;
  for (auto _ : state) {
    auto bytes = model.Encode(y, mu, sigma);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * y.numel());
}
BENCHMARK(BM_GaussianModelEncode);

void BM_GaussianModelDecode(benchmark::State& state) {
  Rng rng(18);
  const Shape shape{6, 8, 8, 8};
  Tensor mu = Tensor::Zeros(shape);
  Tensor sigma = Tensor::Full(shape, 2.0f);
  Tensor y(shape);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    y[i] = std::nearbyint(2.0f * rng.NormalF());
  }
  codec::GaussianConditionalModel model;
  const auto bytes = model.Encode(y, mu, sigma);
  for (auto _ : state) {
    Tensor back = model.Decode(bytes, mu, sigma);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetItemsProcessed(state.iterations() * y.numel());
}
BENCHMARK(BM_GaussianModelDecode);

void BM_HuffmanRoundTrip(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::int32_t> symbols(1 << 14);
  for (auto& s : symbols) {
    s = rng.UniformInt(100) < 85 ? 0 : static_cast<std::int32_t>(rng.UniformInt(32)) - 16;
  }
  for (auto _ : state) {
    auto bytes = codec::HuffmanEncode(symbols);
    auto back = codec::HuffmanDecode(bytes);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(symbols.size()));
}
BENCHMARK(BM_HuffmanRoundTrip);

void BM_PcaCorrect(benchmark::State& state) {
  Rng rng(10);
  postprocess::ResidualPca pca;
  std::vector<Tensor> residuals;
  for (int f = 0; f < 4; ++f) {
    residuals.push_back(Tensor::Randn({32, 32}, rng, 0.05f));
  }
  pca.Fit(residuals);
  Tensor original = Tensor::Randn({32, 32}, rng);
  for (auto _ : state) {
    Tensor recon = original.Clone();
    for (std::int64_t i = 0; i < recon.numel(); ++i) {
      recon[i] += 0.05f * ((i % 7) - 3);
    }
    auto correction = pca.Correct(original, &recon, 0.2);
    benchmark::DoNotOptimize(correction.payload.data());
  }
}
BENCHMARK(BM_PcaCorrect);

void BM_GenerateField(benchmark::State& state) {
  const auto kind = static_cast<data::DatasetKind>(state.range(0));
  data::FieldSpec spec;
  spec.frames = 16;
  spec.height = 32;
  spec.width = 32;
  for (auto _ : state) {
    Tensor field = data::GenerateField(kind, spec);
    benchmark::DoNotOptimize(field.data());
  }
}
BENCHMARK(BM_GenerateField)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
