// Figure 3c: CR vs NRMSE on the JHTDB turbulence analogue.
// Paper shape: 5x over SZ and 20% over VAE-SR at equal NRMSE (turbulence has
// the weakest temporal correlation, so the keyframe advantage is smallest).
#include "fig3_common.h"

int main() {
  glsc::bench::Fig3Options options;
  options.include_gcd = false;
  glsc::bench::RunFig3(glsc::data::DatasetKind::kTurbulence, "Figure 3c",
                       options);
  return 0;
}
