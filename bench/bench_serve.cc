// Multi-tenant serving front end under load (serve::ShardManager) — two arms:
//
//   sustained — several client threads issue range queries against a small
//               shard fleet at a rate the fleet can absorb. A handful of
//               transient decode faults are injected so the retry path is
//               exercised (and counted) under otherwise-clean load. Reports
//               sustained QPS and p50/p99 request latency; every request must
//               complete.
//   overload  — more clients than the single worker can serve, a small
//               bounded queue, per-request deadlines, and a slow-decode fault
//               on every record. The point is graceful degradation: the queue
//               sheds (kQueueFull) instead of growing, stale queued requests
//               time out (kDeadlineExceeded) instead of hogging the worker,
//               and the latency of the requests that ARE served stays bounded.
//               Reports accepted-request QPS/p50/p99, shed / timeout counts,
//               and the maximum observed queue depth (never above capacity).
//
// Emits BENCH_serve.json; scripts/check.sh gates on the file existing with
// finite sustained/overload numbers and a NONZERO overload shed count — an
// overload arm that never sheds is not testing overload.
//
//   ./bench_serve [--shards=2] [--clients=4] [--requests=64]
//                 [--overload-clients=6] [--overload-requests=40]
//                 [--deadline-ms=60] [--slow-ms=3] [--json=BENCH_serve.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "core/archive_reader.h"
#include "core/container.h"
#include "data/field_generators.h"
#include "serve/fault_injector.h"
#include "serve/shard_manager.h"
#include "util/flags.h"
#include "util/timer.h"

namespace {

double PercentileMs(std::vector<double>* latencies_ms, double q) {
  if (latencies_ms->empty()) return 0.0;
  std::sort(latencies_ms->begin(), latencies_ms->end());
  const double pos = q * double(latencies_ms->size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, latencies_ms->size() - 1);
  const double frac = pos - double(lo);
  return (*latencies_ms)[lo] * (1.0 - frac) + (*latencies_ms)[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace glsc;
  Flags flags(argc, argv);
  const std::string json_path = flags.GetString("json", "BENCH_serve.json");
  const std::int64_t num_shards =
      std::max<std::int64_t>(flags.GetInt("shards", 2), 1);
  const std::int64_t clients =
      std::max<std::int64_t>(flags.GetInt("clients", 4), 1);
  const std::int64_t requests_per_client =
      std::max<std::int64_t>(flags.GetInt("requests", 64), 1);
  const std::int64_t overload_clients =
      std::max<std::int64_t>(flags.GetInt("overload-clients", 6), 2);
  const std::int64_t overload_requests =
      std::max<std::int64_t>(flags.GetInt("overload-requests", 40), 1);
  const std::int64_t deadline_ms =
      std::max<std::int64_t>(flags.GetInt("deadline-ms", 40), 1);
  const int slow_ms = static_cast<int>(
      std::max<std::int64_t>(flags.GetInt("slow-ms", 5), 1));

  // One sz archive per shard (model-free codec: the bench measures the
  // serving machinery, not diffusion decode speed). [2, 40, 32, 32] fields:
  // 3 records per variable, 6 per shard.
  std::vector<core::ArchiveReader> readers;
  std::vector<std::unique_ptr<api::Compressor>> codecs;
  readers.reserve(static_cast<std::size_t>(num_shards));
  for (std::int64_t s = 0; s < num_shards; ++s) {
    data::FieldSpec spec;
    spec.variables = 2;
    spec.frames = 40;
    spec.height = 32;
    spec.width = 32;
    spec.seed = 3000 + static_cast<std::uint64_t>(s);
    const Tensor field = data::GenerateClimate(spec);
    auto codec = api::Compressor::Create("sz");
    api::SessionOptions session_options;
    session_options.bound = {api::ErrorBoundMode::kRelative, 0.01};
    api::EncodeSession encode(codec.get(), field.dim(0), field.dim(2),
                              field.dim(3), session_options);
    encode.Push(field);
    readers.push_back(
        core::ArchiveReader::FromBytes(encode.Finish().Serialize()));
    codecs.push_back(std::move(codec));
  }
  const std::int64_t frames = readers[0].dataset_shape()[1];

  std::printf("== serve front end: %lld shards, sz codec ==\n",
              (long long)num_shards);

  // ---- sustained arm ------------------------------------------------------
  double sustained_qps = 0.0, sustained_p50 = 0.0, sustained_p99 = 0.0;
  std::int64_t sustained_ok = 0, sustained_failed = 0, sustained_retries = 0;
  {
    serve::FaultInjector injector;  // on shard 0; a taste of transient faults
    injector.Arm(serve::FaultInjector::Kind::kTransient, /*count=*/8);
    std::vector<serve::ShardSpec> specs;
    for (std::size_t s = 0; s < readers.size(); ++s) {
      serve::ShardSpec spec{&readers[s], codecs[s].get(), {}};
      spec.schedule.cache_windows = 8;
      if (s == 0) spec.schedule.fault_injector = &injector;
      specs.push_back(spec);
    }
    serve::ManagerOptions options;
    options.queue_capacity = 128;
    options.worker_threads = 2;
    // More retries than armed charges: even a request unlucky enough to draw
    // every injected fault on consecutive attempts still completes, so the
    // "sustained arm completes every request" invariant is structural.
    options.max_retries = 10;
    serve::ShardManager manager(specs, options);

    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    std::atomic<std::int64_t> ok{0}, failed{0};
    Timer timer;
    std::vector<std::thread> threads;
    for (std::int64_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto& mine = latencies[static_cast<std::size_t>(c)];
        mine.reserve(static_cast<std::size_t>(requests_per_client));
        for (std::int64_t r = 0; r < requests_per_client; ++r) {
          serve::GetRequest request;
          request.shard = static_cast<std::size_t>((c + r) % num_shards);
          request.variable = r % 2;
          request.t_begin = (r * 7) % (frames - 8);
          request.t_end = std::min<std::int64_t>(frames,
                                                 request.t_begin + 16);
          request.tenant = "client-" + std::to_string(c);
          const auto t0 = std::chrono::steady_clock::now();
          try {
            (void)manager.Get(request);
            ok.fetch_add(1);
          } catch (const StatusError&) {
            failed.fetch_add(1);
          }
          const auto dt = std::chrono::steady_clock::now() - t0;
          mine.push_back(
              std::chrono::duration<double, std::milli>(dt).count());
        }
      });
    }
    for (auto& t : threads) t.join();
    const double elapsed = timer.Seconds();

    std::vector<double> all;
    for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
    sustained_ok = ok.load();
    sustained_failed = failed.load();
    sustained_qps = double(sustained_ok) / std::max(elapsed, 1e-9);
    sustained_p50 = PercentileMs(&all, 0.50);
    sustained_p99 = PercentileMs(&all, 0.99);
    sustained_retries = manager.Stats().retries;
    std::printf(
        "sustained   %6.1f qps   p50 %7.3f ms   p99 %7.3f ms   "
        "%lld ok / %lld failed, %lld retries (injected transients: %lld)\n",
        sustained_qps, sustained_p50, sustained_p99,
        (long long)sustained_ok, (long long)sustained_failed,
        (long long)sustained_retries, (long long)injector.injected_transient());
    if (sustained_failed != 0) {
      std::fprintf(stderr,
                   "error: sustained arm must complete every request "
                   "(%lld failed)\n",
                   (long long)sustained_failed);
      return 1;
    }
  }

  // ---- overload arm -------------------------------------------------------
  double overload_qps = 0.0, overload_p50 = 0.0, overload_p99 = 0.0;
  std::int64_t overload_ok = 0, overload_shed = 0, overload_timeouts = 0,
               overload_other = 0;
  std::size_t max_queue_depth = 0;
  // Smaller than the storm size: synchronous clients hold one request each,
  // so the queue can only ever fill when capacity < clients.
  const std::size_t overload_capacity = 4;
  {
    serve::FaultInjector injector;  // every decode slowed on every shard
    injector.Arm(serve::FaultInjector::Kind::kSlow, /*count=*/1 << 28,
                 /*record=*/-1, slow_ms);
    std::vector<serve::ShardSpec> specs;
    for (std::size_t s = 0; s < readers.size(); ++s) {
      serve::ShardSpec spec{&readers[s], codecs[s].get(), {}};
      spec.schedule.cache_windows = 0;  // every request pays real decodes
      spec.schedule.fault_injector = &injector;
      specs.push_back(spec);
    }
    serve::ManagerOptions options;
    options.queue_capacity = overload_capacity;
    options.worker_threads = 1;
    serve::ShardManager manager(specs, options);

    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(overload_clients));
    std::atomic<std::int64_t> ok{0}, shed{0}, timeouts{0}, other{0};
    std::atomic<bool> done{false};
    // Sample the queue gauge while the storm runs: bounded-memory evidence.
    std::thread sampler([&] {
      while (!done.load()) {
        max_queue_depth = std::max(max_queue_depth,
                                   manager.Stats().queue_depth);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    Timer timer;
    std::vector<std::thread> threads;
    for (std::int64_t c = 0; c < overload_clients; ++c) {
      threads.emplace_back([&, c] {
        auto& mine = latencies[static_cast<std::size_t>(c)];
        for (std::int64_t r = 0; r < overload_requests; ++r) {
          serve::GetRequest request;
          request.shard = static_cast<std::size_t>((c + r) % num_shards);
          request.variable = r % 2;
          request.t_begin = (r * 11) % (frames - 16);
          request.t_end = request.t_begin + 16;
          request.tenant = "storm-" + std::to_string(c);
          request.deadline = Deadline::AfterMillis(deadline_ms);
          const auto t0 = std::chrono::steady_clock::now();
          try {
            (void)manager.Get(request);
            ok.fetch_add(1);
            const auto dt = std::chrono::steady_clock::now() - t0;
            mine.push_back(
                std::chrono::duration<double, std::milli>(dt).count());
          } catch (const StatusError& e) {
            if (e.code() == ErrorCode::kQueueFull) {
              shed.fetch_add(1);
            } else if (e.code() == ErrorCode::kDeadlineExceeded) {
              timeouts.fetch_add(1);
            } else {
              other.fetch_add(1);
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double elapsed = timer.Seconds();
    done.store(true);
    sampler.join();

    std::vector<double> accepted;
    for (auto& v : latencies) {
      accepted.insert(accepted.end(), v.begin(), v.end());
    }
    overload_ok = ok.load();
    overload_shed = shed.load();
    overload_timeouts = timeouts.load();
    overload_other = other.load();
    overload_qps = double(overload_ok) / std::max(elapsed, 1e-9);
    overload_p50 = PercentileMs(&accepted, 0.50);
    overload_p99 = PercentileMs(&accepted, 0.99);
    std::printf(
        "overload    %6.1f qps   p50 %7.3f ms   p99 %7.3f ms   "
        "%lld ok / %lld shed / %lld timed out / %lld other   "
        "max queue depth %zu (cap %zu)\n",
        overload_qps, overload_p50, overload_p99, (long long)overload_ok,
        (long long)overload_shed, (long long)overload_timeouts,
        (long long)overload_other, max_queue_depth, overload_capacity);
    if (overload_shed == 0) {
      std::fprintf(stderr,
                   "error: overload arm shed nothing — not an overload\n");
      return 1;
    }
    if (max_queue_depth > overload_capacity) {
      std::fprintf(stderr, "error: queue grew past its bound (%zu > %zu)\n",
                   max_queue_depth, overload_capacity);
      return 1;
    }
    // Bounded p99 for ACCEPTED requests: a served request can wait in the
    // bounded queue and decode behind slow records, but the deadline caps it;
    // anything far beyond deadline + one slowed multi-record decode means a
    // request was neither served, shed, nor timed out in bounded time.
    const double p99_bound_ms = double(deadline_ms) + 64.0 * double(slow_ms);
    if (overload_p99 > p99_bound_ms) {
      std::fprintf(stderr,
                   "error: overload p99 %.3f ms exceeds bound %.3f ms\n",
                   overload_p99, p99_bound_ms);
      return 1;
    }
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"serve\",\n"
                 "  \"shards\": %lld,\n"
                 "  \"sustained_qps\": %.6g,\n"
                 "  \"sustained_p50_ms\": %.6g,\n"
                 "  \"sustained_p99_ms\": %.6g,\n"
                 "  \"sustained_ok\": %lld,\n"
                 "  \"sustained_failed\": %lld,\n"
                 "  \"sustained_retries\": %lld,\n"
                 "  \"overload_qps\": %.6g,\n"
                 "  \"overload_p50_ms\": %.6g,\n"
                 "  \"overload_p99_ms\": %.6g,\n"
                 "  \"overload_ok\": %lld,\n"
                 "  \"overload_shed\": %lld,\n"
                 "  \"overload_timeouts\": %lld,\n"
                 "  \"overload_other_errors\": %lld,\n"
                 "  \"overload_max_queue_depth\": %zu,\n"
                 "  \"overload_queue_capacity\": %zu\n"
                 "}\n",
                 (long long)num_shards, sustained_qps, sustained_p50,
                 sustained_p99, (long long)sustained_ok,
                 (long long)sustained_failed, (long long)sustained_retries,
                 overload_qps, overload_p50, overload_p99,
                 (long long)overload_ok, (long long)overload_shed,
                 (long long)overload_timeouts, (long long)overload_other,
                 max_queue_depth, overload_capacity);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
