// File-level compression tool: the workflow an HPC facility would wire into
// its I/O pipeline. Takes raw float32 input (or generates a demo field),
// produces a .glsca archive on disk, then restores it and reports the
// achieved ratio and error.
//
//   ./examples/file_compressor --demo                      # synthetic field
//   ./examples/file_compressor --input=field.f32 --variables=2 [...]   # your data
//   options: --tau=0.1 (error bound), --output=out.glsca
//
// Input layout: [variables, frames, height, width] row-major float32.
// Height/width must be multiples of 16 (VAE + hyperprior geometry).
#include <cstdio>

#include "core/container.h"
#include "core/registry.h"
#include "data/field_generators.h"
#include "tensor/metrics.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace glsc;
  Flags flags(argc, argv);
  const double tau = flags.GetDouble("tau", 0.1);
  const std::string output = flags.GetString("output", "compressed.glsca");

  // ---- load or synthesize the input field ----
  Tensor field;
  if (flags.Has("input")) {
    const auto v = flags.GetInt("variables", 1);
    const auto t = flags.GetInt("frames", 48);
    const auto h = flags.GetInt("height", 32);
    const auto w = flags.GetInt("width", 32);
    std::vector<std::uint8_t> bytes;
    if (!ReadFileBytes(flags.GetString("input", ""), &bytes)) {
      std::fprintf(stderr, "cannot read %s\n",
                   flags.GetString("input", "").c_str());
      return 1;
    }
    const std::size_t expect =
        static_cast<std::size_t>(v * t * h * w) * sizeof(float);
    if (bytes.size() != expect) {
      std::fprintf(stderr, "input is %zu bytes, expected %zu for %lldx%lldx%lldx%lld f32\n",
                   bytes.size(), expect, (long long)v, (long long)t,
                   (long long)h, (long long)w);
      return 1;
    }
    field = Tensor({v, t, h, w});
    std::memcpy(field.data(), bytes.data(), bytes.size());
  } else {
    std::printf("no --input given; generating a demo climate field\n");
    data::FieldSpec spec;
    spec.variables = 1;
    spec.frames = 48;
    spec.height = 32;
    spec.width = 32;
    spec.seed = 5150;
    field = data::GenerateClimate(spec);
  }
  data::SequenceDataset dataset(field);

  // ---- model (trained once per config, cached) ----
  core::GlscConfig config;
  config.vae.latent_channels = 8;
  config.vae.hidden_channels = 16;
  config.vae.hyper_channels = 4;
  config.unet.latent_channels = 8;
  config.unet.model_channels = 16;
  config.window = 16;
  config.interval = 3;
  core::TrainBudget budget;
  budget.vae.iterations = 400;
  budget.vae.crop = 32;
  budget.diffusion.iterations = 400;
  budget.diffusion.crop = 32;
  auto compressor = core::GetOrTrainGlsc(dataset, config, budget, "artifacts",
                                         "file_compressor");

  // ---- compress -> archive -> restore ----
  const core::DatasetArchive archive =
      core::CompressDataset(compressor.get(), dataset, tau);
  archive.WriteFile(output);
  std::vector<std::uint8_t> on_disk;
  GLSC_CHECK(ReadFileBytes(output, &on_disk));

  const core::DatasetArchive loaded = core::DatasetArchive::ReadFile(output);
  const Tensor restored = loaded.DecompressAll(compressor.get());

  const double original_bytes =
      static_cast<double>(dataset.OriginalBytes());
  std::printf("\nwrote %s: %zu bytes (original %.0f) -> CR %.1fx\n",
              output.c_str(), on_disk.size(), original_bytes,
              original_bytes / static_cast<double>(on_disk.size()));
  std::printf("restored NRMSE: %.4e   max |err| / range: %.4e\n",
              Nrmse(field, restored),
              MaxAbsError(field, restored) /
                  (field.MaxValue() - field.MinValue()));
  std::printf("per-frame L2 bound tau=%.3g held on every frame "
              "(enforced by construction)\n", tau);
  return 0;
}
