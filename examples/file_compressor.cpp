// File-level compression tool: the workflow an HPC facility would wire into
// its I/O pipeline. Takes raw float32 input (or generates a demo field),
// streams it chunk by chunk through the unified codec API into a .glsca
// archive on disk, then restores it and reports the achieved ratio and error.
//
//   ./examples/file_compressor --demo                      # synthetic field
//   ./examples/file_compressor --input=field.f32 --variables=2 [...]   # your data
//   options: --codec=glsc|sz|zfp|cdc|gcd|vae_sr (backend, default glsc)
//            --tau=0.1 (error bound), --output=out.glsca, --chunk=8
//
// Input layout: [variables, frames, height, width] row-major float32.
// Learned codecs (glsc, cdc, gcd, vae_sr) need height/width to be multiples
// of 16 (VAE + hyperprior geometry); the rule-based codecs take any shape.
//
// The error bound maps to what the chosen backend can guarantee: a per-frame
// L2 bound of tau (normalized units) for glsc, a pointwise relative bound of
// tau * frame-range for sz/zfp, best effort for the other learned codecs.
#include <cstdio>

#include "api/adapters.h"
#include "api/session.h"
#include "core/container.h"
#include "core/registry.h"
#include "data/field_generators.h"
#include "tensor/metrics.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace glsc;
  Flags flags(argc, argv);
  const double tau = flags.GetDouble("tau", 0.1);
  const std::string output = flags.GetString("output", "compressed.glsca");
  const std::string codec_name = flags.GetString("codec", "glsc");

  // ---- load or synthesize the input field ----
  Tensor field;
  if (flags.Has("input")) {
    const auto v = flags.GetInt("variables", 1);
    const auto t = flags.GetInt("frames", 48);
    const auto h = flags.GetInt("height", 32);
    const auto w = flags.GetInt("width", 32);
    std::vector<std::uint8_t> bytes;
    if (!ReadFileBytes(flags.GetString("input", ""), &bytes)) {
      std::fprintf(stderr, "cannot read %s\n",
                   flags.GetString("input", "").c_str());
      return 1;
    }
    const std::size_t expect =
        static_cast<std::size_t>(v * t * h * w) * sizeof(float);
    if (bytes.size() != expect) {
      std::fprintf(stderr, "input is %zu bytes, expected %zu for %lldx%lldx%lldx%lld f32\n",
                   bytes.size(), expect, (long long)v, (long long)t,
                   (long long)h, (long long)w);
      return 1;
    }
    field = Tensor({v, t, h, w});
    std::memcpy(field.data(), bytes.data(), bytes.size());
  } else {
    std::printf("no --input given; generating a demo climate field\n");
    data::FieldSpec spec;
    spec.variables = 1;
    spec.frames = 48;
    spec.height = 32;
    spec.width = 32;
    spec.seed = 5150;
    field = data::GenerateClimate(spec);
  }

  // ---- pick the backend and validate geometry BEFORE any training ----
  api::CodecOptions codec_options;
  codec_options.window = 16;
  auto probe = api::Compressor::Create(codec_name, codec_options);
  if (!probe->capabilities().model_free &&
      (field.dim(2) % 16 != 0 || field.dim(3) % 16 != 0)) {
    std::fprintf(stderr,
                 "error: codec '%s' needs height and width to be multiples of "
                 "16 (VAE + hyperprior geometry), got %lldx%lld.\n"
                 "Pad the field or use a rule-based codec (--codec=sz|zfp).\n",
                 codec_name.c_str(), (long long)field.dim(2),
                 (long long)field.dim(3));
    return 1;
  }

  data::SequenceDataset dataset(field);

  // ---- model (trained once per config, cached; model-free codecs skip) ----
  api::TrainOptions train;
  train.vae_iterations = 400;
  train.model_iterations = 400;
  train.crop = 32;
  auto codec = api::GetOrTrainCodec(codec_name, codec_options, dataset, train,
                                    "artifacts", "file_compressor_" + codec_name);

  // ---- stream -> archive -> restore ----
  api::SessionOptions session_options;
  if (tau > 0.0) {
    if (codec->capabilities().Supports(api::ErrorBoundMode::kPointwiseL2)) {
      session_options.bound = {api::ErrorBoundMode::kPointwiseL2, tau};
    } else if (codec->capabilities().Supports(api::ErrorBoundMode::kRelative)) {
      session_options.bound = {api::ErrorBoundMode::kRelative, tau};
    } else {
      std::printf("codec '%s' is best-effort; --tau ignored\n",
                  codec_name.c_str());
    }
  } else if (!codec->capabilities().Supports(api::ErrorBoundMode::kNone)) {
    std::fprintf(stderr,
                 "error: codec '%s' is error-bounded and needs --tau > 0\n",
                 codec_name.c_str());
    return 1;
  }
  api::EncodeSession session(codec.get(), field.dim(0), field.dim(2),
                             field.dim(3), session_options);
  // Feed the stream in chunks, as an I/O pipeline would (records are emitted
  // as windows fill; any chunking yields the identical archive).
  const std::int64_t chunk_frames = flags.GetInt("chunk", 8);
  const std::int64_t frames = field.dim(1);
  for (std::int64_t t0 = 0; t0 < frames; t0 += chunk_frames) {
    const std::int64_t t1 = std::min(frames, t0 + chunk_frames);
    Tensor chunk({field.dim(0), t1 - t0, field.dim(2), field.dim(3)});
    const std::int64_t hw = field.dim(2) * field.dim(3);
    for (std::int64_t v = 0; v < field.dim(0); ++v) {
      std::copy_n(field.data() + (v * frames + t0) * hw, (t1 - t0) * hw,
                  chunk.data() + v * (t1 - t0) * hw);
    }
    session.Push(chunk);
  }
  const core::DatasetArchive archive = session.Finish();
  archive.WriteFile(output);
  std::vector<std::uint8_t> on_disk;
  GLSC_CHECK(ReadFileBytes(output, &on_disk));

  const core::DatasetArchive loaded = core::DatasetArchive::ReadFile(output);
  const Tensor restored = loaded.DecompressAll(codec.get());

  const double original_bytes =
      static_cast<double>(dataset.OriginalBytes());
  std::printf("\n[%s] wrote %s: %zu bytes (original %.0f) -> CR %.1fx\n",
              codec_name.c_str(), output.c_str(), on_disk.size(),
              original_bytes,
              original_bytes / static_cast<double>(on_disk.size()));
  std::printf("restored NRMSE: %.4e   max |err| / range: %.4e\n",
              Nrmse(field, restored),
              MaxAbsError(field, restored) /
                  (field.MaxValue() - field.MinValue()));
  if (session_options.bound.mode != api::ErrorBoundMode::kNone) {
    std::printf("error bound tau=%.3g enforced by construction (%s mode)\n",
                tau,
                session_options.bound.mode == api::ErrorBoundMode::kPointwiseL2
                    ? "per-frame L2"
                    : "pointwise relative");
  }
  return 0;
}
