// Combustion species compression with a quantity-of-interest (QoI) check:
// scientific workflows must preserve derived quantities, not just pointwise
// values. Here the QoI is each frame's total species mass (the domain
// integral) and the location of the reaction front (the max-gradient point);
// both are compared before and after compression at several error bounds.
//
// Run:  ./examples/combustion_species [--species=3]
#include <cmath>
#include <cstdio>

#include "core/glsc_compressor.h"
#include "core/registry.h"
#include "data/dataset.h"
#include "data/field_generators.h"
#include "tensor/metrics.h"
#include "util/flags.h"

namespace {

using glsc::Tensor;

// QoI 1: domain integral (total mass) of a frame.
double FrameMass(const Tensor& window, std::int64_t frame, std::int64_t hw) {
  double s = 0.0;
  for (std::int64_t i = 0; i < hw; ++i) s += window[frame * hw + i];
  return s;
}

// QoI 2: position of the steepest horizontal gradient (front location).
std::int64_t FrontColumn(const Tensor& window, std::int64_t frame,
                         std::int64_t h, std::int64_t w) {
  double best = -1.0;
  std::int64_t best_col = 0;
  for (std::int64_t x = 1; x < w; ++x) {
    double grad = 0.0;
    for (std::int64_t y = 0; y < h; ++y) {
      grad += std::fabs(window[(frame * h + y) * w + x] -
                        window[(frame * h + y) * w + x - 1]);
    }
    if (grad > best) {
      best = grad;
      best_col = x;
    }
  }
  return best_col;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace glsc;
  Flags flags(argc, argv);

  data::FieldSpec spec;
  spec.variables = flags.GetInt("species", 3);
  spec.frames = 48;
  spec.height = 32;
  spec.width = 32;
  spec.seed = 1234;
  data::SequenceDataset dataset(data::GenerateCombustion(spec));
  std::printf("combustion dataset: %lld species x %lld frames\n",
              static_cast<long long>(dataset.variables()),
              static_cast<long long>(dataset.frames()));

  core::GlscConfig config;
  config.vae.latent_channels = 8;
  config.vae.hidden_channels = 16;
  config.vae.hyper_channels = 4;
  config.unet.latent_channels = 8;
  config.unet.model_channels = 16;
  config.window = 16;
  config.interval = 3;
  core::TrainBudget budget;
  budget.vae.iterations = 400;
  budget.vae.crop = 32;
  budget.diffusion.iterations = 400;
  budget.diffusion.crop = 32;
  auto compressor = core::GetOrTrainGlsc(dataset, config, budget, "artifacts",
                                         "combustion_species");

  const std::int64_t hw = dataset.height() * dataset.width();
  for (const double tau : {0.4, 0.1, 0.02}) {
    std::printf("\n--- error bound tau = %.3g ---\n", tau);
    std::printf("%-9s %-10s %-14s %-14s %-12s %-10s\n", "species", "CR",
                "mass rel.err", "front shift", "NRMSE", "bound");
    for (std::int64_t s = 0; s < dataset.variables(); ++s) {
      const Tensor window = dataset.NormalizedWindow(s, 0, config.window);
      Tensor recon;
      const auto compressed = compressor->Compress(window, tau, 0, &recon);

      double worst_mass = 0.0;
      std::int64_t worst_shift = 0;
      double worst_l2 = 0.0;
      for (std::int64_t f = 0; f < config.window; ++f) {
        const double m0 = FrameMass(window, f, hw);
        const double m1 = FrameMass(recon, f, hw);
        worst_mass = std::max(
            worst_mass, std::fabs(m1 - m0) / std::max(std::fabs(m0), 1e-9));
        worst_shift = std::max<std::int64_t>(
            worst_shift,
            std::llabs(FrontColumn(window, f, dataset.height(),
                                   dataset.width()) -
                       FrontColumn(recon, f, dataset.height(),
                                   dataset.width())));
        double l2 = 0.0;
        for (std::int64_t i = 0; i < hw; ++i) {
          const double d = window[f * hw + i] - recon[f * hw + i];
          l2 += d * d;
        }
        worst_l2 = std::max(worst_l2, std::sqrt(l2));
      }
      std::printf("%-9lld %-10.1f %-14.3e %-14lld %-12.4e %s\n",
                  static_cast<long long>(s),
                  window.numel() * sizeof(float) /
                      static_cast<double>(compressed.TotalBytes()),
                  worst_mass, static_cast<long long>(worst_shift),
                  Nrmse(window, recon),
                  worst_l2 <= tau * (1 + 1e-4) ? "OK" : "VIOLATED");
    }
  }
  std::printf("\ntighter bounds shrink both QoI deviations — the PD guarantee "
              "transfers to derived quantities\n");
  return 0;
}
