// Climate pipeline: multi-variable compression with a rate-distortion sweep
// against the rule-based SZ3-like compressor — the workflow a climate-model
// I/O pipeline would run nightly (the paper's E3SM motivation).
//
// Run:  ./examples/climate_pipeline [--variables=2] [--frames=48]
#include <cstdio>

#include "baselines/sz_like.h"
#include "core/glsc_compressor.h"
#include "core/registry.h"
#include "data/dataset.h"
#include "data/field_generators.h"
#include "tensor/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace glsc;
  Flags flags(argc, argv);

  data::FieldSpec spec;
  spec.variables = flags.GetInt("variables", 2);
  spec.frames = flags.GetInt("frames", 48);
  spec.height = 32;
  spec.width = 32;
  spec.seed = 99;
  data::SequenceDataset dataset(data::GenerateClimate(spec));
  std::printf("climate dataset: %lld variables x %lld frames (%.2f MB)\n",
              static_cast<long long>(dataset.variables()),
              static_cast<long long>(dataset.frames()),
              dataset.OriginalBytes() / double(1 << 20));

  core::GlscConfig config;
  config.vae.latent_channels = 8;
  config.vae.hidden_channels = 16;
  config.vae.hyper_channels = 4;
  config.unet.latent_channels = 8;
  config.unet.model_channels = 16;
  config.window = 16;
  config.interval = 3;
  core::TrainBudget budget;
  budget.vae.iterations = 400;
  budget.vae.crop = 32;
  budget.diffusion.iterations = 400;
  budget.diffusion.crop = 32;
  auto compressor = core::GetOrTrainGlsc(dataset, config, budget, "artifacts",
                                         "climate_pipeline");

  std::printf("\n%-12s %-10s %-12s | %-12s %-12s\n", "bound tau", "GLSC CR",
              "GLSC NRMSE", "SZ-like CR", "SZ-like NRMSE");
  baselines::SZLikeCompressor sz;
  for (const double tau : {0.6, 0.3, 0.15, 0.08}) {
    // GLSC over every evaluation window of every variable.
    double sq_err = 0.0;
    std::size_t bytes = 0;
    double points = 0.0;
    for (const auto& ref : dataset.EvaluationWindows(config.window)) {
      const Tensor window =
          dataset.NormalizedWindow(ref.variable, ref.t0, config.window);
      Tensor recon;
      const auto compressed = compressor->Compress(window, tau, 0, &recon);
      bytes += compressed.TotalBytes();
      for (std::int64_t i = 0; i < window.numel(); ++i) {
        const double d = window[i] - recon[i];
        sq_err += d * d;
      }
      points += static_cast<double>(window.numel());
    }
    const double glsc_cr = points * sizeof(float) / bytes;
    const double glsc_nrmse = std::sqrt(sq_err / points);

    // SZ-like at a bound that lands in a comparable error regime.
    double sz_sq = 0.0;
    std::size_t sz_bytes = 0;
    for (std::int64_t v = 0; v < dataset.variables(); ++v) {
      Tensor field({dataset.frames(), dataset.height(), dataset.width()});
      std::copy_n(dataset.raw().data() + v * field.numel(), field.numel(),
                  field.data());
      const double range = field.MaxValue() - field.MinValue();
      const auto stream = sz.Compress(field, tau * 0.02 * range);
      const Tensor recon = sz.Decompress(stream);
      sz_bytes += stream.size();
      for (std::int64_t i = 0; i < field.numel(); ++i) {
        const double d = (field[i] - recon[i]) / range;
        sz_sq += d * d;
      }
    }
    const double sz_points = static_cast<double>(dataset.raw().numel());
    std::printf("%-12.3g %-10.1f %-12.4e | %-12.1f %-12.4e\n", tau, glsc_cr,
                glsc_nrmse, sz_points * sizeof(float) / sz_bytes,
                std::sqrt(sz_sq / sz_points));
  }
  std::printf("\n(learned keyframe+diffusion storage wins at equal error — "
              "the paper's Figure 3a in miniature)\n");
  return 0;
}
