// Climate pipeline: multi-variable compression with a rate-distortion sweep
// against a rule-based compressor — the workflow a climate-model I/O pipeline
// would run nightly (the paper's E3SM motivation). The comparator runs
// through the unified codec API, so --codec=sz|zfp switches it.
//
// Run:  ./examples/climate_pipeline [--variables=2] [--frames=48] [--codec=sz]
#include <cstdio>

#include "api/session.h"
#include "core/archive_reader.h"
#include "core/container.h"
#include "serve/decode_scheduler.h"
#include "core/glsc_compressor.h"
#include "core/registry.h"
#include "data/dataset.h"
#include "data/field_generators.h"
#include "tensor/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace glsc;
  Flags flags(argc, argv);

  // Validate the comparator choice before any training starts.
  const std::string rule_codec = flags.GetString("codec", "sz");
  auto rule = api::Compressor::Create(rule_codec);
  if (!rule->capabilities().Supports(api::ErrorBoundMode::kRelative)) {
    std::fprintf(stderr,
                 "error: --codec=%s cannot serve as the comparator (needs a "
                 "relative error bound); use --codec=sz or --codec=zfp\n",
                 rule_codec.c_str());
    return 1;
  }

  data::FieldSpec spec;
  spec.variables = flags.GetInt("variables", 2);
  spec.frames = flags.GetInt("frames", 48);
  spec.height = 32;
  spec.width = 32;
  spec.seed = 99;
  data::SequenceDataset dataset(data::GenerateClimate(spec));
  std::printf("climate dataset: %lld variables x %lld frames (%.2f MB)\n",
              static_cast<long long>(dataset.variables()),
              static_cast<long long>(dataset.frames()),
              dataset.OriginalBytes() / double(1 << 20));

  core::GlscConfig config;
  config.vae.latent_channels = 8;
  config.vae.hidden_channels = 16;
  config.vae.hyper_channels = 4;
  config.unet.latent_channels = 8;
  config.unet.model_channels = 16;
  config.window = 16;
  config.interval = 3;
  core::TrainBudget budget;
  budget.vae.iterations = 400;
  budget.vae.crop = 32;
  budget.diffusion.iterations = 400;
  budget.diffusion.crop = 32;
  auto compressor = core::GetOrTrainGlsc(dataset, config, budget, "artifacts",
                                         "climate_pipeline");

  std::printf("\n%-12s %-10s %-12s | %-12s %-12s\n", "bound tau", "GLSC CR",
              "GLSC NRMSE", (rule_codec + " CR").c_str(),
              (rule_codec + " NRMSE").c_str());
  for (const double tau : {0.6, 0.3, 0.15, 0.08}) {
    // GLSC over every evaluation window of every variable.
    double sq_err = 0.0;
    std::size_t bytes = 0;
    double points = 0.0;
    for (const auto& ref : dataset.EvaluationWindows(config.window)) {
      const Tensor window =
          dataset.NormalizedWindow(ref.variable, ref.t0, config.window);
      Tensor recon;
      const auto compressed = compressor->Compress(window, tau, 0, &recon);
      bytes += compressed.TotalBytes();
      for (std::int64_t i = 0; i < window.numel(); ++i) {
        const double d = window[i] - recon[i];
        sq_err += d * d;
      }
      points += static_cast<double>(window.numel());
    }
    const double glsc_cr = points * sizeof(float) / bytes;
    const double glsc_nrmse = std::sqrt(sq_err / points);

    // Rule-based comparator through the unified API, at a relative bound
    // that lands in a comparable error regime.
    api::SessionOptions rule_options;
    rule_options.bound = {api::ErrorBoundMode::kRelative, tau * 0.02};
    api::EncodeSession rule_session(rule.get(), dataset.variables(),
                                    dataset.height(), dataset.width(),
                                    rule_options);
    rule_session.Push(dataset.raw());
    const core::DatasetArchive rule_archive = rule_session.Finish();
    // Decode through the serving layer: random-access reader over the
    // serialized bytes, scheduler fanning records out over two workers.
    const auto rule_bytes = rule_archive.Serialize();
    const auto rule_reader = core::ArchiveReader::FromBytes(rule_bytes);
    serve::ScheduleOptions serve_options;
    serve_options.workers = 2;
    serve::DecodeScheduler rule_scheduler(&rule_reader, rule.get(),
                                          serve_options);
    const Tensor rule_recon = rule_scheduler.GetAll();
    double rule_sq = 0.0;
    const std::int64_t frame_numel = dataset.height() * dataset.width();
    for (std::int64_t v = 0; v < dataset.variables(); ++v) {
      for (std::int64_t t = 0; t < dataset.frames(); ++t) {
        const float range = dataset.norm(v, t).range;
        const float* a =
            dataset.raw().data() + (v * dataset.frames() + t) * frame_numel;
        const float* b =
            rule_recon.data() + (v * dataset.frames() + t) * frame_numel;
        for (std::int64_t i = 0; i < frame_numel; ++i) {
          const double d = (a[i] - b[i]) / range;
          rule_sq += d * d;
        }
      }
    }
    const double rule_points = static_cast<double>(dataset.raw().numel());
    std::printf("%-12.3g %-10.1f %-12.4e | %-12.1f %-12.4e\n", tau, glsc_cr,
                glsc_nrmse, rule_points * sizeof(float) / rule_bytes.size(),
                std::sqrt(rule_sq / rule_points));
  }
  std::printf("\n(learned keyframe+diffusion storage wins at equal error — "
              "the paper's Figure 3a in miniature)\n");
  return 0;
}
