// Turbulence error-bound demo: compresses a velocity field and shows (a) the
// per-frame L2 guarantee holding across a tau sweep, and (b) how much of the
// spatial energy spectrum survives — turbulence analyses live and die by the
// spectrum, which is why guaranteed bounds matter for this domain.
//
// Run:  ./examples/turbulence_errorbound
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "core/glsc_compressor.h"
#include "core/registry.h"
#include "data/dataset.h"
#include "data/field_generators.h"
#include "tensor/metrics.h"
#include "util/flags.h"

namespace {

using glsc::Tensor;

// Radially-binned spatial power spectrum of one frame (plain DFT magnitudes;
// fine for 32x32).
std::vector<double> PowerSpectrum(const Tensor& window, std::int64_t frame,
                                  std::int64_t h, std::int64_t w) {
  const std::int64_t kmax = std::min(h, w) / 2;
  std::vector<double> spectrum(static_cast<std::size_t>(kmax), 0.0);
  for (std::int64_t ky = 0; ky < h / 2; ++ky) {
    for (std::int64_t kx = 0; kx < w / 2; ++kx) {
      const auto kr = static_cast<std::int64_t>(
          std::sqrt(static_cast<double>(ky * ky + kx * kx)));
      if (kr < 1 || kr >= kmax) continue;
      double re = 0.0, im = 0.0;
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          const double phase =
              -2.0 * std::numbers::pi *
              (static_cast<double>(ky * y) / h + static_cast<double>(kx * x) / w);
          const double v = window[(frame * h + y) * w + x];
          re += v * std::cos(phase);
          im += v * std::sin(phase);
        }
      }
      spectrum[static_cast<std::size_t>(kr)] += re * re + im * im;
    }
  }
  return spectrum;
}

double SpectrumRelErr(const std::vector<double>& a,
                      const std::vector<double>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t k = 1; k < a.size(); ++k) {
    num += std::fabs(a[k] - b[k]);
    den += std::fabs(a[k]);
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace glsc;
  Flags flags(argc, argv);

  data::FieldSpec spec;
  spec.variables = 2;  // vx, vy
  spec.frames = 48;
  spec.height = 32;
  spec.width = 32;
  spec.seed = 777;
  data::SequenceDataset dataset(data::GenerateTurbulence(spec));
  std::printf("turbulence dataset: %lld components x %lld frames\n",
              static_cast<long long>(dataset.variables()),
              static_cast<long long>(dataset.frames()));

  core::GlscConfig config;
  config.vae.latent_channels = 8;
  config.vae.hidden_channels = 16;
  config.vae.hyper_channels = 4;
  config.unet.latent_channels = 8;
  config.unet.model_channels = 16;
  config.window = 16;
  config.interval = 3;
  core::TrainBudget budget;
  budget.vae.iterations = 400;
  budget.vae.crop = 32;
  budget.diffusion.iterations = 400;
  budget.diffusion.crop = 32;
  auto compressor = core::GetOrTrainGlsc(dataset, config, budget, "artifacts",
                                         "turbulence_errorbound");

  const Tensor window = dataset.NormalizedWindow(0, 0, config.window);
  const auto truth_spectrum =
      PowerSpectrum(window, 5, dataset.height(), dataset.width());
  const std::int64_t hw = dataset.height() * dataset.width();

  std::printf("\n%-10s %-10s %-14s %-16s %-14s\n", "tau", "CR", "NRMSE",
              "worst frame L2", "spectrum err");
  for (const double tau : {0.8, 0.4, 0.2, 0.1, 0.05}) {
    Tensor recon;
    const auto compressed = compressor->Compress(window, tau, 0, &recon);
    double worst = 0.0;
    for (std::int64_t f = 0; f < config.window; ++f) {
      double l2 = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) {
        const double d = window[f * hw + i] - recon[f * hw + i];
        l2 += d * d;
      }
      worst = std::max(worst, std::sqrt(l2));
    }
    const auto recon_spectrum =
        PowerSpectrum(recon, 5, dataset.height(), dataset.width());
    std::printf("%-10.3g %-10.1f %-14.4e %-8.4g (<=tau) %-14.3f\n", tau,
                window.numel() * sizeof(float) /
                    static_cast<double>(compressed.TotalBytes()),
                Nrmse(window, recon), worst,
                SpectrumRelErr(truth_spectrum, recon_spectrum));
    if (worst > tau * (1 + 1e-4)) {
      std::printf("  !! bound violated — this must never print\n");
      return 1;
    }
  }
  std::printf("\nevery row satisfied its L2 bound; tightening tau drives the "
              "spectrum error toward zero\n");
  return 0;
}
