// Quickstart: compress and decompress one spatiotemporal window end to end.
//
//   1. generate a synthetic climate field,
//   2. train (or load a cached) GLSC compressor — VAE + hyperprior, latent
//      diffusion with keyframe conditioning, PCA error-bound basis,
//   3. compress a 16-frame window with an error bound,
//   4. decompress and report compression ratio / NRMSE / bound compliance.
//
//   5. lift the trained model into the unified codec API and stream the whole
//      dataset into a codec-agnostic archive (see docs/API.md),
//   6. write the archive to disk and serve a single window back through the
//      random-access reader + decode scheduler — only that record's payload
//      is read and decoded.
//
// Run:  ./examples/quickstart [--tau=0.1] [--steps=32]
#include <cmath>
#include <cstdio>

#include "api/adapters.h"
#include "api/session.h"
#include "core/archive_reader.h"
#include "core/container.h"
#include "core/glsc_compressor.h"
#include "core/registry.h"
#include "data/dataset.h"
#include "data/field_generators.h"
#include "serve/decode_scheduler.h"
#include "tensor/metrics.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace glsc;
  Flags flags(argc, argv);
  const double tau = flags.GetDouble("tau", 0.1);
  const auto steps = flags.GetInt("steps", 32);

  // 1. A small climate-like dataset: 1 variable, 48 frames of 32x32.
  data::FieldSpec spec;
  spec.variables = 1;
  spec.frames = 48;
  spec.height = 32;
  spec.width = 32;
  spec.seed = 2024;
  data::SequenceDataset dataset(data::GenerateClimate(spec));
  std::printf("dataset: climate %lld frames of %lldx%lld (%.2f MB)\n",
              static_cast<long long>(dataset.frames()),
              static_cast<long long>(dataset.height()),
              static_cast<long long>(dataset.width()),
              dataset.OriginalBytes() / double(1 << 20));

  // 2. Configure the compressor. These are laptop-scale settings; see
  //    DESIGN.md §6 for how they map to the paper's.
  core::GlscConfig config;
  config.vae.latent_channels = 8;
  config.vae.hidden_channels = 16;
  config.vae.hyper_channels = 4;
  config.unet.latent_channels = 8;
  config.unet.model_channels = 16;
  config.window = 16;
  config.interval = 3;
  config.schedule_steps = 200;
  config.sample_steps = steps;

  core::TrainBudget budget;
  budget.vae.iterations = 400;
  budget.vae.crop = 32;
  budget.diffusion.iterations = 400;
  budget.diffusion.crop = 32;
  budget.finetune_steps = 32;
  budget.finetune_iterations = 100;

  auto compressor = core::GetOrTrainGlsc(dataset, config, budget, "artifacts",
                                         "quickstart_climate");
  std::printf("keyframes per %lld-frame window: {",
              static_cast<long long>(config.window));
  for (const auto k : compressor->keyframe_indices()) {
    std::printf(" %lld", static_cast<long long>(k));
  }
  std::printf(" } — only these frames' latents are stored\n");

  // 3. Compress one window with an L2 error bound per frame.
  const Tensor window = dataset.NormalizedWindow(0, 0, config.window);
  const core::CompressedWindow compressed = compressor->Compress(window, tau);

  // 4. Decompress and report.
  const Tensor recon = compressor->Decompress(compressed);
  const double original_bytes = window.numel() * sizeof(float);
  std::printf("\ncompressed bytes: latents=%zu corrections=%zu header=%zu\n",
              compressed.LatentBytes(), compressed.CorrectionBytes(),
              compressed.HeaderBytes());
  std::printf("compression ratio: %.1fx   NRMSE: %.4e   PSNR: %.1f dB\n",
              original_bytes / compressed.TotalBytes(),
              Nrmse(window, recon), Psnr(window, recon));

  // Verify the per-frame guarantee the postprocessor enforces.
  const std::int64_t hw = window.dim(1) * window.dim(2);
  double worst = 0.0;
  for (std::int64_t f = 0; f < window.dim(0); ++f) {
    double l2 = 0.0;
    for (std::int64_t i = 0; i < hw; ++i) {
      const double d = window[f * hw + i] - recon[f * hw + i];
      l2 += d * d;
    }
    worst = std::max(worst, std::sqrt(l2));
  }
  std::printf("error bound tau=%.3g: worst per-frame L2=%.4g -> %s\n", tau,
              worst, worst <= tau * (1 + 1e-4) ? "GUARANTEED" : "VIOLATED");

  // 5. The same trained model through the unified codec API: stream the full
  //    dataset (tail windows included) into an archive any backend could
  //    have written — swap "glsc" for "sz", "zfp", ... via Compressor::Create.
  const auto codec = api::WrapGlsc(compressor.get());
  api::SessionOptions session_options;
  session_options.bound = {api::ErrorBoundMode::kPointwiseL2, tau};
  api::EncodeSession session(codec.get(), dataset.variables(),
                             dataset.height(), dataset.width(),
                             session_options);
  session.Push(dataset.raw());
  const core::DatasetArchive archive = session.Finish();
  const auto archive_bytes = archive.Serialize();
  std::printf("\nstreamed %lld frames -> %zu '%s' records, %zu archive bytes "
              "(CR %.1fx)\n",
              static_cast<long long>(session.frames_pushed()),
              archive.entries().size(), archive.codec().c_str(),
              archive_bytes.size(),
              dataset.OriginalBytes() / double(archive_bytes.size()));

  // 6. Random access: the v3 footer index lets a reader serve one window
  //    without touching the rest of the archive, and the scheduler's LRU
  //    makes the second fetch free.
  const std::string archive_path = "artifacts/quickstart_stream.glsca";
  archive.WriteFile(archive_path);
  auto reader = core::ArchiveReader::FromFile(archive_path);
  serve::DecodeScheduler scheduler(&reader, codec.get());
  Timer cold;
  const Tensor slice =
      scheduler.Get(0, config.window, 2 * config.window);
  const double t_cold = cold.Seconds();
  Timer warm;
  (void)scheduler.Get(0, config.window, 2 * config.window);
  const double t_warm = warm.Seconds();
  std::printf("random access: frames [%lld, %lld) = %lld x %lldx%lld slice, "
              "%lld of %zu records decoded,\n"
              "  %llu of %llu archive bytes read; cold %.3fs, cached %.4fs\n",
              static_cast<long long>(config.window),
              static_cast<long long>(2 * config.window),
              static_cast<long long>(slice.dim(0)),
              static_cast<long long>(slice.dim(1)),
              static_cast<long long>(slice.dim(2)),
              static_cast<long long>(scheduler.decoded_records()),
              archive.entries().size(),
              static_cast<unsigned long long>(reader.payload_bytes_fetched()),
              static_cast<unsigned long long>(reader.archive_bytes()), t_cold,
              t_warm);
  return 0;
}
