// Cross-module integration tests: the properties the paper's evaluation
// relies on, verified end to end at tiny scale.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/sz_like.h"
#include "core/glsc_compressor.h"
#include "core/registry.h"
#include "tensor/metrics.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace glsc {
namespace {

core::GlscConfig SmallConfig() {
  core::GlscConfig config;
  config.vae.latent_channels = 4;
  config.vae.hidden_channels = 8;
  config.vae.hyper_channels = 2;
  config.vae.seed = 13;
  config.unet.latent_channels = 4;
  config.unet.model_channels = 8;
  config.unet.heads = 2;
  config.unet.seed = 15;
  config.schedule_steps = 40;
  config.window = 8;
  config.interval = 3;
  config.sample_steps = 6;
  return config;
}

core::TrainBudget SmallBudget() {
  core::TrainBudget budget;
  budget.vae.iterations = 400;
  budget.vae.batch_size = 4;
  budget.vae.crop = 16;
  budget.vae.log_every = 0;
  budget.vae.lambda_double_at = 200;
  budget.vae.lr_decay_every = 0;
  budget.diffusion.iterations = 250;
  budget.diffusion.crop = 16;
  budget.diffusion.log_every = 0;
  budget.pca_fit_windows = 3;
  return budget;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::FieldSpec spec;
    spec.frames = 48;
    spec.height = 16;
    spec.width = 16;
    spec.seed = 21;
    dataset_ =
        new data::SequenceDataset(data::GenerateClimate(spec));
    compressor_ =
        core::GetOrTrainGlsc(*dataset_, SmallConfig(), SmallBudget(),
                             "/tmp/glsc_integration_artifacts", "integ_small_v2")
            .release();
  }
  static void TearDownTestSuite() {
    delete compressor_;
    delete dataset_;
  }

  static data::SequenceDataset* dataset_;
  static core::GlscCompressor* compressor_;
};

data::SequenceDataset* IntegrationTest::dataset_ = nullptr;
core::GlscCompressor* IntegrationTest::compressor_ = nullptr;

// Postprocessing corrections strictly improve reconstruction error while
// adding bytes — the RD sweep that generates every Figure-3 curve.
TEST_F(IntegrationTest, RdSweepIsMonotone) {
  const Tensor window = dataset_->NormalizedWindow(0, 0, 8);

  struct Point {
    double nrmse;
    std::size_t bytes;
  };
  std::vector<Point> points;
  for (const double tau : {1.0, 0.3, 0.1, 0.03}) {
    const auto compressed = compressor_->Compress(window, tau);
    const Tensor recon = compressor_->Decompress(compressed);
    points.push_back({Nrmse(window, recon), compressed.TotalBytes()});
  }
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].nrmse, points[i - 1].nrmse * (1.0 + 1e-9))
        << "tighter tau must not increase error";
    EXPECT_GE(points[i].bytes, points[i - 1].bytes)
        << "tighter tau must not shrink the payload";
  }
}

// The headline storage claim: our windows store keyframe latents only, so at
// matched VAE settings the latent bytes are well below a per-frame coder.
TEST_F(IntegrationTest, KeyframeStorageBeatsAllFrameStorage) {
  const Tensor window = dataset_->NormalizedWindow(0, 8, 8);
  const auto ours = compressor_->Compress(window, -1.0);

  const Tensor all_frames =
      window.Reshape({8, 1, window.dim(1), window.dim(2)});
  const auto every_frame = compressor_->vae().Compress(all_frames);
  EXPECT_LT(ours.LatentBytes(), every_frame.TotalBytes())
      << "keyframe-only latents must cost less than all-frame latents";
}

// Compression ratio accounting matches Eq. 11 with real byte counts.
TEST_F(IntegrationTest, CompressionRatioFormula) {
  const Tensor window = dataset_->NormalizedWindow(0, 16, 8);
  const auto compressed = compressor_->Compress(window, 0.1);
  const std::size_t original =
      static_cast<std::size_t>(window.numel()) * sizeof(float);
  const double cr = CompressionRatio(
      original, compressed.LatentBytes() + compressed.HeaderBytes(),
      compressed.CorrectionBytes());
  EXPECT_GT(cr, 1.0) << "the pipeline must actually compress";
  const double cr_manual =
      static_cast<double>(original) / compressed.TotalBytes();
  EXPECT_NEAR(cr, cr_manual, 1e-9);
}

// Keyframes are reconstructed more faithfully than generated frames in the
// uncorrected pipeline (Figure 2's per-frame error dips at keyframes).
TEST_F(IntegrationTest, KeyframesReconstructBest) {
  double key_mse = 0.0, gen_mse = 0.0;
  std::int64_t key_n = 0, gen_n = 0;
  const std::int64_t hw = 16 * 16;
  for (std::int64_t w0 = 0; w0 + 8 <= 48; w0 += 8) {
    const Tensor window = dataset_->NormalizedWindow(0, w0, 8);
    const auto compressed = compressor_->Compress(window, -1.0);
    const Tensor recon = compressor_->Decompress(compressed);
    for (std::int64_t f = 0; f < 8; ++f) {
      double mse = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) {
        const double d = window[f * hw + i] - recon[f * hw + i];
        mse += d * d;
      }
      mse /= hw;
      const auto& keys = compressor_->keyframe_indices();
      if (std::find(keys.begin(), keys.end(), f) != keys.end()) {
        key_mse += mse;
        ++key_n;
      } else {
        gen_mse += mse;
        ++gen_n;
      }
    }
  }
  key_mse /= key_n;
  gen_mse /= gen_n;
  EXPECT_LT(key_mse, gen_mse)
      << "stored keyframes should beat generated frames";
}

// SZ-like baseline comparison runs end to end on the same data (the harness
// behind Figure 3's dotted lines).
TEST_F(IntegrationTest, RuleBasedBaselineComparableOnSameData) {
  const Tensor window = dataset_->NormalizedWindow(0, 0, 8);
  baselines::SZLikeCompressor sz;
  const double range = window.MaxValue() - window.MinValue();
  const auto bytes = sz.Compress(window, 0.02 * range);
  const Tensor recon = sz.Decompress(bytes);
  EXPECT_LE(MaxAbsError(window, recon), 0.02 * range * (1.0 + 1e-6));
  EXPECT_GT(bytes.size(), 0u);
}

// Encode is much faster than decode (the asymmetry Table 2 quantifies:
// encoding is one VAE pass, decoding runs the reverse diffusion).
TEST_F(IntegrationTest, EncodeFasterThanDecode) {
  const Tensor window = dataset_->NormalizedWindow(0, 0, 8);
  Timer encode_timer;
  const auto compressed = compressor_->Compress(window, -1.0);
  const double compress_time = encode_timer.Seconds();

  // Compress() above already includes a full decode simulation, so compare
  // pure pieces instead: VAE keyframe coding vs diffusion decode.
  const Tensor keys = diffusion::GatherFrames(
      window, compressor_->keyframe_indices());
  Timer enc;
  const auto stream = compressor_->vae().Compress(
      keys.Reshape({keys.dim(0), 1, keys.dim(1), keys.dim(2)}));
  const double t_enc = enc.Seconds();

  Timer dec;
  const Tensor recon = compressor_->Decompress(compressed);
  const double t_dec = dec.Seconds();
  EXPECT_LT(t_enc, t_dec);
  (void)compress_time;
}

}  // namespace
}  // namespace glsc
