#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "data/dataset.h"
#include "data/field_generators.h"
#include "data/pgm.h"
#include "tensor/ops.h"

namespace glsc::data {
namespace {

class GeneratorTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(GeneratorTest, ShapeSeedAndFiniteness) {
  FieldSpec spec;
  spec.variables = 2;
  spec.frames = 10;
  spec.height = 16;
  spec.width = 24;
  spec.seed = 5;

  const Tensor a = GenerateField(GetParam(), spec);
  EXPECT_EQ(a.shape(), (Shape{2, 10, 16, 24}));
  EXPECT_TRUE(a.AllFinite());

  // Determinism in the seed.
  const Tensor b = GenerateField(GetParam(), spec);
  for (std::int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);

  // A different seed produces different data.
  spec.seed = 6;
  const Tensor c = GenerateField(GetParam(), spec);
  double diff = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) diff += std::fabs(a[i] - c[i]);
  EXPECT_GT(diff, 0.0);
}

TEST_P(GeneratorTest, TemporalCorrelation) {
  // Consecutive frames must be more similar than distant frames — the
  // property the whole keyframe-interpolation idea rests on.
  FieldSpec spec;
  spec.frames = 32;
  spec.height = 16;
  spec.width = 16;
  const Tensor field = GenerateField(GetParam(), spec);
  const std::int64_t hw = 16 * 16;

  auto frame_mse = [&](std::int64_t a, std::int64_t b) {
    double s = 0.0;
    for (std::int64_t i = 0; i < hw; ++i) {
      const double d = field[a * hw + i] - field[b * hw + i];
      s += d * d;
    }
    return s / hw;
  };
  // Averaged over several anchors for robustness.
  double near = 0.0, far = 0.0;
  for (std::int64_t t = 8; t < 16; ++t) {
    near += frame_mse(t, t + 1);
    far += frame_mse(t, t + 12);
  }
  EXPECT_LT(near, far);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GeneratorTest,
                         ::testing::Values(DatasetKind::kClimate,
                                           DatasetKind::kCombustion,
                                           DatasetKind::kTurbulence),
                         [](const auto& info) {
                           std::string name = DatasetName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Dataset, NormalizationInvertsExactly) {
  FieldSpec spec;
  spec.variables = 2;
  spec.frames = 8;
  spec.height = 16;
  spec.width = 16;
  SequenceDataset dataset(GenerateClimate(spec));

  const Tensor window = dataset.NormalizedWindow(1, 2, 4);
  const Tensor restored = dataset.Denormalize(window, 1, 2);
  const std::int64_t hw = 16 * 16;
  for (std::int64_t f = 0; f < 4; ++f) {
    for (std::int64_t i = 0; i < hw; ++i) {
      const float orig = dataset.raw()[((1 * 8) + 2 + f) * hw + i];
      EXPECT_NEAR(restored[f * hw + i], orig,
                  1e-4f * std::max(1.0f, std::fabs(orig)));
    }
  }
}

TEST(Dataset, NormalizedFramesAreZeroMeanUnitRange) {
  FieldSpec spec;
  spec.frames = 6;
  spec.height = 16;
  spec.width = 16;
  SequenceDataset dataset(GenerateCombustion(spec));
  for (std::int64_t t = 0; t < 6; ++t) {
    const Tensor f = dataset.NormalizedFrame(0, t);
    EXPECT_NEAR(f.Mean(), 0.0, 1e-5);
    EXPECT_LE(f.MaxValue() - f.MinValue(), 1.0f + 1e-4f);
  }
}

TEST(Dataset, SampleWindowGeometry) {
  FieldSpec spec;
  spec.frames = 20;
  spec.height = 32;
  spec.width = 48;
  SequenceDataset dataset(GenerateTurbulence(spec));
  Rng rng(3);
  const Tensor w = dataset.SampleTrainingWindow(8, 16, rng);
  EXPECT_EQ(w.shape(), (Shape{8, 16, 16}));
  // Crop larger than the field falls back to the full extent.
  const Tensor big = dataset.SampleTrainingWindow(4, 100, rng);
  EXPECT_EQ(big.shape(), (Shape{4, 32, 48}));
}

TEST(Dataset, EvaluationWindowsCoverWithoutOverlap) {
  FieldSpec spec;
  spec.variables = 2;
  spec.frames = 33;
  spec.height = 16;
  spec.width = 16;
  SequenceDataset dataset(GenerateClimate(spec));
  const auto windows = dataset.EvaluationWindows(16);
  // 33 frames -> two non-overlapping windows of 16 per variable.
  EXPECT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows[0].t0, 0);
  EXPECT_EQ(windows[1].t0, 16);
}

TEST(Dataset, OriginalBytes) {
  FieldSpec spec;
  spec.variables = 1;
  spec.frames = 4;
  spec.height = 8;
  spec.width = 8;
  SequenceDataset dataset(GenerateClimate(spec));
  EXPECT_EQ(dataset.OriginalBytes(), 4u * 64u * sizeof(float));
}

TEST(Pgm, WritesValidHeaderAndZoom) {
  Tensor frame({16, 16});
  for (std::int64_t i = 0; i < frame.numel(); ++i) {
    frame[i] = static_cast<float>(i % 31);
  }
  const std::string base = "/tmp/glsc_test_pgm";
  WritePgmWithZoom(base, frame, 8, 8, 6, 3);
  for (const std::string suffix : {".pgm", "_zoom.pgm"}) {
    std::ifstream in(base + suffix, std::ios::binary);
    ASSERT_TRUE(in.good()) << suffix;
    std::string magic;
    in >> magic;
    EXPECT_EQ(magic, "P5");
    std::filesystem::remove(base + suffix);
  }
}

}  // namespace
}  // namespace glsc::data
