// Tests for the VAE + hyperprior transform coder and its differentiable rate
// models.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/factorized_prior.h"
#include "compress/rate.h"
#include "compress/vae.h"
#include "compress/vae_trainer.h"
#include "data/field_generators.h"
#include "tensor/ops.h"

namespace glsc::compress {
namespace {

// Finite-difference check of the Gaussian rate gradients.
TEST(Rate, GaussianGradientsMatchFiniteDifference) {
  Rng rng(1);
  const Shape shape{2, 3, 2, 2};
  Tensor y = Tensor::Randn(shape, rng, 2.0f);
  Tensor mu = Tensor::Randn(shape, rng);
  Tensor sigma = Map(Tensor::Randn(shape, rng),
                     [](float v) { return 0.5f + std::fabs(v); });

  Tensor gy(shape), gm(shape), gs(shape);
  GaussianRateBits(y, mu, sigma, &gy, &gm, &gs);

  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < 8; ++i) {
    auto probe = [&](Tensor* t, const Tensor& analytic) {
      const float saved = (*t)[i];
      (*t)[i] = saved + eps;
      const double lp = GaussianRateBits(y, mu, sigma);
      (*t)[i] = saved - eps;
      const double lm = GaussianRateBits(y, mu, sigma);
      (*t)[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(analytic[i], numeric,
                  2e-2 * std::max(1.0, std::fabs(numeric)));
    };
    probe(&y, gy);
    probe(&mu, gm);
    probe(&sigma, gs);
  }
}

TEST(Rate, HigherSigmaCostsMoreForCenteredData) {
  // For y == mu, rate grows as sigma grows (flatter pmf).
  const Shape shape{1, 1, 1, 1};
  Tensor y = Tensor::Zeros(shape);
  Tensor mu = Tensor::Zeros(shape);
  const double r1 = GaussianRateBits(y, mu, Tensor::Full(shape, 0.3f));
  const double r2 = GaussianRateBits(y, mu, Tensor::Full(shape, 3.0f));
  EXPECT_LT(r1, r2);
}

TEST(Rate, FarFromMeanCostsMore) {
  const Shape shape{1, 1, 1, 1};
  Tensor mu = Tensor::Zeros(shape);
  Tensor sigma = Tensor::Full(shape, 1.0f);
  const double near = GaussianRateBits(Tensor::Zeros(shape), mu, sigma);
  const double far = GaussianRateBits(Tensor::Full(shape, 6.0f), mu, sigma);
  EXPECT_LT(near, far);
}

TEST(Rate, SigmaFloorClampsGradient) {
  // Below the codec's minimum scale the rate is computed at the floor and
  // sigma receives no gradient (matching the clamp at coding time).
  const Shape shape{1, 1, 1, 1};
  Tensor y = Tensor::Zeros(shape);
  Tensor mu = Tensor::Zeros(shape);
  Tensor sigma = Tensor::Full(shape, 0.01f);  // below the 0.05 floor
  Tensor gy(shape), gm(shape), gs(shape);
  const double bits = GaussianRateBits(y, mu, sigma, &gy, &gm, &gs);
  // At the floor the bin mass is ~1, so the cost is ~0 bits — but never
  // negative, and sigma must receive no gradient through the clamp.
  EXPECT_GE(bits, 0.0);
  EXPECT_EQ(gs[0], 0.0f);
  const double floor_bits =
      GaussianRateBits(y, mu, Tensor::Full(shape, 0.05f));
  EXPECT_NEAR(bits, floor_bits, 1e-9);
}

TEST(FactorizedPrior, RateGradientsMatchFiniteDifference) {
  Rng rng(2);
  FactorizedPrior prior(3);
  const Shape shape{2, 3, 2, 2};
  Tensor z = Tensor::Randn(shape, rng, 2.0f);

  for (nn::Param* p : prior.Params()) p->ZeroGrad();
  Tensor gz(shape);
  prior.RateBits(z, &gz);
  std::vector<Tensor> param_grads;
  for (nn::Param* p : prior.Params()) param_grads.push_back(p->grad.Clone());

  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < 6; ++i) {
    const float saved = z[i];
    z[i] = saved + eps;
    const double lp = prior.RateBits(z);
    z[i] = saved - eps;
    const double lm = prior.RateBits(z);
    z[i] = saved;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(gz[i], numeric, 2e-2 * std::max(1.0, std::fabs(numeric)));
  }
  // Parameter gradients.
  for (std::size_t k = 0; k < prior.Params().size(); ++k) {
    nn::Param* p = prior.Params()[k];
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double lp = prior.RateBits(z);
      p->value[i] = saved - eps;
      const double lm = prior.RateBits(z);
      p->value[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(param_grads[k][i], numeric,
                  2e-2 * std::max(1.0, std::fabs(numeric)));
    }
  }
}

TEST(FactorizedPrior, EncodeDecodeRoundTrip) {
  Rng rng(3);
  FactorizedPrior prior(4);
  const Shape shape{2, 4, 3, 3};
  Tensor z(shape);
  for (std::int64_t i = 0; i < z.numel(); ++i) {
    z[i] = std::nearbyint(3.0f * rng.NormalF());
  }
  const auto bytes = prior.Encode(z);
  const Tensor decoded = prior.Decode(bytes, shape);
  for (std::int64_t i = 0; i < z.numel(); ++i) ASSERT_EQ(decoded[i], z[i]);
}

class VaeShapeTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(VaeShapeTest, GeometryRoundTrip) {
  const std::int64_t edge = GetParam();
  VaeConfig config;
  config.latent_channels = 8;
  config.hidden_channels = 12;
  config.hyper_channels = 4;
  VaeHyperprior vae(config);
  Tensor x = Tensor::Zeros({2, 1, edge, edge});
  const Tensor y = vae.EncodeLatent(x);
  EXPECT_EQ(y.shape(), (Shape{2, 8, edge / 4, edge / 4}));
  const Tensor xr = vae.DecodeLatent(y);
  EXPECT_EQ(xr.shape(), x.shape());
}

INSTANTIATE_TEST_SUITE_P(Edges, VaeShapeTest, ::testing::Values(16, 24, 32));

TEST(Vae, CompressDecompressLatentsLossless) {
  Rng rng(4);
  VaeConfig config;
  config.latent_channels = 6;
  config.hidden_channels = 8;
  config.hyper_channels = 4;
  config.seed = 7;
  VaeHyperprior vae(config);
  Tensor x = Tensor::Randn({3, 1, 16, 16}, rng, 0.3f);

  const Tensor y = vae.EncodeLatent(x);
  const Tensor y_hat = Round(y);
  const VaeBitstream bits = vae.CompressLatents(y);
  const Tensor decoded = vae.DecompressLatents(bits);
  ASSERT_EQ(decoded.shape(), y_hat.shape());
  for (std::int64_t i = 0; i < y_hat.numel(); ++i) {
    ASSERT_EQ(decoded[i], y_hat[i]) << "latent mismatch at " << i;
  }
}

TEST(Vae, EstimateTracksCodedSize) {
  Rng rng(5);
  VaeConfig config;
  config.latent_channels = 6;
  config.hidden_channels = 8;
  config.hyper_channels = 4;
  VaeHyperprior vae(config);
  Tensor x = Tensor::Randn({2, 1, 32, 32}, rng, 0.3f);
  const Tensor y_hat = Round(vae.EncodeLatent(x));
  const double est_bits = vae.EstimateLatentBits(y_hat);
  const VaeBitstream bits = vae.Compress(x);
  const double coded_bits = 8.0 * static_cast<double>(bits.TotalBytes());
  EXPECT_LT(coded_bits, est_bits * 1.4 + 256);
  EXPECT_GT(coded_bits, est_bits * 0.6 - 256);
}

TEST(Vae, TrainingReducesLoss) {
  data::FieldSpec spec;
  spec.frames = 24;
  spec.height = 32;
  spec.width = 32;
  data::SequenceDataset dataset(GenerateClimate(spec));

  VaeConfig config;
  config.latent_channels = 6;
  config.hidden_channels = 8;
  config.hyper_channels = 4;
  VaeHyperprior vae(config);

  Rng rng(6);
  // Measure initial loss on a fixed batch.
  std::vector<Tensor> patches;
  for (int i = 0; i < 4; ++i) {
    Tensor p = dataset.SampleTrainingPatch(16, rng);
    patches.push_back(p.Reshape({1, 1, 16, 16}));
  }
  const Tensor batch = Concat0(patches);
  Rng probe_rng(9);
  const auto before = vae.TrainingForwardBackward(batch, 1e-4, probe_rng);
  for (nn::Param* p : vae.Params()) p->ZeroGrad();

  VaeTrainConfig train;
  train.iterations = 120;
  train.batch_size = 4;
  train.crop = 16;
  train.log_every = 0;
  train.lr_decay_every = 0;
  train.lambda_double_at = 60;
  TrainVae(&vae, dataset, train);

  Rng probe_rng2(9);
  const auto after = vae.TrainingForwardBackward(batch, 1e-4, probe_rng2);
  EXPECT_LT(after.mse, before.mse) << "training did not reduce distortion";
}

TEST(Vae, SaveLoadPreservesBehaviour) {
  Rng rng(7);
  VaeConfig config;
  config.latent_channels = 4;
  config.hidden_channels = 6;
  config.hyper_channels = 2;
  config.seed = 11;
  VaeHyperprior a(config);
  config.seed = 22;  // different init
  VaeHyperprior b(config);

  ByteWriter out;
  a.Save(&out);
  ByteReader in(out.bytes());
  b.Load(&in);

  Tensor x = Tensor::Randn({1, 1, 16, 16}, rng, 0.3f);
  const Tensor ya = a.EncodeLatent(x);
  const Tensor yb = b.EncodeLatent(x);
  for (std::int64_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Vae, RejectsBadGeometry) {
  VaeConfig config;
  VaeHyperprior vae(config);
  Rng rng(8);
  Tensor bad = Tensor::Randn({1, 1, 18, 18}, rng);  // not divisible by 4
  EXPECT_THROW(vae.TrainingForwardBackward(bad, 1e-4, rng),
               std::runtime_error);
}

}  // namespace
}  // namespace glsc::compress
