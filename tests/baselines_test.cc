#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cdc.h"
#include "baselines/gcd.h"
#include "baselines/sz_like.h"
#include "baselines/vae_sr.h"
#include "baselines/zfp_like.h"
#include "data/dataset.h"
#include "data/field_generators.h"
#include "tensor/metrics.h"
#include "tensor/ops.h"

namespace glsc::baselines {
namespace {

// ---- rule-based: pointwise error-bound property across datasets/bounds ----

struct RuleCase {
  data::DatasetKind kind;
  double bound_scale;  // fraction of the data range
};

class RuleBasedBoundTest : public ::testing::TestWithParam<RuleCase> {};

TEST_P(RuleBasedBoundTest, SZRespectsBoundAndCompresses) {
  const auto& p = GetParam();
  data::FieldSpec spec;
  spec.frames = 12;
  spec.height = 20;  // deliberately not a power of two
  spec.width = 28;
  const Tensor var0 = data::GenerateField(p.kind, spec).Slice0(0, 1);
  const Tensor field = var0.Reshape({12, 20, 28});
  const double range = field.MaxValue() - field.MinValue();
  const double bound = p.bound_scale * range;

  SZLikeCompressor sz;
  const auto bytes = sz.Compress(field, bound);
  const Tensor recon = sz.Decompress(bytes);
  ASSERT_EQ(recon.shape(), field.shape());
  EXPECT_LE(MaxAbsError(field, recon), bound * (1.0 + 1e-6));
  // Meaningful reduction vs raw float32 at loose bounds.
  if (p.bound_scale >= 1e-3) {
    EXPECT_LT(bytes.size(), field.numel() * sizeof(float));
  }
}

TEST_P(RuleBasedBoundTest, ZFPRespectsBoundAndCompresses) {
  const auto& p = GetParam();
  data::FieldSpec spec;
  spec.frames = 9;
  spec.height = 22;
  spec.width = 26;
  const Tensor var0 = data::GenerateField(p.kind, spec).Slice0(0, 1);
  const Tensor field = var0.Reshape({9, 22, 26});
  const double range = field.MaxValue() - field.MinValue();
  const double bound = p.bound_scale * range;

  ZFPLikeCompressor zfp;
  const auto bytes = zfp.Compress(field, bound);
  const Tensor recon = zfp.Decompress(bytes);
  ASSERT_EQ(recon.shape(), field.shape());
  EXPECT_LE(MaxAbsError(field, recon), bound * (1.0 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RuleBasedBoundTest,
    ::testing::Values(RuleCase{data::DatasetKind::kClimate, 1e-1},
                      RuleCase{data::DatasetKind::kClimate, 1e-2},
                      RuleCase{data::DatasetKind::kClimate, 1e-3},
                      RuleCase{data::DatasetKind::kCombustion, 1e-2},
                      RuleCase{data::DatasetKind::kCombustion, 1e-4},
                      RuleCase{data::DatasetKind::kTurbulence, 1e-2},
                      RuleCase{data::DatasetKind::kTurbulence, 1e-5}));

TEST(SZLike, TighterBoundCostsMore) {
  data::FieldSpec spec;
  spec.frames = 8;
  spec.height = 16;
  spec.width = 16;
  const Tensor field =
      data::GenerateClimate(spec).Reshape({8, 16, 16});
  const double range = field.MaxValue() - field.MinValue();
  SZLikeCompressor sz;
  const auto loose = sz.Compress(field, 1e-1 * range);
  const auto tight = sz.Compress(field, 1e-4 * range);
  EXPECT_LT(loose.size(), tight.size());
}

TEST(SZLike, SmoothDataCompressesBetterThanNoise) {
  data::FieldSpec spec;
  spec.frames = 8;
  spec.height = 16;
  spec.width = 16;
  const Tensor smooth = data::GenerateClimate(spec).Reshape({8, 16, 16});
  Rng rng(3);
  Tensor noise = Tensor::Randn({8, 16, 16}, rng);
  // Equalize ranges so equal absolute bounds are comparable.
  const double srange = smooth.MaxValue() - smooth.MinValue();
  const double nrange = noise.MaxValue() - noise.MinValue();
  MulScalarInPlace(&noise, static_cast<float>(srange / nrange));

  SZLikeCompressor sz;
  const double bound = 1e-3 * srange;
  EXPECT_LT(sz.Compress(smooth, bound).size(),
            sz.Compress(noise, bound).size());
}

TEST(ZFPLike, ExactForConstantField) {
  Tensor field = Tensor::Full({4, 8, 8}, 3.25f);
  ZFPLikeCompressor zfp;
  const auto bytes = zfp.Compress(field, 1e-3);
  const Tensor recon = zfp.Decompress(bytes);
  EXPECT_LE(MaxAbsError(field, recon), 1e-3);
  // A constant block should cost almost nothing after entropy coding.
  EXPECT_LT(bytes.size(), 200u);
}

TEST(SZLike, DecompressIsDeterministic) {
  data::FieldSpec spec;
  spec.frames = 6;
  spec.height = 16;
  spec.width = 16;
  const Tensor field = data::GenerateClimate(spec).Reshape({6, 16, 16});
  SZLikeCompressor sz;
  const auto bytes = sz.Compress(field, 1e-2);
  const Tensor a = sz.Decompress(bytes);
  const Tensor b = sz.Decompress(bytes);
  for (std::int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(ZFPLike, TighterBoundCostsMore) {
  data::FieldSpec spec;
  spec.frames = 8;
  spec.height = 16;
  spec.width = 16;
  const Tensor field = data::GenerateTurbulence(spec).Reshape({8, 16, 16});
  const double range = field.MaxValue() - field.MinValue();
  ZFPLikeCompressor zfp;
  EXPECT_LT(zfp.Compress(field, 1e-1 * range).size(),
            zfp.Compress(field, 1e-4 * range).size());
}

TEST(ZFPLike, SingleBlockField) {
  // Exactly one 4x4x4 block: exercises the no-padding fast path.
  Rng rng(5);
  Tensor field = Tensor::Randn({4, 4, 4}, rng);
  ZFPLikeCompressor zfp;
  const auto bytes = zfp.Compress(field, 0.01);
  EXPECT_LE(MaxAbsError(field, zfp.Decompress(bytes)), 0.01);
}

TEST(RuleBased, RejectsNonPositiveBound) {
  Tensor field({4, 8, 8});
  SZLikeCompressor sz;
  ZFPLikeCompressor zfp;
  EXPECT_THROW(sz.Compress(field, 0.0), std::runtime_error);
  EXPECT_THROW(zfp.Compress(field, -1.0), std::runtime_error);
}

// ---- learned baselines: tiny-training smoke + structural checks ----

compress::VaeConfig TinyVae(std::uint64_t seed) {
  compress::VaeConfig config;
  config.latent_channels = 4;
  config.hidden_channels = 6;
  config.hyper_channels = 2;
  config.seed = seed;
  return config;
}

compress::VaeTrainConfig TinyVaeTrain() {
  compress::VaeTrainConfig train;
  train.iterations = 60;
  train.batch_size = 2;
  train.crop = 16;
  train.log_every = 0;
  train.lambda_double_at = 30;
  train.lr_decay_every = 0;
  return train;
}

TEST(CDC, TrainCompressDecompress) {
  data::FieldSpec spec;
  spec.frames = 24;
  spec.height = 16;
  spec.width = 16;
  data::SequenceDataset dataset(data::GenerateClimate(spec));

  for (const auto target : {PredictTarget::kEpsilon, PredictTarget::kX0}) {
    CdcConfig config;
    config.vae = TinyVae(3);
    config.model_channels = 8;
    config.heads = 2;
    config.schedule_steps = 20;
    config.target = target;
    CDCCompressor cdc(config);
    // The eps variant needs several hundred steps before its noise estimate
    // is good enough for the quality assertion below; X0 gets the same budget.
    cdc.Train(dataset, TinyVaeTrain(), /*diffusion_iters=*/800, /*crop=*/16);

    const Tensor window = dataset.NormalizedWindow(0, 0, 4);
    const auto compressed = cdc.Compress(window);
    EXPECT_GT(compressed.frames.TotalBytes(), 0u);

    Rng rng(7);
    const Tensor recon = cdc.Decompress(compressed, /*steps=*/10, rng);
    ASSERT_EQ(recon.shape(), window.shape());
    EXPECT_TRUE(recon.AllFinite());

    if (target == PredictTarget::kEpsilon) {
      // With the eps parameterization even a briefly-trained model must stay
      // in the neighbourhood of its VAE conditioning signal. (The X0 variant
      // needs far more training before its direct prediction is usable, so
      // only structural checks apply to it at this budget.)
      const Tensor vae_only = cdc.DecompressVaeOnly(compressed);
      EXPECT_LT(MeanSquaredError(window, recon),
                10.0 * MeanSquaredError(window, vae_only) + 0.1);
    }
  }
}

TEST(GCD, TrainCompressDecompress) {
  data::FieldSpec spec;
  spec.frames = 24;
  spec.height = 16;
  spec.width = 16;
  data::SequenceDataset dataset(data::GenerateCombustion(spec));

  GcdConfig config;
  config.vae = TinyVae(5);
  config.model_channels = 8;
  config.heads = 2;
  config.schedule_steps = 20;
  config.window = 4;
  GCDCompressor gcd(config);
  gcd.Train(dataset, TinyVaeTrain(), /*diffusion_iters=*/40, /*crop=*/16);

  const Tensor window = dataset.NormalizedWindow(0, 2, 4);
  const auto compressed = gcd.Compress(window);
  Rng rng(9);
  const Tensor recon = gcd.Decompress(compressed, /*steps=*/4, rng);
  ASSERT_EQ(recon.shape(), window.shape());
  EXPECT_TRUE(recon.AllFinite());
}

TEST(VAESR, TrainCompressDecompress) {
  // 32x32 frames: the low-resolution branch halves them to 16x16, the
  // smallest geometry whose hyperprior path round-trips (latent edge 4).
  data::FieldSpec spec;
  spec.frames = 24;
  spec.height = 32;
  spec.width = 32;
  data::SequenceDataset dataset(data::GenerateTurbulence(spec));

  VaeSrConfig config;
  config.vae = TinyVae(7);
  config.sr_channels = 8;
  VAESRCompressor vaesr(config);
  vaesr.Train(dataset, TinyVaeTrain(), /*sr_iters=*/80, /*crop=*/32);

  const Tensor window = dataset.NormalizedWindow(0, 0, 6);
  const auto compressed = vaesr.Compress(window);
  EXPECT_GT(compressed.frames.TotalBytes(), 0u);
  const Tensor recon = vaesr.Decompress(compressed);
  ASSERT_EQ(recon.shape(), window.shape());
  EXPECT_TRUE(recon.AllFinite());
}

TEST(VAESR, StoresFewerBytesThanFullResVae) {
  // The low-resolution path must be cheaper per frame than coding the frames
  // at full resolution with an equivalent VAE.
  data::FieldSpec spec;
  spec.frames = 16;
  spec.height = 32;
  spec.width = 32;
  data::SequenceDataset dataset(data::GenerateClimate(spec));

  VaeSrConfig config;
  config.vae = TinyVae(11);
  VAESRCompressor vaesr(config);
  auto train = TinyVaeTrain();
  train.iterations = 40;
  vaesr.Train(dataset, train, /*sr_iters=*/20, /*crop=*/32);

  compress::VaeHyperprior full_vae(TinyVae(11));
  const Tensor window = dataset.NormalizedWindow(0, 0, 8);
  const auto lr_bytes = vaesr.Compress(window).frames.TotalBytes();
  const auto full_bytes =
      full_vae
          .Compress(window.Reshape({8, 1, 32, 32}))
          .TotalBytes();
  EXPECT_LT(lr_bytes, full_bytes);
}

}  // namespace
}  // namespace glsc::baselines
