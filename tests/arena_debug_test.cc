// Tests for GLSC_DEBUG_ARENA workspace borrow validation
// (tensor/workspace.h): allocation serials, exact interval invalidation,
// 0xDB poisoning, and the aborting accessor guard. Skips in trees compiled
// without the checker (release default) — the CHECK_DEBUG lane runs it hot.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "tensor/tensor.h"
#include "tensor/workspace.h"

#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
#define SKIP_WITHOUT_ARENA_CHECKER() (void)0
#else
#define SKIP_WITHOUT_ARENA_CHECKER() \
  GTEST_SKIP() << "built without GLSC_DEBUG_ARENA; see CHECK_DEBUG=1 lane"
#endif

namespace glsc {
namespace {

using tensor::Workspace;

TEST(ArenaDebugTest, BorrowValidWhileScopeIsLive) {
  SKIP_WITHOUT_ARENA_CHECKER();
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  Workspace ws;
  Workspace::Scope scope(&ws);
  Tensor t = ws.NewTensor({8});
  t.Fill(1.5f);
  EXPECT_TRUE(ws.ValidateBorrow(ws.debug_alloc_serial()));
  EXPECT_FLOAT_EQ(t[3], 1.5f);
#endif
}

TEST(ArenaDebugTest, RewindInvalidatesInnerScopeBorrows) {
  SKIP_WITHOUT_ARENA_CHECKER();
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  Workspace ws;
  std::uint64_t inner_serial = 0;
  {
    Workspace::Scope scope(&ws);
    ws.NewTensor({16});
    inner_serial = ws.debug_alloc_serial();
    EXPECT_TRUE(ws.ValidateBorrow(inner_serial));
  }
  EXPECT_FALSE(ws.ValidateBorrow(inner_serial));
#endif
}

TEST(ArenaDebugTest, OuterBorrowSurvivesInnerRewind) {
  SKIP_WITHOUT_ARENA_CHECKER();
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  // The interval set is exact, not a global epoch: rewinding an inner scope
  // must not poison the validity of outer-scope borrows. This is the pattern
  // the nn stack uses (per-layer scopes inside a per-window scope).
  Workspace ws;
  Workspace::Scope outer(&ws);
  Tensor outer_t = ws.NewTensor({4});
  const std::uint64_t outer_serial = ws.debug_alloc_serial();
  outer_t.Fill(2.0f);
  {
    Workspace::Scope inner(&ws);
    Tensor inner_t = ws.NewTensor({4});
    inner_t.Fill(9.0f);
  }
  EXPECT_TRUE(ws.ValidateBorrow(outer_serial));
  EXPECT_FLOAT_EQ(outer_t[0], 2.0f);  // accessor guard passes
#endif
}

TEST(ArenaDebugTest, BackToBackScopesMergeIntervals) {
  SKIP_WITHOUT_ARENA_CHECKER();
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  // Steady-state decode opens one scope per window; every serial handed out
  // in any prior window must be invalid, every check O(log intervals).
  Workspace ws;
  std::uint64_t old_serials[4] = {};
  for (int window = 0; window < 4; ++window) {
    Workspace::Scope scope(&ws);
    ws.NewTensor({32});
    ws.NewTensor({32});
    old_serials[window] = ws.debug_alloc_serial();
  }
  for (const std::uint64_t serial : old_serials) {
    EXPECT_FALSE(ws.ValidateBorrow(serial));
  }
#endif
}

TEST(ArenaDebugTest, RewindPoisonsReclaimedBytes) {
  SKIP_WITHOUT_ARENA_CHECKER();
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  Workspace ws;
  float* raw = nullptr;
  {
    Workspace::Scope scope(&ws);
    raw = ws.Allocate(16);
    for (int i = 0; i < 16; ++i) raw[i] = 1.0f;
  }
  // The scope rewound: the arena slab is still mapped (cached for reuse), so
  // reading through the raw pointer is defined behavior at the machine level
  // — and must now see the 0xDB fill, not stale data.
  unsigned char bytes[sizeof(float)];
  std::memcpy(bytes, raw, sizeof(float));
  for (unsigned char byte : bytes) {
    EXPECT_EQ(byte, 0xDB);
  }
#endif
}

TEST(ArenaDebugTest, UseAfterRewindAborts) {
  SKIP_WITHOUT_ARENA_CHECKER();
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Workspace ws;
        Tensor leaked;
        {
          Workspace::Scope scope(&ws);
          leaked = ws.NewTensor({8});
        }
        // The view escaped its scope; the accessor guard must abort with the
        // use-after-rewind report instead of returning poisoned bytes.
        (void)leaked.data();
      },
      "use-after-rewind");
#endif
}

TEST(ArenaDebugTest, CloneLiftsBorrowOutOfTheArena) {
  SKIP_WITHOUT_ARENA_CHECKER();
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  Workspace ws;
  Tensor owned;
  {
    Workspace::Scope scope(&ws);
    Tensor view = ws.NewTensor({4});
    view.Fill(3.0f);
    owned = view.Clone();  // documented escape hatch
  }
  EXPECT_FLOAT_EQ(owned[0], 3.0f);  // owned storage: no guard, no poison
#endif
}

TEST(ArenaDebugTest, ReshapePropagatesProvenance) {
  SKIP_WITHOUT_ARENA_CHECKER();
#if defined(GLSC_DEBUG_ARENA) && GLSC_DEBUG_ARENA
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Workspace ws;
        Tensor reshaped;
        {
          Workspace::Scope scope(&ws);
          reshaped = ws.NewTensor({2, 4}).Reshape({8});
        }
        (void)reshaped.data();  // a reshaped view is the same borrow
      },
      "use-after-rewind");
#endif
}

}  // namespace
}  // namespace glsc
