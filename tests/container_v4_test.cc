// Tests for the v4 container: filtered serialization round-trips at every
// dispatch level (byte-identical archives native vs forced scalar), v1/v2/v3
// back-compat, AppendToFile equivalence with one-shot serialization, hostile
// filtered archives failing typed, mmap/pread file backings, and the stored
// vs decoded byte accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <vector>

#include "core/archive_reader.h"
#include "core/container.h"
#include "tensor/simd/dispatch.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace glsc::core {
namespace {

std::vector<simd::IsaLevel> TestableLevels() {
  std::vector<simd::IsaLevel> levels{simd::IsaLevel::kScalar};
  const simd::IsaLevel max = simd::DetectedIsa();
  if (max >= simd::IsaLevel::kSSE2) levels.push_back(simd::IsaLevel::kSSE2);
  if (max >= simd::IsaLevel::kAVX2) levels.push_back(simd::IsaLevel::kAVX2);
  if (max >= simd::IsaLevel::kAVX512) {
    levels.push_back(simd::IsaLevel::kAVX512);
  }
  return levels;
}

// Codec-opaque payload with enough structure for the filter selection to
// choose a compressed representation (a noisy ramp, byte-periodic like
// quantized residual streams).
std::vector<std::uint8_t> StructuredPayload(Rng* rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>((i / 7) + (rng->UniformInt(3)));
  }
  return v;
}

std::vector<std::uint8_t> NoisePayload(Rng* rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng->UniformInt(256));
  return v;
}

std::vector<std::uint8_t> FileBytes(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  EXPECT_TRUE(ReadFileBytes(path, &bytes)) << path;
  return bytes;
}

std::vector<data::FrameNorm> MakeNorms(std::int64_t vars, std::int64_t t) {
  std::vector<data::FrameNorm> norms(static_cast<std::size_t>(vars * t));
  for (std::size_t i = 0; i < norms.size(); ++i) {
    norms[i].mean = 0.01f * static_cast<float>(i);
    norms[i].range = 1.0f + 0.001f * static_cast<float>(i % 64);
  }
  return norms;
}

// A small two-variable archive with both compressible and incompressible
// records (the selection must handle a mix within one archive).
DatasetArchive MakeArchive(std::uint64_t seed, std::int64_t t = 16) {
  Rng rng(seed);
  DatasetArchive archive("sz", {2, t, 8, 8}, 8, MakeNorms(2, t));
  for (std::int64_t v = 0; v < 2; ++v) {
    for (std::int64_t t0 = 0; t0 < t; t0 += 8) {
      auto payload = (v + t0) % 3 == 0 ? NoisePayload(&rng, 700 + t0)
                                       : StructuredPayload(&rng, 900 + t0);
      archive.Add(v, t0, 8, std::move(payload));
    }
  }
  return archive;
}

bool EntriesEqual(const DatasetArchive& a, const DatasetArchive& b) {
  if (a.entries().size() != b.entries().size()) return false;
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    const auto& x = a.entries()[i];
    const auto& y = b.entries()[i];
    if (x.variable != y.variable || x.t0 != y.t0 ||
        x.valid_frames != y.valid_frames || x.payload != y.payload) {
      return false;
    }
  }
  return true;
}

TEST(ContainerV4, RoundTripsAtEveryLevelWithByteIdenticalArchives) {
  const DatasetArchive archive = MakeArchive(11);
  std::vector<std::uint8_t> scalar_bytes;
  {
    simd::ScopedIsaOverride force(simd::IsaLevel::kScalar);
    scalar_bytes = archive.Serialize();
  }
  // v4 actually engages the pipeline on this data.
  EXPECT_LT(scalar_bytes.size(), archive.Serialize({.version = 3}).size());
  for (const simd::IsaLevel level : TestableLevels()) {
    simd::ScopedIsaOverride override_level(level);
    const auto bytes = archive.Serialize();
    // The archive a host writes never depends on its ISA.
    EXPECT_EQ(bytes, scalar_bytes) << "level=" << static_cast<int>(level);
    const DatasetArchive back = DatasetArchive::Deserialize(bytes);
    EXPECT_EQ(back.codec(), archive.codec());
    EXPECT_EQ(back.window(), archive.window());
    EXPECT_TRUE(EntriesEqual(archive, back));
    for (std::int64_t t = 0; t < 16; ++t) {
      EXPECT_EQ(back.norm(1, t).mean, archive.norm(1, t).mean);
      EXPECT_EQ(back.norm(1, t).range, archive.norm(1, t).range);
    }
  }
}

TEST(ContainerV4, ForcedFilterHookAppliesToEveryRecord) {
  const DatasetArchive archive = MakeArchive(12);
  const ArchiveWriteOptions forced{
      .version = 4,
      .forced_filter =
          FilterSpec{FilterChain::kDelta, 1, FilterBackend::kGlz}};
  const auto bytes = archive.Serialize(forced);
  EXPECT_TRUE(EntriesEqual(archive, DatasetArchive::Deserialize(bytes)));
  const ArchiveReader reader = ArchiveReader::FromBytes(bytes);
  for (const RecordRef& ref : reader.records()) {
    EXPECT_EQ(ref.filter.chain, FilterChain::kDelta);
    EXPECT_EQ(ref.filter.backend, FilterBackend::kGlz);
  }
}

TEST(ContainerV4, LegacyV2AndV3ArchivesStillLoad) {
  const DatasetArchive archive = MakeArchive(13);
  // v3 comes straight from the writer's compatibility path.
  const DatasetArchive v3 =
      DatasetArchive::Deserialize(archive.Serialize({.version = 3}));
  EXPECT_TRUE(EntriesEqual(archive, v3));
  // v2 (no index, no footer, inline norms) is hand-assembled.
  ByteWriter v2;
  v2.PutBytes("GLSC", 4);
  v2.PutU8(2);
  v2.PutString(archive.codec());
  for (const std::uint64_t d : {2ull, 16ull, 8ull, 8ull}) v2.PutU64(d);
  v2.PutU64(8);  // window
  for (std::int64_t v = 0; v < 2; ++v) {
    for (std::int64_t t = 0; t < 16; ++t) {
      v2.PutF32(archive.norm(v, t).mean);
      v2.PutF32(archive.norm(v, t).range);
    }
  }
  v2.PutVarU64(archive.entries().size());
  for (const ArchiveEntry& e : archive.entries()) {
    v2.PutVarU64(static_cast<std::uint64_t>(e.variable));
    v2.PutVarU64(static_cast<std::uint64_t>(e.t0));
    v2.PutVarU64(static_cast<std::uint64_t>(e.valid_frames));
    v2.PutVarU64(e.payload.size());
    v2.PutBytes(e.payload.data(), e.payload.size());
  }
  const DatasetArchive back = DatasetArchive::Deserialize(v2.bytes());
  EXPECT_TRUE(EntriesEqual(archive, back));
  EXPECT_EQ(back.codec(), archive.codec());
  // The readers agree on the version they loaded.
  EXPECT_EQ(ArchiveReader::FromBytes(v2.bytes()).version(), 2);
  EXPECT_EQ(ArchiveReader::FromBytes(archive.Serialize()).version(), 4);
}

TEST(ContainerV4, AppendMatchesOneShotSerializationByteForByte) {
  const std::string path = "/tmp/glsc_container_v4_append.glsca";
  std::filesystem::remove(path);

  const DatasetArchive first = MakeArchive(14, 16);
  const DatasetArchive more = MakeArchive(15, 8);

  // One-shot reference: the combined record set in a single [2, 24, 8, 8]
  // archive, more's records shifted by first's frame count and the norms
  // merged V-major.
  std::vector<data::FrameNorm> norms;
  for (std::int64_t v = 0; v < 2; ++v) {
    for (std::int64_t t = 0; t < 16; ++t) norms.push_back(first.norm(v, t));
    for (std::int64_t t = 0; t < 8; ++t) norms.push_back(more.norm(v, t));
  }
  DatasetArchive combined("sz", {2, 24, 8, 8}, 8, std::move(norms));
  for (const ArchiveEntry& e : first.entries()) {
    combined.Add(e.variable, e.t0, e.valid_frames, e.payload);
  }
  for (const ArchiveEntry& e : more.entries()) {
    combined.Add(e.variable, e.t0 + 16, e.valid_frames, e.payload);
  }

  // Append to a missing file creates it.
  DatasetArchive::AppendToFile(path, first);
  EXPECT_EQ(FileBytes(path), first.Serialize());
  // Appending the second batch grows it in place...
  DatasetArchive::AppendToFile(path, more);
  const auto bytes = FileBytes(path);
  // ...to exactly the bytes one-shot serialization would have produced.
  EXPECT_EQ(bytes, combined.Serialize());
  EXPECT_TRUE(EntriesEqual(combined, DatasetArchive::Deserialize(bytes)));

  // Legacy layouts cannot grow in place.
  WriteFileBytes(path, first.Serialize({.version = 3}));
  EXPECT_THROW(DatasetArchive::AppendToFile(path, more), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(ContainerV4, HostileIndexFilterByteFailsTyped) {
  // Single small record: every index varint before the filter byte (count,
  // variable, t0, valid_frames) encodes in one byte, so the filter byte sits
  // at a deterministic offset.
  DatasetArchive archive("sz", {1, 8, 8, 8}, 8, MakeNorms(1, 8));
  Rng rng(16);
  archive.Add(0, 0, 8, StructuredPayload(&rng, 600));
  auto bytes = archive.Serialize();
  std::uint64_t index_offset = 0;
  std::memcpy(&index_offset, bytes.data() + bytes.size() - 12, 8);
  bytes[index_offset + 4] = 0xFF;  // reserved filter bits set
  try {
    ArchiveReader::FromBytes(bytes);
    FAIL() << "hostile filter byte accepted";
  } catch (const ArchiveError& e) {
    EXPECT_EQ(e.fault(), ArchiveFault::kCorruptRecord);
  }
  EXPECT_THROW(DatasetArchive::Deserialize(bytes), std::runtime_error);
}

TEST(ContainerV4, CorruptCompressedPayloadFailsTypedWithoutOverread) {
  DatasetArchive archive("sz", {1, 8, 8, 8}, 8, MakeNorms(1, 8));
  Rng rng(17);
  archive.Add(0, 0, 8, StructuredPayload(&rng, 2000));
  const auto clean = archive.Serialize();
  const ArchiveReader probe = ArchiveReader::FromBytes(clean);
  ASSERT_EQ(probe.records().size(), 1u);
  const RecordRef ref = probe.records()[0];
  ASSERT_EQ(ref.filter.backend, FilterBackend::kGlz)
      << "payload unexpectedly stored raw; corruption test needs glz";
  ASSERT_LT(ref.length, ref.raw_size);

  // Stomp the stored stream (record header and index stay intact): 0xFF
  // tokens declare extended literal runs that blow past the declared raw
  // size, which the bounds-checked decoder must refuse.
  auto bytes = clean;
  for (std::uint64_t i = 0; i < ref.length; ++i) bytes[ref.offset + i] = 0xFF;
  const ArchiveReader reader = ArchiveReader::FromBytes(bytes);
  try {
    reader.ReadPayload(0);
    FAIL() << "corrupt glz stream decoded";
  } catch (const ArchiveError& e) {
    EXPECT_EQ(e.fault(), ArchiveFault::kCorruptRecord);
  }
  EXPECT_THROW(DatasetArchive::Deserialize(bytes), std::runtime_error);
}

TEST(ContainerV4, HostileFooterOffsetsFailWithoutOom) {
  const auto clean = MakeArchive(18).Serialize();
  {
    // norms-offset beyond index-offset.
    auto bytes = clean;
    const std::uint64_t lie = bytes.size();
    std::memcpy(bytes.data() + bytes.size() - 20, &lie, 8);
    EXPECT_THROW(ArchiveReader::FromBytes(bytes), ArchiveError);
    EXPECT_THROW(DatasetArchive::Deserialize(bytes), std::runtime_error);
  }
  {
    // Truncation anywhere in the tail: typed failure, never a crash.
    for (const std::size_t cut : {1ul, 7ul, 19ul, 20ul, 45ul}) {
      auto bytes = clean;
      bytes.resize(bytes.size() - cut);
      EXPECT_THROW(ArchiveReader::FromBytes(bytes), ArchiveError);
      EXPECT_THROW(DatasetArchive::Deserialize(bytes), std::runtime_error);
    }
  }
}

TEST(ContainerV4, MmapAndPreadBackingsAreByteIdentical) {
  const std::string path = "/tmp/glsc_container_v4_backing.glsca";
  const DatasetArchive archive = MakeArchive(19);
  archive.WriteFile(path);
  const ArchiveReader mm = ArchiveReader::FromFile(path, FileBacking::kMmap);
  const ArchiveReader pr = ArchiveReader::FromFile(path, FileBacking::kPread);
  ASSERT_EQ(mm.records().size(), archive.entries().size());
  ASSERT_EQ(pr.records().size(), mm.records().size());
  for (std::size_t i = 0; i < mm.records().size(); ++i) {
    const auto payload = mm.ReadPayload(i);
    EXPECT_EQ(payload, pr.ReadPayload(i));
    EXPECT_EQ(payload, archive.entries()[i].payload);
  }
  EXPECT_EQ(mm.payload_bytes_fetched(), pr.payload_bytes_fetched());
  EXPECT_EQ(mm.decoded_payload_bytes(), pr.decoded_payload_bytes());
  std::filesystem::remove(path);
}

TEST(ContainerV4, ByteAccountingSeparatesStoredFromDecoded) {
  const DatasetArchive archive = MakeArchive(20);
  const ArchiveReader reader =
      ArchiveReader::FromBytes(archive.Serialize());
  EXPECT_EQ(reader.payload_bytes_fetched(), 0u);
  EXPECT_EQ(reader.decoded_payload_bytes(), 0u);
  std::uint64_t stored = 0;
  std::uint64_t raw = 0;
  for (std::size_t i = 0; i < reader.records().size(); ++i) {
    const auto payload = reader.ReadPayload(i);
    EXPECT_EQ(payload.size(), reader.records()[i].raw_size);
    stored += reader.records()[i].length;
    raw += reader.records()[i].raw_size;
  }
  // fetched() counts on-disk bytes, decoded() counts raw bytes handed out;
  // on a filtered archive the former is strictly smaller.
  EXPECT_EQ(reader.payload_bytes_fetched(), stored);
  EXPECT_EQ(reader.decoded_payload_bytes(), raw);
  EXPECT_LT(stored, raw);
}

TEST(ContainerV4, FilteredDecodeIsAllocationFreeAtSteadyState) {
  const std::string path = "/tmp/glsc_container_v4_ws.glsca";
  MakeArchive(21).WriteFile(path);
  const ArchiveReader reader = ArchiveReader::FromFile(path);
  tensor::Workspace ws;
  std::vector<std::uint8_t> out;
  // Warm-up pass sizes the workspace slab and the output vector.
  for (std::size_t i = 0; i < reader.records().size(); ++i) {
    reader.ReadPayloadInto(i, &out, &ws);
  }
  const auto slabs = ws.stats().slab_allocations;
  for (int pass = 0; pass < 8; ++pass) {
    for (std::size_t i = 0; i < reader.records().size(); ++i) {
      reader.ReadPayloadInto(i, &out, &ws);
      EXPECT_EQ(out, reader.ReadPayload(i));
    }
  }
  EXPECT_EQ(ws.stats().slab_allocations, slabs)
      << "steady-state filtered decode allocated a new workspace slab";
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace glsc::core
